(* Regression replay: every minimized reproducer checked into
   test/corpus/ — each one a shrunk, once-diverging case — runs against
   the full engine matrix and must now agree with the oracle. A failure
   here means an old bug came back (or a new one landed on the exact
   shape an old one had). *)

module Ck = Ivm_check

let corpus_dir = "corpus"

let replay path () =
  match Ck.Corpus.load path with
  | Error e -> Alcotest.failf "%s: unparseable reproducer: %s" path e
  | Ok case -> (
      match Ck.Harness.run case with
      | Ck.Harness.Agree -> ()
      | Ck.Harness.Diverged ds ->
          Alcotest.failf "%s (%a): %s" path Ck.Seed.pp case.Ck.Case.seed
            (String.concat "; "
               (List.map (Format.asprintf "%a" Ck.Harness.pp_divergence) ds)))

let () =
  let files = Ck.Corpus.files corpus_dir in
  if files = [] then failwith ("no reproducers under " ^ corpus_dir);
  Alcotest.run "corpus"
    [
      ( "replay",
        List.map (fun f -> Alcotest.test_case (Filename.basename f) `Quick (replay f)) files
      );
    ]
