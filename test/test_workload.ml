(* Workload generators: distributional sanity, schema invariants, the
   TPC-H classification study, and validity of the JOB PK-FK batches. *)

module W = Ivm_workload
module Q = Ivm_query

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let zipf_sanity () =
  let rng = Random.State.make [| 3 |] in
  let z = W.Zipf.create ~n:100 ~s:1.2 in
  let counts = Array.make 101 0 in
  for _ = 1 to 20000 do
    let k = W.Zipf.sample z rng in
    checkb "in range" true (k >= 1 && k <= 100);
    counts.(k) <- counts.(k) + 1
  done;
  (* Rank 1 strictly dominates rank 10 dominates rank 100. *)
  checkb "skewed head" true (counts.(1) > counts.(10) && counts.(10) > counts.(100));
  (* Uniform case: s=0 gives roughly equal mass. *)
  let u = W.Zipf.create ~n:10 ~s:0. in
  let c = Array.make 11 0 in
  for _ = 1 to 10000 do
    let k = W.Zipf.sample u rng in
    c.(k) <- c.(k) + 1
  done;
  Array.iteri (fun i n -> if i > 0 then checkb "roughly uniform" true (n > 700 && n < 1300)) c

let graph_gen_deletes () =
  let g = W.Graph_gen.create { W.Graph_gen.nodes = 50; skew = 1.0; delete_ratio = 0.4 } in
  let live = Hashtbl.create 64 in
  let negatives = ref 0 in
  for _ = 1 to 5000 do
    let e = W.Graph_gen.next g in
    if e.W.Graph_gen.mult < 0 then incr negatives;
    let k = (e.W.Graph_gen.rel, e.W.Graph_gen.src, e.W.Graph_gen.dst) in
    let c = Option.value (Hashtbl.find_opt live k) ~default:0 + e.W.Graph_gen.mult in
    checkb "multiplicities never negative" true (c >= 0);
    Hashtbl.replace live k c
  done;
  checkb "deletes are generated" true (!negatives > 500)

let retailer_structure () =
  let module R = W.Retailer in
  checkb "not hierarchical as written" false (Q.Hierarchical.is_hierarchical R.query);
  checkb "q-hierarchical under zip->locn" true (Q.Fd.q_hierarchical_under R.fds R.query);
  checkb "reduct order valid on original" true
    (Q.Variable_order.validate R.query (R.order ()) = Ok ());
  checkb "reduct order free-top" true (Q.Variable_order.free_top R.query (R.order ()));
  let gen = R.create R.default_spec in
  let db = R.initial_database gen in
  (* zip -> locn holds by construction: every zip appears with one locn. *)
  let loc = Ivm_data.Database.Z.find db "Location" in
  let zip_to_locn = Hashtbl.create 64 in
  let ok = ref true in
  Ivm_data.Relation.Z.iter
    (fun t _ ->
      let locn = Ivm_data.Value.to_int (Ivm_data.Tuple.get t 0)
      and zip = Ivm_data.Value.to_int (Ivm_data.Tuple.get t 1) in
      match Hashtbl.find_opt zip_to_locn zip with
      | Some l when l <> locn -> ok := false
      | Some _ -> ()
      | None -> Hashtbl.add zip_to_locn zip locn)
    loc;
  checkb "fd zip->locn holds" true !ok;
  let batch = R.next_batch gen ~size:1000 in
  checki "batch size" 1000 (List.length batch);
  checkb "batch hits Inventory" true
    (List.for_all (fun (u : int Ivm_data.Update.t) -> u.Ivm_data.Update.rel = "Inventory") batch)

let tpch_study () =
  let s = W.Tpch.summarize (W.Tpch.study ()) in
  (* Our encodings (see EXPERIMENTS.md): close to the paper's 8/13 and,
     crucially, FDs strictly increase both counts — the +4 Boolean gain
     is exact. *)
  checki "boolean hierarchical" 11 s.W.Tpch.boolean_total;
  checki "non-boolean hierarchical" 14 s.W.Tpch.nonboolean_total;
  checki "boolean FD gain (+4 as in the paper)" 4
    (s.W.Tpch.boolean_fd_total - s.W.Tpch.boolean_total);
  checkb "FDs never lose queries" true
    (s.W.Tpch.nonboolean_fd_total >= s.W.Tpch.nonboolean_total);
  checki "22 queries" 22 (List.length W.Tpch.queries)

let tpch_spot_checks () =
  let find id = List.find (fun (e : W.Tpch.entry) -> e.W.Tpch.id = id) W.Tpch.queries in
  let c3 = W.Tpch.classify (find 3) in
  checkb "Q3 boolean not hierarchical" false c3.W.Tpch.boolean_hier;
  checkb "Q3 boolean hierarchical under FDs" true c3.W.Tpch.boolean_hier_fd;
  checkb "Q3 q-hierarchical under FDs" true c3.W.Tpch.q_hier_fd;
  let c5 = W.Tpch.classify (find 5) in
  checkb "Q5 stays non-hierarchical even under FDs" false c5.W.Tpch.boolean_hier_fd;
  let c13 = W.Tpch.classify (find 13) in
  checkb "Q13 q-hierarchical as written" true c13.W.Tpch.q_hier

let job_batches_valid () =
  let gen = W.Job.create () in
  (* Apply several insert batches then delete batches; the final state
     must be consistent: every FK value has its PK. *)
  let titles = Hashtbl.create 64 and names = Hashtbl.create 64 in
  let mc = ref [] in
  let apply = function
    | W.Job.T_title (m, d) ->
        Hashtbl.replace titles m (d + Option.value (Hashtbl.find_opt titles m) ~default:0)
    | W.Job.T_names (c, d) ->
        Hashtbl.replace names c (d + Option.value (Hashtbl.find_opt names c) ~default:0)
    | W.Job.T_companies (m, c, d) -> mc := (m, c, d) :: !mc
  in
  List.iter (fun fanout -> Array.iter apply (W.Job.insert_batch gen ~fanout)) [ 3; 1; 8; 2 ];
  (match W.Job.delete_batch gen with
  | Some b -> Array.iter apply b
  | None -> Alcotest.fail "expected a group to delete");
  let live_mc = Hashtbl.create 64 in
  List.iter
    (fun (m, c, d) ->
      Hashtbl.replace live_mc (m, c)
        (d + Option.value (Hashtbl.find_opt live_mc (m, c)) ~default:0))
    !mc;
  Hashtbl.iter
    (fun (m, c) d ->
      if d > 0 then begin
        checkb "movie FK consistent" true
          (Option.value (Hashtbl.find_opt titles m) ~default:0 > 0);
        checkb "company FK consistent" true
          (Option.value (Hashtbl.find_opt names c) ~default:0 > 0)
      end)
    live_mc

let random_queries_fraction () =
  let f = W.Random_queries.measure ~rng:(Random.State.make [| 99 |]) ~n:500 () in
  checki "none q-hierarchical as written" 0 f.W.Random_queries.q_hier;
  (* The chain share of the generator's mix (~70%) becomes q-hierarchical
     under FDs — the Sec. 4.4 RelationalAI observation. *)
  checkb "large fraction under FDs" true
    (f.W.Random_queries.q_hier_fd > 250 && f.W.Random_queries.q_hier_fd < 450)

(* --- mixed multi-tenant workload (the macro-benchmark generators) ---- *)

module Mx = W.Mixed
module U = Ivm_data.Update
module Tuple = Ivm_data.Tuple
module Value = Ivm_data.Value

let update_equal (a : int U.t) (b : int U.t) =
  a.U.rel = b.U.rel && Tuple.equal a.U.tuple b.U.tuple && a.U.payload = b.U.payload

let mixed_tenants_structure () =
  let tenants = Mx.tenants ~views:13 ~keys:8 in
  checki "requested view count" 13 (List.length tenants);
  checkb "economy second, so two views already conserve" true
    ((List.nth tenants 1).Mx.kind = Mx.Economy);
  let back = Mx.of_tables (List.concat_map (fun tn -> tn.Mx.tables) tenants) in
  checki "of_tables reconstructs every tenant" 13 (List.length back);
  List.iter2
    (fun (a : Mx.tenant) (b : Mx.tenant) ->
      checkb "name, kind and index survive the table-name roundtrip" true
        (a.Mx.name = b.Mx.name && a.Mx.kind = b.Mx.kind && a.Mx.index = b.Mx.index))
    tenants back

(* Determinism is what makes any bench run replayable: the whole
   multi-tenant stream is a pure function of (seed, worker). *)
let mixed_drift_deterministic () =
  let gen ~seed =
    let tenants = Mx.tenants ~views:6 ~keys:32 in
    let drift = Mx.Drift.create ~seed ~keys:32 ~period:7 in
    List.concat_map
      (fun tn ->
        let g = Mx.Tgen.create ~worker:1 ~workers:3 ~accounts:12 tn ~drift ~seed () in
        List.concat (List.init 150 (fun op -> Mx.Tgen.next g ~op)))
      tenants
  in
  let a = gen ~seed:99 and b = gen ~seed:99 in
  checki "same seed, same length" (List.length a) (List.length b);
  checkb "same seed, same stream" true (List.for_all2 update_equal a b);
  let c = gen ~seed:100 in
  checkb "different seed decorrelates" true
    (List.length a <> List.length c || not (List.for_all2 update_equal a c))

(* The hot set actually moves: the modal key of the rotated Zipf draw
   changes across drift phases (statistically, over 4000 draws per
   phase), and never moves when the period disables drift. *)
let mixed_hot_set_moves () =
  let keys = 64 in
  let rng = Random.State.make [| 11 |] in
  let zipf = W.Zipf.create ~n:keys ~s:1.3 in
  let mode drift ~op =
    let counts = Array.make (keys + 1) 0 in
    for _ = 1 to 4000 do
      let k = Mx.Drift.key drift ~zipf rng ~op in
      checkb "key in range" true (k >= 1 && k <= keys);
      counts.(k) <- counts.(k) + 1
    done;
    let best = ref 1 in
    Array.iteri (fun i c -> if i > 0 && c > counts.(!best) then best := i) counts;
    !best
  in
  let drift = Mx.Drift.create ~seed:5 ~keys ~period:1000 in
  let m0 = mode drift ~op:0 in
  checkb "the hot key moves within a few phases" true
    (List.exists (fun ph -> mode drift ~op:(ph * 1000) <> m0) [ 1; 2; 3; 4; 5 ]);
  let still = Mx.Drift.create ~seed:5 ~keys ~period:0 in
  let s0 = mode still ~op:0 in
  checkb "no drift without a period" true
    (List.for_all (fun op -> mode still ~op = s0) [ 500; 5_000; 50_000 ])

(* The closed economy: every emitted step is a debit/credit pair that
   sums to zero by construction, no debit ever overdraws its account
   even with several workers on disjoint slices, and the closing total
   equals the opening total exactly. *)
let mixed_conservation_zero_sum () =
  let tn = Mx.tenant ~index:1 Mx.Economy ~keys:16 in
  let accounts = 9 and workers = 3 in
  let table = Mx.table tn "A" in
  let balances = Hashtbl.create 16 in
  let acct (u : int U.t) = Value.to_int (Tuple.get u.U.tuple 0) in
  let apply (u : int U.t) =
    checkb "economy updates hit the tenant's table" true (u.U.rel = table);
    let b = Option.value (Hashtbl.find_opt balances (acct u)) ~default:0 in
    Hashtbl.replace balances (acct u) (b + u.U.payload)
  in
  List.iter apply (Mx.init_updates tn ~accounts);
  let drift = Mx.Drift.create ~seed:3 ~keys:16 ~period:11 in
  let gens =
    List.init workers (fun w ->
        Mx.Tgen.create ~worker:w ~workers ~accounts tn ~drift ~seed:3 ())
  in
  let steps = ref 0 in
  for op = 1 to 400 do
    List.iter
      (fun g ->
        let ups = Mx.Tgen.next g ~op in
        if ups <> [] then incr steps;
        checki "debit/credit pair sums to zero" 0
          (List.fold_left (fun acc (u : int U.t) -> acc + u.U.payload) 0 ups);
        List.iter
          (fun u ->
            apply u;
            checkb "never overdraws" true (Hashtbl.find balances (acct u) >= 0))
          ups)
      gens
  done;
  checkb "workers actually transferred" true (!steps > 100);
  checki "closing total = opening total"
    (Mx.expected_total ~accounts)
    (Hashtbl.fold (fun _ b acc -> acc + b) balances 0)

let () =
  Alcotest.run "workload"
    [
      ( "generators",
        [
          Alcotest.test_case "zipf" `Quick zipf_sanity;
          Alcotest.test_case "graph stream with deletes" `Quick graph_gen_deletes;
        ] );
      ( "retailer (Fig. 4, Ex. 4.10)",
        [ Alcotest.test_case "structure and FD" `Quick retailer_structure ] );
      ( "tpch (Sec. 4.4)",
        [
          Alcotest.test_case "study counts" `Quick tpch_study;
          Alcotest.test_case "spot checks" `Quick tpch_spot_checks;
        ] );
      ("job (Ex. 4.13)", [ Alcotest.test_case "valid batches" `Quick job_batches_valid ]);
      ( "random workload (Sec. 4.4)",
        [ Alcotest.test_case "FD fraction" `Quick random_queries_fraction ] );
      ( "mixed multi-tenant (macro-benchmark)",
        [
          Alcotest.test_case "tenant roster structure" `Quick mixed_tenants_structure;
          Alcotest.test_case "drift determinism" `Quick mixed_drift_deterministic;
          Alcotest.test_case "hot set moves" `Quick mixed_hot_set_moves;
          Alcotest.test_case "conservation by construction" `Quick
            mixed_conservation_zero_sum;
        ] );
    ]
