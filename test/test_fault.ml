(* The fault-injection harness: failpoint trigger windows and seeded
   determinism, the injectable IO layer's torn-write semantics, and the
   durability code's behaviour under injected faults — failed fsyncs
   are retryable, crashes drop exactly the unsynced suffix, checkpoint
   installation is all-or-nothing, and corrupt or foreign files load as
   errors, never as silently wrong state. *)

module D = Ivm_data
module S = D.Schema
module U = D.Update
module Fp = Ivm_fault.Failpoint
module Io = Ivm_fault.Io
module Wal = Ivm_stream.Wal
module Checkpoint = Ivm_stream.Checkpoint
module Errors = Ivm_stream.Errors
module Rel = D.Relation.Z
module Db = D.Database.Z

let tup = D.Tuple.of_ints

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected durability error: %s" (Errors.to_string e)

let injected_err what = function
  | Ok _ -> Alcotest.failf "%s: expected an injected error, got Ok" what
  | Error e ->
      Alcotest.(check bool) (what ^ ": error is injected") true (Errors.injected e)

let tmp_path suffix =
  let path = Filename.temp_file "ivm_fault" suffix in
  Sys.remove path;
  path

let with_tmp suffix f =
  let path = tmp_path suffix in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".tmp" ])
    (fun () -> f path)

(* Every test leaves the global registry disabled, pass or fail. *)
let faulty f () = Fun.protect ~finally:Fp.reset f

let updates n = List.init n (fun i -> U.make ~rel:"R" ~tuple:(tup [ i; i + 1 ]) ~payload:1)

(* --- failpoint registry ---------------------------------------------- *)

let failpoint_window () =
  Fp.enable ();
  Fp.arm "w" ~after:2 ~times:2 Fp.Fail;
  let seq = List.init 6 (fun _ -> Fp.hit "w" <> None) in
  Alcotest.(check (list bool))
    "2 pass, 2 fire, rest pass"
    [ false; false; true; true; false; false ]
    seq;
  Alcotest.(check int) "every hit counted" 6 (Fp.hits "w");
  Alcotest.(check int) "fired exactly [times]" 2 (Fp.fired "w");
  Alcotest.(check (list (pair string string)))
    "armed listing" [ ("w", "fail") ]
    (List.map (fun (n, a) -> (n, Fp.action_name a)) (Fp.armed ()));
  Fp.disarm "w";
  Alcotest.(check bool) "disarmed point passes" true (Fp.hit "w" = None)

let failpoint_disabled_is_inert () =
  (* reset = production state: hooks must pass through and count
     nothing, even for a name armed before the reset. *)
  Fp.enable ();
  Fp.arm "inert" Fp.Fail;
  Fp.reset ();
  Alcotest.(check bool) "disabled hook passes" true (Fp.hit "inert" = None);
  Alcotest.(check int) "no hits recorded" 0 (Fp.hits "inert");
  Alcotest.(check (list (pair string string))) "nothing armed" []
    (List.map (fun (n, a) -> (n, Fp.action_name a)) (Fp.armed ()))

let failpoint_seeded_replay () =
  let pattern seed =
    Fp.reset ();
    Fp.enable ~seed ();
    Fp.arm "coin" ~times:1000 ~p:0.3 Fp.Fail;
    List.init 200 (fun _ -> Fp.hit "coin" <> None)
  in
  let a = pattern 42 and b = pattern 42 and c = pattern 43 in
  Alcotest.(check (list bool)) "same seed, same schedule" a b;
  Alcotest.(check bool) "different seed, different schedule" false (a = c);
  let fired = List.length (List.filter Fun.id a) in
  Alcotest.(check bool) "p=0.3 fires sometimes, not always" true
    (fired > 0 && fired < 200)

(* --- the injectable IO layer ----------------------------------------- *)

let io_short_write_prefix () =
  with_tmp ".bin" (fun path ->
      let oc = Result.get_ok (Io.open_trunc ~tag:"t" path) in
      Fp.enable ();
      Fp.arm "t.write" (Fp.Short_write 5);
      (match Io.write oc "hello world" with
      | Ok () -> Alcotest.fail "short write must report an error"
      | Error e -> Alcotest.(check bool) "injected" true e.Io.injected);
      Io.close_noerr oc;
      (* The torn prefix — and only it — reached the disk. *)
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Alcotest.(check string) "exactly the 5-byte prefix on disk" "hello" s)

let io_fail_writes_nothing () =
  with_tmp ".bin" (fun path ->
      let oc = Result.get_ok (Io.open_trunc ~tag:"t" path) in
      Fp.enable ();
      Fp.arm "t.write" Fp.Fail;
      (match Io.write oc "hello world" with
      | Ok () -> Alcotest.fail "failed write must report an error"
      | Error e -> Alcotest.(check bool) "injected" true e.Io.injected);
      Io.close_noerr oc;
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      close_in ic;
      Alcotest.(check int) "nothing reached the disk" 0 n)

(* --- WAL under faults ------------------------------------------------- *)

let wal_fsync_fail_is_retryable () =
  with_tmp ".wal" (fun path ->
      let w = ok (Wal.Z.open_log path) in
      List.iter (fun u -> ignore (ok (Wal.Z.append w u))) (updates 3);
      Fp.enable ();
      Fp.arm "wal.fsync" ~times:1 Fp.Fail;
      injected_err "first sync" (Wal.Z.sync w);
      (* The failure is transient: the handle is still good and the next
         sync makes everything durable. *)
      ok (Wal.Z.sync w);
      Wal.Z.close w;
      Fp.reset ();
      Alcotest.(check int) "all records durable after retry" 3
        (ok (Wal.Z.record_count path)))

let wal_crash_drops_unsynced () =
  with_tmp ".wal" (fun path ->
      let w = ok (Wal.Z.open_log path) in
      let us = updates 5 in
      List.iteri
        (fun i u ->
          ignore (ok (Wal.Z.append w u));
          if i = 2 then ok (Wal.Z.sync w))
        us;
      (* Crash with two records still buffered: only the synced prefix
         survives, and the log re-opens cleanly for appending. *)
      Wal.Z.crash w;
      Alcotest.(check int) "synced prefix survives" 3 (ok (Wal.Z.record_count path));
      let w = ok (Wal.Z.open_log path) in
      ignore (ok (Wal.Z.append w (U.make ~rel:"S" ~tuple:(tup [ 9 ]) ~payload:1)));
      ok (Wal.Z.sync w);
      Wal.Z.close w;
      Alcotest.(check int) "append after crash extends the prefix" 4
        (ok (Wal.Z.record_count path)))

let wal_decode_fault_ends_replay () =
  with_tmp ".wal" (fun path ->
      let w = ok (Wal.Z.open_log path) in
      List.iter (fun u -> ignore (ok (Wal.Z.append w u))) (updates 5);
      Wal.Z.close w;
      (* An injected decode fault mid-log is indistinguishable from a
         torn tail: replay keeps the prefix and stops, it never
         propagates garbage. *)
      Fp.enable ();
      Fp.arm "codec.decode" ~after:2 Fp.Fail;
      let n = ref 0 in
      ignore (ok (Wal.Z.replay path ~from:0 (fun _ -> incr n)));
      Alcotest.(check int) "replay stops at the faulty record" 2 !n;
      Fp.reset ();
      let n = ref 0 in
      ignore (ok (Wal.Z.replay path ~from:0 (fun _ -> incr n)));
      Alcotest.(check int) "the log itself is intact" 5 !n)

let wal_foreign_file_is_bad_magic () =
  with_tmp ".wal" (fun path ->
      let oc = open_out_bin path in
      output_string oc "definitely not a WAL file";
      close_out oc;
      (match Wal.Z.replay path ~from:0 (fun _ -> ()) with
      | Ok _ -> Alcotest.fail "foreign file must not replay"
      | Error (Errors.Bad_magic _) -> ()
      | Error e -> Alcotest.failf "expected Bad_magic, got %s" (Errors.to_string e));
      match Wal.Z.replay (path ^ ".missing") ~from:0 (fun _ -> ()) with
      | Ok _ -> Alcotest.fail "missing file must not replay"
      | Error (Errors.Io _) -> ()
      | Error e -> Alcotest.failf "expected Io, got %s" (Errors.to_string e))

(* --- checkpoint atomicity under faults -------------------------------- *)

let make_db tuples =
  let db = Db.create () in
  let r = Db.declare db "R" (S.of_list [ "A"; "B" ]) in
  List.iter (fun (t, p) -> Rel.add_entry r (tup t) p) tuples;
  db

let ckpt_fsync_fail_installs_nothing () =
  with_tmp ".ckpt" (fun path ->
      Fp.enable ();
      Fp.arm "ckpt.fsync" ~times:1 Fp.Fail;
      injected_err "save" (Checkpoint.Z.save path ~db:(make_db [ ([ 1; 2 ], 1) ]) ~wal_offset:0);
      (* All-or-nothing: no checkpoint appeared, no temp file leaked. *)
      Alcotest.(check bool) "no checkpoint installed" false (Sys.file_exists path);
      Alcotest.(check bool) "temp file cleaned up" false (Sys.file_exists (path ^ ".tmp")))

let ckpt_rename_fail_keeps_previous () =
  with_tmp ".ckpt" (fun path ->
      let v1 = make_db [ ([ 1; 2 ], 1) ] in
      ok (Checkpoint.Z.save path ~db:v1 ~wal_offset:17);
      Fp.enable ();
      Fp.arm "ckpt.rename" ~times:1 Fp.Fail;
      injected_err "second save"
        (Checkpoint.Z.save path ~db:(make_db [ ([ 3; 4 ], 2) ]) ~wal_offset:99);
      Fp.reset ();
      (* The previous checkpoint is untouched and still loads. *)
      let db, off = ok (Checkpoint.Z.load path) in
      Alcotest.(check int) "previous offset" 17 off;
      Alcotest.(check bool) "previous contents" true (Rel.equal (Db.find db "R") (Db.find v1 "R"));
      Alcotest.(check bool) "temp file cleaned up" false (Sys.file_exists (path ^ ".tmp")))

let ckpt_load_rejects_corruption () =
  with_tmp ".ckpt" (fun path ->
      let oc = open_out_bin path in
      output_string oc "not a checkpoint at all......";
      close_out oc;
      (match Checkpoint.Z.load path with
      | Ok _ -> Alcotest.fail "foreign file must not load"
      | Error (Errors.Bad_magic _) -> ()
      | Error e -> Alcotest.failf "expected Bad_magic, got %s" (Errors.to_string e));
      (* A real checkpoint with one flipped body bit fails its checksum. *)
      ok (Checkpoint.Z.save path ~db:(make_db [ ([ 1; 2 ], 1) ]) ~wal_offset:0);
      let ic = open_in_bin path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let b = Bytes.of_string contents in
      let i = Bytes.length b - 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      match Checkpoint.Z.load path with
      | Ok _ -> Alcotest.fail "corrupt checkpoint must not load"
      | Error (Errors.Corrupt _) -> ()
      | Error e -> Alcotest.failf "expected Corrupt, got %s" (Errors.to_string e))

let () =
  Alcotest.run ~and_exit:false "fault"
    [
      ( "failpoint",
        [
          Alcotest.test_case "trigger window" `Quick (faulty failpoint_window);
          Alcotest.test_case "disabled is inert" `Quick (faulty failpoint_disabled_is_inert);
          Alcotest.test_case "seeded replay" `Quick (faulty failpoint_seeded_replay);
        ] );
      ( "io",
        [
          Alcotest.test_case "short write leaves prefix" `Quick (faulty io_short_write_prefix);
          Alcotest.test_case "failed write leaves nothing" `Quick
            (faulty io_fail_writes_nothing);
        ] );
      ( "wal",
        [
          Alcotest.test_case "fsync fail is retryable" `Quick
            (faulty wal_fsync_fail_is_retryable);
          Alcotest.test_case "crash drops unsynced" `Quick (faulty wal_crash_drops_unsynced);
          Alcotest.test_case "decode fault ends replay" `Quick
            (faulty wal_decode_fault_ends_replay);
          Alcotest.test_case "foreign file rejected" `Quick
            (faulty wal_foreign_file_is_bad_magic);
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "fsync fail installs nothing" `Quick
            (faulty ckpt_fsync_fail_installs_nothing);
          Alcotest.test_case "rename fail keeps previous" `Quick
            (faulty ckpt_rename_fail_keeps_previous);
          Alcotest.test_case "load rejects corruption" `Quick
            (faulty ckpt_load_rejects_corruption);
        ] );
    ]
