(* The sharded cluster layer: topology placement soundness, routed
   ingest + merged reads against a single-node reference, abrupt
   kill-mid-ingest failover with exactly-once re-send accounting,
   auto_failover:false surfacing clean errors, injected connection
   faults (the [cluster.conn] failpoint) resolved without duplicates,
   the quiesced-kill guarantee (a barriered kill loses nothing), and
   client-side deadlines against a mute peer. *)

module D = Ivm_data
module S = D.Schema
module U = D.Update
module St = Ivm_stream
module M = Ivm_engine.Maintainable
module Cl = Ivm_cluster
module Fp = Ivm_fault.Failpoint
module Wire = Ivm_net.Wire
module Client = Ivm_net.Client

let tup = D.Tuple.of_ints

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let fresh_dir label =
  let d = Filename.concat (Filename.get_temp_dir_name ()) ("ivm_test_cluster_" ^ label) in
  rm_rf d;
  d

(* --- the workload: a co-partitioned 2-way join ------------------------ *)

let q_rs =
  Ivm_query.Cq.make ~name:"Q" ~free:[ "B"; "A"; "C" ]
    [ Ivm_query.Cq.atom "R" [ "A"; "B" ]; Ivm_query.Cq.atom "S" [ "B"; "C" ] ]

let paths_factory name (db : D.Database.Z.t) : M.t =
  let forest = Option.get (Ivm_query.Variable_order.canonical q_rs) in
  M.of_view_tree ~name q_rs (Ivm_engine.View_tree.build q_rs forest db)

let declare reg =
  ignore (St.Registry.declare_table reg "R" (S.of_list [ "A"; "B" ]));
  ignore (St.Registry.declare_table reg "S" (S.of_list [ "B"; "C" ]));
  St.Registry.register reg ~name:"paths" (paths_factory "paths");
  St.Registry.register reg ~name:"paths-sum" (paths_factory "paths-sum")

(* R hashed on B (col 1), S hashed on B (col 0): the join is
   shard-local, so the keyed route and the scattered ring-sum must
   agree with each other and with the single-node reference. *)
let topology ~shards =
  Cl.Topology.create ~shards
    ~policies:[ ("R", Cl.Topology.Hash_col 1); ("S", Cl.Topology.Hash_col 0) ]
    ~routes:[ ("paths", Cl.Topology.Keyed); ("paths-sum", Cl.Topology.Scattered) ]

let make_stream n =
  let st = Random.State.make [| 0xC1; n |] in
  Array.init n (fun _ ->
      let rel = if Random.State.bool st then "R" else "S" in
      let a = Random.State.int st 7 and b = Random.State.int st 7 in
      let payload = 1 + Random.State.int st 3 in
      U.make ~rel ~tuple:(tup [ a; b ]) ~payload)

let reference_fp updates =
  let db = D.Database.Z.create () in
  let reg = St.Registry.create db in
  declare reg;
  St.Registry.apply_batch reg (Array.to_list updates);
  let entries =
    List.filter (fun (_, p) -> p <> 0) ((St.Registry.find reg "paths").M.enumerate ())
  in
  M.entries_fingerprint entries

let ok_router = function
  | Ok r -> r
  | Error m -> Alcotest.failf "router start failed: %s" m

let start_router ?(auto_failover = true) ?(probe_interval = 0.) ~label () =
  ok_router
    (Cl.Router.start ~standby:false ~probe_interval ~auto_failover ~timeout:5.
       ~base_dir:(fresh_dir label) ~topology:(topology ~shards:2) ~declare ())

(* --- topology units ---------------------------------------------------- *)

let test_topology_owners () =
  let topo = topology ~shards:2 in
  (* key_owner and owners agree on every tuple carrying the key in the
     relation's hash column. *)
  for a = 0 to 6 do
    for b = 0 to 6 do
      let r_owner =
        match Cl.Topology.owners topo ~rel:"R" (tup [ a; b ]) with
        | Some [ i ] -> i
        | _ -> Alcotest.fail "R update must have exactly one owner"
      in
      let s_owner =
        match Cl.Topology.owners topo ~rel:"S" (tup [ b; a ]) with
        | Some [ i ] -> i
        | _ -> Alcotest.fail "S update must have exactly one owner"
      in
      Alcotest.(check int) "R owner = key_owner B" (Cl.Topology.key_owner topo (D.Value.of_int b)) r_owner;
      Alcotest.(check int) "co-partition: R and S agree on B" r_owner s_owner
    done
  done;
  Alcotest.(check bool) "unknown relation has no owner" true
    (Cl.Topology.owners topo ~rel:"nope" (tup [ 1; 2 ]) = None);
  Alcotest.(check bool) "out-of-range hash column has no owner" true
    (Cl.Topology.owners topo ~rel:"R" (tup [ 1 ]) = None)

let test_topology_shapes () =
  let topo3 =
    Cl.Topology.create ~shards:3
      ~policies:[ ("T", Cl.Topology.Broadcast) ]
      ~routes:[ ("rep", Cl.Topology.Replicated) ]
  in
  Alcotest.(check int) "shard count rounds up to a power of two" 4
    (Cl.Topology.shard_count topo3);
  (match Cl.Topology.owners topo3 ~rel:"T" (tup [ 1; 2 ]) with
  | Some os -> Alcotest.(check int) "broadcast reaches every shard" 4 (List.length os)
  | None -> Alcotest.fail "broadcast update must have owners");
  Alcotest.(check string) "unlisted views read scattered" "scattered"
    (Cl.Topology.route_name (Cl.Topology.route topo3 "unlisted"));
  Alcotest.(check string) "listed route survives" "replicated"
    (Cl.Topology.route_name (Cl.Topology.route topo3 "rep"))

(* --- routed convergence ------------------------------------------------ *)

let feed_router router stream =
  let n = Array.length stream in
  let rec go i =
    if i < n then begin
      let len = min 64 (n - i) in
      let batch = Array.to_list (Array.sub stream i len) in
      (match Cl.Router.ingest router batch with
      | Ok (_, 0) -> ()
      | Ok (_, d) -> Alcotest.failf "%d updates dead-lettered" d
      | Error m -> Alcotest.failf "routed ingest failed: %s" m);
      go (i + len)
    end
  in
  go 0

let test_cluster_converges () =
  let stream = make_stream 400 in
  let router = start_router ~label:"converge" () in
  Fun.protect
    ~finally:(fun () -> Cl.Router.stop router)
    (fun () ->
      feed_router router stream;
      (match Cl.Router.barrier router with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "barrier failed: %s" m);
      let expect = reference_fp stream in
      (match Cl.Router.fingerprint router ~view:"paths" with
      | Ok fp -> Alcotest.(check int) "keyed view matches reference" expect fp
      | Error m -> Alcotest.failf "fingerprint paths: %s" m);
      (match Cl.Router.fingerprint router ~view:"paths-sum" with
      | Ok fp -> Alcotest.(check int) "scattered ring-sum matches reference" expect fp
      | Error m -> Alcotest.failf "fingerprint paths-sum: %s" m);
      (* A keyed lookup with a bound first column answers only from the
         key's owner shard — and must agree with a filter over the
         merged snapshot. *)
      let full =
        match Cl.Router.snapshot router ~view:"paths" with
        | Ok es -> es
        | Error m -> Alcotest.failf "snapshot: %s" m
      in
      for b = 0 to 6 do
        let prefix = tup [ b ] in
        match Cl.Router.lookup router ~view:"paths" ~prefix with
        | Error m -> Alcotest.failf "lookup B=%d: %s" b m
        | Ok got ->
            let want =
              List.filter (fun (t, _) -> D.Value.to_int (D.Tuple.get t 0) = b) full
            in
            Alcotest.(check int)
              (Printf.sprintf "keyed lookup B=%d matches merged filter" b)
              (M.entries_fingerprint want) (M.entries_fingerprint got)
      done)

(* --- the extremal route: per-shard extrema merged by recompute --------- *)

module Df = Ivm_dataflow.Graph

(* Per-node views over Temps(G, V) on the dataflow operator graph:
   smallest-2 and grouped MAX. Temps is hash_tuple-partitioned, so a
   group's value multiset SPANS shards — each node serves only its
   local first-k slots, and the read must recompute the global slots
   from their union (an extremum is not a ring sum). *)
let minmax_graph (db : D.Database.Z.t) =
  let g = Df.create () in
  let src = Df.source g ~rel:"Temps" ~schema:[ "G"; "V" ] in
  Df.output g ~name:"coldest" (Df.extremum g ~k:2 ~dir:Df.Asc ~col:"V" ~group:[ "G" ] src);
  Df.output g ~name:"hottest" (Df.maximum g ~col:"V" ~group:[ "G" ] src);
  let seed =
    D.Relation.Z.fold
      (fun tp p acc -> U.make ~rel:"Temps" ~tuple:tp ~payload:p :: acc)
      (D.Database.Z.find db "Temps") []
  in
  Df.apply g seed;
  g

let declare_minmax reg =
  ignore (St.Registry.declare_table reg "Temps" (S.of_list [ "G"; "V" ]));
  let graph = minmax_graph in
  St.Registry.register reg ~name:"coldest" (fun db ->
      M.of_dataflow ~name:"coldest" (graph db));
  St.Registry.register reg ~name:"hottest" (fun db ->
      M.of_dataflow ~name:"hottest" (graph db))

let topology_minmax ~shards =
  Cl.Topology.create ~shards
    ~policies:[ ("Temps", Cl.Topology.Hash_tuple) ]
    ~routes:
      [
        ("coldest", Cl.Topology.Extremal { desc = false; k = 2 });
        ("hottest", Cl.Topology.Extremal { desc = true; k = 1 });
      ]

(* Random inserts plus deletes aimed at the currently live extremum of
   a random group — the stream that keeps forcing each node's re-scan
   fallback and keeps the merged slots moving. *)
let make_minmax_stream n =
  let st = Random.State.make [| 0xE1; n |] in
  let live = Hashtbl.create 64 in
  let bump key d =
    let c = Option.value (Hashtbl.find_opt live key) ~default:0 + d in
    if c = 0 then Hashtbl.remove live key else Hashtbl.replace live key c
  in
  Array.init n (fun _ ->
      let aimed =
        if Random.State.int st 100 < 35 then begin
          (* delete one copy of some group's live min or max *)
          let want_max = Random.State.bool st in
          let best = ref None in
          Hashtbl.iter
            (fun (g, v) _ ->
              match !best with
              | Some (g', v') when g' = g ->
                  if (want_max && v > v') || ((not want_max) && v < v') then
                    best := Some (g, v)
              | Some _ -> ()
              | None -> best := Some (g, v))
            live;
          !best
        end
        else None
      in
      match aimed with
      | Some (g, v) ->
          bump (g, v) (-1);
          U.make ~rel:"Temps" ~tuple:(tup [ g; v ]) ~payload:(-1)
      | None ->
          let g = 1 + Random.State.int st 4 and v = Random.State.int st 12 in
          let payload = 1 + Random.State.int st 2 in
          bump (g, v) payload;
          U.make ~rel:"Temps" ~tuple:(tup [ g; v ]) ~payload)

let minmax_reference_fp updates view =
  let db = D.Database.Z.create () in
  let reg = St.Registry.create db in
  declare_minmax reg;
  St.Registry.apply_batch reg (Array.to_list updates);
  let entries =
    List.filter (fun (_, p) -> p <> 0) ((St.Registry.find reg view).M.enumerate ())
  in
  M.entries_fingerprint entries

let test_extremal_route () =
  let stream = make_minmax_stream 400 in
  let router =
    ok_router
      (Cl.Router.start ~standby:false ~probe_interval:0. ~auto_failover:false
         ~timeout:5. ~base_dir:(fresh_dir "extremal")
         ~topology:(topology_minmax ~shards:2) ~declare:declare_minmax ())
  in
  Fun.protect
    ~finally:(fun () -> Cl.Router.stop router)
    (fun () ->
      feed_router router stream;
      List.iter
        (fun view ->
          let expect = minmax_reference_fp stream view in
          match Cl.Router.fingerprint router ~view with
          | Ok fp ->
              Alcotest.(check int)
                (Printf.sprintf "extremal merge of %s matches single-node reference" view)
                expect fp
          | Error m -> Alcotest.failf "fingerprint %s: %s" view m)
        [ "coldest"; "hottest" ];
      (* The merged smallest-2 really did come from more than one
         shard's local slots somewhere in this stream — otherwise the
         recompute path was never exercised. Spot-check the shape: at
         most 2 slots per group, payloads positive. *)
      match Cl.Router.snapshot router ~view:"coldest" with
      | Error m -> Alcotest.failf "snapshot coldest: %s" m
      | Ok rows ->
          let per_group = Hashtbl.create 8 in
          List.iter
            (fun (t, p) ->
              Alcotest.(check bool) "slot payloads are positive" true (p > 0);
              let g = D.Value.to_int (D.Tuple.get t 0) in
              Hashtbl.replace per_group g
                (Option.value (Hashtbl.find_opt per_group g) ~default:0 + p))
            rows;
          Hashtbl.iter
            (fun _ slots ->
              Alcotest.(check bool) "at most k=2 slots per group" true (slots <= 2))
            per_group)

(* --- logged sends: the exactly-once driver protocol -------------------- *)

(* A miniature of the chaos harness's send log: per-shard, append on
   ack, and on any transport error resolve through the fence
   ({!Router.reconcile_sent}) instead of blind retry — learn the
   authoritative absorbed count, credit the prefix of the failed batch
   that actually landed, cut-and-resend any published lost ranges. *)
let logged_sender router =
  let logs = Array.init (Cl.Router.shard_count router) (fun _ -> ref []) in
  let append i batch = List.iter (fun u -> logs.(i) := u :: !(logs.(i))) batch in
  let rec take k = function
    | u :: rest when k > 0 -> u :: take (k - 1) rest
    | _ -> []
  in
  let rec drop k = function
    | xs when k <= 0 -> xs
    | [] -> []
    | _ :: rest -> drop (k - 1) rest
  in
  let cut_ranges i ranges =
    if ranges = [] then []
    else begin
      let arr = Array.of_list (List.rev !(logs.(i))) in
      let in_ranges j = List.exists (fun (f, u) -> j >= f && j < u) ranges in
      let keep = ref [] and lost = ref [] in
      Array.iteri
        (fun j u -> if in_ranges j then lost := u :: !lost else keep := u :: !keep)
        arr;
      logs.(i) := !keep;
      List.rev !lost
    end
  in
  let rec send ~tries i batch =
    if batch = [] then ()
    else if tries = 0 then Alcotest.fail "shard never recovered"
    else
      match Cl.Router.ingest_shard router ~shard:i batch with
      | Ok admitted ->
          (* With auto_failover the send itself may have promoted a
             confirmed-dead primary and still returned Ok — the lost
             range is published without any error surfacing, so drain
             it here too. Cut BEFORE appending: range indices refer to
             the log as of the promotion, before this batch's acks. *)
          let resend =
            if Cl.Router.has_lost router ~shard:i then
              cut_ranges i (Cl.Router.take_lost router ~shard:i)
            else []
          in
          append i (take admitted batch);
          send ~tries:(tries - 1) i (resend @ drop admitted batch)
      | Error _ ->
          (* Never re-ingest before the fence succeeds: the error may
             hide an admission, and only the absorbed count says how
             much of the batch landed. *)
          let rec resolve k =
            if k = 0 then Alcotest.fail "reconcile_sent never succeeded"
            else
              match Cl.Router.reconcile_sent router ~shard:i with
              | Ok absorbed -> absorbed
              | Error _ ->
                  Unix.sleepf 0.02;
                  resolve (k - 1)
          in
          let absorbed = resolve 5 in
          let resend = cut_ranges i (Cl.Router.take_lost router ~shard:i) in
          let len = List.length !(logs.(i)) in
          if absorbed < len then
            Alcotest.failf "shard %d absorbed %d < %d logged" i absorbed len;
          let landed = min (absorbed - len) (List.length batch) in
          append i (take landed batch);
          send ~tries:(tries - 1) i (resend @ drop landed batch)
  in
  send

(* --- abrupt kill mid-ingest: exactly-once re-send ---------------------- *)

let test_kill_mid_ingest () =
  let stream = make_stream 480 in
  let router = start_router ~label:"killmid" () in
  Fun.protect
    ~finally:(fun () -> Cl.Router.stop router)
    (fun () ->
      let topo = Cl.Router.topology router in
      let send = logged_sender router in
      Array.iteri
        (fun j u ->
          (match Cl.Topology.owners topo ~rel:u.U.rel u.U.tuple with
          | Some [ i ] -> send ~tries:6 i [ u ]
          | _ -> Alcotest.fail "hash-partitioned update must have one owner");
          (* Abrupt kill mid-stream, deliberately NOT behind a barrier:
             queued-but-unapplied acks become a lost range the send log
             must re-send. *)
          if j = 200 then Cl.Router.kill_primary router ~shard:0)
        stream;
      (match Cl.Router.barrier router with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "final barrier: %s" m);
      (* Nothing may remain published after the log reconciled. *)
      Alcotest.(check bool) "no lost ranges remain" false
        (Cl.Router.has_lost router ~shard:0 || Cl.Router.has_lost router ~shard:1);
      let expect = reference_fp stream in
      (match Cl.Router.fingerprint router ~view:"paths" with
      | Ok fp ->
          Alcotest.(check int) "post-failover state matches reference exactly-once" expect fp
      | Error m -> Alcotest.failf "fingerprint: %s" m);
      let failovers =
        List.fold_left
          (fun acc (s : Cl.Router.shard_status) -> acc + s.Cl.Router.failovers)
          0 (Cl.Router.status router)
      in
      Alcotest.(check bool) "the kill really caused a promotion" true (failovers >= 1))

(* --- auto_failover:false surfaces clean errors ------------------------- *)

let test_no_auto_failover () =
  let router = start_router ~auto_failover:false ~label:"noauto" () in
  Fun.protect
    ~finally:(fun () -> Cl.Router.stop router)
    (fun () ->
      let u = U.make ~rel:"R" ~tuple:(tup [ 1; 2 ]) ~payload:1 in
      let shard =
        match Cl.Topology.owners (Cl.Router.topology router) ~rel:"R" u.U.tuple with
        | Some [ i ] -> i
        | _ -> Alcotest.fail "no owner"
      in
      (match Cl.Router.ingest_shard router ~shard [ u ] with
      | Ok 1 -> ()
      | Ok n -> Alcotest.failf "expected 1 admitted, got %d" n
      | Error m -> Alcotest.failf "healthy ingest failed: %s" m);
      Cl.Router.kill_primary router ~shard;
      (* Every retry must surface a result-typed error — no exception,
         no hang, and no silent promotion. *)
      (match Cl.Router.ingest_shard router ~shard [ u ] with
      | Ok _ -> Alcotest.fail "ingest against a dead primary must not succeed"
      | Error m -> Alcotest.(check bool) "error names the shard" true (String.length m > 0));
      (match Cl.Router.reconcile_sent router ~shard with
      | Ok _ -> Alcotest.fail "reconcile_sent must refuse without auto_failover"
      | Error _ -> ());
      (* Manual promotion restores service. *)
      (match Cl.Router.fail_over router ~shard with
      | Error m -> Alcotest.failf "manual fail_over: %s" m
      | Ok (_dt, recovered) ->
          Alcotest.(check bool) "promotion reports durable count" true (recovered >= 0));
      match Cl.Router.ingest_shard router ~shard [ u ] with
      | Ok 1 -> ()
      | Ok n -> Alcotest.failf "expected 1 admitted after promotion, got %d" n
      | Error m -> Alcotest.failf "post-promotion ingest failed: %s" m)

(* --- injected connection faults resolve without duplicates ------------- *)

(* Seeded kill schedules via the pool's [cluster.conn] failpoint: a
   checkout that fails mid-stream surfaces a transport error whose
   ambiguity must be resolved by fencing, not blind retry — the final
   state must match the reference exactly (no duplicate, no loss). *)
let test_conn_fault_schedules () =
  List.iter
    (fun (seed, after) ->
      let stream = make_stream 240 in
      let router = start_router ~label:(Printf.sprintf "connfp%d" seed) () in
      Fun.protect
        ~finally:(fun () ->
          Fp.reset ();
          Cl.Router.stop router)
        (fun () ->
          let topo = Cl.Router.topology router in
          let send = logged_sender router in
          Fp.enable ~seed ();
          Fp.arm "cluster.conn" ~after ~times:2 Fp.Fail;
          Array.iter
            (fun u ->
              match Cl.Topology.owners topo ~rel:u.U.rel u.U.tuple with
              | Some [ i ] -> send ~tries:8 i [ u ]
              | _ -> Alcotest.fail "hash-partitioned update must have one owner")
            stream;
          Alcotest.(check bool) "the armed fault fired" true (Fp.fired "cluster.conn" > 0);
          (match Cl.Router.barrier router with
          | Ok _ -> ()
          | Error m -> Alcotest.failf "barrier: %s" m);
          let expect = reference_fp stream in
          match Cl.Router.fingerprint router ~view:"paths" with
          | Ok fp ->
              Alcotest.(check int)
                (Printf.sprintf "seed %d: no duplicates or loss under injected faults" seed)
                expect fp
          | Error m -> Alcotest.failf "fingerprint: %s" m))
    [ (11, 3); (12, 7); (13, 11) ]

(* --- quiesced kill loses nothing --------------------------------------- *)

let test_quiesced_kill_lossless () =
  let stream = make_stream 300 in
  let router = start_router ~label:"quiesced" () in
  Fun.protect
    ~finally:(fun () -> Cl.Router.stop router)
    (fun () ->
      feed_router router stream;
      (* The two-phase fence: every admitted record is applied and
         durable when it returns, so a kill immediately after cannot
         publish a lost range. *)
      (match
         Cl.Router.quiesced router (fun () ->
             Cl.Router.kill_primary router ~shard:1;
             Cl.Router.fail_over router ~shard:1)
       with
      | Ok (Ok (_dt, _recovered)) -> ()
      | Ok (Error m) -> Alcotest.failf "failover inside fence: %s" m
      | Error m -> Alcotest.failf "quiesced: %s" m);
      Alcotest.(check bool) "a barriered kill loses no acked records" false
        (Cl.Router.has_lost router ~shard:1);
      let expect = reference_fp stream in
      match Cl.Router.fingerprint router ~view:"paths" with
      | Ok fp -> Alcotest.(check int) "state intact across quiesced failover" expect fp
      | Error m -> Alcotest.failf "fingerprint: %s" m)

(* --- client deadlines against a mute peer ------------------------------ *)

let test_client_timeout () =
  (* A listener that never answers: connect lands in the backlog, the
     request is swallowed, and only the client's deadline gets it out. *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      Unix.listen fd 8;
      let port =
        match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> assert false
      in
      match Client.connect ~timeout:0.2 ~port () with
      | Error e -> Alcotest.failf "connect into backlog failed: %s" (Wire.error_to_string e)
      | Ok c ->
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              let t0 = Unix.gettimeofday () in
              (match Client.ping c with
              | Ok () -> Alcotest.fail "a mute peer must not answer"
              | Error Wire.Timeout -> ()
              | Error e ->
                  Alcotest.failf "expected Timeout, got %s" (Wire.error_to_string e));
              let dt = Unix.gettimeofday () -. t0 in
              Alcotest.(check bool) "deadline bounds the wait" true (dt < 2.);
              Alcotest.(check bool) "timeouts are retryable" true
                (Client.retryable Wire.Timeout);
              Alcotest.(check bool) "remote rejections are not retryable" false
                (Client.retryable (Wire.Remote "nope"))))

let () =
  Alcotest.run "cluster"
    [
      ( "topology",
        [
          Alcotest.test_case "owners agree with key_owner" `Quick test_topology_owners;
          Alcotest.test_case "shapes and defaults" `Quick test_topology_shapes;
        ] );
      ( "routing",
        [
          Alcotest.test_case "2-shard convergence vs reference" `Quick test_cluster_converges;
          Alcotest.test_case "extremal route merges by recompute" `Quick test_extremal_route;
        ] );
      ( "failover",
        [
          Alcotest.test_case "abrupt kill mid-ingest, exactly-once" `Quick test_kill_mid_ingest;
          Alcotest.test_case "auto_failover:false surfaces errors" `Quick test_no_auto_failover;
          Alcotest.test_case "quiesced kill is lossless" `Quick test_quiesced_kill_lossless;
        ] );
      ( "faults",
        [
          Alcotest.test_case "conn-fault schedules, no duplicates" `Quick
            test_conn_fault_schedules;
        ] );
      ( "client",
        [ Alcotest.test_case "deadline against a mute peer" `Quick test_client_timeout ] );
    ]
