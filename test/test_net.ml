(* The network layer: pure frame-codec properties (roundtrip,
   truncation, bit flips — typed errors, never exceptions or hangs),
   message roundtrips, fault-injected framing through Fault.Io, the
   Prometheus metrics exposition, and the end-to-end loopback server:
   concurrent clients whose answers agree with a single-process
   reference registry, including across a checkpointed
   kill-and-restart. *)

module D = Ivm_data
module S = D.Schema
module U = D.Update
module Rel = D.Relation.Z
module Wire = Ivm_net.Wire
module Server = Ivm_net.Server
module Client = Ivm_net.Client
module Squeue = Ivm_stream.Queue
module Metrics = Ivm_stream.Metrics
module Registry = Ivm_stream.Registry
module Scheduler = Ivm_stream.Scheduler
module Checkpoint = Ivm_stream.Checkpoint
module Wal = Ivm_stream.Wal
module M = Ivm_engine.Maintainable
module Tri = Ivm_engine.Triangle
module Tb = Ivm_engine.Triangle_batch
module Failpoint = Ivm_fault.Failpoint
module Fio = Ivm_fault.Io

let tup = D.Tuple.of_ints

let ok_wire = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected wire error: %s" (Wire.error_to_string e)

let ok_stream = function
  | Ok v -> v
  | Error e ->
      Alcotest.failf "unexpected durability error: %s" (Ivm_stream.Errors.to_string e)

let tmp_path suffix =
  let path = Filename.temp_file "ivm_net" suffix in
  Sys.remove path;
  path

let with_tmp suffix f =
  let path = tmp_path suffix in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* --- framing: pure properties ---------------------------------------- *)

let body_gen = QCheck.Gen.(string_size ~gen:char (int_range 0 2000))

let frame_roundtrip =
  QCheck.Test.make ~name:"frame/decode roundtrip" ~count:200
    (QCheck.make ~print:String.escaped body_gen) (fun body ->
      match Wire.decode_frame (Wire.frame body) ~pos:0 with
      | Ok (decoded, next) ->
          decoded = body && next = Wire.header_len + String.length body
      | Error _ -> false)

let frame_concat =
  QCheck.Test.make ~name:"concatenated frames decode in sequence" ~count:100
    QCheck.(pair (make ~print:String.escaped body_gen) (make ~print:String.escaped body_gen))
    (fun (b1, b2) ->
      let buf = Wire.frame b1 ^ Wire.frame b2 in
      match Wire.decode_frame buf ~pos:0 with
      | Error _ -> false
      | Ok (d1, pos) -> (
          d1 = b1
          &&
          match Wire.decode_frame buf ~pos with
          | Error _ -> false
          | Ok (d2, pos) -> d2 = b2 && Wire.decode_frame buf ~pos = Error Wire.Eof))

let frame_truncation =
  QCheck.Test.make ~name:"every strict prefix is Truncated, never an exception"
    ~count:200
    QCheck.(pair (make ~print:String.escaped body_gen) (float_bound_exclusive 1.0))
    (fun (body, frac) ->
      let full = Wire.frame body in
      let cut = int_of_float (frac *. float_of_int (String.length full)) in
      let cut = max 0 (min cut (String.length full - 1)) in
      match Wire.decode_frame (String.sub full 0 cut) ~pos:0 with
      | Error Wire.Eof -> cut = 0
      | Error Wire.Truncated -> cut > 0
      | Error _ | Ok _ -> false)

let frame_bit_flip =
  QCheck.Test.make ~name:"any single bit flip yields a typed error" ~count:300
    QCheck.(pair (make ~print:String.escaped body_gen) (int_bound 100_000))
    (fun (body, i) ->
      let full = Bytes.of_string (Wire.frame body) in
      let bit = i mod (8 * Bytes.length full) in
      let byte = bit / 8 in
      Bytes.set full byte (Char.chr (Char.code (Bytes.get full byte) lxor (1 lsl (bit mod 8))));
      (* A flip in the length field can surface as Truncated or
         Too_large, one anywhere else as Crc_mismatch — but never Ok
         and never an exception. *)
      match Wire.decode_frame (Bytes.to_string full) ~pos:0 with
      | Error _ -> true
      | Ok _ -> false)

let oversized_rejected () =
  (match Wire.frame (String.make (Wire.max_body + 1) 'x') with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "frame over max_body must be rejected");
  (* A header advertising an oversized body is refused before any
     allocation: build one by hand. *)
  let b = Bytes.create Wire.header_len in
  Bytes.set_int32_le b 0 (Int32.of_int (Wire.max_body + 1));
  Bytes.set_int32_le b 4 0l;
  match Wire.decode_frame (Bytes.to_string b) ~pos:0 with
  | Error (Wire.Too_large n) ->
      Alcotest.(check int) "advertised size reported" (Wire.max_body + 1) n
  | Error e -> Alcotest.failf "expected Too_large, got %s" (Wire.error_to_string e)
  | Ok _ -> Alcotest.fail "oversized header accepted"

(* --- messages --------------------------------------------------------- *)

let sample_updates =
  [
    U.make ~rel:"R" ~tuple:(tup [ 1; 2 ]) ~payload:3;
    U.make ~rel:"S" ~tuple:(tup [ 4; 5 ]) ~payload:(-1);
  ]

let all_requests =
  [
    Wire.Ping;
    Wire.Lookup { view = "paths-rs"; prefix = tup [ 7 ] };
    Wire.Lookup { view = "v"; prefix = D.Tuple.unit };
    Wire.Snapshot { view = "tri" };
    Wire.Ingest sample_updates;
    Wire.Ingest [];
    Wire.Subscribe;
    Wire.Stats;
    Wire.Health;
    Wire.Fingerprints;
    Wire.Heal;
    Wire.Checkpoint;
    Wire.Shutdown;
    Wire.Version;
    Wire.Create_view "CREATE TABLE R (a, b); CREATE MATERIALIZED VIEW v AS SELECT a FROM R";
    Wire.Explain "EXPLAIN SELECT a, b FROM R";
  ]

let all_responses =
  [
    Wire.Pong;
    Wire.Chunk { last = false; entries = [ (tup [ 1; 2 ], 3); (tup [], 5) ] };
    Wire.Chunk { last = true; entries = [] };
    Wire.Ack { admitted = 10; dropped = 2 };
    Wire.Text "# TYPE x counter\nx 1\n";
    Wire.Health_list [ ("a", "healthy", None); ("b", "degraded", Some "boom") ];
    Wire.Fingerprint_list [ ("a", 123); ("b", -7) ];
    Wire.Healed [ "flaky" ];
    Wire.Healed [];
    Wire.Checkpointed { wal_offset = 99 };
    Wire.Delta { epoch = 42; updates = sample_updates };
    Wire.Err "no such view";
    Wire.Bye;
    Wire.Subscribed;
    Wire.Version_info { version = Wire.protocol_version };
  ]

let request_roundtrip () =
  List.iter
    (fun req ->
      match Wire.decode_request (Wire.encode_request req) with
      | Ok req' ->
          Alcotest.(check bool)
            ("request roundtrip " ^ Wire.request_name req)
            true (req = req')
      | Error e ->
          Alcotest.failf "request %s failed to decode: %s" (Wire.request_name req)
            (Wire.error_to_string e))
    all_requests

let response_roundtrip () =
  List.iter
    (fun resp ->
      match Wire.decode_response (Wire.encode_response resp) with
      | Ok resp' ->
          Alcotest.(check bool)
            ("response roundtrip " ^ Wire.response_name resp)
            true (resp = resp')
      | Error e ->
          Alcotest.failf "response %s failed to decode: %s" (Wire.response_name resp)
            (Wire.error_to_string e))
    all_responses

let garbage_bodies =
  QCheck.Test.make ~name:"garbage bodies decode to typed errors, never raise"
    ~count:300
    (QCheck.make ~print:String.escaped body_gen)
    (fun body ->
      let forced = function Ok _ | Error _ -> true in
      forced (Wire.decode_request body) && forced (Wire.decode_response body))

let unknown_opcode () =
  (match Wire.decode_request "\xee" with
  | Error (Wire.Bad_op 0xee) -> ()
  | _ -> Alcotest.fail "unknown request opcode must be Bad_op");
  match Wire.decode_response "\x05" with
  | Error (Wire.Bad_op 0x05) -> ()
  | _ -> Alcotest.fail "unknown response opcode must be Bad_op"

let truncated_message () =
  (* A valid message cut mid-body: the frame layer passes it through
     (its checksum is computed over the cut body by the writer in this
     scenario), so the message decoder must report it as Decode. *)
  let body = Wire.encode_request (Wire.Lookup { view = "paths"; prefix = tup [ 1; 2 ] }) in
  for cut = 1 to String.length body - 1 do
    match Wire.decode_request (String.sub body 0 cut) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncated message body accepted at %d" cut
  done

(* --- framing through Fault.Io ---------------------------------------- *)

let with_failpoints f =
  Failpoint.enable ~seed:7 ();
  Fun.protect ~finally:Failpoint.reset f

let faulty_short_write () =
  with_failpoints (fun () ->
      with_tmp ".frame" (fun path ->
          let body = Wire.encode_request (Wire.Snapshot { view = "tri" }) in
          let full = Wire.frame body in
          Failpoint.arm "netio.write" (Failpoint.Short_write (String.length full / 2));
          let out =
            match Fio.open_trunc ~tag:"netio" path with
            | Ok o -> o
            | Error e -> Alcotest.failf "open: %s" (Fio.error_to_string e)
          in
          (match Fio.write out full with
          | Error { injected = true; _ } -> ()
          | Error e -> Alcotest.failf "expected injected error: %s" (Fio.error_to_string e)
          | Ok () -> Alcotest.fail "short write must report the fault");
          Fio.close_noerr out;
          let on_disk =
            match Fio.read_file ~tag:"netio" path with
            | Ok s -> s
            | Error e -> Alcotest.failf "read: %s" (Fio.error_to_string e)
          in
          Alcotest.(check int) "torn tail on disk" (String.length full / 2)
            (String.length on_disk);
          match Wire.decode_frame on_disk ~pos:0 with
          | Error Wire.Truncated -> ()
          | Error e -> Alcotest.failf "expected Truncated, got %s" (Wire.error_to_string e)
          | Ok _ -> Alcotest.fail "torn frame accepted"))

let faulty_bit_flip () =
  with_failpoints (fun () ->
      with_tmp ".frame" (fun path ->
          let body = Wire.encode_request (Wire.Snapshot { view = "tri" }) in
          let full = Wire.frame body in
          (* Flip the first bit of the body: the length field stays
             intact, so the corruption is exactly what the CRC covers. *)
          Failpoint.arm "netio.write" (Failpoint.Bit_flip (8 * Wire.header_len));
          let out =
            match Fio.open_trunc ~tag:"netio" path with
            | Ok o -> o
            | Error e -> Alcotest.failf "open: %s" (Fio.error_to_string e)
          in
          (match Fio.write out full with
          | Ok () -> () (* silent corruption: the write succeeds *)
          | Error e -> Alcotest.failf "bit flip must succeed: %s" (Fio.error_to_string e));
          (match Fio.close out with
          | Ok () -> ()
          | Error e -> Alcotest.failf "close: %s" (Fio.error_to_string e));
          let on_disk =
            match Fio.read_file ~tag:"netio" path with
            | Ok s -> s
            | Error e -> Alcotest.failf "read: %s" (Fio.error_to_string e)
          in
          match Wire.decode_frame on_disk ~pos:0 with
          | Error (Wire.Crc_mismatch _) -> ()
          | Error e ->
              Alcotest.failf "expected Crc_mismatch, got %s" (Wire.error_to_string e)
          | Ok _ -> Alcotest.fail "checksum missed a flipped bit"))

(* --- Prometheus exposition -------------------------------------------- *)

let metrics_render () =
  let m = Metrics.create () in
  Metrics.Hist.add m.Metrics.latency 0.004;
  m.Metrics.epochs <- 3;
  m.Metrics.ingested <- 40;
  List.iter (fun v -> Metrics.record_op m "lookup" v) [ 0.001; 0.002; 0.25 ];
  Metrics.record_op m "ingest" 0.01;
  ignore (Metrics.view m "tri");
  let text = Metrics.render m in
  let contains needle =
    let nl = String.length needle and hl = String.length text in
    let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("exposition contains " ^ needle) true (contains needle))
    [
      "# TYPE ivm_epochs_total counter";
      "ivm_epochs_total 3";
      "ivm_ingested_total 40";
      "# TYPE ivm_update_latency_seconds histogram";
      "ivm_update_latency_seconds_count 1";
      "# TYPE ivm_op_seconds histogram";
      "ivm_op_seconds_count{op=\"lookup\"} 3";
      "ivm_op_seconds_count{op=\"ingest\"} 1";
      "le=\"+Inf\"";
      "ivm_view_updates_total{view=\"tri\"} 0";
    ];
  (* One # TYPE header per metric name, even with several op labels. *)
  let count_type =
    let needle = "# TYPE ivm_op_seconds histogram" in
    let nl = String.length needle in
    let rec go i acc =
      if i + nl > String.length text then acc
      else go (i + 1) (if String.sub text i nl = needle then acc + 1 else acc)
    in
    go 0 0
  in
  Alcotest.(check int) "one TYPE line for ivm_op_seconds" 1 count_type

(* --- end-to-end loopback ---------------------------------------------- *)

let q_rs =
  Ivm_query.Cq.make ~name:"Q" ~free:[ "B"; "A"; "C" ]
    [ Ivm_query.Cq.atom "R" [ "A"; "B" ]; Ivm_query.Cq.atom "S" [ "B"; "C" ] ]

let triangle_schemas = [ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]); ("T", [ "C"; "A" ]) ]

let make_triangle_db () =
  let db = D.Database.Z.create () in
  List.iter
    (fun (n, vars) -> ignore (D.Database.Z.declare db n (S.of_list vars)))
    triangle_schemas;
  db

let tri_factory (db : D.Database.Z.t) : M.t =
  let eng = Tb.Delta.create () in
  List.iter
    (fun name ->
      let rel = match name with "R" -> Tri.R | "S" -> Tri.S | _ -> Tri.T in
      Rel.iter
        (fun t p ->
          Tb.Delta.update eng rel
            ~a:(D.Value.to_int (D.Tuple.get t 0))
            ~b:(D.Value.to_int (D.Tuple.get t 1))
            p)
        (D.Database.Z.find db name))
    [ "R"; "S"; "T" ];
  M.of_triangle_batch ~name:"tri" (module Tb.Delta) eng

let paths_factory (db : D.Database.Z.t) : M.t =
  let forest = Option.get (Ivm_query.Variable_order.canonical q_rs) in
  M.of_view_tree ~name:"paths-rs" q_rs (Ivm_engine.View_tree.build q_rs forest db)

let register_views reg =
  Registry.register reg ~name:"tri" tri_factory;
  Registry.register reg ~name:"paths-rs" paths_factory

let edge_stream ?(seed = 11) n =
  let gen =
    Ivm_workload.Graph_gen.create ~seed
      { Ivm_workload.Graph_gen.nodes = 12; skew = 0.; delete_ratio = 0.3 }
  in
  List.init n (fun _ ->
      let e = Ivm_workload.Graph_gen.next gen in
      let rel = match e.Ivm_workload.Graph_gen.rel with 0 -> "R" | 1 -> "S" | _ -> "T" in
      U.make ~rel
        ~tuple:(tup [ e.Ivm_workload.Graph_gen.src; e.Ivm_workload.Graph_gen.dst ])
        ~payload:e.Ivm_workload.Graph_gen.mult)

(* The reference: the same stream applied directly in-process. *)
let reference_fingerprints stream =
  let db = make_triangle_db () in
  let reg = Registry.create db in
  register_views reg;
  Registry.apply_batch reg stream;
  ignore (Registry.heal reg);
  Registry.read reg (fun () -> Registry.fingerprints reg)

(* A running server over a live scheduler; [f] gets the server and a
   function that blocks until [n] updates have been applied. *)
let with_server ?wal ?checkpoint ~total f =
  let db = make_triangle_db () in
  let metrics = Metrics.create () in
  let reg = Registry.create ~metrics db in
  register_views reg;
  let queue = Squeue.create ~capacity:1024 Squeue.Block in
  let server = ref None in
  let on_apply ~epoch front =
    match !server with Some s -> Server.publish_delta s ~epoch front | None -> ()
  in
  let sched = Scheduler.create ?wal ~initial_batch:64 ~on_apply ~queue ~registry:reg ~metrics () in
  let runner = Domain.spawn (fun () -> Scheduler.run sched) in
  let ingest updates =
    List.fold_left
      (fun (a, d) u ->
        if Squeue.push queue (Scheduler.item u) then (a + 1, d) else (a, d + 1))
      (0, 0) updates
  in
  let srv =
    ok_wire
      (Server.start ~port:0 ~handlers:4 ~chunk_size:64 ~ingest ?checkpoint
         ~on_shutdown:(fun () -> Squeue.close queue)
         ~registry:reg ~metrics ())
  in
  server := Some srv;
  let await_applied n =
    let deadline = Unix.gettimeofday () +. 30. in
    while Scheduler.applied sched < n && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.005
    done;
    Alcotest.(check int) "stream drained" n (Scheduler.applied sched)
  in
  Fun.protect
    ~finally:(fun () ->
      Squeue.close queue;
      ignore (Domain.join runner);
      Server.stop srv)
    (fun () ->
      let r = f srv reg await_applied in
      ignore total;
      r)

let e2e_concurrent_clients () =
  let total = 3_000 in
  let stream = edge_stream total in
  let reference = reference_fingerprints stream in
  with_server ~total (fun srv reg await_applied ->
      let port = Server.port srv in
      (* Four ingesting clients, each feeding a partition — sound
         because ring updates commute across batches. *)
      let parts = List.init 4 (fun k -> List.filteri (fun i _ -> i mod 4 = k) stream) in
      let writers =
        List.map
          (fun part ->
            Domain.spawn (fun () ->
                let c = ok_wire (Client.connect ~port ()) in
                Fun.protect
                  ~finally:(fun () -> Client.close c)
                  (fun () ->
                    let rec feed = function
                      | [] -> ()
                      | us ->
                          let batch, rest =
                            let rec take k acc = function
                              | rest when k = 0 -> (List.rev acc, rest)
                              | [] -> (List.rev acc, [])
                              | u :: rest -> take (k - 1) (u :: acc) rest
                            in
                            take 100 [] us
                          in
                          let admitted, dropped = ok_wire (Client.ingest c batch) in
                          Alcotest.(check int) "all admitted" (List.length batch) admitted;
                          Alcotest.(check int) "none dropped" 0 dropped;
                          feed rest
                    in
                    feed part)))
          parts
      in
      (* Readers hammer lookups and snapshots while the writers run:
         every answer must decode; sizes are checked after quiescence. *)
      let readers =
        List.init 2 (fun k ->
            Domain.spawn (fun () ->
                let c = ok_wire (Client.connect ~port ()) in
                Fun.protect
                  ~finally:(fun () -> Client.close c)
                  (fun () ->
                    for i = 0 to 30 do
                      ignore (ok_wire (Client.lookup c ~view:"paths-rs" ~prefix:(tup [ (i + k) mod 12 ])));
                      ignore (ok_wire (Client.snapshot c ~view:"tri"))
                    done)))
      in
      List.iter Domain.join writers;
      List.iter Domain.join readers;
      await_applied total;
      let c = ok_wire (Client.connect ~port ()) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          ok_wire (Client.ping c);
          Alcotest.(check (list string)) "heal converges" [] (ok_wire (Client.heal c));
          let fps = ok_wire (Client.fingerprints c) in
          Alcotest.(check (list (pair string int)))
            "served fingerprints = single-process reference" reference fps;
          (* The snapshot agrees with a direct enumeration, and a bound
             first variable serves exactly the matching slice. *)
          let direct =
            Registry.read reg (fun () -> (Registry.find reg "paths-rs").M.enumerate ())
          in
          let served = ok_wire (Client.snapshot c ~view:"paths-rs") in
          (* Entry order is unspecified and [Tuple.t] memoizes its hash
             in a mutable field, so compare as sorted multisets with the
             structural comparators. *)
          let norm l =
            List.sort
              (fun (t1, p1) (t2, p2) ->
                match D.Tuple.compare t1 t2 with 0 -> Int.compare p1 p2 | c -> c)
              l
          in
          let entries_equal a b =
            List.equal
              (fun (t1, p1) (t2, p2) -> D.Tuple.equal t1 t2 && p1 = p2)
              (norm a) (norm b)
          in
          Alcotest.(check bool) "snapshot = direct enumeration" true
            (entries_equal direct served);
          let key = 3 in
          let looked = ok_wire (Client.lookup c ~view:"paths-rs" ~prefix:(tup [ key ])) in
          let expected =
            List.filter (fun (tp, _) -> D.Value.to_int (D.Tuple.get tp 0) = key) direct
          in
          Alcotest.(check bool) "lookup = filtered enumeration" true
            (entries_equal looked expected);
          (* Unknown views are a remote error, not a hang-up. *)
          (match Client.snapshot c ~view:"nope" with
          | Error (Wire.Remote _) -> ()
          | Error e -> Alcotest.failf "expected Remote, got %s" (Wire.error_to_string e)
          | Ok _ -> Alcotest.fail "unknown view must error");
          (* The stats op serves the exposition with per-op labels. *)
          let stats = ok_wire (Client.stats c) in
          Alcotest.(check bool) "stats exposition has op labels" true
            (let needle = "ivm_op_seconds_count{op=\"lookup\"}" in
             let nl = String.length needle in
             let rec go i =
               i + nl <= String.length stats && (String.sub stats i nl = needle || go (i + 1))
             in
             go 0)))

let e2e_subscribe () =
  let total = 200 in
  let stream = edge_stream total in
  with_server ~total (fun srv _reg await_applied ->
      let port = Server.port srv in
      let sub = ok_wire (Client.connect ~port ()) in
      Fun.protect
        ~finally:(fun () -> Client.close sub)
        (fun () ->
          ok_wire (Client.subscribe sub);
          let writer = ok_wire (Client.connect ~port ()) in
          Fun.protect
            ~finally:(fun () -> Client.close writer)
            (fun () -> ignore (ok_wire (Client.ingest writer stream)));
          let epoch, updates = ok_wire (Client.next_delta sub) in
          Alcotest.(check bool) "epoch counted from one" true (epoch >= 1);
          Alcotest.(check bool) "delta carries coalesced updates" true (updates <> []);
          List.iter
            (fun u ->
              Alcotest.(check bool) "delta rel is a base relation" true
                (List.mem u.U.rel [ "R"; "S"; "T" ]))
            updates;
          await_applied total))

let e2e_kill_restart () =
  let total = 2_000 in
  let stream = edge_stream total in
  let reference = reference_fingerprints stream in
  let half = total / 2 in
  let first, second =
    let rec split k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | u :: rest -> split (k - 1) (u :: acc) rest
    in
    split half [] stream
  in
  with_tmp ".wal" (fun wal_path ->
      with_tmp ".ckpt" (fun ckpt_path ->
          (* First life: serve with a WAL; a client ingests half, asks
             for a durable checkpoint, then the server dies. *)
          let wal = ok_stream (Wal.Z.open_log wal_path) in
          let reg_holder = ref None in
          let checkpoint () =
            match !reg_holder with
            | None -> Error "no registry"
            | Some reg ->
                Registry.read reg (fun () ->
                    let offset = Wal.Z.offset wal in
                    match
                      Checkpoint.Z.save ckpt_path ~db:(Registry.db reg) ~wal_offset:offset
                    with
                    | Ok () -> Ok offset
                    | Error e -> Error (Ivm_stream.Errors.to_string e))
          in
          with_server ~wal ~checkpoint ~total:half (fun srv reg await_applied ->
              reg_holder := Some reg;
              let port = Server.port srv in
              let c = ok_wire (Client.connect ~port ()) in
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () ->
                  ignore (ok_wire (Client.ingest c first));
                  (* Quiesce before checkpointing so the WAL offset and
                     the applied state line up — the rendezvous the CLI
                     runs at an epoch boundary, done here by draining. *)
                  await_applied half;
                  let offset = ok_wire (Client.checkpoint c) in
                  Alcotest.(check bool) "checkpoint covers the ingested half" true (offset > 0)));
          Wal.Z.close wal;
          (* Crash: the registry and server are gone. Restore from the
             checkpoint, replay the (empty) WAL suffix, apply the rest
             of the stream, and serve again. *)
          let restored_db, offset = ok_stream (Checkpoint.Z.load ckpt_path) in
          let seed_reg = Registry.create (make_triangle_db ()) in
          register_views seed_reg;
          let restored = Registry.restore seed_reg restored_db in
          let pending = ref [] in
          ignore
            (ok_stream
               (Wal.Z.replay wal_path ~from:offset (fun u -> pending := u :: !pending)));
          Registry.apply_batch restored (List.rev !pending);
          Registry.apply_batch restored second;
          ignore (Registry.heal restored);
          let metrics2 = Metrics.create () in
          let srv2 =
            ok_wire
              (Server.start ~port:0 ~handlers:2 ~registry:restored ~metrics:metrics2 ())
          in
          Fun.protect
            ~finally:(fun () -> Server.stop srv2)
            (fun () ->
              let c = ok_wire (Client.connect ~port:(Server.port srv2) ()) in
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () ->
                  let fps = ok_wire (Client.fingerprints c) in
                  Alcotest.(check (list (pair string int)))
                    "fingerprints survive kill-and-restart" reference fps;
                  (* A read-only server refuses writes but keeps reading. *)
                  (match Client.ingest c (edge_stream ~seed:5 3) with
                  | Error (Wire.Remote _) -> ()
                  | Error e -> Alcotest.failf "expected Remote, got %s" (Wire.error_to_string e)
                  | Ok _ -> Alcotest.fail "read-only server must refuse ingest");
                  ignore (ok_wire (Client.snapshot c ~view:"tri"))))))

let e2e_corrupt_frame_keeps_serving () =
  with_server ~total:0 (fun srv _reg _await ->
      let port = Server.port srv in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          (* A frame whose body bit was flipped after framing: the
             server must answer Err and keep the connection. *)
          let body = Wire.encode_request Wire.Ping in
          let full = Bytes.of_string (Wire.frame body) in
          let i = Wire.header_len in
          Bytes.set full i (Char.chr (Char.code (Bytes.get full i) lxor 1));
          let s = Bytes.to_string full in
          let n = Unix.write_substring fd s 0 (String.length s) in
          Alcotest.(check int) "corrupt frame sent" (String.length s) n;
          (match Wire.read_frame fd with
          | Ok reply -> (
              match Wire.decode_response reply with
              | Ok (Wire.Err _) -> ()
              | Ok r -> Alcotest.failf "expected Err, got %s" (Wire.response_name r)
              | Error e -> Alcotest.failf "reply decode: %s" (Wire.error_to_string e))
          | Error e -> Alcotest.failf "no reply to corrupt frame: %s" (Wire.error_to_string e));
          (* The stream is still aligned: a clean Ping works. *)
          ok_wire (Wire.write_frame fd (Wire.encode_request Wire.Ping));
          match Wire.read_frame fd with
          | Ok reply -> (
              match Wire.decode_response reply with
              | Ok Wire.Pong -> ()
              | Ok r -> Alcotest.failf "expected Pong, got %s" (Wire.response_name r)
              | Error e -> Alcotest.failf "pong decode: %s" (Wire.error_to_string e))
          | Error e -> Alcotest.failf "connection dropped after Err: %s" (Wire.error_to_string e)))

(* The zero-copy contract: once the snapshot cache is warm, a Snapshot
   (or bound-first-field Lookup) answer is served straight from the
   preserialized frames built at cache-fill time — repeated requests at
   an unchanged generation return the *physically* same buffers, and
   the bytes on the wire are exactly those buffers, CRC included. *)
let e2e_zero_copy_snapshot () =
  let total = 500 in
  let stream = edge_stream total in
  with_server ~total (fun srv _reg await_applied ->
      let port = Server.port srv in
      let c = ok_wire (Client.connect ~port ()) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let admitted, dropped = ok_wire (Client.ingest c stream) in
          Alcotest.(check int) "admitted" total admitted;
          Alcotest.(check int) "dropped" 0 dropped;
          await_applied total;
          let ok_msg = function Ok v -> v | Error msg -> Alcotest.fail msg in
          let frames view = ok_msg (Server.snapshot_frames srv view) in
          (* First call fills the cache; the second must return the
             physically same prebuilt buffers — zero per-request
             encoding. *)
          let f1 = frames "paths-rs" in
          let f2 = frames "paths-rs" in
          Alcotest.(check int) "frame lists same length" (List.length f1) (List.length f2);
          Alcotest.(check bool) "snapshot frames are physically cached" true
            (List.for_all2 (fun a b -> a == b) f1 f2);
          (* Same for a lookup with bound first field, through the
             per-key prebuilt frames. *)
          let entries = ok_wire (Client.snapshot c ~view:"paths-rs") in
          (match entries with
          | [] -> Alcotest.fail "paths-rs is empty"
          | (tp, _) :: _ ->
              let k = D.Tuple.get tp 0 in
              let l1 = ok_msg (Server.lookup_frames srv "paths-rs" k) in
              let l2 = ok_msg (Server.lookup_frames srv "paths-rs" k) in
              Alcotest.(check bool) "lookup frames are physically cached" true
                (List.for_all2 (fun a b -> a == b) l1 l2));
          (* Misses share the server-lifetime empty terminator. *)
          let m1 = ok_msg (Server.lookup_frames srv "paths-rs" (D.Value.of_int (-999))) in
          let m2 = ok_msg (Server.lookup_frames srv "paths-rs" (D.Value.of_int (-998))) in
          Alcotest.(check bool) "missing keys share one terminator frame" true
            (match (m1, m2) with [ a ], [ b ] -> a == b | _ -> false);
          (* And the wire bytes of a Snapshot answer are exactly the
             cached buffers, byte for byte. *)
          let expected = String.concat "" (List.map Bytes.to_string f1) in
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
              ok_wire
                (Wire.write_frame fd
                   (Wire.encode_request (Wire.Snapshot { view = "paths-rs" })));
              let n = String.length expected in
              let buf = Bytes.create n in
              let rec fill pos =
                if pos < n then
                  match Unix.read fd buf pos (n - pos) with
                  | 0 -> Alcotest.fail "connection closed mid-answer"
                  | k -> fill (pos + k)
              in
              fill 0;
              Alcotest.(check bool) "wire bytes = cached frames" true
                (Bytes.to_string buf = expected))))

(* --- the v2 SQL ops over TCP ------------------------------------------ *)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* A server whose create_view/explain callbacks run a SQL session over
   its own registry, exactly as [ivm_cli serve --listen] wires them. The
   view a wire-delivered script creates must serve Lookup and Snapshot
   answers identical to the same query built directly on the engine
   layer from the same data. *)
let e2e_sql_over_tcp () =
  let metrics = Metrics.create () in
  let reg = Registry.create ~metrics (D.Database.Z.create ()) in
  let sess = Ivm_sql.Exec.create ~registry:reg () in
  let mu = Mutex.create () in
  let run_sql sql =
    Mutex.lock mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mu)
      (fun () ->
        match Ivm_sql.Exec.exec_text sess sql with
        | Ok outs -> Ok (String.concat "\n" (List.map Ivm_sql.Exec.render outs))
        | Error e -> Error e)
  in
  let srv =
    ok_wire
      (Server.start ~port:0 ~handlers:2 ~create_view:run_sql ~explain:run_sql
         ~registry:reg ~metrics ())
  in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let c = ok_wire (Client.connect ~port:(Server.port srv) ()) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Alcotest.(check int) "peer speaks v2" Wire.protocol_version
            (ok_wire (Client.version c));
          let ack =
            ok_wire
              (Client.create_view c
                 "CREATE TABLE R (a, b); CREATE TABLE S (b, c); CREATE \
                  MATERIALIZED VIEW paths AS SELECT a, c FROM R, S;")
          in
          Alcotest.(check bool) "ack names the engine" true (contains ack "engine:");
          ignore
            (ok_wire
               (Client.create_view c
                  "INSERT INTO R VALUES (1, 2), (3, 2), (5, 9); INSERT INTO S \
                   VALUES (2, 7), (2, 8), (9, 1); DELETE FROM R VALUES (5, 9);"));
          (* The same query and data built directly on the engine layer. *)
          let q =
            Ivm_query.Cq.make ~name:"paths" ~free:[ "a"; "c" ]
              [ Ivm_query.Cq.atom "R" [ "a"; "b" ]; Ivm_query.Cq.atom "S" [ "b"; "c" ] ]
          in
          let db = D.Database.Z.create () in
          List.iter
            (fun (n, vars) -> ignore (D.Database.Z.declare db n (S.of_list vars)))
            [ ("R", [ "a"; "b" ]); ("S", [ "b"; "c" ]) ];
          List.iter
            (fun (rel, a, b) ->
              D.Database.Z.apply db (U.make ~rel ~tuple:(tup [ a; b ]) ~payload:1))
            [ ("R", 1, 2); ("R", 3, 2); ("S", 2, 7); ("S", 2, 8); ("S", 9, 1) ];
          let vt =
            Ivm_engine.View_tree.build q
              [ Ivm_query.Variable_order.chain [ "a"; "c"; "b" ] ]
              db
          in
          (* Tuple.t memoizes its hash, so order entries by their value
             lists, never by polymorphic compare on the tuples. *)
          let canon entries =
            List.sort compare
              (List.map (fun (tp, p) -> (D.Tuple.to_list tp, p)) entries)
          in
          let expected =
            canon
              (Rel.fold
                 (fun tp p acc -> (tp, p) :: acc)
                 (Ivm_engine.View_tree.output_relation vt) [])
          in
          let got = canon (ok_wire (Client.snapshot c ~view:"paths")) in
          Alcotest.(check bool) "snapshot = direct engine build" true (got = expected);
          let looked =
            canon (ok_wire (Client.lookup c ~view:"paths" ~prefix:(tup [ 1 ])))
          in
          let expected_1 =
            List.filter (fun (vs, _) -> List.hd vs = D.Value.of_int 1) expected
          in
          Alcotest.(check bool) "lookup = filtered direct build" true
            (looked = expected_1);
          let report = ok_wire (Client.explain c "EXPLAIN SELECT a, c FROM R, S") in
          Alcotest.(check bool) "explain names an engine" true
            (contains report "engine: ");
          let facts =
            List.filter
              (fun l -> String.length l > 3 && String.sub l 0 4 = "  - ")
              (String.split_on_char '\n' report)
          in
          Alcotest.(check bool) "explain carries >= 2 facts" true
            (List.length facts >= 2)))

(* The dataflow acceptance path: a MIN/MAX view created by SQL over the
   wire, fed a stream whose deletes remove the currently served extrema
   (forcing the operator graph's re-scan fallback), must serve a
   snapshot and fingerprint equal to a from-scratch operator graph
   rebuilt over the final base contents. *)
let e2e_minmax_over_tcp () =
  let module Dfg = Ivm_dataflow.Graph in
  let metrics = Metrics.create () in
  let reg = Registry.create ~metrics (D.Database.Z.create ()) in
  let sess = Ivm_sql.Exec.create ~registry:reg () in
  let mu = Mutex.create () in
  let run_sql sql =
    Mutex.lock mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mu)
      (fun () ->
        match Ivm_sql.Exec.exec_text sess sql with
        | Ok outs -> Ok (String.concat "\n" (List.map Ivm_sql.Exec.render outs))
        | Error e -> Error e)
  in
  let srv =
    ok_wire
      (Server.start ~port:0 ~handlers:2 ~create_view:run_sql ~explain:run_sql
         ~registry:reg ~metrics ())
  in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let c = ok_wire (Client.connect ~port:(Server.port srv) ()) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let ack =
            ok_wire
              (Client.create_view c
                 "CREATE TABLE R (G, V); CREATE MATERIALIZED VIEW extremes AS \
                  SELECT G, MIN(V), MAX(V) FROM R GROUP BY G;")
          in
          Alcotest.(check bool) "MIN/MAX lands on the operator graph" true
            (contains ack "dataflow operator graph");
          (* Group 1: min 3 and max 9 both die. Group 2: one copy of the
             duplicated max 7 dies (served value survives), then min 2
             dies. Every delete of a served extremum re-scans. *)
          ignore
            (ok_wire
               (Client.create_view c
                  "INSERT INTO R VALUES (1, 5), (1, 3), (1, 9), (2, 7), (2, 7), \
                   (2, 2); DELETE FROM R VALUES (1, 3); DELETE FROM R VALUES \
                   (1, 9); DELETE FROM R VALUES (2, 7); DELETE FROM R VALUES \
                   (2, 2);"));
          (* From scratch: the same view as a fresh operator graph over
             the final base contents. *)
          let g = Dfg.create () in
          let src = Dfg.source g ~rel:"R" ~schema:[ "G"; "V" ] in
          let rename col node =
            Dfg.map g ~label:("as " ^ col) ~schema:[ "G"; col ] Fun.id node
          in
          let mn = rename "MIN(V)" (Dfg.minimum g ~col:"V" ~group:[ "G" ] src) in
          let mx = rename "MAX(V)" (Dfg.maximum g ~col:"V" ~group:[ "G" ] src) in
          Dfg.output g ~name:"extremes" (Dfg.join g mn mx);
          Dfg.apply g
            (List.map
               (fun (gk, v) -> U.make ~rel:"R" ~tuple:(tup [ gk; v ]) ~payload:1)
               [ (1, 5); (2, 7) ]);
          let canon entries =
            List.sort compare
              (List.map (fun (tp, p) -> (D.Tuple.to_list tp, p)) entries)
          in
          let expected = canon (Dfg.entries g "extremes") in
          let got = canon (ok_wire (Client.snapshot c ~view:"extremes")) in
          Alcotest.(check bool) "snapshot = from-scratch operator graph" true
            (got = expected);
          (* And the served fingerprint is the from-scratch fingerprint. *)
          let fresh_fp =
            M.entries_fingerprint
              (List.filter (fun (_, p) -> p <> 0) (Dfg.entries g "extremes"))
          in
          let fps = ok_wire (Client.fingerprints c) in
          match List.assoc_opt "extremes" fps with
          | None -> Alcotest.fail "no served fingerprint for extremes"
          | Some fp ->
              Alcotest.(check int)
                "served fingerprint = from-scratch recompute after extremum deletes"
                fresh_fp fp))

(* A v1 peer: answers every request with the message-layer Err an old
   server produces for an unknown opcode. The client must degrade
   cleanly — report version 1 and fail the SQL ops with an explanatory
   Remote error, not a raw opcode message. *)
let v1_server_clean_error () =
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lfd 1;
  let port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> Alcotest.fail "no port"
  in
  let stub =
    Domain.spawn (fun () ->
        let conn, _ = Unix.accept lfd in
        let rec serve () =
          match Wire.read_frame conn with
          | Ok _ -> (
              match
                Wire.write_frame conn
                  (Wire.encode_response (Wire.Err "bad request: unknown opcode 0x0c"))
              with
              | Ok () -> serve ()
              | Error _ -> ())
          | Error _ -> ()
        in
        serve ();
        try Unix.close conn with Unix.Unix_error _ -> ())
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Domain.join stub);
      try Unix.close lfd with Unix.Unix_error _ -> ())
    (fun () ->
      let c = ok_wire (Client.connect ~port ()) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Alcotest.(check int) "v1 peer detected" 1 (ok_wire (Client.version c));
          match Client.create_view c "CREATE TABLE R (a)" with
          | Error (Wire.Remote msg) ->
              Alcotest.(check bool) "error names the required version" true
                (contains msg "needs v2")
          | Ok _ -> Alcotest.fail "create_view against a v1 peer must fail"
          | Error e ->
              Alcotest.failf "want a clean Remote error, got %s"
                (Wire.error_to_string e)))

(* --- read-your-writes sessions (epoch tokens) ------------------------- *)

let rw_registry () =
  let metrics = Metrics.create () in
  let reg = Registry.create ~metrics (make_triangle_db ()) in
  register_views reg;
  (reg, metrics)

(* A server wired for epoch-token sessions: [ingest_rw] answers the
   queue watermark, [served] the scheduler's applied count — both
   shifted by [base] so a restarted server keeps reporting on the same
   scale as its previous life. *)
let with_rw_server ?wal ?(base = 0) (reg, metrics) f =
  let queue = Squeue.create ~capacity:1024 Squeue.Block in
  let sched = Scheduler.create ?wal ~queue ~registry:reg ~metrics () in
  let runner = Domain.spawn (fun () -> Scheduler.run sched) in
  let push updates =
    List.fold_left
      (fun (a, d) u ->
        if Squeue.push queue (Scheduler.item u) then (a + 1, d) else (a, d + 1))
      (0, 0) updates
  in
  let srv =
    ok_wire
      (Server.start ~port:0 ~handlers:4 ~ingest:push
         ~ingest_rw:(fun updates ->
           let a, d = push updates in
           (a, d, base + Squeue.pushed queue))
         ~served:(fun () -> base + Scheduler.applied sched)
         ~barrier:(fun () -> Scheduler.barrier sched)
         ~on_shutdown:(fun () -> Squeue.close queue)
         ~registry:reg ~metrics ())
  in
  let await_applied n =
    let deadline = Unix.gettimeofday () +. 30. in
    while Scheduler.applied sched < n && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.002
    done;
    Alcotest.(check int) "stream drained" n (Scheduler.applied sched)
  in
  Fun.protect
    ~finally:(fun () ->
      Squeue.close queue;
      ignore (Domain.join runner);
      Server.stop srv)
    (fun () -> f srv await_applied)

(* Session fixture on paths-rs (output order B, A, C over
   R(A,B) ⋈ S(B,C)): write k adds R(k, hub) and S(hub, k + 9000), so a
   read at prefix (hub, k) must contain (hub, k, k + 9000) and, once n
   writes are visible, exactly n entries — one per S(hub, _) row. The
   hub sits far outside the churn generator's 12-node keyspace, so
   background traffic can never fabricate these rows. *)
let hub = 1000

let session_pair k =
  [
    U.make ~rel:"R" ~tuple:(tup [ k; hub ]) ~payload:1;
    U.make ~rel:"S" ~tuple:(tup [ hub; k + 9000 ]) ~payload:1;
  ]

let check_own_write s k ~expect =
  let entries =
    ok_wire (Client.Session.read s ~view:"paths-rs" ~prefix:(tup [ hub; k ]))
  in
  Alcotest.(check int)
    (Printf.sprintf "session sees every visible write at key %d" k)
    expect (List.length entries);
  Alcotest.(check bool)
    (Printf.sprintf "write %d itself is visible" k)
    true
    (List.exists
       (fun (tp, p) -> D.Tuple.equal tp (tup [ hub; k; k + 9000 ]) && p = 1)
       entries)

(* The guarantee under load: a session interleaving writes and reads
   over loopback TCP never observes state older than its own last
   write, while a background client churns unrelated epochs under its
   feet. *)
let e2e_session_never_stale () =
  with_rw_server (rw_registry ()) (fun srv _await ->
      let port = Server.port srv in
      let stop = Atomic.make false in
      (* Each churn loop applies one full copy of the same valid
         stream, so base multiplicities stay non-negative forever. *)
      let churn =
        Domain.spawn (fun () ->
            let c = ok_wire (Client.connect ~port ()) in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                let batch = edge_stream ~seed:17 50 in
                while not (Atomic.get stop) do
                  ignore (ok_wire (Client.ingest c batch));
                  Unix.sleepf 0.001
                done))
      in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop true;
          ignore (Domain.join churn))
        (fun () ->
          let c = ok_wire (Client.connect ~port ()) in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              let s = Client.Session.create c in
              let last = ref 0 in
              for k = 1 to 50 do
                let admitted, dropped =
                  ok_wire (Client.Session.write s (session_pair k))
                in
                Alcotest.(check int) "pair admitted" 2 admitted;
                Alcotest.(check int) "none dropped" 0 dropped;
                Alcotest.(check bool) "token strictly advances" true
                  (Client.Session.token s > !last);
                last := Client.Session.token s;
                check_own_write s k ~expect:k
              done)))

(* The session survives a kill-and-restart: checkpoint, restore, WAL
   replay, then a second server whose watermarks are shifted by the
   restored base — the reattached session's old token still gates
   correctly and its first-life writes are all visible. *)
let e2e_session_across_restart () =
  with_tmp ".wal" (fun wal_path ->
      with_tmp ".ckpt" (fun ckpt_path ->
          let writes = 20 in
          let wal = ok_stream (Wal.Z.open_log wal_path) in
          let ((reg, _) as rm) = rw_registry () in
          let session1 =
            with_rw_server ~wal rm (fun srv await_applied ->
                let c = ok_wire (Client.connect ~port:(Server.port srv) ()) in
                Fun.protect
                  ~finally:(fun () -> Client.close c)
                  (fun () ->
                    let s = Client.Session.create c in
                    for k = 1 to writes do
                      ignore (ok_wire (Client.Session.write s (session_pair k)));
                      check_own_write s k ~expect:k
                    done;
                    await_applied (2 * writes);
                    Registry.read reg (fun () ->
                        ok_stream
                          (Checkpoint.Z.save ckpt_path ~db:(Registry.db reg)
                             ~wal_offset:(Wal.Z.offset wal)));
                    s))
          in
          Wal.Z.close wal;
          let token = Client.Session.token session1 in
          Alcotest.(check int) "token covers every first-life update" (2 * writes)
            token;
          let restored_db, offset = ok_stream (Checkpoint.Z.load ckpt_path) in
          let metrics2 = Metrics.create () in
          let seed_reg = Registry.create ~metrics:metrics2 (make_triangle_db ()) in
          register_views seed_reg;
          let restored = Registry.restore seed_reg restored_db in
          let pending = ref [] in
          ignore
            (ok_stream
               (Wal.Z.replay wal_path ~from:offset (fun u -> pending := u :: !pending)));
          Registry.apply_batch restored (List.rev !pending);
          ignore (Registry.heal restored);
          with_rw_server ~base:token (restored, metrics2) (fun srv _await ->
              let c2 = ok_wire (Client.connect ~port:(Server.port srv) ()) in
              Fun.protect
                ~finally:(fun () -> Client.close c2)
                (fun () ->
                  let s = Client.Session.reattach session1 c2 in
                  Alcotest.(check int) "reattach keeps the token" token
                    (Client.Session.token s);
                  (* Every first-life write is visible through the old
                     token on the restarted server... *)
                  for k = 1 to writes do
                    check_own_write s k ~expect:writes
                  done;
                  (* ...and the session keeps working: new writes gate
                     on watermarks continued from the restored base. *)
                  for k = writes + 1 to writes + 5 do
                    ignore (ok_wire (Client.Session.write s (session_pair k)));
                    Alcotest.(check bool) "token continues past the base" true
                      (Client.Session.token s > token);
                    check_own_write s k ~expect:k
                  done))))

(* The injected violation: a server whose scheduler never runs (served
   watermark stuck at 0) with ["net.stale_read"] armed serves the gated
   read anyway — reporting its honest watermark — and the session's
   client-side re-check must refuse the answer. Without the failpoint
   the same read fails closed on the server's deadline instead of ever
   going stale. *)
let session_stale_read_caught () =
  with_failpoints (fun () ->
      let reg, metrics = rw_registry () in
      let pushed = ref 0 in
      let ingest_rw updates =
        (* Admitted but deliberately never applied. *)
        pushed := !pushed + List.length updates;
        (List.length updates, 0, !pushed)
      in
      let srv =
        ok_wire
          (Server.start ~port:0 ~handlers:2 ~ingest_rw
             ~served:(fun () -> 0)
             ~registry:reg ~metrics ())
      in
      Fun.protect
        ~finally:(fun () -> Server.stop srv)
        (fun () ->
          let c = ok_wire (Client.connect ~port:(Server.port srv) ()) in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              let s = Client.Session.create c in
              ignore (ok_wire (Client.Session.write s (session_pair 1)));
              Alcotest.(check int) "token = queue watermark" 2
                (Client.Session.token s);
              (match
                 Client.Session.read ~timeout_ms:50 s ~view:"paths-rs"
                   ~prefix:(tup [ hub; 1 ])
               with
              | Error (Wire.Remote msg) ->
                  Alcotest.(check bool) "fails closed on the deadline" true
                    (contains msg "deadline")
              | Error e ->
                  Alcotest.failf "expected Remote deadline, got %s"
                    (Wire.error_to_string e)
              | Ok _ -> Alcotest.fail "gated read served despite watermark 0");
              Failpoint.arm "net.stale_read" ~times:max_int Failpoint.Fail;
              match Client.Session.read s ~view:"paths-rs" ~prefix:(tup [ hub; 1 ]) with
              | Error (Wire.Remote msg) ->
                  Alcotest.(check bool) "violation caught client-side" true
                    (contains msg "read-your-writes violated")
              | Error e ->
                  Alcotest.failf "expected Remote, got %s" (Wire.error_to_string e)
              | Ok _ -> Alcotest.fail "stale read not caught")))

let qt t = QCheck_alcotest.to_alcotest ~long:false t

let () =
  Alcotest.run ~and_exit:false "net"
    [
      ( "framing",
        [
          qt frame_roundtrip;
          qt frame_concat;
          qt frame_truncation;
          qt frame_bit_flip;
          Alcotest.test_case "oversized rejected" `Quick oversized_rejected;
        ] );
      ( "messages",
        [
          Alcotest.test_case "request roundtrip" `Quick request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick response_roundtrip;
          qt garbage_bodies;
          Alcotest.test_case "unknown opcode" `Quick unknown_opcode;
          Alcotest.test_case "truncated message" `Quick truncated_message;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "short write -> Truncated" `Quick faulty_short_write;
          Alcotest.test_case "bit flip -> Crc_mismatch" `Quick faulty_bit_flip;
        ] );
      ("metrics", [ Alcotest.test_case "Prometheus exposition" `Quick metrics_render ]);
      ( "loopback",
        [
          Alcotest.test_case "concurrent clients = reference" `Quick e2e_concurrent_clients;
          Alcotest.test_case "subscribe receives deltas" `Quick e2e_subscribe;
          Alcotest.test_case "kill and restart" `Quick e2e_kill_restart;
          Alcotest.test_case "zero-copy snapshot serving" `Quick e2e_zero_copy_snapshot;
          Alcotest.test_case "SQL view over TCP = direct build" `Quick e2e_sql_over_tcp;
          Alcotest.test_case "MIN/MAX over TCP = from-scratch rebuild" `Quick
            e2e_minmax_over_tcp;
          Alcotest.test_case "v1 server -> clean Remote error" `Quick
            v1_server_clean_error;
          Alcotest.test_case "corrupt frame keeps serving" `Quick
            e2e_corrupt_frame_keeps_serving;
        ] );
      ( "sessions (read-your-writes)",
        [
          Alcotest.test_case "never stale under churn" `Quick e2e_session_never_stale;
          Alcotest.test_case "token survives checkpoint/restart" `Quick
            e2e_session_across_restart;
          Alcotest.test_case "injected stale read caught" `Quick
            session_stale_read_caught;
        ] );
    ]
