(* The streaming maintenance runtime: codec roundtrips, WAL durability
   and torn-tail tolerance, queue backpressure policies, checkpoint +
   replay crash recovery (the load-bearing property: restore + replay
   from the saved offset ≡ direct apply, for Z and float rings), the
   multi-view registry, and the end-to-end kill-and-restart equivalence
   the `serve` runtime promises. *)

module D = Ivm_data
module S = D.Schema
module U = D.Update
module Codec = D.Codec
module Wal = Ivm_stream.Wal
module Squeue = Ivm_stream.Queue
module Metrics = Ivm_stream.Metrics
module Registry = Ivm_stream.Registry
module Checkpoint = Ivm_stream.Checkpoint
module Scheduler = Ivm_stream.Scheduler
module M = Ivm_engine.Maintainable
module Tri = Ivm_engine.Triangle
module Tb = Ivm_engine.Triangle_batch
module Rel = D.Relation.Z

let tup = D.Tuple.of_ints

(* Unwrap a durability result; a real error fails the test with the
   rendered message instead of a backtrace. *)
let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected durability error: %s" (Ivm_stream.Errors.to_string e)

let tmp_path suffix =
  let path = Filename.temp_file "ivm_stream" suffix in
  Sys.remove path;
  path

let with_tmp suffix f =
  let path = tmp_path suffix in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* --- codec ----------------------------------------------------------- *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map D.Value.of_int (int_range (-1_000_000) 1_000_000);
        map D.Value.of_string (string_size ~gen:printable (int_range 0 12));
        map D.Value.of_float (map (fun i -> float_of_int i /. 4.) (int_range (-100) 100));
      ])

let tuple_gen = QCheck.Gen.(map D.Tuple.of_list (list_size (int_range 0 5) value_gen))

let update_gen =
  QCheck.Gen.(
    map3
      (fun rel tuple payload -> U.make ~rel ~tuple ~payload)
      (oneofl [ "R"; "S"; "T" ])
      tuple_gen (int_range (-3) 3))

let update_eq (a : int U.t) (b : int U.t) =
  a.U.rel = b.U.rel && D.Tuple.equal a.U.tuple b.U.tuple && a.U.payload = b.U.payload

let codec_roundtrip =
  QCheck.Test.make ~name:"codec: update roundtrip"
    (QCheck.make QCheck.Gen.(list_size (int_range 0 20) update_gen))
    (fun updates ->
      let b = Buffer.create 256 in
      List.iter (Codec.add_update (module Codec.Int_payload) b) updates;
      let s = Buffer.contents b in
      let pos = ref 0 in
      let back = List.map (fun _ -> Codec.update (module Codec.Int_payload) s pos) updates in
      !pos = String.length s && List.for_all2 update_eq updates back)

let codec_corrupt () =
  let b = Buffer.create 16 in
  Codec.add_tuple b (tup [ 1; 2; 3 ]);
  let s = Buffer.contents b in
  let clipped = String.sub s 0 (String.length s - 1) in
  Alcotest.check_raises "short buffer raises" (Codec.Corrupt "short read") (fun () ->
      ignore (Codec.tuple clipped (ref 0)))

(* --- WAL ------------------------------------------------------------- *)

let replay_all path ~from =
  let acc = ref [] in
  let stop = ok (Wal.Z.replay path ~from (fun u -> acc := u :: !acc)) in
  (List.rev !acc, stop)

let wal_roundtrip =
  QCheck.Test.make ~name:"wal: append then replay = identity"
    (QCheck.make QCheck.Gen.(list_size (int_range 0 40) update_gen))
    (fun updates ->
      with_tmp ".wal" (fun path ->
          let w = ok (Wal.Z.open_log path) in
          let offsets = List.map (fun u -> ok (Wal.Z.append w u)) updates in
          Wal.Z.close w;
          let back, stop = replay_all path ~from:0 in
          let replay_ok =
            List.length back = List.length updates
            && List.for_all2 update_eq updates back
            && stop = (match List.rev offsets with [] -> Wal.header_len | o :: _ -> o)
          in
          (* Replay from a mid-stream offset yields exactly the suffix. *)
          let suffix_ok =
            match offsets with
            | [] -> true
            | _ ->
                let k = List.length offsets / 2 in
                let from = if k = 0 then Wal.header_len else List.nth offsets (k - 1) in
                let suffix, _ = replay_all path ~from in
                List.length suffix = List.length updates - k
                && List.for_all2 update_eq (List.filteri (fun i _ -> i >= k) updates) suffix
          in
          replay_ok && suffix_ok))

let wal_torn_tail =
  QCheck.Test.make ~name:"wal: truncated last record is dropped, prefix survives"
    (QCheck.make
       QCheck.Gen.(pair (list_size (int_range 1 20) update_gen) (int_range 1 8)))
    (fun (updates, cut) ->
      with_tmp ".wal" (fun path ->
          let w = ok (Wal.Z.open_log path) in
          let offsets = List.map (fun u -> ok (Wal.Z.append w u)) updates in
          Wal.Z.close w;
          let last_end = List.nth offsets (List.length offsets - 1) in
          let last_start =
            if List.length offsets = 1 then Wal.header_len
            else List.nth offsets (List.length offsets - 2)
          in
          (* Cut somewhere strictly inside the last record. *)
          let at = max (last_start + 1) (last_end - cut) in
          Unix.truncate path at;
          let back, stop = replay_all path ~from:0 in
          let n = List.length updates in
          List.length back = n - 1
          && stop = last_start
          && List.for_all2 update_eq (List.filteri (fun i _ -> i < n - 1) updates) back
          &&
          (* Re-opening truncates the torn tail; appends resume cleanly. *)
          let w = ok (Wal.Z.open_log path) in
          let u = U.make ~rel:"R" ~tuple:(tup [ 9; 9 ]) ~payload:1 in
          ignore (ok (Wal.Z.append w u));
          Wal.Z.close w;
          let back2, _ = replay_all path ~from:0 in
          List.length back2 = n && update_eq (List.nth back2 (n - 1)) u))

let wal_garbage_tail () =
  with_tmp ".wal" (fun path ->
      let w = ok (Wal.Z.open_log path) in
      let u1 = U.make ~rel:"R" ~tuple:(tup [ 1; 2 ]) ~payload:1 in
      ignore (ok (Wal.Z.append w u1));
      let off = Wal.Z.offset w in
      Wal.Z.close w;
      (* A frame whose checksum cannot match: replay must stop before it. *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "\x04\x00\x00\x00\xff\xff\xff\xff\xde\xad\xbe\xef";
      close_out oc;
      let back, stop = replay_all path ~from:0 in
      Alcotest.(check int) "one record survives" 1 (List.length back);
      Alcotest.(check int) "stops before garbage" off stop)

(* --- queue ----------------------------------------------------------- *)

let queue_policies () =
  let q = Squeue.create ~capacity:2 Squeue.Drop_newest in
  Alcotest.(check bool) "push 1" true (Squeue.push q 1);
  Alcotest.(check bool) "push 2" true (Squeue.push q 2);
  Alcotest.(check bool) "push 3 dropped" false (Squeue.push q 3);
  Alcotest.(check int) "dropped count" 1 (Squeue.dropped q);
  Alcotest.(check (list int)) "fifo drain" [ 1; 2 ] (Squeue.pop_batch q ~max:10);
  let q = Squeue.create ~capacity:2 Squeue.Drop_oldest in
  List.iter (fun i -> ignore (Squeue.push q i)) [ 1; 2; 3; 4 ];
  Alcotest.(check (list int)) "keeps latest" [ 3; 4 ] (Squeue.pop_batch q ~max:10);
  Alcotest.(check int) "evicted count" 2 (Squeue.dropped q);
  Squeue.close q;
  Alcotest.(check bool) "push after close" false (Squeue.push q 5);
  Alcotest.(check (list int)) "end of stream" [] (Squeue.pop_batch q ~max:10)

let queue_mpsc () =
  let q = Squeue.create ~capacity:64 Squeue.Block in
  let producers = 4 and per_producer = 2_000 in
  let domains =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per_producer - 1 do
              ignore (Squeue.push q ((p * per_producer) + i))
            done))
  in
  let closer =
    Domain.spawn (fun () ->
        List.iter Domain.join domains;
        Squeue.close q)
  in
  let seen = Hashtbl.create 1024 in
  let rec drain () =
    match Squeue.pop_batch q ~max:100 with
    | [] -> ()
    | items ->
        List.iter (fun i -> Hashtbl.replace seen i ()) items;
        drain ()
  in
  drain ();
  Domain.join closer;
  Alcotest.(check int) "every item delivered exactly once" (producers * per_producer)
    (Hashtbl.length seen);
  Alcotest.(check int) "nothing dropped under Block" 0 (Squeue.dropped q)

(* Backpressure edge case: capacity 1 under concurrent producers. The
   lossy policies must preserve the accounting invariant
   [delivered = pushed = offered - dropped] (Drop_newest) resp.
   [delivered = pushed - dropped] (Drop_oldest, evictions counted), and
   the consumer must see every delivered item exactly once. *)
let queue_capacity_one policy () =
  let q = Squeue.create ~capacity:1 policy in
  let producers = 4 and per_producer = 1_000 in
  let offered = producers * per_producer in
  let domains =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per_producer - 1 do
              ignore (Squeue.push q ((p * per_producer) + i))
            done))
  in
  let closer =
    Domain.spawn (fun () ->
        List.iter Domain.join domains;
        Squeue.close q)
  in
  let seen = Hashtbl.create 1024 in
  let rec drain () =
    match Squeue.pop_batch q ~max:7 with
    | [] -> ()
    | items ->
        List.iter
          (fun i ->
            Alcotest.(check bool) "no duplicate delivery" false (Hashtbl.mem seen i);
            Hashtbl.replace seen i ())
          items;
        drain ()
  in
  drain ();
  Domain.join closer;
  let delivered = Hashtbl.length seen in
  (match policy with
  | Squeue.Block ->
      Alcotest.(check int) "lossless" offered delivered;
      Alcotest.(check int) "no drops" 0 (Squeue.dropped q)
  | Squeue.Drop_newest ->
      Alcotest.(check int) "delivered = pushed" (Squeue.pushed q) delivered;
      Alcotest.(check int) "offered = pushed + dropped" offered
        (Squeue.pushed q + Squeue.dropped q)
  | Squeue.Drop_oldest ->
      Alcotest.(check int) "delivered = pushed - evicted" (Squeue.pushed q - Squeue.dropped q)
        delivered;
      Alcotest.(check int) "everything admitted" offered (Squeue.pushed q));
  Alcotest.(check bool) "something was delivered" true (delivered > 0)

(* --- metrics --------------------------------------------------------- *)

let metrics_percentiles () =
  let h = Metrics.Hist.create () in
  for i = 1 to 100 do
    Metrics.Hist.add h (float_of_int i *. 1e-4)
  done;
  let p50 = Metrics.Hist.percentile h 0.5 in
  let p99 = Metrics.Hist.percentile h 0.99 in
  Alcotest.(check bool) "p50 near 5ms" true (p50 >= 4e-3 && p50 <= 7e-3);
  Alcotest.(check bool) "p99 near 10ms" true (p99 >= 8e-3 && p99 <= 13e-3);
  Alcotest.(check bool) "p99 >= p50" true (p99 >= p50);
  Alcotest.(check int) "count" 100 (Metrics.Hist.count h)

(* Per-tenant labels: two views recording the same op class must land
   in disjoint (view, op) series — one tenant's latency must never leak
   into another's exposition line. *)
let metrics_view_labels () =
  let m = Metrics.create () in
  Metrics.record_view_op m ~view:"t0j" ~op:"lookup" 1e-3;
  Metrics.record_view_op m ~view:"t0j" ~op:"lookup" 2e-3;
  Metrics.record_view_op m ~view:"t1e" ~op:"lookup" 5e-3;
  Metrics.record_view_op m ~view:"t1e" ~op:"snapshot" 7e-3;
  Alcotest.(check (list (pair string string)))
    "series enumerate sorted and disjoint"
    [ ("t0j", "lookup"); ("t1e", "lookup"); ("t1e", "snapshot") ]
    (Metrics.view_op_series m);
  Alcotest.(check int) "t0j holds its own samples" 2
    (Metrics.Hist.count (Metrics.view_op m ~view:"t0j" ~op:"lookup"));
  Alcotest.(check int) "t1e lookup unaffected" 1
    (Metrics.Hist.count (Metrics.view_op m ~view:"t1e" ~op:"lookup"));
  let text = Metrics.render m in
  let has s =
    let n = String.length text and k = String.length s in
    let rec go i = i + k <= n && (String.sub text i k = s || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "t0j series exposed" true
    (has "ivm_view_op_seconds_count{view=\"t0j\",op=\"lookup\"} 2");
  Alcotest.(check bool) "t1e series exposed" true
    (has "ivm_view_op_seconds_count{view=\"t1e\",op=\"lookup\"} 1");
  Alcotest.(check bool) "one TYPE header" true
    (has "# TYPE ivm_view_op_seconds histogram")

(* --- checkpoint + replay crash recovery ------------------------------ *)

(* The property, for a ring with a payload codec: for any update stream
   and any split point, [checkpoint at the split + WAL replay of the
   suffix] reproduces the directly-maintained database — including when
   the log has a torn tail *after* the replayed suffix. *)
module Crash_recovery (R : Ivm_ring.Sigs.SEMIRING) (P : Codec.PAYLOAD with type t = R.t) =
struct
  module Db = Ivm_data.Database.Make (R)
  module CRel = Ivm_data.Relation.Make (R)
  module W = Wal.Make (P)
  module C = Checkpoint.Make (R) (P)

  let schemas = [ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]); ("T", [ "C"; "A" ]) ]

  let make_db () =
    let db = Db.create () in
    List.iter (fun (n, vars) -> ignore (Db.declare db n (S.of_list vars))) schemas;
    db

  let run (updates : P.t U.t list) (split : int) (torn : bool) =
    with_tmp ".wal" (fun wal_path ->
        with_tmp ".ckpt" (fun ckpt_path ->
            let split = if updates = [] then 0 else split mod (List.length updates + 1) in
            (* Direct run: every update applied, all logged. *)
            let direct = make_db () in
            let w = ok (W.open_log wal_path) in
            let ckpt_db = make_db () in
            List.iteri
              (fun i u ->
                ignore (ok (W.append w u));
                Db.apply direct u;
                if i < split then Db.apply ckpt_db u;
                if i = split - 1 then
                  ok (C.save ckpt_path ~db:ckpt_db ~wal_offset:(W.offset w)))
              updates;
            if split = 0 then ok (C.save ckpt_path ~db:ckpt_db ~wal_offset:Wal.header_len);
            W.close w;
            if torn then begin
              (* A crash mid-append: garbage after the last full record. *)
              let oc = open_out_gen [ Open_append; Open_binary ] 0o644 wal_path in
              output_string oc "\x40\x00\x00\x00\x01\x02";
              close_out oc
            end;
            (* Crash, restart: load the snapshot, replay the suffix. *)
            let restored, offset = ok (C.load ckpt_path) in
            ignore (ok (W.replay wal_path ~from:offset (fun u -> Db.apply restored u)));
            List.for_all
              (fun (name, _) -> CRel.equal (Db.find restored name) (Db.find direct name))
              schemas))
end

module Crash_z = Crash_recovery (Ivm_ring.Int_ring) (Codec.Int_payload)
module Crash_f = Crash_recovery (Ivm_ring.Float_ring) (Codec.Float_payload)

let crash_gen payload_gen =
  QCheck.make
    QCheck.Gen.(
      triple
        (list_size (int_range 0 60)
           (map3
              (fun rel (a, b) payload -> U.make ~rel ~tuple:(tup [ a; b ]) ~payload)
              (oneofl [ "R"; "S"; "T" ])
              (pair (int_range 0 4) (int_range 0 4))
              payload_gen))
        small_nat bool)

let crash_recovery_z =
  QCheck.Test.make ~name:"checkpoint+replay = direct apply (Z ring, incl. torn tail)"
    (crash_gen QCheck.Gen.(int_range (-2) 2))
    (fun (updates, split, torn) -> Crash_z.run updates split torn)

let crash_recovery_float =
  QCheck.Test.make ~name:"checkpoint+replay = direct apply (float ring, incl. torn tail)"
    (crash_gen QCheck.Gen.(map (fun i -> float_of_int i /. 2.) (int_range (-4) 4)))
    (fun (updates, split, torn) -> Crash_f.run updates split torn)

(* --- the multi-view registry ----------------------------------------- *)

let q_rs =
  Ivm_query.Cq.make ~name:"Q" ~free:[ "B"; "A"; "C" ]
    [ Ivm_query.Cq.atom "R" [ "A"; "B" ]; Ivm_query.Cq.atom "S" [ "B"; "C" ] ]

let q_st =
  Ivm_query.Cq.make ~name:"Q2" ~free:[ "C"; "B"; "A" ]
    [ Ivm_query.Cq.atom "S" [ "B"; "C" ]; Ivm_query.Cq.atom "T" [ "C"; "A" ] ]

let triangle_schemas = [ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]); ("T", [ "C"; "A" ]) ]

let make_triangle_db () =
  let db = D.Database.Z.create () in
  List.iter (fun (n, vars) -> ignore (D.Database.Z.declare db n (S.of_list vars))) triangle_schemas;
  db

(* Factories: each rebuilds its engine from a base database — the
   preprocessing step of recovery. *)
let tri_factory (db : D.Database.Z.t) : M.t =
  let eng = Tb.Delta.create () in
  List.iter
    (fun name ->
      let rel = match name with "R" -> Tri.R | "S" -> Tri.S | _ -> Tri.T in
      Rel.iter
        (fun t p ->
          Tb.Delta.update eng rel
            ~a:(D.Value.to_int (D.Tuple.get t 0))
            ~b:(D.Value.to_int (D.Tuple.get t 1))
            p)
        (D.Database.Z.find db name))
    [ "R"; "S"; "T" ];
  M.of_triangle_batch ~name:"tri" (module Tb.Delta) eng

let view_tree_factory q name (db : D.Database.Z.t) : M.t =
  let forest = Option.get (Ivm_query.Variable_order.canonical q) in
  M.of_view_tree ~name q (Ivm_engine.View_tree.build q forest db)

let strategy_factory q name (db : D.Database.Z.t) : M.t =
  let forest = Option.get (Ivm_query.Variable_order.canonical q) in
  M.of_strategy ~name (Ivm_engine.Strategy.create Ivm_engine.Strategy.Lazy_fact q forest db)

let register_standard_views reg =
  Registry.register reg ~name:"tri" tri_factory;
  Registry.register reg ~name:"paths-rs" (view_tree_factory q_rs "paths-rs");
  Registry.register reg ~name:"paths-st" (strategy_factory q_st "paths-st")

let edge_stream n =
  let gen =
    Ivm_workload.Graph_gen.create ~seed:11
      { Ivm_workload.Graph_gen.nodes = 12; skew = 0.; delete_ratio = 0.3 }
  in
  List.init n (fun _ ->
      let e = Ivm_workload.Graph_gen.next gen in
      let rel = match e.Ivm_workload.Graph_gen.rel with 0 -> "R" | 1 -> "S" | _ -> "T" in
      U.make ~rel
        ~tuple:(tup [ e.Ivm_workload.Graph_gen.src; e.Ivm_workload.Graph_gen.dst ])
        ~payload:e.Ivm_workload.Graph_gen.mult)

let registry_matches_direct () =
  let stream = edge_stream 2_000 in
  (* Reference: each engine maintained directly, tuple by tuple. *)
  let ref_db = make_triangle_db () in
  let ref_reg = Registry.create ref_db in
  register_standard_views ref_reg;
  List.iter (fun u -> Registry.apply_batch ref_reg [ u ]) stream;
  (* Served: same stream, arbitrary batch boundaries. *)
  let db = make_triangle_db () in
  let reg = Registry.create db in
  register_standard_views reg;
  let rec go = function
    | [] -> ()
    | rest ->
        let k = min 97 (List.length rest) in
        Registry.apply_batch reg (List.filteri (fun i _ -> i < k) rest);
        go (List.filteri (fun i _ -> i >= k) rest)
  in
  go stream;
  List.iter2
    (fun (n1, f1) (n2, f2) ->
      Alcotest.(check string) "same view" n1 n2;
      Alcotest.(check int) ("fingerprint " ^ n1) f1 f2)
    (Registry.fingerprints ref_reg) (Registry.fingerprints reg);
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool) ("base " ^ name) true
        (Rel.equal (D.Database.Z.find ref_db name) (D.Database.Z.find db name)))
    triangle_schemas

(* --- scheduler ------------------------------------------------------- *)

let coalesce_cancels () =
  let db = make_triangle_db () in
  let metrics = Metrics.create () in
  let reg = Registry.create ~metrics db in
  let queue = Squeue.create ~capacity:4 Squeue.Block in
  let sched = Scheduler.create ~queue ~registry:reg ~metrics () in
  let items =
    List.map Scheduler.item
      [
        U.make ~rel:"R" ~tuple:(tup [ 1; 2 ]) ~payload:1;
        U.make ~rel:"R" ~tuple:(tup [ 1; 2 ]) ~payload:(-1);
        U.make ~rel:"S" ~tuple:(tup [ 3; 4 ]) ~payload:2;
        U.make ~rel:"S" ~tuple:(tup [ 3; 4 ]) ~payload:3;
      ]
  in
  let check_once () =
    match Scheduler.coalesce sched items with
    | [ u ] ->
        Alcotest.(check string) "surviving relation" "S" u.U.rel;
        Alcotest.(check int) "summed payload" 5 u.U.payload
    | l -> Alcotest.failf "expected one coalesced update, got %d" (List.length l)
  in
  (* Twice through the same scheduler: the second epoch reuses the
     cleared accumulators and must see none of the first's state. *)
  check_once ();
  check_once ()

(* An epoch whose payloads cancel to zero entirely must still count as
   an epoch (durably logged, applied-counter advanced, adaptive limit
   intact) while handing the registry an empty batch — and the views
   must be exactly as if the epoch never happened. *)
let zero_cancel_epoch () =
  with_tmp ".wal" (fun wal_path ->
      let db = make_triangle_db () in
      let metrics = Metrics.create () in
      let reg = Registry.create ~metrics db in
      register_standard_views reg;
      let before = Registry.fingerprints reg in
      let wal = ok (Wal.Z.open_log wal_path) in
      let queue = Squeue.create ~capacity:64 Squeue.Block in
      let sched = Scheduler.create ~wal ~initial_batch:64 ~queue ~registry:reg ~metrics () in
      (* Insert/delete pairs across two relations: the whole epoch
         cancels. *)
      List.iter
        (fun u -> ignore (Squeue.push queue (Scheduler.item u)))
        [
          U.make ~rel:"R" ~tuple:(tup [ 1; 2 ]) ~payload:1;
          U.make ~rel:"S" ~tuple:(tup [ 2; 3 ]) ~payload:2;
          U.make ~rel:"R" ~tuple:(tup [ 1; 2 ]) ~payload:(-1);
          U.make ~rel:"S" ~tuple:(tup [ 2; 3 ]) ~payload:(-2);
        ];
      Alcotest.(check bool) "epoch ran" true (ok (Scheduler.step sched));
      Alcotest.(check int) "all four updates accounted" 4 (Scheduler.applied sched);
      Alcotest.(check int) "coalesced away entirely" 0 metrics.Metrics.coalesced;
      List.iter2
        (fun (n1, f1) (n2, f2) ->
          Alcotest.(check string) "same view" n1 n2;
          Alcotest.(check int) ("view untouched: " ^ n1) f1 f2)
        before (Registry.fingerprints reg);
      (* The log still carries the cancelled records (durability is
         pre-coalescing), and the scheduler keeps serving. *)
      Alcotest.(check int) "wal has all records" 4 (ok (Wal.Z.record_count wal_path));
      List.iter
        (fun u -> ignore (Squeue.push queue (Scheduler.item u)))
        [ U.make ~rel:"R" ~tuple:(tup [ 4; 5 ]) ~payload:1 ];
      Squeue.close queue;
      Alcotest.(check bool) "next epoch ran" true (ok (Scheduler.step sched));
      Alcotest.(check bool) "stream end" false (ok (Scheduler.step sched));
      Wal.Z.close wal)

(* --- supervision ------------------------------------------------------ *)

let flaky_view name : D.Database.Z.t -> M.t =
 fun _ ->
  {
    M.name;
    relations = [ "R" ];
    apply_batch = (fun _ -> failwith "flaky: injected apply failure");
    output_count = (fun () -> 0);
    fingerprint = (fun () -> 0);
    enumerate = (fun () -> []);
  }

(* A view whose engine keeps failing is quarantined while the healthy
   views keep serving the full stream — apply_batch never raises and
   the healthy fingerprints match a registry that never had the flaky
   peer. *)
let quarantine_isolates () =
  let stream = edge_stream 1_500 in
  let reference = Registry.create (make_triangle_db ()) in
  register_standard_views reference;
  let metrics = Metrics.create () in
  let reg = Registry.create ~metrics ~backoff_base:1e-6 ~max_failures:3 (make_triangle_db ()) in
  register_standard_views reg;
  Registry.register reg ~name:"flaky" (flaky_view "flaky");
  let rec go reg = function
    | [] -> ()
    | rest ->
        let k = min 50 (List.length rest) in
        Registry.apply_batch reg (List.filteri (fun i _ -> i < k) rest);
        go reg (List.filteri (fun i _ -> i >= k) rest)
  in
  go reference stream;
  go reg stream;
  Alcotest.(check bool) "flaky ends quarantined" true
    (Registry.health reg "flaky" = Registry.Quarantined);
  List.iter
    (fun (name, h) ->
      if name <> "flaky" then
        Alcotest.(check bool) (name ^ " stays healthy") true (h = Registry.Healthy))
    (Registry.statuses reg);
  List.iter
    (fun (name, fp) ->
      if name <> "flaky" then
        Alcotest.(check int)
          ("healthy view unaffected: " ^ name)
          (List.assoc name (Registry.fingerprints reference))
          fp)
    (Registry.fingerprints reg);
  Alcotest.(check bool) "failures surfaced in metrics" true
    ((Metrics.view metrics "flaky").Metrics.failures > 0);
  (* heal rebuilds it from the base state (the build itself works). *)
  Alcotest.(check (list string)) "heal recovers everything" [] (Registry.heal reg);
  Alcotest.(check bool) "flaky healthy after heal" true
    (Registry.health reg "flaky" = Registry.Healthy)

(* A structurally poisonous update (string where the triangle kernel
   needs ints) degrades only the consuming view; recovery isolates the
   poison tuple, dead-letters it, and rebuilds. The recovered view
   equals a run that never saw the poison. *)
let poison_dead_letter () =
  let stream = edge_stream 600 in
  let poison = U.make ~rel:"R" ~tuple:(D.Tuple.of_list [ D.Value.Str "bad"; D.Value.Int 7 ]) ~payload:1 in
  let clean = Registry.create (make_triangle_db ()) in
  register_standard_views clean;
  let metrics = Metrics.create () in
  let reg = Registry.create ~metrics ~backoff_base:1e-6 (make_triangle_db ()) in
  register_standard_views reg;
  let rec go reg with_poison i = function
    | [] -> ()
    | rest ->
        let k = min 50 (List.length rest) in
        let chunk = List.filteri (fun j _ -> j < k) rest in
        let chunk = if with_poison && i = 3 then chunk @ [ poison ] else chunk in
        Registry.apply_batch reg chunk;
        go reg with_poison (i + 1) (List.filteri (fun j _ -> j >= k) rest)
  in
  go clean false 0 stream;
  go reg true 0 stream;
  Alcotest.(check (list string)) "all views healthy at end" [] (Registry.heal reg);
  let dead = List.assoc "tri" (Registry.dead_letters reg) in
  Alcotest.(check int) "poison dead-lettered once" 1 (List.length dead);
  let rel, tu = List.hd dead in
  Alcotest.(check string) "dead-letter relation" "R" rel;
  Alcotest.(check bool) "dead-letter tuple" true (D.Tuple.equal tu poison.U.tuple);
  (* tri sees the stream minus the poison — same count as the clean run. *)
  Alcotest.(check int) "tri recovered to the clean state"
    (List.assoc "tri" (Registry.fingerprints clean))
    (List.assoc "tri" (Registry.fingerprints reg));
  Alcotest.(check bool) "dead letter surfaced in metrics" true
    ((Metrics.view metrics "tri").Metrics.dead_letters = 1);
  (* The base database keeps the poison (it is relation-valid there). *)
  Alcotest.(check bool) "base db retains the tuple" true
    (Rel.mem (D.Database.Z.find (Registry.db reg) "R") poison.U.tuple)

(* self_check repairs silently corrupted view state from the base
   database. *)
let self_check_repairs () =
  let db = make_triangle_db () in
  let reg = Registry.create db in
  register_standard_views reg;
  Registry.apply_batch reg (edge_stream 500);
  Alcotest.(check (list string)) "clean state passes" [] (Registry.self_check reg);
  (* Corrupt one engine behind the registry's back: feed it an update
     the base database never saw. *)
  let tri = Registry.find reg "tri" in
  tri.M.apply_batch [ U.make ~rel:"R" ~tuple:(tup [ 3; 4 ]) ~payload:5 ];
  Alcotest.(check (list string)) "divergence detected and repaired" [ "tri" ]
    (Registry.self_check reg);
  Alcotest.(check (list string)) "second pass clean" [] (Registry.self_check reg)

(* The acceptance criterion: a served run with a WAL and a mid-stream
   checkpoint, then kill-and-restart — restore the checkpoint, rebuild
   the views, replay the WAL suffix — must yield state identical to the
   uninterrupted run. *)
let serve_kill_restart () =
  with_tmp ".wal" (fun wal_path ->
      with_tmp ".ckpt" (fun ckpt_path ->
          let total = 4_000 in
          let db = make_triangle_db () in
          let metrics = Metrics.create () in
          let reg = Registry.create ~metrics db in
          register_standard_views reg;
          let wal = ok (Wal.Z.open_log wal_path) in
          let queue = Squeue.create ~capacity:512 Squeue.Block in
          let sched =
            Scheduler.create ~wal ~initial_batch:64 ~queue ~registry:reg ~metrics ()
          in
          let producer =
            Domain.spawn (fun () ->
                List.iter
                  (fun u -> ignore (Squeue.push queue (Scheduler.item u)))
                  (edge_stream total);
                Squeue.close queue)
          in
          let checkpointed = ref false in
          ok
            (Scheduler.run
               ~on_epoch:(fun s ->
                 if (not !checkpointed) && Scheduler.applied s >= total / 2 then begin
                   checkpointed := true;
                   ok
                     (Checkpoint.Z.save ckpt_path ~db:(Registry.db reg)
                        ~wal_offset:(Wal.Z.offset wal))
                 end)
               sched);
          Domain.join producer;
          Wal.Z.close wal;
          Alcotest.(check bool) "checkpoint was taken mid-stream" true !checkpointed;
          Alcotest.(check int) "every update applied" total (Scheduler.applied sched);
          Alcotest.(check bool) "latency histogram populated" true
            (Metrics.Hist.count metrics.Metrics.latency = total);
          (* Kill-and-restart. *)
          let restored_db, offset = ok (Checkpoint.Z.load ckpt_path) in
          let restored = Registry.restore reg restored_db in
          let pending = ref [] in
          let flush () =
            Registry.apply_batch restored (List.rev !pending);
            pending := []
          in
          ignore
            (ok
               (Wal.Z.replay wal_path ~from:offset (fun u ->
                    pending := u :: !pending;
                    if List.length !pending >= 256 then flush ())));
          flush ();
          List.iter2
            (fun (n1, f1) (n2, f2) ->
              Alcotest.(check string) "same view" n1 n2;
              Alcotest.(check int) ("restored fingerprint " ^ n1) f1 f2)
            (Registry.fingerprints reg) (Registry.fingerprints restored);
          List.iter
            (fun (name, _) ->
              Alcotest.(check bool) ("restored base " ^ name) true
                (Rel.equal
                   (D.Database.Z.find (Registry.db restored) name)
                   (D.Database.Z.find db name)))
            triangle_schemas))

let qt t = QCheck_alcotest.to_alcotest ~long:false t

let () =
  Alcotest.run ~and_exit:false "stream"
    [
      ("codec", [ qt codec_roundtrip; Alcotest.test_case "corrupt" `Quick codec_corrupt ]);
      ( "wal",
        [
          qt wal_roundtrip;
          qt wal_torn_tail;
          Alcotest.test_case "garbage tail" `Quick wal_garbage_tail;
        ] );
      ( "queue",
        [
          Alcotest.test_case "policies" `Quick queue_policies;
          Alcotest.test_case "mpsc" `Quick queue_mpsc;
          Alcotest.test_case "capacity 1, block" `Quick (queue_capacity_one Squeue.Block);
          Alcotest.test_case "capacity 1, drop newest" `Quick
            (queue_capacity_one Squeue.Drop_newest);
          Alcotest.test_case "capacity 1, drop oldest" `Quick
            (queue_capacity_one Squeue.Drop_oldest);
        ] );
      ( "metrics",
        [
          Alcotest.test_case "percentiles" `Quick metrics_percentiles;
          Alcotest.test_case "per-view op labels disjoint" `Quick metrics_view_labels;
        ] );
      ("crash recovery", [ qt crash_recovery_z; qt crash_recovery_float ]);
      ( "registry",
        [ Alcotest.test_case "multi-view = direct" `Quick registry_matches_direct ] );
      ( "scheduler",
        [
          Alcotest.test_case "coalesce" `Quick coalesce_cancels;
          Alcotest.test_case "zero-cancel epoch" `Quick zero_cancel_epoch;
          Alcotest.test_case "serve, kill, restart" `Quick serve_kill_restart;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "quarantine isolates" `Quick quarantine_isolates;
          Alcotest.test_case "poison dead-letter" `Quick poison_dead_letter;
          Alcotest.test_case "self-check repairs" `Quick self_check_repairs;
        ] );
    ]
