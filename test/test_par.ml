(* The parallel maintenance layer: domain pool, hash-sharded relations,
   parallel batch application, and the engine batch fronts — checked
   against the sequential implementations. The load-bearing property is
   the paper's Sec. 2 commutativity claim: for any pool width, parallel
   sharded batch apply must be extensionally equal to sequential apply. *)

module D = Ivm_data
module S = D.Schema
module U = D.Update
module Pool = Ivm_par.Domain_pool
module Tri = Ivm_engine.Triangle
module Tb = Ivm_engine.Triangle_batch

let tup = D.Tuple.of_ints

(* Pools are created once and reused; widths beyond the host's core
   count still exercise the task hand-off logic. *)
let widths = [ 1; 2; 4; 8 ]
let pools = List.map (fun w -> (w, Pool.create ~domains:w)) widths
let pool w = List.assoc w pools

(* --- domain pool ----------------------------------------------------- *)

let pool_unit () =
  List.iter
    (fun (w, p) ->
      Alcotest.(check int) "width" w (Pool.width p);
      let total =
        Pool.fold p ~add:( + ) ~zero:0
          (List.init 32 (fun i -> fun () -> i + 1))
      in
      Alcotest.(check int) "fold sums all tasks" (32 * 33 / 2) total;
      let cells = Array.make 100 0 in
      Pool.run p
        (List.map
           (fun (lo, len) ->
             fun () ->
              for i = lo to lo + len - 1 do
                cells.(i) <- i
              done)
           (Pool.chunk_bounds p 100));
      Alcotest.(check bool) "chunk_bounds covers the range" true
        (Array.to_list cells = List.init 100 Fun.id))
    pools

let pool_exceptions () =
  let p = pool 4 in
  Alcotest.check_raises "task exception re-raised" Exit (fun () ->
      Pool.run p (List.init 8 (fun i -> fun () -> if i = 5 then raise Exit)));
  (* The pool survives a failed run. *)
  Alcotest.(check int) "pool usable after failure" 10
    (Pool.fold p ~add:( + ) ~zero:0 (List.init 5 (fun i -> fun () -> i)))

(* --- sharded relations vs sequential relations ----------------------- *)

(* A batch generator over a small domain, with payloads that cancel
   often — exercising zero-elision (entries evicted in one order may be
   re-created in another). *)
let gen_batch payload_gen =
  QCheck.list_of_size (QCheck.Gen.int_range 0 60)
    (QCheck.triple (QCheck.int_range 0 4) (QCheck.int_range 0 4) payload_gen)

module Test_sharded (R : Ivm_ring.Sigs.SEMIRING) = struct
  module Rel = D.Relation.Make (R)
  module Srel = Ivm_par.Sharded_relation.Make (R)
  module Pb = Ivm_par.Par_batch.Make (R)

  (* Sequential reference, then one parallel run per pool width. *)
  let matches_sequential (batch : (int * int * R.t) list) =
    let schema = S.of_list [ "A"; "B" ] in
    let seq = Rel.create schema in
    List.iter (fun (a, b, p) -> Rel.add_entry seq (tup [ a; b ]) p) batch;
    let updates =
      List.map (fun (a, b, p) -> U.make ~rel:"R" ~tuple:(tup [ a; b ]) ~payload:p) batch
    in
    List.for_all
      (fun (_, p) ->
        let srel = Srel.create ~shards:8 schema in
        Pb.apply p ~find:(fun _ -> srel) updates;
        Srel.equal_relation srel seq && Rel.equal (Srel.to_relation srel) seq)
      pools
end

module Sharded_z = Test_sharded (Ivm_ring.Int_ring)
module Sharded_f = Test_sharded (Ivm_ring.Float_ring)

let sharded_z_matches =
  QCheck.Test.make ~name:"sharded parallel apply = sequential (Z ring)"
    (gen_batch (QCheck.int_range (-3) 3))
    Sharded_z.matches_sequential

let sharded_f_matches =
  (* Payloads k/2 with k ∈ [−4, 4]: float adds and cancellations are
     exact, so zero-elision fires exactly as in the Z ring. *)
  QCheck.Test.make ~name:"sharded parallel apply = sequential (float ring)"
    (gen_batch (QCheck.map (fun k -> float_of_int k /. 2.) (QCheck.int_range (-4) 4)))
    (fun batch -> Sharded_f.matches_sequential batch)

let sharded_roundtrip =
  QCheck.Test.make ~name:"of_relation/to_relation roundtrip"
    (gen_batch (QCheck.int_range (-3) 3)) (fun batch ->
      let schema = S.of_list [ "A"; "B" ] in
      let module Rel = D.Relation.Z in
      let module Srel = Ivm_par.Sharded_relation.Make (Ivm_ring.Int_ring) in
      let r = Rel.create schema in
      List.iter (fun (a, b, p) -> Rel.add_entry r (tup [ a; b ]) p) batch;
      let srel = Srel.of_relation ~shards:4 r in
      Srel.size srel = Rel.size r && Rel.equal (Srel.to_relation srel) r)

(* --- triangle batch fronts vs sequential engines --------------------- *)

let gen_edges =
  QCheck.list_of_size (QCheck.Gen.int_range 0 80)
    (QCheck.quad (QCheck.int_range 0 2) (QCheck.int_range 0 4) (QCheck.int_range 0 4)
       (QCheck.int_range (-2) 2))

let to_edges l =
  List.map
    (fun (r, a, b, m) ->
      ((match r with 0 -> Tri.R | 1 -> Tri.S | _ -> Tri.T), a, b, m))
    l

(* Split a stream into batches of [k] so several apply_batch calls chain
   (later batches see the earlier ones' state). *)
let rec batches k = function
  | [] -> []
  | l ->
      let rec take n = function
        | x :: rest when n > 0 ->
            let h, t = take (n - 1) rest in
            (x :: h, t)
        | rest -> ([], rest)
      in
      let h, t = take k l in
      h :: batches k t

let tri_batch_matches (module B : Tb.BATCH_ENGINE) name =
  QCheck.Test.make ~name
    (QCheck.pair gen_edges (QCheck.int_range 1 25))
    (fun (edges, k) ->
      let edges = to_edges edges in
      let seq = Tri.Delta.create () in
      List.iter (fun (rel, a, b, m) -> Tri.Delta.update seq rel ~a ~b m) edges;
      List.for_all
        (fun (_, p) ->
          let eng = B.create ~pool:p () in
          List.iter (B.apply_batch eng) (batches k edges);
          B.count eng = Tri.Delta.count seq)
        pools)

let tri_delta_batch_matches =
  tri_batch_matches (module Tb.Delta) "Delta batch apply = sequential delta engine"

let tri_one_view_batch_matches =
  tri_batch_matches (module Tb.One_view) "One_view batch apply = sequential delta engine"

let tri_batch_single_updates =
  (* The single-tuple path of the batch fronts is the sequential one. *)
  QCheck.Test.make ~name:"batch fronts' single-tuple path = sequential" gen_edges
    (fun edges ->
      let edges = to_edges edges in
      let seq = Tri.One_view.create () in
      let b_delta = Tb.Delta.create () in
      let b_one = Tb.One_view.create () in
      List.iter
        (fun (rel, a, b, m) ->
          Tri.One_view.update seq rel ~a ~b m;
          Tb.Delta.update b_delta rel ~a ~b m;
          Tb.One_view.update b_one rel ~a ~b m)
        edges;
      Tb.Delta.count b_delta = Tri.One_view.count seq
      && Tb.One_view.count b_one = Tri.One_view.count seq)

(* --- strategy batch front -------------------------------------------- *)

let fig3_query =
  Ivm_query.Cq.make ~name:"Q" ~free:[ "Y"; "X"; "Z" ]
    [ Ivm_query.Cq.atom "R" [ "Y"; "X" ]; Ivm_query.Cq.atom "S" [ "Y"; "Z" ] ]

let strategy_batch_matches =
  let gen =
    QCheck.list_of_size (QCheck.Gen.int_range 0 50)
      (QCheck.quad QCheck.bool (QCheck.int_range 0 3) (QCheck.int_range 0 3)
         (QCheck.int_range (-2) 2))
  in
  QCheck.Test.make ~name:"strategy apply_batch with pool = sequential apply" gen
    (fun ops ->
      let batch =
        List.map
          (fun (is_r, x, y, m) ->
            U.make ~rel:(if is_r then "R" else "S") ~tuple:(tup [ x; y ]) ~payload:m)
          ops
      in
      let forest = Option.get (Ivm_query.Variable_order.canonical fig3_query) in
      let make kind =
        let db = D.Database.Z.create () in
        let _ = D.Database.Z.declare db "R" (S.of_list [ "Y"; "X" ]) in
        let _ = D.Database.Z.declare db "S" (S.of_list [ "Y"; "Z" ]) in
        Ivm_engine.Strategy.create kind fig3_query forest db
      in
      List.for_all
        (fun kind ->
          let seq = make kind in
          List.iter (Ivm_engine.Strategy.apply seq) batch;
          let expected = Ivm_engine.Strategy.output seq in
          List.for_all
            (fun (_, p) ->
              let par = make kind in
              Ivm_engine.Strategy.apply_batch ~pool:p par batch;
              D.Relation.Z.equal (Ivm_engine.Strategy.output par) expected)
            pools)
        Ivm_engine.Strategy.[ Eager_fact; Eager_list; Lazy_fact; Lazy_list ])

let qt t = QCheck_alcotest.to_alcotest ~long:false t

let () =
  Fun.protect
    ~finally:(fun () -> List.iter (fun (_, p) -> Pool.destroy p) pools)
    (fun () ->
      Alcotest.run ~and_exit:false "par"
        [
          ( "domain pool",
            [
              Alcotest.test_case "run/fold/chunks" `Quick pool_unit;
              Alcotest.test_case "exceptions" `Quick pool_exceptions;
            ] );
          ( "sharded relations",
            [ qt sharded_z_matches; qt sharded_f_matches; qt sharded_roundtrip ] );
          ( "triangle batch fronts",
            [
              qt tri_delta_batch_matches;
              qt tri_one_view_batch_matches;
              qt tri_batch_single_updates;
            ] );
          ("strategy batch front", [ qt strategy_batch_matches ]);
        ])
