(* The data substrate: values, tuples, schemas, ring relations, group
   indexes, updates — checked against brute-force association-list
   models with qcheck, plus targeted unit tests. *)

module V = Ivm_data.Value
module T = Ivm_data.Tuple
module S = Ivm_data.Schema
module Rel = Ivm_data.Relation.Z
module Db = Ivm_data.Database.Z
module U = Ivm_data.Update
module Flat = Ivm_data.Flat_tbl

let tup = T.of_ints

(* --- unit tests ------------------------------------------------------ *)

let value_unit () =
  Alcotest.(check bool) "int eq" true (V.equal (V.of_int 3) (V.of_int 3));
  Alcotest.(check bool) "mixed neq" false (V.equal (V.of_int 3) (V.of_string "3"));
  Alcotest.(check int) "roundtrip" 42 (V.to_int (V.of_int 42));
  Alcotest.(check string) "pp" "7" (V.to_string (V.of_int 7));
  Alcotest.check_raises "to_int on string" (Invalid_argument "Value.to_int") (fun () ->
      ignore (V.to_int (V.of_string "x")))

let tuple_unit () =
  Alcotest.(check bool) "equal" true (T.equal (tup [ 1; 2 ]) (tup [ 1; 2 ]));
  Alcotest.(check bool) "not equal" false (T.equal (tup [ 1; 2 ]) (tup [ 2; 1 ]));
  Alcotest.(check int) "unit arity" 0 (T.arity T.unit);
  Alcotest.(check bool) "project" true
    (T.equal (T.project (tup [ 5; 6; 7 ]) [| 2; 0 |]) (tup [ 7; 5 ]));
  Alcotest.(check bool) "append" true
    (T.equal (T.append (tup [ 1 ]) (tup [ 2; 3 ])) (tup [ 1; 2; 3 ]));
  Alcotest.(check int) "compare by prefix" (-1)
    (compare (T.compare (tup [ 1; 2 ]) (tup [ 1; 3 ])) 0)

let schema_unit () =
  let s = S.of_list [ "A"; "B"; "C" ] in
  Alcotest.(check int) "arity" 3 (S.arity s);
  Alcotest.(check int) "position" 1 (S.position s "B");
  Alcotest.(check bool) "mem" true (S.mem "C" s);
  Alcotest.(check (list string)) "union keeps order" [ "A"; "B"; "C"; "D" ]
    (S.to_list (S.union s (S.of_list [ "B"; "D" ])));
  Alcotest.(check (list string)) "inter" [ "B" ] (S.to_list (S.inter s (S.of_list [ "D"; "B" ])));
  Alcotest.(check (list string)) "diff" [ "A"; "C" ] (S.to_list (S.diff s (S.of_list [ "B" ])));
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Schema.of_list: duplicate variable A") (fun () ->
      ignore (S.of_list [ "A"; "A" ]))

let relation_unit () =
  let r = Rel.create (S.of_list [ "A"; "B" ]) in
  Rel.add_entry r (tup [ 1; 2 ]) 3;
  Rel.add_entry r (tup [ 1; 2 ]) (-3);
  Alcotest.(check int) "zero elision" 0 (Rel.size r);
  Rel.add_entry r (tup [ 1; 2 ]) 2;
  Rel.add_entry r (tup [ 4; 5 ]) 1;
  Alcotest.(check int) "size" 2 (Rel.size r);
  Alcotest.(check int) "get" 2 (Rel.get r (tup [ 1; 2 ]));
  Alcotest.(check int) "get absent" 0 (Rel.get r (tup [ 9; 9 ]))

let join_unit () =
  (* Fig. 2: the triangle query over the example database. *)
  let r = Rel.of_list (S.of_list [ "A"; "B" ]) [ (tup [ 1; 1 ], 1); (tup [ 2; 1 ], 3) ] in
  let s = Rel.of_list (S.of_list [ "B"; "C" ]) [ (tup [ 1; 1 ], 2); (tup [ 1; 2 ], 4) ] in
  let t = Rel.of_list (S.of_list [ "C"; "A" ]) [ (tup [ 1; 1 ], 1); (tup [ 2; 2 ], 2) ] in
  let rs = Rel.join r s in
  Alcotest.(check (list string)) "join schema" [ "A"; "B"; "C" ] (S.to_list (Rel.schema rs));
  Alcotest.(check int) "join size" 4 (Rel.size rs);
  let rst = Rel.join rs t in
  (* Join output of Fig. 2: (a1,b1,c1) -> 2, (a2,b1,c2) -> 24. *)
  Alcotest.(check int) "rst size" 2 (Rel.size rst);
  Alcotest.(check int) "a1b1c1" 2 (Rel.get rst (tup [ 1; 1; 1 ]));
  Alcotest.(check int) "a2b1c2" 24 (Rel.get rst (tup [ 2; 1; 2 ]));
  let q = Rel.aggregate (Rel.aggregate (Rel.aggregate rst "A") "B") "C" in
  Alcotest.(check int) "triangle count Fig.2" 26 (Rel.scalar q)

let aggregate_lift_unit () =
  let r = Rel.of_list (S.of_list [ "A"; "B" ]) [ (tup [ 1; 10 ], 2); (tup [ 1; 20 ], 1) ] in
  (* Lift B-values into the ring: SUM(B) with multiplicities. *)
  let s = Rel.aggregate ~lift:V.to_int r "B" in
  Alcotest.(check int) "sum with lifting" ((2 * 10) + 20) (Rel.get s (tup [ 1 ]))

let index_unit () =
  let r = Rel.create (S.of_list [ "A"; "B" ]) in
  let ix = Rel.Index.create ~rel_schema:(S.of_list [ "A"; "B" ]) ~key:(S.of_list [ "A" ]) in
  let upd t p =
    Rel.add_entry r t p;
    Rel.Index.update ix t p
  in
  upd (tup [ 1; 10 ]) 1;
  upd (tup [ 1; 11 ]) 2;
  upd (tup [ 2; 12 ]) 1;
  Alcotest.(check int) "group size" 2 (Rel.Index.group_size ix (tup [ 1 ]));
  upd (tup [ 1; 11 ]) (-2);
  Alcotest.(check int) "group shrinks on delete" 1 (Rel.Index.group_size ix (tup [ 1 ]));
  upd (tup [ 2; 12 ]) (-1);
  Alcotest.(check bool) "empty group removed" false (Rel.Index.mem_key ix (tup [ 2 ]));
  Alcotest.(check int) "group count" 1 (Rel.Index.group_count ix)

let scratch_store_rejected () =
  (* The scratch footgun (tuple.mli): a mutable probe buffer stored as
     a key would keep mutating under its stale inline hash and corrupt
     the table — the storage layer must refuse it at every entry. *)
  let k = T.scratch 2 in
  T.set k 0 (V.of_int 1);
  T.set k 1 (V.of_int 2);
  Alcotest.(check bool) "is_scratch" true (T.is_scratch k);
  Alcotest.(check bool) "fresh tuples are not scratch" false (T.is_scratch (tup [ 1; 2 ]));
  let tbl = Flat.create ~size:8 0 in
  Alcotest.check_raises "Flat_tbl.set rejects scratch"
    (Invalid_argument "Flat_tbl.set: scratch tuples must not be stored as table keys")
    (fun () -> Flat.set tbl k 7);
  let r = Rel.create (S.of_list [ "A"; "B" ]) in
  Alcotest.check_raises "Relation.add_entry rejects scratch"
    (Invalid_argument "Flat_tbl.set: scratch tuples must not be stored as table keys")
    (fun () -> Rel.add_entry r k 1);
  (* Probing with a scratch buffer is the whole point — always fine. *)
  Rel.add_entry r (tup [ 1; 2 ]) 5;
  Alcotest.(check int) "scratch probe reads" 5 (Rel.get r k);
  Alcotest.(check bool) "scratch mem reads" true (Rel.mem r k);
  (* project returns a fresh immutable tuple, safe to store. *)
  let proj = T.project k [| 0; 1 |] in
  Alcotest.(check bool) "projection of scratch is storable" false (T.is_scratch proj);
  Flat.set tbl proj 7;
  Alcotest.(check int) "stored projection" 7 (Flat.find_default tbl (tup [ 1; 2 ]) 0)

let equal_asymmetric_sizes () =
  (* Regression: [equal] scans only [a]'s support, so without the size
     guard a strict subset with matching payloads would pass. *)
  let s = S.of_list [ "A"; "B" ] in
  let small = Rel.of_list s [ (tup [ 1; 2 ], 3) ] in
  let big = Rel.of_list s [ (tup [ 1; 2 ], 3); (tup [ 4; 5 ], 1) ] in
  Alcotest.(check bool) "subset is not equal" false (Rel.equal small big);
  Alcotest.(check bool) "superset is not equal" false (Rel.equal big small);
  Alcotest.(check bool) "reflexive" true (Rel.equal big (Rel.copy big))

let flat_tbl_resize_churn () =
  (* March a table through several resize boundaries (initial capacity
     8, grow at 7/8 load), then delete most of it and reuse — the
     backward-shift path must leave every survivor reachable. *)
  let tbl = Flat.create ~size:0 (-1) in
  for i = 0 to 199 do
    Flat.set tbl (tup [ i; i * 7 ]) i
  done;
  Alcotest.(check int) "all inserted" 200 (Flat.length tbl);
  for i = 0 to 199 do
    if i mod 2 = 0 then Flat.remove tbl (tup [ i; i * 7 ])
  done;
  Alcotest.(check int) "half deleted" 100 (Flat.length tbl);
  for i = 0 to 199 do
    let expect = if i mod 2 = 0 then -1 else i in
    Alcotest.(check int)
      (Printf.sprintf "survivor %d" i)
      expect
      (Flat.find_default tbl (tup [ i; i * 7 ]) (-1))
  done;
  Flat.clear tbl;
  Alcotest.(check int) "cleared" 0 (Flat.length tbl);
  Flat.set tbl (tup [ 3; 4 ]) 9;
  Alcotest.(check int) "reusable after clear" 9 (Flat.find_default tbl (tup [ 3; 4 ]) (-1))

let database_unit () =
  let db = Db.create () in
  let _ = Db.declare db "R" (S.of_list [ "A" ]) in
  Db.apply db (U.make ~rel:"R" ~tuple:(tup [ 1 ]) ~payload:2);
  Db.apply db (U.make ~rel:"R" ~tuple:(tup [ 2 ]) ~payload:1);
  Alcotest.(check int) "db size" 2 (Db.size db);
  Alcotest.check_raises "unknown relation" (Invalid_argument "Database.find: no relation X")
    (fun () -> ignore (Db.find db "X"))

(* --- property tests --------------------------------------------------- *)

(* Model: a relation is an assoc list (tuple-as-int-list -> payload). *)
type model = (int list * int) list

let gen_model : model QCheck.arbitrary =
  QCheck.list_of_size (QCheck.Gen.int_range 0 20)
    (QCheck.pair
       (QCheck.pair (QCheck.int_range 0 4) (QCheck.int_range 0 4))
       (QCheck.int_range (-3) 3))
  |> QCheck.map (List.map (fun ((a, b), p) -> ([ a; b ], p)))

let to_rel schema (m : model) = Rel.of_list schema (List.map (fun (t, p) -> (tup t, p)) m)

let model_get (m : model) t =
  List.fold_left (fun acc (t', p) -> if t' = t then acc + p else acc) 0 m

let pairs l1 l2 = List.concat_map (fun a -> List.map (fun b -> (a, b)) l2) l1
let dom = [ 0; 1; 2; 3; 4 ]

let union_matches_model =
  QCheck.Test.make ~name:"union = payload-wise addition" (QCheck.pair gen_model gen_model)
    (fun (m1, m2) ->
      let s = S.of_list [ "A"; "B" ] in
      let u = Rel.union (to_rel s m1) (to_rel s m2) in
      List.for_all
        (fun (a, b) ->
          Rel.get u (tup [ a; b ]) = model_get m1 [ a; b ] + model_get m2 [ a; b ])
        (pairs dom dom))

let join_matches_model =
  QCheck.Test.make ~name:"join = pointwise product over union schema"
    (QCheck.pair gen_model gen_model) (fun (m1, m2) ->
      let r = to_rel (S.of_list [ "A"; "B" ]) m1 in
      let s = to_rel (S.of_list [ "B"; "C" ]) m2 in
      let j = Rel.join r s in
      List.for_all
        (fun ((a, b), c) ->
          Rel.get j (tup [ a; b; c ]) = model_get m1 [ a; b ] * model_get m2 [ b; c ])
        (pairs (pairs dom dom) dom))

let aggregate_matches_model =
  QCheck.Test.make ~name:"aggregate marginalizes" gen_model (fun m ->
      let r = to_rel (S.of_list [ "A"; "B" ]) m in
      let agg = Rel.aggregate r "B" in
      List.for_all
        (fun a ->
          Rel.get agg (tup [ a ])
          = List.fold_left (fun acc b -> acc + model_get m [ a; b ]) 0 dom)
        dom)

let project_is_iterated_aggregate =
  QCheck.Test.make ~name:"project_onto = iterated aggregation" gen_model (fun m ->
      let r = to_rel (S.of_list [ "A"; "B" ]) m in
      Rel.equal (Rel.project_onto r (S.of_list [ "A" ])) (Rel.aggregate r "B"))

let join_commutes =
  QCheck.Test.make ~name:"join commutative up to reordering"
    (QCheck.pair gen_model gen_model) (fun (m1, m2) ->
      let r = to_rel (S.of_list [ "A"; "B" ]) m1 in
      let s = to_rel (S.of_list [ "B"; "C" ]) m2 in
      let j1 = Rel.join r s in
      let j2 = Rel.project_onto (Rel.join s r) (S.of_list [ "A"; "B"; "C" ]) in
      Rel.equal j1 j2)

let batch_order_irrelevant =
  (* The paper's Sec. 2 optimization claim: update batches commute. *)
  QCheck.Test.make ~name:"update batches commute" (QCheck.pair gen_model QCheck.int)
    (fun (m, seed) ->
      let s = S.of_list [ "A"; "B" ] in
      let batch = List.map (fun (t, p) -> U.make ~rel:"R" ~tuple:(tup t) ~payload:p) m in
      let rng = Random.State.make [| seed |] in
      let shuffled = U.shuffle ~rng batch in
      let run b =
        let db = Db.create () in
        let _ = Db.declare db "R" s in
        Db.apply_batch db b;
        Db.find db "R"
      in
      Rel.equal (run batch) (run shuffled))

let index_consistent_with_relation =
  QCheck.Test.make ~name:"index stays consistent under update streams"
    (QCheck.pair gen_model gen_model) (fun (m1, m2) ->
      let s = S.of_list [ "A"; "B" ] in
      let r = Rel.create s in
      let ix = Rel.Index.create ~rel_schema:s ~key:(S.of_list [ "A" ]) in
      List.iter
        (fun (t, p) ->
          Rel.add_entry r (tup t) p;
          Rel.Index.update ix (tup t) p)
        (m1 @ m2);
      (* Every group reconstructs the relation restricted to the key. *)
      List.for_all
        (fun a ->
          let via_index = Rel.Index.fold_group ix (tup [ a ]) (fun _ p acc -> acc + p) 0 in
          let direct =
            Rel.fold (fun t p acc -> if V.to_int (T.get t 0) = a then acc + p else acc) r 0
          in
          via_index = direct
          && Rel.Index.group_size ix (tup [ a ])
             = Rel.fold (fun t _ acc -> if V.to_int (T.get t 0) = a then acc + 1 else acc) r 0)
        dom)

(* --- Flat_tbl vs stdlib Hashtbl oracle ------------------------------- *)

(* Drive the open-addressing table and a stdlib [Hashtbl.Make] oracle
   through the same operation sequence, then demand full agreement
   through every read path. The key space is small so sequences revisit
   keys (overwrites, delete/re-insert) and long enough to cross the
   8 → 16 → 32 → 64 resize boundaries. *)
let agree flat oracle =
  Flat.length flat = T.Tbl.length oracle
  && T.Tbl.fold
       (fun k v ok ->
         ok && Flat.find_opt flat k = Some v
         && Flat.find_default flat k min_int = v
         && Flat.mem flat k)
       oracle true
  && Flat.fold (fun k v ok -> ok && T.Tbl.find_opt oracle k = Some v) flat true
  && List.length (List.of_seq (Flat.to_seq flat)) = Flat.length flat

let apply_op flat oracle (a, b, sel) ~remove_bias =
  let k = tup [ a; b ] in
  if sel < remove_bias then begin
    Flat.remove flat k;
    T.Tbl.remove oracle k
  end
  else begin
    Flat.set flat k sel;
    T.Tbl.replace oracle k sel
  end

let gen_ops =
  QCheck.list_of_size (QCheck.Gen.int_range 0 400)
    (QCheck.triple (QCheck.int_range 0 5) (QCheck.int_range 0 5) (QCheck.int_range 0 9))

let lockstep_of ~name ~remove_bias =
  QCheck.Test.make ~name gen_ops (fun ops ->
      let flat = Flat.create ~size:0 min_int in
      let oracle = T.Tbl.create 16 in
      List.iter (fun op -> apply_op flat oracle op ~remove_bias) ops;
      agree flat oracle)

let flat_lockstep = lockstep_of ~name:"Flat_tbl lockstep with Hashtbl oracle" ~remove_bias:3

let flat_lockstep_churn =
  (* Deletion-heavy mix: backward-shift deletion dominates, so chains
     are repeatedly compacted while inserts re-displace them. *)
  lockstep_of ~name:"Flat_tbl lockstep under deletion churn" ~remove_bias:6

let flat_copy_independent =
  QCheck.Test.make ~name:"Flat_tbl.copy is a snapshot" gen_ops (fun ops ->
      let flat = Flat.create ~size:0 min_int in
      let oracle = T.Tbl.create 16 in
      let n = List.length ops / 2 in
      List.iteri (fun i op -> if i < n then apply_op flat oracle op ~remove_bias:3) ops;
      let snap = Flat.copy flat in
      let snap_oracle = T.Tbl.copy oracle in
      List.iteri (fun i op -> if i >= n then apply_op flat oracle op ~remove_bias:3) ops;
      (* The copy must reflect the midpoint exactly, whatever happened
         to the original afterwards — and the original must agree too. *)
      agree snap snap_oracle && agree flat oracle)

let flat_iter_matches_fold =
  QCheck.Test.make ~name:"Flat_tbl iter/fold visit each entry once" gen_ops (fun ops ->
      let flat = Flat.create ~size:0 min_int in
      let oracle = T.Tbl.create 16 in
      List.iter (fun op -> apply_op flat oracle op ~remove_bias:3) ops;
      let sum_iter = ref 0 and count = ref 0 in
      Flat.iter
        (fun _ v ->
          sum_iter := !sum_iter + v;
          incr count)
        flat;
      let sum_fold = Flat.fold (fun _ v acc -> acc + v) flat 0 in
      let sum_oracle = T.Tbl.fold (fun _ v acc -> acc + v) oracle 0 in
      !count = Flat.length flat && !sum_iter = sum_fold && sum_fold = sum_oracle)

let qt t = QCheck_alcotest.to_alcotest ~long:false t

let () =
  Alcotest.run "data"
    [
      ( "units",
        [
          Alcotest.test_case "values" `Quick value_unit;
          Alcotest.test_case "tuples" `Quick tuple_unit;
          Alcotest.test_case "schemas" `Quick schema_unit;
          Alcotest.test_case "relations" `Quick relation_unit;
          Alcotest.test_case "join (Fig. 2)" `Quick join_unit;
          Alcotest.test_case "aggregation with lifting" `Quick aggregate_lift_unit;
          Alcotest.test_case "group index" `Quick index_unit;
          Alcotest.test_case "database" `Quick database_unit;
          Alcotest.test_case "scratch keys rejected by storage" `Quick scratch_store_rejected;
          Alcotest.test_case "equal with asymmetric sizes" `Quick equal_asymmetric_sizes;
          Alcotest.test_case "flat table resize and churn" `Quick flat_tbl_resize_churn;
        ] );
      ( "storage properties",
        [
          qt flat_lockstep;
          qt flat_lockstep_churn;
          qt flat_copy_independent;
          qt flat_iter_matches_fold;
        ] );
      ( "properties",
        [
          qt union_matches_model;
          qt join_matches_model;
          qt aggregate_matches_model;
          qt project_is_iterated_aggregate;
          qt join_commutes;
          qt batch_order_irrelevant;
          qt index_consistent_with_relation;
        ] );
    ]
