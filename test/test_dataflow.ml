(* The dataflow operator DAG: per-operator delta rules against
   from-scratch recomputation, the extremum re-scan fallback, window
   watermark retraction, source sharing, and the Maintainable wrap. *)

module D = Ivm_data
module G = Ivm_dataflow.Graph
module M = Ivm_engine.Maintainable
module U = D.Update

let tup ints = D.Tuple.of_ints ints
let up rel ints payload = U.make ~rel ~tuple:(tup ints) ~payload

let canon entries =
  List.sort compare (List.map (fun (tp, p) -> (D.Tuple.to_list tp, p)) entries)

let check_entries what g view expected =
  Alcotest.(check bool)
    what true
    (canon (G.entries g view)
    = canon (List.map (fun (ints, p) -> (tup ints, p)) expected))

(* ---- linear operators ------------------------------------------------ *)

let filter_map_project () =
  let g = G.create () in
  let r = G.source g ~rel:"R" ~schema:[ "a"; "b" ] in
  let even = G.filter g ~label:"b even" (fun tp -> D.Value.to_int (D.Tuple.get tp 1) mod 2 = 0) r in
  G.output g ~name:"even" even;
  G.output g ~name:"firsts" (G.project g ~cols:[ "a" ] r);
  G.output g ~name:"swapped"
    (G.map g ~schema:[ "b"; "a" ]
       (fun tp -> D.Tuple.of_list [ D.Tuple.get tp 1; D.Tuple.get tp 0 ])
       even);
  G.apply g [ up "R" [ 1; 2 ] 1; up "R" [ 1; 3 ] 2; up "R" [ 4; 6 ] 1 ];
  check_entries "filter keeps evens" g "even" [ ([ 1; 2 ], 1); ([ 4; 6 ], 1) ];
  check_entries "projection sums multiplicities" g "firsts" [ ([ 1 ], 3); ([ 4 ], 1) ];
  check_entries "map rewrites tuples" g "swapped" [ ([ 2; 1 ], 1); ([ 6; 4 ], 1) ];
  G.apply g [ up "R" [ 1; 2 ] (-1); up "R" [ 1; 3 ] (-2) ];
  check_entries "deletes retract" g "even" [ ([ 4; 6 ], 1) ];
  check_entries "zero rows elided" g "firsts" [ ([ 4 ], 1) ]

let aggregate_sum () =
  let g = G.create () in
  let r = G.source g ~rel:"R" ~schema:[ "g"; "v" ] in
  G.output g ~name:"sums"
    (G.aggregate g ~lift:(fun tp -> D.Value.to_int (D.Tuple.get tp 1)) ~group:[ "g" ] r);
  G.apply g [ up "R" [ 1; 10 ] 1; up "R" [ 1; 5 ] 2; up "R" [ 2; 7 ] 1 ];
  check_entries "grouped SUM" g "sums" [ ([ 1 ], 20); ([ 2 ], 7) ];
  G.apply g [ up "R" [ 1; 10 ] (-1); up "R" [ 2; 7 ] (-1) ];
  check_entries "SUM after deletes" g "sums" [ ([ 1 ], 10) ]

(* ---- join: live deltas = from-scratch rebuild on random streams ------ *)

let join_random_agrees () =
  let build () =
    let g = G.create () in
    let r = G.source g ~rel:"R" ~schema:[ "a"; "b" ] in
    let s = G.source g ~rel:"S" ~schema:[ "b"; "c" ] in
    G.output g ~name:"q" (G.project g ~cols:[ "a"; "c" ] (G.join g r s));
    g
  in
  let rng = Random.State.make [| 71 |] in
  for _ = 1 to 40 do
    let live = build () in
    let history = ref [] in
    for _ = 1 to 30 do
      let rel = if Random.State.bool rng then "R" else "S" in
      let t = [ Random.State.int rng 3; Random.State.int rng 3 ] in
      let p = if Random.State.int rng 4 = 0 then -1 else 1 in
      (* keep base multiplicities non-negative *)
      let total =
        List.fold_left
          (fun acc (u : int U.t) ->
            if u.U.rel = rel && D.Tuple.to_list u.U.tuple = List.map D.Value.of_int t then
              acc + u.U.payload
            else acc)
          0 !history
      in
      let p = if p < 0 && total <= 0 then 1 else p in
      let u = up rel t p in
      history := u :: !history;
      G.apply live [ u ]
    done;
    let scratch = build () in
    G.apply scratch (List.rev !history);
    Alcotest.(check bool)
      "incremental join = one-batch rebuild" true
      (canon (G.entries live "q") = canon (G.entries scratch "q"));
    Alcotest.(check bool)
      "state fingerprints agree" true
      (G.state_fingerprint live = G.state_fingerprint scratch)
  done

(* ---- distinct -------------------------------------------------------- *)

let distinct_zero_crossings () =
  let g = G.create () in
  let r = G.source g ~rel:"R" ~schema:[ "a" ] in
  G.output g ~name:"d" (G.distinct g r);
  G.apply g [ up "R" [ 1 ] 3; up "R" [ 2 ] 1 ];
  check_entries "present once" g "d" [ ([ 1 ], 1); ([ 2 ], 1) ];
  G.apply g [ up "R" [ 1 ] (-2) ];
  check_entries "still positive: no change" g "d" [ ([ 1 ], 1); ([ 2 ], 1) ];
  G.apply g [ up "R" [ 1 ] (-1); up "R" [ 2 ] (-1) ];
  check_entries "crossed zero: retracted" g "d" []

(* ---- extremum: re-scan fallback and top-k slots ---------------------- *)

let extremum_rescan () =
  let g = G.create () in
  let r = G.source g ~rel:"R" ~schema:[ "g"; "v" ] in
  G.output g ~name:"mn" (G.minimum g ~col:"v" ~group:[ "g" ] r);
  G.output g ~name:"mx" (G.maximum g ~col:"v" ~group:[ "g" ] r);
  G.apply g [ up "R" [ 1; 3 ] 1; up "R" [ 1; 5 ] 1; up "R" [ 1; 7 ] 2 ];
  check_entries "min" g "mn" [ ([ 1; 3 ], 1) ];
  check_entries "max" g "mx" [ ([ 1; 7 ], 1) ];
  let before = G.rescans g in
  (* a higher value arrives: the served min is untouched, no re-scan *)
  G.apply g [ up "R" [ 1; 4 ] 1 ];
  Alcotest.(check int) "insert above min: no re-scan" before (G.rescans g);
  (* delete the served min: the ordered index must be re-consulted *)
  G.apply g [ up "R" [ 1; 3 ] (-1) ];
  check_entries "min re-scanned" g "mn" [ ([ 1; 4 ], 1) ];
  Alcotest.(check bool) "deletion of served min re-scans" true (G.rescans g > before);
  (* the served max has multiplicity 2: deleting one copy keeps it *)
  G.apply g [ up "R" [ 1; 7 ] (-1) ];
  check_entries "max survives partial delete" g "mx" [ ([ 1; 7 ], 1) ];
  G.apply g [ up "R" [ 1; 7 ] (-1) ];
  check_entries "max falls back" g "mx" [ ([ 1; 5 ], 1) ];
  (* empty the group entirely *)
  G.apply g [ up "R" [ 1; 4 ] (-1); up "R" [ 1; 5 ] (-1) ];
  check_entries "empty group emits nothing (min)" g "mn" [];
  check_entries "empty group emits nothing (max)" g "mx" []

let topk_slots () =
  let g = G.create () in
  let r = G.source g ~rel:"R" ~schema:[ "g"; "v" ] in
  G.output g ~name:"top2" (G.extremum g ~k:2 ~dir:G.Desc ~col:"v" ~group:[ "g" ] r);
  G.apply g [ up "R" [ 1; 9 ] 1; up "R" [ 1; 7 ] 3; up "R" [ 1; 5 ] 1 ];
  (* slots: one 9, one of the three 7s *)
  check_entries "largest-2 slots" g "top2" [ ([ 1; 9 ], 1); ([ 1; 7 ], 1) ];
  G.apply g [ up "R" [ 1; 9 ] (-1) ];
  check_entries "evicted head: 7 fills both slots" g "top2" [ ([ 1; 7 ], 2) ];
  G.apply g [ up "R" [ 1; 7 ] (-2) ];
  check_entries "slots refill from below" g "top2" [ ([ 1; 7 ], 1); ([ 1; 5 ], 1) ]

(* ---- windows --------------------------------------------------------- *)

let window_watermark () =
  let g = G.create () in
  let r = G.source g ~rel:"E" ~schema:[ "t"; "g"; "v" ] in
  G.output g ~name:"w"
    (G.window g ~lift:(fun tp -> D.Value.to_int (D.Tuple.get tp 2)) ~time:"t" ~size:10
       ~group:[ "g" ] r);
  G.apply g [ up "E" [ 1; 1; 5 ] 1; up "E" [ 4; 1; 2 ] 1; up "E" [ 12; 1; 9 ] 1 ];
  (* watermark 12 closes pane [0,10) only once it passes end + lateness(0):
     12 >= 10, so the first pane is already retracted *)
  check_entries "closed pane retracted, open pane served" g "w" [ ([ 10; 1 ], 9) ];
  Alcotest.(check int) "one pane retracted" 1 (G.retracted_panes g);
  let drops = G.late_drops g in
  G.apply g [ up "E" [ 3; 1; 100 ] 1 ];
  Alcotest.(check int) "late row dropped" (drops + 1) (G.late_drops g);
  check_entries "late row did not resurrect the pane" g "w" [ ([ 10; 1 ], 9) ];
  (* deletes inside a live pane retract normally *)
  G.apply g [ up "E" [ 12; 1; 9 ] (-1); up "E" [ 15; 1; 4 ] 1 ];
  check_entries "live pane maintained" g "w" [ ([ 10; 1 ], 4) ]

let window_sliding () =
  let g = G.create () in
  let r = G.source g ~rel:"E" ~schema:[ "t"; "v" ] in
  G.output g ~name:"w"
    (G.window g ~slide:5 ~lift:(fun tp -> D.Value.to_int (D.Tuple.get tp 1)) ~time:"t"
       ~size:10 ~group:[] r);
  (* t=7 lands in panes [0,10) and [5,15) *)
  G.apply g [ up "E" [ 7; 3 ] 1 ];
  check_entries "row counted in both overlapping panes" g "w" [ ([ 0 ], 3); ([ 5 ], 3) ];
  G.apply g [ up "E" [ 11; 2 ] 1 ];
  (* watermark 11: pane [0,10) closes; [5,15) and [10,20) stay live *)
  check_entries "slide retains overlapping live panes" g "w" [ ([ 5 ], 5); ([ 10 ], 2) ]

(* ---- sharing and introspection --------------------------------------- *)

let shared_sources () =
  let g = G.create () in
  let r1 = G.source g ~rel:"R" ~schema:[ "g"; "v" ] in
  let r2 = G.source g ~rel:"R" ~schema:[ "g"; "v" ] in
  Alcotest.(check bool) "sources hash-consed" true (r1 == r2);
  G.output g ~name:"mn" (G.minimum g ~col:"v" ~group:[ "g" ] r1);
  G.output g ~name:"mx" (G.maximum g ~col:"v" ~group:[ "g" ] r2);
  let nodes = G.node_count g in
  G.apply g [ up "R" [ 1; 4 ] 1; up "R" [ 1; 8 ] 1 ];
  check_entries "min view" g "mn" [ ([ 1; 4 ], 1) ];
  check_entries "max view" g "mx" [ ([ 1; 8 ], 1) ];
  (* 1 shared source + 2 extrema; outputs are registrations, not nodes *)
  Alcotest.(check int) "one physical source feeds both views" 3 nodes;
  Alcotest.(check bool) "describe lists every node" true
    (List.length (G.describe g) = nodes);
  Alcotest.(check (list string)) "relations deduplicated" [ "R" ] (G.relations g)

let maintainable_wrap () =
  let build () =
    let g = G.create () in
    let r = G.source g ~rel:"R" ~schema:[ "g"; "v" ] in
    G.output g ~name:"mn" (G.minimum g ~col:"v" ~group:[ "g" ] r);
    g
  in
  let g = build () in
  let m = M.of_dataflow ~name:"mn" g in
  m.M.apply_batch [ up "R" [ 1; 6 ] 1; up "R" [ 1; 2 ] 1 ];
  m.M.apply_batch [ up "R" [ 1; 2 ] (-1) ];
  Alcotest.(check bool)
    "wrapper serves the view" true
    (canon (m.M.enumerate ()) = [ ([ D.Value.of_int 1; D.Value.of_int 6 ], 1) ]);
  Alcotest.(check int) "output_count" 1 (m.M.output_count ());
  let scratch = build () in
  let m2 = M.of_dataflow ~name:"mn" scratch in
  m2.M.apply_batch [ up "R" [ 1; 6 ] 1 ];
  Alcotest.(check int)
    "fingerprint equals from-scratch recompute after extremum deletion"
    (m2.M.fingerprint ()) (m.M.fingerprint ())

let () =
  Alcotest.run "dataflow"
    [
      ( "linear",
        [
          Alcotest.test_case "filter/map/project" `Quick filter_map_project;
          Alcotest.test_case "grouped SUM" `Quick aggregate_sum;
        ] );
      ("join", [ Alcotest.test_case "random streams = rebuild" `Quick join_random_agrees ]);
      ("distinct", [ Alcotest.test_case "zero crossings" `Quick distinct_zero_crossings ]);
      ( "extremum",
        [
          Alcotest.test_case "re-scan on served-value delete" `Quick extremum_rescan;
          Alcotest.test_case "top-k slots" `Quick topk_slots;
        ] );
      ( "window",
        [
          Alcotest.test_case "watermark retraction + late drops" `Quick window_watermark;
          Alcotest.test_case "sliding panes" `Quick window_sliding;
        ] );
      ( "graph",
        [
          Alcotest.test_case "shared sources" `Quick shared_sources;
          Alcotest.test_case "maintainable wrap" `Quick maintainable_wrap;
        ] );
    ]
