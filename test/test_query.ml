(* Structural query analysis: every worked example in the paper appears
   here as a test, plus property tests relating the classifiers. *)

module Cq = Ivm_query.Cq
module H = Ivm_query.Hierarchical
module Hg = Ivm_query.Hypergraph
module Fd = Ivm_query.Fd
module Cqap = Ivm_query.Cqap
module Vo = Ivm_query.Variable_order
module Rw = Ivm_query.Rewrite
module Sd = Ivm_query.Static_dynamic

let checkb = Alcotest.(check bool)

(* --- the paper's example queries -------------------------------------- *)

let triangle =
  Cq.make ~name:"Q" ~free:[]
    [ Cq.atom "R" [ "A"; "B" ]; Cq.atom "S" [ "B"; "C" ]; Cq.atom "T" [ "C"; "A" ] ]

(* Ex. 4.3: a simple non-hierarchical query. *)
let ex43_nonhier =
  Cq.make ~name:"Q" ~free:[]
    [ Cq.atom "R" [ "X" ]; Cq.atom "S" [ "X"; "Y" ]; Cq.atom "T" [ "Y" ] ]

(* Ex. 4.3: hierarchical but not q-hierarchical. *)
let ex43_hier_not_q =
  Cq.make ~name:"Q" ~free:[ "X" ] [ Cq.atom "R" [ "X"; "Y" ]; Cq.atom "S" [ "Y" ] ]

(* Fig. 3: the q-hierarchical running example. *)
let fig3 =
  Cq.make ~name:"Q" ~free:[ "Y"; "X"; "Z" ]
    [ Cq.atom "R" [ "Y"; "X" ]; Cq.atom "S" [ "Y"; "Z" ] ]

(* Sec. 5 / Fig. 7: the simplest non-q-hierarchical query. *)
let fig7 = Cq.make ~name:"Q" ~free:[ "A" ] [ Cq.atom "R" [ "A"; "B" ]; Cq.atom "S" [ "B" ] ]

let hierarchical_examples () =
  checkb "triangle not hierarchical" false (H.is_hierarchical triangle);
  checkb "Ex4.3 not hierarchical" false (H.is_hierarchical ex43_nonhier);
  checkb "Ex4.3 witness" true (H.non_hierarchical_witness ex43_nonhier <> None);
  checkb "dropping an atom makes Ex4.3 hierarchical" true
    (H.is_hierarchical
       (Cq.make ~name:"Q" ~free:[] [ Cq.atom "S" [ "X"; "Y" ]; Cq.atom "T" [ "Y" ] ]));
  checkb "Ex4.3b hierarchical" true (H.is_hierarchical ex43_hier_not_q);
  checkb "Ex4.3b not q-hierarchical" false (H.is_q_hierarchical ex43_hier_not_q);
  checkb "Fig3 q-hierarchical" true (H.is_q_hierarchical fig3);
  checkb "Fig7 hierarchical" true (H.is_hierarchical fig7);
  checkb "Fig7 not q-hierarchical" false (H.is_q_hierarchical fig7);
  (* Boolean version of Fig7 is q-hierarchical (no free vars). *)
  checkb "Fig7 boolean q-hierarchical" true
    (H.is_q_hierarchical { fig7 with Cq.free = [] })

let acyclicity () =
  checkb "triangle cyclic" false (Hg.is_alpha_acyclic triangle);
  checkb "path acyclic" true
    (Hg.is_alpha_acyclic
       (Cq.make ~name:"P" ~free:[]
          [ Cq.atom "R" [ "A"; "B" ]; Cq.atom "S" [ "B"; "C" ]; Cq.atom "T" [ "C"; "D" ] ]));
  (* Free-connex: full path join is free-connex; the projection to the
     endpoints is acyclic but not free-connex. *)
  let path free =
    Cq.make ~name:"P" ~free [ Cq.atom "R" [ "A"; "B" ]; Cq.atom "S" [ "B"; "C" ] ]
  in
  checkb "full join free-connex" true (Hg.is_free_connex (path [ "A"; "B"; "C" ]));
  checkb "endpoints not free-connex" false (Hg.is_free_connex (path [ "A"; "C" ]));
  checkb "q-hierarchical implies free-connex (Fig3)" true (Hg.is_free_connex fig3)

let fd_closure () =
  (* The example below Def. 4.9: Σ = {A→C; BC→D}, C({A,B}) = {A,B,C,D}. *)
  let fds = [ Fd.make [ "A" ] [ "C" ]; Fd.make [ "B"; "C" ] [ "D" ] ] in
  let cl = Fd.closure fds [ "A"; "B" ] in
  Alcotest.(check (list string))
    "closure" [ "A"; "B"; "C"; "D" ]
    (List.sort String.compare (Fd.SSet.elements cl))

let ex410_retailer () =
  (* Ex. 4.10 shape: zip -> locn turns the retailer join hierarchical. *)
  let q =
    Cq.make ~name:"Retailer" ~free:[ "locn"; "dateid"; "ksn"; "zip" ]
      [
        Cq.atom "Inventory" [ "locn"; "dateid"; "ksn" ];
        Cq.atom "Weather" [ "locn"; "dateid" ];
        Cq.atom "Location" [ "locn"; "zip" ];
        Cq.atom "Census" [ "zip" ];
      ]
  in
  checkb "not hierarchical as written" false (H.is_hierarchical q);
  let fds = [ Fd.make [ "zip" ] [ "locn" ] ] in
  checkb "hierarchical under zip->locn" true (Fd.hierarchical_under fds q);
  checkb "q-hierarchical under zip->locn" true (Fd.q_hierarchical_under fds q)

let ex412_fd_reduct () =
  (* Ex. 4.12: Q(Z,Y,X,W) = R(X,W)·S(X,Y)·T(Y,Z), Σ = {X→Y, Y→Z}. *)
  let q =
    Cq.make ~name:"Q" ~free:[ "Z"; "Y"; "X"; "W" ]
      [ Cq.atom "R" [ "X"; "W" ]; Cq.atom "S" [ "X"; "Y" ]; Cq.atom "T" [ "Y"; "Z" ] ]
  in
  checkb "not hierarchical" false (H.is_hierarchical q);
  let fds = [ Fd.make [ "X" ] [ "Y" ]; Fd.make [ "Y" ] [ "Z" ] ] in
  let reduct = Fd.sigma_reduct fds q in
  checkb "reduct q-hierarchical" true (H.is_q_hierarchical reduct);
  (* The reduct extends R to R'(X,W,Y,Z) and S to S'(X,Y,Z). *)
  let r' = Cq.find_atom reduct "R" in
  Alcotest.(check (list string))
    "R schema closure"
    [ "W"; "X"; "Y"; "Z" ]
    (List.sort String.compare r'.Cq.vars);
  let s' = Cq.find_atom reduct "S" in
  Alcotest.(check (list string))
    "S schema closure" [ "X"; "Y"; "Z" ]
    (List.sort String.compare s'.Cq.vars)

let cqap_examples () =
  (* Ex. 4.6 (1): triangle detection with all-input head — tractable. *)
  let e3 =
    [ Cq.atom "E1" [ "A"; "B" ]; Cq.atom "E2" [ "B"; "C" ]; Cq.atom "E3" [ "C"; "A" ] ]
  in
  let detect =
    Cqap.make ~input:[ "A"; "B"; "C" ]
      (Cq.make ~name:"detect" ~free:[ "A"; "B"; "C" ] e3)
  in
  checkb "triangle detection tractable" true (Cqap.is_tractable detect);
  (* Its fracture splits into three disconnected atoms. *)
  let f = Cqap.fracture detect in
  Alcotest.(check int) "fracture components" 3
    (List.length (Hg.components f.Cqap.cq));
  (* Ex. 4.6 (2): edge triangle listing — not tractable. *)
  let listing =
    Cqap.make ~input:[ "A"; "B" ] (Cq.make ~name:"list" ~free:[ "A"; "B"; "C" ] e3)
  in
  checkb "edge triangle listing not tractable" false (Cqap.is_tractable listing);
  (* Ex. 4.6 (3): Q(A|B) = S(A,B)·T(B) — tractable. *)
  let lk =
    Cqap.make ~input:[ "B" ]
      (Cq.make ~name:"lk" ~free:[ "A"; "B" ] [ Cq.atom "S" [ "A"; "B" ]; Cq.atom "T" [ "B" ] ])
  in
  checkb "lookup join tractable" true (Cqap.is_tractable lk);
  (* A CQAP with no input variables is tractable iff q-hierarchical. *)
  let as_cqap q = Cqap.make ~input:[] q in
  checkb "no-input tractable = q-hierarchical (Fig3)" true (Cqap.is_tractable (as_cqap fig3));
  checkb "no-input not tractable (Fig7)" false (Cqap.is_tractable (as_cqap fig7))

let variable_orders () =
  let forest = Option.get (Vo.canonical fig3) in
  checkb "canonical validates" true (Vo.validate fig3 forest = Ok ());
  checkb "free-top" true (Vo.free_top fig3 forest);
  (* Y is the root (largest atom set); X and Z hang below. *)
  (match forest with
  | [ { Vo.var = "Y"; children } ] ->
      Alcotest.(check (list string))
        "children" [ "X"; "Z" ]
        (List.sort String.compare (List.map (fun c -> c.Vo.var) children))
  | _ -> Alcotest.fail "unexpected canonical forest shape");
  (* dep sets: dep(X) = dep(Z) = {Y}, dep(Y) = {}. *)
  let deps = Vo.keys fig3 forest in
  Alcotest.(check (list string)) "dep X" [ "Y" ] (List.assoc "X" deps);
  Alcotest.(check (list string)) "dep Y" [] (List.assoc "Y" deps);
  (* A chain is always a valid order for the triangle query. *)
  checkb "triangle chain valid" true
    (Vo.validate triangle [ Vo.chain [ "A"; "B"; "C" ] ] = Ok ());
  (* But a forest with A and B as separate roots is not. *)
  let bad = [ { Vo.var = "A"; children = [] };
              { Vo.var = "B"; children = [ { Vo.var = "C"; children = [] } ] } ] in
  checkb "invalid order rejected" true (Vo.validate triangle bad <> Ok ());
  checkb "canonical of non-hierarchical is None" true (Vo.canonical triangle = None)

let rewrite_cascade () =
  (* Ex. 4.5. *)
  let q2 =
    Cq.make ~name:"Q2" ~free:[ "A"; "B"; "C" ]
      [ Cq.atom "R" [ "A"; "B" ]; Cq.atom "S" [ "B"; "C" ] ]
  in
  let q1 =
    Cq.make ~name:"Q1" ~free:[ "A"; "B"; "C"; "D" ]
      [ Cq.atom "R" [ "A"; "B" ]; Cq.atom "S" [ "B"; "C" ]; Cq.atom "T" [ "C"; "D" ] ]
  in
  checkb "Q2 q-hierarchical" true (H.is_q_hierarchical q2);
  checkb "Q1 not q-hierarchical" false (H.is_q_hierarchical q1);
  (match Rw.rewrite ~q1 ~q2 with
  | None -> Alcotest.fail "expected a rewriting"
  | Some q1' ->
      checkb "rewriting q-hierarchical" true (H.is_q_hierarchical q1');
      Alcotest.(check int) "two atoms" 2 (List.length q1'.Cq.atoms));
  checkb "cascadable" true (Rw.cascadable ~q1 ~q2);
  (* A Q2 projecting away the join variable C cannot be used. *)
  let q2_bad =
    Cq.make ~name:"Q2b" ~free:[ "A" ] [ Cq.atom "R" [ "A"; "B" ]; Cq.atom "S" [ "B"; "C" ] ]
  in
  checkb "projection blocks rewriting" true (Rw.rewrite ~q1 ~q2:q2_bad = None)

let static_dynamic () =
  (* Ex. 4.14: R^d(A,D)·S^d(A,B)·T^s(B,C), group by A,B,C. *)
  let q =
    Cq.make ~name:"Q" ~free:[ "A"; "B"; "C" ]
      [ Cq.atom "R" [ "A"; "D" ]; Cq.atom "S" [ "A"; "B" ]; Cq.atom "T" [ "B"; "C" ] ]
  in
  checkb "not q-hierarchical" false (H.is_q_hierarchical q);
  let ad = [ ("R", Sd.Dynamic); ("S", Sd.Dynamic); ("T", Sd.Static) ] in
  checkb "tractable with T static" true (Sd.is_tractable q ad);
  checkb "not tractable all-dynamic" false (Sd.is_tractable q (Sd.all_dynamic q));
  (* Ex. 4.3's non-hierarchical query with static middle: needs
     exponential preprocessing per the paper, so our constant-update
     checker rejects it (we do not implement the powerset trick). *)
  let q3 =
    Cq.make ~name:"Q" ~free:[ "A"; "B" ]
      [ Cq.atom "R" [ "A" ]; Cq.atom "S" [ "A"; "B" ]; Cq.atom "T" [ "B" ] ]
  in
  let ad3 = [ ("R", Sd.Dynamic); ("S", Sd.Static); ("T", Sd.Dynamic) ] in
  checkb "R^d S^s T^d beyond the constant-update checker" false (Sd.is_tractable q3 ad3)

let parser () =
  let module P = Ivm_query.Parse in
  (match P.query "Q(A, B) = R(A, B), S(B, C)" with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check string) "name" "Q" p.P.cq.Cq.name;
      Alcotest.(check (list string)) "free" [ "A"; "B" ] p.P.cq.Cq.free;
      Alcotest.(check int) "atoms" 2 (List.length p.P.cq.Cq.atoms);
      Alcotest.(check (list string)) "no inputs" [] p.P.input);
  (match P.query "Detect(| A, B, C) = E1(A,B), E2(B,C), E3(C,A)" with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check (list string)) "inputs" [ "A"; "B"; "C" ] p.P.input;
      checkb "tractable" true
        (Cqap.is_tractable (Cqap.make ~input:p.P.input p.P.cq)));
  (match P.query "B() = R(X), S(X, Y)" with
  | Error e -> Alcotest.fail e
  | Ok p -> checkb "boolean" true (Cq.is_boolean p.P.cq));
  checkb "reject junk" true (Result.is_error (P.query "nonsense"));
  checkb "reject dup vars" true (Result.is_error (P.query "Q(A) = R(A, A)"));
  (match P.fds "A -> B; C, D -> E" with
  | Error e -> Alcotest.fail e
  | Ok fds ->
      Alcotest.(check int) "two fds" 2 (List.length fds);
      Alcotest.(check (list string))
        "closure" [ "A"; "B" ]
        (List.sort String.compare (Fd.SSet.elements (Fd.closure fds [ "A" ]))));
  (match P.adornment "R: static; S: dynamic" with
  | Error e -> Alcotest.fail e
  | Ok ad ->
      checkb "R static" true (Sd.kind_of ad "R" = Sd.Static);
      checkb "S dynamic" true (Sd.kind_of ad "S" = Sd.Dynamic);
      checkb "default dynamic" true (Sd.kind_of ad "T" = Sd.Dynamic));
  checkb "reject bad kind" true (Result.is_error (P.adornment "R: frozen"))

(* --- property tests ---------------------------------------------------- *)

(* Random small queries over a fixed pool of variables and relations. *)
let gen_query : Cq.t QCheck.arbitrary =
  let vars = [| "A"; "B"; "C"; "D" |] in
  let gen =
    QCheck.Gen.(
      let* n_atoms = int_range 1 4 in
      let* atom_vars =
        list_repeat n_atoms
          (let* k = int_range 1 3 in
           let* idxs = list_repeat k (int_range 0 3) in
           return (List.sort_uniq compare idxs))
      in
      let atoms =
        List.mapi
          (fun i idxs -> Cq.atom (Printf.sprintf "R%d" i) (List.map (fun j -> vars.(j)) idxs))
          atom_vars
      in
      let all = List.sort_uniq compare (List.concat_map (fun a -> a.Cq.vars) atoms) in
      let* free_mask = list_repeat (List.length all) bool in
      let free = List.filteri (fun i _ -> List.nth free_mask i) all in
      return (Cq.make ~name:"G" ~free atoms))
  in
  QCheck.make ~print:Cq.to_string gen

let qh_iff_hier_and_fd =
  QCheck.Test.make ~name:"q-hierarchical = hierarchical + free-dominant" gen_query (fun q ->
      H.is_q_hierarchical q = (H.is_hierarchical q && H.is_free_dominant q))

let boolean_qh_iff_hier =
  QCheck.Test.make ~name:"boolean: q-hierarchical = hierarchical" gen_query (fun q ->
      let b = { q with Cq.free = [] } in
      H.is_q_hierarchical b = H.is_hierarchical b)

let hier_implies_acyclic =
  QCheck.Test.make ~name:"hierarchical implies alpha-acyclic" gen_query (fun q ->
      (not (H.is_hierarchical q)) || Hg.is_alpha_acyclic q)

let qh_implies_free_connex =
  QCheck.Test.make ~name:"q-hierarchical implies free-connex" gen_query (fun q ->
      (not (H.is_q_hierarchical q)) || Hg.is_free_connex q)

let canonical_order_sound =
  QCheck.Test.make ~name:"canonical order validates, is free-top for q-hierarchical"
    gen_query (fun q ->
      match Vo.canonical q with
      | None -> not (H.is_hierarchical q)
      | Some f ->
          H.is_hierarchical q
          && Vo.validate q f = Ok ()
          && ((not (H.is_q_hierarchical q)) || Vo.free_top q f))

let reduct_no_fds_is_identity =
  QCheck.Test.make ~name:"Σ-reduct with no FDs preserves classification" gen_query (fun q ->
      let r = Fd.sigma_reduct [] q in
      H.is_hierarchical r = H.is_hierarchical q
      && H.is_q_hierarchical r = H.is_q_hierarchical q)

let cqap_no_input_iff_qh =
  QCheck.Test.make ~name:"CQAP with no inputs tractable iff q-hierarchical" gen_query
    (fun q -> Cqap.is_tractable (Cqap.make ~input:[] q) = H.is_q_hierarchical q)

let sd_all_dynamic_iff_qh =
  (* Sec. 4.5: the mixed-setting class collapses to q-hierarchical when
     everything is dynamic. *)
  QCheck.Test.make ~name:"all-dynamic sd-tractable iff q-hierarchical" ~count:60 gen_query
    (fun q -> Sd.is_tractable q (Sd.all_dynamic q) = H.is_q_hierarchical q)

let qt t = QCheck_alcotest.to_alcotest ~long:false t

let parser_positions () =
  let module P = Ivm_query.Parse in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  let err = function
    | Error e -> e
    | Ok _ -> Alcotest.fail "malformed input must be rejected"
  in
  let e = err (P.query "Q(A,B) = R(A,B), S(B C)") in
  checkb "bad variable carries its offset" true
    (contains e "'B C'" && contains e "offset 19" && contains e "column 20");
  let e = err (P.query "Q(A,B) = R(A,B), S(B,C") in
  checkb "unclosed atom points at the atom" true
    (contains e "missing ')'" && contains e "offset 17");
  let e = err (P.query "Q(A) =\n R(A,\n x!)") in
  checkb "multi-line input reports line and column" true
    (contains e "line 3" && contains e "column 2");
  let e = err (P.fds "A -> B; C, D -> E F") in
  checkb "FD rhs error is positioned" true (contains e "'E F'" && contains e "offset 16");
  let e = err (P.adornment "R: static; S: bogus") in
  checkb "adornment kind error is positioned" true
    (contains e "'bogus'" && contains e "offset 14")

let () =
  Alcotest.run "query"
    [
      ( "paper examples",
        [
          Alcotest.test_case "hierarchical (Ex. 4.3, Fig. 3, Fig. 7)" `Quick
            hierarchical_examples;
          Alcotest.test_case "acyclicity and free-connex" `Quick acyclicity;
          Alcotest.test_case "FD closure (Def. 4.9)" `Quick fd_closure;
          Alcotest.test_case "retailer under FDs (Ex. 4.10)" `Quick ex410_retailer;
          Alcotest.test_case "Σ-reduct (Ex. 4.12)" `Quick ex412_fd_reduct;
          Alcotest.test_case "CQAPs (Ex. 4.6)" `Quick cqap_examples;
          Alcotest.test_case "variable orders (Fig. 3)" `Quick variable_orders;
          Alcotest.test_case "cascading rewriting (Ex. 4.5)" `Quick rewrite_cascade;
          Alcotest.test_case "static/dynamic (Ex. 4.14)" `Quick static_dynamic;
          Alcotest.test_case "parser" `Quick parser;
          Alcotest.test_case "parser errors carry positions" `Quick parser_positions;
        ] );
      ( "properties",
        [
          qt qh_iff_hier_and_fd;
          qt boolean_qh_iff_hier;
          qt hier_implies_acyclic;
          qt qh_implies_free_connex;
          qt canonical_order_sound;
          qt reduct_no_fds_is_identity;
          qt cqap_no_input_iff_qh;
          qt sd_all_dynamic_iff_qh;
        ] );
    ]
