(* The differential fuzzing harness tested on itself: generator
   validity, ddmin minimality, cross-engine agreement over fresh seeds,
   the injected delete-dropping bug caught + shrunk + filed, and the
   codec round-trip properties on the adversarial distributions. *)

module Ck = Ivm_check
module Seed = Ck.Seed
module Case = Ck.Case
module Gen = Ck.Gen
module Value = Ivm_data.Value
module Tuple = Ivm_data.Tuple
module Update = Ivm_data.Update
module Codec = Ivm_data.Codec
module Db = Ivm_data.Database.Z
module Rel = Ivm_data.Relation.Z
module Vo = Ivm_query.Variable_order
module Fp = Ivm_fault.Failpoint

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let case_of_seed s =
  let rng = Seed.rng s in
  Gen.case ~rng ~seed:s

(* ---- seeding ------------------------------------------------------- *)

let seed_determinism () =
  for s = 1 to 30 do
    checkb "same seed, same case" true (Case.equal (case_of_seed s) (case_of_seed s))
  done;
  checkb "distinct seeds decorrelate" true
    (List.exists
       (fun s -> not (Case.equal (case_of_seed s) (case_of_seed (s + 1))))
       [ 1; 2; 3; 4; 5 ]);
  checkb "case seeds are distinct" true (Seed.case 1 0 <> Seed.case 1 1);
  checkb "case seeds differ across masters" true (Seed.case 1 0 <> Seed.case 2 0)

(* ---- generator validity -------------------------------------------- *)

(* Apply init + whole stream; no base multiplicity may ever go negative
   (the validity invariant View_tree enumeration relies on). *)
let never_negative (c : Case.t) =
  let db = Case.db_of c in
  List.for_all
    (fun rows ->
      List.iter (fun r -> Db.apply db (Case.update_of_row r)) rows;
      List.for_all
        (fun (name, _) ->
          Rel.fold (fun _ p acc -> acc && p >= 0) (Db.find db name) true)
        c.Case.schemas)
    c.Case.stream

let generator_validity () =
  for s = 1 to 60 do
    let c = case_of_seed s in
    checkb "sanitize is idempotent" true (Case.equal c (Case.sanitize c));
    checkb "multiplicities stay non-negative" true (never_negative c);
    checkb "every relation has a schema" true
      (List.for_all
         (fun (r : Case.row) -> List.mem_assoc r.Case.rel c.Case.schemas)
         (c.Case.init @ List.concat c.Case.stream));
    match c.Case.family with
    | Case.Join ->
        let q = Option.get c.Case.query and o = Option.get c.Case.order in
        checkb "order valid" true (Vo.validate q o = Ok ());
        checkb "order free-top" true (Vo.free_top q o)
    | Case.Kclique ->
        checkb "k in range" true (c.Case.k >= 3 && c.Case.k <= 4);
        List.iter
          (fun (r : Case.row) ->
            match r.Case.values with
            | [ Value.Int u; Value.Int v ] ->
                checkb "edge normalized, no loop" true (u < v)
            | _ -> Alcotest.fail "non-edge kclique row")
          (List.concat c.Case.stream)
    | Case.Static_dynamic ->
        checkb "static T untouched by the stream" true
          (List.for_all
             (fun (r : Case.row) -> r.Case.rel <> "T")
             (List.concat c.Case.stream))
    | Case.Minmax ->
        checkb "minmax rows are (G, V) on R" true
          (List.for_all
             (fun (r : Case.row) -> r.Case.rel = "R" && List.length r.Case.values = 2)
             (c.Case.init @ List.concat c.Case.stream))
    | Case.Mixed ->
        let module Mx = Ivm_workload.Mixed in
        let tenants = Mx.of_tables c.Case.schemas in
        checkb "at least two tenants" true (List.length tenants >= 2);
        checkb "one economy tenant present" true
          (List.exists (fun (tn : Mx.tenant) -> tn.Mx.kind = Mx.Economy) tenants);
        (* Conservation: economy debits and credits cancel, so applying
           the whole stream leaves each economy view total at its
           opening accounts × initial_balance... unless sanitize dropped
           one leg. Either way totals must never go negative (checked by
           never_negative above); here we pin the zero-sum pairing. *)
        let econ_total rows tn =
          List.fold_left
            (fun acc (r : Case.row) ->
              if List.mem_assoc r.Case.rel tn.Mx.tables then acc + r.Case.payload else acc)
            0 rows
        in
        List.iter
          (fun (tn : Mx.tenant) ->
            if tn.Mx.kind = Mx.Economy then
              checkb "economy stream sums to zero" true
                (econ_total (List.concat c.Case.stream) tn = 0))
          tenants
    | Case.Triangle -> ()
  done

(* ---- ddmin --------------------------------------------------------- *)

let ddmin_props () =
  let contains x l = List.mem x l in
  checkb "singleton cause" true (Ck.Shrink.ddmin ~failing:(contains 42) [ 1; 42; 7; 9 ] = [ 42 ]);
  (* two interacting causes must both survive *)
  let both l = List.mem 3 l && List.mem 11 l in
  let r = Ck.Shrink.ddmin ~failing:both (List.init 40 (fun i -> i)) in
  checkb "pair kept" true (both r);
  checki "pair is minimal" 2 (List.length r);
  (* 1-minimality on a monotone predicate *)
  let big l = List.length l >= 5 in
  let r = Ck.Shrink.ddmin ~failing:big (List.init 64 (fun i -> i)) in
  checki "monotone floor" 5 (List.length r);
  checkb "empty input" true (Ck.Shrink.ddmin ~failing:(fun _ -> true) ([] : int list) = [])

(* ---- cross-engine agreement ---------------------------------------- *)

let agreement () =
  for s = 101 to 130 do
    let c = case_of_seed s in
    match Ck.Harness.run c with
    | Ck.Harness.Agree -> ()
    | Ck.Harness.Diverged ds ->
        Alcotest.failf "seed %d (%s): %a" s
          (Case.family_name c.Case.family)
          Ck.Harness.pp_divergence (List.hd ds)
  done

(* ---- the injected bug is caught, shrunk and filed ------------------- *)

let with_bug f =
  Fp.enable ~seed:5 ();
  Fp.arm Ck.Engines.bug_failpoint ~times:max_int Fp.Fail;
  Fun.protect ~finally:Fp.reset f

let injected_bug () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "ivm-check-corpus-test" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let summary =
        with_bug (fun () -> Ck.Fuzz.run ~runs:40 ~corpus_dir:dir ~seed:77 ())
      in
      checkb "bug caught" true (summary.Ck.Fuzz.failures <> []);
      let f = List.hd summary.Ck.Fuzz.failures in
      checkb "reproducer is small" true (f.Ck.Fuzz.updates <= 5);
      checkb "minimized case still diverges under the bug" true
        (with_bug (fun () -> Ck.Harness.diverges f.Ck.Fuzz.minimized));
      checkb "minimized case agrees without the bug" true
        (not (Ck.Harness.diverges f.Ck.Fuzz.minimized));
      (* the filed reproducer round-trips and replays *)
      let file = Option.get f.Ck.Fuzz.corpus_file in
      (match Ck.Corpus.load file with
      | Error e -> Alcotest.failf "corpus load: %s" e
      | Ok c ->
          checkb "corpus round-trip" true (Case.equal c f.Ck.Fuzz.minimized);
          checkb "loaded case diverges under the bug" true
            (with_bug (fun () -> Ck.Harness.diverges c)));
      checkb "clean run of the same seeds finds nothing" true
        ((Ck.Fuzz.run ~runs:40 ~seed:77 ()).Ck.Fuzz.failures = []))

(* ---- corpus format -------------------------------------------------- *)

let corpus_roundtrip () =
  for s = 1 to 40 do
    let c = Case.sanitize (case_of_seed s) in
    match Ck.Corpus.of_string (Ck.Corpus.to_string c) with
    | Error e -> Alcotest.failf "seed %d: %s" s e
    | Ok c' -> checkb "to_string/of_string" true (Case.equal c c')
  done;
  (match Ck.Corpus.of_string "not a repro" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage");
  (match Ck.Corpus.of_string (Ck.Corpus.magic ^ "\nfamily join\nend\n") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a query family without atoms");
  checks "magic" "ivm-repro v1" Ck.Corpus.magic

(* ---- codec round-trips on the adversarial distributions ------------- *)

let qgen g = QCheck.make ~print:(fun _ -> "<opaque>") g

let value_roundtrip =
  QCheck.Test.make ~count:500 ~name:"codec value roundtrip"
    (QCheck.make ~print:Value.to_string Gen.value) (fun v ->
      let b = Buffer.create 16 in
      Codec.add_value b v;
      let pos = ref 0 in
      let v' = Codec.value (Buffer.contents b) pos in
      Value.equal v v' && !pos = Buffer.length b)

let tuple_roundtrip =
  QCheck.Test.make ~count:500 ~name:"codec tuple roundtrip" (qgen Gen.tuple) (fun t ->
      let b = Buffer.create 32 in
      Codec.add_tuple b t;
      let pos = ref 0 in
      let t' = Codec.tuple (Buffer.contents b) pos in
      Tuple.equal t t' && !pos = Buffer.length b)

let update_roundtrip =
  QCheck.Test.make ~count:500 ~name:"codec update roundtrip" (qgen Gen.update) (fun u ->
      let b = Buffer.create 48 in
      Codec.add_update (module Codec.Int_payload) b u;
      let pos = ref 0 in
      let u' = Codec.update (module Codec.Int_payload) (Buffer.contents b) pos in
      u'.Update.rel = u.Update.rel
      && Tuple.equal u'.Update.tuple u.Update.tuple
      && u'.Update.payload = u.Update.payload)

let truncation_detected =
  QCheck.Test.make ~count:200 ~name:"codec truncation raises Corrupt" (qgen Gen.tuple)
    (fun t ->
      let b = Buffer.create 32 in
      Codec.add_tuple b t;
      let s = Buffer.contents b in
      let cut = String.sub s 0 (String.length s - 1) in
      match Codec.tuple cut (ref 0) with
      | _ -> false
      | exception Codec.Corrupt _ -> true)

let () =
  Alcotest.run "check"
    [
      ( "seeding",
        [
          Alcotest.test_case "determinism" `Quick seed_determinism;
          Alcotest.test_case "generator validity" `Quick generator_validity;
        ] );
      ("shrink", [ Alcotest.test_case "ddmin" `Quick ddmin_props ]);
      ( "differential",
        [
          Alcotest.test_case "cross-engine agreement" `Slow agreement;
          Alcotest.test_case "injected bug caught and shrunk" `Slow injected_bug;
        ] );
      ("corpus", [ Alcotest.test_case "roundtrip" `Quick corpus_roundtrip ]);
      ( "codec",
        List.map QCheck_alcotest.to_alcotest
          [ value_roundtrip; tuple_roundtrip; update_roundtrip; truncation_detected ] );
    ]
