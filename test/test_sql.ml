(* The SQL front end: printer/parser round-trip properties, positioned
   syntax errors, the cost-based planner's engine decisions on fixture
   queries from the paper's taxonomy, executor semantics (maintained
   views, parameterized lookups, aggregates), and multi-seed oracle
   agreement of SQL-created views inside the differential harness. *)

module Sql = Ivm_sql
module Ast = Sql.Ast
module Parser = Sql.Parser
module Lower = Sql.Lower
module Planner = Sql.Planner
module Exec = Sql.Exec
module Value = Ivm_data.Value
module Ck = Ivm_check

let checkb = Alcotest.(check bool)
let ok = function Ok v -> v | Error e -> Alcotest.fail e

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* --- printer/parser round trip ---------------------------------------- *)

let gen_ident = QCheck.Gen.oneofl [ "a"; "b"; "c"; "d"; "r1"; "s2"; "t_3"; "zip" ]

(* Reals restricted to dyadic rationals so the decimal rendering
   re-parses to the identical float. *)
let gen_value =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Value.Int n) (int_range (-100) 100);
        map (fun s -> Value.Str s) (oneofl [ ""; "x"; "it's"; "a''b"; "s p c" ]);
        map (fun n -> Value.Real (float_of_int n /. 4.)) (int_range (-40) 40);
      ])

let gen_rhs =
  QCheck.Gen.(
    oneof
      [
        map (fun v -> Ast.Const v) gen_value;
        return (Ast.Param 0) (* renumbered below to appearance order *);
        map (fun c -> Ast.Col c) gen_ident;
      ])

let gen_pred =
  QCheck.Gen.(
    let* col = gen_ident in
    let* rhs = gen_rhs in
    return { Ast.col; rhs })

(* The parser numbers '?' by appearance, so the generator must too. *)
let renumber_params (s : Ast.select) =
  let n = ref 0 in
  let where =
    List.map
      (fun (p : Ast.pred) ->
        match p.Ast.rhs with
        | Ast.Param _ ->
            incr n;
            { p with Ast.rhs = Ast.Param !n }
        | _ -> p)
      s.Ast.where
  in
  { s with Ast.where }

let gen_select =
  QCheck.Gen.(
    let* from = list_size (int_range 1 3) gen_ident in
    let* distinct = bool in
    let* items =
      oneof
        [
          return [ Ast.Star ];
          return [ Ast.Count ];
          (let* cols = list_size (int_range 1 3) (map (fun c -> Ast.Column c) gen_ident) in
           let* agg =
             oneof
               [
                 return [];
                 return [ Ast.Count ];
                 map (fun c -> [ Ast.Sum c ]) gen_ident;
                 map (fun c -> [ Ast.Min c ]) gen_ident;
                 map (fun c -> [ Ast.Max c ]) gen_ident;
                 map2 (fun c d -> [ Ast.Min c; Ast.Max d ]) gen_ident gen_ident;
               ]
           in
           return (cols @ agg));
        ]
    in
    let* where = list_size (int_range 0 3) gen_pred in
    let* group_by = oneof [ return []; list_size (int_range 1 2) gen_ident ] in
    let* window =
      oneof
        [
          return None;
          (let* wcol = gen_ident in
           let* wsize = int_range 1 50 in
           return (Some { Ast.wcol; wsize }));
        ]
    in
    return (renumber_params { Ast.distinct; items; from; where; group_by; window }))

let gen_stmt =
  QCheck.Gen.(
    let base =
      oneof
        [
          (let* table = gen_ident in
           let* cols = list_size (int_range 1 4) gen_ident in
           let* fds =
             oneof
               [
                 return [];
                 (let* lhs = list_size (int_range 1 2) gen_ident in
                  let* rhs_col = gen_ident in
                  return [ { Ast.lhs; rhs_col } ]);
               ]
           in
           return (Ast.Create_table { table; cols; fds }));
          (let* view = gen_ident in
           let* opts =
             oneof
               [
                 return [];
                 return [ Ast.Insert_only ];
                 map (fun t -> [ Ast.Static t ]) gen_ident;
               ]
           in
           let* select = gen_select in
           return (Ast.Create_view { view; opts; select }));
          (let* table = gen_ident in
           let* rows = list_size (int_range 1 3) (list_size (int_range 1 3) gen_value) in
           return (Ast.Insert { table; rows }));
          (let* table = gen_ident in
           let* rows = list_size (int_range 1 2) (list_size (int_range 1 3) gen_value) in
           return (Ast.Delete { table; rows }));
          map (fun s -> Ast.Select s) gen_select;
        ]
    in
    let* wrap = bool in
    let* st = base in
    return (if wrap then Ast.Explain st else st))

let arb_stmt = QCheck.make ~print:Ast.print gen_stmt

let parse_print_roundtrip =
  QCheck.Test.make ~name:"parse (print ast) = ast" ~count:500 arb_stmt (fun st ->
      match Parser.stmt (Ast.print st) with
      | Ok st' -> Ast.equal st st'
      | Error e -> QCheck.Test.fail_reportf "%s on %s" e (Ast.print st))

(* --- positioned errors ------------------------------------------------ *)

let err text =
  match Parser.stmt text with
  | Error e -> e
  | Ok st -> Alcotest.failf "expected a syntax error, parsed %s" (Ast.print st)

let sql_errors_positioned () =
  let e = err "SELECT a FROM R WHERE b = " in
  checkb "truncated WHERE carries an offset" true (contains e "at offset 26");
  let e = err "CREATE TABLE R (a,, b)" in
  checkb "double comma points at the hole" true
    (contains e "offset 18" && contains e "column 19");
  let e = err "SELECT a\nFROM R,\n  5" in
  checkb "multi-line errors report line and column" true
    (contains e "line 3" && contains e "column 3");
  let e = err "SELECT *, a FROM R" in
  checkb "star mixed with items is rejected" true (contains e "'*'")

let script_errors_numbered () =
  let sess = Exec.create () in
  (match Exec.exec_text sess "CREATE TABLE R (a, b); INSERT INTO missing VALUES (1);" with
  | Ok _ -> Alcotest.fail "insert into a missing table must fail"
  | Error e ->
      checkb "execution error names the failing statement" true (contains e "statement 2"));
  match Exec.exec_text sess "CREATE TABLE S (a); SELECT FROM S;" with
  | Ok _ -> Alcotest.fail "malformed second statement must fail"
  | Error e -> checkb "parse error in a script carries an offset" true (contains e "offset")

(* --- the planner on fixture queries ----------------------------------- *)

let explain_of sess text =
  match ok (Exec.exec sess (Ast.Explain (ok (Parser.stmt text)))) with
  | Exec.Explained s -> s
  | _ -> Alcotest.fail "EXPLAIN must return a report"

let facts_of report =
  List.filter
    (fun l -> String.length l > 3 && String.sub l 0 4 = "  - ")
    (String.split_on_char '\n' report)

(* Fig. 3's q-hierarchical query: eager delta-query maintenance. *)
let planner_q_hierarchical () =
  let sess = Exec.create () in
  ignore (ok (Exec.exec_text sess "CREATE TABLE R (y, x); CREATE TABLE S (y, z);"));
  let report = explain_of sess "SELECT y, x, z FROM R, S" in
  checkb "q-hierarchical -> eager delta strategy" true
    (contains report "engine: eager-fact delta strategy");
  checkb "carries at least 2 facts" true (List.length (facts_of report) >= 2);
  checkb "names q-hierarchical" true (contains report "q-hierarchical: true")

(* The A-C path with both endpoints free: hierarchical but not
   free-connex, so constant-delay maintenance is impossible (Thm. 4.1)
   and the planner must fall back to the factorized view tree. *)
let planner_non_free_connex () =
  let sess = Exec.create () in
  ignore (ok (Exec.exec_text sess "CREATE TABLE R (a, b); CREATE TABLE S (b, c);"));
  let report = explain_of sess "SELECT a, c FROM R, S" in
  checkb "non-free-connex -> view tree" true
    (contains report "engine: factorized view tree");
  checkb "says free-connex: false" true (contains report "free-connex: false");
  checkb "carries at least 2 facts" true (List.length (facts_of report) >= 2)

(* A view whose WITH clause adorns a relation static: the planner must
   pick the static/dynamic split of Sec. 4.5. *)
let planner_static_dynamic () =
  let sess = Exec.create () in
  ignore
    (ok
       (Exec.exec_text sess
          "CREATE TABLE R (a, d); CREATE TABLE S (a, b); CREATE TABLE T (b, c);"));
  let report =
    explain_of sess
      "CREATE MATERIALIZED VIEW v WITH (STATIC T) AS SELECT a, b, c FROM R, S, T"
  in
  checkb "static adornment -> static/dynamic view tree" true
    (contains report "engine: static/dynamic view tree");
  checkb "names the static relation" true (contains report "T");
  checkb "carries at least 2 facts" true (List.length (facts_of report) >= 2)

(* The triangle count lands on the IVMeps batch kernel. *)
let planner_triangle () =
  let sess = Exec.create () in
  ignore
    (ok
       (Exec.exec_text sess
          "CREATE TABLE R (a, b); CREATE TABLE S (b, c); CREATE TABLE T (c, a);"));
  let report = explain_of sess "SELECT COUNT(*) FROM R, S, T" in
  checkb "triangle count -> IVMeps kernel" true
    (contains report "engine: IVMeps triangle batch kernel");
  checkb "carries at least 2 facts" true (List.length (facts_of report) >= 2)

(* --- executor semantics ----------------------------------------------- *)

let exec_view_and_lookup () =
  let sess = Exec.create () in
  let script =
    "CREATE TABLE R (a, b); CREATE TABLE S (b, c);\n\
     CREATE MATERIALIZED VIEW v AS SELECT a, c FROM R, S WHERE a = ?;\n\
     INSERT INTO R VALUES (1, 2), (3, 2);\n\
     INSERT INTO S VALUES (2, 7), (2, 8);"
  in
  ignore (ok (Exec.exec_text sess script));
  let rows ?params text =
    match ok (Exec.exec sess ?params (ok (Parser.stmt text))) with
    | Exec.Rows r -> r.Exec.rows
    | _ -> Alcotest.fail "expected rows"
  in
  let got =
    rows ~params:[ Value.Int 1 ] "SELECT a, c FROM R, S WHERE a = ?"
  in
  checkb "parameterized lookup answers from the view" true
    (got = [ ([ Value.Int 1; Value.Int 7 ], 1); ([ Value.Int 1; Value.Int 8 ], 1) ]);
  let missing = rows ~params:[ Value.Int 9 ] "SELECT a, c FROM R, S WHERE a = ?" in
  checkb "unbound key yields no rows" true (missing = []);
  (* One-shot aggregate over the base tables, and the SQL scalar rule:
     a COUNT over an empty result is 0, not absent. *)
  let count = rows "SELECT COUNT(*) FROM R, S" in
  checkb "count aggregates multiplicities" true (count = [ ([], 4) ]);
  let zero = rows "SELECT COUNT(*) FROM R, S WHERE a = 42" in
  checkb "empty count is a 0 row" true (zero = [ ([], 0) ])

let exec_sum_group_by () =
  let sess = Exec.create () in
  ignore
    (ok
       (Exec.exec_text sess
          "CREATE TABLE R (k, v);\n\
           CREATE MATERIALIZED VIEW s AS SELECT k, SUM(v) FROM R GROUP BY k;\n\
           INSERT INTO R VALUES (1, 10), (1, 32), (2, 5);\n\
           DELETE FROM R VALUES (2, 5);"));
  match ok (Exec.exec sess (ok (Parser.stmt "SELECT k, SUM(v) FROM R GROUP BY k"))) with
  | Exec.Rows r ->
      checkb "SUM folds and deletes retract" true
        (r.Exec.rows = [ ([ Value.Int 1 ], 42) ])
  | _ -> Alcotest.fail "expected rows"

(* --- oracle agreement across seeds ------------------------------------ *)

(* Every case builds the SQL driver: tables created and data mutated
   through printed SQL text, the view planned and compiled by lib/sql
   onto whatever engine the planner picks — and the harness demands the
   exact oracle answer after every epoch. 30 join + 10 triangle seeds. *)
let sql_driver_agrees_with_oracle () =
  let run ~family ~gen seeds =
    List.iter
      (fun seed ->
        let case = gen ~rng:(Ck.Seed.rng seed) ~seed in
        match Ck.Harness.run ~select:[ "sql" ] case with
        | Ck.Harness.Agree -> ()
        | Ck.Harness.Diverged ds ->
            Alcotest.failf "%s seed %d: %s" family seed
              (String.concat "; "
                 (List.map (Format.asprintf "%a" Ck.Harness.pp_divergence) ds)))
      seeds
  in
  run ~family:"join" ~gen:Ck.Gen.join (List.init 30 (fun i -> 1000 + i));
  run ~family:"triangle" ~gen:Ck.Gen.triangle (List.init 10 (fun i -> 2000 + i))

let qt t = QCheck_alcotest.to_alcotest ~long:false t

let () =
  Alcotest.run ~and_exit:false "sql"
    [
      ( "syntax",
        [
          qt parse_print_roundtrip;
          Alcotest.test_case "positioned errors" `Quick sql_errors_positioned;
          Alcotest.test_case "script errors numbered" `Quick script_errors_numbered;
        ] );
      ( "planner",
        [
          Alcotest.test_case "q-hierarchical -> eager delta" `Quick
            planner_q_hierarchical;
          Alcotest.test_case "non-free-connex -> view tree" `Quick
            planner_non_free_connex;
          Alcotest.test_case "static adornment -> static/dynamic" `Quick
            planner_static_dynamic;
          Alcotest.test_case "triangle -> IVMeps kernel" `Quick planner_triangle;
        ] );
      ( "exec",
        [
          Alcotest.test_case "view + parameterized lookup" `Quick exec_view_and_lookup;
          Alcotest.test_case "SUM with GROUP BY" `Quick exec_sum_group_by;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "sql driver agrees over 40 seeds" `Slow
            sql_driver_agrees_with_oracle;
        ] );
    ]
