bench/bench_util.ml: List Printf String Unix
