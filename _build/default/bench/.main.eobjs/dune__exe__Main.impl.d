bench/main.ml: Analyze Array Bechamel Bench_util Benchmark Hashtbl Ivm_data Ivm_engine Ivm_eps Ivm_lowerbound Ivm_query Ivm_workload List Measure Option Printf Random Seq Staged Sys Test Time Toolkit
