bench/main.mli:
