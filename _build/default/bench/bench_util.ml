(** Shared machinery for the experiment harness: wall-clock timing,
    table rendering, and log-log slope fitting for the complexity-shape
    experiments. *)

let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(** Time [f] and return seconds only. *)
let seconds f = snd (time f)

(** Average seconds per call over [n] calls of [f]. *)
let per_call n f =
  let t0 = now () in
  for i = 1 to n do
    f i
  done;
  (now () -. t0) /. float_of_int n

(** Fitted slope of log(time) against log(n): the measured complexity
    exponent. *)
let fitted_exponent (points : (float * float) list) : float =
  let logs = List.map (fun (x, y) -> (log x, log (max y 1e-12))) points in
  let n = float_of_int (List.length logs) in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. logs in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. logs in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. logs in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. logs in
  ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n";
  flush stdout

(** Render a table with left-aligned first column. *)
let table ~header rows =
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w cell -> max w (String.length cell)) ws row)
      (List.map String.length header)
      rows
  in
  let line cells =
    String.concat "  "
      (List.map2 (fun w c -> c ^ String.make (w - String.length c) ' ') widths cells)
  in
  Printf.printf "%s\n" (line header);
  Printf.printf "%s\n" (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Printf.printf "%s\n" (line row)) rows;
  flush stdout

let us t = Printf.sprintf "%.2f" (t *. 1e6)
let ms t = Printf.sprintf "%.1f" (t *. 1e3)
let rate n t = Printf.sprintf "%.0f" (float_of_int n /. max 1e-9 t)
