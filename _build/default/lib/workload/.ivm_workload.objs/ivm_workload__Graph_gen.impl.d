lib/workload/graph_gen.ml: Hashtbl Option Random Vec Zipf
