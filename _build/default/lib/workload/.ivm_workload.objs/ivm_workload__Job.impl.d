lib/workload/job.ml: Array List Random
