lib/workload/vec.ml: Array
