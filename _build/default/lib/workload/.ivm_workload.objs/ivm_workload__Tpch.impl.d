lib/workload/tpch.ml: Ivm_query List Printf
