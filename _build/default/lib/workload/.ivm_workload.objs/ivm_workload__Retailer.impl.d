lib/workload/retailer.ml: Ivm_data Ivm_query List Random Zipf
