lib/workload/random_queries.ml: Ivm_query List Printf Random
