(** A minimal growable array (OCaml 5.1 predates [Dynarray]). *)

type 'a t = { mutable arr : 'a array; mutable len : int }

let create () = { arr = [||]; len = 0 }
let length t = t.len

let add t x =
  if t.len = Array.length t.arr then begin
    let cap = max 16 (2 * Array.length t.arr) in
    let arr = Array.make cap x in
    Array.blit t.arr 0 arr 0 t.len;
    t.arr <- arr
  end;
  t.arr.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.arr.(i)
