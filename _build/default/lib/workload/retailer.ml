(** The synthetic Retailer workload of Fig. 4 and Ex. 4.10.

    The query joins five relations:

      Q(locn, dateid, ksn, zip) =
        Inventory(locn, dateid, ksn) · Weather(locn, dateid)
        · Location(locn, zip) · Census(zip) · Demographics(zip)

    It is not hierarchical — atoms(locn) and atoms(zip) properly overlap
    through Location — but under the functional dependency zip → locn
    (every zip code lies in one location) its Σ-reduct is q-hierarchical
    (Ex. 4.10), so the canonical order of the reduct gives a view tree
    with O(1) updates and O(1) enumeration delay (Thm. 4.11).

    The generator enforces zip → locn by construction and streams
    Zipf-skewed inserts into the fact relation Inventory, grouped into
    batches as in Fig. 4. *)

module Cq = Ivm_query.Cq
module Fd = Ivm_query.Fd
module Schema = Ivm_data.Schema
module Tuple = Ivm_data.Tuple
module Update = Ivm_data.Update
module Db = Ivm_data.Database.Z
module Rel = Ivm_data.Relation.Z

let query =
  Cq.make ~name:"Retailer" ~free:[ "locn"; "dateid"; "ksn"; "zip" ]
    [
      Cq.atom "Inventory" [ "locn"; "dateid"; "ksn" ];
      Cq.atom "Weather" [ "locn"; "dateid" ];
      Cq.atom "Location" [ "locn"; "zip" ];
      Cq.atom "Census" [ "zip" ];
      Cq.atom "Demographics" [ "zip" ];
    ]

let fds = [ Fd.make [ "zip" ] [ "locn" ] ]

(** The canonical variable order of the Σ-reduct, valid for the original
    query: locn(dateid(ksn), zip). *)
let order () =
  match Ivm_query.Variable_order.canonical (Fd.sigma_reduct fds query) with
  | Some f -> f
  | None -> assert false

type spec = {
  locations : int;
  zips_per_location : int;
  dates : int;
  skus : int;
  skew : float; (* Zipf exponent for locn and ksn in the insert stream *)
}

let default_spec =
  { locations = 50; zips_per_location = 8; dates = 50; skus = 2000; skew = 1.0 }

type t = {
  spec : spec;
  rng : Random.State.t;
  locn_zipf : Zipf.t;
  sku_zipf : Zipf.t;
}

let create ?(seed = 11) spec =
  {
    spec;
    rng = Random.State.make [| seed |];
    locn_zipf = Zipf.create ~n:spec.locations ~s:spec.skew;
    sku_zipf = Zipf.create ~n:spec.skus ~s:spec.skew;
  }

(** The initial database: all dimension relations fully populated (one
    Location/Census/Demographics row per zip, one Weather row per
    (locn, date)), Inventory empty — it arrives as the update stream. *)
let initial_database (t : t) : Db.t =
  let db = Db.create () in
  let inv = Db.declare db "Inventory" (Schema.of_list [ "locn"; "dateid"; "ksn" ]) in
  ignore inv;
  let weather = Db.declare db "Weather" (Schema.of_list [ "locn"; "dateid" ]) in
  let location = Db.declare db "Location" (Schema.of_list [ "locn"; "zip" ]) in
  let census = Db.declare db "Census" (Schema.of_list [ "zip" ]) in
  let demo = Db.declare db "Demographics" (Schema.of_list [ "zip" ]) in
  for locn = 1 to t.spec.locations do
    for d = 1 to t.spec.dates do
      Rel.add_entry weather (Tuple.of_ints [ locn; d ]) 1
    done;
    for z = 0 to t.spec.zips_per_location - 1 do
      let zip = (locn * t.spec.zips_per_location) + z in
      Rel.add_entry location (Tuple.of_ints [ locn; zip ]) 1;
      Rel.add_entry census (Tuple.of_ints [ zip ]) 1;
      Rel.add_entry demo (Tuple.of_ints [ zip ]) 1
    done
  done;
  db

(** One single-tuple Inventory insert with skewed location and SKU. *)
let next_insert (t : t) : int Update.t =
  let locn = Zipf.sample t.locn_zipf t.rng in
  let dateid = 1 + Random.State.int t.rng t.spec.dates in
  let ksn = Zipf.sample t.sku_zipf t.rng in
  Update.make ~rel:"Inventory" ~tuple:(Tuple.of_ints [ locn; dateid; ksn ]) ~payload:1

(** A Fig. 4 batch: [size] single-tuple inserts. *)
let next_batch (t : t) ~size : int Update.t list =
  List.init size (fun _ -> next_insert t)

(** A batch with dimension churn: a fraction [churn] of the updates are
    delete/insert pairs on Demographics rows (e.g. data corrections).
    Such updates join with every Inventory row of the zip's location —
    expensive for strategies that maintain the flat output, O(1) for
    factorized view trees. The net content of Demographics is unchanged
    and the database stays valid throughout. *)
let next_mixed_batch (t : t) ~size ~churn : int Update.t list =
  let n_churn = int_of_float (churn *. float_of_int size /. 2.) in
  let churn_pairs =
    List.concat
      (List.init n_churn (fun _ ->
           let locn = Zipf.sample t.locn_zipf t.rng in
           let zip =
             (locn * t.spec.zips_per_location) + Random.State.int t.rng t.spec.zips_per_location
           in
           let tuple = Tuple.of_ints [ zip ] in
           [
             Update.make ~rel:"Demographics" ~tuple ~payload:(-1);
             Update.make ~rel:"Demographics" ~tuple ~payload:1;
           ]))
  in
  List.init (size - (2 * n_churn)) (fun _ -> next_insert t) @ churn_pairs
