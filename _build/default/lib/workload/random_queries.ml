(** A random CQ workload generator with key-style FDs, used to reproduce
    the Sec. 4.4 observation that functional dependencies turn a large
    fraction of a real query workload q-hierarchical (76% of ≈6000
    queries in a RelationalAI project). The proprietary corpus is not
    available, so we generate snowflake-shaped join queries over schemas
    with key/foreign-key edges — the shape of that workload — and
    measure the same fraction on them. *)

module Cq = Ivm_query.Cq
module Fd = Ivm_query.Fd

type generated = { query : Cq.t; fds : Fd.t list }

(* A random snowflake: a central fact relation with [dims] dimension
   relations hanging off foreign keys, each dimension possibly having a
   further sub-dimension (chains of length 2) — the pattern that is
   non-hierarchical as written (chains!) but hierarchical under the key
   FDs. With probability [cyclic_p] an extra edge shares a dimension
   between two branches, which usually stays intractable. *)
let generate ~rng ~id : generated =
  (* 70% single-branch (chain) queries, 30% multi-branch stars. Chains
     become q-hierarchical under the key FDs; stars do not (two branches
     properly overlap on the fact atom — see Ex. 4.13 for why only
     amortized maintenance is possible for them). The measured fraction
     therefore tracks the chain share of the corpus; the paper's 76% is
     a property of the RelationalAI corpus, ours of this mix. *)
  let dims = if Random.State.int rng 10 < 7 then 1 else 2 + Random.State.int rng 2 in
  let fact_keys = List.init dims (fun i -> Printf.sprintf "k%d" i) in
  let fact = Cq.atom "Fact" ("fid" :: fact_keys) in
  let atoms = ref [ fact ] in
  (* The fact table's primary key determines its foreign keys. *)
  let fds = ref [ Fd.make [ "fid" ] fact_keys ] in
  let free = ref [] in
  List.iteri
    (fun i k ->
      let dname = Printf.sprintf "Dim%d" i in
      let attr = Printf.sprintf "a%d" i in
      let deep = Random.State.bool rng in
      if deep then begin
        (* Dim(k, sub); Sub(sub, attr): a chain of length 2. *)
        let sub = Printf.sprintf "s%d" i in
        atoms := Cq.atom dname [ k; sub ] :: Cq.atom (dname ^ "s") [ sub; attr ] :: !atoms;
        fds := Fd.make [ k ] [ sub ] :: Fd.make [ sub ] [ attr ] :: !fds
      end
      else begin
        atoms := Cq.atom dname [ k; attr ] :: !atoms;
        fds := Fd.make [ k ] [ attr ] :: !fds
      end;
      if Random.State.bool rng then free := attr :: !free)
    fact_keys;
  (* Group by the fact id with probability 3/4: real workloads of this
     shape are dominated by per-fact (key-in-head) queries. *)
  if Random.State.int rng 4 < 3 then free := "fid" :: !free;
  let free = if !free = [] then [ "fid" ] else !free in
  { query = Cq.make ~name:(Printf.sprintf "W%d" id) ~free !atoms; fds = !fds }

type fraction = { total : int; q_hier : int; q_hier_fd : int }

(** Generate [n] queries and report how many are q-hierarchical as
    written and under their FDs. *)
let measure ?(seed = 99) ~n () : fraction =
  let rng = Random.State.make [| seed |] in
  let qs = List.init n (fun id -> generate ~rng ~id) in
  let module H = Ivm_query.Hierarchical in
  {
    total = n;
    q_hier = List.length (List.filter (fun g -> H.is_q_hierarchical g.query) qs);
    q_hier_fd =
      List.length
        (List.filter (fun g -> H.is_q_hierarchical (Fd.sigma_reduct g.fds g.query)) qs);
  }
