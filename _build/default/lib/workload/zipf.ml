(** Zipf-distributed sampling over {1, ..., n} with exponent [s]:
    P(k) ∝ 1/k^s. Used to generate the skewed degree distributions that
    IVM^ε's heavy/light partitioning targets (Sec. 3.3). Sampling is by
    binary search over the precomputed CDF. *)

type t = { n : int; cdf : float array }

let create ~n ~s =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  let cdf = Array.make n 0. in
  let total = ref 0. in
  for k = 1 to n do
    total := !total +. (1. /. (float_of_int k ** s));
    cdf.(k - 1) <- !total
  done;
  for k = 0 to n - 1 do
    cdf.(k) <- cdf.(k) /. !total
  done;
  { n; cdf }

(** [sample t rng] draws a value in [1, n]. *)
let sample t rng =
  let u = Random.State.float rng 1.0 in
  (* Smallest index with cdf >= u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo + 1
