(** The join structures of the 22 TPC-H queries and the TPC-H key
    functional dependencies, for the classification study of Sec. 4.4:
    the paper reports that 8 Boolean and 13 non-Boolean TPC-H queries are
    hierarchical, and that the TPC-H FDs make 4 more of each
    hierarchical.

    Encoding conventions (the original study's exact atom encodings are
    not public, so absolute counts can differ by a query or two — see
    EXPERIMENTS.md):
    - atoms carry the join variables plus the head/group-by attributes;
    - correlated subqueries contribute their atoms to the join structure;
    - self-joins are encoded with renamed relation symbols (N1/N2, L1/L2)
      and correspondingly renamed variables;
    - the Boolean version of a query empties the head; the non-Boolean
      version keeps it, and is classified with the study's convention
      (hierarchical given the head, [Hierarchical.is_hierarchical_given_free]);
    - FDs are the TPC-H primary keys restricted to the variables each
      query actually uses. *)

module Cq = Ivm_query.Cq
module Fd = Ivm_query.Fd

type entry = { id : int; query : Cq.t; fds : Fd.t list }

let q ~id ~free ~fds atoms =
  let query = Cq.make ~name:(Printf.sprintf "Q%d" id) ~free atoms in
  { id; query; fds }

let fd l r = Fd.make l [ r ]

(* Relation schemas, per use. Variables: ok/ck/sk/pk/nk/rk are the TPC-H
   keys; other names are non-key attributes used in heads. *)

let queries : entry list =
  [
    q ~id:1 ~free:[ "retflag"; "linestatus" ] ~fds:[]
      [ Cq.atom "L" [ "ok"; "pk"; "sk"; "retflag"; "linestatus"; "qty" ] ];
    q ~id:2
      ~free:[ "pk"; "sk"; "nname"; "mfgr" ]
      ~fds:[ fd [ "sk" ] "nk"; fd [ "nk" ] "rk"; fd [ "nk" ] "nname" ]
      [
        Cq.atom "P" [ "pk"; "mfgr" ];
        Cq.atom "PS" [ "pk"; "sk" ];
        Cq.atom "S" [ "sk"; "nk" ];
        Cq.atom "N" [ "nk"; "rk"; "nname" ];
        Cq.atom "R" [ "rk" ];
      ];
    q ~id:3
      ~free:[ "ok"; "odate"; "shippri" ]
      ~fds:[ fd [ "ok" ] "ck"; fd [ "ok" ] "odate"; fd [ "ok" ] "shippri" ]
      [
        Cq.atom "C" [ "ck" ];
        Cq.atom "O" [ "ok"; "ck"; "odate"; "shippri" ];
        Cq.atom "L" [ "ok"; "qty" ];
      ];
    q ~id:4 ~free:[ "opri" ] ~fds:[ fd [ "ok" ] "opri" ]
      [ Cq.atom "O" [ "ok"; "opri" ]; Cq.atom "L" [ "ok" ] ];
    q ~id:5 ~free:[ "nname" ]
      ~fds:[ fd [ "ok" ] "ck"; fd [ "ck" ] "nk"; fd [ "sk" ] "nk"; fd [ "nk" ] "rk" ]
      [
        Cq.atom "C" [ "ck"; "nk" ];
        Cq.atom "O" [ "ok"; "ck" ];
        Cq.atom "L" [ "ok"; "sk" ];
        Cq.atom "S" [ "sk"; "nk" ];
        Cq.atom "N" [ "nk"; "rk"; "nname" ];
        Cq.atom "R" [ "rk" ];
      ];
    q ~id:6 ~free:[] ~fds:[] [ Cq.atom "L" [ "ok"; "pk"; "sk"; "qty" ] ];
    q ~id:7
      ~free:[ "n1name"; "n2name" ]
      ~fds:[ fd [ "sk" ] "nk1"; fd [ "ok" ] "ck"; fd [ "ck" ] "nk2" ]
      [
        Cq.atom "S" [ "sk"; "nk1" ];
        Cq.atom "L" [ "ok"; "sk" ];
        Cq.atom "O" [ "ok"; "ck" ];
        Cq.atom "C" [ "ck"; "nk2" ];
        Cq.atom "N1" [ "nk1"; "n1name" ];
        Cq.atom "N2" [ "nk2"; "n2name" ];
      ];
    q ~id:8 ~free:[ "oyear" ]
      ~fds:
        [ fd [ "ok" ] "ck"; fd [ "ck" ] "nk1"; fd [ "sk" ] "nk2"; fd [ "nk1" ] "rk";
          fd [ "ok" ] "oyear" ]
      [
        Cq.atom "P" [ "pk" ];
        Cq.atom "L" [ "ok"; "pk"; "sk" ];
        Cq.atom "S" [ "sk"; "nk2" ];
        Cq.atom "O" [ "ok"; "ck"; "oyear" ];
        Cq.atom "C" [ "ck"; "nk1" ];
        Cq.atom "N1" [ "nk1"; "rk" ];
        Cq.atom "R" [ "rk" ];
        Cq.atom "N2" [ "nk2" ];
      ];
    q ~id:9
      ~free:[ "nname"; "oyear" ]
      ~fds:[ fd [ "sk" ] "nk"; fd [ "ok" ] "oyear"; fd [ "nk" ] "nname" ]
      [
        Cq.atom "P" [ "pk" ];
        Cq.atom "L" [ "ok"; "pk"; "sk" ];
        Cq.atom "S" [ "sk"; "nk" ];
        Cq.atom "PS" [ "pk"; "sk" ];
        Cq.atom "O" [ "ok"; "oyear" ];
        Cq.atom "N" [ "nk"; "nname" ];
      ];
    q ~id:10
      ~free:[ "ck"; "cname"; "nname" ]
      ~fds:[ fd [ "ok" ] "ck"; fd [ "ck" ] "nk"; fd [ "nk" ] "nname"; fd [ "ck" ] "cname" ]
      [
        Cq.atom "C" [ "ck"; "nk"; "cname" ];
        Cq.atom "O" [ "ok"; "ck" ];
        Cq.atom "L" [ "ok" ];
        Cq.atom "N" [ "nk"; "nname" ];
      ];
    q ~id:11 ~free:[ "pk" ] ~fds:[ fd [ "sk" ] "nk" ]
      [ Cq.atom "PS" [ "pk"; "sk" ]; Cq.atom "S" [ "sk"; "nk" ]; Cq.atom "N" [ "nk" ] ];
    q ~id:12 ~free:[ "shipmode" ] ~fds:[ fd [ "ok" ] "opri" ]
      [ Cq.atom "O" [ "ok"; "opri" ]; Cq.atom "L" [ "ok"; "shipmode" ] ];
    q ~id:13 ~free:[ "ck" ] ~fds:[ fd [ "ok" ] "ck" ]
      [ Cq.atom "C" [ "ck" ]; Cq.atom "O" [ "ok"; "ck" ] ];
    q ~id:14 ~free:[] ~fds:[ fd [ "pk" ] "ptype" ]
      [ Cq.atom "L" [ "ok"; "pk" ]; Cq.atom "P" [ "pk"; "ptype" ] ];
    q ~id:15 ~free:[ "sk"; "sname" ] ~fds:[ fd [ "sk" ] "sname" ]
      [ Cq.atom "S" [ "sk"; "sname" ]; Cq.atom "L" [ "ok"; "sk" ] ];
    q ~id:16
      ~free:[ "pbrand"; "ptype"; "psize" ]
      ~fds:[ fd [ "pk" ] "pbrand"; fd [ "pk" ] "ptype"; fd [ "pk" ] "psize" ]
      [ Cq.atom "P" [ "pk"; "pbrand"; "ptype"; "psize" ]; Cq.atom "PS" [ "pk"; "sk" ] ];
    q ~id:17 ~free:[] ~fds:[ fd [ "pk" ] "pbrand" ]
      [ Cq.atom "L" [ "ok"; "pk"; "qty" ]; Cq.atom "P" [ "pk"; "pbrand" ] ];
    q ~id:18
      ~free:[ "ck"; "cname"; "ok"; "odate"; "ototal" ]
      ~fds:[ fd [ "ok" ] "ck"; fd [ "ok" ] "odate"; fd [ "ok" ] "ototal"; fd [ "ck" ] "cname" ]
      [
        Cq.atom "C" [ "ck"; "cname" ];
        Cq.atom "O" [ "ok"; "ck"; "odate"; "ototal" ];
        Cq.atom "L" [ "ok"; "qty" ];
      ];
    q ~id:19 ~free:[] ~fds:[ fd [ "pk" ] "pbrand" ]
      [ Cq.atom "L" [ "ok"; "pk"; "qty" ]; Cq.atom "P" [ "pk"; "pbrand" ] ];
    q ~id:20 ~free:[ "sname" ] ~fds:[ fd [ "sk" ] "nk"; fd [ "sk" ] "sname" ]
      [
        Cq.atom "S" [ "sk"; "nk"; "sname" ];
        Cq.atom "N" [ "nk" ];
        Cq.atom "PS" [ "pk"; "sk" ];
        Cq.atom "P" [ "pk" ];
        Cq.atom "L" [ "ok"; "pk"; "sk" ];
      ];
    q ~id:21 ~free:[ "sname" ] ~fds:[ fd [ "sk" ] "nk"; fd [ "sk" ] "sname"; fd [ "ok" ] "ck" ]
      [
        Cq.atom "S" [ "sk"; "nk"; "sname" ];
        Cq.atom "L1" [ "ok"; "sk" ];
        Cq.atom "O" [ "ok" ];
        Cq.atom "N" [ "nk" ];
        Cq.atom "L2" [ "ok"; "sk2" ];
        Cq.atom "L3" [ "ok"; "sk3" ];
      ];
    q ~id:22 ~free:[ "cntry" ] ~fds:[ fd [ "ck" ] "cntry" ]
      [ Cq.atom "C" [ "ck"; "cntry" ]; Cq.atom "O" [ "ok"; "ck" ] ];
  ]

let boolean_version (e : entry) : Cq.t =
  { e.query with Cq.name = e.query.Cq.name ^ "b"; free = [] }

type classification = {
  id : int;
  boolean_hier : bool;
  nonboolean_hier : bool;
  boolean_hier_fd : bool;
  nonboolean_hier_fd : bool;
  q_hier : bool;
  q_hier_fd : bool;
}

let classify (e : entry) : classification =
  let module H = Ivm_query.Hierarchical in
  let b = boolean_version e in
  let b_fd = Fd.sigma_reduct e.fds b in
  let nb_fd = Fd.sigma_reduct e.fds e.query in
  {
    id = e.id;
    boolean_hier = H.is_hierarchical b;
    nonboolean_hier = H.is_hierarchical_given_free e.query;
    boolean_hier_fd = H.is_hierarchical b_fd;
    nonboolean_hier_fd = H.is_hierarchical_given_free nb_fd;
    q_hier = H.is_q_hierarchical e.query;
    q_hier_fd = H.is_q_hierarchical nb_fd;
  }

let study () = List.map classify queries

let count f l = List.length (List.filter f l)

type summary = {
  boolean_total : int;
  nonboolean_total : int;
  boolean_fd_total : int;
  nonboolean_fd_total : int;
}

let summarize (cs : classification list) : summary =
  {
    boolean_total = count (fun c -> c.boolean_hier) cs;
    nonboolean_total = count (fun c -> c.nonboolean_hier) cs;
    boolean_fd_total = count (fun c -> c.boolean_hier_fd) cs;
    nonboolean_fd_total = count (fun c -> c.nonboolean_hier_fd) cs;
  }
