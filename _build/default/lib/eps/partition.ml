(** Heavy/light partitioned binary relations (Sec. 3.3).

    A relation R(A,B) is split on its first column: a key [a] is light
    while its degree |σ_{A=a} R| stays below the threshold θ ≈ N^ε, heavy
    otherwise. To amortize part moves, a key only moves light→heavy when
    its degree reaches [2θ] and heavy→light when it falls below [θ/2]
    (the rebalancing of [18, 19]): between two moves of the same key at
    least θ/2 updates to that key must happen, so a move of cost O(deg)
    is amortized O(1) per update (times the per-tuple fix-up cost its
    user incurs). *)

module Edges = Ivm_engine.Edges
module View = Ivm_engine.View

type t = {
  name : string;
  light : Edges.t;
  heavy : Edges.t;
  heavy_keys : (int, unit) Hashtbl.t;
  mutable threshold : int; (* θ *)
}

let create ~name ~fst ~snd ~threshold =
  if threshold < 1 then invalid_arg "Partition.create: threshold must be >= 1";
  {
    name;
    light = Edges.create fst snd;
    heavy = Edges.create fst snd;
    heavy_keys = Hashtbl.create 64;
    threshold;
  }

let is_heavy t a = Hashtbl.mem t.heavy_keys a
let part_of t a = if is_heavy t a then t.heavy else t.light
let degree t a = if is_heavy t a then Edges.deg_fst t.heavy a else Edges.deg_fst t.light a
let size t = Edges.size t.light + Edges.size t.heavy
let heavy_count t = Hashtbl.length t.heavy_keys
let get t a b = Edges.get (part_of t a) a b
let iter_heavy_keys t f = Hashtbl.iter (fun k () -> f k) t.heavy_keys

(** [update t a b m] merges multiplicity [m] into the part currently
    owning key [a]. Returns [`Moved_to_heavy], [`Moved_to_light] or
    [`Stable]; on a move the key's tuples have already been transferred
    and [on_move] has been called once per transferred tuple, with the
    tuple and its payload, *after* the transfer of that tuple — callers
    use it to fix up their skew-aware views. *)
let update ?(on_move = fun ~heavy:_ _ _ _ -> ()) t a b m =
  Edges.update (part_of t a) a b m;
  let deg = degree t a in
  if (not (is_heavy t a)) && deg >= 2 * t.threshold then begin
    (* light -> heavy: transfer all tuples of key [a]. *)
    let tuples = ref [] in
    Edges.iter_fst t.light a (fun b p -> tuples := (b, p) :: !tuples);
    Hashtbl.replace t.heavy_keys a ();
    List.iter
      (fun (b, p) ->
        Edges.update t.light a b (-p);
        Edges.update t.heavy a b p;
        on_move ~heavy:true a b p)
      !tuples;
    `Moved_to_heavy
  end
  else if is_heavy t a && 2 * deg < t.threshold then begin
    (* heavy -> light (deg < θ/2, in integer arithmetic 2·deg < θ). *)
    let tuples = ref [] in
    Edges.iter_fst t.heavy a (fun b p -> tuples := (b, p) :: !tuples);
    Hashtbl.remove t.heavy_keys a;
    List.iter
      (fun (b, p) ->
        Edges.update t.heavy a b (-p);
        Edges.update t.light a b p;
        on_move ~heavy:false a b p)
      !tuples;
    `Moved_to_light
  end
  else `Stable

(** Rebuild the partition for a new threshold (major rebalance): every
    key is reassigned by comparing its degree to θ. The caller rebuilds
    its views afterwards. *)
let rebalance t ~threshold =
  t.threshold <- threshold;
  let all = ref [] in
  Edges.iter t.light (fun a b p -> all := (a, b, p) :: !all);
  Edges.iter t.heavy (fun a b p -> all := (a, b, p) :: !all);
  View.clear t.light.Edges.view;
  View.clear t.heavy.Edges.view;
  Hashtbl.reset t.heavy_keys;
  (* First pass: per-key degrees. *)
  let deg = Hashtbl.create 64 in
  List.iter
    (fun (a, _, _) ->
      Hashtbl.replace deg a (1 + Option.value (Hashtbl.find_opt deg a) ~default:0))
    !all;
  Hashtbl.iter (fun a d -> if d >= threshold then Hashtbl.replace t.heavy_keys a ()) deg;
  List.iter (fun (a, b, p) -> Edges.update (part_of t a) a b p) !all
