(** IVM^ε for the triangle count (Sec. 3.3): worst-case optimal
    maintenance with O(N^max{ε,1−ε}) single-tuple updates — O(√N) at
    ε = 1/2, matching the OuMv-conditional lower bound of Thm. 3.4.
    R(A,B) is partitioned on A, S(B,C) on B, T(C,A) on C; the three
    skew-aware views V_ST, V_TR, V_RS are maintained under updates and
    part moves; partitions rebalance when the database size leaves
    [N₀/2, 2N₀]. *)

type t

val create : ?epsilon:float -> unit -> t
(** An engine over the empty database; [epsilon] defaults to 1/2. *)

val update : t -> Ivm_engine.Triangle.relation -> a:int -> b:int -> int -> unit
(** [update t rel ~a ~b m] merges multiplicity [m] for the tuple (a,b)
    of [rel], given in the relation's own schema order. *)

val count : t -> int
(** The maintained triangle count — O(1). *)

val size : t -> int
val threshold : t -> int
val rebalances : t -> int

(** The ε = 1/2 instance packaged as a {!Ivm_engine.Triangle.ENGINE},
    for cross-checks and the OuMv reduction. *)
module Half : Ivm_engine.Triangle.ENGINE
