(** IVM^ε for Q(A) = Σ_B R(A,B)·S(B), the simplest non-q-hierarchical
    query (Sec. 5, Fig. 7): O(N) preprocessing, O(N^ε) updates and
    O(N^{1−ε}) enumeration delay, weakly Pareto optimal at ε = 1/2.
    ε = 1 is the eager extreme, ε = 0 the lazy one. *)

type t

val create : ?epsilon:float -> unit -> t
val size : t -> int

val update_r : t -> a:int -> b:int -> int -> unit
(** O(1): one lookup into S, plus Q_H maintenance when [a] is heavy. *)

val update_s : t -> b:int -> int -> unit
(** O(N^ε): updates Q_H(a) for the heavy a's paired with [b]. *)

val enumerate : t -> (int * int) Seq.t
(** The (A, Q(A)) groups with non-zero aggregate: heavy keys from the
    materialized Q_H in O(1) each, light keys computed on the fly in
    O(N^{1−ε}) each. *)

val output : t -> (int * int) list
(** Sorted materialization of {!enumerate}, for tests. *)
