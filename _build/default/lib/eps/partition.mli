(** Heavy/light partitioned binary relations (Sec. 3.3): keys are light
    below the degree threshold θ ≈ N^ε and heavy above. Hysteresis
    (moves at 2θ upward, θ/2 downward) amortizes part moves to O(1) per
    update times the caller's per-tuple fix-up cost. *)

module Edges = Ivm_engine.Edges
module View = Ivm_engine.View

type t = {
  name : string;
  light : Edges.t;
  heavy : Edges.t;
  heavy_keys : (int, unit) Hashtbl.t;
  mutable threshold : int;
}

val create : name:string -> fst:string -> snd:string -> threshold:int -> t
val is_heavy : t -> int -> bool

val part_of : t -> int -> Edges.t
(** The part currently owning a key (keys live in exactly one part). *)

val degree : t -> int -> int
val size : t -> int
val heavy_count : t -> int
val get : t -> int -> int -> int
val iter_heavy_keys : t -> (int -> unit) -> unit

val update :
  ?on_move:(heavy:bool -> int -> int -> int -> unit) ->
  t -> int -> int -> int ->
  [ `Moved_to_heavy | `Moved_to_light | `Stable ]
(** Merge a multiplicity into the owning part; on a threshold crossing,
    transfer the key's tuples and call [on_move ~heavy a b payload] once
    per transferred tuple ([heavy] is the destination), after the
    transfer — callers fix up their skew-aware views there. *)

val rebalance : t -> threshold:int -> unit
(** Major rebalance: reassign every key against the new threshold. The
    caller rebuilds its views afterwards. *)
