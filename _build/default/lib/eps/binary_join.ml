(** IVM^ε for the simplest non-q-hierarchical query (Sec. 5, Fig. 7):

    Q(A) = Σ_B R(A,B) · S(B)

    The trade-off: O(N) preprocessing, O(N^ε) single-tuple updates and
    O(N^{1−ε}) enumeration delay, with the weakly Pareto-optimal point at
    ε = 1/2 (conditioned on OuMv/OMv).

    R is partitioned on A with threshold θ ≈ N^{1−ε}: at most N^ε keys
    are heavy. The aggregate Q_H(a) is materialized for heavy keys only:

    - δR(a,b): one lookup into S (and a Q_H update if [a] is heavy) — O(1);
    - δS(b):   update Q_H(a) for the heavy a's paired with b — O(N^ε);
    - enumeration: heavy keys read Q_H(a) directly; light keys compute
      Σ_B R(a,B)·S(B) on the fly over fewer than 2θ tuples — O(N^{1−ε}).

    ε = 1 is the eager extreme (everything materialized, as after every
    update), ε = 0 the lazy extreme (only base relations stored). *)

module Edges = Ivm_engine.Edges
module View = Ivm_engine.View
module Schema = Ivm_data.Schema
module Tuple = Ivm_data.Tuple
module Value = Ivm_data.Value

type t = {
  epsilon : float;
  r : Partition.t; (* R(A,B) on A; θ ≈ N^{1−ε} *)
  s : View.t; (* S(B) *)
  q_h : View.t; (* Q_H(A) for heavy A only *)
  mutable epoch_n : int;
}

let threshold_for ~epsilon n =
  max 1 (int_of_float (ceil (float_of_int (max 1 n) ** (1. -. epsilon))))

let key1 = Edges.key1

let create ?(epsilon = 0.5) () =
  {
    epsilon;
    r = Partition.create ~name:"R" ~fst:"A" ~snd:"B" ~threshold:(threshold_for ~epsilon 1);
    s = View.create (Schema.of_list [ "B" ]);
    q_h = View.create (Schema.of_list [ "A" ]);
    epoch_n = 16;
  }

let size t = Partition.size t.r + View.size t.s

(* Recompute Q_H(a) = Σ_B R(a,B)·S(B) over the heavy part. *)
let aggregate_of t a =
  let acc = ref 0 in
  Edges.iter_fst (Partition.part_of t.r a) a (fun b p ->
      acc := !acc + (p * View.get t.s (key1 b)));
  !acc

let set_qh t a v =
  let cur = View.get t.q_h (key1 a) in
  if cur <> v then View.update t.q_h (key1 a) (v - cur)

let drop_qh t a =
  let cur = View.get t.q_h (key1 a) in
  if cur <> 0 then View.update t.q_h (key1 a) (-cur)

let maybe_rebalance t =
  let n = size t in
  if n > 2 * t.epoch_n || (4 * n < t.epoch_n && t.epoch_n > 16) then begin
    let n0 = max 16 n in
    Partition.rebalance t.r ~threshold:(threshold_for ~epsilon:t.epsilon n0);
    View.clear t.q_h;
    Partition.iter_heavy_keys t.r (fun a -> set_qh t a (aggregate_of t a));
    t.epoch_n <- n0
  end

let update_r t ~a ~b m =
  if Partition.is_heavy t.r a then View.update t.q_h (key1 a) (m * View.get t.s (key1 b));
  (match
     Partition.update
       ~on_move:(fun ~heavy:_ _ _ _ -> () (* handled below, per key not per tuple *))
       t.r a b m
   with
  | `Moved_to_heavy -> set_qh t a (aggregate_of t a)
  | `Moved_to_light -> drop_qh t a
  | `Stable -> ());
  maybe_rebalance t

let update_s t ~b m =
  (* Maintain Q_H for every heavy A paired with b: at most one heavy key
     per tuple in the heavy part's b-column group, which has at most
     #heavy ≤ N^ε entries. *)
  Edges.iter_snd t.r.Partition.heavy b (fun a p -> View.update t.q_h (key1 a) (p * m));
  View.update t.s (key1 b) m;
  maybe_rebalance t

(** Constant-delay-per-group enumeration of the output (A, Q(A)),
    skipping zero aggregates. Heavy keys cost O(1) each, light keys
    O(θ) = O(N^{1−ε}) each. *)
let enumerate (t : t) : (int * int) Seq.t =
  let heavy =
    Seq.filter_map
      (fun (k, v) -> if v = 0 then None else Some (Value.to_int (Tuple.get k 0), v))
      (View.to_seq t.q_h)
  in
  let light =
    Seq.filter_map
      (fun a ->
        let v = aggregate_of t a in
        if v = 0 then None else Some (a, v))
      (Seq.map
         (fun (k : Tuple.t) -> Value.to_int (Tuple.get k 0))
         (Ivm_data.Relation.Z.Index.seq_keys t.r.Partition.light.Edges.by_fst))
  in
  Seq.append heavy light

(** The output as an association list, sorted by key — for tests. *)
let output t = List.sort compare (List.of_seq (enumerate t))
