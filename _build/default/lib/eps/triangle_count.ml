(** IVM^ε for the triangle count (Sec. 3.3): worst-case optimal
    maintenance with O(N^max{ε,1−ε}) single-tuple updates — O(√N) at
    ε = 1/2, matching the OuMv-conditional lower bound of Thm. 3.4.

    R(A,B) is partitioned on A, S(B,C) on B, T(C,A) on C. The query
    splits into eight skew-aware queries; on an update δR(α,β) the four
    delta cases cost:

    - V ∈ {L}: iterate the C-values paired with β in S_L — O(N^ε);
    - (H,L):   one lookup in V_ST(B,A) = Σ_C S_H(B,C)·T_L(C,A) — O(1);
    - (H,H):   iterate the heavy C-values of T_H — O(N^{1−ε}).

    Symmetrically for δS with V_TR(C,B) = Σ_A T_H(C,A)·R_L(A,B) and for
    δT with V_RS(A,C) = Σ_B R_H(A,B)·S_L(B,C). The auxiliary views are
    maintained under updates and under part moves; partitions are
    rebalanced when the database size leaves [N₀/2, 2N₀]. *)

module Edges = Ivm_engine.Edges
module View = Ivm_engine.View
module Schema = Ivm_data.Schema
module Triangle = Ivm_engine.Triangle

type t = {
  epsilon : float;
  r : Partition.t;
  s : Partition.t;
  tt : Partition.t;
  v_st : View.t; (* (B,A): S_H ⋈ T_L *)
  v_tr : View.t; (* (C,B): T_H ⋈ R_L *)
  v_rs : View.t; (* (A,C): R_H ⋈ S_L *)
  mutable cnt : int;
  mutable epoch_n : int;
  mutable rebalances : int;
}

let threshold_for ~epsilon n =
  max 1 (int_of_float (ceil (float_of_int (max 1 n) ** epsilon)))

let create ?(epsilon = 0.5) () =
  let threshold = threshold_for ~epsilon 1 in
  {
    epsilon;
    r = Partition.create ~name:"R" ~fst:"A" ~snd:"B" ~threshold;
    s = Partition.create ~name:"S" ~fst:"B" ~snd:"C" ~threshold;
    tt = Partition.create ~name:"T" ~fst:"C" ~snd:"A" ~threshold;
    v_st = View.create (Schema.of_list [ "B"; "A" ]);
    v_tr = View.create (Schema.of_list [ "C"; "B" ]);
    v_rs = View.create (Schema.of_list [ "A"; "C" ]);
    cnt = 0;
    epoch_n = 16;
    rebalances = 0;
  }

let count t = t.cnt
let size t = Partition.size t.r + Partition.size t.s + Partition.size t.tt
let threshold t = t.r.Partition.threshold
let rebalances t = t.rebalances

(* Full lookup across both parts: the key owns exactly one part. *)
let lookup (p : Partition.t) a b = Edges.get (Partition.part_of p a) a b

(* δQ for δR(α,β): m · Σ_C S(β,C)·T(C,α), via the four skew cases. The
   structure is cyclically symmetric, so we parameterize by the
   (next, prev, view) triple of the updated relation. *)
let delta_q ~(nxt : Partition.t) ~(prv : Partition.t) ~(view : View.t) a b m =
  let acc = ref 0 in
  (* V = L: iterate nxt's light adjacency of b, look up prv (both parts). *)
  Edges.iter_fst nxt.Partition.light b (fun x p -> acc := !acc + (p * lookup prv x a));
  (* (H,L): one lookup in the materialized skew-aware view. *)
  acc := !acc + View.get view (Edges.tup2 b a);
  (* (H,H): iterate the heavy keys of prv. *)
  Partition.iter_heavy_keys prv (fun x ->
      let sh = Edges.get nxt.Partition.heavy b x in
      if sh <> 0 then acc := !acc + (sh * Edges.get prv.Partition.heavy x a));
  m * !acc

(* View fix-up for one tuple (a, b, payload) of relation X sitting in the
   light or heavy part. [sign] is +1 to add its contribution, -1 to
   remove it. For X light: it contributes to view_of(next X) against
   prev(X)'s heavy part. For X heavy: to view_of(prev X) against
   next(X)'s light part. The key orders differ per relation, so the
   concrete wiring is done by the three closures below. *)

let fix_r t ~heavy ~sign a b p =
  if heavy then
    (* V_RS(A,C) += R_H(a,b) · S_L(b,C) *)
    Edges.iter_fst t.s.Partition.light b (fun c q ->
        View.update t.v_rs (Edges.tup2 a c) (sign * p * q))
  else
    (* V_TR(C,B) += T_H(C,a) · R_L(a,b) *)
    Edges.iter_snd t.tt.Partition.heavy a (fun c q ->
        View.update t.v_tr (Edges.tup2 c b) (sign * q * p))

let fix_s t ~heavy ~sign b c p =
  if heavy then
    (* V_ST(B,A) += S_H(b,c) · T_L(c,A) *)
    Edges.iter_fst t.tt.Partition.light c (fun a q ->
        View.update t.v_st (Edges.tup2 b a) (sign * p * q))
  else
    (* V_RS(A,C) += R_H(A,b) · S_L(b,c) *)
    Edges.iter_snd t.r.Partition.heavy b (fun a q ->
        View.update t.v_rs (Edges.tup2 a c) (sign * q * p))

let fix_t t ~heavy ~sign c a p =
  if heavy then
    (* V_TR(C,B) += T_H(c,a) · R_L(a,B) *)
    Edges.iter_fst t.r.Partition.light a (fun b q ->
        View.update t.v_tr (Edges.tup2 c b) (sign * p * q))
  else
    (* V_ST(B,A) += S_H(B,c) · T_L(c,a) *)
    Edges.iter_snd t.s.Partition.heavy c (fun b q ->
        View.update t.v_st (Edges.tup2 b a) (sign * q * p))

(* Rebuild the three skew-aware views from the current partitions. *)
let rebuild_views t =
  View.clear t.v_st;
  View.clear t.v_tr;
  View.clear t.v_rs;
  Edges.iter t.s.Partition.heavy (fun b c p -> fix_s t ~heavy:true ~sign:1 b c p);
  Edges.iter t.tt.Partition.heavy (fun c a p -> fix_t t ~heavy:true ~sign:1 c a p);
  Edges.iter t.r.Partition.heavy (fun a b p -> fix_r t ~heavy:true ~sign:1 a b p)

let maybe_rebalance t =
  let n = size t in
  if n > 2 * t.epoch_n || (4 * n < t.epoch_n && t.epoch_n > 16) then begin
    let n0 = max 16 n in
    let threshold = threshold_for ~epsilon:t.epsilon n0 in
    Partition.rebalance t.r ~threshold;
    Partition.rebalance t.s ~threshold;
    Partition.rebalance t.tt ~threshold;
    rebuild_views t;
    t.epoch_n <- n0;
    t.rebalances <- t.rebalances + 1
  end

let update t (rel : Triangle.relation) ~a ~b m =
  (* 1. δQ against the current state (the updated relation itself does
     not occur in its own delta query). *)
  (match rel with
  | Triangle.R -> t.cnt <- t.cnt + delta_q ~nxt:t.s ~prv:t.tt ~view:t.v_st a b m
  | Triangle.S -> t.cnt <- t.cnt + delta_q ~nxt:t.tt ~prv:t.r ~view:t.v_tr a b m
  | Triangle.T -> t.cnt <- t.cnt + delta_q ~nxt:t.r ~prv:t.s ~view:t.v_rs a b m);
  (* 2. Skew-aware view deltas for the tuple's current part, then 3. the
     partition update itself, transferring view contributions on part
     moves. *)
  (match rel with
  | Triangle.R ->
      fix_r t ~heavy:(Partition.is_heavy t.r a) ~sign:1 a b m;
      ignore (Partition.update ~on_move:(fun ~heavy x y p -> fix_r t ~heavy ~sign:1 x y p;
                                          fix_r t ~heavy:(not heavy) ~sign:(-1) x y p)
                t.r a b m)
  | Triangle.S ->
      fix_s t ~heavy:(Partition.is_heavy t.s a) ~sign:1 a b m;
      ignore (Partition.update ~on_move:(fun ~heavy x y p -> fix_s t ~heavy ~sign:1 x y p;
                                          fix_s t ~heavy:(not heavy) ~sign:(-1) x y p)
                t.s a b m)
  | Triangle.T ->
      fix_t t ~heavy:(Partition.is_heavy t.tt a) ~sign:1 a b m;
      ignore (Partition.update ~on_move:(fun ~heavy x y p -> fix_t t ~heavy ~sign:1 x y p;
                                          fix_t t ~heavy:(not heavy) ~sign:(-1) x y p)
                t.tt a b m));
  (* 4. Major rebalance when the database size drifted. *)
  maybe_rebalance t

(** The ε = 1/2 instance as a {!Triangle.ENGINE}, for cross-checks. *)
module Half : Triangle.ENGINE = struct
  type nonrec t = t

  let name = "ivm-eps(0.5)"
  let create () = create ~epsilon:0.5 ()
  let update = update
  let count = count
end
