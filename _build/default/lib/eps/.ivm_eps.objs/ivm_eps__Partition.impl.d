lib/eps/partition.ml: Hashtbl Ivm_engine List Option
