lib/eps/binary_join.ml: Ivm_data Ivm_engine List Partition Seq
