lib/eps/partition.mli: Hashtbl Ivm_engine
