lib/eps/triangle_count.mli: Ivm_engine
