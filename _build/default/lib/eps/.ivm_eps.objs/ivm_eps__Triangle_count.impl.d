lib/eps/triangle_count.ml: Ivm_data Ivm_engine Partition
