lib/eps/binary_join.mli: Seq
