(** Dynamic k-clique counting in a simple undirected graph — the
    k-clique extension of the triangle techniques (Sec. 3.3). A
    single-edge update changes the count by the number of (k−2)-cliques
    in the common neighborhood of its endpoints. *)

type t

val create : k:int -> t
(** @raise Invalid_argument when [k < 2]. *)

val count : t -> int
(** The maintained k-clique count — O(1). *)

val edge_count : t -> int
val has_edge : t -> int -> int -> bool
val degree : t -> int -> int

val insert : t -> int -> int -> int
(** Add the edge {u,v}; returns the number of k-cliques created.
    @raise Invalid_argument on loops or duplicate edges. *)

val delete : t -> int -> int -> int
(** Remove the edge {u,v}; returns the number of k-cliques destroyed.
    @raise Invalid_argument when the edge is absent. *)

val recompute : t -> int
(** From-scratch count, for cross-checking. *)
