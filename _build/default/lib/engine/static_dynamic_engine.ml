(** Maintenance over mixed static/dynamic relations (Sec. 4.5,
    Ex. 4.14).

    The non-q-hierarchical query

    Q(A,B,C) = Σ_D R^d(A,D) · S^d(A,B) · T^s(B,C)

    is maintained with O(1) updates to the dynamic relations R and S and
    O(1) enumeration delay, using the view tree over the variable order
    A(D, B(C)) — precisely the tree of Ex. 4.14, realized by the generic
    {!View_tree}:

      V_RST(A) = V_D(A)·V_B(A);  V_D(A) = Σ_D R;  V_B(A) = Σ_B V_S;
      V_S(A,B) = S·V_C(B);       V_C(B) = Σ_C T.

    Updates to the static relation T are rejected: one such update could
    take linear time (the paper's point). *)

module Cq = Ivm_query.Cq
module Vo = Ivm_query.Variable_order
module Update = Ivm_data.Update
module Sd = Ivm_query.Static_dynamic

type t = { tree : View_tree.t; static : string list }

let query =
  Cq.make ~name:"Q" ~free:[ "A"; "B"; "C" ]
    [ Cq.atom "R" [ "A"; "D" ]; Cq.atom "S" [ "A"; "B" ]; Cq.atom "T" [ "B"; "C" ] ]

let order =
  [ { Vo.var = "A";
      children =
        [ { Vo.var = "D"; children = [] };
          { Vo.var = "B"; children = [ { Vo.var = "C"; children = [] } ] } ] } ]

let adornment : Sd.adornment = [ ("R", Sd.Dynamic); ("S", Sd.Dynamic); ("T", Sd.Static) ]

let create db = { tree = View_tree.build query order db; static = [ "T" ] }

let apply_update t (u : int Update.t) =
  if List.mem u.Update.rel t.static then
    invalid_arg ("Static_dynamic_engine: relation " ^ u.Update.rel ^ " is static")
  else View_tree.apply_update t.tree u

let enumerate t = View_tree.enumerate t.tree
let output t = View_tree.output_relation t.tree

(** The all-dynamic comparison engine: same query, same order, but T is
    allowed to change — a single update to T can touch linearly many
    A-values (Ex. 4.14). *)
module All_dynamic = struct
  type nonrec t = View_tree.t

  let create db = View_tree.build query order db
  let apply_update t u = View_tree.apply_update t u
  let output t = View_tree.output_relation t
end
