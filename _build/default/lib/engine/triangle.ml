(** Maintenance engines for the triangle count query of Sec. 3:

    Q = Σ_{A,B,C} R(A,B) · S(B,C) · T(C,A)

    - {!Naive}: recompute from scratch on every update, using adjacency
      intersections (worst-case-optimal style, O(N^{3/2}) per recompute);
    - {!Delta}: first-order delta queries (Sec. 3.1), O(N) per update;
    - {!One_view}: higher-order maintenance with the single materialized
      view V_ST(B,A) = Σ_C S(B,C)·T(C,A) (Sec. 3.2): O(1) updates to R
      but O(N) updates to S and T, and O(N²) extra space;
    - the worst-case optimal IVM^ε engine lives in [Ivm_eps.Triangle_count].

    All engines share the {!ENGINE} interface so benchmarks and tests can
    cross-check them against each other. *)

type relation = R | S | T

let relation_name = function R -> "R" | S -> "S" | T -> "T"

module type ENGINE = sig
  type t

  val name : string

  val create : unit -> t
  (** An engine over the empty database. *)

  val update : t -> relation -> a:int -> b:int -> int -> unit
  (** [update t rel ~a ~b m] merges multiplicity [m] for the tuple (a, b)
      of [rel], given in the relation's own schema order: (A,B) for R,
      (B,C) for S, (C,A) for T. *)

  val count : t -> int
  (** The current triangle count (constant-time read). *)
end

type base = { r : Edges.t; s : Edges.t; t : Edges.t }

let make_base () =
  { r = Edges.create "A" "B"; s = Edges.create "B" "C"; t = Edges.create "C" "A" }

let edges_of base = function R -> base.r | S -> base.s | T -> base.t

(* Cyclic successor: R -> S -> T -> R; [rel]'s second column is
   [next rel]'s first column, and [rel]'s first column is [prev rel]'s
   second column. *)
let next = function R -> S | S -> T | T -> R
let prev = function R -> T | S -> R | T -> S

(* For an update (a,b) to [rel], δQ = m · Σ_X next(b, X) · prev(X, a),
   by the cyclic symmetry of the triangle query. *)
let delta_count base rel a b m =
  m * Edges.intersect (edges_of base (next rel)) b (edges_of base (prev rel)) a

(** Recompute the triangle count from scratch by intersecting adjacency
    lists: Σ_{(a,b) ∈ R} R(a,b) · Σ_C S(b,C)·T(C,a). *)
let recompute (base : base) : int =
  let acc = ref 0 in
  Edges.iter base.r (fun a b p -> acc := !acc + (p * Edges.intersect base.s b base.t a));
  !acc

let database_size base = Edges.size base.r + Edges.size base.s + Edges.size base.t

module Naive : ENGINE = struct
  (* Recomputation from scratch. The recompute is deferred to [count]
     (with a dirty flag), so that loading a database is not quadratic;
     per the IVM contract of Fig. 1, the cost of an update is the cost
     of [update] followed by the [count] refresh. *)
  type t = { base : base; mutable cnt : int; mutable dirty : bool }

  let name = "recompute"
  let create () = { base = make_base (); cnt = 0; dirty = false }

  let update t rel ~a ~b m =
    Edges.update (edges_of t.base rel) a b m;
    t.dirty <- true

  let count t =
    if t.dirty then begin
      t.cnt <- recompute t.base;
      t.dirty <- false
    end;
    t.cnt
end

module Delta : ENGINE = struct
  type t = { base : base; mutable cnt : int }

  let name = "delta"
  let create () = { base = make_base (); cnt = 0 }

  let update t rel ~a ~b m =
    (* δQ is computed before touching the base: δR · S · T. *)
    t.cnt <- t.cnt + delta_count t.base rel a b m;
    Edges.update (edges_of t.base rel) a b m

  let count t = t.cnt
end

module One_view : ENGINE = struct
  (* Materializes V_ST(B,A) = Σ_C S(B,C)·T(C,A) (Ex. 3.2). Updates to R
     are a single lookup; updates to S and T maintain the view. *)
  type t = { base : base; vst : View.t; mutable cnt : int }

  let name = "one-view"

  let create () =
    { base = make_base (); vst = View.create (Ivm_data.Schema.of_list [ "B"; "A" ]); cnt = 0 }

  let update t rel ~a ~b m =
    (match rel with
    | R ->
        (* δQ = δR(a,b) · V_ST(b,a): one lookup. *)
        t.cnt <- t.cnt + (m * View.get t.vst (Edges.tup2 b a))
    | S ->
        (* (a,b) = (β,γ). δV_ST(β,A) = δS(β,γ)·T(γ,A); δQ folds in R. *)
        let beta = a and gamma = b in
        Edges.iter_fst t.base.t gamma (fun av p ->
            let dv = m * p in
            View.update t.vst (Edges.tup2 beta av) dv;
            t.cnt <- t.cnt + (dv * Edges.get t.base.r av beta))
    | T ->
        (* (a,b) = (γ,α). δV_ST(B,α) = S(B,γ)·δT(γ,α). *)
        let gamma = a and alpha = b in
        Edges.iter_snd t.base.s gamma (fun bv p ->
            let dv = m * p in
            View.update t.vst (Edges.tup2 bv alpha) dv;
            t.cnt <- t.cnt + (dv * Edges.get t.base.r alpha bv)));
    Edges.update (edges_of t.base rel) a b m

  let count t = t.cnt
end
