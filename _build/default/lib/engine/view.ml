(** Materialized views over the ring of integer multiplicities: a
    relation together with lazily created secondary group indexes that
    are kept in sync with the relation under updates.

    Every engine in this library works over the ℤ ring (Sec. 2): counts
    for maintenance, positivity tests for Boolean queries. *)

module Rel = Ivm_data.Relation.Z
module Schema = Ivm_data.Schema
module Tuple = Ivm_data.Tuple

type t = {
  rel : Rel.t;
  mutable indexes : (string * Rel.Index.t) list;
      (* keyed by a canonical string of the index key schema *)
}

let canon (s : Schema.t) = String.concat "\x00" (Schema.to_list s)

let create schema = { rel = Rel.create schema; indexes = [] }
let of_relation rel = { rel; indexes = [] }
let schema v = Rel.schema v.rel
let relation v = v.rel
let size v = Rel.size v.rel
let get v t = Rel.get v.rel t
let mem v t = Rel.mem v.rel t
let to_seq v = Rel.to_seq v.rel
let iter f v = Rel.iter f v.rel
let scalar v = Rel.scalar v.rel

(** [index_on v key] returns the group index of [v] keyed by [key],
    creating and backfilling it on first request. *)
let index_on v key =
  let c = canon key in
  match List.assoc_opt c v.indexes with
  | Some ix -> ix
  | None ->
      let ix = Rel.Index.of_relation ~key v.rel in
      v.indexes <- (c, ix) :: v.indexes;
      ix

(** [update v t p] merges delta payload [p] for tuple [t] into the view
    and all its indexes. *)
let update v t p =
  Rel.add_entry v.rel t p;
  List.iter (fun (_, ix) -> Rel.Index.update ix t p) v.indexes

(** [apply_delta v d] merges a delta relation (same positional schema). *)
let apply_delta v (d : Rel.t) = Rel.iter (fun t p -> update v t p) d

let clear v =
  Rel.clear v.rel;
  List.iter (fun (_, ix) -> Rel.Index.clear ix) v.indexes

let pp ppf v = Rel.pp ppf v.rel
