(** Classical query evaluation by index nested-loop joins, used for
    from-scratch recomputation (the lazy-list strategy of Fig. 4) and for
    first-order delta queries (Sec. 3.1): joining a delta relation with
    the remaining atoms per Eq. (2).

    The evaluator drives a relation through a sequence of parts (views),
    extending tuples via constant-time lookups when a part's variables
    are already bound and via group-index scans otherwise. *)

module Rel = Ivm_data.Relation.Z
module Schema = Ivm_data.Schema
module Tuple = Ivm_data.Tuple
module Cq = Ivm_query.Cq

(** [extend driver part] joins a driver relation with one part. *)
let extend (driver : Rel.t) (part : View.t) : Rel.t =
  let bound = Rel.schema driver in
  let pschema = View.schema part in
  let common = Schema.inter pschema bound in
  let fresh = Schema.diff pschema bound in
  if Schema.arity fresh = 0 then begin
    (* Pure lookup: multiply payloads of fully bound part tuples. *)
    let key_proj = Schema.projection bound pschema in
    let out = Rel.create ~size:(Rel.size driver) bound in
    Rel.iter
      (fun t p ->
        let q = View.get part (Tuple.project t key_proj) in
        if q <> 0 then Rel.add_entry out t (p * q))
      driver;
    out
  end
  else begin
    let ix = View.index_on part common in
    let key_proj = Schema.projection bound common in
    let fresh_proj = Schema.projection pschema fresh in
    let out_schema = Schema.union bound fresh in
    let out = Rel.create ~size:(Rel.size driver) out_schema in
    Rel.iter
      (fun t p ->
        let k = Tuple.project t key_proj in
        Rel.Index.iter_group ix k (fun pt q ->
            Rel.add_entry out (Tuple.append t (Tuple.project pt fresh_proj)) (p * q)))
      driver;
    out
  end

(* Greedy connected atom order: repeatedly pick the atom sharing the most
   variables with those already bound (ties: original order). *)
let plan (q : Cq.t) : Cq.atom list =
  let rec go bound remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
        let score (a : Cq.atom) =
          List.length (List.filter (fun v -> List.mem v bound) a.Cq.vars)
        in
        let best =
          List.fold_left (fun b a -> if score a > score b then a else b) (List.hd remaining)
            remaining
        in
        let remaining' = List.filter (fun a -> a != best) remaining in
        go (bound @ best.Cq.vars) remaining' (best :: acc)
  in
  go [] q.Cq.atoms []

(** [aggregate q ~lookup] recomputes the full group-by output of [q] from
    scratch: the result is keyed by [q.free], payloads are the ring
    aggregates. *)
let aggregate (q : Cq.t) ~(lookup : string -> View.t) : Rel.t =
  match plan q with
  | [] -> Rel.create (Schema.of_list q.Cq.free)
  | first :: rest ->
      let driver = Rel.copy (View.relation (lookup first.Cq.rel)) in
      let joined =
        List.fold_left (fun acc (a : Cq.atom) -> extend acc (lookup a.Cq.rel)) driver rest
      in
      Rel.project_onto joined (Schema.of_list q.Cq.free)

(** [delta q ~lookup ~changed ~delta:d] computes the change to the output
    of [q] caused by the delta relation [d] on relation [changed]
    (first-order delta query, Sec. 3.1). The base relations must not yet
    include [d] — or must all include it consistently — per Eq. (2) with
    a single changed atom. *)
let delta (q : Cq.t) ~(lookup : string -> View.t) ~(changed : string) ~(delta : Rel.t) : Rel.t =
  let others = List.filter (fun (a : Cq.atom) -> not (String.equal a.Cq.rel changed)) q.Cq.atoms in
  (* Order others greedily against the delta's schema. *)
  let rec go bound remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
        let score (a : Cq.atom) =
          List.length (List.filter (fun v -> List.mem v bound) a.Cq.vars)
        in
        let best =
          List.fold_left (fun b a -> if score a > score b then a else b) (List.hd remaining)
            remaining
        in
        go (bound @ best.Cq.vars) (List.filter (fun a -> a != best) remaining) (best :: acc)
  in
  let order = go (Schema.to_list (Rel.schema delta)) others [] in
  let joined =
    List.fold_left (fun acc (a : Cq.atom) -> extend acc (lookup a.Cq.rel)) delta order
  in
  Rel.project_onto joined (Schema.of_list q.Cq.free)
