(** Primary key – foreign key maintenance (Ex. 4.13): the JOB-style
    chain join Σ Title(m)·Movie_Companies(m,c)·Company_Name(c). Not
    q-hierarchical, yet amortized O(1) per update under *valid* batches,
    regardless of execution order — inconsistent intermediate states
    included. [work] counts lookups so benchmarks can report the
    amortized cost exactly. *)

type t

val create : unit -> t
val count : t -> int
val work : t -> int

val update_title : t -> m:int -> int -> unit
(** O(|σ_m Movie_Companies|): amortized O(1) under valid batches. *)

val update_companies : t -> m:int -> c:int -> int -> unit
(** O(1). *)

val update_names : t -> c:int -> int -> unit
(** O(1). *)

val recompute : t -> int
(** From-scratch count, for cross-checking. *)
