(** Dynamic k-clique counting in a simple undirected graph — the
    extension of the triangle techniques mentioned in Sec. 3.3
    ("extended to k-clique counting and to a parallel batch-dynamic
    triangle count algorithm [10]").

    The k-clique count is the self-join query Σ Π_{i<j} E(X_i, X_j)
    restricted to simple graphs. A single-edge update (u,v) changes the
    count by the number of (k−2)-cliques inside the common neighborhood
    of u and v — the multi-way generalization of the triangle delta of
    Sec. 3.1: for k = 3 this is exactly |N(u) ∩ N(v)|.

    Edges are unordered; inserting an existing edge or deleting a
    missing one is rejected (simple-graph semantics). *)

type t = {
  k : int;
  adj : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable cnt : int;
  mutable edges : int;
}

let create ~k =
  if k < 2 then invalid_arg "Kclique.create: k must be >= 2";
  { k; adj = Hashtbl.create 256; cnt = 0; edges = 0 }

let count t = t.cnt
let edge_count t = t.edges

let neighbors t u =
  match Hashtbl.find_opt t.adj u with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 8 in
      Hashtbl.replace t.adj u s;
      s

let has_edge t u v =
  match Hashtbl.find_opt t.adj u with Some s -> Hashtbl.mem s v | None -> false

let degree t u =
  match Hashtbl.find_opt t.adj u with Some s -> Hashtbl.length s | None -> 0

(* Count j-cliques inside the candidate set [cand] (all of whose members
   must be pairwise adjacent to count). Vertices are consumed in
   increasing order to count each clique once; candidates are filtered
   by adjacency as the clique grows, so the cost is bounded by the
   number of partial cliques explored. *)
let cliques_within t (cand : int list) (j : int) : int =
  let rec go cand j =
    if j = 0 then 1
    else
      (* Not enough candidates left: prune. *)
      let n = List.length cand in
      if n < j then 0
      else
        let rec pick acc = function
          | [] -> acc
          | u :: rest ->
              let nu = neighbors t u in
              let cand' = List.filter (fun w -> Hashtbl.mem nu w) rest in
              pick (acc + go cand' (j - 1)) rest
        in
        pick 0 cand
  in
  go (List.sort_uniq compare cand) j

(* Common neighborhood of u and v, iterating the smaller adjacency. *)
let common_neighbors t u v : int list =
  let su = neighbors t u and sv = neighbors t v in
  let small, big = if Hashtbl.length su <= Hashtbl.length sv then (su, sv) else (sv, su) in
  Hashtbl.fold (fun w () acc -> if Hashtbl.mem big w then w :: acc else acc) small []

(** [insert t u v] adds the edge {u,v}; returns the number of new
    k-cliques. Rejects loops and duplicate edges. *)
let insert t u v =
  if u = v then invalid_arg "Kclique.insert: loop";
  if has_edge t u v then invalid_arg "Kclique.insert: duplicate edge";
  let delta = cliques_within t (common_neighbors t u v) (t.k - 2) in
  Hashtbl.replace (neighbors t u) v ();
  Hashtbl.replace (neighbors t v) u ();
  t.edges <- t.edges + 1;
  t.cnt <- t.cnt + delta;
  delta

(** [delete t u v] removes the edge {u,v}; returns the number of
    k-cliques destroyed. *)
let delete t u v =
  if not (has_edge t u v) then invalid_arg "Kclique.delete: no such edge";
  Hashtbl.remove (neighbors t u) v;
  Hashtbl.remove (neighbors t v) u;
  t.edges <- t.edges - 1;
  let delta = cliques_within t (common_neighbors t u v) (t.k - 2) in
  t.cnt <- t.cnt - delta;
  delta

(** From-scratch count, for cross-checking: enumerate k-cliques over the
    whole vertex set. *)
let recompute t =
  let vertices = Hashtbl.fold (fun v s acc -> if Hashtbl.length s > 0 then v :: acc else acc) t.adj [] in
  cliques_within t vertices t.k
