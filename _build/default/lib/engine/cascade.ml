(** Cascading q-hierarchical queries (Sec. 4.2, Ex. 4.5, Fig. 5).

    Q2(A,B,C) = R(A,B)·S(B,C)          (q-hierarchical)
    Q1(A,B,C,D) = R(A,B)·S(B,C)·T(C,D) (not q-hierarchical)

    Q1 is rewritten as Q1' = Q2(A,B,C)·T(C,D), which is q-hierarchical.
    Updates to R and S are absorbed by Q2's view tree in O(1); the
    propagation of Q2's output tuples into the view V_Q2 (indexed by C)
    is piggybacked on the enumeration of Q2's output: its cost is
    covered by the enumeration itself, leaving O(1) amortized overhead
    per enumerated tuple. An enumeration request for Q1 is only valid
    after Q2 has been enumerated (condition (ii) of Sec. 4.2). *)

module Rel = Ivm_data.Relation.Z
module Schema = Ivm_data.Schema
module Tuple = Ivm_data.Tuple
module Value = Ivm_data.Value
module Update = Ivm_data.Update
module Cq = Ivm_query.Cq
module Vo = Ivm_query.Variable_order

let q2 =
  Cq.make ~name:"Q2" ~free:[ "A"; "B"; "C" ]
    [ Cq.atom "R" [ "A"; "B" ]; Cq.atom "S" [ "B"; "C" ] ]

let q1 =
  Cq.make ~name:"Q1" ~free:[ "A"; "B"; "C"; "D" ]
    [ Cq.atom "R" [ "A"; "B" ]; Cq.atom "S" [ "B"; "C" ]; Cq.atom "T" [ "C"; "D" ] ]

type t = {
  tree : View_tree.t; (* Q2's view tree: order B(A C) *)
  tt : Edges.t; (* T(C, D) *)
  v_q2 : View.t; (* Q2's output, keyed (C, A, B), indexed on C *)
  mutable dirty : bool; (* V_Q2 stale w.r.t. Q2's tree? *)
}

let create db =
  let forest = [ { Vo.var = "B"; children = [ { Vo.var = "A"; children = [] };
                                              { Vo.var = "C"; children = [] } ] } ] in
  {
    tree = View_tree.build q2 forest db;
    tt = Edges.create "C" "D";
    v_q2 = View.create (Schema.of_list [ "C"; "A"; "B" ]);
    dirty = true;
  }

let apply_update t (u : int Update.t) =
  match u.Update.rel with
  | "R" | "S" ->
      View_tree.apply_update t.tree u;
      t.dirty <- true
  | "T" ->
      let c = Value.to_int (Tuple.get u.Update.tuple 0)
      and d = Value.to_int (Tuple.get u.Update.tuple 1) in
      Edges.update t.tt c d u.Update.payload
  | r -> invalid_arg ("Cascade.apply_update: unknown relation " ^ r)

(** Enumerate Q2's output; as a side effect, refresh V_Q2 (the
    piggybacked propagation of Fig. 5). The sequence must be drained
    completely — an enumeration request enumerates the whole output
    (Fig. 1) — otherwise V_Q2 is only partially refreshed. *)
let enumerate_q2 (t : t) : (Tuple.t * int) Seq.t =
  if t.dirty then begin
    View.clear t.v_q2;
    t.dirty <- false;
    Seq.map
      (fun ((tup : Tuple.t), p) ->
        (* tup is over (A,B,C); store keyed (C,A,B). *)
        let reord = Tuple.of_list [ Tuple.get tup 2; Tuple.get tup 0; Tuple.get tup 1 ] in
        View.update t.v_q2 reord p;
        (tup, p))
      (View_tree.enumerate t.tree)
  end
  else View_tree.enumerate t.tree

(** Enumerate Q1 = Q2 ⋈ T. Raises if Q2 has not been enumerated since
    the last update to R or S. *)
let enumerate_q1 (t : t) : (Tuple.t * int) Seq.t =
  if t.dirty then
    invalid_arg "Cascade.enumerate_q1: enumerate Q2 first (Sec. 4.2, condition (ii))";
  let ix_c = View.index_on t.v_q2 (Schema.of_list [ "C" ]) in
  Seq.concat_map
    (fun (ckey : Tuple.t) ->
      let c = Value.to_int (Tuple.get ckey 0) in
      if Edges.deg_fst t.tt c = 0 then Seq.empty
      else
        Seq.concat_map
          (fun (q2t, p) ->
            Seq.map
              (fun (tt, q) ->
                let d = Tuple.get tt 1 in
                (* output over (A,B,C,D) *)
                ( Tuple.of_list [ Tuple.get q2t 1; Tuple.get q2t 2; Tuple.get q2t 0; d ],
                  p * q ))
              (Rel.Index.seq_group t.tt.Edges.by_fst ckey))
          (Rel.Index.seq_group ix_c ckey))
    (Rel.Index.seq_keys ix_c)

(** Baseline for the comparison: maintain Q1 standalone with first-order
    delta queries over the base relations (lazy-list style), enumerating
    by recomputation. *)
module Standalone = struct
  type nonrec t = { r : Edges.t; s : Edges.t; tt : Edges.t; out : View.t }

  let create () =
    {
      r = Edges.create "A" "B";
      s = Edges.create "B" "C";
      tt = Edges.create "C" "D";
      out = View.create (Schema.of_list [ "A"; "B"; "C"; "D" ]);
    }

  (* Eager list maintenance: the output delta of a single-tuple update
     is materialized immediately (DBToaster-style for a flat output). *)
  let apply_update t (u : int Update.t) =
    let x = Value.to_int (Tuple.get u.Update.tuple 0)
    and y = Value.to_int (Tuple.get u.Update.tuple 1) in
    let m = u.Update.payload in
    let emit a b c d p = View.update t.out (Tuple.of_ints [ a; b; c; d ]) p in
    (match u.Update.rel with
    | "R" ->
        Edges.iter_fst t.s y (fun c p ->
            Edges.iter_fst t.tt c (fun d q -> emit x y c d (m * p * q)))
    | "S" ->
        Edges.iter_snd t.r x (fun a p ->
            Edges.iter_fst t.tt y (fun d q -> emit a x y d (p * m * q)))
    | "T" ->
        Edges.iter_snd t.s x (fun b p ->
            Edges.iter_snd t.r b (fun a q -> emit a b x y (q * p * m)))
    | r -> invalid_arg ("Cascade.Standalone: unknown relation " ^ r));
    (match u.Update.rel with
    | "R" -> Edges.update t.r x y m
    | "S" -> Edges.update t.s x y m
    | _ -> Edges.update t.tt x y m)

  let enumerate t = View.to_seq t.out
end
