(** View trees — the factorized maintenance structure of F-IVM
    (Sec. 4.1, Fig. 3).

    A view tree follows a variable order: each variable X carries a view
    V_X keyed by dep(X) ∪ {X} (the join of the atoms anchored at X and
    of the child aggregates) and an aggregate A_X keyed by dep(X) that
    marginalizes X. Single-tuple updates propagate along the leaf-to-root
    path; for q-hierarchical queries every hop is O(1) (a static fast
    path detects this and propagates with pure lookups). The query
    output is factorized over the views and enumerated with constant
    delay when the free variables form a connex top fragment.

    Maintenance guarantees assume *valid* update sequences (Sec. 2): all
    base multiplicities non-negative. *)

module Rel = Ivm_data.Relation.Z
module Tuple = Ivm_data.Tuple
module Cq = Ivm_query.Cq
module Vo = Ivm_query.Variable_order

type t

val build : Cq.t -> Vo.forest -> Ivm_data.Database.Z.t -> t
(** Preprocess: copy the base relations, materialize every view
    bottom-up, and create the enumeration indexes — O(N) for
    q-hierarchical queries with their canonical order.
    @raise Invalid_argument when the order is invalid for the query. *)

val base_view : t -> string -> View.t
(** The maintained leaf relation of an atom. *)

val node_count : t -> int

val views_size : t -> int
(** Total entries across all materialized views (excluding leaves). *)

val apply_delta : t -> string -> Rel.t -> unit
(** Propagate a delta relation for one base relation along its
    leaf-to-root path (the delta view trees of Fig. 3). *)

val apply_update : t -> int Ivm_data.Update.t -> unit
(** Single-tuple insert (positive payload) or delete (negative). Uses
    the lookup-only fast path when the static analysis allows it. *)

val total_aggregate : t -> int
(** The value of a query with no free variables (e.g. a count). *)

val enumerate : t -> (Tuple.t * int) Seq.t
(** Constant-delay enumeration of (output tuple, aggregate payload).
    @raise Invalid_argument when the free variables are not a connex top
    fragment of the order. *)

val iter_output : t -> (Tuple.t -> int -> unit) -> unit
(** Same traversal as {!enumerate} with a slot-array environment and
    reusable key buffers: the fast path driven by the benchmarks. *)

val output_relation : t -> Rel.t
val output_count : t -> int

val apply_update_enumerating : t -> int Ivm_data.Update.t -> (Tuple.t * int) list
(** Delta enumeration (the paper's footnote 2): apply the update and
    return only the change to the query output. *)
