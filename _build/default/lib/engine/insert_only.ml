(** Insert-only maintenance (Sec. 4.6).

    Every α-acyclic join can be maintained with amortized O(1) time per
    single-tuple insert and O(1) enumeration delay — even when, like the
    path join

    Q(A,B,C,D) = R(A,B) · S(B,C) · T(C,D)

    it is not q-hierarchical and hence OuMv-hard under insert-delete
    streams (Thm. 4.1).

    The engine exploits monotonicity: a tuple becomes "active" when it
    has join partners downstream, and under inserts it never deactivates,
    so each tuple is activated at most once — the activation work is
    amortized O(1). Active tuples are kept in calibrated indexes that
    support constant-delay enumeration:

    - an S-tuple (b,c) is alive once T has a tuple with C = c;
    - an R-tuple (a,b) is active once some alive S-tuple has B = b.

    [work] counts elementary operations so benchmarks can report the
    amortized cost. *)

module Rel = Ivm_data.Relation.Z
module Schema = Ivm_data.Schema
module Tuple = Ivm_data.Tuple
module Value = Ivm_data.Value

type t = {
  r_active : Edges.t; (* R-tuples with an alive S partner, by_fst = A? indexed both *)
  r_pending : Edges.t; (* R-tuples waiting for b to come alive; by_snd = B *)
  s_alive : Edges.t; (* alive S-tuples, indexed by B *)
  s_dead : Edges.t; (* S-tuples waiting for their c in T; by_snd = C *)
  tt : Edges.t; (* T(C,D), by_fst = C *)
  mutable work : int;
}

let create () =
  {
    r_active = Edges.create "A" "B";
    r_pending = Edges.create "A" "B";
    s_alive = Edges.create "B" "C";
    s_dead = Edges.create "B" "C";
    tt = Edges.create "C" "D";
    work = 0;
  }

let work t = t.work
let b_alive t b = Edges.deg_fst t.s_alive b > 0
let c_present t c = Edges.deg_fst t.tt c > 0

(* Activate every pending R-tuple whose B-value just came alive. Each
   R-tuple moves at most once, ever. *)
let activate_r t b =
  let moved = ref [] in
  Edges.iter_snd t.r_pending b (fun a p -> moved := (a, p) :: !moved);
  List.iter
    (fun (a, p) ->
      t.work <- t.work + 1;
      Edges.update t.r_pending a b (-p);
      Edges.update t.r_active a b p)
    !moved

(* Revive every dead S-tuple whose C-value just appeared in T; reviving
   an S-tuple may in turn bring its B-value alive. *)
let revive_s t c =
  let moved = ref [] in
  Edges.iter_snd t.s_dead c (fun b p -> moved := (b, p) :: !moved);
  List.iter
    (fun (b, p) ->
      t.work <- t.work + 1;
      let was_alive = b_alive t b in
      Edges.update t.s_dead b c (-p);
      Edges.update t.s_alive b c p;
      if not was_alive then activate_r t b)
    !moved

let insert_r t ~a ~b m =
  if m < 0 then invalid_arg "Insert_only.insert_r: inserts only";
  t.work <- t.work + 1;
  if b_alive t b then Edges.update t.r_active a b m else Edges.update t.r_pending a b m

let insert_s t ~b ~c m =
  if m < 0 then invalid_arg "Insert_only.insert_s: inserts only";
  t.work <- t.work + 1;
  if c_present t c then begin
    let was_alive = b_alive t b in
    Edges.update t.s_alive b c m;
    if not was_alive then activate_r t b
  end
  else Edges.update t.s_dead b c m

let insert_t t ~c ~d m =
  if m < 0 then invalid_arg "Insert_only.insert_t: inserts only";
  t.work <- t.work + 1;
  let first = not (c_present t c) in
  Edges.update t.tt c d m;
  if first then revive_s t c

(** Constant-delay enumeration of Q(A,B,C,D): every visited entry emits
    at least one output tuple, by the calibration invariants. *)
let enumerate (t : t) : (Tuple.t * int) Seq.t =
  Seq.concat_map
    (fun ((rt : Tuple.t), p) ->
      let b = Tuple.get rt 1 in
      Seq.concat_map
        (fun ((st : Tuple.t), q) ->
          let c = Tuple.get st 1 in
          Seq.map
            (fun ((ttup : Tuple.t), s) ->
              (Tuple.of_list [ Tuple.get rt 0; b; c; Tuple.get ttup 1 ], p * q * s))
            (Rel.Index.seq_group t.tt.Edges.by_fst (Tuple.of_list [ c ])))
        (Rel.Index.seq_group t.s_alive.Edges.by_fst (Tuple.of_list [ b ])))
    (View.to_seq t.r_active.Edges.view)

let output_size t = Seq.fold_left (fun n _ -> n + 1) 0 (enumerate t)

(** Insert-delete baseline on the same path join: first-order delta
    maintenance of the listed output; the per-update cost is the size of
    the output delta, which OuMv-hardness says cannot be beaten down to
    O(N^{1/2-γ}) together with fast enumeration. *)
module With_deletes = struct
  type nonrec t = { r : Edges.t; s : Edges.t; tt : Edges.t; out : View.t; mutable work : int }

  let create () =
    {
      r = Edges.create "A" "B";
      s = Edges.create "B" "C";
      tt = Edges.create "C" "D";
      out = View.create (Schema.of_list [ "A"; "B"; "C"; "D" ]);
      work = 0;
    }

  let work t = t.work

  let update t rel ~x ~y m =
    let emit a b c d p =
      t.work <- t.work + 1;
      View.update t.out (Tuple.of_ints [ a; b; c; d ]) p
    in
    (match rel with
    | `R ->
        Edges.iter_fst t.s y (fun c p ->
            Edges.iter_fst t.tt c (fun d q -> emit x y c d (m * p * q)))
    | `S ->
        Edges.iter_snd t.r x (fun a p ->
            Edges.iter_fst t.tt y (fun d q -> emit a x y d (p * m * q)))
    | `T ->
        Edges.iter_snd t.s x (fun b p ->
            Edges.iter_snd t.r b (fun a q -> emit a b x y (q * p * m))));
    (match rel with
    | `R -> Edges.update t.r x y m
    | `S -> Edges.update t.s x y m
    | `T -> Edges.update t.tt x y m);
    t.work <- t.work + 1

  let enumerate t = View.to_seq t.out
end
