(** Primary key – foreign key maintenance (Sec. 4.4, Ex. 4.13).

    The JOB-style chain join over the simplified IMDB schema:

    Q = Σ  Title(m) · Movie_Companies(m, c) · Company_Name(c)

    is neither q-hierarchical nor FD-reducible to one, yet under *valid*
    update batches — batches mapping consistent databases to consistent
    databases — it is maintainable in amortized constant time per
    update, regardless of the execution order inside the batch.

    The engine materializes V_M(c) = Σ_m M(m,c)·T(m). Inserts into M and
    C cost O(1); an insert/delete of a key m in T costs O(|σ_{m} M|),
    which consistency amortizes to O(1) across the M-updates that
    created those references. [work] counts the lookups performed, so
    benchmarks can report the amortized cost exactly. *)

module Schema = Ivm_data.Schema

type t = {
  title : View.t; (* T(m) *)
  companies : Edges.t; (* M(m, c) *)
  names : View.t; (* C(c) *)
  v_m : View.t; (* V_M(c) = Σ_m M(m,c)·T(m) *)
  mutable cnt : int;
  mutable work : int;
}

let create () =
  {
    title = View.create (Schema.of_list [ "m" ]);
    companies = Edges.create "m" "c";
    names = View.create (Schema.of_list [ "c" ]);
    v_m = View.create (Schema.of_list [ "c" ]);
    cnt = 0;
    work = 0;
  }

let key1 = Edges.key1
let count t = t.cnt
let work t = t.work

let update_title t ~m d =
  (* δT(m): every company referencing m in M sees V_M change. *)
  Edges.iter_fst t.companies m (fun c p ->
      t.work <- t.work + 1;
      View.update t.v_m (key1 c) (d * p);
      t.cnt <- t.cnt + (d * p * View.get t.names (key1 c)));
  t.work <- t.work + 1;
  View.update t.title (key1 m) d

let update_companies t ~m ~c d =
  t.work <- t.work + 1;
  let tm = View.get t.title (key1 m) in
  if tm <> 0 then begin
    View.update t.v_m (key1 c) (d * tm);
    t.cnt <- t.cnt + (d * tm * View.get t.names (key1 c))
  end;
  Edges.update t.companies m c d

let update_names t ~c d =
  t.work <- t.work + 1;
  t.cnt <- t.cnt + (d * View.get t.v_m (key1 c));
  View.update t.names (key1 c) d

(** From-scratch count, for cross-checking. *)
let recompute t =
  let acc = ref 0 in
  Edges.iter t.companies (fun m c p ->
      acc := !acc + (p * View.get t.title (key1 m) * View.get t.names (key1 c)));
  !acc
