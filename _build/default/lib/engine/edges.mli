(** Binary relations over integer keys with group indexes on both
    columns — the storage shared by the triangle engines (Sec. 3) and
    the heavy/light partitions of IVM^ε (Sec. 3.3). *)

module Rel = Ivm_data.Relation.Z
module Tuple = Ivm_data.Tuple

type t = { view : View.t; by_fst : Rel.Index.t; by_snd : Rel.Index.t }

val create : string -> string -> t
(** [create fst snd] is an empty binary relation with column names
    [fst] and [snd]. *)

val tup2 : int -> int -> Tuple.t
val key1 : int -> Tuple.t

val update : t -> int -> int -> int -> unit
(** [update e a b m] merges multiplicity [m] for the tuple (a, b). *)

val get : t -> int -> int -> int
val size : t -> int

val deg_fst : t -> int -> int
(** Number of distinct tuples with first column [a] — the degree used by
    heavy/light partitioning. *)

val deg_snd : t -> int -> int

val iter_fst : t -> int -> (int -> int -> unit) -> unit
(** [iter_fst e a f] calls [f b payload] for every tuple (a, b). *)

val iter_snd : t -> int -> (int -> int -> unit) -> unit
val iter : t -> (int -> int -> int -> unit) -> unit
val fst_keys : t -> (int -> unit) -> unit

val intersect : t -> int -> t -> int -> int
(** [intersect e1 k1 e2 k2] is [Σ_x e1(k1, x) · e2(x, k2)], iterating
    the smaller adjacency list — the delta-query cost model of
    Sec. 3.1/3.3. *)
