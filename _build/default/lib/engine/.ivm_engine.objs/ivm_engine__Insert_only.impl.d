lib/engine/insert_only.ml: Edges Ivm_data List Seq View
