lib/engine/cqap_runtime.ml: Edges Ivm_data Seq View
