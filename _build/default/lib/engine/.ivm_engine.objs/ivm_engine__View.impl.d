lib/engine/view.ml: Ivm_data List String
