lib/engine/kclique.ml: Hashtbl List
