lib/engine/cascade.ml: Edges Ivm_data Ivm_query Seq View View_tree
