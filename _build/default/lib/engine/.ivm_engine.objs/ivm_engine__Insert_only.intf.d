lib/engine/insert_only.mli: Ivm_data Seq
