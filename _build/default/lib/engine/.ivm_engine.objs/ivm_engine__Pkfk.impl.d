lib/engine/pkfk.ml: Edges Ivm_data View
