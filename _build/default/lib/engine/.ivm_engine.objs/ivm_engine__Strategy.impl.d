lib/engine/strategy.ml: Eval Ivm_data Ivm_query List Seq View View_tree
