lib/engine/view_tree.mli: Ivm_data Ivm_query Seq View
