lib/engine/static_dynamic_engine.ml: Ivm_data Ivm_query List View_tree
