lib/engine/eval.mli: Ivm_data Ivm_query View
