lib/engine/fd_reduct.ml: Ivm_query View_tree
