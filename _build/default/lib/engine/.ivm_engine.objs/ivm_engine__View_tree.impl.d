lib/engine/view_tree.ml: Array Eval Hashtbl Ivm_data Ivm_query List Seq String View
