lib/engine/strategy.mli: Ivm_data Ivm_query Seq View_tree
