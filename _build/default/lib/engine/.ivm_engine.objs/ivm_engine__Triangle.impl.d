lib/engine/triangle.ml: Edges Ivm_data View
