lib/engine/view.mli: Format Ivm_data Seq
