lib/engine/kclique.mli:
