lib/engine/pkfk.mli:
