lib/engine/eval.ml: Ivm_data Ivm_query List String View
