lib/engine/triangle.mli: Edges
