lib/engine/edges.ml: Ivm_data View
