lib/engine/edges.mli: Ivm_data View
