(** Maintenance engines for the triangle count (Sec. 3):
    Q = Σ_{A,B,C} R(A,B)·S(B,C)·T(C,A).

    {!Naive} recomputes from scratch; {!Delta} uses first-order delta
    queries (O(N) per update, Sec. 3.1); {!One_view} materializes
    V_ST(B,A) = Σ_C S(B,C)·T(C,A) (Ex. 3.2: O(1) updates to R, O(N) to
    S and T, O(N²) space). The worst-case optimal IVM^ε engine is
    [Ivm_eps.Triangle_count]. *)

type relation = R | S | T

val relation_name : relation -> string

(** The interface every triangle engine implements, so benchmarks, the
    OuMv reduction and tests can swap them. *)
module type ENGINE = sig
  type t

  val name : string

  val create : unit -> t
  (** An engine over the empty database. *)

  val update : t -> relation -> a:int -> b:int -> int -> unit
  (** [update t rel ~a ~b m] merges multiplicity [m] for the tuple (a,b)
      of [rel], in the relation's own schema order: (A,B) for R, (B,C)
      for S, (C,A) for T. *)

  val count : t -> int
  (** The current triangle count. O(1) for all engines except {!Naive},
      which recomputes here (deferred, so loading data stays linear). *)
end

type base = { r : Edges.t; s : Edges.t; t : Edges.t }

val make_base : unit -> base
val edges_of : base -> relation -> Edges.t
val next : relation -> relation
val prev : relation -> relation

val delta_count : base -> relation -> int -> int -> int -> int
(** The first-order delta of the count for a single-tuple update, via
    adjacency-list intersection (Sec. 3.1). *)

val recompute : base -> int
val database_size : base -> int

module Naive : ENGINE
module Delta : ENGINE
module One_view : ENGINE
