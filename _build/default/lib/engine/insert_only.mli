(** Insert-only maintenance of the α-acyclic, non-q-hierarchical path
    join Q(A,B,C,D) = R(A,B)·S(B,C)·T(C,D) (Sec. 4.6): amortized O(1)
    per insert and O(1) enumeration delay via monotone activation —
    under inserts a tuple becomes "active" at most once, ever. With
    deletes the query is OuMv-hard (Thm. 4.1); {!With_deletes} is the
    first-order-delta baseline that pays the output-delta size. *)

module Tuple = Ivm_data.Tuple

type t

val create : unit -> t

val work : t -> int
(** Elementary operations so far; flat per insert in benchmarks. *)

val insert_r : t -> a:int -> b:int -> int -> unit
val insert_s : t -> b:int -> c:int -> int -> unit
val insert_t : t -> c:int -> d:int -> int -> unit
(** Inserts only; negative multiplicities are rejected. *)

val enumerate : t -> (Tuple.t * int) Seq.t
(** Constant-delay: every visited entry emits, by the calibration
    invariants. *)

val output_size : t -> int

module With_deletes : sig
  type t

  val create : unit -> t
  val work : t -> int
  val update : t -> [ `R | `S | `T ] -> x:int -> y:int -> int -> unit
  val enumerate : t -> (Tuple.t * int) Seq.t
end
