(** Runtimes for the paper's three CQAP examples (Ex. 4.6).

    A CQAP answers access requests: given a tuple over the input
    variables, enumerate the matching tuples over the output variables.
    Maintenance keeps the supporting indexes up to date under updates. *)

module Rel = Ivm_data.Relation.Z
module Schema = Ivm_data.Schema
module Tuple = Ivm_data.Tuple
module Value = Ivm_data.Value

(** Tractable: triangle detection with all-input access pattern
    Q(·|A,B,C) = E(A,B)·E(B,C)·E(C,A) — O(1) updates (the relation is
    just stored) and O(1) answers (three hash lookups). Note the
    self-join: one stored copy of E serves all three atoms. *)
module Triangle_detect = struct
  type t = { e : Edges.t }

  let create () = { e = Edges.create "X" "Y" }
  let update t ~x ~y m = Edges.update t.e x y m

  (** Do the three given nodes form a triangle? *)
  let answer t ~a ~b ~c =
    Edges.get t.e a b <> 0 && Edges.get t.e b c <> 0 && Edges.get t.e c a <> 0
end

(** Not tractable (but still maintainable optimally): edge triangle
    listing Q(C|A,B) = E(A,B)·E(B,C)·E(C,A) — the answer intersects two
    adjacency lists, so the delay grows with the degree; Thm. 4.8's
    dichotomy says no algorithm brings both update time and delay to
    O(N^{1/2-γ}). *)
module Edge_triangles = struct
  type t = { e : Edges.t }

  let create () = { e = Edges.create "X" "Y" }
  let update t ~x ~y m = Edges.update t.e x y m

  (** All C such that (a,b,C) is a triangle, with multiplicities. *)
  let answer t ~a ~b : (int * int) list =
    if Edges.get t.e a b = 0 then []
    else begin
      let eab = Edges.get t.e a b in
      let out = ref [] in
      (* Iterate the smaller of E(b,·) and E(·,a). *)
      if Edges.deg_fst t.e b <= Edges.deg_snd t.e a then
        Edges.iter_fst t.e b (fun c p ->
            let q = Edges.get t.e c a in
            if q <> 0 then out := (c, eab * p * q) :: !out)
      else
        Edges.iter_snd t.e a (fun c q ->
            let p = Edges.get t.e b c in
            if p <> 0 then out := (c, eab * p * q) :: !out);
      !out
    end
end

(** Tractable: Q(A|B) = S(A,B)·T(B) — given b, enumerate the A-values
    with constant delay from the index of S on B, guarded by one lookup
    into T. *)
module Lookup_join = struct
  type t = { s : Edges.t; (* S(A,B) *) tvals : View.t (* T(B) *) }

  let create () = { s = Edges.create "A" "B"; tvals = View.create (Schema.of_list [ "B" ]) }
  let update_s t ~a ~b m = Edges.update t.s a b m
  let update_t t ~b m = View.update t.tvals (Edges.key1 b) m

  (** Enumerate the (A, payload) answers for input [b]. *)
  let answer t ~b : (int * int) Seq.t =
    let tb = View.get t.tvals (Edges.key1 b) in
    if tb = 0 then Seq.empty
    else
      Seq.map
        (fun ((tup : Tuple.t), p) -> (Value.to_int (Tuple.get tup 0), p * tb))
        (Rel.Index.seq_group t.s.Edges.by_snd (Edges.key1 b))
end
