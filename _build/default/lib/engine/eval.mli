(** Classical query evaluation by index nested-loop joins: from-scratch
    recomputation (the lazy-list strategy of Fig. 4) and first-order
    delta queries (Sec. 3.1, Eq. 2). *)

module Rel = Ivm_data.Relation.Z
module Cq = Ivm_query.Cq

val extend : Rel.t -> View.t -> Rel.t
(** Join a driver relation with one part: pure lookups when the part is
    fully bound by the driver schema, group-index scans otherwise. *)

val plan : Cq.t -> Cq.atom list
(** Greedy connected atom order. *)

val aggregate : Cq.t -> lookup:(string -> View.t) -> Rel.t
(** The full group-by output, keyed by the free variables. *)

val delta : Cq.t -> lookup:(string -> View.t) -> changed:string -> delta:Rel.t -> Rel.t
(** The output change caused by a delta on one relation; the base
    relations must not yet include the delta. *)
