(** Materialized views over the ring of integer multiplicities: a
    relation plus lazily created secondary group indexes, kept in sync
    under updates. See Sec. 2 of the paper for the data model. *)

module Rel = Ivm_data.Relation.Z
module Schema = Ivm_data.Schema
module Tuple = Ivm_data.Tuple

type t

val create : Schema.t -> t
(** An empty view over the given schema. *)

val of_relation : Rel.t -> t
(** Wrap an existing relation; the view takes ownership. *)

val schema : t -> Schema.t
val relation : t -> Rel.t
val size : t -> int

val get : t -> Tuple.t -> int
(** Payload of a tuple; [0] when absent. Amortized O(1). *)

val mem : t -> Tuple.t -> bool
val to_seq : t -> (Tuple.t * int) Seq.t
val iter : (Tuple.t -> int -> unit) -> t -> unit

val scalar : t -> int
(** The payload of the empty tuple — the value of a fully aggregated
    view. *)

val index_on : t -> Schema.t -> Rel.Index.t
(** [index_on v key] returns the group index of [v] on the sub-schema
    [key], creating and backfilling it on first request. Subsequent
    {!update}s maintain every requested index. *)

val update : t -> Tuple.t -> int -> unit
(** [update v t p] merges delta payload [p] for tuple [t] into the view
    and all its indexes (insert for positive [p], delete for negative).
    Amortized O(1). *)

val apply_delta : t -> Rel.t -> unit
(** Merge a delta relation with the same positional schema. *)

val clear : t -> unit
val pp : Format.formatter -> t -> unit
