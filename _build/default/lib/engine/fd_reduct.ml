(** Maintenance under functional dependencies (Sec. 4.4, Ex. 4.12,
    Fig. 6).

    When the Σ-reduct of a query is q-hierarchical, the original query
    can be maintained with O(1) single-tuple updates and O(1) enumeration
    delay over any database satisfying the FDs (Thm. 4.11). The view
    tree is the generic one of {!View_tree}, built over the *original*
    relations but shaped by the reduct's canonical variable order: each
    propagation step looks up at most a constant number of partner values
    because the FDs bound the degrees (e.g. X→Y makes the lookup of
    Y-values for a given x return at most one value).

    The engine itself is therefore a thin constructor; the constant
    bound is a property of FD-satisfying data, which the benchmarks
    measure. *)

module Cq = Ivm_query.Cq
module Fd = Ivm_query.Fd
module Vo = Ivm_query.Variable_order

type t = { query : Cq.t; reduct : Cq.t; tree : View_tree.t }

(** [build fds q db] constructs the engine, or [Error] if the Σ-reduct
    is not q-hierarchical or its order does not transfer to [q]. *)
let build (fds : Fd.t list) (q : Cq.t) db : (t, string) result =
  let reduct = Fd.sigma_reduct fds q in
  if not (Ivm_query.Hierarchical.is_q_hierarchical reduct) then
    Error "the Σ-reduct is not q-hierarchical"
  else
    match Vo.canonical reduct with
    | None -> Error "the Σ-reduct has no canonical variable order"
    | Some forest -> (
        match Vo.validate q forest with
        | Error e -> Error ("reduct order invalid for the original query: " ^ e)
        | Ok () -> Ok { query = q; reduct; tree = View_tree.build q forest db })

let apply_update t u = View_tree.apply_update t.tree u
let enumerate t = View_tree.enumerate t.tree
let output t = View_tree.output_relation t.tree
let tree t = t.tree
