(** Values stored in tuple fields: integers (ids, graph nodes), strings
    (categorical attributes) and floats (measures). *)

type t = Int of int | Str of string | Real of float

val of_int : int -> t
val of_string : string -> t
val of_float : float -> t

val to_int : t -> int
(** @raise Invalid_argument when the value is not an [Int]. *)

val to_string_exn : t -> string
(** @raise Invalid_argument when the value is not a [Str]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
