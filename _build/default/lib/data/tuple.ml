(** Tuples are immutable arrays of values, positionally aligned with a
    {!Schema}. The empty tuple [unit] is the tuple over the empty schema,
    the key of scalar (fully aggregated) views. *)

type t = Value.t array

let unit : t = [||]
let of_list = Array.of_list
let to_list = Array.to_list
let of_ints is = Array.of_list (List.map Value.of_int is)
let arity (t : t) = Array.length t
let get (t : t) i = t.(i)

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  &&
  let rec go i = i < 0 || (Value.equal a.(i) b.(i) && go (i - 1)) in
  go (Array.length a - 1)

let compare (a : t) (b : t) =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let rec go i =
      if i >= Array.length a then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let hash (t : t) = Hashtbl.hash t

(* [project t idxs] picks the fields of [t] at positions [idxs]. *)
let project (t : t) (idxs : int array) : t =
  Array.map (fun i -> t.(i)) idxs

let append (a : t) (b : t) : t = Array.append a b

let pp ppf (t : t) =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Value.pp)
    (to_list t)

let to_string t = Format.asprintf "%a" pp t

(** Hashtables keyed by tuples. *)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
