lib/data/tuple.ml: Array Format Hashtbl Int List Value
