lib/data/tuple.mli: Format Hashtbl Value
