lib/data/schema.ml: Array Format Hashtbl List String
