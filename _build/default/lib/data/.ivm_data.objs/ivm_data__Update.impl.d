lib/data/update.ml: Array Format Random Tuple
