lib/data/value.ml: Float Format Hashtbl Int Stdlib String
