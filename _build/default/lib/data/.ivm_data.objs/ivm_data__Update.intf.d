lib/data/update.mli: Format Random Tuple
