lib/data/database.ml: Hashtbl Ivm_ring List Relation Update
