lib/data/relation.ml: Format Ivm_ring List Option Schema Seq Tuple Value
