(** Tuples: immutable arrays of values, positionally aligned with a
    {!Schema}. The empty tuple is the tuple over the empty schema — the
    key of fully aggregated (scalar) views. *)

type t = Value.t array

val unit : t
(** The empty tuple [()]. *)

val of_list : Value.t list -> t
val to_list : t -> Value.t list

val of_ints : int list -> t
(** Convenience: a tuple of integer values. *)

val arity : t -> int
val get : t -> int -> Value.t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val project : t -> int array -> t
(** [project t idxs] picks the fields of [t] at positions [idxs]; used
    with {!Schema.projection}. *)

val append : t -> t -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Hash tables keyed by tuples. *)
module Tbl : Hashtbl.S with type key = t
