(** Values stored in tuple fields. A small universe is enough for every
    workload in the paper: integers (ids, graph nodes), strings
    (categorical attributes) and floats (measures). *)

type t =
  | Int of int
  | Str of string
  | Real of float

let of_int i = Int i
let of_string s = Str s
let of_float f = Real f

let to_int = function
  | Int i -> i
  | Str _ | Real _ -> invalid_arg "Value.to_int"

let to_string_exn = function
  | Str s -> s
  | Int _ | Real _ -> invalid_arg "Value.to_string_exn"

let compare (a : t) (b : t) = Stdlib.compare a b

let equal (a : t) (b : t) =
  match (a, b) with
  | Int x, Int y -> Int.equal x y
  | Str x, Str y -> String.equal x y
  | Real x, Real y -> Float.equal x y
  | (Int _ | Str _ | Real _), _ -> false

let hash = Hashtbl.hash

let pp ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Str s -> Format.pp_print_string ppf s
  | Real f -> Format.fprintf ppf "%g" f

let to_string v = Format.asprintf "%a" pp v
