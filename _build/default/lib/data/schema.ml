(** A schema is an ordered tuple of distinct variable names (Sec. 2). We
    keep the order, since tuples are positional, but most structural
    operations treat a schema as a set. *)

type var = string
type t = var array

let of_list (vs : var list) : t =
  let t = Array.of_list vs in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun v ->
      if Hashtbl.mem seen v then invalid_arg ("Schema.of_list: duplicate variable " ^ v);
      Hashtbl.add seen v ())
    t;
  t

let to_list = Array.to_list
let arity = Array.length
let empty : t = [||]
let mem (v : var) (s : t) = Array.exists (String.equal v) s

let position (s : t) (v : var) =
  let rec go i =
    if i >= Array.length s then raise Not_found
    else if String.equal s.(i) v then i
    else go (i + 1)
  in
  go 0

let equal_as_sets (a : t) (b : t) =
  Array.length a = Array.length b && Array.for_all (fun v -> mem v b) a

let subset (a : t) (b : t) = Array.for_all (fun v -> mem v b) a

(* [union a b] is [a] followed by the variables of [b] not in [a]. *)
let union (a : t) (b : t) : t =
  Array.append a (Array.of_list (List.filter (fun v -> not (mem v a)) (to_list b)))

let inter (a : t) (b : t) : t = Array.of_list (List.filter (fun v -> mem v b) (to_list a))
let diff (a : t) (b : t) : t = Array.of_list (List.filter (fun v -> not (mem v b)) (to_list a))

(* [projection src tgt] gives the positions in [src] of the variables of
   [tgt], for use with {!Tuple.project}. Every variable of [tgt] must
   occur in [src]. *)
let projection (src : t) (tgt : t) : int array =
  Array.map (fun v -> position src v) tgt

let pp ppf (s : t) =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_string)
    (to_list s)

let to_string s = Format.asprintf "%a" pp s
