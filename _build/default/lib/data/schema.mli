(** Schemas: ordered tuples of distinct variable names (Sec. 2). The
    order matters because tuples are positional; structural operations
    treat schemas as sets. *)

type var = string
type t = var array

val of_list : var list -> t
(** @raise Invalid_argument on duplicate variables. *)

val to_list : t -> var list
val arity : t -> int
val empty : t
val mem : var -> t -> bool

val position : t -> var -> int
(** @raise Not_found when the variable is absent. *)

val equal_as_sets : t -> t -> bool
val subset : t -> t -> bool

val union : t -> t -> t
(** [union a b] keeps [a]'s order, then appends [b]'s new variables. *)

val inter : t -> t -> t
val diff : t -> t -> t

val projection : t -> t -> int array
(** [projection src tgt] gives the positions in [src] of the variables
    of [tgt], for {!Tuple.project}. Every variable of [tgt] must occur
    in [src]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
