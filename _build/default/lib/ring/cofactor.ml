(** The degree-2 (cofactor) ring of F-IVM [33, 22]: payloads are triples
    [(count, sums vector, cofactor matrix)] over a fixed set of [n]
    numeric features. Maintaining a query over this ring maintains, in one
    pass, all pairwise cofactors SUM(X_i * X_j) of the join result — the
    sufficient statistics of linear regression ("in-database machine
    learning" in the paper's Sec. 6 outlook).

    Multiplication is the scalar extension of the degree-1 rule:
    - count: c1*c2
    - sums:  c1*s2 + c2*s1
    - cofactors: c1*Q2 + c2*Q1 + s1*s2^T + s2*s1^T *)

type t = { count : int; sums : float array; cof : float array array }

let dim = ref 0

let set_dimension n =
  if n < 0 then invalid_arg "Cofactor.set_dimension";
  dim := n

let dimension () = !dim
let make_vec () = Array.make !dim 0.
let make_mat () = Array.init !dim (fun _ -> Array.make !dim 0.)
let zero_of n =
  { count = 0; sums = Array.make n 0.; cof = Array.init n (fun _ -> Array.make n 0.) }

let zero = { count = 0; sums = [||]; cof = [||] }
let one = { count = 1; sums = [||]; cof = [||] }

(* The empty-array forms of [zero] and [one] act as neutral elements of
   any dimension; [promote] expands them on demand. *)
let promote x = if Array.length x.sums = !dim then x else
    { x with sums = (let v = make_vec () in Array.blit x.sums 0 v 0 (Array.length x.sums); v);
             cof = (let m = make_mat () in
                    Array.iteri (fun i r -> Array.blit r 0 m.(i) 0 (Array.length r)) x.cof;
                    m) }

(* [of_feature i v] lifts feature [i] having value [v]. *)
let of_feature i v =
  let sums = make_vec () in
  sums.(i) <- v;
  let cof = make_mat () in
  cof.(i).(i) <- v *. v;
  { count = 1; sums; cof }

let add a b =
  let a = promote a and b = promote b in
  { count = a.count + b.count;
    sums = Array.init !dim (fun i -> a.sums.(i) +. b.sums.(i));
    cof = Array.init !dim (fun i -> Array.init !dim (fun j -> a.cof.(i).(j) +. b.cof.(i).(j))) }

let mul a b =
  let a = promote a and b = promote b in
  let ca = float_of_int a.count and cb = float_of_int b.count in
  { count = a.count * b.count;
    sums = Array.init !dim (fun i -> (ca *. b.sums.(i)) +. (cb *. a.sums.(i)));
    cof =
      Array.init !dim (fun i ->
          Array.init !dim (fun j ->
              (ca *. b.cof.(i).(j)) +. (cb *. a.cof.(i).(j))
              +. (a.sums.(i) *. b.sums.(j)) +. (b.sums.(i) *. a.sums.(j)))) }

let neg a =
  let a = promote a in
  { count = -a.count;
    sums = Array.map (fun x -> -.x) a.sums;
    cof = Array.map (Array.map (fun x -> -.x)) a.cof }

let sub a b = add a (neg b)

let equal a b =
  let a = promote a and b = promote b in
  a.count = b.count
  && Array.for_all2 Float.equal a.sums b.sums
  && Array.for_all2 (fun r1 r2 -> Array.for_all2 Float.equal r1 r2) a.cof b.cof

let is_zero a =
  a.count = 0
  && Array.for_all (Float.equal 0.) a.sums
  && Array.for_all (Array.for_all (Float.equal 0.)) a.cof

let pp ppf a =
  Format.fprintf ppf "{n=%d; sums=[%a]}" a.count
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    (Array.to_list a.sums)
