(** Algebraic signatures for payload domains (Sec. 2 of the paper).

    Relations map tuples to values of a commutative ring (or, for some
    analytics, a semiring). The ring structure is what makes inserts and
    deletes uniform: an insert carries a positive payload, a delete a
    negative one, and batches of updates commute. *)

(** A commutative semiring [(t, add, mul, zero, one)]. *)
module type SEMIRING = sig
  type t

  val zero : t
  (** Additive identity; tuples whose payload is [zero] are absent. *)

  val one : t
  (** Multiplicative identity; the payload of a plain inserted tuple. *)

  val add : t -> t -> t
  val mul : t -> t -> t

  val equal : t -> t -> bool

  val is_zero : t -> bool
  (** [is_zero x] is [equal x zero]; relations use it to evict entries. *)

  val pp : Format.formatter -> t -> unit
end

(** A commutative ring: a semiring with additive inverses. Additive
    inverses are what encode deletes (Sec. 2). *)
module type RING = sig
  include SEMIRING

  val neg : t -> t
  val sub : t -> t -> t
end
