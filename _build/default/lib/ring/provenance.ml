(** Provenance polynomials — the free commutative semiring N[X] over
    tuple identifiers (Green, Karvounarakis, Tannen [13], the origin of
    the paper's K-relation data model, Sec. 2).

    A payload is a polynomial Σ c · m where each monomial m is a
    multiset of base-tuple identifiers: the query output's payload
    records *how* each output tuple was derived. Addition is union of
    derivations (alternative uses), multiplication is joint use.

    N[X] is the most general such semiring: any other semiring
    annotation factors through it. It is not a ring (no additive
    inverses), so it supports insert-only maintenance; deletion support
    requires specializing to Z[X], which {!neg} provides by allowing
    negative coefficients. *)

module Monomial = struct
  (* A multiset of identifiers, as a sorted (id, exponent) list. *)
  type t = (string * int) list

  let one : t = []

  let of_id id : t = [ (id, 1) ]

  let rec mul (a : t) (b : t) : t =
    match (a, b) with
    | [], m | m, [] -> m
    | (x, i) :: a', (y, j) :: b' ->
        let c = String.compare x y in
        if c = 0 then (x, i + j) :: mul a' b'
        else if c < 0 then (x, i) :: mul a' ((y, j) :: b')
        else (y, j) :: mul ((x, i) :: a') b'

  let compare = Stdlib.compare

  let pp ppf (m : t) =
    if m = [] then Format.pp_print_string ppf "1"
    else
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "·")
        (fun ppf (x, i) ->
          if i = 1 then Format.pp_print_string ppf x else Format.fprintf ppf "%s^%d" x i)
        ppf m
end

module MMap = Map.Make (struct
  type t = Monomial.t

  let compare = Monomial.compare
end)

type t = int MMap.t
(** coefficient per monomial; absent = 0. *)

let zero : t = MMap.empty
let one : t = MMap.singleton Monomial.one 1

(** The polynomial consisting of a single base-tuple identifier — the
    lifting of an inserted tuple. *)
let of_id id : t = MMap.singleton (Monomial.of_id id) 1

let norm (p : t) : t = MMap.filter (fun _ c -> c <> 0) p

let add (a : t) (b : t) : t =
  norm (MMap.union (fun _ c1 c2 -> Some (c1 + c2)) a b)

let mul (a : t) (b : t) : t =
  MMap.fold
    (fun ma ca acc ->
      MMap.fold
        (fun mb cb acc ->
          let m = Monomial.mul ma mb in
          let prev = Option.value (MMap.find_opt m acc) ~default:0 in
          let c = prev + (ca * cb) in
          if c = 0 then MMap.remove m acc else MMap.add m c acc)
        b acc)
    a MMap.empty

(* Z[X]: negative coefficients encode deletions of derivations. *)
let neg (p : t) : t = MMap.map (fun c -> -c) p
let sub a b = add a (neg b)
let equal (a : t) (b : t) = MMap.equal Int.equal (norm a) (norm b)
let is_zero (p : t) = MMap.is_empty (norm p)

(** Number of distinct derivations (monomials with positive
    coefficient counted with multiplicity). *)
let derivation_count (p : t) = MMap.fold (fun _ c acc -> acc + max 0 c) p 0

(** Evaluate the polynomial under an assignment of semiring values to
    identifiers — the factorization property of N[X]: specializing to
    (Z, +, ×) with every id ↦ its multiplicity recovers counting. *)
let eval ~(zero : 'a) ~(add : 'a -> 'a -> 'a) ~(mul : 'a -> 'a -> 'a) ~(of_int : int -> 'a)
    ~(var : string -> 'a) (p : t) : 'a =
  MMap.fold
    (fun m c acc ->
      let rec pow v n = if n = 0 then of_int 1 else mul v (pow v (n - 1)) in
      let mono =
        List.fold_left (fun acc (x, i) -> mul acc (pow (var x) i)) (of_int 1) m
      in
      add acc (mul (of_int c) mono))
    p zero

let pp ppf (p : t) =
  if is_zero p then Format.pp_print_string ppf "0"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
      (fun ppf (m, c) ->
        if c = 1 then Monomial.pp ppf m else Format.fprintf ppf "%d·%a" c Monomial.pp m)
      ppf (MMap.bindings p)
