(** The ring of floats, for SUM-style aggregates over measure columns.

    Floating-point addition is only approximately associative; we accept
    this for aggregate payloads, as production IVM engines do. Exact
    equality is used for zero-elision, which is sound because payloads
    reach exact [0.] only when an inserted value is subtracted back. *)

type t = float

let zero = 0.
let one = 1.
let add = ( +. )
let mul = ( *. )
let neg x = -.x
let sub = ( -. )
let equal : float -> float -> bool = Float.equal
let is_zero x = x = 0.
let pp ppf x = Format.fprintf ppf "%g" x
