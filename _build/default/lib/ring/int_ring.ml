(** The ring of integers [(Z, +, *, 0, 1)], used to maintain tuple
    multiplicities (Sec. 2). This is the payload domain of DBToaster and
    F-IVM and the default ring of every engine in this library. *)

type t = int

let zero = 0
let one = 1
let add = ( + )
let mul = ( * )
let neg x = -x
let sub = ( - )
let equal : int -> int -> bool = Int.equal
let is_zero x = x = 0
let pp = Format.pp_print_int
