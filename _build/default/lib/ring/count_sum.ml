(** The COUNT+SUM ring: payloads [(c, s)] maintaining a tuple count
    together with a sum of lifted measure values. AVG over a view is the
    derived quantity [s /. c]. This is the degree-1 case of F-IVM's
    aggregate rings; see also {!Cofactor} for the degree-2 case. *)

type t = { count : int; sum : float }

let zero = { count = 0; sum = 0. }
let one = { count = 1; sum = 0. }

(* [of_value v] lifts a measure value: count 1, sum v. *)
let of_value v = { count = 1; sum = v }

let add a b = { count = a.count + b.count; sum = a.sum +. b.sum }

(* Multiplication follows the scalar-extension rule used by F-IVM:
   (c1, s1) * (c2, s2) = (c1*c2, c1*s2 + c2*s1). It makes [of_value]
   multiplicative over independent join branches. *)
let mul a b =
  { count = a.count * b.count;
    sum = (float_of_int a.count *. b.sum) +. (float_of_int b.count *. a.sum) }

let neg a = { count = -a.count; sum = -.a.sum }
let sub a b = add a (neg b)
let equal a b = a.count = b.count && Float.equal a.sum b.sum
let is_zero a = a.count = 0 && a.sum = 0.
let avg a = if a.count = 0 then nan else a.sum /. float_of_int a.count
let pp ppf a = Format.fprintf ppf "{n=%d; sum=%g}" a.count a.sum
