(** Product of two rings, component-wise. Products let one maintain
    several aggregates over the same view tree in a single pass, e.g.
    COUNT and SUM together (the basis of AVG maintenance). *)

module Make (A : Sigs.RING) (B : Sigs.RING) : Sigs.RING with type t = A.t * B.t =
struct
  type t = A.t * B.t

  let zero = (A.zero, B.zero)
  let one = (A.one, B.one)
  let add (a1, b1) (a2, b2) = (A.add a1 a2, B.add b1 b2)
  let mul (a1, b1) (a2, b2) = (A.mul a1 a2, B.mul b1 b2)
  let neg (a, b) = (A.neg a, B.neg b)
  let sub (a1, b1) (a2, b2) = (A.sub a1 a2, B.sub b1 b2)
  let equal (a1, b1) (a2, b2) = A.equal a1 a2 && B.equal b1 b2
  let is_zero (a, b) = A.is_zero a && B.is_zero b
  let pp ppf (a, b) = Format.fprintf ppf "(%a, %a)" A.pp a B.pp b
end
