(** The Boolean semiring [(bool, ||, &&, false, true)].

    It is a semiring, not a ring: disjunction has no inverse, so it cannot
    encode deletes. Boolean queries under insert-delete streams are instead
    maintained over [Int_ring] and tested for positivity, exactly as the
    paper's triangle-detection query [Q_b] is the positivity test of the
    triangle count (Sec. 3.4). *)

type t = bool

let zero = false
let one = true
let add = ( || )
let mul = ( && )
let equal : bool -> bool -> bool = Bool.equal
let is_zero x = not x
let pp = Format.pp_print_bool
