lib/ring/float_ring.ml: Float Format
