lib/ring/cofactor.ml: Array Float Format
