lib/ring/int_ring.ml: Format Int
