lib/ring/tropical.ml: Float Format
