lib/ring/bool_semiring.ml: Bool Format
