lib/ring/provenance.ml: Format Int List Map Option Stdlib String
