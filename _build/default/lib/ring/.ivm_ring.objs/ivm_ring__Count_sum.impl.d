lib/ring/count_sum.ml: Float Format
