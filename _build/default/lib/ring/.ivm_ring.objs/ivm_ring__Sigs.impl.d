lib/ring/sigs.ml: Format
