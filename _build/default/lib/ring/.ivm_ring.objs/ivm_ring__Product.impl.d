lib/ring/product.ml: Format Sigs
