(** The min-plus (tropical) semiring [(R ∪ {∞}, min, +, ∞, 0)].

    Useful for maintaining shortest-path-style analytics over views; it is
    a semiring only (min has no inverse), so it supports insert-only
    maintenance (Sec. 4.6), not deletes. *)

type t = Finite of float | Infinity

let zero = Infinity
let one = Finite 0.

let add a b =
  match (a, b) with
  | Infinity, x | x, Infinity -> x
  | Finite x, Finite y -> Finite (Float.min x y)

let mul a b =
  match (a, b) with
  | Infinity, _ | _, Infinity -> Infinity
  | Finite x, Finite y -> Finite (x +. y)

let equal a b =
  match (a, b) with
  | Infinity, Infinity -> true
  | Finite x, Finite y -> Float.equal x y
  | Infinity, Finite _ | Finite _, Infinity -> false

let is_zero a = equal a Infinity

let pp ppf = function
  | Infinity -> Format.pp_print_string ppf "inf"
  | Finite x -> Format.fprintf ppf "%g" x
