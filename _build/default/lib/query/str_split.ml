(** String helpers for the parser (kept out of {!Parse} for reuse). *)

(** [arrow "A, B -> C"] is [Some ("A, B", "C")]. *)
let arrow (s : string) : (string * string) option =
  let n = String.length s in
  let rec find i =
    if i + 1 >= n then None
    else if s.[i] = '-' && s.[i + 1] = '>' then
      Some (String.trim (String.sub s 0 i), String.trim (String.sub s (i + 2) (n - i - 2)))
    else find (i + 1)
  in
  find 0
