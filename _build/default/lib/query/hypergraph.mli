(** Query hypergraphs: α-acyclicity (GYO reduction), free-connexity and
    connected components. The q-hierarchical queries form a strict
    subclass of the free-connex α-acyclic queries (Sec. 4.1); α-acyclic
    joins admit amortized O(1) insert-only maintenance (Sec. 4.6). *)

module SSet : Set.S with type elt = string

type t = SSet.t list
(** A hypergraph as a list of hyperedges (variable sets). *)

val of_query : Cq.t -> t
val is_acyclic_edges : t -> bool
val is_alpha_acyclic : Cq.t -> bool

val is_free_connex : Cq.t -> bool
(** α-acyclic and still α-acyclic with the head added as an edge. *)

val components : Cq.t -> (int list * SSet.t) list
(** Connected components as (atom indices, variables); used by the CQAP
    fracture (Def. 4.7). *)
