(** Query hypergraphs: α-acyclicity (GYO reduction), free-connexity, and
    connected components. These underpin the classes mentioned in
    Sec. 4.1 ("the q-hierarchical queries form a strict subclass of the
    free-connex α-acyclic queries") and Sec. 4.6 (α-acyclic joins under
    insert-only streams). *)

module SSet = Set.Make (String)

type t = SSet.t list
(** A hypergraph as a list of hyperedges (variable sets). *)

let of_query (q : Cq.t) : t = List.map (fun a -> SSet.of_list a.Cq.vars) q.atoms

(* GYO reduction: repeatedly (1) drop variables occurring in exactly one
   edge, (2) drop edges contained in another edge. The query is α-acyclic
   iff the reduction terminates with at most one empty edge. *)
let is_acyclic_edges (edges : t) =
  let rec step edges =
    let edges = List.filter (fun e -> not (SSet.is_empty e)) edges in
    (* Remove edges contained in some other edge. *)
    let edges =
      let rec dedup kept = function
        | [] -> List.rev kept
        | e :: rest ->
            if List.exists (fun f -> SSet.subset e f) (kept @ rest) then dedup kept rest
            else dedup (e :: kept) rest
      in
      dedup [] edges
    in
    match edges with
    | [] | [ _ ] -> true
    | _ ->
        (* Remove variables local to a single edge. *)
        let count v = List.length (List.filter (fun e -> SSet.mem v e) edges) in
        let edges' = List.map (fun e -> SSet.filter (fun v -> count v > 1) e) edges in
        if List.equal SSet.equal edges edges' then false else step edges'
  in
  step edges

let is_alpha_acyclic q = is_acyclic_edges (of_query q)

(** Free-connex: α-acyclic and still α-acyclic after adding the head
    (the free variables) as an extra hyperedge. Free-connex acyclic CQs
    admit constant-delay enumeration after linear preprocessing in the
    static setting. *)
let is_free_connex q =
  is_alpha_acyclic q && is_acyclic_edges (SSet.of_list q.Cq.free :: of_query q)

(** Connected components of the variable co-occurrence graph; each
    component is returned as the set of atom indices belonging to it
    together with its variables. Used by the CQAP fracture (Def. 4.7). *)
let components (q : Cq.t) : (int list * SSet.t) list =
  let atoms = Array.of_list q.atoms in
  let n = Array.length atoms in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let vi = SSet.of_list atoms.(i).Cq.vars and vj = SSet.of_list atoms.(j).Cq.vars in
      if not (SSet.is_empty (SSet.inter vi vj)) then union i j
    done
  done;
  let comps = Hashtbl.create 8 in
  for i = n - 1 downto 0 do
    let r = find i in
    let prev = Option.value (Hashtbl.find_opt comps r) ~default:[] in
    Hashtbl.replace comps r (i :: prev)
  done;
  Hashtbl.fold
    (fun _ idxs acc ->
      let vars =
        List.fold_left (fun s i -> SSet.union s (SSet.of_list atoms.(i).Cq.vars)) SSet.empty idxs
      in
      (idxs, vars) :: acc)
    comps []
