(** A small concrete syntax for queries and FDs, used by the CLI and
    handy in tests:

    query:  [Q(A, B | C) = R(A, B), S(B, C), T(C)]
            — head variables before [|] are output, after it input;
            a head of [()] or empty is a Boolean query. The [|] part is
            optional (then all head variables are plain free variables).
    fds:    [A -> B; C, D -> E]
    adornment: [R: dynamic; S: static] *)

let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

let trim = String.trim

let split_top (sep : char) (s : string) : string list =
  (* Split on [sep] at parenthesis depth 0. *)
  let parts = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  String.iter
    (fun c ->
      if c = '(' then incr depth;
      if c = ')' then decr depth;
      if c = sep && !depth = 0 then begin
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf
      end
      else Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev_map trim !parts

let ident_ok s =
  String.length s > 0
  && String.for_all (fun c -> c = '_' || c = '\'' || (c >= '0' && c <= '9')
                              || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) s

let parse_var_list s =
  let s = trim s in
  if s = "" || s = "." then Ok []
  else
    let vars = split_top ',' s in
    if List.for_all ident_ok vars then Ok vars
    else fail "bad variable list: %s" s

(* "R(A, B)" -> atom *)
let parse_atom (s : string) : (Cq.atom, string) result =
  match String.index_opt s '(' with
  | None -> fail "expected atom Rel(vars): %s" s
  | Some i ->
      let rel = trim (String.sub s 0 i) in
      if not (ident_ok rel) then fail "bad relation name: %s" rel
      else if String.length s = 0 || s.[String.length s - 1] <> ')' then
        fail "missing ) in atom: %s" s
      else
        let inner = String.sub s (i + 1) (String.length s - i - 2) in
        Result.bind (parse_var_list inner) (fun vars ->
            try Ok (Cq.atom rel vars) with Invalid_argument m -> Error m)

type parsed = { cq : Cq.t; input : string list }

(** Parse a query; returns the CQ and the input variables (empty when no
    access pattern was given). *)
let query (s : string) : (parsed, string) result =
  match split_top '=' s with
  | [ head; body ] -> (
      let atoms_r =
        List.fold_right
          (fun a acc ->
            Result.bind acc (fun atoms -> Result.map (fun x -> x :: atoms) (parse_atom a)))
          (split_top ',' body) (Ok [])
      in
      match atoms_r with
      | Error e -> Error e
      | Ok atoms -> (
          match String.index_opt head '(' with
          | None -> fail "expected head Q(vars): %s" head
          | Some i ->
              let name = trim (String.sub head 0 i) in
              if String.length head = 0 || head.[String.length head - 1] <> ')' then
                fail "missing ) in head: %s" head
              else
                let inner = String.sub head (i + 1) (String.length head - i - 2) in
                let out_part, in_part =
                  match String.index_opt inner '|' with
                  | None -> (inner, "")
                  | Some j ->
                      ( String.sub inner 0 j,
                        String.sub inner (j + 1) (String.length inner - j - 1) )
                in
                Result.bind (parse_var_list out_part) (fun out ->
                    Result.bind (parse_var_list in_part) (fun input ->
                        try Ok { cq = Cq.make ~name ~free:(out @ input) atoms; input }
                        with Invalid_argument m -> Error m))))
  | _ -> fail "expected: Head(vars) = Atom(vars), ..."

(** Parse a semicolon-separated FD list: "A -> B; C, D -> E". *)
let fds (s : string) : (Fd.t list, string) result =
  let s = trim s in
  if s = "" then Ok []
  else
    List.fold_right
      (fun part acc ->
        Result.bind acc (fun fds ->
            match Str_split.arrow part with
            | Some (lhs, rhs) ->
                Result.bind (parse_var_list lhs) (fun l ->
                    Result.bind (parse_var_list rhs) (fun r -> Ok (Fd.make l r :: fds)))
            | None -> fail "expected lhs -> rhs: %s" part))
      (split_top ';' s) (Ok [])

(** Parse an adornment list: "R: static; S: dynamic". *)
let adornment (s : string) : (Static_dynamic.adornment, string) result =
  let s = trim s in
  if s = "" then Ok []
  else
    List.fold_right
      (fun part acc ->
        Result.bind acc (fun ad ->
            match split_top ':' part with
            | [ rel; kind ] -> (
                match String.lowercase_ascii (trim kind) with
                | "static" | "s" -> Ok ((trim rel, Static_dynamic.Static) :: ad)
                | "dynamic" | "d" -> Ok ((trim rel, Static_dynamic.Dynamic) :: ad)
                | k -> fail "unknown kind %s (want static|dynamic)" k)
            | _ -> fail "expected Rel: static|dynamic in %s" part))
      (split_top ';' s) (Ok [])
