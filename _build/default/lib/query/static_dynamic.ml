(** Queries over static and dynamic relations (Sec. 4.5).

    Relations updated rarely can be declared static for a maintenance
    window; then non-q-hierarchical queries may still enjoy constant
    update time and constant enumeration delay. Following the paper's
    intuition, a variable order witnesses tractability in the mixed
    setting when (i) updates to every dynamic relation propagate to the
    root with constant-time steps — at every node on the propagation
    path, the keys of sibling views and the schemas of sibling atoms are
    already fixed by the delta — and (ii) the free variables form a
    connex top fragment of the order.

    The full syntactic characterization is in the cited technical report
    [17]; our checker searches all variable orders for queries with at
    most [max_search_vars] variables and is exact on them (every paper
    example has ≤ 5 variables). *)

module SSet = Set.Make (String)

type kind = Static | Dynamic
type adornment = (string * kind) list

let kind_of (ad : adornment) rel =
  match List.assoc_opt rel ad with Some k -> k | None -> Dynamic

let max_search_vars = 7

(* Constant-propagation check for one dynamic atom anchored at [anchor]:
   walk the path anchor -> root; at each node the other anchored atoms
   and the sibling subtrees must be retrievable by constant-time lookups
   on the currently fixed variables. *)
let constant_path ~(q : Cq.t) ~(anchors : string array) ~(deps : (string * string list) list)
    ~(forest : Variable_order.forest) ~(atom_idx : int) =
  let atoms = Array.of_list q.Cq.atoms in
  let pathmap = Variable_order.paths forest in
  let anchor_var = anchors.(atom_idx) in
  let path = List.assoc anchor_var pathmap @ [ anchor_var ] in
  (* children map: var -> children vars *)
  let children = Hashtbl.create 16 in
  let rec collect (t : Variable_order.t) =
    Hashtbl.replace children t.var (List.map (fun c -> c.Variable_order.var) t.children);
    List.iter collect t.children
  in
  List.iter collect forest;
  let dep v = SSet.of_list (List.assoc v deps) in
  let rec walk fixed = function
    | [] -> true
    | node :: above ->
        (* Other atoms anchored at [node]. *)
        let other_atoms_ok =
          Array.to_list atoms
          |> List.mapi (fun i a -> (i, a))
          |> List.for_all (fun (i, (a : Cq.atom)) ->
                 i = atom_idx
                 || (not (String.equal anchors.(i) node))
                 || SSet.subset (SSet.of_list a.Cq.vars) fixed)
        in
        (* Subtrees hanging below [node]: their aggregate views are keyed
           by dep. The child the delta came through passes trivially,
           since at that point [fixed] is exactly its dep. *)
        let kids = Option.value (Hashtbl.find_opt children node) ~default:[] in
        let kids_ok = List.for_all (fun c -> SSet.subset (dep c) fixed) kids in
        other_atoms_ok && kids_ok
        &&
        (* After marginalizing [node], the delta is keyed by dep(node). *)
        walk (dep node) above
  in
  (* Walk leaf-to-root: reverse the root-first path. The initial fixed
     set is the schema of the updated atom. *)
  let fixed0 = SSet.of_list atoms.(atom_idx).Cq.vars in
  walk fixed0 (List.rev path)

let tractable_with_order (q : Cq.t) (ad : adornment) (forest : Variable_order.forest) =
  match Variable_order.anchor q forest with
  | Error _ -> false
  | Ok anchors ->
      let deps = Variable_order.keys q forest in
      let dynamic_atoms =
        List.mapi (fun i (a : Cq.atom) -> (i, a)) q.Cq.atoms
        |> List.filter (fun (_, (a : Cq.atom)) -> kind_of ad a.Cq.rel = Dynamic)
      in
      Variable_order.free_top q forest
      && List.for_all
           (fun (i, _) -> constant_path ~q ~anchors ~deps ~forest ~atom_idx:i)
           dynamic_atoms

(* Enumerate all rooted forests over [vs] via acyclic parent functions.
   Feasible for |vs| <= 7 (8^7 = 2M candidate functions). *)
let all_forests (vs : string list) : Variable_order.forest list =
  let n = List.length vs in
  let vars = Array.of_list vs in
  let results = ref [] in
  let parent = Array.make n (-1) in
  (* -1 encodes "root". *)
  let acyclic () =
    let rec depth i seen =
      if i = -1 then true
      else if List.mem i seen then false
      else depth parent.(i) (i :: seen)
    in
    let rec all i = i >= n || (depth i [] && all (i + 1)) in
    all 0
  in
  let build () =
    let rec tree i =
      let children =
        List.filter_map
          (fun j -> if parent.(j) = i then Some (tree j) else None)
          (List.init n (fun j -> j))
      in
      { Variable_order.var = vars.(i); children }
    in
    List.filter_map (fun i -> if parent.(i) = -1 then Some (tree i) else None)
      (List.init n (fun i -> i))
  in
  let rec assign i =
    if i = n then begin
      if acyclic () then results := build () :: !results
    end
    else
      for p = -1 to n - 1 do
        if p <> i then begin
          parent.(i) <- p;
          assign (i + 1)
        end
      done
  in
  assign 0;
  !results

(** [is_tractable ?candidates q ad] searches for a variable order
    witnessing constant-update, constant-delay maintenance in the mixed
    static/dynamic setting. Exact (exhaustive over all orders) for
    queries with at most {!max_search_vars} variables; for larger queries
    it tries the canonical order (if hierarchical) and any
    user-[candidates]. *)
let is_tractable ?(candidates : Variable_order.forest list = []) (q : Cq.t) (ad : adornment) =
  let vs = Cq.vars q in
  let pool =
    candidates
    @ (match Variable_order.canonical q with Some f -> [ f ] | None -> [])
    @ (if List.length vs <= max_search_vars then all_forests vs else [])
  in
  List.exists (fun f -> Variable_order.validate q f = Ok () && tractable_with_order q ad f) pool

(** In the all-dynamic setting the witness search degenerates to the
    q-hierarchical dichotomy; this cross-check is used in tests. *)
let all_dynamic (q : Cq.t) : adornment =
  List.map (fun r -> (r, Dynamic)) (Cq.relation_names q)
