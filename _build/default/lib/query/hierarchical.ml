(** The hierarchical and q-hierarchical query classes (Def. 4.2).

    A CQ is hierarchical if for any two variables X and Y, their atom
    sets are comparable by inclusion or disjoint. A hierarchical query is
    q-hierarchical if whenever atoms(X) ⊃ atoms(Y) and Y is free, X is
    free too (equivalently: hierarchical and free-dominant, footnote 4).

    Theorem 4.1 [4]: q-hierarchical self-join-free CQs are exactly those
    maintainable with O(N) preprocessing, O(1) single-tuple updates and
    O(1) enumeration delay; all others are OuMv-hard. *)

module ISet = Set.Make (Int)

let atom_sets q =
  List.map (fun v -> (v, ISet.of_list (Cq.atoms_of q v))) (Cq.vars q)

(* [dominates q x y]: atoms(y) ⊂ atoms(x), strictly ("x dominates y"). *)
let dominates q x y =
  let ax = ISet.of_list (Cq.atoms_of q x) and ay = ISet.of_list (Cq.atoms_of q y) in
  ISet.subset ay ax && not (ISet.equal ax ay)

let is_hierarchical q =
  let sets = atom_sets q in
  List.for_all
    (fun (_, ax) ->
      List.for_all
        (fun (_, ay) ->
          ISet.subset ax ay || ISet.subset ay ax || ISet.is_empty (ISet.inter ax ay))
        sets)
    sets

(* Free-dominance: if Y is free and atoms(X) ⊃ atoms(Y) then X is free. *)
let is_free_dominant q =
  let sets = atom_sets q in
  List.for_all
    (fun (y, ay) ->
      (not (Cq.is_free q y))
      || List.for_all
           (fun (x, ax) ->
             if ISet.subset ay ax && not (ISet.equal ax ay) then Cq.is_free q x else true)
           sets)
    sets

let is_q_hierarchical q = is_hierarchical q && is_free_dominant q

(** Hierarchical *given the head*: the free variables are treated as
    constants (removed from every atom) and the condition is checked on
    the bound variables only. This is the convention of the TPC-H study
    cited in Sec. 4.4 [35], where a non-Boolean query is hierarchical iff
    each Boolean query obtained by fixing the head variables is. For
    Boolean queries it coincides with {!is_hierarchical}. *)
let is_hierarchical_given_free q =
  let sets =
    List.filter_map
      (fun v ->
        if Cq.is_free q v then None else Some (ISet.of_list (Cq.atoms_of q v)))
      (Cq.vars q)
  in
  List.for_all
    (fun ax ->
      List.for_all
        (fun ay ->
          ISet.subset ax ay || ISet.subset ay ax || ISet.is_empty (ISet.inter ax ay))
        sets)
    sets

(** A witness for non-hierarchicality: a pair of variables with properly
    overlapping atom sets, useful in diagnostics. *)
let non_hierarchical_witness q =
  let sets = atom_sets q in
  let rec find = function
    | [] -> None
    | (x, ax) :: rest -> (
        match
          List.find_opt
            (fun (_, ay) ->
              (not (ISet.subset ax ay))
              && (not (ISet.subset ay ax))
              && not (ISet.is_empty (ISet.inter ax ay)))
            rest
        with
        | Some (y, _) -> Some (x, y)
        | None -> find rest)
  in
  find sets
