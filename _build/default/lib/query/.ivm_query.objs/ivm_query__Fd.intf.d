lib/query/fd.mli: Cq Format Set
