lib/query/hypergraph.ml: Array Cq Hashtbl List Option Set String
