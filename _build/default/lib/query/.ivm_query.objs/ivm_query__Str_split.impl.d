lib/query/str_split.ml: String
