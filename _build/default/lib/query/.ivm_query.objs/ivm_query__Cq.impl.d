lib/query/cq.ml: Format Hashtbl Ivm_data List Printf String
