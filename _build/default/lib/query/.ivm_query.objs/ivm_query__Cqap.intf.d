lib/query/cqap.mli: Cq Format
