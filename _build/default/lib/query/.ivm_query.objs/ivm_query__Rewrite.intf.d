lib/query/rewrite.mli: Cq
