lib/query/fd.ml: Cq Format Hierarchical List Set String
