lib/query/parse.mli: Cq Fd Static_dynamic
