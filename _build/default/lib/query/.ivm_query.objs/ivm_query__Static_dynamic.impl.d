lib/query/static_dynamic.ml: Array Cq Hashtbl List Option Set String Variable_order
