lib/query/variable_order.ml: Array Cq Format Hierarchical Int List Printf Result Set String
