lib/query/rewrite.ml: Cq Hierarchical List Set String
