lib/query/hierarchical.mli: Cq Set
