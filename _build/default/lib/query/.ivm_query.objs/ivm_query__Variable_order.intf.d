lib/query/variable_order.mli: Cq Format
