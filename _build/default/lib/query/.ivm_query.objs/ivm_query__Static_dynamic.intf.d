lib/query/static_dynamic.mli: Cq Variable_order
