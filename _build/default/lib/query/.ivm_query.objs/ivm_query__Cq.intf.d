lib/query/cq.mli: Format Ivm_data
