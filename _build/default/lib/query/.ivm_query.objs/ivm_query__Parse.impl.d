lib/query/parse.ml: Buffer Cq Fd List Printf Result Static_dynamic Str_split String
