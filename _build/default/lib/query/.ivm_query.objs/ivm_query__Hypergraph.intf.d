lib/query/hypergraph.mli: Cq Set
