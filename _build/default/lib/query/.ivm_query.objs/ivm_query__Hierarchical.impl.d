lib/query/hierarchical.ml: Cq Int List Set
