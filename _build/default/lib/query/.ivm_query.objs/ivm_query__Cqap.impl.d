lib/query/cqap.ml: Array Cq Format Hashtbl Hierarchical Hypergraph List Printf Set String
