(** A small concrete syntax for queries, FDs and adornments, used by the
    CLI:

    - query: ["Q(A, B | C) = R(A, B), S(B, C), T(C)"] — head variables
      after [|] are input variables; an empty head is a Boolean query;
    - fds: ["A -> B; C, D -> E"];
    - adornment: ["R: dynamic; S: static"]. *)

type parsed = { cq : Cq.t; input : string list }

val query : string -> (parsed, string) result
val fds : string -> (Fd.t list, string) result
val adornment : string -> (Static_dynamic.adornment, string) result
