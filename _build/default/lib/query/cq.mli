(** Conjunctive queries with group-by aggregates (Sec. 2):

    [Q(X_1,...,X_f) = Σ_{X_{f+1}} ... Σ_{X_m}  Π_i R_i(S_i)]

    [free] lists the group-by (free) variables; all other variables are
    bound and marginalized. A Boolean query has no free variables. *)

type atom = { rel : string; vars : string list }
type t = { name : string; free : string list; atoms : atom list }

val atom : string -> string list -> atom
(** @raise Invalid_argument on repeated variables within the atom. *)

val make : name:string -> free:string list -> atom list -> t
(** @raise Invalid_argument when a free variable occurs in no atom or is
    repeated. *)

val vars : t -> string list
(** All variables, in first-occurrence order. *)

val bound_vars : t -> string list
val is_free : t -> string -> bool
val is_boolean : t -> bool
val arity : t -> int

val atoms_of : t -> string -> int list
(** The paper's [atoms(v)]: the atoms containing [v], as positions in
    [atoms]. *)

val self_join_free : t -> bool
val relation_names : t -> string list
val atom_schema : atom -> Ivm_data.Schema.t

val find_atom : t -> string -> atom
(** The atom for a relation name (self-join-free queries).
    @raise Invalid_argument when absent. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
