(** Conjunctive queries with free access patterns — CQAPs (Sec. 4.3).

    The free variables are split into input and output variables: the
    query returns tuples over the output variables for a given tuple of
    values over the input variables. [Q(O|I)] in the paper's notation.

    Tractability (Def. 4.7 / Thm. 4.8): a CQAP admits O(|D|)
    preprocessing, O(1) updates and O(1) enumeration delay iff its
    fracture is hierarchical, free-dominant and input-dominant. *)

module SSet = Set.Make (String)

type t = { cq : Cq.t; input : string list }

let make ~input cq =
  List.iter
    (fun v ->
      if not (List.mem v cq.Cq.free) then
        invalid_arg ("Cqap.make: input variable " ^ v ^ " is not free"))
    input;
  { cq; input }

let output q = List.filter (fun v -> not (List.mem v q.input)) q.cq.Cq.free
let is_input q v = List.mem v q.input

(** The fracture (Def. 4.7): replace each occurrence of an input variable
    by a fresh variable, split into connected components, and within each
    component merge the fresh variables that originate from the same
    input variable back into one fresh input variable. The fracture is a
    single CQAP whose components share no variables. *)
let fracture (q : t) : t =
  let fresh v i = Printf.sprintf "%s#%d" v i in
  (* Step 1: per-occurrence renaming of input variables. *)
  let renamed_atoms =
    List.mapi
      (fun i a ->
        { Cq.rel = a.Cq.rel;
          vars = List.map (fun v -> if is_input q v then fresh v i else v) a.Cq.vars })
      q.cq.Cq.atoms
  in
  let renamed = Cq.make ~name:(q.cq.Cq.name ^ "_frac") ~free:[] renamed_atoms in
  (* Step 2: connected components of the renamed query. *)
  let comps = Hypergraph.components renamed in
  (* Step 3: within component [c], merge fresh copies of input var [v]
     into the canonical name [v@c]. *)
  let comp_of_atom = Hashtbl.create 16 in
  List.iteri (fun c (idxs, _) -> List.iter (fun i -> Hashtbl.replace comp_of_atom i c) idxs) comps;
  let merged v c = Printf.sprintf "%s@%d" v c in
  let original_atoms = Array.of_list q.cq.Cq.atoms in
  let inputs' = ref SSet.empty in
  let final_atoms =
    List.mapi
      (fun i (a : Cq.atom) ->
        let c = Hashtbl.find comp_of_atom i in
        { Cq.rel = a.Cq.rel;
          vars =
            List.map
              (fun v ->
                if is_input q v then begin
                  let v' = merged v c in
                  inputs' := SSet.add v' !inputs';
                  v'
                end
                else v)
              original_atoms.(i).Cq.vars })
      renamed_atoms
  in
  let inputs' = SSet.elements !inputs' in
  let free' = output q @ inputs' in
  { cq = Cq.make ~name:(q.cq.Cq.name ^ "_fracture") ~free:free' final_atoms; input = inputs' }

(* Input-dominance: if A is input and B dominates A, then B is input. *)
let is_input_dominant (q : t) =
  List.for_all
    (fun a ->
      List.for_all
        (fun b -> if Hierarchical.dominates q.cq b a then is_input q b else true)
        (Cq.vars q.cq))
    q.input

let is_tractable (q : t) =
  let f = fracture q in
  Hierarchical.is_hierarchical f.cq
  && Hierarchical.is_free_dominant f.cq
  && is_input_dominant f

let pp ppf q =
  Format.fprintf ppf "%s(%s|%s) = %a" q.cq.Cq.name
    (String.concat ", " (output q))
    (String.concat ", " q.input)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " * ")
       (fun ppf a -> Format.fprintf ppf "%s(%s)" a.Cq.rel (String.concat ", " a.Cq.vars)))
    q.cq.Cq.atoms
