(** Conjunctive queries with group-by aggregates (Sec. 2):

    [Q(X_1,...,X_f) = Σ_{X_{f+1}} ... Σ_{X_m}  Π_i R_i(S_i)]

    [free] lists the group-by (free) variables; all other variables are
    bound and marginalized. A Boolean query has no free variables. *)

type atom = { rel : string; vars : string list }

type t = { name : string; free : string list; atoms : atom list }

let atom rel vars =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun v ->
      if Hashtbl.mem seen v then
        invalid_arg (Printf.sprintf "Cq.atom: repeated variable %s in %s" v rel);
      Hashtbl.add seen v ())
    vars;
  { rel; vars }

let make ~name ~free atoms =
  let all = List.concat_map (fun a -> a.vars) atoms in
  List.iter
    (fun v ->
      if not (List.mem v all) then
        invalid_arg (Printf.sprintf "Cq.make: free variable %s not in any atom" v))
    free;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun v ->
      if Hashtbl.mem seen v then invalid_arg ("Cq.make: duplicate free variable " ^ v);
      Hashtbl.add seen v ())
    free;
  { name; free; atoms }

(* All variables, in first-occurrence order. *)
let vars q =
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun a ->
      List.filter
        (fun v ->
          if Hashtbl.mem seen v then false
          else begin
            Hashtbl.add seen v ();
            true
          end)
        a.vars)
    q.atoms

let bound_vars q = List.filter (fun v -> not (List.mem v q.free)) (vars q)
let is_free q v = List.mem v q.free
let is_boolean q = q.free = []
let arity q = List.length q.free

(** [atoms_of q v] is the paper's [atoms(v)]: the set of atoms containing
    [v], identified by their position in [q.atoms]. *)
let atoms_of q v =
  List.mapi (fun i a -> (i, a)) q.atoms
  |> List.filter_map (fun (i, a) -> if List.mem v a.vars then Some i else None)

let self_join_free q =
  let names = List.map (fun a -> a.rel) q.atoms in
  List.length names = List.length (List.sort_uniq String.compare names)

let relation_names q = List.sort_uniq String.compare (List.map (fun a -> a.rel) q.atoms)

let atom_schema a = Ivm_data.Schema.of_list a.vars

(* Atoms grouped per relation name; [find_atom] assumes self-join-free
   queries, which is what every engine in this library supports. *)
let find_atom q rel =
  match List.find_opt (fun a -> String.equal a.rel rel) q.atoms with
  | Some a -> a
  | None -> invalid_arg ("Cq.find_atom: no atom for relation " ^ rel)

let pp ppf q =
  let pp_atom ppf a =
    Format.fprintf ppf "%s(%s)" a.rel (String.concat ", " a.vars)
  in
  Format.fprintf ppf "%s(%s) = %a" q.name (String.concat ", " q.free)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " * ")
       pp_atom)
    q.atoms

let to_string q = Format.asprintf "%a" pp q
