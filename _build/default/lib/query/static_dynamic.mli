(** Queries over static and dynamic relations (Sec. 4.5): a variable
    order witnesses tractability in the mixed setting when updates to
    every dynamic relation propagate to the root with constant-time
    steps and the free variables form a connex top fragment. The checker
    is exhaustive (hence exact on its search space) for queries with at
    most {!max_search_vars} variables. *)

type kind = Static | Dynamic
type adornment = (string * kind) list

val kind_of : adornment -> string -> kind
(** Defaults to [Dynamic] for unlisted relations. *)

val max_search_vars : int

val constant_path :
  q:Cq.t ->
  anchors:string array ->
  deps:(string * string list) list ->
  forest:Variable_order.forest ->
  atom_idx:int ->
  bool
(** Does a single-tuple update to the given atom propagate to the root
    with constant-time steps under this order? (Also used by the view
    tree's fast-path analysis.) *)

val tractable_with_order : Cq.t -> adornment -> Variable_order.forest -> bool

val all_forests : string list -> Variable_order.forest list
(** Every rooted forest over the given variables (for ≤ 7 of them). *)

val is_tractable : ?candidates:Variable_order.forest list -> Cq.t -> adornment -> bool

val all_dynamic : Cq.t -> adornment
(** With this adornment the class collapses to q-hierarchical (tested). *)
