(** Functional dependencies and the Σ-reduct (Sec. 4.4, Def. 4.9).

    A non-hierarchical query can behave hierarchically on databases that
    satisfy FDs: extending every atom schema (and the head) with its
    closure under Σ yields the Σ-reduct; if the reduct is q-hierarchical,
    the original query admits the best possible maintenance
    (Thm. 4.11). *)

module SSet = Set.Make (String)

type t = { lhs : string list; rhs : string list }

let make lhs rhs = { lhs; rhs }

let pp ppf fd =
  Format.fprintf ppf "%s -> %s" (String.concat "," fd.lhs) (String.concat "," fd.rhs)

(** [closure fds vs] is [C_Σ(vs)]: the fixpoint extension of [vs] under
    the FDs, e.g. closure {A→C; BC→D} {A,B} = {A,B,C,D}. *)
let closure (fds : t list) (vs : string list) : SSet.t =
  let rec go set =
    let set' =
      List.fold_left
        (fun acc fd ->
          if List.for_all (fun v -> SSet.mem v acc) fd.lhs then
            SSet.union acc (SSet.of_list fd.rhs)
          else acc)
        set fds
    in
    if SSet.equal set set' then set else go set'
  in
  go (SSet.of_list vs)

(* Extend an ordered variable list with its closure, keeping the original
   order and appending new variables in sorted order (determinism). *)
let extend_ordered fds vs =
  let cl = closure fds vs in
  let added = SSet.elements (SSet.diff cl (SSet.of_list vs)) in
  vs @ added

(** [sigma_reduct fds q] is the Σ-reduct of [q] (Def. 4.9): each atom
    schema and the free-variable set are extended to their closures. *)
let sigma_reduct (fds : t list) (q : Cq.t) : Cq.t =
  let atoms =
    List.map (fun a -> { Cq.rel = a.Cq.rel; vars = extend_ordered fds a.Cq.vars }) q.Cq.atoms
  in
  let free = extend_ordered fds q.Cq.free in
  (* Re-validate via the smart constructor. *)
  Cq.make ~name:(q.Cq.name ^ "_reduct") ~free atoms

(** Does [q] become q-hierarchical under the FDs (Thm. 4.11)? *)
let q_hierarchical_under (fds : t list) (q : Cq.t) =
  Hierarchical.is_q_hierarchical (sigma_reduct fds q)

let hierarchical_under (fds : t list) (q : Cq.t) =
  Hierarchical.is_hierarchical (sigma_reduct fds q)
