(** Cascading q-hierarchical queries (Sec. 4.2, Ex. 4.5).

    When maintaining a set of queries, a non-q-hierarchical query Q1 can
    piggyback on a q-hierarchical Q2 if there is a trivial (identity)
    homomorphism from Q2 into Q1: Q1 is rewritten to join the view of Q2
    with its remaining atoms. If the rewriting is q-hierarchical, the set
    {Q1, Q2} is maintainable with amortized O(1) updates and O(1) delay,
    provided Q2's output is enumerated before Q1's. *)

module SSet = Set.Make (String)

(* [covers q2 q1]: every atom of [q2] appears verbatim in [q1] (same
   relation name and variable list) — the identity homomorphism. *)
let covers (q2 : Cq.t) (q1 : Cq.t) =
  List.for_all
    (fun (a : Cq.atom) ->
      List.exists
        (fun (b : Cq.atom) -> String.equal a.rel b.rel && List.equal String.equal a.vars b.vars)
        q1.Cq.atoms)
    q2.Cq.atoms

(** [rewrite ~q1 ~q2] replaces the atoms of [q2] inside [q1] by a single
    view atom over [q2]'s free variables. Returns [None] when the
    rewriting would not be equivalent to [q1]: that requires (i) the
    identity homomorphism to exist and (ii) every variable of the covered
    atoms that is free in [q1] or shared with the remaining atoms to be
    free in [q2]. *)
let rewrite ~(q1 : Cq.t) ~(q2 : Cq.t) : Cq.t option =
  if not (covers q2 q1) then None
  else begin
    let covered (b : Cq.atom) =
      List.exists
        (fun (a : Cq.atom) -> String.equal a.rel b.rel && List.equal String.equal a.vars b.vars)
        q2.Cq.atoms
    in
    let rest = List.filter (fun b -> not (covered b)) q1.Cq.atoms in
    let q2_vars = SSet.of_list (Cq.vars q2) in
    let rest_vars = SSet.of_list (List.concat_map (fun a -> a.Cq.vars) rest) in
    let q2_free = SSet.of_list q2.Cq.free in
    let needed =
      SSet.union
        (SSet.inter q2_vars rest_vars)
        (SSet.inter q2_vars (SSet.of_list q1.Cq.free))
    in
    if not (SSet.subset needed q2_free) then None
    else
      let view_atom = { Cq.rel = q2.Cq.name; vars = q2.Cq.free } in
      Some (Cq.make ~name:(q1.Cq.name ^ "'") ~free:q1.Cq.free (view_atom :: rest))
  end

(** Can {q1, q2} be maintained with the cascading technique: q2 is
    q-hierarchical and the rewriting of q1 using q2 is q-hierarchical? *)
let cascadable ~(q1 : Cq.t) ~(q2 : Cq.t) =
  Hierarchical.is_q_hierarchical q2
  &&
  match rewrite ~q1 ~q2 with
  | None -> false
  | Some q1' -> Hierarchical.is_q_hierarchical q1'
