(** Functional dependencies and the Σ-reduct (Sec. 4.4): if the reduct
    of a query is q-hierarchical, the query admits the best possible
    maintenance over FD-satisfying databases (Thm. 4.11). *)

module SSet : Set.S with type elt = string

type t = { lhs : string list; rhs : string list }

val make : string list -> string list -> t
val pp : Format.formatter -> t -> unit

val closure : t list -> string list -> SSet.t
(** [closure fds vs] is [C_Σ(vs)], e.g.
    closure {A→C; BC→D} {A,B} = {A,B,C,D} (Sec. 4.4). *)

val extend_ordered : t list -> string list -> string list
(** Extend an ordered variable list by its closure, deterministically. *)

val sigma_reduct : t list -> Cq.t -> Cq.t
(** The Σ-reduct (Def. 4.9): every atom schema and the head extended to
    their closures. *)

val q_hierarchical_under : t list -> Cq.t -> bool
val hierarchical_under : t list -> Cq.t -> bool
