(** Cascading q-hierarchical queries (Sec. 4.2, Ex. 4.5): rewriting a
    non-q-hierarchical Q1 over the view of a q-hierarchical Q2 so that
    the set {Q1, Q2} is maintainable with amortized O(1) updates and
    O(1) delay, provided Q2 is enumerated before Q1. *)

val covers : Cq.t -> Cq.t -> bool
(** [covers q2 q1]: every atom of [q2] occurs verbatim in [q1] — the
    identity homomorphism of Ex. 4.5. *)

val rewrite : q1:Cq.t -> q2:Cq.t -> Cq.t option
(** Replace [q2]'s atoms inside [q1] by one view atom over [q2]'s head;
    [None] when the rewriting would not be equivalent (a bound variable
    of [q2] is needed outside it). *)

val cascadable : q1:Cq.t -> q2:Cq.t -> bool
(** [q2] is q-hierarchical and the rewriting of [q1] using it is too. *)
