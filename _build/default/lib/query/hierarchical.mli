(** The hierarchical and q-hierarchical query classes (Def. 4.2) and the
    dichotomy they induce (Thm. 4.1): q-hierarchical self-join-free CQs
    are exactly those maintainable with O(N) preprocessing, O(1)
    single-tuple updates and O(1) enumeration delay; all others are
    OuMv-hard. *)

module ISet : Set.S with type elt = int

val atom_sets : Cq.t -> (string * ISet.t) list
(** Each variable with its [atoms(v)] set. *)

val dominates : Cq.t -> string -> string -> bool
(** [dominates q x y]: atoms(y) ⊂ atoms(x), strictly. *)

val is_hierarchical : Cq.t -> bool
(** For any two variables, the atom sets are comparable or disjoint. *)

val is_free_dominant : Cq.t -> bool
(** If Y is free and X dominates Y then X is free (footnote 4:
    q-hierarchical = hierarchical + free-dominant). *)

val is_q_hierarchical : Cq.t -> bool

val non_hierarchical_witness : Cq.t -> (string * string) option
(** A pair of variables with properly overlapping atom sets, for
    diagnostics. *)

val is_hierarchical_given_free : Cq.t -> bool
(** Hierarchical with the free variables treated as constants — the
    convention of the TPC-H study cited in Sec. 4.4 [35]. Coincides with
    {!is_hierarchical} on Boolean queries. *)
