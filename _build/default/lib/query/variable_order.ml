(** Variable orders: the skeletons of view trees (Sec. 4.1, Fig. 3).

    A variable order for a query is a forest over its variables such that
    the variables of every atom lie on a single root-to-node path (the
    atom is "anchored" at its lowest variable). Hierarchical queries have
    a canonical such forest: group variables into equivalence classes by
    equal atom sets; class X is a child of the smallest class strictly
    containing its atom set. Free variables are ordered before bound ones
    inside a class, so that for q-hierarchical queries the free variables
    form a connex top fragment — the condition for constant-delay
    enumeration. *)

module ISet = Set.Make (Int)
module SSet = Set.Make (String)

type t = { var : string; children : t list }
type forest = t list

let rec vars_of_tree t = t.var :: List.concat_map vars_of_tree t.children
let vars_of (f : forest) = List.concat_map vars_of_tree f

(* A chain a > b > c > ... as a degenerate tree. *)
let rec chain = function
  | [] -> invalid_arg "Variable_order.chain: empty"
  | [ v ] -> { var = v; children = [] }
  | v :: rest -> { var = v; children = [ chain rest ] }

(** [canonical q] is the canonical forest of a hierarchical query, [None]
    if [q] is not hierarchical. *)
let canonical (q : Cq.t) : forest option =
  if not (Hierarchical.is_hierarchical q) then None
  else begin
    let vs = Cq.vars q in
    let aset v = ISet.of_list (Cq.atoms_of q v) in
    (* Equivalence classes by equal atom sets. *)
    let classes : (ISet.t * string list) list =
      List.fold_left
        (fun acc v ->
          let s = aset v in
          let rec insert = function
            | [] -> [ (s, [ v ]) ]
            | (s', vs') :: rest ->
                if ISet.equal s s' then (s', vs' @ [ v ]) :: rest
                else (s', vs') :: insert rest
          in
          insert acc)
        [] vs
    in
    (* Order class members: free variables first (free-connex top). *)
    let order_members vs =
      let free, bound = List.partition (Cq.is_free q) vs in
      free @ bound
    in
    (* Build the forest: class C is a child of the smallest class whose
       atom set strictly contains C's. *)
    let strictly_contains (s1, _) (s2, _) = ISet.subset s2 s1 && not (ISet.equal s1 s2) in
    let parent_of c =
      let candidates = List.filter (fun c' -> strictly_contains c' c) classes in
      match candidates with
      | [] -> None
      | first :: rest ->
          Some
            (List.fold_left
               (fun (best_s, best_v) (s, v) ->
                 if ISet.subset s best_s then (s, v) else (best_s, best_v))
               first rest)
    in
    let rec build ((_, members) as cls) : t =
      let children_classes = List.filter (fun c -> parent_of c = Some cls) classes in
      let subtrees = List.map build children_classes in
      (* A class with several variables becomes a chain ending in the
         children of the class. *)
      let rec attach = function
        | [] -> assert false
        | [ v ] -> { var = v; children = subtrees }
        | v :: rest -> { var = v; children = [ attach rest ] }
      in
      attach (order_members members)
    in
    let roots = List.filter (fun c -> parent_of c = None) classes in
    Some (List.map build roots)
  end

(** Ancestor paths: [paths f] maps each variable to the list of its
    ancestors (root first, excluding itself). *)
let paths (f : forest) : (string * string list) list =
  let rec go anc t =
    (t.var, List.rev anc) :: List.concat_map (go (t.var :: anc)) t.children
  in
  List.concat_map (go []) f

(** [anchor q f] assigns every atom of [q] to its lowest variable in the
    forest and checks validity: each atom's variables must lie on the
    root path of its anchor. Returns the anchor variable for each atom
    index, or an error describing the violated atom. *)
let anchor (q : Cq.t) (f : forest) : (string array, string) result =
  let pathmap = paths f in
  let path_of v =
    match List.assoc_opt v pathmap with
    | Some p -> p @ [ v ]
    | None -> invalid_arg ("Variable_order.anchor: variable not in order: " ^ v)
  in
  let atoms = Array.of_list q.Cq.atoms in
  let anchors = Array.make (Array.length atoms) "" in
  let ok = ref (Ok ()) in
  Array.iteri
    (fun i (a : Cq.atom) ->
      (* The anchor is the atom variable with the longest root path. *)
      match a.Cq.vars with
      | [] -> ok := Error (Printf.sprintf "atom %s has no variables" a.Cq.rel)
      | v0 :: _ ->
          let anchor_var =
            List.fold_left
              (fun best v ->
                if List.length (path_of v) > List.length (path_of best) then v else best)
              v0 a.Cq.vars
          in
          let p = path_of anchor_var in
          if List.for_all (fun v -> List.mem v p) a.Cq.vars then anchors.(i) <- anchor_var
          else
            ok :=
              Error
                (Printf.sprintf "atom %s(%s) does not lie on the root path of %s" a.Cq.rel
                   (String.concat "," a.Cq.vars) anchor_var))
    atoms;
  match !ok with Ok () -> Ok anchors | Error e -> Error e

let validate (q : Cq.t) (f : forest) : (unit, string) result =
  let qvars = SSet.of_list (Cq.vars q) in
  let fvars = vars_of f in
  if List.length fvars <> SSet.cardinal qvars || not (List.for_all (fun v -> SSet.mem v qvars) fvars)
  then Error "variable order does not cover exactly the query variables"
  else Result.map (fun _ -> ()) (anchor q f)

(** [keys q f] computes the dependency set dep(X) of every variable in
    the order: the ancestors of X that co-occur (in some atom anchored in
    X's subtree) with variables of that subtree. dep(X) is the key schema
    of the view at X after marginalizing X (F-IVM's view trees). The
    result lists dep(X) in root-to-leaf ancestor order. *)
let keys (q : Cq.t) (f : forest) : (string * string list) list =
  match anchor q f with
  | Error e -> invalid_arg ("Variable_order.keys: invalid order: " ^ e)
  | Ok anchors ->
      let atoms = Array.of_list q.Cq.atoms in
      let pathmap = paths f in
      let rec subtree_atoms t =
        let here =
          List.filteri (fun i _ -> String.equal anchors.(i) t.var) (Array.to_list atoms)
        in
        here @ List.concat_map subtree_atoms t.children
      in
      let rec go acc t =
        let anc = List.assoc t.var pathmap in
        let sub_vars =
          SSet.of_list (List.concat_map (fun (a : Cq.atom) -> a.Cq.vars) (subtree_atoms t))
        in
        let dep = List.filter (fun y -> SSet.mem y sub_vars) anc in
        List.fold_left go ((t.var, dep) :: acc) t.children
      in
      List.rev (List.fold_left go [] f)

(** Free variables form a connex top fragment: every ancestor of a free
    variable is free. Required for constant-delay full enumeration. *)
let free_top (q : Cq.t) (f : forest) =
  List.for_all
    (fun (v, anc) -> (not (Cq.is_free q v)) || List.for_all (Cq.is_free q) anc)
    (paths f)

let rec pp_tree ppf t =
  match t.children with
  | [] -> Format.pp_print_string ppf t.var
  | cs ->
      Format.fprintf ppf "%s(%a)" t.var
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") pp_tree)
        cs

let pp ppf (f : forest) =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ") pp_tree ppf f
