(** Variable orders: the skeletons of view trees (Sec. 4.1, Fig. 3). A
    variable order for a query is a forest over its variables in which
    every atom's variables lie on a single root-to-node path. *)

type t = { var : string; children : t list }
type forest = t list

val vars_of : forest -> string list

val chain : string list -> t
(** A linear order a > b > c > ..., always a valid order. *)

val canonical : Cq.t -> forest option
(** The canonical forest of a hierarchical query ([None] otherwise):
    variables grouped by equal atom sets, classes nested by strict
    containment, free variables first within a class — which makes the
    order free-top for q-hierarchical queries. *)

val paths : forest -> (string * string list) list
(** Each variable with its ancestors, root first. *)

val anchor : Cq.t -> forest -> (string array, string) result
(** The lowest variable of each atom; [Error] when some atom is not on a
    root path (invalid order). *)

val validate : Cq.t -> forest -> (unit, string) result

val keys : Cq.t -> forest -> (string * string list) list
(** dep(X) for every variable: the ancestors of X co-occurring with X's
    subtree — the key schema of the view at X (F-IVM). *)

val free_top : Cq.t -> forest -> bool
(** Free variables form a connex top fragment: required for
    constant-delay full enumeration. *)

val pp_tree : Format.formatter -> t -> unit
val pp : Format.formatter -> forest -> unit
