(** Conjunctive queries with free access patterns (Sec. 4.3): the free
    variables split into input and output; the query returns output
    tuples for a given input tuple. Tractability (Thm. 4.8): O(|D|)
    preprocessing, O(1) updates and O(1) delay iff the fracture is
    hierarchical, free-dominant and input-dominant. *)

type t = { cq : Cq.t; input : string list }

val make : input:string list -> Cq.t -> t
(** @raise Invalid_argument when an input variable is not free. *)

val output : t -> string list
val is_input : t -> string -> bool

val fracture : t -> t
(** The fracture (Def. 4.7): per-occurrence renaming of input variables,
    connected-component split, then per-component re-merging of copies
    of the same input variable. *)

val is_input_dominant : t -> bool
val is_tractable : t -> bool
val pp : Format.formatter -> t -> unit
