(** The executable reduction from OuMv to triangle detection under
    updates (Thm. 3.4): any IVM engine for the Boolean triangle query
    with O(N^{1/2−γ}) updates and O(N^{1−γ}) delay would yield a
    subcubic OuMv algorithm, contradicting the conjecture. S encodes the
    matrix, R and T encode the round vectors against a constant anchor
    node; uᵀMv = [count > 0]. *)

type stats = {
  n : int;
  database_size : int; (** N = O(n²) *)
  matrix_updates : int; (** < n² *)
  vector_updates : int; (** < 4n per round, totalled *)
  answers : bool array;
}

val run :
  (module Ivm_engine.Triangle.ENGINE with type t = 'a) -> Oumv.t -> stats
(** Solve the instance through the given engine (the proof's
    "Algorithm A" oracle), recording the update budget. *)
