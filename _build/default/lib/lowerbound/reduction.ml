(** The executable reduction from OuMv to triangle detection under
    updates (Thm. 3.4, [4, 18]): it turns any IVM algorithm for the
    Boolean triangle query with update time O(N^{1/2−γ}) and enumeration
    delay O(N^{1−γ}) into a subcubic OuMv algorithm, contradicting the
    OuMv conjecture.

    Construction (Algorithm B): relation S encodes the matrix
    (S(i,j) = M[i,j]); in round r, R encodes u_r (R(a,i) = u_r[i] for a
    fixed constant a) and T encodes v_r (T(j,a) = v_r[j]); then
    uᵀMv = [triangle count > 0]. Step counts are recorded so tests can
    check the O(n²) + O(4n per round) update budget of the proof. *)

type stats = {
  n : int;
  database_size : int; (* N = O(n²) *)
  matrix_updates : int; (* < n² *)
  vector_updates : int; (* < 4n per round, totalled *)
  answers : bool array;
}

(** [run (module E) t] solves the OuMv instance through any triangle
    engine: the engine is the "Algorithm A" oracle of the proof. *)
let run (type a) (module E : Ivm_engine.Triangle.ENGINE with type t = a) (t : Oumv.t) : stats =
  let eng = E.create () in
  let matrix_updates = ref 0 in
  let vector_updates = ref 0 in
  (* Step 1: load the matrix into S. *)
  for i = 0 to t.Oumv.n - 1 do
    for j = 0 to t.Oumv.n - 1 do
      if t.Oumv.matrix.(i).(j) then begin
        E.update eng Ivm_engine.Triangle.S ~a:i ~b:j 1;
        incr matrix_updates
      end
    done
  done;
  (* The constant value "a" of the construction. *)
  let anchor = t.Oumv.n + 1 in
  let prev_u = Array.make t.Oumv.n false and prev_v = Array.make t.Oumv.n false in
  let answers =
    Array.map
      (fun (u, v) ->
        (* Steps 2a, 2b: replace R and T by delta updates against the
           previous round's vectors. *)
        for i = 0 to t.Oumv.n - 1 do
          if u.(i) <> prev_u.(i) then begin
            E.update eng Ivm_engine.Triangle.R ~a:anchor ~b:i (if u.(i) then 1 else -1);
            incr vector_updates
          end;
          prev_u.(i) <- u.(i)
        done;
        for j = 0 to t.Oumv.n - 1 do
          if v.(j) <> prev_v.(j) then begin
            E.update eng Ivm_engine.Triangle.T ~a:j ~b:anchor (if v.(j) then 1 else -1);
            incr vector_updates
          end;
          prev_v.(j) <- v.(j)
        done;
        (* Step 2c: uᵀMv = [Q_b], the positivity of the count. *)
        E.count eng > 0)
      t.Oumv.rounds
  in
  {
    n = t.Oumv.n;
    database_size = !matrix_updates + (2 * t.Oumv.n);
    matrix_updates = !matrix_updates;
    vector_updates = !vector_updates;
    answers;
  }
