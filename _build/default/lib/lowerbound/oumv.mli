(** The Online Vector-Matrix-Vector multiplication problem (Def. 3.3):
    an n×n Boolean matrix and n Boolean vector pairs revealed one at a
    time; after each pair, uᵀMv must be output. The OuMv conjecture: no
    algorithm solves this in O(n^{3−γ}) total time. *)

type t = {
  n : int;
  matrix : bool array array;
  rounds : (bool array * bool array) array;
}

val make : matrix:bool array array -> rounds:(bool array * bool array) array -> t
(** @raise Invalid_argument on ragged input. *)

val random : rng:Random.State.t -> n:int -> density:float -> t

val solve_naive : t -> bool array
(** The O(n³) baseline. *)
