(** The Online Vector-Matrix-Vector multiplication problem (Def. 3.3).

    Input: a Boolean n×n matrix M and n pairs of Boolean vectors
    (u_r, v_r), revealed one pair at a time; after each pair the value
    uᵀMv must be output before the next pair is revealed. The OuMv
    conjecture: no algorithm solves this in O(n^{3−γ}) total time. *)

type t = {
  n : int;
  matrix : bool array array; (* matrix.(i).(j) = M[i,j] *)
  rounds : (bool array * bool array) array; (* (u_r, v_r) *)
}

let make ~matrix ~rounds =
  let n = Array.length matrix in
  Array.iter (fun row -> if Array.length row <> n then invalid_arg "Oumv.make: ragged matrix") matrix;
  Array.iter
    (fun (u, v) ->
      if Array.length u <> n || Array.length v <> n then invalid_arg "Oumv.make: bad vector")
    rounds;
  { n; matrix; rounds }

let random ~rng ~n ~density =
  let flip () = Random.State.float rng 1.0 < density in
  let matrix = Array.init n (fun _ -> Array.init n (fun _ -> flip ())) in
  let rounds =
    Array.init n (fun _ -> (Array.init n (fun _ -> flip ()), Array.init n (fun _ -> flip ())))
  in
  make ~matrix ~rounds

(** The naive O(n³) solver: per round, uᵀMv by direct evaluation. *)
let solve_naive (t : t) : bool array =
  Array.map
    (fun (u, v) ->
      let hit = ref false in
      for i = 0 to t.n - 1 do
        if u.(i) && not !hit then
          for j = 0 to t.n - 1 do
            if (not !hit) && t.matrix.(i).(j) && v.(j) then hit := true
          done
      done;
      !hit)
    t.rounds
