lib/lowerbound/oumv.ml: Array Random
