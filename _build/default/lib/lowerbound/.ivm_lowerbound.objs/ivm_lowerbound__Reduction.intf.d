lib/lowerbound/reduction.mli: Ivm_engine Oumv
