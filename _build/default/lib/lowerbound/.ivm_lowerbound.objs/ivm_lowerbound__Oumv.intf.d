lib/lowerbound/oumv.mli: Random
