lib/lowerbound/reduction.ml: Array Ivm_engine Oumv
