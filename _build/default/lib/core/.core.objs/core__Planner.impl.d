lib/core/planner.ml: Format Ivm_query List Option
