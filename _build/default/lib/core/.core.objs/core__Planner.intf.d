lib/core/planner.mli: Format Ivm_query
