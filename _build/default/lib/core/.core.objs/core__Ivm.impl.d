lib/core/ivm.ml: Ivm_data Ivm_engine Ivm_eps Ivm_lowerbound Ivm_query Ivm_ring Ivm_workload
