(** The maintenance planner — the paper's Sec. 6 conclusion made
    executable: classify a query along the taxonomy (query structure,
    FDs, access patterns, static/dynamic adornments, update types) and
    recommend the best maintenance strategy with its complexity
    guarantee, or report the conditional lower bound that applies. *)

module Cq = Ivm_query.Cq
module Fd = Ivm_query.Fd
module Sd = Ivm_query.Static_dynamic
module Vo = Ivm_query.Variable_order

type complexity = { preprocessing : string; update : string; delay : string }

type verdict =
  | Best_possible of { reason : string; order : Vo.forest option }
      (** O(N) preprocessing, O(1) updates, O(1) delay. *)
  | Amortized_best of { reason : string }
      (** Amortized O(1) under stated conditions (valid batches,
          insert-only streams). *)
  | Worst_case_optimal of { reason : string; complexity : complexity }
      (** Sublinear updates meeting the OuMv-conditional bound. *)
  | Delta_only of { reason : string; complexity : complexity }

type analysis = {
  query : Cq.t;
  hierarchical : bool;
  q_hierarchical : bool;
  alpha_acyclic : bool;
  free_connex : bool;
  hierarchical_under_fds : bool;
  q_hierarchical_under_fds : bool;
  cqap_tractable : bool option; (** [None] when no access pattern given. *)
  sd_tractable : bool option; (** [None] when no adornment given. *)
  verdict : verdict;
}

val analyze :
  ?fds:Fd.t list -> ?access:string list -> ?adornment:Sd.adornment -> Cq.t -> analysis

val pp_verdict : Format.formatter -> verdict -> unit
val pp_analysis : Format.formatter -> analysis -> unit
