(** The maintenance planner: the paper's concluding observation
    (Sec. 6) made executable. Given a query together with optional
    functional dependencies, an access pattern, and static/dynamic
    adornments, the planner classifies it along the paper's taxonomy and
    recommends the best maintenance strategy with its complexity
    guarantees — or reports the conditional lower bound that forbids
    doing better (Thm. 4.1, Thm. 4.8). *)

module Cq = Ivm_query.Cq
module Fd = Ivm_query.Fd
module Cqap = Ivm_query.Cqap
module H = Ivm_query.Hierarchical
module Hg = Ivm_query.Hypergraph
module Sd = Ivm_query.Static_dynamic
module Vo = Ivm_query.Variable_order

type complexity = {
  preprocessing : string;
  update : string;
  delay : string;
}

type verdict =
  | Best_possible of { reason : string; order : Vo.forest option }
      (** O(1) update and O(1) delay after linear preprocessing. *)
  | Amortized_best of { reason : string }
      (** Amortized O(1) update / O(1) delay under stated conditions. *)
  | Worst_case_optimal of { reason : string; complexity : complexity }
      (** Sublinear updates meeting the OuMv-conditional lower bound. *)
  | Delta_only of { reason : string; complexity : complexity }
      (** No known sublinear technique applies; classical delta IVM. *)

type analysis = {
  query : Cq.t;
  hierarchical : bool;
  q_hierarchical : bool;
  alpha_acyclic : bool;
  free_connex : bool;
  hierarchical_under_fds : bool;
  q_hierarchical_under_fds : bool;
  cqap_tractable : bool option; (* None: no access pattern given *)
  sd_tractable : bool option; (* None: no adornment given *)
  verdict : verdict;
}

let triangle_like q =
  (* A cyclic join of binary atoms — the IVM^ε territory of Sec. 3.3. *)
  (not (Hg.is_alpha_acyclic q))
  && List.for_all (fun (a : Cq.atom) -> List.length a.Cq.vars = 2) q.Cq.atoms

let analyze ?(fds : Fd.t list = []) ?(access : string list option)
    ?(adornment : Sd.adornment option) (q : Cq.t) : analysis =
  let hierarchical = H.is_hierarchical q in
  let q_hierarchical = H.is_q_hierarchical q in
  let alpha_acyclic = Hg.is_alpha_acyclic q in
  let free_connex = Hg.is_free_connex q in
  let reduct = if fds = [] then q else Fd.sigma_reduct fds q in
  let hierarchical_under_fds = H.is_hierarchical reduct in
  let q_hierarchical_under_fds = H.is_q_hierarchical reduct in
  let cqap_tractable =
    Option.map (fun input -> Cqap.is_tractable (Cqap.make ~input q)) access
  in
  let sd_tractable = Option.map (fun ad -> Sd.is_tractable q ad) adornment in
  let verdict =
    if q_hierarchical then
      Best_possible
        { reason = "q-hierarchical (Thm. 4.1)"; order = Vo.canonical q }
    else if q_hierarchical_under_fds then
      Best_possible
        {
          reason = "Σ-reduct is q-hierarchical under the FDs (Thm. 4.11)";
          order = Vo.canonical reduct;
        }
    else if cqap_tractable = Some true then
      Best_possible { reason = "tractable CQAP (Thm. 4.8)"; order = None }
    else if sd_tractable = Some true then
      Best_possible
        { reason = "tractable in the static/dynamic setting (Sec. 4.5)"; order = None }
    else if alpha_acyclic then
      Amortized_best
        {
          reason =
            "α-acyclic: amortized O(1) inserts and O(1) delay under \
             insert-only streams (Sec. 4.6); under insert-delete, \
             OuMv-hard (Thm. 4.1)";
        }
    else if triangle_like q then
      Worst_case_optimal
        {
          reason = "cyclic binary join: IVM^ε applies (Sec. 3.3)";
          complexity =
            { preprocessing = "O(N^{3/2})"; update = "O(N^{1/2})"; delay = "O(1)" };
        }
    else
      Delta_only
        {
          reason = "no structural property applies; classical delta IVM (Sec. 3.1)";
          complexity = { preprocessing = "O(1)"; update = "O(N^{k})"; delay = "O(1)" };
        }
  in
  {
    query = q;
    hierarchical;
    q_hierarchical;
    alpha_acyclic;
    free_connex;
    hierarchical_under_fds;
    q_hierarchical_under_fds;
    cqap_tractable;
    sd_tractable;
    verdict;
  }

let pp_verdict ppf = function
  | Best_possible { reason; _ } ->
      Format.fprintf ppf "best possible: O(N) preprocessing, O(1) update, O(1) delay — %s"
        reason
  | Amortized_best { reason } -> Format.fprintf ppf "amortized best possible — %s" reason
  | Worst_case_optimal { reason; complexity } ->
      Format.fprintf ppf "worst-case optimal: %s update, %s delay — %s" complexity.update
        complexity.delay reason
  | Delta_only { reason; _ } -> Format.fprintf ppf "delta queries only — %s" reason

let pp_analysis ppf a =
  Format.fprintf ppf
    "@[<v>query: %a@,hierarchical: %b    q-hierarchical: %b@,\
     α-acyclic: %b    free-connex: %b@,\
     under FDs: hierarchical %b, q-hierarchical %b@,%a%averdict: %a@]"
    Cq.pp a.query a.hierarchical a.q_hierarchical a.alpha_acyclic a.free_connex
    a.hierarchical_under_fds a.q_hierarchical_under_fds
    (fun ppf -> function
      | Some b -> Format.fprintf ppf "CQAP-tractable: %b@," b
      | None -> ())
    a.cqap_tractable
    (fun ppf -> function
      | Some b -> Format.fprintf ppf "static/dynamic-tractable: %b@," b
      | None -> ())
    a.sd_tractable pp_verdict a.verdict
