(** The library facade: one module aliasing every subsystem, so that
    users can [open Core] (or reference [Core.Ivm]) and reach the whole
    toolbox. See README.md for the map. *)

module Ring = Ivm_ring
module Data = Ivm_data
module Query = Ivm_query
module Engine = Ivm_engine
module Eps = Ivm_eps
module Lowerbound = Ivm_lowerbound
module Workload = Ivm_workload

(* Frequently used modules, re-exported flat. *)
module Cq = Ivm_query.Cq
module Fd = Ivm_query.Fd
module Cqap = Ivm_query.Cqap
module Hierarchical = Ivm_query.Hierarchical
module Variable_order = Ivm_query.Variable_order
module Schema = Ivm_data.Schema
module Tuple = Ivm_data.Tuple
module Value = Ivm_data.Value
module Update = Ivm_data.Update
module Relation = Ivm_data.Relation
module Database = Ivm_data.Database
module View_tree = Ivm_engine.View_tree
module Strategy = Ivm_engine.Strategy

let version = "1.0.0"
