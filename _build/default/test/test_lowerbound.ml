(* The OuMv reduction (Thm. 3.4): the reduction solves OuMv correctly
   through every triangle engine, within the update budget of the proof. *)

module E = Ivm_engine
module Eps = Ivm_eps
module L = Ivm_lowerbound

let checkb = Alcotest.(check bool)

let engines :
    (string * (L.Oumv.t -> L.Reduction.stats)) list =
  [
    ("delta", L.Reduction.run (module E.Triangle.Delta));
    ("one-view", L.Reduction.run (module E.Triangle.One_view));
    ("ivm-eps", L.Reduction.run (module Eps.Triangle_count.Half));
  ]

let agree_with_naive () =
  let rng = Random.State.make [| 5 |] in
  List.iter
    (fun n ->
      List.iter
        (fun density ->
          let inst = L.Oumv.random ~rng ~n ~density in
          let expected = L.Oumv.solve_naive inst in
          List.iter
            (fun (name, solve) ->
              let stats = solve inst in
              Alcotest.(check (array bool))
                (Printf.sprintf "%s n=%d d=%.1f" name n density)
                expected stats.L.Reduction.answers)
            engines)
        [ 0.1; 0.5; 0.9 ])
    [ 3; 8; 17 ]

let update_budget () =
  (* The proof's accounting: < n² matrix updates and < 4n vector updates
     per round. *)
  let rng = Random.State.make [| 6 |] in
  let n = 20 in
  let inst = L.Oumv.random ~rng ~n ~density:0.5 in
  let stats = L.Reduction.run (module E.Triangle.Delta) inst in
  checkb "matrix updates < n^2" true (stats.L.Reduction.matrix_updates <= n * n);
  checkb "vector updates < 4n per round" true
    (stats.L.Reduction.vector_updates <= 4 * n * n);
  checkb "database size O(n^2)" true (stats.L.Reduction.database_size <= (n * n) + (2 * n))

let all_zero_matrix () =
  let inst =
    L.Oumv.make
      ~matrix:(Array.make_matrix 4 4 false)
      ~rounds:(Array.init 4 (fun _ -> (Array.make 4 true, Array.make 4 true)))
  in
  List.iter
    (fun (name, solve) ->
      let stats = solve inst in
      checkb (name ^ ": all answers false") true
        (Array.for_all not stats.L.Reduction.answers))
    engines

let identity_matrix () =
  let n = 5 in
  let matrix = Array.init n (fun i -> Array.init n (fun j -> i = j)) in
  (* u_r = e_r, v_r = e_r: answer true iff M[r,r]. *)
  let rounds =
    Array.init n (fun r ->
        (Array.init n (fun i -> i = r), Array.init n (fun j -> j = r)))
  in
  let inst = L.Oumv.make ~matrix ~rounds in
  List.iter
    (fun (name, solve) ->
      let stats = solve inst in
      checkb (name ^ ": diagonal hits") true (Array.for_all Fun.id stats.L.Reduction.answers))
    engines

let () =
  Alcotest.run "lowerbound"
    [
      ( "oumv reduction (Thm. 3.4)",
        [
          Alcotest.test_case "agrees with naive solver" `Quick agree_with_naive;
          Alcotest.test_case "update budget of the proof" `Quick update_budget;
          Alcotest.test_case "all-zero matrix" `Quick all_zero_matrix;
          Alcotest.test_case "identity matrix" `Quick identity_matrix;
        ] );
    ]
