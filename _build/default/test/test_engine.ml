(* Engines: view trees, the four Fig. 4 strategies, the triangle engines
   (Sec. 3), the FD-reduct engine (Ex. 4.12), PK-FK (Ex. 4.13), the
   cascade (Sec. 4.2), insert-only (Sec. 4.6), CQAP runtimes (Ex. 4.6)
   and the static/dynamic engine (Ex. 4.14) — each cross-checked against
   from-scratch recomputation on randomized update streams. *)

module D = Ivm_data
module Q = Ivm_query
module E = Ivm_engine
module Rel = D.Relation.Z
module S = D.Schema
module T = D.Tuple
module U = D.Update
module Cq = Q.Cq
module Vo = Q.Variable_order

let tup = T.of_ints
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Enforce validity (Sec. 2): a delete never drives a base multiplicity
   negative. The paper's maintenance guarantees assume valid update
   sequences — enumeration from a factorized representation relies on
   marginal payloads not cancelling to zero while tuples remain. *)
let validize (ops : (string * int list * int) list) : (string * int list * int) list =
  let live = Hashtbl.create 16 in
  List.filter_map
    (fun (rel, t, p) ->
      let k = (rel, t) in
      let cur = Option.value (Hashtbl.find_opt live k) ~default:0 in
      let p = if p >= 0 then p else -min (-p) cur in
      if p = 0 then None
      else begin
        Hashtbl.replace live k (cur + p);
        Some (rel, t, p)
      end)
    ops

(* Recompute a query output from the tree's base relations. *)
let recompute (tree : E.View_tree.t) (q : Cq.t) =
  E.Eval.aggregate q ~lookup:(fun rel -> E.View_tree.base_view tree rel)

(* --- view trees -------------------------------------------------------- *)

let fig3_query =
  Cq.make ~name:"Q" ~free:[ "Y"; "X"; "Z" ]
    [ Cq.atom "R" [ "Y"; "X" ]; Cq.atom "S" [ "Y"; "Z" ] ]

let empty_db atoms =
  let db = D.Database.Z.create () in
  List.iter (fun (a : Cq.atom) -> ignore (D.Database.Z.declare db a.Cq.rel (S.of_list a.Cq.vars))) atoms;
  db

let fig3_tree () =
  let db = empty_db fig3_query.Cq.atoms in
  let forest = Option.get (Vo.canonical fig3_query) in
  E.View_tree.build fig3_query forest db

let view_tree_fig3 () =
  let tree = fig3_tree () in
  let apply rel l p = E.View_tree.apply_update tree (U.make ~rel ~tuple:(tup l) ~payload:p) in
  apply "R" [ 1; 10 ] 1;
  apply "S" [ 1; 20 ] 1;
  apply "S" [ 1; 21 ] 2;
  apply "R" [ 2; 11 ] 1;
  (* Y=2 has no S partner. *)
  let out = E.View_tree.output_relation tree in
  checki "output size" 2 (Rel.size out);
  checki "payload" 2 (Rel.get out (tup [ 1; 10; 21 ]));
  (* Delete the R tuple: output vanishes. *)
  apply "R" [ 1; 10 ] (-1);
  checki "empty after delete" 0 (Rel.size (E.View_tree.output_relation tree));
  checkb "agrees with recompute" true
    (Rel.equal (E.View_tree.output_relation tree) (recompute tree fig3_query))

let delta_enumeration () =
  (* Footnote 2: delta enumeration returns exactly the output change. *)
  let tree = fig3_tree () in
  let upd rel l p = U.make ~rel ~tuple:(tup l) ~payload:p in
  let d0 = E.View_tree.apply_update_enumerating tree (upd "R" [ 1; 10 ] 1) in
  checki "no partner yet" 0 (List.length d0);
  let d1 = E.View_tree.apply_update_enumerating tree (upd "S" [ 1; 20 ] 1) in
  checki "one new output" 1 (List.length d1);
  (match d1 with
  | [ (t, p) ] ->
      checkb "tuple" true (T.equal t (tup [ 1; 10; 20 ]));
      checki "payload" 1 p
  | _ -> Alcotest.fail "unexpected delta");
  let d2 = E.View_tree.apply_update_enumerating tree (upd "R" [ 1; 11 ] 2) in
  checki "join multiplies" 1 (List.length d2);
  checki "payload 2" 2 (snd (List.hd d2));
  (* A delete produces negative deltas. *)
  let d3 = E.View_tree.apply_update_enumerating tree (upd "S" [ 1; 20 ] (-1)) in
  checki "two outputs disappear" 2 (List.length d3);
  List.iter (fun (_, p) -> checkb "negative" true (p < 0)) d3;
  (* The accumulated deltas equal the final output. *)
  let acc = Rel.create (S.of_list [ "Y"; "X"; "Z" ]) in
  List.iter (fun (t, p) -> Rel.add_entry acc t p) (d0 @ d1 @ d2 @ d3);
  checkb "deltas sum to the output" true (Rel.equal acc (E.View_tree.output_relation tree))

let iter_output_matches_enumerate =
  QCheck.Test.make ~count:60 ~name:"iter_output = enumerate (Seq)"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 40)
           (pair (int_range 0 1) (triple (int_range 0 3) (int_range 0 3) (int_range (-1) 2)))))
    (fun upds ->
      let tree = fig3_tree () in
      let ops =
        validize
          (List.map (fun (r, (x, y, p)) -> ((if r = 0 then "R" else "S"), [ x; y ], p)) upds)
      in
      List.iter
        (fun (rel, t, p) -> E.View_tree.apply_update tree (U.make ~rel ~tuple:(tup t) ~payload:p))
        ops;
      let via_seq = Rel.create (S.of_list [ "Y"; "X"; "Z" ]) in
      Seq.iter (fun (t, p) -> Rel.add_entry via_seq t p) (E.View_tree.enumerate tree);
      Rel.equal via_seq (E.View_tree.output_relation tree))

let view_tree_single_tuple_deltas () =
  (* For q-hierarchical queries the propagated deltas must stay O(1):
     views grow by at most a constant per update. *)
  let tree = fig3_tree () in
  let apply rel l p = E.View_tree.apply_update tree (U.make ~rel ~tuple:(tup l) ~payload:p) in
  for i = 1 to 100 do
    apply "R" [ 1; i ] 1
  done;
  let before = E.View_tree.views_size tree in
  apply "S" [ 1; 7 ] 1;
  let after = E.View_tree.views_size tree in
  (* One S insert changes V_S, V_agg at Z and the root views: <= 4 new
     entries even though it joins with 100 R tuples. *)
  checkb "delta stays constant-size" true (after - before <= 4)

(* Random update streams on a random q-hierarchical-or-not query, view
   tree vs recompute. *)
let view_tree_random =
  let gen =
    QCheck.Gen.(
      let* upds =
        list_size (int_range 1 60)
          (quad (int_range 0 2) (int_range 0 3) (int_range 0 3) (int_range (-2) 2))
      in
      return upds)
  in
  QCheck.Test.make ~count:80
    ~name:"view tree = recompute on random streams (triangle order)"
    (QCheck.make gen) (fun upds ->
      (* The triangle query exercises multi-tuple delta propagation. *)
      let q =
        Cq.make ~name:"tri" ~free:[ "A"; "B" ]
          [ Cq.atom "R" [ "A"; "B" ]; Cq.atom "S" [ "B"; "C" ]; Cq.atom "T" [ "C"; "A" ] ]
      in
      let db = empty_db q.Cq.atoms in
      let tree = E.View_tree.build q [ Vo.chain [ "A"; "B"; "C" ] ] db in
      let ops =
        validize
          (List.map
             (fun (r, x, y, p) ->
               ((match r with 0 -> "R" | 1 -> "S" | _ -> "T"), [ x; y ], p))
             upds)
      in
      List.iter
        (fun (rel, t, p) ->
          E.View_tree.apply_update tree (U.make ~rel ~tuple:(tup t) ~payload:p))
        ops;
      (* Enumeration not available (free vars not connex top for this
         order: A,B free with C bound below B — actually the chain
         A(B(C)) has A,B on top, so it is enumerable). *)
      Rel.equal (E.View_tree.output_relation tree) (recompute tree q))

let strategies_agree =
  QCheck.Test.make ~count:40 ~name:"all four Fig. 4 strategies agree"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 50)
           (pair (int_range 0 1) (triple (int_range 0 3) (int_range 0 3) (int_range (-1) 2)))))
    (fun upds ->
      let q = fig3_query in
      let forest = Option.get (Vo.canonical q) in
      let mk kind = E.Strategy.create kind q forest (empty_db q.Cq.atoms) in
      let engines =
        [
          mk E.Strategy.Eager_fact;
          mk E.Strategy.Eager_list;
          mk E.Strategy.Lazy_fact;
          mk E.Strategy.Lazy_list;
        ]
      in
      let ops =
        validize
          (List.map (fun (r, (x, y, p)) -> ((if r = 0 then "R" else "S"), [ x; y ], p)) upds)
      in
      let step i (rel, t, p) =
        List.iter (fun e -> E.Strategy.apply e (U.make ~rel ~tuple:(tup t) ~payload:p)) engines;
        (* Occasionally enumerate everywhere and compare. *)
        if i mod 7 = 0 then begin
          let outs = List.map E.Strategy.output engines in
          match outs with
          | ref :: rest -> List.iter (fun o -> assert (Rel.equal ref o)) rest
          | [] -> ()
        end
      in
      List.iteri step ops;
      let outs = List.map E.Strategy.output engines in
      match outs with
      | ref :: rest -> List.for_all (Rel.equal ref) rest
      | [] -> true)

(* --- triangle engines -------------------------------------------------- *)

let triangle_engines_agree =
  QCheck.Test.make ~count:30 ~name:"triangle engines agree on random insert/delete streams"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 150)
           (quad (int_range 0 2) (int_range 0 6) (int_range 0 6) (int_range (-1) 2))))
    (fun upds ->
      let naive = E.Triangle.Naive.create () in
      let delta = E.Triangle.Delta.create () in
      let one = E.Triangle.One_view.create () in
      List.iter
        (fun (r, a, b, m) ->
          if m <> 0 then begin
            let rel =
              match r with 0 -> E.Triangle.R | 1 -> E.Triangle.S | _ -> E.Triangle.T
            in
            E.Triangle.Naive.update naive rel ~a ~b m;
            E.Triangle.Delta.update delta rel ~a ~b m;
            E.Triangle.One_view.update one rel ~a ~b m
          end)
        upds;
      E.Triangle.Naive.count naive = E.Triangle.Delta.count delta
      && E.Triangle.Delta.count delta = E.Triangle.One_view.count one)

let triangle_fig2 () =
  (* Fig. 2 exactly: count 26, then δR(a2,b1) -> -2 gives 10. *)
  let eng = E.Triangle.Delta.create () in
  E.Triangle.Delta.update eng E.Triangle.R ~a:1 ~b:1 1;
  E.Triangle.Delta.update eng E.Triangle.R ~a:2 ~b:1 3;
  E.Triangle.Delta.update eng E.Triangle.S ~a:1 ~b:1 2;
  E.Triangle.Delta.update eng E.Triangle.S ~a:1 ~b:2 4;
  E.Triangle.Delta.update eng E.Triangle.T ~a:1 ~b:1 1;
  E.Triangle.Delta.update eng E.Triangle.T ~a:2 ~b:2 2;
  checki "Fig. 2 count" 26 (E.Triangle.Delta.count eng);
  E.Triangle.Delta.update eng E.Triangle.R ~a:2 ~b:1 (-2);
  checki "Fig. 2 after delete" 10 (E.Triangle.Delta.count eng)

(* --- FD-reduct engine (Ex. 4.12) --------------------------------------- *)

let fd_engine_unit () =
  let q =
    Cq.make ~name:"Q" ~free:[ "Z"; "Y"; "X"; "W" ]
      [ Cq.atom "R" [ "X"; "W" ]; Cq.atom "S" [ "X"; "Y" ]; Cq.atom "T" [ "Y"; "Z" ] ]
  in
  let fds = [ Q.Fd.make [ "X" ] [ "Y" ]; Q.Fd.make [ "Y" ] [ "Z" ] ] in
  let db = empty_db q.Cq.atoms in
  match E.Fd_reduct.build fds q db with
  | Error e -> Alcotest.fail e
  | Ok eng ->
      let apply rel l p =
        E.Fd_reduct.apply_update eng (U.make ~rel ~tuple:(tup l) ~payload:p)
      in
      (* FD-satisfying data: X -> Y and Y -> Z are functions. *)
      apply "S" [ 1; 10 ] 1;
      apply "S" [ 2; 20 ] 1;
      apply "T" [ 10; 100 ] 1;
      apply "T" [ 20; 200 ] 1;
      apply "R" [ 1; 7 ] 1;
      apply "R" [ 1; 8 ] 1;
      apply "R" [ 2; 9 ] 1;
      let out = E.Fd_reduct.output eng in
      checki "output size" 3 (Rel.size out);
      (* Output schema is (Z,Y,X,W). *)
      checki "tuple payload" 1 (Rel.get out (tup [ 100; 10; 1; 7 ]));
      (* Cross-check against recomputation. *)
      let out2 = recompute (E.Fd_reduct.tree eng) q in
      checkb "matches recompute" true
        (Rel.equal out (Rel.project_onto out2 (S.of_list q.Cq.free)));
      (* Deletes propagate too. *)
      apply "R" [ 1; 7 ] (-1);
      checki "after delete" 2 (Rel.size (E.Fd_reduct.output eng))

(* --- PK-FK engine (Ex. 4.13) ------------------------------------------- *)

let pkfk_unit () =
  let eng = E.Pkfk.create () in
  (* Out-of-order valid batch: M rows before their T and C keys. *)
  E.Pkfk.update_companies eng ~m:1 ~c:10 1;
  E.Pkfk.update_companies eng ~m:2 ~c:10 1;
  checki "count with dangling FKs" 0 (E.Pkfk.count eng);
  E.Pkfk.update_title eng ~m:1 1;
  E.Pkfk.update_title eng ~m:2 1;
  checki "still no company" 0 (E.Pkfk.count eng);
  E.Pkfk.update_names eng ~c:10 1;
  checki "batch committed" 2 (E.Pkfk.count eng);
  checki "matches recompute" (E.Pkfk.recompute eng) (E.Pkfk.count eng);
  (* Valid delete batch, company first (inconsistent intermediate). *)
  E.Pkfk.update_names eng ~c:10 (-1);
  E.Pkfk.update_companies eng ~m:1 ~c:10 (-1);
  E.Pkfk.update_title eng ~m:1 (-1);
  E.Pkfk.update_companies eng ~m:2 ~c:10 (-1);
  E.Pkfk.update_title eng ~m:2 (-1);
  checki "empty after delete batch" 0 (E.Pkfk.count eng);
  checki "recompute agrees" 0 (E.Pkfk.recompute eng)

let pkfk_random =
  QCheck.Test.make ~count:50 ~name:"pkfk = recompute under arbitrary interleavings"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 80)
           (quad (int_range 0 2) (int_range 0 5) (int_range 0 5) (int_range (-1) 1))))
    (fun ops ->
      let eng = E.Pkfk.create () in
      List.iter
        (fun (k, m, c, d) ->
          if d <> 0 then
            match k with
            | 0 -> E.Pkfk.update_title eng ~m d
            | 1 -> E.Pkfk.update_companies eng ~m ~c d
            | _ -> E.Pkfk.update_names eng ~c d)
        ops;
      E.Pkfk.count eng = E.Pkfk.recompute eng)

(* --- cascade (Sec. 4.2) ------------------------------------------------- *)

let cascade_unit () =
  let db = empty_db E.Cascade.q2.Cq.atoms in
  let eng = E.Cascade.create db in
  let apply rel l p = E.Cascade.apply_update eng (U.make ~rel ~tuple:(tup l) ~payload:p) in
  apply "R" [ 1; 2 ] 1;
  apply "S" [ 2; 3 ] 1;
  apply "T" [ 3; 4 ] 1;
  apply "T" [ 3; 5 ] 1;
  (* Q1 before Q2 must be rejected. *)
  (try
     ignore (List.of_seq (E.Cascade.enumerate_q1 eng));
     Alcotest.fail "expected enumerate_q1 to fail while dirty"
   with Invalid_argument _ -> ());
  let q2_out = List.of_seq (E.Cascade.enumerate_q2 eng) in
  checki "Q2 size" 1 (List.length q2_out);
  let q1_out = List.of_seq (E.Cascade.enumerate_q1 eng) in
  checki "Q1 size" 2 (List.length q1_out);
  (* A further R update dirties Q1 again. *)
  apply "R" [ 9; 2 ] 1;
  (try
     ignore (List.of_seq (E.Cascade.enumerate_q1 eng));
     Alcotest.fail "expected dirty rejection"
   with Invalid_argument _ -> ());
  ignore (List.of_seq (E.Cascade.enumerate_q2 eng));
  checki "Q1 after refresh" 4 (List.length (List.of_seq (E.Cascade.enumerate_q1 eng)))

let cascade_random =
  QCheck.Test.make ~count:40 ~name:"cascade Q1 = standalone Q1 on random streams"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 60)
           (quad (int_range 0 2) (int_range 0 4) (int_range 0 4) (int_range (-1) 1))))
    (fun ops ->
      let db = empty_db E.Cascade.q2.Cq.atoms in
      let eng = E.Cascade.create db in
      let base = E.Cascade.Standalone.create () in
      let ops =
        validize
          (List.map
             (fun (r, x, y, p) ->
               ((match r with 0 -> "R" | 1 -> "S" | _ -> "T"), [ x; y ], p))
             ops)
      in
      List.iter
        (fun (rel, t, p) ->
          let u = U.make ~rel ~tuple:(tup t) ~payload:p in
          E.Cascade.apply_update eng u;
          E.Cascade.Standalone.apply_update base u)
        ops;
      ignore (Seq.fold_left (fun n _ -> n + 1) 0 (E.Cascade.enumerate_q2 eng));
      let collect seq =
        let r = Rel.create (S.of_list [ "A"; "B"; "C"; "D" ]) in
        Seq.iter (fun (t, p) -> Rel.add_entry r t p) seq;
        r
      in
      Rel.equal (collect (E.Cascade.enumerate_q1 eng))
        (collect (E.Cascade.Standalone.enumerate base)))

(* --- insert-only (Sec. 4.6) --------------------------------------------- *)

let insert_only_random =
  QCheck.Test.make ~count:40 ~name:"insert-only engine = delta engine on insert streams"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 80)
           (triple (int_range 0 2) (int_range 0 4) (int_range 0 4))))
    (fun ops ->
      let mono = E.Insert_only.create () in
      let base = E.Insert_only.With_deletes.create () in
      List.iter
        (fun (r, x, y) ->
          (match r with
          | 0 -> E.Insert_only.insert_r mono ~a:x ~b:y 1
          | 1 -> E.Insert_only.insert_s mono ~b:x ~c:y 1
          | _ -> E.Insert_only.insert_t mono ~c:x ~d:y 1);
          E.Insert_only.With_deletes.update base
            (match r with 0 -> `R | 1 -> `S | _ -> `T)
            ~x ~y 1)
        ops;
      let collect seq =
        let r = Rel.create (S.of_list [ "A"; "B"; "C"; "D" ]) in
        Seq.iter (fun (t, p) -> Rel.add_entry r t p) seq;
        r
      in
      Rel.equal (collect (E.Insert_only.enumerate mono))
        (collect (E.Insert_only.With_deletes.enumerate base)))

let insert_only_amortized () =
  (* Monotone activation: total work is O(#inserts), even on the
     adversarial order that inserts all R tuples before their S and T
     partners exist. *)
  let eng = E.Insert_only.create () in
  let n = 2000 in
  for i = 1 to n do
    E.Insert_only.insert_r eng ~a:i ~b:1 1
  done;
  for i = 1 to n do
    E.Insert_only.insert_t eng ~c:i ~d:0 1
  done;
  E.Insert_only.insert_s eng ~b:1 ~c:1 1;
  (* Activating the n pending R tuples costs O(n) once — amortized O(1). *)
  checkb "work linear in inserts" true (E.Insert_only.work eng <= 4 * (2 * n + 1));
  checki "output size" n (E.Insert_only.output_size eng)

(* --- CQAP runtimes (Ex. 4.6) -------------------------------------------- *)

let cqap_runtimes () =
  let module TD = E.Cqap_runtime.Triangle_detect in
  let d = TD.create () in
  TD.update d ~x:1 ~y:2 1;
  TD.update d ~x:2 ~y:3 1;
  TD.update d ~x:3 ~y:1 1;
  checkb "triangle detected" true (TD.answer d ~a:1 ~b:2 ~c:3);
  checkb "no triangle" false (TD.answer d ~a:2 ~b:1 ~c:3);
  TD.update d ~x:2 ~y:3 (-1);
  checkb "deleted edge breaks it" false (TD.answer d ~a:1 ~b:2 ~c:3);
  let module ET = E.Cqap_runtime.Edge_triangles in
  let e = ET.create () in
  List.iter (fun (x, y) -> ET.update e ~x ~y 1) [ (1, 2); (2, 3); (3, 1); (2, 4); (4, 1) ];
  let cs = List.sort compare (List.map fst (ET.answer e ~a:1 ~b:2)) in
  Alcotest.(check (list int)) "triangles through edge (1,2)" [ 3; 4 ] cs;
  Alcotest.(check (list int)) "no base edge, no triangles" []
    (List.map fst (ET.answer e ~a:9 ~b:9));
  let module LJ = E.Cqap_runtime.Lookup_join in
  let l = LJ.create () in
  LJ.update_s l ~a:1 ~b:5 1;
  LJ.update_s l ~a:2 ~b:5 1;
  LJ.update_t l ~b:5 2;
  let out = List.sort compare (List.of_seq (LJ.answer l ~b:5)) in
  Alcotest.(check (list (pair int int))) "Q(A|B) answers" [ (1, 2); (2, 2) ] out;
  LJ.update_t l ~b:5 (-2);
  checki "guard empties answers" 0 (List.length (List.of_seq (LJ.answer l ~b:5)))

(* --- static/dynamic engine (Ex. 4.14) ------------------------------------ *)

let static_dynamic_unit () =
  let db = empty_db E.Static_dynamic_engine.query.Cq.atoms in
  (* Preload the static relation T. *)
  let trel = D.Database.Z.find db "T" in
  Rel.add_entry trel (tup [ 1; 100 ]) 1;
  Rel.add_entry trel (tup [ 1; 101 ]) 1;
  Rel.add_entry trel (tup [ 2; 200 ]) 1;
  let eng = E.Static_dynamic_engine.create db in
  let apply rel l p =
    E.Static_dynamic_engine.apply_update eng (U.make ~rel ~tuple:(tup l) ~payload:p)
  in
  apply "R" [ 1; 7 ] 1;
  apply "S" [ 1; 1 ] 1;
  apply "S" [ 1; 2 ] 1;
  let out = E.Static_dynamic_engine.output eng in
  (* (A=1,B=1,C∈{100,101}) and (A=1,B=2,C=200). *)
  checki "output" 3 (Rel.size out);
  (try
     apply "T" [ 3; 300 ] 1;
     Alcotest.fail "static update must be rejected"
   with Invalid_argument _ -> ());
  (* Deleting the R tuple kills everything (Σ_D R(A,D) becomes 0). *)
  apply "R" [ 1; 7 ] (-1);
  checki "empty" 0 (Rel.size (E.Static_dynamic_engine.output eng))

(* --- integration: the Fig. 4 retailer workload ------------------------- *)

let retailer_integration () =
  (* All four strategies over mixed batches (inserts + dimension churn)
     agree with each other and with from-scratch evaluation. *)
  let module R = Ivm_workload.Retailer in
  let spec = { R.locations = 6; zips_per_location = 3; dates = 5; skus = 40; skew = 1.0 } in
  let mk kind =
    let gen = R.create spec in
    let db = R.initial_database gen in
    (gen, E.Strategy.create kind R.query (R.order ()) db)
  in
  let engines =
    List.map mk
      [ E.Strategy.Eager_fact; E.Strategy.Eager_list; E.Strategy.Lazy_fact;
        E.Strategy.Lazy_list ]
  in
  (* Identical streams: same seed per engine. *)
  for _ = 1 to 5 do
    List.iter
      (fun (gen, eng) ->
        List.iter (E.Strategy.apply eng) (R.next_mixed_batch gen ~size:200 ~churn:0.1))
      engines;
    let outs = List.map (fun (_, e) -> E.Strategy.output e) engines in
    match outs with
    | first :: rest ->
        checkb "nonempty output" true (Rel.size first > 0);
        List.iter (fun o -> checkb "strategies agree" true (Rel.equal first o)) rest
    | [] -> ()
  done;
  (* Cross-check against recomputation over one engine's base state. *)
  let _, eager = List.hd engines in
  let expected = recompute (E.Strategy.tree eager) R.query in
  checkb "matches recompute" true (Rel.equal (E.Strategy.output eager) expected)

(* --- k-clique counting (Sec. 3.3 extension) ----------------------------- *)

let kclique_known_graphs () =
  let binom n k =
    let rec go acc i = if i > k then acc else go (acc * (n - i + 1) / i) (i + 1) in
    go 1 1
  in
  List.iter
    (fun k ->
      let g = E.Kclique.create ~k in
      let n = 8 in
      for u = 1 to n do
        for v = u + 1 to n do
          ignore (E.Kclique.insert g u v)
        done
      done;
      checki (Printf.sprintf "K%d has C(%d,%d) %d-cliques" n n k k) (binom n k)
        (E.Kclique.count g);
      checki "recompute agrees" (E.Kclique.recompute g) (E.Kclique.count g);
      (* Remove one edge: cliques through it disappear. *)
      let destroyed = E.Kclique.delete g 1 2 in
      checki "destroyed = C(n-2, k-2)" (binom (n - 2) (k - 2)) destroyed;
      checki "count after delete" (binom n k - binom (n - 2) (k - 2)) (E.Kclique.count g))
    [ 2; 3; 4; 5 ];
  (* A bipartite graph has no triangles. *)
  let g = E.Kclique.create ~k:3 in
  for u = 1 to 5 do
    for v = 6 to 10 do
      ignore (E.Kclique.insert g u v)
    done
  done;
  checki "bipartite: no triangles" 0 (E.Kclique.count g);
  Alcotest.check_raises "duplicate edge" (Invalid_argument "Kclique.insert: duplicate edge")
    (fun () -> ignore (E.Kclique.insert g 1 6));
  Alcotest.check_raises "missing edge" (Invalid_argument "Kclique.delete: no such edge")
    (fun () -> ignore (E.Kclique.delete g 1 2))

let kclique_random =
  QCheck.Test.make ~count:40 ~name:"k-clique count = recompute on random edge streams"
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 3 5)
           (list_size (int_range 1 60) (pair (int_range 1 8) (int_range 1 8)))))
    (fun (k, ops) ->
      let g = E.Kclique.create ~k in
      List.iter
        (fun (u, v) ->
          if u <> v then
            if E.Kclique.has_edge g u v then ignore (E.Kclique.delete g u v)
            else ignore (E.Kclique.insert g u v))
        ops;
      E.Kclique.count g = E.Kclique.recompute g)

let qt t = QCheck_alcotest.to_alcotest ~long:false t

let () =
  Alcotest.run "engine"
    [
      ( "view trees",
        [
          Alcotest.test_case "Fig. 3 maintenance" `Quick view_tree_fig3;
          Alcotest.test_case "constant-size deltas" `Quick view_tree_single_tuple_deltas;
          Alcotest.test_case "delta enumeration (footnote 2)" `Quick delta_enumeration;
          qt iter_output_matches_enumerate;
          qt view_tree_random;
        ] );
      ("strategies", [ qt strategies_agree ]);
      ( "triangle (Sec. 3)",
        [ Alcotest.test_case "Fig. 2 worked example" `Quick triangle_fig2;
          qt triangle_engines_agree ] );
      ( "fd-reduct (Ex. 4.12)",
        [ Alcotest.test_case "constant-time maintenance under FDs" `Quick fd_engine_unit ] );
      ( "pk-fk (Ex. 4.13)",
        [ Alcotest.test_case "valid out-of-order batches" `Quick pkfk_unit; qt pkfk_random ]
      );
      ( "cascade (Sec. 4.2)",
        [ Alcotest.test_case "piggybacked maintenance" `Quick cascade_unit;
          qt cascade_random ] );
      ( "insert-only (Sec. 4.6)",
        [ qt insert_only_random;
          Alcotest.test_case "amortized constant activation" `Quick insert_only_amortized ]
      );
      ("cqap (Ex. 4.6)", [ Alcotest.test_case "three runtimes" `Quick cqap_runtimes ]);
      ( "static/dynamic (Ex. 4.14)",
        [ Alcotest.test_case "engine" `Quick static_dynamic_unit ] );
      ( "k-clique (Sec. 3.3)",
        [ Alcotest.test_case "known graphs" `Quick kclique_known_graphs; qt kclique_random ]
      );
      ( "integration (Fig. 4 workload)",
        [ Alcotest.test_case "four strategies on retailer batches" `Quick
            retailer_integration ] );
    ]
