(* The planner (Sec. 6): verdicts on the paper's example queries. *)

module P = Core.Planner
module Cq = Core.Ivm.Cq
module Fd = Core.Ivm.Fd
module Sd = Ivm_query.Static_dynamic

let checkb = Alcotest.(check bool)

let is_best = function P.Best_possible _ -> true | _ -> false
let is_amortized = function P.Amortized_best _ -> true | _ -> false
let is_wco = function P.Worst_case_optimal _ -> true | _ -> false
let is_delta = function P.Delta_only _ -> true | _ -> false

let q_hierarchical_goes_best () =
  let q =
    Cq.make ~name:"Q" ~free:[ "Y"; "X"; "Z" ]
      [ Cq.atom "R" [ "Y"; "X" ]; Cq.atom "S" [ "Y"; "Z" ] ]
  in
  let a = P.analyze q in
  checkb "best possible" true (is_best a.P.verdict);
  checkb "order provided" true
    (match a.P.verdict with P.Best_possible { order; _ } -> order <> None | _ -> false)

let fd_rescue () =
  let q =
    Cq.make ~name:"Q" ~free:[ "Z"; "Y"; "X"; "W" ]
      [ Cq.atom "R" [ "X"; "W" ]; Cq.atom "S" [ "X"; "Y" ]; Cq.atom "T" [ "Y"; "Z" ] ]
  in
  checkb "delta without FDs" true
    (let a = P.analyze q in
     (* acyclic path join: amortized best under insert-only *)
     is_amortized a.P.verdict);
  let fds = [ Fd.make [ "X" ] [ "Y" ]; Fd.make [ "Y" ] [ "Z" ] ] in
  let a = P.analyze ~fds q in
  checkb "best under FDs (Thm. 4.11)" true (is_best a.P.verdict)

let triangle_goes_wco () =
  let q =
    Cq.make ~name:"tri" ~free:[]
      [ Cq.atom "R" [ "A"; "B" ]; Cq.atom "S" [ "B"; "C" ]; Cq.atom "T" [ "C"; "A" ] ]
  in
  let a = P.analyze q in
  checkb "worst-case optimal (IVM^eps)" true (is_wco a.P.verdict);
  checkb "not acyclic" false a.P.alpha_acyclic

let cqap_access () =
  let q =
    Cq.make ~name:"detect" ~free:[ "A"; "B"; "C" ]
      [ Cq.atom "E1" [ "A"; "B" ]; Cq.atom "E2" [ "B"; "C" ]; Cq.atom "E3" [ "C"; "A" ] ]
  in
  let a = P.analyze ~access:[ "A"; "B"; "C" ] q in
  checkb "tractable CQAP wins" true (is_best a.P.verdict);
  checkb "flag set" true (a.P.cqap_tractable = Some true)

let static_dynamic_rescue () =
  let q =
    Cq.make ~name:"Q" ~free:[ "A"; "B"; "C" ]
      [ Cq.atom "R" [ "A"; "D" ]; Cq.atom "S" [ "A"; "B" ]; Cq.atom "T" [ "B"; "C" ] ]
  in
  let ad = [ ("R", Sd.Dynamic); ("S", Sd.Dynamic); ("T", Sd.Static) ] in
  let a = P.analyze ~adornment:ad q in
  checkb "sd-tractable wins" true (is_best a.P.verdict)

let acyclic_amortized () =
  let q =
    Cq.make ~name:"path" ~free:[ "A"; "B"; "C"; "D" ]
      [ Cq.atom "R" [ "A"; "B" ]; Cq.atom "S" [ "B"; "C" ]; Cq.atom "T" [ "C"; "D" ] ]
  in
  checkb "amortized for acyclic" true (is_amortized (P.analyze q).P.verdict)

let cyclic_nonbinary_delta () =
  let q =
    Cq.make ~name:"lw" ~free:[]
      [
        Cq.atom "R" [ "A"; "B"; "C" ];
        Cq.atom "S" [ "B"; "C"; "D" ];
        Cq.atom "T" [ "C"; "D"; "A" ];
        Cq.atom "U" [ "D"; "A"; "B" ];
      ]
  in
  let a = P.analyze q in
  checkb "Loomis-Whitney falls back to delta" true (is_delta a.P.verdict)

let report_prints () =
  let q = Cq.make ~name:"Q" ~free:[ "A" ] [ Cq.atom "R" [ "A"; "B" ]; Cq.atom "S" [ "B" ] ] in
  let a = P.analyze q in
  let s = Format.asprintf "%a" P.pp_analysis a in
  checkb "mentions the query" true (String.length s > 40)

let () =
  Alcotest.run "planner"
    [
      ( "verdicts",
        [
          Alcotest.test_case "q-hierarchical -> best possible" `Quick q_hierarchical_goes_best;
          Alcotest.test_case "FDs rescue Ex. 4.12" `Quick fd_rescue;
          Alcotest.test_case "triangle -> IVM^eps" `Quick triangle_goes_wco;
          Alcotest.test_case "CQAP access patterns" `Quick cqap_access;
          Alcotest.test_case "static relations rescue Ex. 4.14" `Quick static_dynamic_rescue;
          Alcotest.test_case "acyclic -> amortized insert-only" `Quick acyclic_amortized;
          Alcotest.test_case "cyclic non-binary -> delta" `Quick cyclic_nonbinary_delta;
          Alcotest.test_case "report rendering" `Quick report_prints;
        ] );
    ]
