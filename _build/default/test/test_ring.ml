(* Ring and semiring laws (Sec. 2), checked exhaustively on small values
   and by qcheck properties on random ones. *)

let check = Alcotest.(check bool)

(* Property-based ring laws for a ring with a generator. *)
module Laws (R : Ivm_ring.Sigs.RING) = struct
  let laws ~name (gen : R.t QCheck.arbitrary) =
    let t3 = QCheck.triple gen gen gen in
    let t2 = QCheck.pair gen gen in
    [
      QCheck.Test.make ~name:(name ^ ": add associative") t3 (fun (a, b, c) ->
          R.equal (R.add a (R.add b c)) (R.add (R.add a b) c));
      QCheck.Test.make ~name:(name ^ ": add commutative") t2 (fun (a, b) ->
          R.equal (R.add a b) (R.add b a));
      QCheck.Test.make ~name:(name ^ ": mul associative") t3 (fun (a, b, c) ->
          R.equal (R.mul a (R.mul b c)) (R.mul (R.mul a b) c));
      QCheck.Test.make ~name:(name ^ ": mul commutative") t2 (fun (a, b) ->
          R.equal (R.mul a b) (R.mul b a));
      QCheck.Test.make ~name:(name ^ ": zero is add identity") gen (fun a ->
          R.equal (R.add a R.zero) a);
      QCheck.Test.make ~name:(name ^ ": one is mul identity") gen (fun a ->
          R.equal (R.mul a R.one) a);
      QCheck.Test.make ~name:(name ^ ": zero annihilates") gen (fun a ->
          R.is_zero (R.mul a R.zero));
      QCheck.Test.make ~name:(name ^ ": distributivity") t3 (fun (a, b, c) ->
          R.equal (R.mul a (R.add b c)) (R.add (R.mul a b) (R.mul a c)));
      QCheck.Test.make ~name:(name ^ ": additive inverse") gen (fun a ->
          R.is_zero (R.add a (R.neg a)));
      QCheck.Test.make ~name:(name ^ ": sub = add neg") t2 (fun (a, b) ->
          R.equal (R.sub a b) (R.add a (R.neg b)));
    ]
end

module Int_laws = Laws (Ivm_ring.Int_ring)

(* Floats: use small-integer-valued floats so associativity is exact. *)
module Float_laws = Laws (Ivm_ring.Float_ring)

let float_gen = QCheck.map float_of_int (QCheck.int_range (-1000) 1000)

module PInt = Ivm_ring.Product.Make (Ivm_ring.Int_ring) (Ivm_ring.Int_ring)
module Product_laws = Laws (PInt)

(* Count_sum satisfies the RING signature structurally; wrap it. *)
module CS : Ivm_ring.Sigs.RING with type t = Ivm_ring.Count_sum.t = Ivm_ring.Count_sum
module Cs_laws = Laws (CS)

let cs_gen =
  QCheck.map
    (fun (c, s) -> { Ivm_ring.Count_sum.count = c; sum = float_of_int s })
    (QCheck.pair (QCheck.int_range (-50) 50) (QCheck.int_range (-50) 50))

(* Tropical semiring laws (no inverse, so spelled out by hand). *)
let tropical_tests =
  let module T = Ivm_ring.Tropical in
  let gen =
    QCheck.map
      (function None -> T.Infinity | Some x -> T.Finite (float_of_int x))
      (QCheck.option (QCheck.int_range (-100) 100))
  in
  [
    QCheck.Test.make ~name:"tropical: add = min, assoc" (QCheck.triple gen gen gen)
      (fun (a, b, c) -> T.equal (T.add a (T.add b c)) (T.add (T.add a b) c));
    QCheck.Test.make ~name:"tropical: mul = plus, distributes" (QCheck.triple gen gen gen)
      (fun (a, b, c) -> T.equal (T.mul a (T.add b c)) (T.add (T.mul a b) (T.mul a c)));
    QCheck.Test.make ~name:"tropical: identities" gen (fun a ->
        T.equal (T.add a T.zero) a && T.equal (T.mul a T.one) a);
    QCheck.Test.make ~name:"tropical: zero annihilates" gen (fun a ->
        T.is_zero (T.mul a T.zero));
  ]

(* Boolean semiring: exhaustive. *)
let bool_unit () =
  let module B = Ivm_ring.Bool_semiring in
  let all = [ true; false ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check "add = or" (a || b) (B.add a b);
          check "mul = and" (a && b) (B.mul a b))
        all;
      check "identity add" a (B.add a B.zero);
      check "identity mul" a (B.mul a B.one))
    all

(* Count_sum: AVG and the lifting. *)
let count_sum_unit () =
  let module C = Ivm_ring.Count_sum in
  let a = C.of_value 10. and b = C.of_value 20. in
  let s = C.add a b in
  Alcotest.(check int) "count" 2 s.C.count;
  Alcotest.(check (float 1e-9)) "sum" 30. s.C.sum;
  Alcotest.(check (float 1e-9)) "avg" 15. (C.avg s);
  (* mul: (1, 10) * (1, 20) = (1, 30): sums add across join branches. *)
  let m = C.mul a b in
  Alcotest.(check int) "mul count" 1 m.C.count;
  Alcotest.(check (float 1e-9)) "mul sum" 30. m.C.sum;
  (* a join branch with multiplicity 2 doubles the other side's sums *)
  let two = C.add C.one C.one in
  let m2 = C.mul two a in
  Alcotest.(check int) "mul count 2" 2 m2.C.count;
  Alcotest.(check (float 1e-9)) "mul sum 2" 20. m2.C.sum

(* Cofactor ring: the degree-2 statistics of a two-feature join. *)
let cofactor_unit () =
  let module C = Ivm_ring.Cofactor in
  C.set_dimension 2;
  let x = C.of_feature 0 3. (* feature 0 = 3 *) and y = C.of_feature 1 4. in
  let joint = C.mul x y in
  Alcotest.(check int) "count" 1 joint.C.count;
  Alcotest.(check (float 1e-9)) "sum x" 3. joint.C.sums.(0);
  Alcotest.(check (float 1e-9)) "sum y" 4. joint.C.sums.(1);
  Alcotest.(check (float 1e-9)) "cof xx" 9. joint.C.cof.(0).(0);
  Alcotest.(check (float 1e-9)) "cof xy" 12. joint.C.cof.(0).(1);
  Alcotest.(check (float 1e-9)) "cof yy" 16. joint.C.cof.(1).(1);
  (* additivity: two tuples accumulate *)
  let s = C.add joint joint in
  Alcotest.(check int) "acc count" 2 s.C.count;
  Alcotest.(check (float 1e-9)) "acc cof xy" 24. s.C.cof.(0).(1);
  (* inverse deletes *)
  Alcotest.(check bool) "delete" true (C.is_zero (C.sub joint joint))

let cofactor_laws =
  let module C = Ivm_ring.Cofactor in
  C.set_dimension 2;
  let gen =
    QCheck.map
      (fun ((c, a), b) ->
        let x = C.of_feature 0 (float_of_int a) and y = C.of_feature 1 (float_of_int b) in
        let v = C.mul x y in
        if c then v else C.neg v)
      (QCheck.pair (QCheck.pair QCheck.bool (QCheck.int_range (-20) 20))
         (QCheck.int_range (-20) 20))
  in
  [
    QCheck.Test.make ~name:"cofactor: add commutative" (QCheck.pair gen gen) (fun (a, b) ->
        C.equal (C.add a b) (C.add b a));
    QCheck.Test.make ~name:"cofactor: distributivity" (QCheck.triple gen gen gen)
      (fun (a, b, c) -> C.equal (C.mul a (C.add b c)) (C.add (C.mul a b) (C.mul a c)));
    QCheck.Test.make ~name:"cofactor: inverse" gen (fun a -> C.is_zero (C.add a (C.neg a)));
  ]


(* Provenance polynomials (the K-relation model of Sec. 2, [13]). *)
let provenance_unit () =
  let module P = Ivm_ring.Provenance in
  let r1 = P.of_id "r1" and s1 = P.of_id "s1" and s2 = P.of_id "s2" in
  (* (s1 + s2) * r1 = r1·s1 + r1·s2: two derivations. *)
  let p = P.mul (P.add s1 s2) r1 in
  Alcotest.(check int) "derivations" 2 (P.derivation_count p);
  (* Distributivity: r1*(s1+s2) = r1*s1 + r1*s2. *)
  Alcotest.(check bool) "distributes" true
    (P.equal p (P.add (P.mul r1 s1) (P.mul r1 s2)));
  (* Identities and annihilation. *)
  Alcotest.(check bool) "one" true (P.equal (P.mul p P.one) p);
  Alcotest.(check bool) "zero" true (P.is_zero (P.mul p P.zero));
  (* Z[X] deletes: removing the s1 derivation leaves r1·s2. *)
  let p' = P.sub p (P.mul r1 s1) in
  Alcotest.(check bool) "delete derivation" true (P.equal p' (P.mul r1 s2));
  Alcotest.(check bool) "full cancel" true (P.is_zero (P.sub p p));
  (* Self-join provenance keeps exponents: r1 * r1 = r1^2. *)
  let sq = P.mul r1 r1 in
  Alcotest.(check string) "squares" "r1^2" (Format.asprintf "%a" P.pp sq);
  (* Factorization: evaluating under id -> multiplicity recovers counts. *)
  let count =
    P.eval ~zero:0 ~add:( + ) ~mul:( * ) ~of_int:Fun.id
      ~var:(function "r1" -> 2 | _ -> 3) p
  in
  Alcotest.(check int) "eval to Z" ((3 * 2) + (3 * 2)) count

let provenance_laws =
  let module P = Ivm_ring.Provenance in
  let gen =
    QCheck.map
      (fun (ids, c) ->
        let base =
          List.fold_left (fun acc i -> P.mul acc (P.of_id (Printf.sprintf "x%d" (i mod 3))))
            P.one ids
        in
        if c then base else P.neg base)
      (QCheck.pair (QCheck.list_of_size (QCheck.Gen.int_range 0 3) (QCheck.int_range 0 5))
         QCheck.bool)
  in
  [
    QCheck.Test.make ~name:"provenance: add commutative" (QCheck.pair gen gen)
      (fun (a, b) -> P.equal (P.add a b) (P.add b a));
    QCheck.Test.make ~name:"provenance: mul commutative" (QCheck.pair gen gen)
      (fun (a, b) -> P.equal (P.mul a b) (P.mul b a));
    QCheck.Test.make ~name:"provenance: mul associative" (QCheck.triple gen gen gen)
      (fun (a, b, c) -> P.equal (P.mul a (P.mul b c)) (P.mul (P.mul a b) c));
    QCheck.Test.make ~name:"provenance: distributivity" (QCheck.triple gen gen gen)
      (fun (a, b, c) -> P.equal (P.mul a (P.add b c)) (P.add (P.mul a b) (P.mul a c)));
    QCheck.Test.make ~name:"provenance: inverse (Z[X])" gen (fun a ->
        P.is_zero (P.add a (P.neg a)));
  ]

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "ring"
    [
      qsuite "int ring laws" (Int_laws.laws ~name:"Z" (QCheck.int_range (-10000) 10000));
      qsuite "float ring laws" (Float_laws.laws ~name:"R" float_gen);
      qsuite "product ring laws"
        (Product_laws.laws ~name:"ZxZ"
           (QCheck.pair (QCheck.int_range (-100) 100) (QCheck.int_range (-100) 100)));
      qsuite "count-sum ring laws" (Cs_laws.laws ~name:"count_sum" cs_gen);
      qsuite "tropical semiring" tropical_tests;
      qsuite "cofactor ring laws" cofactor_laws;
      qsuite "provenance semiring laws" provenance_laws;
      ( "units",
        [
          Alcotest.test_case "bool semiring" `Quick bool_unit;
          Alcotest.test_case "count-sum avg" `Quick count_sum_unit;
          Alcotest.test_case "cofactor statistics" `Quick cofactor_unit;
          Alcotest.test_case "provenance polynomials" `Quick provenance_unit;
        ] );
    ]
