(* IVM^ε (Sec. 3.3, Sec. 5): partition invariants, the worst-case
   optimal triangle engine against the delta reference, and the
   ε-parameterized binary join against brute force. *)

module E = Ivm_engine
module Eps = Ivm_eps

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- partitions --------------------------------------------------------- *)

let partition_moves () =
  let p = Eps.Partition.create ~name:"R" ~fst:"A" ~snd:"B" ~threshold:4 in
  (* Degree grows: key 1 moves heavy at degree 2θ = 8. *)
  let moved = ref 0 in
  for b = 1 to 8 do
    match Eps.Partition.update p 1 b 1 with
    | `Moved_to_heavy -> incr moved
    | `Moved_to_light | `Stable -> ()
  done;
  checki "one move up" 1 !moved;
  checkb "now heavy" true (Eps.Partition.is_heavy p 1);
  checki "degree" 8 (Eps.Partition.degree p 1);
  checki "light part empty for key 1" 0 (E.Edges.deg_fst p.Eps.Partition.light 1);
  (* Shrink below θ/2 = 2: moves back. *)
  let moved_down = ref 0 in
  for b = 1 to 7 do
    match Eps.Partition.update p 1 b (-1) with
    | `Moved_to_light -> incr moved_down
    | `Moved_to_heavy | `Stable -> ()
  done;
  checki "one move down" 1 !moved_down;
  checkb "light again" false (Eps.Partition.is_heavy p 1);
  checki "degree after deletes" 1 (Eps.Partition.degree p 1)

let partition_invariant =
  QCheck.Test.make ~count:60 ~name:"partition: keys live in exactly one part"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 200)
           (triple (int_range 0 5) (int_range 0 5) (int_range (-1) 1))))
    (fun ops ->
      let p = Eps.Partition.create ~name:"R" ~fst:"A" ~snd:"B" ~threshold:3 in
      List.iter (fun (a, b, m) -> if m <> 0 then ignore (Eps.Partition.update p a b m)) ops;
      List.for_all
        (fun a ->
          let in_light = E.Edges.deg_fst p.Eps.Partition.light a in
          let in_heavy = E.Edges.deg_fst p.Eps.Partition.heavy a in
          (in_light = 0 || in_heavy = 0)
          && Eps.Partition.is_heavy p a = (in_heavy > 0)
          (* hysteresis bounds: light degree < 2θ *)
          && (in_light < 2 * p.Eps.Partition.threshold))
        [ 0; 1; 2; 3; 4; 5 ])

(* --- the IVM^ε triangle engine ------------------------------------------ *)

let eps_triangle_agrees =
  QCheck.Test.make ~count:25
    ~name:"IVM^eps triangle count = delta reference (inserts+deletes, skew)"
    (QCheck.make
       QCheck.Gen.(
         pair (float_range 0.1 0.9)
           (list_size (int_range 50 400)
              (quad (int_range 0 2) (int_range 1 8) (int_range 1 8) (int_range (-1) 1)))))
    (fun (eps, ops) ->
      let reference = E.Triangle.Delta.create () in
      let tested = Eps.Triangle_count.create ~epsilon:eps () in
      List.iter
        (fun (r, a, b, m) ->
          if m <> 0 then begin
            let rel =
              match r with 0 -> E.Triangle.R | 1 -> E.Triangle.S | _ -> E.Triangle.T
            in
            E.Triangle.Delta.update reference rel ~a ~b m;
            Eps.Triangle_count.update tested rel ~a ~b m
          end)
        ops;
      E.Triangle.Delta.count reference = Eps.Triangle_count.count tested)

let eps_triangle_skewed_heavy () =
  (* A hub node forces heavy keys and part moves; count stays exact. *)
  let reference = E.Triangle.Delta.create () in
  let tested = Eps.Triangle_count.create ~epsilon:0.5 () in
  let upd rel a b m =
    E.Triangle.Delta.update reference rel ~a ~b m;
    Eps.Triangle_count.update tested rel ~a ~b m
  in
  for i = 1 to 300 do
    upd E.Triangle.R 1 i 1;
    (* heavy A-key 1 *)
    upd E.Triangle.S i (i mod 17) 1;
    upd E.Triangle.T (i mod 17) 1 1
  done;
  checki "skewed count" (E.Triangle.Delta.count reference) (Eps.Triangle_count.count tested);
  checkb "rebalanced at least once" true (Eps.Triangle_count.rebalances tested > 0);
  (* Delete the hub: still exact. *)
  for i = 1 to 300 do
    upd E.Triangle.R 1 i (-1)
  done;
  checki "after hub delete" (E.Triangle.Delta.count reference)
    (Eps.Triangle_count.count tested)

let eps_engine_interface () =
  (* The ENGINE packaging at ε = 1/2. *)
  let module H = Eps.Triangle_count.Half in
  let e = H.create () in
  H.update e E.Triangle.R ~a:1 ~b:2 1;
  H.update e E.Triangle.S ~a:2 ~b:3 1;
  H.update e E.Triangle.T ~a:3 ~b:1 1;
  checki "one triangle" 1 (H.count e);
  H.update e E.Triangle.S ~a:2 ~b:3 (-1);
  checki "deleted" 0 (H.count e)

(* --- the binary-join trade-off engine (Fig. 7) --------------------------- *)

let binary_join_agrees =
  QCheck.Test.make ~count:40 ~name:"binary join = brute force at every epsilon"
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 0 4)
           (list_size (int_range 1 150)
              (quad bool (int_range 1 6) (int_range 1 6) (int_range (-1) 1)))))
    (fun (eps_i, ops) ->
      let epsilon = float_of_int eps_i /. 4. in
      let eng = Eps.Binary_join.create ~epsilon () in
      let r = Hashtbl.create 16 and s = Hashtbl.create 16 in
      let bump tbl k m =
        Hashtbl.replace tbl k (m + Option.value (Hashtbl.find_opt tbl k) ~default:0)
      in
      List.iter
        (fun (is_r, a, b, m) ->
          if m <> 0 then
            if is_r then begin
              Eps.Binary_join.update_r eng ~a ~b m;
              bump r (a, b) m
            end
            else begin
              Eps.Binary_join.update_s eng ~b m;
              bump s b m
            end)
        ops;
      let expected = Hashtbl.create 16 in
      Hashtbl.iter
        (fun (a, b) p ->
          if p <> 0 then
            bump expected a (p * Option.value (Hashtbl.find_opt s b) ~default:0))
        r;
      let exp =
        Hashtbl.fold (fun a v acc -> if v <> 0 then (a, v) :: acc else acc) expected []
        |> List.sort compare
      in
      Eps.Binary_join.output eng = exp)

let qt t = QCheck_alcotest.to_alcotest ~long:false t

let () =
  Alcotest.run "eps"
    [
      ( "partitions",
        [ Alcotest.test_case "hysteresis moves" `Quick partition_moves; qt partition_invariant ]
      );
      ( "triangle count",
        [
          qt eps_triangle_agrees;
          Alcotest.test_case "skewed stream with rebalances" `Quick eps_triangle_skewed_heavy;
          Alcotest.test_case "ENGINE interface" `Quick eps_engine_interface;
        ] );
      ("binary join (Fig. 7)", [ qt binary_join_agrees ]);
    ]
