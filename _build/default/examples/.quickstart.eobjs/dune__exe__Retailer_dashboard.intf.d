examples/retailer_dashboard.mli:
