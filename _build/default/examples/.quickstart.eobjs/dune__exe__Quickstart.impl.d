examples/quickstart.ml: Core Cq Database Format Ivm_engine Ivm_eps Option Schema Seq Tuple Update Variable_order View_tree
