examples/quickstart.mli:
