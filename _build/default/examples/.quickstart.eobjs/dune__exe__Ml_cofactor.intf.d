examples/ml_cofactor.mli:
