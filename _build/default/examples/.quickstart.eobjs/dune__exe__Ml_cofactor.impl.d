examples/ml_cofactor.ml: Array Format Ivm_data Ivm_ring
