examples/retailer_dashboard.ml: Core Cq Format Ivm_workload List Strategy Sys
