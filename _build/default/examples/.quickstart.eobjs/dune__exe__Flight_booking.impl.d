examples/flight_booking.ml: Core Cq Cqap Format Ivm_engine List String
