examples/social_triangles.ml: Format Ivm_engine Ivm_eps Ivm_lowerbound Ivm_workload Random Sys
