(* Quickstart: declare a query, let the planner classify it, maintain it
   under updates with a view tree, and enumerate the output.

   Run with: dune exec examples/quickstart.exe *)

open Core.Ivm

let tup = Tuple.of_ints

let () =
  (* The q-hierarchical query of the paper's Fig. 3:
     Q(Y, X, Z) = R(Y, X) · S(Y, Z). *)
  let q =
    Cq.make ~name:"Q" ~free:[ "Y"; "X"; "Z" ]
      [ Cq.atom "R" [ "Y"; "X" ]; Cq.atom "S" [ "Y"; "Z" ] ]
  in
  Format.printf "Query: %a@.@." Cq.pp q;

  (* 1. Ask the planner what maintenance this query admits. *)
  let analysis = Core.Planner.analyze q in
  Format.printf "%a@.@." Core.Planner.pp_analysis analysis;

  (* 2. Build the view tree over an empty database and stream updates. *)
  let db = Database.Z.create () in
  let _ = Database.Z.declare db "R" (Schema.of_list [ "Y"; "X" ]) in
  let _ = Database.Z.declare db "S" (Schema.of_list [ "Y"; "Z" ]) in
  let forest = Option.get (Variable_order.canonical q) in
  Format.printf "View tree order: %a@.@." Variable_order.pp forest;
  let tree = View_tree.build q forest db in

  let insert rel l = View_tree.apply_update tree (Update.insert ~one:1 ~rel (tup l)) in
  let delete rel l =
    View_tree.apply_update tree (Update.make ~rel ~tuple:(tup l) ~payload:(-1))
  in
  insert "R" [ 1; 10 ];
  insert "R" [ 1; 11 ];
  insert "S" [ 1; 20 ];
  insert "S" [ 2; 21 ];
  (* Y = 2 joins nothing yet. *)
  insert "R" [ 2; 12 ];

  (* 3. Enumerate the output with constant delay. *)
  let show () =
    Format.printf "Output:@.";
    Seq.iter
      (fun (t, payload) -> Format.printf "  %a -> %d@." Tuple.pp t payload)
      (View_tree.enumerate tree);
    Format.printf "@."
  in
  show ();

  (* 4. Deletes are just updates with negative payloads. *)
  Format.printf "After deleting R(1, 10):@.";
  delete "R" [ 1; 10 ];
  show ();

  (* 5. The triangle count (Sec. 3), maintained worst-case optimally by
     IVM^eps in O(sqrt N) per update. *)
  let module Tri = Ivm_eps.Triangle_count in
  let module T = Ivm_engine.Triangle in
  let tri = Tri.create ~epsilon:0.5 () in
  Tri.update tri T.R ~a:1 ~b:2 1;
  Tri.update tri T.S ~a:2 ~b:3 1;
  Tri.update tri T.T ~a:3 ~b:1 1;
  Format.printf "Triangle count after three edges: %d@." (Tri.count tri);
  Tri.update tri T.S ~a:2 ~b:3 (-1);
  Format.printf "After deleting S(2,3): %d@." (Tri.count tri)
