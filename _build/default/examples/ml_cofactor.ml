(* In-database machine learning over a view tree (the F-IVM application
   the paper points to in Sec. 6): maintain the gram/cofactor matrix of
   a join result under updates, so a linear regression can be refit at
   any time without touching the data again.

   The join is Orders(store, item, qty) ⋈ Items(item, price): we learn
   qty ~ price. Payloads live in the degree-2 cofactor ring, so a single
   maintained aggregate carries COUNT, SUM(qty), SUM(price),
   SUM(qty*price), SUM(qty²), SUM(price²).

   Run with: dune exec examples/ml_cofactor.exe *)

module C = Ivm_ring.Cofactor
module Rel = Ivm_data.Relation.Make (Ivm_ring.Cofactor)
module S = Ivm_data.Schema
module T = Ivm_data.Tuple

(* Feature indices in the cofactor ring. *)
let f_qty = 0
let f_price = 1

let () =
  C.set_dimension 2;
  (* Base relations with cofactor payloads: lifting maps the measure
     column into the ring (Sec. 2's lifting functions g_X). *)
  let orders = Rel.create (S.of_list [ "store"; "item" ]) in
  let items = Rel.create (S.of_list [ "item" ]) in
  let add_order store item qty =
    Rel.add_entry orders (T.of_ints [ store; item ]) (C.of_feature f_qty qty)
  in
  let del_order store item qty =
    Rel.add_entry orders (T.of_ints [ store; item ]) (C.neg (C.of_feature f_qty qty))
  in
  let add_item item price =
    Rel.add_entry items (T.of_ints [ item ]) (C.of_feature f_price price)
  in

  add_item 1 10.;
  add_item 2 25.;
  add_order 7 1 3.;
  add_order 7 2 1.;
  add_order 8 1 5.;
  add_order 8 2 2.;

  (* The maintained aggregate: Σ_{store,item} Orders · Items. *)
  let aggregate () =
    let joined = Rel.join orders items in
    Rel.sum_payloads joined
  in
  let fit stats =
    (* Simple least squares qty = a * price + b from the cofactors. *)
    let n = float_of_int stats.C.count in
    let sq = stats.C.sums.(f_qty) and sp = stats.C.sums.(f_price) in
    let spq = stats.C.cof.(f_qty).(f_price) and spp = stats.C.cof.(f_price).(f_price) in
    let denom = (n *. spp) -. (sp *. sp) in
    let a = ((n *. spq) -. (sp *. sq)) /. denom in
    let b = (sq -. (a *. sp)) /. n in
    (a, b)
  in
  let show label =
    let stats = aggregate () in
    let a, b = fit stats in
    Format.printf "%-22s n=%d  SUM(qty)=%g  SUM(price)=%g  SUM(qty*price)=%g@."
      label stats.C.count stats.C.sums.(f_qty) stats.C.sums.(f_price)
      stats.C.cof.(f_qty).(f_price);
    Format.printf "%-22s qty ~ %.3f * price + %.3f@.@." "" a b
  in
  show "initial:";

  (* Stream updates: a burst of sales of item 1, then a correction. *)
  add_order 9 1 4.;
  add_order 9 2 1.;
  show "after new store:";
  del_order 7 2 1.;
  show "after a returned sale:";

  Format.printf
    "The model refits from the maintained cofactors alone — no scan of the@.\
     join result is ever needed, and deletes are just negative payloads.@."
