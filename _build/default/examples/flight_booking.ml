(* Queries with free access patterns (Sec. 4.3): a flight-booking site.

   "To access the flights from a flight booking database behind a web
   interface, one has to specify the date, departure, and destination."

   We model a route as the (date, departure, destination) triple the
   interface requires. The paper's tractable pattern Q(A|B) = S(A,B)·T(B)
   becomes:

     Q(flight | route) = Schedule(flight, route) · Bookable(route)

   — given a route, enumerate its flights with constant delay, under
   O(1) updates to both relations (Thm. 4.8).

   Enriching the query with per-flight relations (fares, seat state)
   breaks tractability: then [flight] dominates the input [route]
   without being an input itself, violating input-dominance — the same
   reason the edge-triangle listing of Ex. 4.6 is intractable. The
   classifier demonstrates both.

   Run with: dune exec examples/flight_booking.exe *)

open Core.Ivm
module LJ = Ivm_engine.Cqap_runtime.Lookup_join

let () =
  (* The tractable access pattern. *)
  let q =
    Cq.make ~name:"Flights" ~free:[ "flight"; "route" ]
      [ Cq.atom "Schedule" [ "flight"; "route" ]; Cq.atom "Bookable" [ "route" ] ]
  in
  let access = Cqap.make ~input:[ "route" ] q in
  Format.printf "CQAP: %a@." Cqap.pp access;
  Format.printf "tractable (Thm. 4.8): %b@.@." (Cqap.is_tractable access);
  assert (Cqap.is_tractable access);

  (* The enriched variant: a per-flight fare relation. Now [flight]
     dominates the input [route] but is an output — not tractable. *)
  let rich =
    Cqap.make ~input:[ "route" ]
      (Cq.make ~name:"FlightsWithFares" ~free:[ "flight"; "price"; "route" ]
         [
           Cq.atom "Schedule" [ "flight"; "route" ];
           Cq.atom "Fare" [ "flight"; "price" ];
           Cq.atom "Bookable" [ "route" ];
         ])
  in
  Format.printf "with per-flight fares: %a@." Cqap.pp rich;
  Format.printf "tractable: %b  (input-dominance fails: flight dominates route)@.@."
    (Cqap.is_tractable rich);

  (* Runtime for the tractable pattern: the paper's Q(A|B) = S(A,B)·T(B).
     Routes: 1201 = day 12, ZRH -> VIE; 1301 = day 13, ZRH -> VIE. *)
  let site = LJ.create () in
  LJ.update_s site ~a:100 ~b:1201 1;
  LJ.update_s site ~a:101 ~b:1201 1;
  LJ.update_s site ~a:103 ~b:1301 1;
  LJ.update_t site ~b:1201 1;
  LJ.update_t site ~b:1301 1;

  let show route =
    let flights = List.sort compare (List.map fst (List.of_seq (LJ.answer site ~b:route))) in
    Format.printf "route %d -> flights: %s@." route
      (String.concat ", " (List.map string_of_int flights))
  in
  show 1201;
  show 1301;

  (* The route closes for sale: one O(1) update, answers empty. *)
  Format.printf "@.route 1201 closes...@.";
  LJ.update_t site ~b:1201 (-1);
  show 1201;

  (* A new flight is scheduled while closed; reopening restores both. *)
  LJ.update_s site ~a:104 ~b:1201 1;
  LJ.update_t site ~b:1201 1;
  Format.printf "reopened with a new flight:@.";
  show 1201;

  (* All-input membership tests stay tractable even cyclic: the triangle
     detection CQAP of Ex. 4.6 on a "who-knows-whom" graph. *)
  Format.printf "@.Triangle detection CQAP (Ex. 4.6, tractable):@.";
  let detect =
    Cqap.make ~input:[ "A"; "B"; "C" ]
      (Cq.make ~name:"detect" ~free:[ "A"; "B"; "C" ]
         [ Cq.atom "E1" [ "A"; "B" ]; Cq.atom "E2" [ "B"; "C" ]; Cq.atom "E3" [ "C"; "A" ] ])
  in
  Format.printf "tractable: %b@." (Cqap.is_tractable detect);
  let module TD = Ivm_engine.Cqap_runtime.Triangle_detect in
  let g = TD.create () in
  List.iter (fun (x, y) -> TD.update g ~x ~y 1) [ (1, 2); (2, 3); (3, 1) ];
  Format.printf "do 1,2,3 form a triangle? %b@." (TD.answer g ~a:1 ~b:2 ~c:3);

  (* The intractable listing variant, for contrast (Ex. 4.6). *)
  let listing =
    Cqap.make ~input:[ "A"; "B" ]
      (Cq.make ~name:"list" ~free:[ "A"; "B"; "C" ]
         [ Cq.atom "E1" [ "A"; "B" ]; Cq.atom "E2" [ "B"; "C" ]; Cq.atom "E3" [ "C"; "A" ] ])
  in
  Format.printf "edge triangle listing tractable: %b@." (Cqap.is_tractable listing)
