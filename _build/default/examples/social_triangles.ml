(* Counting triangles in a streaming social graph (Sec. 3 end to end):
   the same query maintained by four engines — recomputation, delta
   queries, one materialized view, and the worst-case optimal IVM^eps —
   under a skewed insert/delete stream, plus the OuMv reduction of
   Thm. 3.4 run as an executable proof-of-hardness.

   Run with: dune exec examples/social_triangles.exe *)

module T = Ivm_engine.Triangle
module Eps = Ivm_eps.Triangle_count
module G = Ivm_workload.Graph_gen
module L = Ivm_lowerbound

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let () =
  let n_updates = 30_000 in
  let spec = { G.nodes = 400; skew = 1.1; delete_ratio = 0.2 } in
  Format.printf "Streaming %d skewed edge updates (Zipf %.1f, %d%% deletes)@.@." n_updates
    spec.G.skew
    (int_of_float (spec.G.delete_ratio *. 100.));

  (* Feed the identical stream to each engine. *)
  let run name update count =
    let gen = G.create spec in
    let (), elapsed =
      time (fun () ->
          G.prefill gen n_updates (fun e ->
              let rel = match e.G.rel with 0 -> T.R | 1 -> T.S | _ -> T.T in
              update rel e.G.src e.G.dst e.G.mult))
    in
    Format.printf "%-12s %8.0f updates/s   count = %d@." name
      (float_of_int n_updates /. max 1e-9 elapsed)
      (count ());
    count ()
  in
  let delta = T.Delta.create () in
  let c1 = run "delta" (fun r a b m -> T.Delta.update delta r ~a ~b m)
      (fun () -> T.Delta.count delta) in
  let one = T.One_view.create () in
  let c2 = run "one-view" (fun r a b m -> T.One_view.update one r ~a ~b m)
      (fun () -> T.One_view.count one) in
  let eps = Eps.create ~epsilon:0.5 () in
  let c3 = run "ivm-eps" (fun r a b m -> Eps.update eps r ~a ~b m)
      (fun () -> Eps.count eps) in
  assert (c1 = c2 && c2 = c3);
  Format.printf "(engines agree; IVM^eps used %d rebalances, threshold %d)@.@."
    (Eps.rebalances eps) (Eps.threshold eps);

  (* The lower-bound side: solving OuMv through the triangle engine.
     If triangle IVM admitted O(N^{1/2-g}) updates with fast answers,
     this loop would beat the OuMv conjecture (Thm. 3.4). *)
  let n = 64 in
  let rng = Random.State.make [| 2024 |] in
  let inst = L.Oumv.random ~rng ~n ~density:0.3 in
  let naive, t_naive = time (fun () -> L.Oumv.solve_naive inst) in
  let via_ivm, t_ivm =
    time (fun () -> L.Reduction.run (module Eps.Half) inst)
  in
  assert (naive = via_ivm.L.Reduction.answers);
  Format.printf
    "OuMv n=%d solved via the IVM engine in %.3fs (naive: %.3fs); %d matrix + %d vector updates@."
    n t_ivm t_naive via_ivm.L.Reduction.matrix_updates via_ivm.L.Reduction.vector_updates
