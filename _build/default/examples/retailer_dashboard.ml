(* A live retail dashboard over the Fig. 4 workload: the five-relation
   Retailer join, non-hierarchical as written but q-hierarchical under
   the FD zip -> locn (Ex. 4.10). Inventory inserts stream in batches;
   the dashboard (an enumeration request) refreshes periodically.

   The example contrasts the four maintenance strategies of Fig. 4 on a
   small stream and shows why eager-fact (F-IVM) is the one to deploy.

   Run with: dune exec examples/retailer_dashboard.exe *)

open Core.Ivm
module Retailer = Ivm_workload.Retailer

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let () =
  Format.printf "Retailer query: %a@.@." Cq.pp Retailer.query;
  let analysis = Core.Planner.analyze ~fds:Retailer.fds Retailer.query in
  Format.printf "%a@.@." Core.Planner.pp_analysis analysis;

  let spec = { Retailer.default_spec with Ivm_workload.Retailer.locations = 20; dates = 20 } in
  let batches = 50 and batch_size = 200 and refresh_every = 10 in

  let strategies =
    [ Strategy.Eager_fact; Strategy.Eager_list; Strategy.Lazy_fact; Strategy.Lazy_list ]
  in
  Format.printf "Streaming %d batches of %d Inventory inserts, dashboard refresh every %d batches@.@."
    batches batch_size refresh_every;
  List.iter
    (fun kind ->
      let gen = Retailer.create spec in
      let db = Retailer.initial_database gen in
      let engine = Strategy.create kind Retailer.query (Retailer.order ()) db in
      let outputs = ref 0 in
      let (), elapsed =
        time (fun () ->
            for b = 1 to batches do
              List.iter (Strategy.apply engine) (Retailer.next_batch gen ~size:batch_size);
              if b mod refresh_every = 0 then outputs := Strategy.count_output engine
            done)
      in
      Format.printf "%-12s %6.0f updates/s   (last dashboard: %d rows)@."
        (Strategy.kind_name kind)
        (float_of_int (batches * batch_size) /. max 1e-9 elapsed)
        !outputs)
    strategies;
  Format.printf
    "@.The factorized eager strategy keeps both updates and refreshes cheap;@.\
     flat lists pay on update, lazy variants pay on refresh (Fig. 4).@."
