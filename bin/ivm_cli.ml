(* ivm-cli: classify queries along the paper's taxonomy and run the
   headline workloads from the command line.

   Examples:
     ivm_cli classify "Q(A, B) = R(A, B), S(B, C)"
     ivm_cli classify --fds "zip -> locn" \
       "Q(locn, zip) = Inventory(locn, d, k), Weather(locn, d), \
        Location(locn, zip), Census(zip), Demographics(zip)"
     ivm_cli classify --adorn "T: static" "Q(A,B,C) = R(A,D), S(A,B), T(B,C)"
     ivm_cli classify "Q(C | A, B) = E1(A,B), E2(B,C), E3(C,A)"
     ivm_cli tpch
     ivm_cli triangles --updates 50000 --nodes 500 *)

open Cmdliner

let classify_cmd =
  let query_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Query, e.g. \"Q(A | B) = S(A, B), T(B)\"; head variables \
                 after | are input variables (access pattern).")
  in
  let fds_arg =
    Arg.(value & opt string "" & info [ "fds" ] ~docv:"FDS"
           ~doc:"Functional dependencies, e.g. \"A -> B; C, D -> E\".")
  in
  let adorn_arg =
    Arg.(value & opt string "" & info [ "adorn" ] ~docv:"ADORNMENT"
           ~doc:"Static/dynamic adornment, e.g. \"T: static; R: dynamic\".")
  in
  let run query fds_s adorn_s =
    let ( let* ) r f = match r with Error e -> `Error (false, e) | Ok v -> f v in
    let* parsed = Ivm_query.Parse.query query in
    let* fds = Ivm_query.Parse.fds fds_s in
    let* adorn = Ivm_query.Parse.adornment adorn_s in
    let access = if parsed.Ivm_query.Parse.input = [] then None else Some parsed.Ivm_query.Parse.input in
    let adornment = if adorn = [] then None else Some adorn in
    let analysis = Core.Planner.analyze ~fds ?access ?adornment parsed.Ivm_query.Parse.cq in
    Format.printf "%a@." Core.Planner.pp_analysis analysis;
    (match Core.Planner.(analysis.verdict) with
    | Core.Planner.Best_possible { order = Some o; _ } ->
        Format.printf "view tree order: %a@." Ivm_query.Variable_order.pp o
    | Core.Planner.Best_possible _ | Core.Planner.Amortized_best _
    | Core.Planner.Worst_case_optimal _ | Core.Planner.Delta_only _ -> ());
    `Ok ()
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify a query along the paper's taxonomy (Sec. 4-5)")
    Term.(ret (const run $ query_arg $ fds_arg $ adorn_arg))

let tpch_cmd =
  let run () =
    let cs = Ivm_workload.Tpch.study () in
    List.iter
      (fun (c : Ivm_workload.Tpch.classification) ->
        Printf.printf "Q%-2d  boolean:%-5b +fds:%-5b  non-boolean:%-5b +fds:%-5b  q-hier+fds:%b\n"
          c.Ivm_workload.Tpch.id c.boolean_hier c.boolean_hier_fd c.nonboolean_hier
          c.nonboolean_hier_fd c.q_hier_fd)
      cs;
    let s = Ivm_workload.Tpch.summarize cs in
    Printf.printf
      "hierarchical: boolean %d/22 (paper: 8), non-boolean %d/22 (paper: 13)\n\
       with FDs:     boolean %d/22 (paper: 12), non-boolean %d/22 (paper: 17)\n"
      s.Ivm_workload.Tpch.boolean_total s.Ivm_workload.Tpch.nonboolean_total
      s.Ivm_workload.Tpch.boolean_fd_total s.Ivm_workload.Tpch.nonboolean_fd_total
  in
  Cmd.v (Cmd.info "tpch" ~doc:"Run the TPC-H classification study (Sec. 4.4)")
    Term.(const run $ const ())

let triangles_cmd =
  let updates_arg =
    Arg.(value & opt int 50_000 & info [ "updates" ] ~docv:"N" ~doc:"Stream length.")
  in
  let nodes_arg =
    Arg.(value & opt int 500 & info [ "nodes" ] ~docv:"K" ~doc:"Graph node count.")
  in
  let domains_arg =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"D"
           ~doc:"Domain-pool width for parallel batch maintenance; 1 runs \
                 the sequential single-tuple engines only.")
  in
  let batch_arg =
    Arg.(value & opt int 1_000 & info [ "batch" ] ~docv:"B"
           ~doc:"Batch size for the parallel engine (with --domains > 1).")
  in
  let run updates nodes domains batch =
    let module G = Ivm_workload.Graph_gen in
    let module T = Ivm_engine.Triangle in
    let module Tb = Ivm_engine.Triangle_batch in
    if domains < 1 then (prerr_endline "--domains must be >= 1"; exit 2);
    if batch < 1 then (prerr_endline "--batch must be >= 1"; exit 2);
    let spec = { G.nodes; skew = 1.1; delete_ratio = 0.2 } in
    let delta = T.Delta.create () in
    let eps = Ivm_eps.Triangle_count.create ~epsilon:0.5 () in
    let gen = G.create spec in
    let edges = ref [] in
    let t0 = Sys.time () in
    G.prefill gen updates (fun e ->
        let rel = match e.G.rel with 0 -> T.R | 1 -> T.S | _ -> T.T in
        T.Delta.update delta rel ~a:e.G.src ~b:e.G.dst e.G.mult;
        Ivm_eps.Triangle_count.update eps rel ~a:e.G.src ~b:e.G.dst e.G.mult;
        edges := (rel, e.G.src, e.G.dst, e.G.mult) :: !edges);
    let dt = Sys.time () -. t0 in
    Printf.printf "streamed %d updates in %.2fs (%.0f/s)\n" updates dt
      (float_of_int updates /. dt);
    Printf.printf "triangle count: %d (delta) = %d (ivm-eps)\n" (T.Delta.count delta)
      (Ivm_eps.Triangle_count.count eps);
    if T.Delta.count delta <> Ivm_eps.Triangle_count.count eps then exit 1;
    if domains > 1 then begin
      (* Replay the same stream batch-wise through the parallel front and
         cross-check the count: ring payloads make batches commute
         (Sec. 2), so the result must match the sequential engines. *)
      let stream = Array.of_list (List.rev !edges) in
      let n = Array.length stream in
      let count, dt_par =
        Ivm_par.Domain_pool.with_pool ~domains (fun pool ->
            let eng = Tb.Delta.create ~pool () in
            let t0 = Sys.time () in
            let i = ref 0 in
            while !i < n do
              let len = min batch (n - !i) in
              Tb.Delta.apply_batch eng
                (Array.to_list (Array.sub stream !i len));
              i := !i + len
            done;
            (Tb.Delta.count eng, Sys.time () -. t0))
      in
      Printf.printf
        "parallel batch replay: %d domains, batch %d: %.2fs (%.0f/s), count %d\n"
        domains batch dt_par (float_of_int n /. dt_par) count;
      if count <> T.Delta.count delta then begin
        prerr_endline "parallel count diverges from sequential"; exit 1
      end
    end
  in
  Cmd.v
    (Cmd.info "triangles" ~doc:"Maintain the triangle count over a random edge stream (Sec. 3)")
    Term.(const run $ updates_arg $ nodes_arg $ domains_arg $ batch_arg)

let () =
  let doc = "incremental view maintenance toolbox (PODS 2024 survey reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "ivm_cli" ~version:Core.Ivm.version ~doc)
          [ classify_cmd; tpch_cmd; triangles_cmd ]))
