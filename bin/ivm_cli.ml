(* ivm-cli: classify queries along the paper's taxonomy and run the
   headline workloads from the command line.

   Examples:
     ivm_cli classify "Q(A, B) = R(A, B), S(B, C)"
     ivm_cli classify --fds "zip -> locn" \
       "Q(locn, zip) = Inventory(locn, d, k), Weather(locn, d), \
        Location(locn, zip), Census(zip), Demographics(zip)"
     ivm_cli classify --adorn "T: static" "Q(A,B,C) = R(A,D), S(A,B), T(B,C)"
     ivm_cli classify "Q(C | A, B) = E1(A,B), E2(B,C), E3(C,A)"
     ivm_cli tpch
     ivm_cli triangles --updates 50000 --nodes 500 *)

open Cmdliner

let classify_cmd =
  let query_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Query, e.g. \"Q(A | B) = S(A, B), T(B)\"; head variables \
                 after | are input variables (access pattern).")
  in
  let fds_arg =
    Arg.(value & opt string "" & info [ "fds" ] ~docv:"FDS"
           ~doc:"Functional dependencies, e.g. \"A -> B; C, D -> E\".")
  in
  let adorn_arg =
    Arg.(value & opt string "" & info [ "adorn" ] ~docv:"ADORNMENT"
           ~doc:"Static/dynamic adornment, e.g. \"T: static; R: dynamic\".")
  in
  let run query fds_s adorn_s =
    let ( let* ) r f = match r with Error e -> `Error (false, e) | Ok v -> f v in
    let* parsed = Ivm_query.Parse.query query in
    let* fds = Ivm_query.Parse.fds fds_s in
    let* adorn = Ivm_query.Parse.adornment adorn_s in
    let access = if parsed.Ivm_query.Parse.input = [] then None else Some parsed.Ivm_query.Parse.input in
    let adornment = if adorn = [] then None else Some adorn in
    let analysis = Core.Planner.analyze ~fds ?access ?adornment parsed.Ivm_query.Parse.cq in
    Format.printf "%a@." Core.Planner.pp_analysis analysis;
    (match Core.Planner.(analysis.verdict) with
    | Core.Planner.Best_possible { order = Some o; _ } ->
        Format.printf "view tree order: %a@." Ivm_query.Variable_order.pp o
    | Core.Planner.Best_possible _ | Core.Planner.Amortized_best _
    | Core.Planner.Worst_case_optimal _ | Core.Planner.Delta_only _ -> ());
    `Ok ()
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify a query along the paper's taxonomy (Sec. 4-5)")
    Term.(ret (const run $ query_arg $ fds_arg $ adorn_arg))

let tpch_cmd =
  let run () =
    let cs = Ivm_workload.Tpch.study () in
    List.iter
      (fun (c : Ivm_workload.Tpch.classification) ->
        Printf.printf "Q%-2d  boolean:%-5b +fds:%-5b  non-boolean:%-5b +fds:%-5b  q-hier+fds:%b\n"
          c.Ivm_workload.Tpch.id c.boolean_hier c.boolean_hier_fd c.nonboolean_hier
          c.nonboolean_hier_fd c.q_hier_fd)
      cs;
    let s = Ivm_workload.Tpch.summarize cs in
    Printf.printf
      "hierarchical: boolean %d/22 (paper: 8), non-boolean %d/22 (paper: 13)\n\
       with FDs:     boolean %d/22 (paper: 12), non-boolean %d/22 (paper: 17)\n"
      s.Ivm_workload.Tpch.boolean_total s.Ivm_workload.Tpch.nonboolean_total
      s.Ivm_workload.Tpch.boolean_fd_total s.Ivm_workload.Tpch.nonboolean_fd_total
  in
  Cmd.v (Cmd.info "tpch" ~doc:"Run the TPC-H classification study (Sec. 4.4)")
    Term.(const run $ const ())

let triangles_cmd =
  let updates_arg =
    Arg.(value & opt int 50_000 & info [ "updates" ] ~docv:"N" ~doc:"Stream length.")
  in
  let nodes_arg =
    Arg.(value & opt int 500 & info [ "nodes" ] ~docv:"K" ~doc:"Graph node count.")
  in
  let domains_arg =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"D"
           ~doc:"Domain-pool width for parallel batch maintenance; 1 runs \
                 the sequential single-tuple engines only.")
  in
  let batch_arg =
    Arg.(value & opt int 1_000 & info [ "batch" ] ~docv:"B"
           ~doc:"Batch size for the parallel engine (with --domains > 1).")
  in
  let run updates nodes domains batch =
    let module G = Ivm_workload.Graph_gen in
    let module T = Ivm_engine.Triangle in
    let module Tb = Ivm_engine.Triangle_batch in
    if domains < 1 then (prerr_endline "--domains must be >= 1"; exit 2);
    if batch < 1 then (prerr_endline "--batch must be >= 1"; exit 2);
    let spec = { G.nodes; skew = 1.1; delete_ratio = 0.2 } in
    let delta = T.Delta.create () in
    let eps = Ivm_eps.Triangle_count.create ~epsilon:0.5 () in
    let gen = G.create spec in
    let edges = ref [] in
    let t0 = Sys.time () in
    G.prefill gen updates (fun e ->
        let rel = match e.G.rel with 0 -> T.R | 1 -> T.S | _ -> T.T in
        T.Delta.update delta rel ~a:e.G.src ~b:e.G.dst e.G.mult;
        Ivm_eps.Triangle_count.update eps rel ~a:e.G.src ~b:e.G.dst e.G.mult;
        edges := (rel, e.G.src, e.G.dst, e.G.mult) :: !edges);
    let dt = Sys.time () -. t0 in
    Printf.printf "streamed %d updates in %.2fs (%.0f/s)\n" updates dt
      (float_of_int updates /. dt);
    Printf.printf "triangle count: %d (delta) = %d (ivm-eps)\n" (T.Delta.count delta)
      (Ivm_eps.Triangle_count.count eps);
    if T.Delta.count delta <> Ivm_eps.Triangle_count.count eps then exit 1;
    if domains > 1 then begin
      (* Replay the same stream batch-wise through the parallel front and
         cross-check the count: ring payloads make batches commute
         (Sec. 2), so the result must match the sequential engines. *)
      let stream = Array.of_list (List.rev !edges) in
      let n = Array.length stream in
      let count, dt_par =
        Ivm_par.Domain_pool.with_pool ~domains (fun pool ->
            let eng = Tb.Delta.create ~pool () in
            let t0 = Sys.time () in
            let i = ref 0 in
            while !i < n do
              let len = min batch (n - !i) in
              Tb.Delta.apply_batch eng
                (Array.to_list (Array.sub stream !i len));
              i := !i + len
            done;
            (Tb.Delta.count eng, Sys.time () -. t0))
      in
      Printf.printf
        "parallel batch replay: %d domains, batch %d: %.2fs (%.0f/s), count %d\n"
        domains batch dt_par (float_of_int n /. dt_par) count;
      if count <> T.Delta.count delta then begin
        prerr_endline "parallel count diverges from sequential"; exit 1
      end
    end
  in
  Cmd.v
    (Cmd.info "triangles" ~doc:"Maintain the triangle count over a random edge stream (Sec. 3)")
    Term.(const run $ updates_arg $ nodes_arg $ domains_arg $ batch_arg)

(* Exit with a clean one-line message instead of a backtrace when a
   durability operation fails for real. *)
let ok_or_die what = function
  | Ok v -> v
  | Error e ->
      Printf.eprintf "ivm_cli: %s: %s\n" what (Ivm_stream.Errors.to_string e);
      exit 1

(* The serving workload shared by [serve] and [chaos]: three binary
   edge relations and a heterogeneous set of views over them (delta
   kernel, view tree, two recomputation strategies). *)
module Views = struct
  module D = Ivm_data
  module Db = D.Database.Z
  module M = Ivm_engine.Maintainable
  module Tri = Ivm_engine.Triangle
  module Tb = Ivm_engine.Triangle_batch

  let schemas = [ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]); ("T", [ "C"; "A" ]) ]

  let make_db () =
    let db = Db.create () in
    List.iter (fun (n, vars) -> ignore (Db.declare db n (D.Schema.of_list vars))) schemas;
    db

  let q_rs =
    Ivm_query.Cq.make ~name:"paths_rs" ~free:[ "B"; "A"; "C" ]
      [ Ivm_query.Cq.atom "R" [ "A"; "B" ]; Ivm_query.Cq.atom "S" [ "B"; "C" ] ]

  let q_st =
    Ivm_query.Cq.make ~name:"paths_st" ~free:[ "C"; "B"; "A" ]
      [ Ivm_query.Cq.atom "S" [ "B"; "C" ]; Ivm_query.Cq.atom "T" [ "C"; "A" ] ]

  let tri_factory (db : Db.t) : M.t =
    let eng = Tb.Delta.create () in
    List.iter
      (fun name ->
        let rel = match name with "R" -> Tri.R | "S" -> Tri.S | _ -> Tri.T in
        D.Relation.Z.iter
          (fun t p ->
            Tb.Delta.update eng rel
              ~a:(D.Value.to_int (D.Tuple.get t 0))
              ~b:(D.Value.to_int (D.Tuple.get t 1))
              p)
          (Db.find db name))
      [ "R"; "S"; "T" ];
    M.of_triangle_batch ~name:"tri-count" (module Tb.Delta) eng

  let tree_factory q name (db : Db.t) : M.t =
    let forest = Option.get (Ivm_query.Variable_order.canonical q) in
    M.of_view_tree ~name q (Ivm_engine.View_tree.build q forest db)

  let strategy_factory kind q name (db : Db.t) : M.t =
    let forest = Option.get (Ivm_query.Variable_order.canonical q) in
    M.of_strategy ~name (Ivm_engine.Strategy.create kind q forest db)

  let standard =
    [
      ("tri-count", tri_factory);
      ("paths-rs", tree_factory q_rs "paths-rs");
      ("paths-st", strategy_factory Ivm_engine.Strategy.Lazy_fact q_st "paths-st");
      ("paths-rs-eager", strategy_factory Ivm_engine.Strategy.Eager_fact q_rs "paths-rs-eager");
    ]

  (* A view whose engine fails on every apply: the supervision demo.
     Its factory succeeds, so recovery rebuilds it — and it fails
     again, until the registry quarantines it. *)
  let flaky_factory (_ : Db.t) : M.t =
    {
      M.name = "flaky";
      relations = [ "R" ];
      apply_batch = (fun _ -> failwith "flaky engine: injected apply failure");
      output_count = (fun () -> 0);
      fingerprint = (fun () -> 0);
      enumerate = (fun () -> []);
    }

  let register ?(flaky = false) reg =
    List.iter (fun (name, f) -> Ivm_stream.Registry.register reg ~name f) standard;
    if flaky then Ivm_stream.Registry.register reg ~name:"flaky" flaky_factory
end

let serve_cmd =
  let updates_arg =
    Arg.(value & opt int 100_000 & info [ "updates" ] ~docv:"N" ~doc:"Stream length.")
  in
  let nodes_arg =
    Arg.(value & opt int 200 & info [ "nodes" ] ~docv:"K" ~doc:"Graph node count.")
  in
  let producers_arg =
    Arg.(value & opt int 2 & info [ "producers" ] ~docv:"P"
           ~doc:"Producer domains feeding the queue concurrently.")
  in
  let domains_arg =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"D"
           ~doc:"Domain-pool width for fanning view maintenance out; 1 \
                 maintains the views sequentially.")
  in
  let queue_arg =
    Arg.(value & opt int 8_192 & info [ "queue" ] ~docv:"C" ~doc:"Queue capacity.")
  in
  let policy_arg =
    Arg.(value & opt (enum [ ("block", Ivm_stream.Queue.Block);
                             ("drop", Ivm_stream.Queue.Drop_newest);
                             ("latest", Ivm_stream.Queue.Drop_oldest) ])
           Ivm_stream.Queue.Block
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"Backpressure policy: block (lossless), drop (reject when \
                   full) or latest (evict oldest).")
  in
  let target_ms_arg =
    Arg.(value & opt float 2.0 & info [ "target-ms" ] ~docv:"MS"
           ~doc:"Target epoch apply latency steering the adaptive batch cap.")
  in
  let dir_arg =
    Arg.(value & opt string "" & info [ "dir" ] ~docv:"DIR"
           ~doc:"Directory for the WAL and checkpoint (default: a fresh \
                 directory under the system temp dir).")
  in
  let stats_every_arg =
    Arg.(value & opt int 200 & info [ "stats-every" ] ~docv:"E"
           ~doc:"Print live stats every E epochs (0 disables).")
  in
  let listen_arg =
    Arg.(value & opt int (-1) & info [ "listen" ] ~docv:"PORT"
           ~doc:"Serve the wire protocol on this TCP port (0 picks an \
                 ephemeral port). The process then keeps serving after the \
                 internal producers finish, until a client sends Shutdown.")
  in
  let handlers_arg =
    Arg.(value & opt int 4 & info [ "handlers" ] ~docv:"H"
           ~doc:"Connection-handler domains for --listen (bounds concurrent \
                 connections).")
  in
  let run updates nodes producers domains queue_cap policy target_ms dir stats_every
      listen handlers =
    let module G = Ivm_workload.Graph_gen in
    let module D = Ivm_data in
    let module U = D.Update in
    let module Db = D.Database.Z in
    let module M = Ivm_engine.Maintainable in
    let module Tri = Ivm_engine.Triangle in
    let module Tb = Ivm_engine.Triangle_batch in
    let module St = Ivm_stream in
    if (updates < 1 && listen < 0) || updates < 0 || producers < 1 || domains < 1
       || queue_cap < 1
    then begin
      prerr_endline
        "--producers, --domains and --queue must be >= 1; --updates must be >= 1 \
         (>= 0 with --listen)";
      exit 2
    end;
    if handlers < 1 then begin
      prerr_endline "--handlers must be >= 1";
      exit 2
    end;
    let dir =
      if dir <> "" then dir
      else
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "ivm_serve_%d" (Unix.getpid ()))
    in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let wal_path = Filename.concat dir "updates.wal" in
    let ckpt_path = Filename.concat dir "state.ckpt" in
    List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ wal_path; ckpt_path ];
    let pool =
      if domains > 1 then Some (Ivm_par.Domain_pool.create ~domains) else None
    in
    let finally () = Option.iter Ivm_par.Domain_pool.destroy pool in
    Fun.protect ~finally (fun () ->
        let metrics = St.Metrics.create () in
        let reg = St.Registry.create ?pool ~metrics (Views.make_db ()) in
        Views.register reg;
        (* SQL session grafted onto the serving registry: the wire's
           Create_view/Explain ops execute against it. Handler domains
           may issue SQL concurrently and the session catalog is not
           domain-safe, so the callbacks serialize on one mutex. The
           planner's read/write mix comes from the live metrics. *)
        let sql_session =
          Ivm_sql.Exec.create ~registry:reg
            ~stats:(fun () ->
              let count name = St.Metrics.Hist.count (St.Metrics.op metrics name) in
              { Ivm_sql.Planner.reads = count "lookup" + count "snapshot";
                writes = metrics.St.Metrics.ingested })
            ()
        in
        let sql_mutex = Mutex.create () in
        let with_sql f =
          Mutex.lock sql_mutex;
          Fun.protect ~finally:(fun () -> Mutex.unlock sql_mutex) f
        in
        let sql_create sql =
          with_sql (fun () ->
              match Ivm_sql.Exec.exec_text sql_session sql with
              | Ok outs ->
                  Ok (String.concat "\n" (List.map Ivm_sql.Exec.render outs))
              | Error e -> Error e)
        in
        let sql_explain sql =
          with_sql (fun () ->
              match Ivm_sql.Parser.stmt sql with
              | Error e -> Error e
              | Ok stmt ->
                  let stmt =
                    match stmt with
                    | Ivm_sql.Ast.Explain _ -> stmt
                    | s -> Ivm_sql.Ast.Explain s
                  in
                  (match Ivm_sql.Exec.exec sql_session stmt with
                  | Ok out -> Ok (Ivm_sql.Exec.render out)
                  | Error e -> Error e))
        in
        let wal = ok_or_die "open WAL" (St.Wal.Z.open_log wal_path) in
        let queue = St.Queue.create ~capacity:queue_cap policy in
        (* Delta subscribers are fed from the scheduler's epoch hook;
           the server does not exist yet when the scheduler is built,
           hence the forward reference. *)
        let server = ref None in
        let on_apply ~epoch front =
          match !server with
          | Some srv -> Ivm_net.Server.publish_delta srv ~epoch front
          | None -> ()
        in
        (* Admin-checkpoint rendezvous: a handler wanting a checkpoint
           must not snapshot mid-epoch (the WAL may then be ahead of the
           applied state), so it parks on this condition and pushes a
           zero-payload tick to force an epoch even on an idle stream;
           the scheduler's epoch hook performs the save at the boundary,
           where WAL offset and registry state coincide. *)
        let ck_mutex = Mutex.create () in
        let ck_cond = Condition.create () in
        let ck_requested = ref false in
        let ck_result = ref None in
        let checkpointed = ref false in
        let request_checkpoint () =
          Mutex.lock ck_mutex;
          ck_requested := true;
          let tick =
            U.make ~rel:"R" ~tuple:(D.Tuple.of_ints [ 0; 0 ]) ~payload:0
          in
          if not (St.Queue.push queue (St.Scheduler.item tick)) then begin
            ck_requested := false;
            Mutex.unlock ck_mutex;
            Error "server is shutting down"
          end
          else begin
            while !ck_result = None do
              Condition.wait ck_cond ck_mutex
            done;
            let r = Option.get !ck_result in
            ck_result := None;
            Mutex.unlock ck_mutex;
            r
          end
        in
        let finish_checkpoint r =
          Mutex.lock ck_mutex;
          if !ck_requested then begin
            ck_requested := false;
            ck_result := Some r;
            Condition.broadcast ck_cond
          end;
          Mutex.unlock ck_mutex
        in
        let epoch_checkpoint () =
          if !ck_requested then
            finish_checkpoint
              (match
                 St.Checkpoint.Z.save ckpt_path ~db:(St.Registry.db reg)
                   ~wal_offset:(St.Wal.Z.offset wal)
               with
              | Ok () ->
                  checkpointed := true;
                  Ok (St.Wal.Z.offset wal)
              | Error e -> Error (St.Errors.to_string e))
        in
        let sched =
          St.Scheduler.create ~wal ~target_latency:(target_ms /. 1_000.) ~queue
            ~registry:reg ~metrics ~on_apply ()
        in
        if listen >= 0 then begin
          let ingest ups =
            List.fold_left
              (fun (a, d) u ->
                if St.Queue.push queue (St.Scheduler.item u) then (a + 1, d)
                else (a, d + 1))
              (0, 0) ups
          in
          let ingest_rw ups =
            let admitted, dropped = ingest ups in
            (admitted, dropped, St.Queue.pushed queue)
          in
          let srv =
            match
              Ivm_net.Server.start ~port:listen ~handlers ~ingest ~ingest_rw
                ~served:(fun () -> St.Scheduler.applied sched)
                ~checkpoint:request_checkpoint ~create_view:sql_create
                ~explain:sql_explain
                ~on_shutdown:(fun () -> St.Queue.close queue)
                ~registry:reg ~metrics ()
            with
            | Ok srv -> srv
            | Error e ->
                Printf.eprintf "ivm_cli: listen: %s\n" (Ivm_net.Wire.error_to_string e);
                exit 1
          in
          server := Some srv;
          Printf.printf "listening on 127.0.0.1:%d (%d handler domains)\n%!"
            (Ivm_net.Server.port srv) handlers
        end;
        Printf.printf
          "serving %d views | %d updates, %d producer(s), %d domain(s), queue %d (%s)\n\
           wal: %s\n%!"
          (St.Registry.view_count reg) updates producers domains queue_cap
          (St.Queue.policy_name policy) wal_path;
        let per_producer = updates / producers in
        let producer_domains =
          List.init producers (fun p ->
              let n = if p = 0 then updates - (per_producer * (producers - 1)) else per_producer in
              Domain.spawn (fun () ->
                  let gen = G.create ~seed:(41 + p) { G.nodes; skew = 1.1; delete_ratio = 0.2 } in
                  for _ = 1 to n do
                    let e = G.next gen in
                    let rel = match e.G.rel with 0 -> "R" | 1 -> "S" | _ -> "T" in
                    let u =
                      U.make ~rel ~tuple:(D.Tuple.of_ints [ e.G.src; e.G.dst ]) ~payload:e.G.mult
                    in
                    ignore (St.Queue.push queue (St.Scheduler.item u))
                  done))
        in
        let closer =
          Domain.spawn (fun () ->
              List.iter Domain.join producer_domains;
              (* With a network listener the stream outlives the internal
                 producers: the queue closes when a client asks for
                 Shutdown, not when the synthetic load runs out. *)
              if listen < 0 then St.Queue.close queue)
        in
        let t0 = Unix.gettimeofday () in
        St.Scheduler.run
          ~on_epoch:(fun s ->
            let applied = St.Scheduler.applied s in
            epoch_checkpoint ();
            if updates > 0 && (not !checkpointed) && applied >= updates / 2 then begin
              checkpointed := true;
              ok_or_die "save checkpoint"
                (St.Checkpoint.Z.save ckpt_path ~db:(St.Registry.db reg)
                   ~wal_offset:(St.Wal.Z.offset wal));
              Printf.printf "checkpoint @ %d updates (wal offset %d)\n%!" applied
                (St.Wal.Z.offset wal)
            end;
            if stats_every > 0 && metrics.St.Metrics.epochs mod stats_every = 0 then
              Printf.printf
                "epoch %-6d applied %-8d batch cap %-6d p50 %.3fms p99 %.3fms\n%!"
                metrics.St.Metrics.epochs applied (St.Scheduler.batch_limit s)
                (St.Metrics.Hist.percentile metrics.St.Metrics.latency 0.5 *. 1e3)
                (St.Metrics.Hist.percentile metrics.St.Metrics.latency 0.99 *. 1e3))
          sched
        |> ok_or_die "stream epoch";
        let dt = Unix.gettimeofday () -. t0 in
        (* A checkpoint request racing the queue close would otherwise
           park its handler forever — and Server.stop below waits for
           handlers. *)
        finish_checkpoint (Error "stream ended before the checkpoint ran");
        Domain.join closer;
        Option.iter Ivm_net.Server.stop !server;
        St.Wal.Z.close wal;
        let applied = St.Scheduler.applied sched in
        Printf.printf
          "\ndrained %d updates in %.2fs (%.0f/s), %d epochs, %d coalesced, %d dropped\n"
          applied dt
          (float_of_int applied /. dt)
          metrics.St.Metrics.epochs metrics.St.Metrics.coalesced (St.Queue.dropped queue);
        Printf.printf "end-to-end latency: p50 %.3fms  p99 %.3fms  max %.3fms\n\n"
          (St.Metrics.Hist.percentile metrics.St.Metrics.latency 0.5 *. 1e3)
          (St.Metrics.Hist.percentile metrics.St.Metrics.latency 0.99 *. 1e3)
          (St.Metrics.Hist.max_value metrics.St.Metrics.latency *. 1e3);
        Printf.printf "%-16s %10s %8s %12s %12s %12s\n" "view" "updates" "batches"
          "through/s" "apply p50" "apply p99";
        List.iter
          (fun (name, _) ->
            let v = St.Metrics.view metrics name in
            Printf.printf "%-16s %10d %8d %12.0f %9.3f ms %9.3f ms\n" name
              v.St.Metrics.updates v.St.Metrics.batches
              (float_of_int v.St.Metrics.updates /. dt)
              (St.Metrics.Hist.percentile v.St.Metrics.apply 0.5 *. 1e3)
              (St.Metrics.Hist.percentile v.St.Metrics.apply 0.99 *. 1e3))
          (St.Registry.views reg);
        Printf.printf "\n--- metrics (Prometheus exposition, also on the stats op) ---\n%s%!"
          (St.Metrics.render metrics);
        (* Kill-and-restart verification: rebuild from the checkpoint and
           the WAL suffix, then compare fingerprints with the live run. *)
        if !checkpointed then begin
          let restored_db, offset = ok_or_die "load checkpoint" (St.Checkpoint.Z.load ckpt_path) in
          let restored = St.Registry.restore ?pool reg restored_db in
          let pending = ref [] in
          let flush () =
            St.Registry.apply_batch restored (List.rev !pending);
            pending := []
          in
          ignore
            (ok_or_die "replay WAL"
               (St.Wal.Z.replay wal_path ~from:offset (fun u ->
                    pending := u :: !pending;
                    if List.length !pending >= 1024 then flush ())));
          flush ();
          let live = St.Registry.fingerprints reg in
          let recov = St.Registry.fingerprints restored in
          let ok =
            List.for_all2 (fun (n, a) (n', b) -> n = n' && a = b) live recov
          in
          Printf.printf "\nrestart verification (checkpoint + wal replay): %s\n"
            (if ok then "state matches live run" else "MISMATCH");
          if not ok then begin
            List.iter2
              (fun (n, a) (_, b) ->
                if a <> b then Printf.eprintf "  %s: live %d vs recovered %d\n" n a b)
              live recov;
            exit 1
          end
        end
        else
          print_endline
            "\nrestart verification skipped (stream too short for a mid-run checkpoint)")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Stream updates through the durable multi-view maintenance runtime \
             (WAL + epoch micro-batching + checkpoint/restore)")
    Term.(const run $ updates_arg $ nodes_arg $ producers_arg $ domains_arg
          $ queue_arg $ policy_arg $ target_ms_arg $ dir_arg $ stats_every_arg
          $ listen_arg $ handlers_arg)

(* ------------------------------------------------------------------ *)
(* chaos: soak the serve pipeline under seeded fault schedules and
   verify that the final per-view fingerprints equal a fault-free
   reference run of the same stream.                                   *)

module Chaos = struct
  module D = Ivm_data
  module U = D.Update
  module St = Ivm_stream
  module Fp = Ivm_fault.Failpoint
  module G = Ivm_workload.Graph_gen

  (* The deterministic input stream. [poison] splices in an update whose
     tuple carries a string where the triangle kernel expects ints — a
     decode-able, loggable update that only the consuming engine rejects. *)
  let make_stream ~updates ~nodes ~poison =
    let gen = G.create ~seed:7 { G.nodes; skew = 1.1; delete_ratio = 0.2 } in
    let arr =
      Array.init updates (fun _ -> U.make ~rel:"R" ~tuple:(D.Tuple.of_ints [ 0; 0 ]) ~payload:0)
    in
    for i = 0 to updates - 1 do
      arr.(i) <-
        (if poison && i = updates / 3 then
           U.make ~rel:"R"
             ~tuple:(D.Tuple.of_list [ D.Value.Str "poison"; D.Value.Int 0 ])
             ~payload:1
         else begin
           let e = G.next gen in
           let rel = match e.G.rel with 0 -> "R" | 1 -> "S" | _ -> "T" in
           U.make ~rel ~tuple:(D.Tuple.of_ints [ e.G.src; e.G.dst ]) ~payload:e.G.mult
         end)
    done;
    arr

  type outcome = {
    fingerprints : (string * int) list;
    crashes : int;
    unhealthy_seen : string list; (* views observed degraded/quarantined mid-run *)
    quarantined_seen : string list;
    dead_lettered : int;
    healthy_updates : int; (* updates absorbed by healthy views across the run *)
  }

  (* Run the stream to completion through WAL + checkpoint + supervised
     registry, treating every durability error as a process crash:
     drop WAL buffers, forget all in-memory state, and recover from
     checkpoint + WAL replay. The checkpoint's [wal_offset] field
     stores the *record index* (not the byte offset), so the resume
     point survives even a WAL truncated below the checkpoint by
     corruption: resume = max(records replayed, checkpoint index). *)
  let run_stream ~label ~dir ~stream ~flaky () =
    let wal_path = Filename.concat dir (label ^ ".wal") in
    let ckpt_path = Filename.concat dir (label ^ ".ckpt") in
    let dead_path = Filename.concat dir (label ^ ".dead.wal") in
    List.iter
      (fun p -> if Sys.file_exists p then Sys.remove p)
      [ wal_path; ckpt_path; ckpt_path ^ ".tmp"; dead_path ];
    let n = Array.length stream in
    let queue_cap = 512 in
    let ckpt_every = max 1 (n / 5) in
    let ( let* ) = Result.bind in
    let reg_prev = ref None in
    let current_wal = ref None in
    let crashes = ref 0 in
    let unhealthy = ref [] in
    let quarantined = ref [] in
    let observe reg =
      List.iter
        (fun (name, h) ->
          if h <> St.Registry.Healthy && not (List.mem name !unhealthy) then
            unhealthy := name :: !unhealthy;
          if h = St.Registry.Quarantined && not (List.mem name !quarantined) then
            quarantined := name :: !quarantined)
        (St.Registry.statuses reg)
    in
    let incarnation metrics =
      let* wal = St.Wal.Z.open_log wal_path in
      current_wal := Some wal;
      let db, ckpt_index =
        if Sys.file_exists ckpt_path then
          match St.Checkpoint.Z.load ckpt_path with
          | Ok (db, idx) -> (db, idx)
          | Error _ -> (Views.make_db (), 0) (* corrupt checkpoint: from the log alone *)
        else (Views.make_db (), 0)
      in
      let reg =
        match !reg_prev with
        | None ->
            let r = St.Registry.create ~metrics ~backoff_base:0.0005 ~seed:11 db in
            Views.register ~flaky r;
            r
        | Some old -> St.Registry.restore ~metrics old db
      in
      reg_prev := Some reg;
      (* Replay the whole log once: records up to the checkpoint index
         only advance the cursor; the suffix is re-applied. *)
      let replayed = ref 0 in
      let pending = ref [] in
      let flush () =
        St.Registry.apply_batch reg (List.rev !pending);
        pending := []
      in
      let* _end =
        St.Wal.Z.replay wal_path ~from:St.Wal.header_len (fun u ->
            incr replayed;
            if !replayed > ckpt_index then begin
              pending := u :: !pending;
              if List.length !pending >= 256 then flush ()
            end)
      in
      flush ();
      let resume = max !replayed ckpt_index in
      let queue = St.Queue.create ~capacity:queue_cap St.Queue.Block in
      let sched =
        St.Scheduler.create ~wal ~queue ~registry:reg ~metrics ~self_check_every:32 ()
      in
      let fed = ref resume in
      let next_ckpt = ref ((resume / ckpt_every) + 1) in
      let rec chunks () =
        if !fed >= n then Ok ()
        else begin
          let len = min queue_cap (n - !fed) in
          for i = !fed to !fed + len - 1 do
            ignore (St.Queue.push queue (St.Scheduler.item stream.(i)))
          done;
          fed := !fed + len;
          let target = !fed - resume in
          let rec drain () =
            if St.Scheduler.applied sched >= target then Ok ()
            else
              let* more = St.Scheduler.step sched in
              if more then drain () else Ok ()
          in
          let* () = drain () in
          observe reg;
          let durable = resume + St.Scheduler.applied sched in
          let* () =
            if durable >= !next_ckpt * ckpt_every then begin
              incr next_ckpt;
              St.Checkpoint.Z.save ckpt_path ~db:(St.Registry.db reg) ~wal_offset:durable
            end
            else Ok ()
          in
          chunks ()
        end
      in
      let* () = chunks () in
      St.Queue.close queue;
      let* () = St.Scheduler.run sched in
      Ok (wal, reg)
    in
    let metrics = St.Metrics.create () in
    let rec attempt k =
      if k > 50 then Error "chaos did not converge within 50 incarnations"
      else
        match incarnation metrics with
        | Ok (wal, reg) ->
            let leftover = St.Registry.heal reg in
            St.Wal.Z.close wal;
            if leftover <> [] then
              Error ("views still unhealthy after heal: " ^ String.concat ", " leftover)
            else begin
              let dead =
                List.fold_left (fun acc (_, ds) -> acc + List.length ds) 0
                  (St.Registry.dead_letters reg)
              in
              let healthy_updates =
                List.fold_left
                  (fun acc name ->
                    if name = "flaky" then acc else acc + (St.Metrics.view metrics name).St.Metrics.updates)
                  0
                  (St.Metrics.view_names metrics)
              in
              Ok
                {
                  fingerprints = St.Registry.fingerprints reg;
                  crashes = !crashes;
                  unhealthy_seen = List.rev !unhealthy;
                  quarantined_seen = List.rev !quarantined;
                  dead_lettered = dead;
                  healthy_updates;
                }
            end
        | Error (_ : St.Errors.t) ->
            (* Crash semantics: buffered WAL bytes are lost, all
               in-memory state is forgotten; recover and go again. *)
            incr crashes;
            Option.iter St.Wal.Z.crash !current_wal;
            current_wal := None;
            attempt (k + 1)
    in
    attempt 1

  type scenario = {
    sname : string;
    describe : string;
    poison : bool;
    flaky : bool;
    arm : updates:int -> unit;
    expect_crash : bool;
  }

  let scenarios ~updates:_ =
    [
      {
        sname = "torn-wal";
        describe = "short write tears the WAL tail mid-stream";
        poison = false;
        flaky = false;
        arm = (fun ~updates -> Fp.arm "wal.write" ~after:(updates / 2) ~times:1 (Fp.Short_write 7));
        expect_crash = true;
      };
      {
        sname = "ckpt-fsync";
        describe = "fsync of the checkpoint temp file fails";
        poison = false;
        flaky = false;
        arm = (fun ~updates:_ -> Fp.arm "ckpt.fsync" ~times:1 Fp.Fail);
        expect_crash = true;
      };
      {
        sname = "ckpt-rename";
        describe = "crash before the checkpoint rename installs";
        poison = false;
        flaky = false;
        arm = (fun ~updates:_ -> Fp.arm "ckpt.rename" ~times:1 Fp.Fail);
        expect_crash = true;
      };
      {
        sname = "bit-flip";
        describe = "bit flip corrupts a logged record, then a sync failure forces recovery";
        poison = false;
        flaky = false;
        arm =
          (fun ~updates ->
            Fp.arm "wal.write" ~after:(updates / 3) ~times:1 (Fp.Bit_flip 12);
            (* 4 consecutive fsync failures beat the scheduler's 3
               retries, forcing a crash that must recover across the
               corrupt record. *)
            Fp.arm "wal.fsync" ~after:(updates / 2 / 256) ~times:4 Fp.Fail);
        expect_crash = true;
      };
      {
        sname = "poison";
        describe = "a malformed update poisons one view; it is dead-lettered";
        poison = true;
        flaky = false;
        arm = (fun ~updates:_ -> ());
        expect_crash = false;
      };
      {
        sname = "flaky";
        describe = "an always-failing view is quarantined; healthy views keep serving";
        poison = false;
        flaky = true;
        arm = (fun ~updates:_ -> ());
        expect_crash = false;
      };
    ]

  let run_scenario ~dir ~updates ~nodes ~seed (sc : scenario) =
    let stream = make_stream ~updates ~nodes ~poison:sc.poison in
    (* Fault-free reference run of the identical stream. *)
    Fp.reset ();
    let reference =
      run_stream ~label:(sc.sname ^ ".ref") ~dir ~stream ~flaky:sc.flaky ()
    in
    (* The chaos run under this scenario's seeded fault schedule. *)
    Fp.enable ~seed ();
    sc.arm ~updates;
    let armed = List.map fst (Fp.armed ()) in
    let chaotic = run_stream ~label:sc.sname ~dir ~stream ~flaky:sc.flaky () in
    let vacuous =
      List.filter (fun name -> Fp.fired name = 0) armed
    in
    Fp.reset ();
    match (reference, chaotic) with
    | Error e, _ -> Error ("reference run failed: " ^ e)
    | _, Error e -> Error ("chaos run failed: " ^ e)
    | Ok r, Ok c ->
        if vacuous <> [] then
          Error ("armed failpoints never fired: " ^ String.concat ", " vacuous)
        else if sc.expect_crash && c.crashes = 0 then
          Error "expected at least one crash-recovery cycle, saw none"
        else if c.fingerprints <> r.fingerprints then begin
          List.iter2
            (fun (name, a) (_, b) ->
              if a <> b then
                Printf.eprintf "  %s: chaos fingerprint %d vs reference %d\n" name a b)
            c.fingerprints r.fingerprints;
          Error "final fingerprints diverge from the fault-free reference"
        end
        else if sc.poison && (c.dead_lettered = 0 || r.dead_lettered = 0) then
          Error "poison update was not dead-lettered"
        else if sc.flaky && not (List.mem "flaky" c.quarantined_seen) then
          Error "flaky view was never quarantined"
        else if sc.flaky && c.healthy_updates = 0 then
          Error "healthy views made no progress alongside the quarantined one"
        else Ok c
end

(* ------------------------------------------------------------------ *)
(* cluster: the sharded deployment path. A router partitions the
   standard Views workload across N loopback nodes, merges partial ring
   payloads on reads, and survives killed primaries via checkpoint+WAL
   promotion. Shared by `ivm_cli cluster`, `bench-cluster` and
   `chaos --cluster`.                                                  *)

module Cluster_cli = struct
  module D = Ivm_data
  module U = D.Update
  module M = Ivm_engine.Maintainable
  module St = Ivm_stream
  module Cl = Ivm_cluster
  module Fp = Ivm_fault.Failpoint

  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path

  let ( let* ) = Result.bind

  (* Placement for the standard Views workload. R(A,B) and S(B,C)
     co-partition on the join column B, so every R join S match is
     shard-local; T is broadcast, sound because each view uses T in a
     single atom (views are multilinear: split several relations on a
     shared key, or at most one by arbitrary hash). paths-rs and
     paths-rs-eager enumerate B first, so bound-prefix reads go
     straight to B's owner (Keyed); tri-count and paths-st fan out and
     ring-sum (Scattered). *)
  let topology ~shards =
    Cl.Topology.create ~shards
      ~policies:
        [
          ("R", Cl.Topology.Hash_col 1);
          ("S", Cl.Topology.Hash_col 0);
          ("T", Cl.Topology.Broadcast);
        ]
      ~routes:
        [
          ("tri-count", Cl.Topology.Scattered);
          ("paths-rs", Cl.Topology.Keyed);
          ("paths-st", Cl.Topology.Scattered);
          ("paths-rs-eager", Cl.Topology.Keyed);
        ]

  let declare ?(flaky = false) reg =
    List.iter
      (fun (n, cols) ->
        ignore (St.Registry.declare_table reg n (Ivm_data.Schema.of_list cols)))
      Views.schemas;
    Views.register ~flaky reg

  let view_names = List.map fst Views.standard

  (* The fault-free single-node reference: the same updates through one
     registry, no WAL, no network, no faults. Ring updates commute, so
     whatever interleaving the cluster admitted must produce these
     entries. *)
  let reference_fingerprints ?(flaky = false) updates =
    let reg = St.Registry.create (Views.make_db ()) in
    Views.register ~flaky reg;
    let rec chunks = function
      | [] -> ()
      | us ->
          let rec split k acc = function
            | rest when k = 0 -> (List.rev acc, rest)
            | [] -> (List.rev acc, [])
            | u :: rest -> split (k - 1) (u :: acc) rest
          in
          let batch, rest = split 512 [] us in
          St.Registry.apply_batch reg batch;
          chunks rest
    in
    chunks updates;
    (* Same convergence point as the cluster run: a view degraded by a
       poison update is rebuilt (with the poison isolated and
       dead-lettered) before its state counts as the reference. *)
    (match St.Registry.heal reg with
    | [] -> ()
    | leftover ->
        failwith ("reference views still unhealthy after heal: "
                  ^ String.concat ", " leftover));
    List.map
      (fun name ->
        (* Same canonical form as merged cluster reads: no explicit
           zero-payload entries. *)
        let entries =
          List.filter (fun (_, p) -> p <> 0) ((St.Registry.find reg name).M.enumerate ())
        in
        (name, M.entries_fingerprint entries))
      view_names

  let print_status router =
    List.iter
      (fun (s : Cl.Router.shard_status) ->
        Printf.printf
          "  shard %d: port %-5d %-7s %-16s sent %-8d applied %-8d failovers %d%s%s\n"
          s.Cl.Router.shard s.Cl.Router.port
          (if s.Cl.Router.alive then "alive" else "dead")
          s.Cl.Router.node_health s.Cl.Router.sent s.Cl.Router.applied
          s.Cl.Router.failovers
          (match s.Cl.Router.standby_lag with
          | Some lag when s.Cl.Router.has_standby -> Printf.sprintf " standby(lag %d)" lag
          | _ -> if s.Cl.Router.has_standby then " standby" else "")
          (if s.Cl.Router.lost_ranges <> [] then " LOST" else ""))
      (Cl.Router.status router)

  (* --- ivm_cli cluster: spawn, route, kill, verify ------------------ *)

  let run_demo ~shards ~updates ~nodes ~standby ~kill ~dir ~seed =
    let dir =
      if dir <> "" then dir
      else
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "ivm_cluster_%d" (Unix.getpid ()))
    in
    rm_rf dir;
    let router =
      match
        Cl.Router.start ~standby
          ~checkpoint_every:(max 256 (updates / 5))
          ~seed ~base_dir:dir ~topology:(topology ~shards) ~declare:(declare ~flaky:false)
          ()
      with
      | Ok r -> r
      | Error m ->
          Printf.eprintf "ivm_cli: cluster start failed: %s\n" m;
          exit 1
    in
    Printf.printf "cluster: %d shard(s) up under %s\n" (Cl.Router.shard_count router) dir;
    print_status router;
    let stream = Chaos.make_stream ~updates ~nodes ~poison:false in
    let n = Array.length stream in
    let batch_size = 256 in
    let mid = n / 2 in
    let fed = ref 0 in
    let fail msg =
      Printf.eprintf "ivm_cli: %s\n" msg;
      Cl.Router.stop router;
      exit 1
    in
    while !fed < n do
      let len = min batch_size (n - !fed) in
      let batch = Array.to_list (Array.sub stream !fed len) in
      (match Cl.Router.ingest router batch with
      | Ok (_, 0) -> ()
      | Ok (_, d) -> fail (Printf.sprintf "%d update(s) dead-lettered" d)
      | Error m -> fail ("ingest: " ^ m));
      let was = !fed in
      fed := !fed + len;
      if kill >= 0 && was < mid && !fed >= mid then begin
        Printf.printf "killing shard %d's primary at update %d (quiesced)...\n%!" kill !fed;
        match
          Cl.Router.quiesced router (fun () ->
              Cl.Router.kill_primary router ~shard:kill;
              Cl.Router.fail_over router ~shard:kill)
        with
        | Ok (Ok (dt, recovered)) ->
            Printf.printf "promoted replacement in %.1f ms (%d records recovered)\n"
              (dt *. 1e3) recovered;
            if Cl.Router.take_lost router ~shard:kill <> [] then
              fail "quiesced kill lost acked records"
        | Ok (Error m) -> fail ("failover: " ^ m)
        | Error m -> fail ("barrier: " ^ m)
      end
    done;
    Printf.printf "\nview                 entries    fingerprint  vs single-node reference\n";
    let reference = reference_fingerprints (Array.to_list stream) in
    let bad = ref 0 in
    List.iter
      (fun (name, ref_fp) ->
        match Cl.Router.snapshot router ~view:name with
        | Error m -> fail (Printf.sprintf "snapshot %s: %s" name m)
        | Ok entries ->
            let fp = M.entries_fingerprint entries in
            let same = fp = ref_fp in
            if not same then incr bad;
            Printf.printf "%-20s %-10d %-12d %s\n" name (List.length entries) fp
              (if same then "match" else Printf.sprintf "MISMATCH (reference %d)" ref_fp))
      reference;
    print_newline ();
    print_status router;
    let dead = Cl.Router.dead_letter_count router in
    if dead > 0 then Printf.printf "dead letters: %d\n" dead;
    Cl.Router.stop router;
    if !bad > 0 then begin
      Printf.printf "%d view(s) diverged from the single-node reference\n" !bad;
      exit 1
    end
    else Printf.printf "all views match the single-node reference\n"

  (* --- chaos --cluster: the six fault scenarios against the router --- *)

  type outcome = {
    fingerprints : (string * int) list;
    failovers : int;
    dead_lettered : int;
    flaky_quarantined : bool;
    shard_accounts : (int * int * int) array;
        (* per shard: (stream updates owned, send-log length, node absorbed) —
           printed on divergence to separate lost records from duplicates *)
    status_lines : string list;
  }

  (* Like [Chaos.run_stream] but through the router, with per-shard
     send logs for exactly-once re-send: an abrupt node death can lose
     an acked-but-unsynced tail, promotion reports the durable count,
     and [reconcile] re-sends exactly the lost log range to that one
     shard. Re-sent batches may interleave with fresh ones — sound
     because ring batches commute. *)
  let run_stream_cluster ~label ~dir ~stream ~flaky () : (outcome, string) result =
    let base = Filename.concat dir (label ^ ".cluster") in
    rm_rf base;
    let shards = 2 in
    let n = Array.length stream in
    let* router =
      Cl.Router.start ~standby:false ~probe_interval:0.02 ~probe_failures:2
        ~checkpoint_every:(max 1 (n / 5))
        ~timeout:5.0 ~base_dir:base ~topology:(topology ~shards) ~declare:(declare ~flaky)
        ()
    in
    let finish r =
      Cl.Router.stop router;
      r
    in
    let logs = Array.init shards (fun _ -> ref []) (* newest first *) in
    let append i batch = List.iter (fun u -> logs.(i) := u :: !(logs.(i))) batch in
    let trace_on = Sys.getenv_opt "IVM_CLUSTER_TRACE" <> None in
    let trace msg =
      if trace_on then
        Printf.eprintf "[%.4f harness] %s\n%!" (Unix.gettimeofday ()) (msg ())
    in
    let rec take k = function
      | u :: rest when k > 0 -> u :: take (k - 1) rest
      | _ -> []
    in
    let rec drop k = function
      | xs when k <= 0 -> xs
      | [] -> []
      | _ :: rest -> drop (k - 1) rest
    in
    (* Send with bounded retry: admission can come up short only while
       a node is dying (its queue closed before its server stopped);
       the next attempt runs after reconciliation, against the promoted
       node. *)
    let rec send_shard ~tries i batch =
      if batch = [] then Ok ()
      else
        match Cl.Router.ingest_shard router ~shard:i batch with
        | Ok admitted ->
            append i (take admitted batch);
            if admitted < List.length batch then
              trace (fun () ->
                  Printf.sprintf "shard %d short ack: batch=%d admitted=%d len=%d" i
                    (List.length batch) admitted
                    (List.length !(logs.(i))));
            let rest = drop admitted batch in
            if rest = [] then Ok ()
            else if tries = 0 then Error "shard kept dropping admissions"
            else begin
              Unix.sleepf 0.01;
              let* () = reconcile ~tries:3 i in
              send_shard ~tries:(tries - 1) i rest
            end
        | Error m ->
            (* A transport error is ambiguous: the node may have
               admitted the batch before the connection died, so a
               blind retry would duplicate records. Ask the router for
               the shard's authoritative absorbed count and re-send
               only the part that provably never landed. *)
            if tries = 0 then Error m
            else begin
              trace (fun () ->
                  Printf.sprintf "shard %d send error: batch=%d len=%d err=%s" i
                    (List.length batch)
                    (List.length !(logs.(i)))
                    m);
              Unix.sleepf 0.02;
              let* absorbed = resolve ~tries:3 i in
              let len = List.length !(logs.(i)) in
              if absorbed < len then
                Error "shard absorbed fewer records than logged"
              else begin
                let landed = min (absorbed - len) (List.length batch) in
                trace (fun () ->
                    Printf.sprintf "shard %d resolved: absorbed=%d len=%d landed=%d" i
                      absorbed len landed);
                append i (take landed batch);
                send_shard ~tries:(tries - 1) i (drop landed batch)
              end
            end
    and reconcile ~tries i =
      match Cl.Router.take_lost router ~shard:i with
      | [] -> Ok ()
      | ranges -> cut ~tries i ranges
    and cut ~tries i ranges =
      (* The log mirrors the order the shard's WAL admitted our
         sends; each [from, upto) died unsynced. Cut the range out
         and re-send it as fresh records. Oldest range first: each
         cut re-aligns log indices with the router's post-promotion
         send counter, which is the index space the next range was
         recorded in (appends never shift indices below them). *)
      let rec cut_ranges = function
        | [] -> Ok ()
        | (from, upto) :: rest ->
            let arr = Array.of_list (List.rev !(logs.(i))) in
            let durable = ref [] and lost = ref [] in
            Array.iteri
              (fun j u ->
                if j >= from && j < upto then lost := u :: !lost
                else durable := u :: !durable)
              arr;
            logs.(i) := !durable;
            trace (fun () ->
                Printf.sprintf "shard %d cut (%d,%d): len=%d resending=%d" i from upto
                  (List.length !durable) (List.length !lost));
            let* () = send_shard ~tries i (List.rev !lost) in
            cut_ranges rest
      in
      cut_ranges ranges
    and resolve ~tries i =
      (* Settle the shard onto a live primary with an authoritative
         send count: cut any published lost ranges, fence via
         [reconcile_sent], and loop if the fence itself triggered a
         promotion that published more ranges. *)
      let* () = reconcile ~tries:3 i in
      match Cl.Router.reconcile_sent router ~shard:i with
      | Error m ->
          if tries = 0 then Error m
          else begin
            Unix.sleepf 0.05;
            resolve ~tries:(tries - 1) i
          end
      | Ok absorbed -> (
          match Cl.Router.take_lost router ~shard:i with
          | [] -> Ok absorbed
          | ranges ->
              let* () = cut ~tries:3 i ranges in
              if tries = 0 then Error "shard would not settle on a live primary"
              else resolve ~tries:(tries - 1) i)
    in
    let topo = Cl.Router.topology router in
    let rec feed fed =
      if fed >= n then Ok ()
      else begin
        let len = min 256 (n - fed) in
        let buckets = Array.make shards [] in
        for j = fed + len - 1 downto fed do
          let u = stream.(j) in
          match Cl.Topology.owners topo ~rel:u.U.rel u.U.tuple with
          | None -> () (* unknown relation: router would dead-letter it *)
          | Some os -> List.iter (fun i -> buckets.(i) <- u :: buckets.(i)) os
        done;
        let rec shards_go i =
          if i >= shards then Ok ()
          else begin
            let* () = reconcile ~tries:3 i in
            let* () = send_shard ~tries:5 i buckets.(i) in
            shards_go (i + 1)
          end
        in
        let* () = shards_go 0 in
        feed (fed + len)
      end
    in
    (* Settle: promote anything dead, re-send anything lost, and fence;
       repeat until a fence passes with no new losses (the fault
       schedule is finite, so this converges). *)
    let rec settle tries =
      if tries = 0 then Error "cluster did not settle after the fault schedule"
      else begin
        let rec reconcile_all i =
          if i >= shards then Ok ()
          else
            let* () = reconcile ~tries:3 i in
            reconcile_all (i + 1)
        in
        let* () = reconcile_all 0 in
        match Cl.Router.barrier router with
        | Error _ ->
            (* A node that crashed after feed (applied lag means the
               armed fault can fire during settle, not mid-stream)
               fails the fence instantly — connection refused costs
               microseconds, while the prober needs two probe
               intervals to declare it dead and promote. Burning all
               the retries before detection is a false "did not
               settle": pace the loop instead. *)
            Unix.sleepf 0.05;
            settle (tries - 1)
        | Ok _ ->
            (* A draining [take_lost] here would discard any range a
               prober promotion published after [reconcile_all] ran —
               peek without consuming and let the retry's reconcile
               cut and re-send it. *)
            if List.exists
                 (fun i -> Cl.Router.has_lost router ~shard:i)
                 (List.init shards Fun.id)
            then settle (tries - 1)
            else Ok ()
      end
    in
    (* Quarantine needs [max_failures] failed applies, each gated by the
       supervisor's backoff — a stream that ends first leaves the flaky
       view merely degraded. Nudge it over the threshold with net-zero
       ring traffic (an insert cancelled by its delete in the same
       batch): every nudge batch fails flaky's apply, while the
       cancellation leaves every real view's state untouched, so the
       final fingerprints still match the fault-free reference. *)
    let nudge_flaky () =
      let quarantined () =
        List.exists
          (fun i ->
            List.exists
              (fun (name, h) -> name = "flaky" && h = St.Registry.Quarantined)
              (St.Registry.statuses
                 (Ivm_cluster.Node.registry (Cl.Router.primary router ~shard:i))))
          (List.init shards Fun.id)
      in
      let tuple = D.Tuple.of_ints [ 0; 1 ] in
      let shard =
        match Cl.Topology.owners topo ~rel:"R" tuple with Some (i :: _) -> i | _ -> 0
      in
      (* The insert and its cancelling delete must land in different
         epochs — the scheduler ring-coalesces per (relation, tuple),
         and a batch summing to zero never reaches any view. The
         barrier in between forces the epoch break (and the backoff
         lapse happens while we wait on it). *)
      let send payload =
        let* () = send_shard ~tries:3 shard [ U.make ~rel:"R" ~tuple ~payload ] in
        match Cl.Router.barrier router with
        | Ok _ -> Ok ()
        | Error m -> Error ("flaky nudge barrier: " ^ m)
      in
      let rec go tries =
        if quarantined () then Ok ()
        else if tries = 0 then Ok () (* leave the verdict to the scenario check *)
        else begin
          let* () = send 1 in
          let* () = send (-1) in
          Unix.sleepf 0.03; (* let the backoff lapse so the next apply is attempted *)
          go (tries - 1)
        end
      in
      go 50
    in
    (* The end-of-stream convergence point, mirroring the single-node
       harness: force a recovery attempt on every unhealthy view
       (isolating and dead-lettering poison), so final snapshots read
       rebuilt views, not degraded stubs mid-backoff. Runs after the
       quarantine verdict is captured — heal un-quarantines the flaky
       view (its build succeeds), which must not erase the evidence. *)
    let heal_all () =
      let rec go i =
        if i >= shards then Ok ()
        else
          let reg = Ivm_cluster.Node.registry (Cl.Router.primary router ~shard:i) in
          match St.Registry.heal reg with
          | [] -> go (i + 1)
          | leftover ->
              Error
                (Printf.sprintf "shard %d views still unhealthy after heal: %s" i
                   (String.concat ", " leftover))
      in
      go 0
    in
    (match
       let* () = feed 0 in
       let* () = settle 10 in
       let* () = if flaky then nudge_flaky () else Ok () in
       let per_primary f =
         List.exists
           (fun i -> f (Cl.Router.primary router ~shard:i))
           (List.init shards Fun.id)
       in
       let flaky_quarantined =
         per_primary (fun node ->
             List.exists
               (fun (name, h) -> name = "flaky" && h = St.Registry.Quarantined)
               (St.Registry.statuses (Ivm_cluster.Node.registry node)))
       in
       let* () = heal_all () in
       let* () = settle 10 in
       let rec snaps acc = function
         | [] -> Ok (List.rev acc)
         | name :: rest ->
             let* entries = Cl.Router.snapshot router ~view:name in
             snaps ((name, M.entries_fingerprint entries) :: acc) rest
       in
       let* fingerprints = snaps [] view_names in
       let failovers =
         List.fold_left
           (fun acc (s : Cl.Router.shard_status) -> acc + s.Cl.Router.failovers)
           0 (Cl.Router.status router)
       in
       let dead_lettered =
         List.fold_left
           (fun acc i ->
             let reg = Ivm_cluster.Node.registry (Cl.Router.primary router ~shard:i) in
             List.fold_left
               (fun acc (_, ds) -> acc + List.length ds)
               acc (St.Registry.dead_letters reg))
           0 (List.init shards Fun.id)
       in
       let shard_accounts =
         Array.init shards (fun i ->
             let owned =
               Array.fold_left
                 (fun acc (u : int U.t) ->
                   match Cl.Topology.owners topo ~rel:u.U.rel u.U.tuple with
                   | Some os when List.mem i os -> acc + 1
                   | _ -> acc)
                 0 stream
             in
             let node = Cl.Router.primary router ~shard:i in
             ( owned,
               List.length !(logs.(i)),
               Ivm_cluster.Node.recovered node + Ivm_cluster.Node.applied node ))
       in
       let status_lines =
         List.map
           (fun (s : Cl.Router.shard_status) ->
             Printf.sprintf
               "shard %d: health=%s failovers=%d sent=%d applied=%d lost_ranges=[%s]"
               s.Cl.Router.shard s.Cl.Router.node_health s.Cl.Router.failovers
               s.Cl.Router.sent s.Cl.Router.applied
               (String.concat ";"
                  (List.map
                     (fun (a, b) -> Printf.sprintf "%d,%d" a b)
                     s.Cl.Router.lost_ranges)))
           (Cl.Router.status router)
       in
       Ok
         {
           fingerprints;
           failovers;
           dead_lettered;
           flaky_quarantined;
           shard_accounts;
           status_lines;
         }
     with
    | r -> finish r
    | exception e -> finish (Error (Printexc.to_string e)))

  (* The single-node schedules mostly carry over; bit-flip's fsync
     burst is lengthened so one node's retry run (3 retries) is beaten
     even when the global hit sequence interleaves both nodes. *)
  let scenarios ~updates =
    List.map
      (fun (sc : Chaos.scenario) ->
        if sc.Chaos.sname = "bit-flip" then
          {
            sc with
            Chaos.arm =
              (fun ~updates ->
                Fp.arm "wal.write" ~after:(updates / 3) ~times:1 (Fp.Bit_flip 12);
                Fp.arm "wal.fsync" ~after:(updates / 2 / 256) ~times:8 Fp.Fail);
          }
        else sc)
      (Chaos.scenarios ~updates)

  let run_scenario_cluster ~dir ~updates ~nodes ~seed (sc : Chaos.scenario) =
    let stream = Chaos.make_stream ~updates ~nodes ~poison:sc.Chaos.poison in
    Fp.reset ();
    let reference = reference_fingerprints ~flaky:sc.Chaos.flaky (Array.to_list stream) in
    Fp.enable ~seed ();
    sc.Chaos.arm ~updates;
    let armed = List.map fst (Fp.armed ()) in
    let chaotic =
      run_stream_cluster ~label:sc.Chaos.sname ~dir ~stream ~flaky:sc.Chaos.flaky ()
    in
    let vacuous = List.filter (fun name -> Fp.fired name = 0) armed in
    Fp.reset ();
    match chaotic with
    | Error e -> Error ("cluster chaos run failed: " ^ e)
    | Ok c ->
        if vacuous <> [] then
          Error ("armed failpoints never fired: " ^ String.concat ", " vacuous)
        else if sc.Chaos.expect_crash && c.failovers = 0 then
          Error "expected at least one failover, saw none"
        else if c.fingerprints <> reference then begin
          List.iter2
            (fun (name, a) (_, b) ->
              if a <> b then
                Printf.eprintf "  %s: cluster fingerprint %d vs reference %d\n" name a b)
            c.fingerprints reference;
          Array.iteri
            (fun i (owned, logged, absorbed) ->
              Printf.eprintf
                "  shard %d: %d stream updates owned, %d logged as sent, %d absorbed by node\n"
                i owned logged absorbed)
            c.shard_accounts;
          List.iter (fun l -> Printf.eprintf "  %s\n" l) c.status_lines;
          Error "final fingerprints diverge from the fault-free reference"
        end
        else if sc.Chaos.poison && c.dead_lettered = 0 then
          Error "poison update was not dead-lettered"
        else if sc.Chaos.flaky && not c.flaky_quarantined then
          Error "flaky view was never quarantined on any shard"
        else Ok c
end

let chaos_cmd =
  let updates_arg =
    Arg.(value & opt int 20_000 & info [ "updates" ] ~docv:"N" ~doc:"Stream length.")
  in
  let nodes_arg =
    Arg.(value & opt int 100 & info [ "nodes" ] ~docv:"K" ~doc:"Graph node count.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S"
           ~doc:"Base fault seed; scenario i runs under seed S+i.")
  in
  let scenario_arg =
    Arg.(value & opt string "all" & info [ "scenario" ] ~docv:"NAME"
           ~doc:"Scenario to run (torn-wal, ckpt-fsync, ckpt-rename, bit-flip, \
                 poison, flaky) or 'all'.")
  in
  let dir_arg =
    Arg.(value & opt string "" & info [ "dir" ] ~docv:"DIR"
           ~doc:"Working directory (default: a fresh directory under the \
                 system temp dir).")
  in
  let cluster_arg =
    Arg.(value & flag & info [ "cluster" ]
           ~doc:"Run the same fault scenarios against the sharded router path \
                 (2 loopback nodes, failover on node death, per-shard send-log \
                 re-send) instead of the single-process pipeline.")
  in
  let run updates nodes seed scenario dir cluster =
    if updates < 100 then begin
      prerr_endline "--updates must be >= 100";
      exit 2
    end;
    let dir =
      if dir <> "" then dir
      else
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "ivm_chaos_%d" (Unix.getpid ()))
    in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let all =
      if cluster then Cluster_cli.scenarios ~updates else Chaos.scenarios ~updates
    in
    let chosen =
      if scenario = "all" then all
      else
        match List.filter (fun (s : Chaos.scenario) -> s.Chaos.sname = scenario) all with
        | [] ->
            Printf.eprintf "ivm_cli: unknown scenario %s\n" scenario;
            exit 2
        | l -> l
    in
    Printf.printf "chaos soak: %d updates, %d scenario(s), dir %s\n%!" updates
      (List.length chosen) dir;
    let failures = ref 0 in
    List.iteri
      (fun i (sc : Chaos.scenario) ->
        let seed = seed + i in
        Printf.printf "[%-11s] seed %-3d %s ...%!" sc.Chaos.sname seed sc.Chaos.describe;
        if cluster then
          match Cluster_cli.run_scenario_cluster ~dir ~updates ~nodes ~seed sc with
          | Ok c ->
              Printf.printf " PASS (%d failover(s), %d dead-lettered%s)\n%!"
                c.Cluster_cli.failovers c.Cluster_cli.dead_lettered
                (if c.Cluster_cli.flaky_quarantined then ", flaky quarantined" else "")
          | Error msg ->
              incr failures;
              Printf.printf " FAIL: %s\n%!" msg
        else
          match Chaos.run_scenario ~dir ~updates ~nodes ~seed sc with
          | Ok c ->
              Printf.printf
                " PASS (%d crash-recoveries, %d dead-lettered%s)\n%!"
                c.Chaos.crashes c.Chaos.dead_lettered
                (if c.Chaos.quarantined_seen <> [] then
                   ", quarantined: " ^ String.concat "," c.Chaos.quarantined_seen
                 else "")
          | Error msg ->
              incr failures;
              Printf.printf " FAIL: %s\n%!" msg)
      chosen;
    if !failures > 0 then begin
      Printf.printf "%d scenario(s) failed\n" !failures;
      exit 1
    end
    else Printf.printf "all scenarios converged to the fault-free reference state\n"
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Soak the durable serving pipeline under seeded fault injection \
             (torn writes, failed fsyncs, bit flips, poison updates) and \
             verify convergence to a fault-free reference run")
    Term.(const run $ updates_arg $ nodes_arg $ seed_arg $ scenario_arg $ dir_arg
          $ cluster_arg)

(* ------------------------------------------------------------------ *)
(* bench-net: a YCSB-style closed-loop load generator against a running
   [serve --listen] process. N connections, each its own domain, each
   issuing a read/update mix — reads are CQAP point lookups with
   Zipf-distributed keys, updates are single-edge ingests. Emits
   BENCH_net.json with throughput and per-op-class latency tails.      *)

module Bench_net = struct
  module D = Ivm_data
  module U = D.Update
  module C = Ivm_net.Client
  module W = Ivm_net.Wire

  type op_stats = { count : int; p50_ms : float; p99_ms : float; max_ms : float }

  type mix_result = {
    read_pct : int;
    conns : int;
    ops : int;
    duration : float;
    throughput : float;
    reads : op_stats;
    updates : op_stats;
    (* client-process GC pressure over the mix: encode/decode work per
       op on this side of the wire *)
    gc_minor_words : float;
    gc_major_words : float;
    gc_compactions : int;
  }

  let op_stats samples =
    match samples with
    | [||] -> { count = 0; p50_ms = 0.; p99_ms = 0.; max_ms = 0. }
    | s ->
        Array.sort compare s;
        let n = Array.length s in
        let at q = s.(min (n - 1) (int_of_float (q *. float_of_int n))) *. 1e3 in
        { count = n; p50_ms = at 0.5; p99_ms = at 0.99; max_ms = s.(n - 1) *. 1e3 }

  (* Retry the first connection while the server is still binding. *)
  let rec connect_retrying ~host ~port tries =
    match C.connect ~host ~port () with
    | Ok c -> Ok c
    | Error _ when tries > 0 ->
        Unix.sleepf 0.1;
        connect_retrying ~host ~port (tries - 1)
    | Error e -> Error e

  (* One connection's closed loop; returns (read latencies, update
     latencies, minor words allocated by this domain) or the first hard
     error. Minor words are per-domain in OCaml 5, so each worker
     reports its own and [run_mix] sums them. *)
  let worker ~host ~port ~view ~nodes ~skew ~ops ~read_pct ~seed () =
    let mw0 = Gc.minor_words () in
    match C.connect ~host ~port () with
    | Error e -> Error (W.error_to_string e)
    | Ok c ->
        let rng = Random.State.make [| seed |] in
        let zipf = Ivm_workload.Zipf.create ~n:nodes ~s:skew in
        let reads = ref [] and updates = ref [] in
        let rels = [| "R"; "S"; "T" |] in
        let rec loop i =
          if i > ops then Ok ()
          else begin
            let t0 = Unix.gettimeofday () in
            let r =
              if Random.State.int rng 100 < read_pct then
                match
                  C.lookup c ~view
                    ~prefix:(D.Tuple.of_ints [ Ivm_workload.Zipf.sample zipf rng ])
                with
                | Ok _ ->
                    reads := (Unix.gettimeofday () -. t0) :: !reads;
                    Ok ()
                | Error e -> Error e
              else
                let u =
                  U.make
                    ~rel:rels.(Random.State.int rng 3)
                    ~tuple:
                      (D.Tuple.of_ints
                         [
                           Ivm_workload.Zipf.sample zipf rng;
                           Ivm_workload.Zipf.sample zipf rng;
                         ])
                    ~payload:(if Random.State.int rng 5 = 0 then -1 else 1)
                in
                match C.ingest c [ u ] with
                | Ok _ ->
                    updates := (Unix.gettimeofday () -. t0) :: !updates;
                    Ok ()
                | Error e -> Error e
            in
            match r with Ok () -> loop (i + 1) | Error e -> Error e
          end
        in
        let r = loop 1 in
        C.close c;
        (match r with
        | Ok () ->
            Ok
              ( Array.of_list !reads,
                Array.of_list !updates,
                Gc.minor_words () -. mw0 )
        | Error e -> Error (W.error_to_string e))

  let run_mix ~host ~port ~view ~nodes ~skew ~conns ~ops ~read_pct ~seed =
    let t0 = Unix.gettimeofday () in
    (* Minor words come from the workers (per-domain counters); major
       words and compactions are process-wide, read here via
       [quick_stat]. *)
    let g0 = Gc.quick_stat () in
    let domains =
      List.init conns (fun i ->
          Domain.spawn
            (worker ~host ~port ~view ~nodes ~skew ~ops ~read_pct
               ~seed:(seed + (101 * i))))
    in
    let results = List.map Domain.join domains in
    let g1 = Gc.quick_stat () in
    let duration = Unix.gettimeofday () -. t0 in
    match
      List.find_map (function Error e -> Some e | Ok _ -> None) results
    with
    | Some e -> Error e
    | None ->
        let all = List.filter_map Result.to_option results in
        let reads = Array.concat (List.map (fun (r, _, _) -> r) all) in
        let updates = Array.concat (List.map (fun (_, u, _) -> u) all) in
        let minor = List.fold_left (fun acc (_, _, w) -> acc +. w) 0. all in
        let total = Array.length reads + Array.length updates in
        Ok
          {
            read_pct;
            conns;
            ops = total;
            duration;
            throughput = (if duration > 0. then float_of_int total /. duration else 0.);
            reads = op_stats reads;
            updates = op_stats updates;
            gc_minor_words = minor;
            gc_major_words = g1.Gc.major_words -. g0.Gc.major_words;
            gc_compactions = g1.Gc.compactions - g0.Gc.compactions;
          }

  let json_of_results results out =
    let b = Buffer.create 1024 in
    let op name (s : op_stats) =
      Printf.bprintf b
        "      \"%s\": {\"count\": %d, \"p50_ms\": %.4f, \"p99_ms\": %.4f, \"max_ms\": %.4f}"
        name s.count s.p50_ms s.p99_ms s.max_ms
    in
    Buffer.add_string b "{\n  \"bench\": \"net\",\n  \"mixes\": [\n";
    List.iteri
      (fun i r ->
        if i > 0 then Buffer.add_string b ",\n";
        Printf.bprintf b
          "    {\n\
          \      \"read_pct\": %d,\n\
          \      \"connections\": %d,\n\
          \      \"ops\": %d,\n\
          \      \"duration_s\": %.3f,\n\
          \      \"throughput_ops_s\": %.1f,\n\
          \      \"gc_minor_words\": %.0f,\n\
          \      \"gc_minor_words_per_op\": %.2f,\n\
          \      \"gc_major_words\": %.0f,\n\
          \      \"gc_compactions\": %d,\n"
          r.read_pct r.conns r.ops r.duration r.throughput r.gc_minor_words
          (if r.ops > 0 then r.gc_minor_words /. float_of_int r.ops else 0.)
          r.gc_major_words r.gc_compactions;
        op "read" r.reads;
        Buffer.add_string b ",\n";
        op "update" r.updates;
        Buffer.add_string b "\n    }")
      results;
    Buffer.add_string b "\n  ]\n}\n";
    let oc = open_out out in
    output_string oc (Buffer.contents b);
    close_out oc
end

let bench_net_cmd =
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Server host.")
  in
  let port_arg =
    Arg.(required & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let conns_arg =
    Arg.(value & opt int 4 & info [ "conns" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let ops_arg =
    Arg.(value & opt int 2_000 & info [ "ops" ] ~docv:"N" ~doc:"Operations per connection.")
  in
  let mixes_arg =
    Arg.(value & opt string "95:5,50:50" & info [ "mixes" ] ~docv:"MIXES"
           ~doc:"Comma-separated read:update mixes, e.g. 95:5,50:50.")
  in
  let view_arg =
    Arg.(value & opt string "paths-rs" & info [ "view" ] ~docv:"VIEW"
           ~doc:"View targeted by lookups.")
  in
  let nodes_arg =
    Arg.(value & opt int 200 & info [ "nodes" ] ~docv:"K" ~doc:"Key domain size.")
  in
  let skew_arg =
    Arg.(value & opt float 1.1 & info [ "skew" ] ~docv:"S" ~doc:"Zipf exponent for keys.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let out_arg =
    Arg.(value & opt string "BENCH_net.json" & info [ "out" ] ~docv:"FILE"
           ~doc:"JSON output path.")
  in
  let shutdown_arg =
    Arg.(value & flag & info [ "shutdown" ]
           ~doc:"Send a Shutdown request to the server after the last mix.")
  in
  let run host port conns ops mixes view nodes skew seed out shutdown =
    if conns < 1 || ops < 1 || nodes < 1 then begin
      prerr_endline "--conns, --ops and --nodes must be >= 1";
      exit 2
    end;
    let parse_mix s =
      match String.split_on_char ':' (String.trim s) with
      | [ r; u ] -> (
          match (int_of_string_opt r, int_of_string_opt u) with
          | Some r, Some u when r >= 0 && u >= 0 && r + u > 0 -> r * 100 / (r + u)
          | _ -> prerr_endline ("bad mix: " ^ s); exit 2)
      | _ -> prerr_endline ("bad mix: " ^ s); exit 2
    in
    let read_pcts = List.map parse_mix (String.split_on_char ',' mixes) in
    if read_pcts = [] then begin prerr_endline "--mixes is empty"; exit 2 end;
    (* Probe (with retries) that the server is up before spawning load. *)
    (match Bench_net.connect_retrying ~host ~port 50 with
    | Error e ->
        Printf.eprintf "ivm_cli: cannot reach %s:%d: %s\n" host port
          (Ivm_net.Wire.error_to_string e);
        exit 1
    | Ok c -> (
        match Ivm_net.Client.ping c with
        | Ok () -> Ivm_net.Client.close c
        | Error e ->
            Printf.eprintf "ivm_cli: ping failed: %s\n" (Ivm_net.Wire.error_to_string e);
            exit 1));
    Printf.printf "bench-net: %s:%d, %d conns x %d ops, mixes [%s], view %s\n%!" host
      port conns ops mixes view;
    let results =
      List.map
        (fun read_pct ->
          match
            Bench_net.run_mix ~host ~port ~view ~nodes ~skew ~conns ~ops ~read_pct ~seed
          with
          | Error e ->
              Printf.eprintf "ivm_cli: mix %d%% reads failed: %s\n" read_pct e;
              exit 1
          | Ok r ->
              Printf.printf
                "  %3d%% reads: %7d ops in %6.2fs = %8.0f op/s | read p50 %.3fms \
                 p99 %.3fms | update p50 %.3fms p99 %.3fms\n%!"
                r.Bench_net.read_pct r.Bench_net.ops r.Bench_net.duration
                r.Bench_net.throughput r.Bench_net.reads.Bench_net.p50_ms
                r.Bench_net.reads.Bench_net.p99_ms r.Bench_net.updates.Bench_net.p50_ms
                r.Bench_net.updates.Bench_net.p99_ms;
              r)
        read_pcts
    in
    Bench_net.json_of_results results out;
    Printf.printf "wrote %s\n" out;
    if shutdown then
      match Ivm_net.Client.connect ~host ~port () with
      | Error e ->
          Printf.eprintf "ivm_cli: shutdown connect failed: %s\n"
            (Ivm_net.Wire.error_to_string e);
          exit 1
      | Ok c -> (
          match Ivm_net.Client.shutdown c with
          | Ok () ->
              Ivm_net.Client.close c;
              print_endline "server acknowledged shutdown"
          | Error e ->
              Printf.eprintf "ivm_cli: shutdown failed: %s\n"
                (Ivm_net.Wire.error_to_string e);
              exit 1)
  in
  Cmd.v
    (Cmd.info "bench-net"
       ~doc:"Closed-loop load generator against a running 'serve --listen' \
             process: N connections issuing read/update mixes with Zipf keys; \
             emits BENCH_net.json with throughput and p50/p99 per op class")
    Term.(const run $ host_arg $ port_arg $ conns_arg $ ops_arg $ mixes_arg $ view_arg
          $ nodes_arg $ skew_arg $ seed_arg $ out_arg $ shutdown_arg)

(* ------------------------------------------------------------------ *)
(* cluster: spawn a sharded loopback cluster, route a workload through
   the fault-tolerant router, optionally kill a primary mid-run, and
   verify against a single-node reference.                             *)

let cluster_cmd =
  let shards_arg =
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc:"Shard count \
           (rounded up to a power of two).")
  in
  let updates_arg =
    Arg.(value & opt int 50_000 & info [ "updates" ] ~docv:"N" ~doc:"Stream length.")
  in
  let nodes_arg =
    Arg.(value & opt int 200 & info [ "nodes" ] ~docv:"K" ~doc:"Graph node count.")
  in
  let no_standby_arg =
    Arg.(value & flag & info [ "no-standby" ]
           ~doc:"Do not keep a warm standby per shard.")
  in
  let kill_arg =
    Arg.(value & opt int 0 & info [ "kill" ] ~docv:"SHARD"
           ~doc:"Kill this shard's primary halfway through and promote a \
                 replacement; -1 disables the kill.")
  in
  let dir_arg =
    Arg.(value & opt string "" & info [ "dir" ] ~docv:"DIR"
           ~doc:"Cluster state directory (default: fresh under the temp dir).")
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"Retry-jitter seed.")
  in
  let run shards updates nodes no_standby kill dir seed =
    Cluster_cli.run_demo ~shards ~updates ~nodes ~standby:(not no_standby) ~kill ~dir
      ~seed
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:"Spawn an N-shard loopback cluster behind the fault-tolerant \
             router, stream the standard graph workload through it (killing \
             and failing over one primary mid-run), and verify every view \
             against a single-node reference")
    Term.(const run $ shards_arg $ updates_arg $ nodes_arg $ no_standby_arg $ kill_arg
          $ dir_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* bench-cluster: closed-loop mixed load against an in-process sharded
   cluster; a primary is killed mid-run under a quiesced fence and the
   recovery time plus p99/p999 tails land in BENCH_cluster.json.       *)

module Bench_cluster = struct
  module D = Ivm_data
  module U = D.Update
  module Cl = Ivm_cluster
  module G = Ivm_workload.Graph_gen

  type op_stats = {
    count : int;
    p50_ms : float;
    p99_ms : float;
    p999_ms : float;
    max_ms : float;
  }

  let op_stats samples =
    match samples with
    | [||] -> { count = 0; p50_ms = 0.; p99_ms = 0.; p999_ms = 0.; max_ms = 0. }
    | s ->
        Array.sort compare s;
        let n = Array.length s in
        let at q = s.(min (n - 1) (int_of_float (q *. float_of_int n))) *. 1e3 in
        {
          count = n;
          p50_ms = at 0.5;
          p99_ms = at 0.99;
          p999_ms = at 0.999;
          max_ms = s.(n - 1) *. 1e3;
        }

  (* One closed-loop worker. Updates come from a per-worker graph
     generator (valid delete patterns), reads are 4:1 keyed point
     lookups vs scattered merges. Returns latency samples and the
     updates it sent, for the post-run reference replay. *)
  let worker ~router ~ops ~read_pct ~nodes ~skew ~seed ~progress ~completed () =
    let rng = Random.State.make [| seed |] in
    let zipf = Ivm_workload.Zipf.create ~n:nodes ~s:skew in
    let gen = G.create ~seed { G.nodes; skew; delete_ratio = 0.2 } in
    let reads = ref [] and upd_lat = ref [] and sent = ref [] in
    let rec loop i =
      if i > ops then Ok ()
      else begin
        let t0 = Unix.gettimeofday () in
        let r =
          if Random.State.int rng 100 < read_pct then
            let res =
              if Random.State.int rng 5 > 0 then
                (* Two bound columns keep the answer fan small; the
                   first still routes to B's owner shard. *)
                Cl.Router.lookup router ~view:"paths-rs"
                  ~prefix:
                    (D.Tuple.of_ints
                       [
                         Ivm_workload.Zipf.sample zipf rng;
                         Ivm_workload.Zipf.sample zipf rng;
                       ])
              else Cl.Router.lookup router ~view:"tri-count" ~prefix:(D.Tuple.of_ints [])
            in
            match res with
            | Ok _ ->
                reads := (Unix.gettimeofday () -. t0) :: !reads;
                Ok ()
            | Error e -> Error e
          else begin
            let e = G.next gen in
            let rel = match e.G.rel with 0 -> "R" | 1 -> "S" | _ -> "T" in
            let u =
              U.make ~rel ~tuple:(D.Tuple.of_ints [ e.G.src; e.G.dst ]) ~payload:e.G.mult
            in
            match Cl.Router.ingest router [ u ] with
            | Ok _ ->
                sent := u :: !sent;
                upd_lat := (Unix.gettimeofday () -. t0) :: !upd_lat;
                Ok ()
            | Error m -> Error m
          end
        in
        Atomic.incr progress;
        match r with Ok () -> loop (i + 1) | Error e -> Error e
      end
    in
    let r = loop 1 in
    Atomic.incr completed;
    match r with
    | Ok () -> Ok (Array.of_list !reads, Array.of_list !upd_lat, !sent)
    | Error e -> Error e

  let json_out ~out ~shards ~conns ~read_pct ~total_ops ~duration ~throughput
      ~kill_shard ~recovery_ms ~pause_ms ~failovers ~fingerprint_match ~reads ~updates =
    let b = Buffer.create 1024 in
    let op name (s : op_stats) =
      Printf.bprintf b
        "  \"%s\": {\"count\": %d, \"p50_ms\": %.4f, \"p99_ms\": %.4f, \"p999_ms\": \
         %.4f, \"max_ms\": %.4f}"
        name s.count s.p50_ms s.p99_ms s.p999_ms s.max_ms
    in
    Printf.bprintf b
      "{\n\
      \  \"bench\": \"cluster\",\n\
      \  \"shards\": %d,\n\
      \  \"connections\": %d,\n\
      \  \"read_pct\": %d,\n\
      \  \"ops\": %d,\n\
      \  \"duration_s\": %.3f,\n\
      \  \"throughput_ops_s\": %.1f,\n\
      \  \"kill_shard\": %d,\n\
      \  \"recovery_ms\": %.2f,\n\
      \  \"pause_ms\": %.2f,\n\
      \  \"failovers\": %d,\n\
      \  \"fingerprint_match\": %b,\n"
      shards conns read_pct total_ops duration throughput kill_shard recovery_ms
      pause_ms failovers fingerprint_match;
    op "reads" reads;
    Buffer.add_string b ",\n";
    op "updates" updates;
    Buffer.add_string b "\n}\n";
    let oc = open_out out in
    output_string oc (Buffer.contents b);
    close_out oc
end

let bench_cluster_cmd =
  let shards_arg =
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc:"Shard count.")
  in
  let conns_arg =
    Arg.(value & opt int 4 & info [ "conns" ] ~docv:"C" ~doc:"Worker domains.")
  in
  let ops_arg =
    Arg.(value & opt int 4_000 & info [ "ops" ] ~docv:"N" ~doc:"Ops per worker.")
  in
  let read_pct_arg =
    Arg.(value & opt int 50 & info [ "read-pct" ] ~docv:"P" ~doc:"Read percentage.")
  in
  let nodes_arg =
    Arg.(value & opt int 200 & info [ "nodes" ] ~docv:"K" ~doc:"Graph node count.")
  in
  let skew_arg =
    Arg.(value & opt float 1.1 & info [ "skew" ] ~docv:"S" ~doc:"Zipf skew.")
  in
  let kill_arg =
    Arg.(value & opt int 0 & info [ "kill" ] ~docv:"SHARD"
           ~doc:"Kill this shard's primary once half the ops are done \
                 (quiesced); -1 disables.")
  in
  let dir_arg =
    Arg.(value & opt string "" & info [ "dir" ] ~docv:"DIR"
           ~doc:"Cluster state directory (default: fresh under the temp dir).")
  in
  let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"Seed.") in
  let out_arg =
    Arg.(value & opt string "BENCH_cluster.json" & info [ "out" ] ~docv:"FILE"
           ~doc:"JSON output path.")
  in
  let run shards conns ops read_pct nodes skew kill dir seed out =
    let module Bc = Bench_cluster in
    let module Cl = Ivm_cluster in
    let module M = Ivm_engine.Maintainable in
    let dir =
      if dir <> "" then dir
      else
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "ivm_bench_cluster_%d" (Unix.getpid ()))
    in
    Cluster_cli.rm_rf dir;
    let router =
      match
        Cl.Router.start ~standby:true ~checkpoint_every:8192 ~handlers:4 ~timeout:10.
          ~seed ~base_dir:dir
          ~topology:(Cluster_cli.topology ~shards)
          ~declare:(Cluster_cli.declare ~flaky:false) ()
      with
      | Ok r -> r
      | Error m ->
          Printf.eprintf "ivm_cli: cluster start failed: %s\n" m;
          exit 1
    in
    Printf.printf "bench-cluster: %d shard(s), %d worker(s) x %d ops, %d%% reads\n%!"
      (Cl.Router.shard_count router) conns ops read_pct;
    let progress = Atomic.make 0 and completed = Atomic.make 0 in
    let t0 = Unix.gettimeofday () in
    let domains =
      List.init conns (fun i ->
          Domain.spawn
            (Bc.worker ~router ~ops ~read_pct ~nodes ~skew ~seed:(seed + (101 * i))
               ~progress ~completed))
    in
    let total = conns * ops in
    let recovery_ms = ref 0. and pause_ms = ref 0. in
    if kill >= 0 then begin
      while Atomic.get progress < total / 2 && Atomic.get completed < conns do
        Unix.sleepf 0.001
      done;
      let tp = Unix.gettimeofday () in
      match
        Cl.Router.quiesced router (fun () ->
            Cl.Router.kill_primary router ~shard:kill;
            Cl.Router.fail_over router ~shard:kill)
      with
      | Ok (Ok (dt, recovered)) ->
          pause_ms := (Unix.gettimeofday () -. tp) *. 1e3;
          recovery_ms := dt *. 1e3;
          Printf.printf
            "killed shard %d at op %d: promoted in %.1f ms (%d records recovered, \
             ingest paused %.1f ms)\n%!"
            kill (Atomic.get progress) !recovery_ms recovered !pause_ms
      | Ok (Error m) | Error m ->
          Printf.eprintf "ivm_cli: mid-run failover failed: %s\n" m;
          Cl.Router.stop router;
          exit 1
    end;
    let results = List.map Domain.join domains in
    let duration = Unix.gettimeofday () -. t0 in
    (match List.find_map (function Error e -> Some e | Ok _ -> None) results with
    | Some e ->
        Printf.eprintf "ivm_cli: worker failed: %s\n" e;
        Cl.Router.stop router;
        exit 1
    | None -> ());
    let all = List.filter_map Result.to_option results in
    let reads = Bc.op_stats (Array.concat (List.map (fun (r, _, _) -> r) all)) in
    let upd = Bc.op_stats (Array.concat (List.map (fun (_, u, _) -> u) all)) in
    let sent = List.concat_map (fun (_, _, s) -> s) all in
    let failovers =
      List.fold_left
        (fun acc (s : Cl.Router.shard_status) -> acc + s.Cl.Router.failovers)
        0 (Cl.Router.status router)
    in
    (* Post-failover consistency: every view must equal the fault-free
       single-node reference over exactly the updates the workers sent
       (ring updates commute, so worker interleaving is irrelevant). *)
    let reference = Cluster_cli.reference_fingerprints sent in
    let mismatched =
      List.filter
        (fun (name, ref_fp) ->
          match Cl.Router.fingerprint router ~view:name with
          | Ok fp -> fp <> ref_fp
          | Error m ->
              Printf.eprintf "ivm_cli: fingerprint %s: %s\n" name m;
              true)
        reference
    in
    let ops_done = reads.Bc.count + upd.Bc.count in
    let throughput = if duration > 0. then float_of_int ops_done /. duration else 0. in
    Printf.printf
      "%d ops in %.2fs (%.0f ops/s) | read p50 %.3fms p99 %.3fms p999 %.3fms | \
       update p50 %.3fms p99 %.3fms p999 %.3fms | %d failover(s)\n"
      ops_done duration throughput reads.Bc.p50_ms reads.Bc.p99_ms reads.Bc.p999_ms
      upd.Bc.p50_ms upd.Bc.p99_ms upd.Bc.p999_ms failovers;
    Bc.json_out ~out ~shards:(Cl.Router.shard_count router) ~conns ~read_pct
      ~total_ops:ops_done ~duration ~throughput ~kill_shard:kill
      ~recovery_ms:!recovery_ms ~pause_ms:!pause_ms ~failovers
      ~fingerprint_match:(mismatched = []) ~reads ~updates:upd;
    Printf.printf "wrote %s\n" out;
    Cl.Router.stop router;
    if mismatched <> [] then begin
      List.iter
        (fun (name, _) ->
          Printf.printf "view %s diverged from the single-node reference\n" name)
        mismatched;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "bench-cluster"
       ~doc:"Closed-loop mixed load against an in-process sharded cluster; \
             kills a primary mid-run under a quiesced fence and emits \
             BENCH_cluster.json with recovery time and p99/p999 tails")
    Term.(const run $ shards_arg $ conns_arg $ ops_arg $ read_pct_arg $ nodes_arg
          $ skew_arg $ kill_arg $ dir_arg $ seed_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* bench-mixed: the multi-tenant adversarial macro-benchmark. Tens to
   hundreds of heterogeneous tenant views (lib/workload/mixed) behind
   one read-your-writes server or a sharded cluster, driven closed-loop
   by drifting-Zipf workers. The closed-economy conservation invariant
   is sampled online under a quiesced fence, and the whole final state
   is replayed offline through the lib/check oracle over exactly the
   updates the workers sent (ring updates commute, so the worker
   interleaving is irrelevant).                                        *)

module Bench_mixed = struct
  module D = Ivm_data
  module U = D.Update
  module Db = D.Database.Z
  module Mx = Ivm_workload.Mixed
  module St = Ivm_stream
  module N = Ivm_net
  module Cl = Ivm_cluster
  module Ck = Ivm_check
  module Bc = Bench_cluster

  let wire = Ivm_net.Wire.error_to_string

  (* One worker's endpoint: an epoch-token session in single-server
     mode, the shared fault-tolerant router in cluster mode. *)
  type conn = {
    c_write : int U.t list -> (unit, string) result;
    c_read : view:string -> ((D.Tuple.t * int) list, string) result;
    c_close : unit -> unit;
  }

  type backend = {
    b_conn : int -> conn;  (** worker index -> endpoint *)
    b_snapshot : view:string -> ((D.Tuple.t * int) list, string) result;
        (** epoch-fenced consistent read; callers park the workers
            between ops first, so transfer pairs are never split *)
    b_stop : unit -> unit;
  }

  let declare_tenants reg tenants =
    List.iter
      (fun (tn : Mx.tenant) ->
        List.iter
          (fun (name, cols) ->
            ignore (St.Registry.declare_table reg name (D.Schema.of_list cols)))
          tn.Mx.tables;
        St.Registry.register reg ~name:tn.Mx.name (Mx.factory tn))
      tenants

  let init_updates tenants ~accounts =
    List.concat_map (fun tn -> Mx.init_updates tn ~accounts) tenants

  (* In-process single server: the same scheduler/registry/TCP wiring
     as [serve --listen], minus the WAL — sessions get their epoch
     tokens from the queue watermark and reads gate on the served
     watermark, so every worker observes its own writes. *)
  let single_server ~tenants ~accounts ~workers () =
    let db = Db.create () in
    List.iter
      (fun (tn : Mx.tenant) ->
        List.iter
          (fun (name, cols) -> ignore (Db.declare db name (D.Schema.of_list cols)))
          tn.Mx.tables)
      tenants;
    let metrics = St.Metrics.create () in
    let reg = St.Registry.create ~metrics db in
    List.iter
      (fun (tn : Mx.tenant) -> St.Registry.register reg ~name:tn.Mx.name (Mx.factory tn))
      tenants;
    let queue = St.Queue.create ~capacity:65536 St.Queue.Block in
    let sched = St.Scheduler.create ~queue ~registry:reg ~metrics () in
    let runner = Domain.spawn (fun () -> St.Scheduler.run sched) in
    let ingest ups =
      List.fold_left
        (fun (a, d) u ->
          if St.Queue.push queue (St.Scheduler.item u) then (a + 1, d) else (a, d + 1))
        (0, 0) ups
    in
    let ingest_rw ups =
      let admitted, dropped = ingest ups in
      (admitted, dropped, St.Queue.pushed queue)
    in
    let srv =
      match
        N.Server.start ~port:0 ~handlers:(workers + 2) ~ingest ~ingest_rw
          ~served:(fun () -> St.Scheduler.applied sched)
          ~barrier:(fun () -> St.Scheduler.barrier sched)
          ~on_shutdown:(fun () -> St.Queue.close queue)
          ~registry:reg ~metrics ()
      with
      | Ok srv -> srv
      | Error e -> failwith ("server start: " ^ wire e)
    in
    let port = N.Server.port srv in
    (* Opening balances stream in like any other write; drain them
       before unleashing the workers. *)
    let init = init_updates tenants ~accounts in
    let admitted, dropped = ingest init in
    if dropped > 0 || admitted <> List.length init then
      failwith "init updates dropped";
    let deadline = Unix.gettimeofday () +. 30. in
    while St.Scheduler.applied sched < admitted && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.001
    done;
    if St.Scheduler.applied sched < admitted then failwith "init apply timed out";
    let admin =
      match N.Client.connect ~port () with
      | Ok c -> c
      | Error e -> failwith ("admin connect: " ^ wire e)
    in
    let conn _i =
      match N.Client.connect ~port () with
      | Error e -> failwith ("worker connect: " ^ wire e)
      | Ok c ->
          let session = N.Client.Session.create c in
          {
            c_write =
              (fun ups ->
                match N.Client.Session.write session ups with
                | Ok (_, 0) -> Ok ()
                | Ok (_, d) -> Error (Printf.sprintf "%d updates dropped" d)
                | Error e -> Error (wire e));
            c_read =
              (fun ~view ->
                (* [Session.read] re-checks the served watermark against
                   the session token client-side: a stale answer
                   surfaces as a read-your-writes violation here. *)
                match
                  N.Client.Session.read session ~view ~prefix:(D.Tuple.of_ints [])
                with
                | Ok entries -> Ok entries
                | Error e -> Error (wire e));
            c_close = (fun () -> N.Client.close c);
          }
    in
    {
      b_conn = conn;
      b_snapshot =
        (fun ~view ->
          match N.Client.barrier admin with
          | Error e -> Error (wire e)
          | Ok _ -> (
              match N.Client.snapshot admin ~view with
              | Ok entries -> Ok entries
              | Error e -> Error (wire e)));
      b_stop =
        (fun () ->
          N.Client.close admin;
          St.Queue.close queue;
          ignore (Domain.join runner);
          N.Server.stop srv);
    }

  (* Sharded cluster: per-tenant partition soundness exactly as in the
     lib/check cluster driver — every tenant view is linear in one of
     its private tables, so hash-partition that one (by group column
     for minmax so a group's multiset stays on one shard, by tuple for
     the economy's accounts and the joins' pivot), broadcast the rest,
     and ring-sum the scattered per-view partials. Window views
     replicate: per-shard watermarks retract panes at different
     times, so scattered partials would mix pane states. *)
  let cluster ~tenants ~accounts ~shards ~dir ~seed () =
    let policies =
      List.concat_map
        (fun (tn : Mx.tenant) ->
          List.map
            (fun (tbl, _) ->
              let policy =
                match tn.Mx.kind with
                | Mx.Minmax -> Cl.Topology.Hash_col 0
                | Mx.Economy -> Cl.Topology.Hash_tuple
                | Mx.Join | Mx.Triangle | Mx.Cascade ->
                    if String.equal tbl (Mx.table tn "R") then Cl.Topology.Hash_tuple
                    else Cl.Topology.Broadcast
                | Mx.Window -> Cl.Topology.Broadcast
              in
              (tbl, policy))
            tn.Mx.tables)
        tenants
    in
    let routes =
      List.map
        (fun (tn : Mx.tenant) ->
          ( tn.Mx.name,
            match tn.Mx.kind with
            | Mx.Window -> Cl.Topology.Replicated
            | _ -> Cl.Topology.Scattered ))
        tenants
    in
    let topology = Cl.Topology.create ~shards ~policies ~routes in
    Cluster_cli.rm_rf dir;
    let router =
      match
        Cl.Router.start ~handlers:4 ~standby:false ~probe_interval:0. ~seed
          ~base_dir:dir ~topology
          ~declare:(fun reg -> declare_tenants reg tenants)
          ()
      with
      | Ok r -> r
      | Error m -> failwith ("cluster start: " ^ m)
    in
    (match Cl.Router.ingest router (init_updates tenants ~accounts) with
    | Ok (_, 0) -> ()
    | Ok (_, d) -> failwith (Printf.sprintf "%d init updates dead-lettered" d)
    | Error m -> failwith ("init ingest: " ^ m));
    (match Cl.Router.barrier router with
    | Ok _ -> ()
    | Error m -> failwith ("init barrier: " ^ m));
    let conn _i =
      {
        c_write =
          (fun ups ->
            match Cl.Router.ingest router ups with
            | Ok (_, 0) -> Ok ()
            | Ok (_, d) -> Error (Printf.sprintf "%d updates dead-lettered" d)
            | Error m -> Error m);
        c_read =
          (fun ~view -> Cl.Router.lookup router ~view ~prefix:(D.Tuple.of_ints []));
        c_close = ignore;
      }
    in
    {
      b_conn = conn;
      b_snapshot = (fun ~view -> Cl.Router.snapshot router ~view);
      b_stop = (fun () -> Cl.Router.stop router);
    }

  type worker_out = {
    w_writes : float list array;  (** latency samples, per tenant index *)
    w_reads : float list array;
    w_sent : int U.t list;  (** every update sent, newest first *)
  }

  (* One closed-loop worker: a Zipf-with-drift step against a uniformly
     random tenant per iteration. Economy steps are zero-sum
     debit/credit pairs within the worker's disjoint account slice, so
     they never overdraw under any interleaving. Workers park between
     ops while the sampler holds the pause flag — the quiesce point the
     conservation fence relies on. *)
  let worker ~backend ~tenants ~keys ~accounts ~drift_period ~ops ~read_pct ~seed
      ~workers ~index ~pause ~parked ~running ~completed () =
    let body () =
      let rng = Random.State.make [| seed; 7919 * (index + 1) |] in
      let drift = Mx.Drift.create ~seed ~keys ~period:drift_period in
      let tarr = Array.of_list tenants in
      let n = Array.length tarr in
      let gens =
        Array.map
          (fun tn -> Mx.Tgen.create ~worker:index ~workers ~accounts tn ~drift ~seed ())
          tarr
      in
      let writes = Array.make n [] and reads = Array.make n [] in
      let sent = ref [] in
      let conn = backend.b_conn index in
      Fun.protect ~finally:conn.c_close (fun () ->
          let rec loop op =
            if op > ops then Ok { w_writes = writes; w_reads = reads; w_sent = !sent }
            else begin
              if Atomic.get pause then begin
                Atomic.incr parked;
                while Atomic.get pause do
                  Unix.sleepf 0.0002
                done;
                Atomic.decr parked
              end;
              let t = Random.State.int rng n in
              let tn = tarr.(t) in
              let r =
                if Random.State.int rng 100 < read_pct then begin
                  let t0 = Unix.gettimeofday () in
                  match conn.c_read ~view:tn.Mx.name with
                  | Ok _ ->
                      reads.(t) <- (Unix.gettimeofday () -. t0) :: reads.(t);
                      Ok ()
                  | Error m -> Error (Printf.sprintf "read %s: %s" tn.Mx.name m)
                end
                else
                  match Mx.Tgen.next gens.(t) ~op with
                  | [] -> Ok ()
                  | ups -> (
                      let t0 = Unix.gettimeofday () in
                      match conn.c_write ups with
                      | Ok () ->
                          writes.(t) <- (Unix.gettimeofday () -. t0) :: writes.(t);
                          sent := List.rev_append ups !sent;
                          Ok ()
                      | Error m -> Error (Printf.sprintf "write %s: %s" tn.Mx.name m))
              in
              match r with Ok () -> loop (op + 1) | Error m -> Error m
            end
          in
          loop 1)
    in
    let result = try body () with e -> Error (Printexc.to_string e) in
    Atomic.decr running;
    Atomic.incr completed;
    result

  (* Park every live worker at its between-ops quiesce point, run [f],
     release. A worker mid-op finishes the op first, so no transfer
     pair is half-admitted when [f] fences and reads. *)
  let quiesced ~pause ~parked ~running f =
    Atomic.set pause true;
    while Atomic.get parked < Atomic.get running do
      Unix.sleepf 0.0002
    done;
    Fun.protect ~finally:(fun () -> Atomic.set pause false) f

  let conservation_errors ~backend ~tenants ~accounts =
    List.filter_map
      (fun (tn : Mx.tenant) ->
        if tn.Mx.kind <> Mx.Economy then None
        else
          match backend.b_snapshot ~view:tn.Mx.name with
          | Error m -> Some (Printf.sprintf "%s: snapshot: %s" tn.Mx.name m)
          | Ok entries -> (
              match Mx.check_conservation tn ~accounts entries with
              | Ok () -> None
              | Error m -> Some m))
      tenants

  (* The offline invariant oracle: rebuild the final state from scratch
     (lib/check's from-scratch recompute) over exactly the init plus
     the updates the workers sent, and compare against the served
     snapshots. Cascade and window views have no oracle recompute and
     are excluded; everything else — including every economy view — is
     covered. *)
  let oracle_check ~backend ~tenants ~accounts ~seed ~sent =
    let oracle_kinds = [ Mx.Join; Mx.Triangle; Mx.Minmax; Mx.Economy ] in
    let oracle_tenants =
      List.filter (fun (tn : Mx.tenant) -> List.mem tn.Mx.kind oracle_kinds) tenants
    in
    let tables = List.concat_map (fun (tn : Mx.tenant) -> tn.Mx.tables) oracle_tenants in
    let table_names = List.map fst tables in
    let case =
      {
        Ck.Case.family = Ck.Case.Mixed;
        seed;
        query = None;
        order = None;
        k = 0;
        schemas = tables;
        init = [];
        stream = [];
      }
    in
    let ora = Ck.Oracle.create case in
    Ck.Oracle.apply ora
      (init_updates oracle_tenants ~accounts
      @ List.filter (fun (u : int U.t) -> List.mem u.U.rel table_names) sent);
    let expected = Ck.Oracle.enumerate ora in
    let tag name entries =
      List.map
        (fun (tp, p) -> (D.Tuple.of_list (D.Value.Str name :: D.Tuple.to_list tp), p))
        entries
    in
    let got =
      Ck.Oracle.normalize
        (List.concat_map
           (fun (tn : Mx.tenant) ->
             match backend.b_snapshot ~view:tn.Mx.name with
             | Ok entries -> tag tn.Mx.name entries
             | Error m -> failwith ("oracle snapshot " ^ tn.Mx.name ^ ": " ^ m))
           oracle_tenants)
    in
    if Ck.Oracle.equal_entries expected got then Ok (List.length oracle_tenants)
    else Error "final state diverges from the lib/check oracle replay"

  type tenant_stat = {
    t_view : string;
    t_kind : string;
    t_writes : Bc.op_stats;
    t_reads : Bc.op_stats;
  }

  type summary = {
    s_views : int;
    s_duration : float;
    s_ops : int;
    s_throughput : float;
    s_tenants : tenant_stat list;
    s_samples : int;  (** conservation fence points, all passing *)
    s_economy_views : int;
    s_oracle_views : int;  (** views the offline oracle covered; 0 = skipped *)
  }

  let run_once ~views ~keys ~accounts ~ops ~workers ~read_pct ~drift_period ~shards
      ~dir ~seed ~sample_ms ~oracle () =
    let tenants = Mx.tenants ~views ~keys in
    let backend =
      if shards >= 2 then cluster ~tenants ~accounts ~shards ~dir ~seed ()
      else single_server ~tenants ~accounts ~workers ()
    in
    Fun.protect ~finally:backend.b_stop (fun () ->
        let pause = Atomic.make false and parked = Atomic.make 0 in
        let running = Atomic.make workers and completed = Atomic.make 0 in
        let t0 = Unix.gettimeofday () in
        let domains =
          List.init workers (fun i ->
              Domain.spawn
                (worker ~backend ~tenants ~keys ~accounts ~drift_period ~ops ~read_pct
                   ~seed ~workers ~index:i ~pause ~parked ~running ~completed))
        in
        let samples = ref 0 and conservation_failures = ref [] in
        while Atomic.get completed < workers do
          Unix.sleepf (float_of_int sample_ms /. 1000.);
          if Atomic.get completed < workers then
            quiesced ~pause ~parked ~running (fun () ->
                match conservation_errors ~backend ~tenants ~accounts with
                | [] -> incr samples
                | errs -> conservation_failures := errs @ !conservation_failures)
        done;
        let results = List.map Domain.join domains in
        let duration = Unix.gettimeofday () -. t0 in
        (* Final sample on the settled stream. *)
        (match conservation_errors ~backend ~tenants ~accounts with
        | [] -> incr samples
        | errs -> conservation_failures := errs @ !conservation_failures);
        (match List.filter_map (function Error e -> Some e | Ok _ -> None) results with
        | [] -> ()
        | errs -> failwith ("worker failed: " ^ String.concat "; " errs));
        if !conservation_failures <> [] then
          failwith
            ("conservation violated: " ^ String.concat "; " !conservation_failures);
        let outs = List.filter_map Result.to_option results in
        let tarr = Array.of_list tenants in
        let s_tenants =
          Array.to_list
            (Array.mapi
               (fun i (tn : Mx.tenant) ->
                 let gather sel =
                   Array.of_list (List.concat_map (fun o -> sel o i) outs)
                 in
                 {
                   t_view = tn.Mx.name;
                   t_kind = Mx.kind_name tn.Mx.kind;
                   t_writes = Bc.op_stats (gather (fun o i -> o.w_writes.(i)));
                   t_reads = Bc.op_stats (gather (fun o i -> o.w_reads.(i)));
                 })
               tarr)
        in
        let s_ops =
          List.fold_left
            (fun acc t -> acc + t.t_writes.Bc.count + t.t_reads.Bc.count)
            0 s_tenants
        in
        let s_oracle_views =
          if not oracle then 0
          else
            let sent = List.concat_map (fun o -> o.w_sent) outs in
            match oracle_check ~backend ~tenants ~accounts ~seed ~sent with
            | Ok n -> n
            | Error m -> failwith m
        in
        {
          s_views = views;
          s_duration = duration;
          s_ops;
          s_throughput =
            (if duration > 0. then float_of_int s_ops /. duration else 0.);
          s_tenants;
          s_samples = !samples;
          s_economy_views =
            List.length
              (List.filter (fun (tn : Mx.tenant) -> tn.Mx.kind = Mx.Economy) tenants);
          s_oracle_views;
        })

  let json_out ~out ~shards ~workers ~ops ~read_pct ~keys ~accounts ~drift_period
      ~seed ~curve (s : summary) =
    let b = Buffer.create 4096 in
    Printf.bprintf b
      "{\n\
      \  \"bench\": \"mixed\",\n\
      \  \"views\": %d,\n\
      \  \"shards\": %d,\n\
      \  \"workers\": %d,\n\
      \  \"ops_per_worker\": %d,\n\
      \  \"read_pct\": %d,\n\
      \  \"keys\": %d,\n\
      \  \"accounts\": %d,\n\
      \  \"drift_period\": %d,\n\
      \  \"seed\": %d,\n\
      \  \"duration_s\": %.3f,\n\
      \  \"ops\": %d,\n\
      \  \"throughput_ops_s\": %.1f,\n\
      \  \"conservation_samples\": %d,\n\
      \  \"conservation_ok\": true,\n\
      \  \"economy_views\": %d,\n\
      \  \"oracle_views\": %d,\n\
      \  \"oracle_ok\": %b,\n"
      s.s_views shards workers ops read_pct keys accounts drift_period seed
      s.s_duration s.s_ops s.s_throughput s.s_samples s.s_economy_views
      s.s_oracle_views
      (s.s_oracle_views > 0);
    Buffer.add_string b "  \"curve\": [";
    List.iteri
      (fun i (v, tp) ->
        Printf.bprintf b "%s{\"views\": %d, \"throughput_ops_s\": %.1f}"
          (if i > 0 then ", " else "")
          v tp)
      curve;
    Buffer.add_string b "],\n  \"tenants\": [\n";
    List.iteri
      (fun i t ->
        if i > 0 then Buffer.add_string b ",\n";
        let op (o : Bc.op_stats) =
          Printf.sprintf
            "{\"count\": %d, \"p50_ms\": %.4f, \"p99_ms\": %.4f, \"p999_ms\": %.4f}"
            o.Bc.count o.Bc.p50_ms o.Bc.p99_ms o.Bc.p999_ms
        in
        Printf.bprintf b "    {\"view\": %S, \"kind\": %S, \"writes\": %s, \"reads\": %s}"
          t.t_view t.t_kind (op t.t_writes) (op t.t_reads))
      s.s_tenants;
    Buffer.add_string b "\n  ]\n}\n";
    let oc = open_out out in
    output_string oc (Buffer.contents b);
    close_out oc
end

let bench_mixed_cmd =
  let views_arg =
    Arg.(value & opt int 20 & info [ "views" ] ~docv:"N"
           ~doc:"Tenant view count (>= 2; kinds cycle join, economy, \
                 triangle, cascade, minmax, window).")
  in
  let keys_arg =
    Arg.(value & opt int 64 & info [ "keys" ] ~docv:"K"
           ~doc:"Key-domain size the Zipf generators draw from.")
  in
  let accounts_arg =
    Arg.(value & opt int 64 & info [ "accounts" ] ~docv:"A"
           ~doc:"Accounts per economy tenant (sliced disjointly across workers).")
  in
  let ops_arg =
    Arg.(value & opt int 2_000 & info [ "ops" ] ~docv:"N"
           ~doc:"Workload steps per worker.")
  in
  let workers_arg =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"W" ~doc:"Worker domains.")
  in
  let read_pct_arg =
    Arg.(value & opt int 30 & info [ "read-pct" ] ~docv:"P"
           ~doc:"Share of steps that read the tenant view through the session.")
  in
  let drift_arg =
    Arg.(value & flag & info [ "drift" ]
           ~doc:"Enable the seeded hot-set drift schedule.")
  in
  let drift_period_arg =
    Arg.(value & opt int 500 & info [ "drift-period" ] ~docv:"N"
           ~doc:"Workload steps between hot-set rotations (with --drift).")
  in
  let shards_arg =
    Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N"
           ~doc:"0 runs the in-process single server; >= 2 runs the sharded \
                 cluster behind the fault-tolerant router.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"RNG seed.") in
  let sample_ms_arg =
    Arg.(value & opt int 250 & info [ "sample-ms" ] ~docv:"MS"
           ~doc:"Interval between online conservation fence points.")
  in
  let curve_arg =
    Arg.(value & flag & info [ "curve" ]
           ~doc:"Also measure throughput at 1/4 and 1/2 of the view count, \
                 for the throughput-vs-view-count curve.")
  in
  let no_oracle_arg =
    Arg.(value & flag & info [ "no-oracle" ]
           ~doc:"Skip the offline lib/check oracle replay of the final state.")
  in
  let dir_arg =
    Arg.(value & opt string "" & info [ "dir" ] ~docv:"DIR"
           ~doc:"Cluster state directory (default: fresh under the temp dir).")
  in
  let out_arg =
    Arg.(value & opt string "BENCH_mixed.json" & info [ "out" ] ~docv:"FILE"
           ~doc:"JSON output path.")
  in
  let run views keys accounts ops workers read_pct drift drift_period shards seed
      sample_ms curve no_oracle dir out =
    let module Bm = Bench_mixed in
    let module Bc = Bench_cluster in
    if views < 2 then begin
      prerr_endline "--views must be >= 2 (the economy tenant is second)";
      exit 2
    end;
    if workers < 1 || ops < 1 || keys < 1 then begin
      prerr_endline "--workers, --ops and --keys must be >= 1";
      exit 2
    end;
    if accounts < 2 then begin prerr_endline "--accounts must be >= 2"; exit 2 end;
    if shards = 1 || shards < 0 then begin
      prerr_endline "--shards must be 0 (single server) or >= 2";
      exit 2
    end;
    if read_pct < 0 || read_pct > 100 then begin
      prerr_endline "--read-pct must be in [0, 100]";
      exit 2
    end;
    if sample_ms < 1 then begin prerr_endline "--sample-ms must be >= 1"; exit 2 end;
    let drift_period = if drift then drift_period else 0 in
    let dir =
      if dir <> "" then dir
      else
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "ivm_bench_mixed_%d" (Unix.getpid ()))
    in
    Printf.printf
      "bench-mixed: %d views (%s), %d worker(s) x %d steps, %d%% reads, drift %s\n%!"
      views
      (if shards >= 2 then Printf.sprintf "%d-shard cluster" shards
       else "single server")
      workers ops read_pct
      (if drift_period > 0 then Printf.sprintf "every %d steps" drift_period else "off");
    let go ~views ~oracle =
      Bm.run_once ~views ~keys ~accounts ~ops ~workers ~read_pct ~drift_period ~shards
        ~dir ~seed ~sample_ms ~oracle ()
    in
    try
      let curve_results =
        if not curve then []
        else
          List.map
            (fun v ->
              let s = go ~views:v ~oracle:false in
              Printf.printf "curve: %4d views: %8.0f ops/s (%d conservation samples)\n%!"
                v s.Bm.s_throughput s.Bm.s_samples;
              (v, s.Bm.s_throughput))
            (List.sort_uniq compare
               (List.filter (fun v -> v >= 2 && v < views) [ views / 4; views / 2 ]))
      in
      let s = go ~views ~oracle:(not no_oracle) in
      Printf.printf "%-8s %-9s %8s %9s %9s %9s %8s %9s %9s %9s\n" "view" "kind"
        "writes" "w p50" "w p99" "w p999" "reads" "r p50" "r p99" "r p999";
      List.iter
        (fun (t : Bm.tenant_stat) ->
          Printf.printf
            "%-8s %-9s %8d %7.3fms %7.3fms %7.3fms %8d %7.3fms %7.3fms %7.3fms\n"
            t.Bm.t_view t.Bm.t_kind t.Bm.t_writes.Bc.count t.Bm.t_writes.Bc.p50_ms
            t.Bm.t_writes.Bc.p99_ms t.Bm.t_writes.Bc.p999_ms t.Bm.t_reads.Bc.count
            t.Bm.t_reads.Bc.p50_ms t.Bm.t_reads.Bc.p99_ms t.Bm.t_reads.Bc.p999_ms)
        s.Bm.s_tenants;
      Printf.printf
        "%d ops in %.2fs (%.0f ops/s) | conservation held at %d fence point(s) across \
         %d economy view(s)\n"
        s.Bm.s_ops s.Bm.s_duration s.Bm.s_throughput s.Bm.s_samples
        s.Bm.s_economy_views;
      if s.Bm.s_oracle_views > 0 then
        Printf.printf "offline oracle replay: %d view(s) match the from-scratch recompute\n"
          s.Bm.s_oracle_views;
      let curve_all = curve_results @ [ (views, s.Bm.s_throughput) ] in
      Bm.json_out ~out ~shards ~workers ~ops ~read_pct ~keys ~accounts ~drift_period
        ~seed ~curve:curve_all s;
      Printf.printf "wrote %s\n" out
    with Failure m ->
      Printf.eprintf "ivm_cli: bench-mixed: %s\n" m;
      exit 1
  in
  Cmd.v
    (Cmd.info "bench-mixed"
       ~doc:"Multi-tenant macro-benchmark: tens-to-hundreds of heterogeneous \
             tenant views behind one read-your-writes server or a sharded \
             cluster, drifting-Zipf closed-loop workers, the closed-economy \
             conservation invariant fenced and asserted online, an offline \
             lib/check oracle replay, and BENCH_mixed.json with per-tenant \
             p50/p99/p999 plus a throughput-vs-view-count curve")
    Term.(const run $ views_arg $ keys_arg $ accounts_arg $ ops_arg $ workers_arg
          $ read_pct_arg $ drift_arg $ drift_period_arg $ shards_arg $ seed_arg
          $ sample_ms_arg $ curve_arg $ no_oracle_arg $ dir_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* fuzz: the differential oracle harness of lib/check.                 *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let module Ck = Ivm_check in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S"
           ~doc:"Master seed; with --runs 1 the case seed itself, so a \
                 reported failure replays exactly.")
  in
  let runs_arg =
    Arg.(value & opt int 100 & info [ "runs" ] ~docv:"N" ~doc:"Cases to execute.")
  in
  let minutes_arg =
    Arg.(value & opt float 0. & info [ "minutes" ] ~docv:"M"
           ~doc:"Wall-clock budget; 0 means unbounded. The loop stops at \
                 whichever of --runs/--minutes is hit first.")
  in
  let engines_arg =
    Arg.(value & opt string "" & info [ "engines" ] ~docv:"E1,E2"
           ~doc:"Restrict the matrix to these engines (comma-separated; \
                 default: every engine applicable to each case).")
  in
  let corpus_arg =
    Arg.(value & opt string "" & info [ "corpus-dir" ] ~docv:"DIR"
           ~doc:"Write shrunk reproducers (*.repro) here.")
  in
  let inject_arg =
    Arg.(value & flag & info [ "inject" ]
           ~doc:"Arm the check.drop_delete failpoint (susceptible engines \
                 silently lose deletes) and demand the harness catches it: \
                 exit 0 iff at least one divergence was found and shrunk to \
                 a small reproducer.")
  in
  let run seed runs minutes engines corpus_dir inject =
    let select =
      if engines = "" then []
      else String.split_on_char ',' engines |> List.map String.trim
           |> List.filter (fun s -> s <> "")
    in
    let unknown = List.filter (fun e -> not (List.mem e Ck.Engines.all_names)) select in
    if unknown <> [] then begin
      Printf.eprintf "ivm_cli: unknown engines: %s (known: %s)\n"
        (String.concat ", " unknown)
        (String.concat ", " Ck.Engines.all_names);
      exit 2
    end;
    if inject then begin
      Ivm_fault.Failpoint.enable ~seed ();
      Ivm_fault.Failpoint.arm Ck.Engines.bug_failpoint ~times:max_int
        Ivm_fault.Failpoint.Fail
    end;
    let minutes = if minutes <= 0. then None else Some minutes in
    let corpus_dir = if corpus_dir = "" then None else Some corpus_dir in
    let t0 = Unix.gettimeofday () in
    let s = Ck.Fuzz.run ?minutes ?corpus_dir ~runs ~select ~log:print_endline ~seed () in
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf "fuzz: seed %d, %d case(s) in %.1fs, %d failure(s)\n" seed s.Ck.Fuzz.runs
      dt
      (List.length s.Ck.Fuzz.failures);
    if inject then begin
      Ivm_fault.Failpoint.reset ();
      match s.Ck.Fuzz.failures with
      | [] ->
          print_endline "FUZZ-INJECT: FAIL (the armed delete-dropping bug went undetected)";
          exit 1
      | fs ->
          let best = List.fold_left (fun acc f -> min acc f.Ck.Fuzz.updates) max_int fs in
          Printf.printf
            "FUZZ-INJECT: OK (%d catch(es); smallest reproducer: %d update(s))\n"
            (List.length fs) best;
          exit 0
    end
    else if s.Ck.Fuzz.failures <> [] then begin
      List.iter
        (fun (f : Ck.Fuzz.failure) ->
          Printf.printf "FUZZ-FAIL seed=%d family=%s updates=%d\n" f.Ck.Fuzz.case_seed
            f.Ck.Fuzz.family f.Ck.Fuzz.updates)
        s.Ck.Fuzz.failures;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: random workloads checked across every \
             maintenance engine against a from-scratch oracle; divergences \
             are delta-debugged to minimal reproducers")
    Term.(const run $ seed_arg $ runs_arg $ minutes_arg $ engines_arg $ corpus_arg
          $ inject_arg)

let sql_cmd =
  let module Sql = Ivm_sql in
  let module V = Ivm_data.Value in
  let e_arg =
    Arg.(value & opt (some string) None & info [ "e"; "execute" ] ~docv:"SQL"
           ~doc:"Execute this SQL text and exit.")
  in
  let file_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Read SQL from this file ('-' for stdin). Without $(docv) \
                 and $(b,-e), reads statements interactively from stdin.")
  in
  let connect_arg =
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"HOST:PORT"
           ~doc:"Run against a live server over the wire protocol instead \
                 of an in-process session. DDL/DML go through the \
                 create_view op, EXPLAIN through the explain op; SELECT is \
                 served by the lookup/snapshot ops and is not routed here.")
  in
  let params_arg =
    Arg.(value & opt_all string [] & info [ "param" ] ~docv:"V"
           ~doc:"Value for the next ? placeholder, in order (repeatable). \
                 Parsed as an integer or real when possible, else a string.")
  in
  let parse_param s =
    match int_of_string_opt s with
    | Some i -> V.Int i
    | None -> (
        match float_of_string_opt s with Some f -> V.Real f | None -> V.Str s)
  in
  let run e file connect params =
    let params = List.map parse_param params in
    let fail msg =
      Printf.eprintf "ivm_cli: %s\n" msg;
      exit 2
    in
    let text =
      match (e, file) with
      | Some s, _ -> Some s
      | None, Some "-" -> Some (In_channel.input_all stdin)
      | None, Some f -> (
          match In_channel.with_open_text f In_channel.input_all with
          | s -> Some s
          | exception Sys_error m -> fail m)
      | None, None -> None
    in
    let remote =
      match connect with
      | None -> None
      | Some hp ->
          let host, port =
            match String.rindex_opt hp ':' with
            | Some i ->
                let h = String.sub hp 0 i in
                let p = String.sub hp (i + 1) (String.length hp - i - 1) in
                ( (if h = "" then "127.0.0.1" else h),
                  match int_of_string_opt p with
                  | Some p -> p
                  | None -> fail ("bad --connect port: " ^ p) )
            | None -> (
                ( "127.0.0.1",
                  match int_of_string_opt hp with
                  | Some p -> p
                  | None -> fail ("bad --connect (want HOST:PORT): " ^ hp) ))
          in
          (match Ivm_net.Client.connect ~host ~port () with
          | Ok c -> Some c
          | Error err -> fail (Ivm_net.Wire.error_to_string err))
    in
    let ok = ref true in
    let exec_text =
      match remote with
      | Some c ->
          fun text ->
            (match Sql.Parser.script text with
            | Error e ->
                Printf.eprintf "error: %s\n%!" e;
                ok := false
            | Ok stmts ->
                List.iter
                  (fun stmt ->
                    if !ok then
                      let r =
                        match stmt with
                        | Sql.Ast.Explain _ ->
                            Ivm_net.Client.explain c (Sql.Ast.print stmt)
                        | Sql.Ast.Select _ ->
                            Error
                              (Ivm_net.Wire.Remote
                                 "SELECT over --connect is not routed through \
                                  the SQL ops; use the lookup/snapshot wire \
                                  ops against the view name")
                        | _ -> Ivm_net.Client.create_view c (Sql.Ast.print stmt)
                      in
                      match r with
                      | Ok out -> print_endline out
                      | Error err ->
                          Printf.eprintf "error: %s\n%!"
                            (Ivm_net.Wire.error_to_string err);
                          ok := false)
                  stmts)
      | None ->
          let sess = Sql.Exec.create () in
          fun text ->
            (match Sql.Exec.exec_text sess ~params text with
            | Ok outs ->
                List.iter (fun o -> print_endline (Sql.Exec.render o)) outs
            | Error e ->
                Printf.eprintf "error: %s\n%!" e;
                ok := false)
    in
    (match text with
    | Some t -> exec_text t
    | None ->
        (* Line-oriented REPL: a statement is submitted once the buffer
           ends with ';'. Also serves piped stdin with no prompts. *)
        let interactive = Unix.isatty Unix.stdin in
        let buf = Buffer.create 256 in
        let prompt () =
          if interactive then begin
            print_string (if Buffer.length buf = 0 then "sql> " else "...> ");
            flush stdout
          end
        in
        let rec loop () =
          prompt ();
          match In_channel.input_line stdin with
          | None -> if interactive then print_newline ()
          | Some line ->
              let trimmed = String.trim line in
              if
                Buffer.length buf = 0
                && (trimmed = "\\q" || trimmed = "quit" || trimmed = "exit")
              then ()
              else begin
                Buffer.add_string buf line;
                Buffer.add_char buf '\n';
                let s = String.trim (Buffer.contents buf) in
                if s <> "" && s.[String.length s - 1] = ';' then begin
                  Buffer.clear buf;
                  exec_text s;
                  if interactive then ok := true
                end;
                loop ()
              end
        in
        loop ());
    Option.iter Ivm_net.Client.close remote;
    if not !ok then exit 1
  in
  Cmd.v
    (Cmd.info "sql"
       ~doc:"SQL front end: CREATE TABLE / CREATE MATERIALIZED VIEW / \
             INSERT / DELETE / SELECT / EXPLAIN against an in-process \
             session, or against a live server via --connect")
    Term.(const run $ e_arg $ file_arg $ connect_arg $ params_arg)

let () =
  let doc = "incremental view maintenance toolbox (PODS 2024 survey reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "ivm_cli" ~version:Core.Ivm.version ~doc)
          [
            classify_cmd; tpch_cmd; triangles_cmd; serve_cmd; bench_net_cmd; chaos_cmd;
            cluster_cmd; bench_cluster_cmd; bench_mixed_cmd; fuzz_cmd; sql_cmd;
          ]))
