(** A seeded, deterministic failpoint registry. Hooks ({!hit}) compiled
    into I/O and decode paths cost one bool read while the registry is
    disabled (the default); a chaos harness {!enable}s it with a seed
    and {!arm}s named points, after which every firing decision is a
    pure function of (seed, hit counts) — fault schedules replay
    identically. *)

type action =
  | Fail  (** the operation reports an injected error and does nothing *)
  | Short_write of int
      (** only the first [k] bytes reach the file, then the write
          reports an error — a crash mid-write leaving a torn tail *)
  | Bit_flip of int
      (** bit [i mod (8·length)] of the buffer is flipped and the
          operation succeeds — silent corruption for checksums to catch *)
  | Delay of float  (** sleep, then proceed normally *)

val action_name : action -> string

val enable : ?seed:int -> unit -> unit
(** Turn the registry on; the seed drives every probabilistic firing. *)

val reset : unit -> unit
(** Disable and clear every armed point (the normal-operation state). *)

val enabled : unit -> bool

val arm : string -> ?after:int -> ?times:int -> ?p:float -> action -> unit
(** [arm name action] makes the named point fire [action]: hits
    [<= after] pass through, then each hit fires with probability [p]
    (default 1) until the point has fired [times] (default 1) times. *)

val disarm : string -> unit

val hit : string -> action option
(** The hook. [None] means proceed normally; [Some a] means the caller
    must simulate fault [a]. Disabled registry: one bool read. *)

val hits : string -> int
(** Hits recorded against an armed point (0 when not armed). *)

val fired : string -> int
val armed : unit -> (string * action) list
