(** A seeded, deterministic failpoint registry.

    A failpoint is a named hook compiled into an I/O or decode path
    (e.g. ["wal.write"], ["ckpt.fsync"]). Production code calls {!hit}
    at the hook; when the registry is disabled — the default — that is
    one mutable-bool read, so the hooks cost nothing in normal runs.
    Chaos harnesses {!enable} the registry with a seed and {!arm}
    failpoints with an {!action} and a trigger window; every firing
    decision is then a pure function of (seed, hit counts), so a fault
    schedule replays identically run after run.

    The registry is global and guarded by a mutex: the maintenance loop
    that performs durable I/O is single-domain, but producers and pool
    workers may share the process, and a torn counter would break the
    determinism the chaos harness relies on. *)

type action =
  | Fail  (** the operation reports an injected error and does nothing *)
  | Short_write of int
      (** only the first [k] bytes reach the file, then the write
          reports an error — a crash mid-write, leaving a torn tail *)
  | Bit_flip of int
      (** bit [i mod (8 * length)] of the buffer is flipped and the
          operation *succeeds* — silent corruption, caught later by
          checksums *)
  | Delay of float  (** sleep this many seconds, then proceed normally *)

let action_name = function
  | Fail -> "fail"
  | Short_write k -> Printf.sprintf "short-write(%d)" k
  | Bit_flip i -> Printf.sprintf "bit-flip(%d)" i
  | Delay s -> Printf.sprintf "delay(%gs)" s

type state = {
  action : action;
  after : int;  (** hits to let through before the window opens *)
  times : int;  (** firings before the point disarms *)
  p : float;  (** probability of firing on an in-window hit *)
  mutable hits : int;
  mutable fired : int;
}

let enabled_flag = ref false
let mutex = Mutex.create ()
let points : (string, state) Hashtbl.t = Hashtbl.create 16
let rng = ref (Random.State.make [| 0 |])

let enabled () = !enabled_flag

let enable ?(seed = 0) () =
  Mutex.lock mutex;
  rng := Random.State.make [| 0x17a5; seed |];
  enabled_flag := true;
  Mutex.unlock mutex

let reset () =
  Mutex.lock mutex;
  enabled_flag := false;
  Hashtbl.reset points;
  Mutex.unlock mutex

let arm name ?(after = 0) ?(times = 1) ?(p = 1.0) action =
  Mutex.lock mutex;
  Hashtbl.replace points name { action; after; times; p; hits = 0; fired = 0 };
  Mutex.unlock mutex

let disarm name =
  Mutex.lock mutex;
  Hashtbl.remove points name;
  Mutex.unlock mutex

(* The hook. Disabled: one bool read. Armed: count the hit and decide —
   inside the window, under budget, and (for p < 1) a seeded coin. *)
let hit name =
  if not !enabled_flag then None
  else begin
    Mutex.lock mutex;
    let r =
      match Hashtbl.find_opt points name with
      | None -> None
      | Some s ->
          s.hits <- s.hits + 1;
          if s.hits <= s.after || s.fired >= s.times then None
          else if s.p >= 1.0 || Random.State.float !rng 1.0 < s.p then begin
            s.fired <- s.fired + 1;
            Some s.action
          end
          else None
    in
    Mutex.unlock mutex;
    r
  end

let hits name =
  Mutex.lock mutex;
  let n = match Hashtbl.find_opt points name with Some s -> s.hits | None -> 0 in
  Mutex.unlock mutex;
  n

let fired name =
  Mutex.lock mutex;
  let n = match Hashtbl.find_opt points name with Some s -> s.fired | None -> 0 in
  Mutex.unlock mutex;
  n

let armed () =
  Mutex.lock mutex;
  let l = Hashtbl.fold (fun name s acc -> (name, s.action) :: acc) points [] in
  Mutex.unlock mutex;
  List.sort compare l
