(** The injectable file-I/O layer the durability code routes through.

    Every operation is result-typed — real OS errors ([Sys_error],
    [Unix_error]) and injected faults both come back as {!error} values,
    so callers handle "the disk misbehaved" in one place instead of
    scattering exception handlers. Each handle carries a [tag]; an
    operation [op] on a tagged handle consults the failpoint
    ["<tag>.<op>"] (e.g. ["wal.write"], ["ckpt.fsync"]), which is how a
    chaos harness injects short writes, failed fsyncs, bit flips and
    torn renames into exactly one subsystem at a time.

    Durability discipline: {!write} buffers (via the underlying channel),
    {!fsync} flushes and [fsync(2)]s, {!rename} + {!fsync_dir} make
    replace-by-rename survive a crash between the write and the rename
    becoming durable. *)

type error = { op : string; path : string; detail : string; injected : bool }

let pp_error ppf e =
  Format.fprintf ppf "%s(%s): %s%s" e.op e.path e.detail
    (if e.injected then " [injected]" else "")

let error_to_string e = Format.asprintf "%a" pp_error e

type out = { tag : string; path : string; oc : out_channel }

let fp t op = Failpoint.hit (t.tag ^ "." ^ op)
let err ?(injected = false) op path detail = Error { op; path; detail; injected }

let catching op path f =
  match f () with
  | v -> Ok v
  | exception Sys_error m -> err op path m
  | exception Unix.Unix_error (e, _, _) -> err op path (Unix.error_message e)

let open_append ~tag path =
  catching "open" path (fun () ->
      { tag; path; oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path })

let open_trunc ~tag path =
  catching "open" path (fun () ->
      { tag; path; oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path })

let flip_bit s i =
  let b = Bytes.of_string s in
  let bit = i mod (8 * Bytes.length b) in
  let byte = bit / 8 in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl (bit mod 8))));
  Bytes.to_string b

(* A short write flushes the prefix deliberately: the torn bytes must be
   on disk for recovery to find (and truncate), exactly as after a real
   crash mid-write. *)
let write t s =
  match fp t "write" with
  | Some Failpoint.Fail -> err ~injected:true "write" t.path "injected write failure"
  | Some (Failpoint.Short_write k) ->
      (try
         output_string t.oc (String.sub s 0 (min k (String.length s)));
         flush t.oc
       with Sys_error _ -> ());
      err ~injected:true "write" t.path "injected short write (torn record)"
  | Some (Failpoint.Bit_flip i) when String.length s > 0 ->
      catching "write" t.path (fun () -> output_string t.oc (flip_bit s i))
  | Some (Failpoint.Delay d) ->
      Unix.sleepf d;
      catching "write" t.path (fun () -> output_string t.oc s)
  | Some (Failpoint.Bit_flip _) | None ->
      catching "write" t.path (fun () -> output_string t.oc s)

let flush_out t = catching "flush" t.path (fun () -> flush t.oc)

let fsync t =
  match fp t "fsync" with
  | Some (Failpoint.Fail | Failpoint.Short_write _ | Failpoint.Bit_flip _) ->
      err ~injected:true "fsync" t.path "injected fsync failure"
  | Some (Failpoint.Delay d) ->
      Unix.sleepf d;
      catching "fsync" t.path (fun () ->
          flush t.oc;
          Unix.fsync (Unix.descr_of_out_channel t.oc))
  | None ->
      catching "fsync" t.path (fun () ->
          flush t.oc;
          Unix.fsync (Unix.descr_of_out_channel t.oc))

let close t =
  catching "close" t.path (fun () ->
      flush t.oc;
      close_out t.oc)

let close_noerr t = close_out_noerr t.oc

(** Simulate a crash on this handle: close the descriptor underneath the
    channel so buffered bytes are dropped, never flushed. What recovery
    will see is exactly what earlier {!write}/{!fsync} calls put on disk. *)
let crash t =
  (try Unix.close (Unix.descr_of_out_channel t.oc) with Unix.Unix_error _ -> ());
  close_out_noerr t.oc

let rename ~tag ~src ~dst =
  match Failpoint.hit (tag ^ ".rename") with
  | Some (Failpoint.Fail | Failpoint.Short_write _ | Failpoint.Bit_flip _) ->
      err ~injected:true "rename" dst "injected rename failure (crash before install)"
  | Some (Failpoint.Delay d) ->
      Unix.sleepf d;
      catching "rename" dst (fun () -> Sys.rename src dst)
  | None -> catching "rename" dst (fun () -> Sys.rename src dst)

let fsync_dir ~tag path =
  match Failpoint.hit (tag ^ ".dirsync") with
  | Some (Failpoint.Fail | Failpoint.Short_write _ | Failpoint.Bit_flip _) ->
      err ~injected:true "dirsync" path "injected directory fsync failure"
  | Some (Failpoint.Delay _) | None ->
      catching "dirsync" path (fun () ->
          let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              (* Some filesystems refuse fsync on directories; treat
                 EINVAL like success, as fsync-capable callers do. *)
              try Unix.fsync fd with Unix.Unix_error (Unix.EINVAL, _, _) -> ()))

let read_file ~tag path =
  let read () =
    catching "read" path (fun () ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic)))
  in
  match Failpoint.hit (tag ^ ".read") with
  | Some (Failpoint.Fail | Failpoint.Short_write _) ->
      err ~injected:true "read" path "injected read failure"
  | Some (Failpoint.Bit_flip i) ->
      Result.map (fun s -> if String.length s = 0 then s else flip_bit s i) (read ())
  | Some (Failpoint.Delay d) ->
      Unix.sleepf d;
      read ()
  | None -> read ()

let truncate ~tag path len =
  match Failpoint.hit (tag ^ ".truncate") with
  | Some (Failpoint.Fail | Failpoint.Short_write _ | Failpoint.Bit_flip _) ->
      err ~injected:true "truncate" path "injected truncate failure"
  | Some (Failpoint.Delay _) | None ->
      catching "truncate" path (fun () -> Unix.truncate path len)

let remove_noerr path = try Sys.remove path with Sys_error _ -> ()
