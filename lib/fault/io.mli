(** The injectable file-I/O layer the durability code routes through:
    result-typed operations that surface both real OS errors and
    injected faults as {!error} values. An operation [op] on a handle
    tagged [tag] consults the failpoint ["<tag>.<op>"] — the seam a
    chaos harness uses to inject short writes, failed fsyncs, bit flips
    and torn renames into one subsystem at a time. Costs one bool read
    per operation while the failpoint registry is disabled. *)

type error = { op : string; path : string; detail : string; injected : bool }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type out
(** A buffered output handle (tag + path + channel). *)

val open_append : tag:string -> string -> (out, error) result
val open_trunc : tag:string -> string -> (out, error) result

val write : out -> string -> (unit, error) result
(** Buffered write. Failpoint ["<tag>.write"]: [Fail] writes nothing;
    [Short_write k] flushes a [k]-byte prefix to disk and errors (a
    crash mid-write, leaving a torn tail); [Bit_flip i] corrupts one bit
    and *succeeds* (silent corruption for checksums to catch). *)

val flush_out : out -> (unit, error) result

val fsync : out -> (unit, error) result
(** Flush + [fsync(2)]. Failpoint ["<tag>.fsync"]. *)

val close : out -> (unit, error) result
val close_noerr : out -> unit

val crash : out -> unit
(** Simulate a crash on this handle: drop buffered bytes unflushed and
    close the descriptor. Recovery sees only what earlier writes/fsyncs
    put on disk. *)

val rename : tag:string -> src:string -> dst:string -> (unit, error) result
(** Atomic replace-by-rename. Failpoint ["<tag>.rename"] simulates a
    crash before the install: the temp file stays, the target is
    untouched. *)

val fsync_dir : tag:string -> string -> (unit, error) result
(** fsync a directory, making a completed rename durable. Failpoint
    ["<tag>.dirsync"]. [EINVAL] (filesystems refusing directory fsync)
    counts as success. *)

val read_file : tag:string -> string -> (string, error) result
(** Whole-file read. Failpoint ["<tag>.read"]: [Fail] errors; [Bit_flip]
    corrupts one bit of the returned contents. *)

val truncate : tag:string -> string -> int -> (unit, error) result
val remove_noerr : string -> unit
