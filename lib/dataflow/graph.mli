(** Composable delta-propagating operator DAGs (DBSP-style).

    Operators consume and emit Z-set deltas — coalesced
    [(tuple, multiplicity)] lists over the integer ring — so a graph is
    maintained by pushing each epoch's coalesced delta front through
    its nodes in topological order. Linear operators (filter, map,
    project, aggregate-with-lift) are stateless; [join] keeps both
    input integrals indexed on the shared columns and applies
    ΔQ = ΔR⋈S + R⋈ΔS + ΔR⋈ΔS; [distinct] integrates its input and
    emits the ±1 zero-crossings of the Boolean-semiring image;
    [extremum] (MIN/MAX, and top-k for k > 1) keeps a per-group ordered
    multiset index with a re-scan fallback when a currently served
    extremum is deleted; [window] buckets rows into tumbling/sliding
    panes by an integer event-time column and retracts whole panes once
    the watermark (max event time seen on inserts) passes their end
    plus the allowed lateness — late arrivals for retracted panes are
    dropped.

    Zero-elision invariant: no materialized state (join indexes, the
    distinct multiset, extremum indexes, pane accumulators, view
    outputs) ever stores a zero payload.

    Nodes may feed any number of consumers and sources are hash-consed
    per (relation, schema) — common sub-operators are physically shared
    between the views registered on one graph. *)

type t
type node
type delta = (Ivm_data.Tuple.t * int) list

type dir = Asc | Desc

val create : unit -> t

(** {1 Operator algebra} *)

val source : t -> rel:string -> schema:string list -> node
(** Subscribe to base relation [rel] under the given column names.
    Hash-consed: an identical subscription returns the existing node. *)

val filter : t -> ?label:string -> (Ivm_data.Tuple.t -> bool) -> node -> node
(** Stateless predicate; [label] only decorates {!describe}. *)

val map :
  t -> ?label:string -> schema:string list -> (Ivm_data.Tuple.t -> Ivm_data.Tuple.t) -> node -> node
(** Stateless tuple-to-tuple map onto the given output schema. *)

val project : t -> cols:string list -> node -> node
(** Multiplicity-summing projection onto [cols] — aggregation with the
    unit lift. *)

val aggregate :
  t -> ?lift:(Ivm_data.Tuple.t -> int) -> ?label:string -> group:string list -> node -> node
(** Linear ring aggregate: each input delta [(t, m)] contributes
    [m * lift t] to its group's payload. The default lift is [1]
    (COUNT); lifting a column's value gives SUM. *)

val join : t -> node -> node -> node
(** Natural join on the shared column names; output schema is the left
    schema followed by the right side's own columns. Rejects inputs
    with no shared column. *)

val distinct : t -> node -> node
(** Boolean-semiring image: a tuple is present with payload 1 iff its
    integrated input multiplicity is positive. *)

val extremum : t -> ?k:int -> dir:dir -> col:string -> group:string list -> node -> node
(** Per-group extremum of [col]: the first [k] (default 1) slots of the
    group's ordered value multiset, emitted as [(group..., value)] rows
    whose payload is the number of slots the value occupies. [Asc] is
    MIN / smallest-k, [Desc] is MAX / largest-k. *)

val minimum : t -> col:string -> group:string list -> node -> node
val maximum : t -> col:string -> group:string list -> node -> node

val window :
  t ->
  ?slide:int ->
  ?lateness:int ->
  ?lift:(Ivm_data.Tuple.t -> int) ->
  time:string ->
  size:int ->
  group:string list ->
  node ->
  node
(** Windowed ring aggregate over integer event-time column [time]:
    output rows are [(pane_start, group..., )] with the aggregated
    payload, one pane per [slide] (default [size], i.e. tumbling)
    covering [[pane_start, pane_start + size)]. Once the watermark
    passes a pane's end plus [lateness], the pane's rows are retracted
    from the output, its state dropped, and later arrivals for it are
    counted in {!late_drops} instead of applied. *)

val output : t -> name:string -> node -> unit
(** Register [node] as named view: its deltas are folded into a
    materialized output Z-set served by {!entries}. *)

val node_schema : node -> string list
(** The column names a node emits — what a downstream operator joins or
    groups on. *)

(** {1 Epoch propagation} *)

val apply_front : t -> (string * int Ivm_data.Update.t list) list -> unit
(** Push one epoch's per-relation coalesced delta front (the shape
    {!Ivm_stream.Scheduler.delta_front} exposes) through the DAG. *)

val apply : t -> int Ivm_data.Update.t list -> unit
(** {!apply_front} of a flat batch, grouped per relation. *)

(** {1 Reads} *)

val entries : t -> string -> (Ivm_data.Tuple.t * int) list
(** The named view's materialized output in canonical order (sorted by
    tuple; zero payloads never stored). *)

val output_count : t -> string -> int
val view_names : t -> string list
val view_schema : t -> string -> Ivm_data.Schema.t

val relations : t -> string list
(** Base relations the graph subscribes to, sorted, deduplicated. *)

(** {1 Introspection} *)

val node_count : t -> int

val rescans : t -> int
(** Extremum re-scans forced by deleting a currently served value. *)

val late_drops : t -> int
(** Window rows dropped because their pane was already retracted. *)

val retracted_panes : t -> int

val describe : t -> string list
(** One line per node in topological order — the operator DAG that
    EXPLAIN emits. *)

val state_fingerprint : t -> int
(** Order-independent digest over every operator's internal state and
    the materialized outputs — compare a restored graph against the
    original. *)
