(** Composable delta-propagating operator DAGs — the DBSP-style runtime
    the per-query engines cannot express.

    Every operator consumes and emits {e Z-set deltas}: coalesced
    [(tuple, multiplicity)] lists over the integer ring, positive for
    inserts and negative for deletes, exactly the update language of the
    rest of the repo (Sec. 2 batch commutativity). Linear operators
    (filter, map, project, aggregate-with-lift) are stateless — their
    delta rule is the operator itself. Bilinear join keeps both input
    integrals indexed on the shared columns and applies
    ΔQ = ΔR⋈S + R⋈ΔS + ΔR⋈ΔS. The non-linear operators carry exactly
    the state their delta rule needs: [distinct] the input multiset
    (its output lives in the Boolean semiring image — presence, not
    count), [extremum] a per-group ordered multiset index with a
    re-scan fallback when the current extremum is deleted, [window]
    per-pane accumulators plus a watermark that retracts expired panes.

    A {!t} is a DAG of such operators. Nodes are created referencing
    existing nodes, sources are hash-consed per (relation, schema), and
    any node can feed several consumers — that is how common
    sub-operators are shared between views hanging off one graph.
    {!apply} pushes one epoch's coalesced delta front through the DAG
    in topological order and folds each registered view's output delta
    into its materialized output Z-set.

    Zero elision invariant: materialized state (join indexes, distinct
    multiset, extremum indexes, pane accumulators, view outputs) never
    stores a zero payload, so absence and zero coincide everywhere. *)

module Value = Ivm_data.Value
module Tuple = Ivm_data.Tuple
module Schema = Ivm_data.Schema
module Update = Ivm_data.Update
module Vmap = Map.Make (Value)

type delta = (Tuple.t * int) list

type dir = Asc | Desc

(* --- operator state ----------------------------------------------------- *)

(* One side of a join: the integral of everything this input has ever
   delivered, grouped by the join key (the shared columns). Nested
   tuple tables because groups are probed per delta entry. *)
type join_side = {
  key : int array; (* positions of the shared columns in this side's schema *)
  index : int Tuple.Tbl.t Tuple.Tbl.t; (* key -> (full tuple -> multiplicity) *)
}

type join_state = {
  left : join_side;
  right : join_side;
  right_rest : int array; (* right's non-shared columns, appended to the left tuple *)
}

(* Per-group state of an extremum operator: the ordered multiset of
   values (the index the re-scan walks) and the [(value, slots)] rows
   currently emitted, newest extremum first. *)
type ext_group = { mutable mults : int Vmap.t; mutable emitted : (Value.t * int) list }

type ext_state = {
  dir : dir;
  k : int;
  vcol : int; (* position of the value column in the input schema *)
  egroup : int array; (* positions of the grouping columns *)
  groups : ext_group Tuple.Tbl.t;
  mutable rescans : int; (* deletions of a current extremum that forced a re-scan *)
}

type win_state = {
  tcol : int; (* position of the event-time column *)
  size : int;
  slide : int; (* = size for tumbling windows *)
  lateness : int; (* grace beyond pane end before the watermark expires it *)
  wgroup : int array;
  wlift : Tuple.t -> int;
  panes : (int, int Tuple.Tbl.t) Hashtbl.t; (* pane start -> (group -> acc) *)
  mutable watermark : int option; (* max event time seen on inserts *)
  mutable late_drops : int;
  mutable retracted_panes : int;
}

type op =
  | Source of { rel : string }
  | Filter of { pred : Tuple.t -> bool; flabel : string }
  | Map of { f : Tuple.t -> Tuple.t; mlabel : string }
  | Aggregate of { agroup : int array; lift : Tuple.t -> int; alabel : string }
  | Join of join_state
  | Distinct of { mult : int Tuple.Tbl.t }
  | Extremum of ext_state
  | Window of win_state

type node = {
  id : int;
  schema : Schema.t;
  op : op;
  inputs : node list;
  mutable delta : delta; (* output delta of the epoch being propagated *)
}

type view = { vname : string; vnode : node; out : int Tuple.Tbl.t }

type t = {
  mutable nodes : node list; (* reverse creation order *)
  mutable views : view list; (* reverse registration order *)
  mutable next_id : int;
  sources : (string, node) Hashtbl.t;
      (* hash-consing, keyed on relation + schema: one source node per
         distinct subscription, so repeated atoms over one relation
         (self-joins under different column names) still get their own
         view of the stream while identical subscriptions are shared *)
  mutable order : node list option; (* memoized topological order *)
}

let create () =
  { nodes = []; views = []; next_id = 0; sources = Hashtbl.create 4; order = None }

let add g schema op inputs =
  let n = { id = g.next_id; schema; op; inputs; delta = [] } in
  g.next_id <- g.next_id + 1;
  g.nodes <- n :: g.nodes;
  g.order <- None;
  n

(* --- construction ------------------------------------------------------- *)

let source g ~rel ~schema =
  let key = rel ^ "|" ^ String.concat "," schema in
  match Hashtbl.find_opt g.sources key with
  | Some n -> n
  | None ->
      let n = add g (Schema.of_list schema) (Source { rel }) [] in
      Hashtbl.add g.sources key n;
      n

let filter g ?(label = "pred") pred input =
  add g input.schema (Filter { pred; flabel = label }) [ input ]

let map g ?(label = "fn") ~schema f input =
  add g (Schema.of_list schema) (Map { f; mlabel = label }) [ input ]

let positions schema cols =
  Array.of_list (List.map (fun c -> Schema.position schema c) cols)

let aggregate g ?(lift = fun (_ : Tuple.t) -> 1) ?(label = "count") ~group input =
  let agroup = positions input.schema group in
  add g (Schema.of_list group) (Aggregate { agroup; lift; alabel = label }) [ input ]

(* A multiplicity-summing projection is exactly aggregation with the
   unit lift: free columns keep their values, bound ones marginalize
   into the payload. *)
let project g ~cols input = aggregate g ~label:"project" ~group:cols input

let join g l r =
  let shared = Schema.inter l.schema r.schema in
  if Schema.arity shared = 0 then
    invalid_arg "Graph.join: no shared columns (cartesian products are not supported)";
  let rest = Schema.diff r.schema shared in
  let side s = { key = Schema.projection s shared; index = Tuple.Tbl.create 64 } in
  let st =
    {
      left = side l.schema;
      right = side r.schema;
      right_rest = Schema.projection r.schema rest;
    }
  in
  add g (Schema.union l.schema rest) (Join st) [ l; r ]

let distinct g input =
  add g input.schema (Distinct { mult = Tuple.Tbl.create 64 }) [ input ]

let extremum g ?(k = 1) ~dir ~col ~group input =
  if k < 1 then invalid_arg "Graph.extremum: k must be >= 1";
  let st =
    {
      dir;
      k;
      vcol = Schema.position input.schema col;
      egroup = positions input.schema group;
      groups = Tuple.Tbl.create 64;
      rescans = 0;
    }
  in
  add g (Schema.of_list (group @ [ col ])) (Extremum st) [ input ]

let minimum g ~col ~group input = extremum g ~dir:Asc ~col ~group input
let maximum g ~col ~group input = extremum g ~dir:Desc ~col ~group input

let window g ?slide ?(lateness = 0) ?(lift = fun (_ : Tuple.t) -> 1) ~time ~size ~group
    input =
  if size < 1 then invalid_arg "Graph.window: size must be >= 1";
  let slide = Option.value slide ~default:size in
  if slide < 1 || slide > size then
    invalid_arg "Graph.window: need 1 <= slide <= size";
  let st =
    {
      tcol = Schema.position input.schema time;
      size;
      slide;
      lateness;
      wgroup = positions input.schema group;
      wlift = lift;
      panes = Hashtbl.create 16;
      watermark = None;
      late_drops = 0;
      retracted_panes = 0;
    }
  in
  add g (Schema.of_list (("w_" ^ time) :: group)) (Window st) [ input ]

let output g ~name n =
  if List.exists (fun v -> v.vname = name) g.views then
    invalid_arg ("Graph.output: duplicate view " ^ name);
  g.views <- { vname = name; vnode = n; out = Tuple.Tbl.create 128 } :: g.views

let node_schema n = Schema.to_list n.schema

(* --- scheduling --------------------------------------------------------- *)

(* Kahn's algorithm over the node list. Creation order is already a
   topological order (inputs must exist before their consumers), but the
   sort keeps the invariant explicit and independent of how the graph
   was assembled. Memoized until the next node is added. *)
let schedule g =
  match g.order with
  | Some o -> o
  | None ->
      let nodes = List.rev g.nodes in
      let n = List.length nodes in
      let indegree = Hashtbl.create n in
      let consumers = Hashtbl.create n in
      List.iter
        (fun nd ->
          Hashtbl.replace indegree nd.id (List.length nd.inputs);
          List.iter
            (fun i ->
              let cs = Option.value (Hashtbl.find_opt consumers i.id) ~default:[] in
              Hashtbl.replace consumers i.id (nd :: cs))
            nd.inputs)
        nodes;
      let ready = Stdlib.Queue.create () in
      List.iter (fun nd -> if nd.inputs = [] then Stdlib.Queue.add nd ready) nodes;
      let order = ref [] in
      while not (Stdlib.Queue.is_empty ready) do
        let nd = Stdlib.Queue.pop ready in
        order := nd :: !order;
        List.iter
          (fun c ->
            let d = Hashtbl.find indegree c.id - 1 in
            Hashtbl.replace indegree c.id d;
            if d = 0 then Stdlib.Queue.add c ready)
          (Option.value (Hashtbl.find_opt consumers nd.id) ~default:[])
      done;
      if List.length !order <> n then invalid_arg "Graph.schedule: cycle";
      let o = List.rev !order in
      g.order <- Some o;
      o

(* --- delta evaluation --------------------------------------------------- *)

let coalesce_delta (d : delta) : delta =
  match d with
  | [] | [ _ ] -> d
  | _ ->
      let tbl = Tuple.Tbl.create 16 in
      List.iter
        (fun (tp, m) ->
          let s = (match Tuple.Tbl.find_opt tbl tp with Some q -> q | None -> 0) + m in
          if s = 0 then Tuple.Tbl.remove tbl tp else Tuple.Tbl.replace tbl tp s)
        d;
      Tuple.Tbl.fold (fun tp m acc -> (tp, m) :: acc) tbl []

(* Fold one delta entry into a side's nested index, zero-eliding both
   the tuple multiplicity and emptied key groups. *)
let side_add side (tp, m) =
  let key = Tuple.project tp side.key in
  let group =
    match Tuple.Tbl.find_opt side.index key with
    | Some tbl -> tbl
    | None ->
        let tbl = Tuple.Tbl.create 4 in
        Tuple.Tbl.add side.index key tbl;
        tbl
  in
  let s = (match Tuple.Tbl.find_opt group tp with Some q -> q | None -> 0) + m in
  if s = 0 then begin
    Tuple.Tbl.remove group tp;
    if Tuple.Tbl.length group = 0 then Tuple.Tbl.remove side.index key
  end
  else Tuple.Tbl.replace group tp s

let side_probe side key f =
  match Tuple.Tbl.find_opt side.index key with
  | Some group -> Tuple.Tbl.iter f group
  | None -> ()

(* ΔQ = ΔR⋈S + R⋈ΔS + ΔR⋈ΔS, realized as ΔR⋈S_old followed by
   (R+ΔR)⋈ΔS: the left index is advanced between the two probes, so the
   cross term ΔR⋈ΔS falls out of the second. *)
let eval_join st dl dr =
  let out = ref [] in
  let combine lt rt = Tuple.append lt (Tuple.project rt st.right_rest) in
  List.iter
    (fun (lt, m) ->
      let key = Tuple.project lt st.left.key in
      side_probe st.right key (fun rt mr -> out := (combine lt rt, m * mr) :: !out))
    dl;
  List.iter (side_add st.left) dl;
  List.iter
    (fun (rt, m) ->
      let key = Tuple.project rt st.right.key in
      side_probe st.left key (fun lt ml -> out := (combine lt rt, ml * m) :: !out))
    dr;
  List.iter (side_add st.right) dr;
  !out

(* Presence is the Boolean-semiring image of the multiplicity: the
   output flips by ±1 exactly when [mult > 0] flips, so DISTINCT's
   delta depends only on the zero-crossings of the integrated input. *)
let eval_distinct mult d =
  let out = ref [] in
  List.iter
    (fun (tp, m) ->
      let old = match Tuple.Tbl.find_opt mult tp with Some q -> q | None -> 0 in
      let nw = old + m in
      if nw = 0 then Tuple.Tbl.remove mult tp else Tuple.Tbl.replace mult tp nw;
      match (old > 0, nw > 0) with
      | false, true -> out := (tp, 1) :: !out
      | true, false -> out := (tp, -1) :: !out
      | _ -> ())
    d;
  !out

(* The first [k] slots of the ordered multiset: a value with
   multiplicity [m] occupies [min m remaining] of them. k = 1 is MIN
   (Asc) or MAX (Desc); general k is per-group top-k. *)
let take_slots dir k mults =
  let seq = match dir with Asc -> Vmap.to_seq mults | Desc -> Vmap.to_rev_seq mults in
  let rec go rem s acc =
    if rem <= 0 then List.rev acc
    else
      match s () with
      | Seq.Nil -> List.rev acc
      | Seq.Cons ((v, m), tl) ->
          let slots = min m rem in
          go (rem - slots) tl ((v, slots) :: acc)
  in
  go k seq []

let eval_extremum st d =
  let dirty = Tuple.Tbl.create 8 in
  List.iter
    (fun (tp, m) ->
      let gt = Tuple.project tp st.egroup in
      let gs =
        match Tuple.Tbl.find_opt st.groups gt with
        | Some gs -> gs
        | None ->
            let gs = { mults = Vmap.empty; emitted = [] } in
            Tuple.Tbl.add st.groups gt gs;
            gs
      in
      let v = Tuple.get tp st.vcol in
      let old = match Vmap.find_opt v gs.mults with Some q -> q | None -> 0 in
      let nw = old + m in
      gs.mults <- (if nw <= 0 then Vmap.remove v gs.mults else Vmap.add v nw gs.mults);
      Tuple.Tbl.replace dirty gt ())
    d;
  let out = ref [] in
  Tuple.Tbl.iter
    (fun gt () ->
      let gs = Tuple.Tbl.find st.groups gt in
      (* Re-scan fallback (cynos): only when a delete removed a value
         the operator currently serves does the ordered index get
         walked again; inserts and deletes below the frontier diff
         against the cached [emitted] rows without a scan. *)
      let served_removed =
        List.exists (fun (v, _) -> not (Vmap.mem v gs.mults)) gs.emitted
      in
      if served_removed then st.rescans <- st.rescans + 1;
      let fresh = take_slots st.dir st.k gs.mults in
      let row v = Tuple.append gt (Tuple.of_list [ v ]) in
      List.iter
        (fun (v, slots) ->
          let now = match List.assoc_opt v fresh with Some s -> s | None -> 0 in
          if now <> slots then out := (row v, now - slots) :: !out)
        gs.emitted;
      List.iter
        (fun (v, slots) ->
          if not (List.mem_assoc v gs.emitted) then out := (row v, slots) :: !out)
        fresh;
      gs.emitted <- fresh;
      if Vmap.is_empty gs.mults then Tuple.Tbl.remove st.groups gt)
    dirty;
  !out

let fdiv a b = if a >= 0 then a / b else -((-a + b - 1) / b)

(* Pane starts covering event time [v]: multiples of [slide] in
   (v - size, v]. Tumbling windows (slide = size) yield exactly one. *)
let pane_starts st v =
  let rec go p acc = if p > v - st.size then go (p - st.slide) (p :: acc) else acc in
  go (fdiv v st.slide * st.slide) []

let expired st p = match st.watermark with
  | Some w -> p + st.size + st.lateness <= w
  | None -> false

let eval_window st d =
  let out = ref [] in
  List.iter
    (fun (tp, m) ->
      let v = Value.to_int (Tuple.get tp st.tcol) in
      let w = m * st.wlift tp in
      List.iter
        (fun p ->
          if expired st p then st.late_drops <- st.late_drops + 1
          else begin
            let tbl =
              match Hashtbl.find_opt st.panes p with
              | Some tbl -> tbl
              | None ->
                  let tbl = Tuple.Tbl.create 8 in
                  Hashtbl.add st.panes p tbl;
                  tbl
            in
            let gt = Tuple.project tp st.wgroup in
            let s = (match Tuple.Tbl.find_opt tbl gt with Some q -> q | None -> 0) + w in
            if s = 0 then Tuple.Tbl.remove tbl gt else Tuple.Tbl.replace tbl gt s;
            out := (Tuple.append (Tuple.of_list [ Value.Int p ]) gt, w) :: !out
          end)
        (pane_starts st v);
      if m > 0 then
        st.watermark <-
          Some (match st.watermark with Some w0 -> max w0 v | None -> v))
    d;
  (* Watermark-driven retraction: the epoch's final watermark expires
     whole panes at once — their rows leave the output and their state
     is dropped, so late arrivals for them are dropped above. *)
  let dead =
    Hashtbl.fold (fun p _ acc -> if expired st p then p :: acc else acc) st.panes []
  in
  List.iter
    (fun p ->
      let tbl = Hashtbl.find st.panes p in
      Tuple.Tbl.iter
        (fun gt acc ->
          out := (Tuple.append (Tuple.of_list [ Value.Int p ]) gt, -acc) :: !out)
        tbl;
      Hashtbl.remove st.panes p;
      st.retracted_panes <- st.retracted_panes + 1)
    dead;
  !out

let eval_node front n =
  let input i = (List.nth n.inputs i).delta in
  match n.op with
  | Source { rel } ->
      (match List.assoc_opt rel front with
      | Some ups ->
          coalesce_delta
            (List.map (fun (u : int Update.t) -> (u.Update.tuple, u.Update.payload)) ups)
      | None -> [])
  | Filter { pred; _ } -> List.filter (fun (tp, _) -> pred tp) (input 0)
  | Map { f; _ } -> coalesce_delta (List.map (fun (tp, m) -> (f tp, m)) (input 0))
  | Aggregate { agroup; lift; _ } ->
      coalesce_delta
        (List.filter_map
           (fun (tp, m) ->
             let w = m * lift tp in
             if w = 0 then None else Some (Tuple.project tp agroup, w))
           (input 0))
  | Join st -> coalesce_delta (eval_join st (input 0) (input 1))
  | Distinct { mult } -> eval_distinct mult (input 0)
  | Extremum st -> eval_extremum st (input 0)
  | Window st -> coalesce_delta (eval_window st (input 0))

(* --- epoch propagation -------------------------------------------------- *)

let apply_front g (front : (string * int Update.t list) list) =
  let order = schedule g in
  List.iter (fun n -> n.delta <- eval_node front n) order;
  List.iter
    (fun v ->
      List.iter
        (fun (tp, m) ->
          let s = (match Tuple.Tbl.find_opt v.out tp with Some q -> q | None -> 0) + m in
          if s = 0 then Tuple.Tbl.remove v.out tp else Tuple.Tbl.replace v.out tp s)
        v.vnode.delta)
    g.views;
  List.iter (fun n -> n.delta <- []) order

let apply g (ups : int Update.t list) =
  if ups <> [] then begin
    (* Group the flat batch per relation, preserving order within one. *)
    let rels = ref [] in
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun (u : int Update.t) ->
        match Hashtbl.find_opt tbl u.Update.rel with
        | Some l -> l := u :: !l
        | None ->
            Hashtbl.add tbl u.Update.rel (ref [ u ]);
            rels := u.Update.rel :: !rels)
      ups;
    apply_front g
      (List.rev_map (fun rel -> (rel, List.rev !(Hashtbl.find tbl rel))) !rels)
  end

(* --- reads -------------------------------------------------------------- *)

let find_view g name =
  match List.find_opt (fun v -> v.vname = name) g.views with
  | Some v -> v
  | None -> invalid_arg ("Graph: no view " ^ name)

let entries g name =
  let v = find_view g name in
  Tuple.Tbl.fold (fun tp m acc -> (tp, m) :: acc) v.out []
  |> List.sort (fun (t1, p1) (t2, p2) ->
         match Tuple.compare t1 t2 with 0 -> compare p1 p2 | c -> c)

let output_count g name = Tuple.Tbl.length (find_view g name).out

let view_names g = List.rev_map (fun v -> v.vname) g.views

let relations g =
  Hashtbl.fold
    (fun _ n acc ->
      match n.op with
      | Source { rel } -> if List.mem rel acc then acc else rel :: acc
      | _ -> acc)
    g.sources []
  |> List.sort compare

let view_schema g name = (find_view g name).vnode.schema

(* --- introspection ------------------------------------------------------ *)

let node_count g = List.length g.nodes

let rescans g =
  List.fold_left
    (fun acc n -> match n.op with Extremum st -> acc + st.rescans | _ -> acc)
    0 g.nodes

let late_drops g =
  List.fold_left
    (fun acc n -> match n.op with Window st -> acc + st.late_drops | _ -> acc)
    0 g.nodes

let retracted_panes g =
  List.fold_left
    (fun acc n -> match n.op with Window st -> acc + st.retracted_panes | _ -> acc)
    0 g.nodes

let op_name = function
  | Source { rel } -> Printf.sprintf "source(%s)" rel
  | Filter { flabel; _ } -> Printf.sprintf "filter[%s]" flabel
  | Map { mlabel; _ } -> Printf.sprintf "map[%s]" mlabel
  | Aggregate { alabel; _ } -> Printf.sprintf "aggregate[%s]" alabel
  | Join st ->
      Printf.sprintf "join[key arity %d]" (Array.length st.left.key)
  | Distinct _ -> "distinct"
  | Extremum st ->
      Printf.sprintf "%s[k=%d]" (match st.dir with Asc -> "min" | Desc -> "max") st.k
  | Window st ->
      Printf.sprintf "window[size=%d slide=%d%s]" st.size st.slide
        (if st.lateness = 0 then "" else Printf.sprintf " late=%d" st.lateness)

let describe g =
  let line n =
    let ins =
      match n.inputs with
      | [] -> ""
      | l -> " <- " ^ String.concat "," (List.map (fun i -> Printf.sprintf "n%d" i.id) l)
    in
    let outs =
      match List.filter_map (fun v -> if v.vnode == n then Some v.vname else None) g.views with
      | [] -> ""
      | names -> " => " ^ String.concat "," names
    in
    Printf.sprintf "n%d: %s%s -> (%s)%s" n.id (op_name n.op) ins
      (Schema.to_string n.schema) outs
  in
  List.map line (schedule g)

(* Order-independent digest of every operator's internal state plus the
   materialized view outputs — what a checkpoint/restore equivalence
   check compares. Same mixing constant as
   [Maintainable.entries_fingerprint] so digests stay in one family. *)
let state_fingerprint g =
  let mix acc h p = (acc + (h lxor (p * 0x9E3779B9))) land max_int in
  let tbl_fp seed tbl =
    Tuple.Tbl.fold (fun tp p acc -> mix acc (Tuple.hash tp lxor seed) p) tbl 0
  in
  let node_fp n =
    match n.op with
    | Source _ | Filter _ | Map _ | Aggregate _ -> 0
    | Join st ->
        let side_fp seed s =
          Tuple.Tbl.fold (fun _key group acc -> (acc + tbl_fp seed group) land max_int)
            s.index 0
        in
        (side_fp 0x5bd1 st.left + side_fp 0x7f4a st.right) land max_int
    | Distinct { mult } -> tbl_fp 0x632b mult
    | Extremum st ->
        Tuple.Tbl.fold
          (fun gt gs acc ->
            let vfp =
              Vmap.fold (fun v m a -> mix a (Value.hash v) m) gs.mults (Tuple.hash gt)
            in
            (acc + vfp) land max_int)
          st.groups 0
    | Window st ->
        let wm = match st.watermark with Some w -> w + 1 | None -> 0 in
        Hashtbl.fold
          (fun p tbl acc -> (acc + tbl_fp (p * 0x9E37) tbl) land max_int)
          st.panes wm
  in
  let ops = List.fold_left (fun acc n -> (acc + node_fp n) land max_int) 0 g.nodes in
  List.fold_left (fun acc v -> (acc + tbl_fp 0x11d3 v.out) land max_int) ops g.views
