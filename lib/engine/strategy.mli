(** The four IVM strategies compared in Fig. 4, sharing one view tree:

    - eager vs lazy: propagate updates immediately, or only touch the
      base relations and refresh on enumeration;
    - fact vs list: keep the output factorized over the views, or
      materialize it flat.

    eager-list ≈ DBToaster, eager-fact ≈ F-IVM, lazy-list ≈ classical
    delta queries, lazy-fact is the hybrid. *)

module Rel = Ivm_data.Relation.Z
module Tuple = Ivm_data.Tuple
module Cq = Ivm_query.Cq
module Vo = Ivm_query.Variable_order

type kind = Eager_fact | Eager_list | Lazy_fact | Lazy_list

val kind_name : kind -> string

type t

val create : kind -> Cq.t -> Vo.forest -> Ivm_data.Database.Z.t -> t
val kind : t -> kind
val query : t -> Cq.t

val tree : t -> View_tree.t
(** The shared view tree (its leaves are the maintained base relations,
    whatever the strategy). *)

val apply : t -> int Ivm_data.Update.t -> unit

val apply_batch : ?pool:Ivm_par.Domain_pool.t -> t -> int Ivm_data.Update.t list -> unit
(** Apply a batch of single-tuple updates. With a pool, the lazy
    strategies partition the batch by relation and apply the partitions
    concurrently (each relation's base view and pending delta has a
    single writer; cross-relation order is irrelevant because ring
    payloads make batches commute, Sec. 2). Eager strategies thread
    every update through the shared view tree and remain sequential. *)

val enumerate : t -> (Tuple.t * int) Seq.t
(** An enumeration request: lazy strategies refresh first (lazy-fact by
    propagating queued per-relation deltas, lazy-list by recomputing). *)

val count_output : t -> int
(** Drain an enumeration request, returning the output size — the
    access pattern of the Fig. 4 experiment. *)

val output : t -> Rel.t
(** Materialized output, for cross-checking strategies in tests. *)
