(** View trees: the factorized maintenance structure of F-IVM
    (Sec. 4.1, Fig. 3).

    A view tree follows a variable order: each variable X carries a view
    V_X keyed by dep(X) ∪ {X} — the join of the atoms anchored at X and
    of the child aggregates — and an aggregate A_X keyed by dep(X) that
    marginalizes X. A single-tuple update to a leaf relation propagates
    along the leaf-to-root path (Fig. 3, middle and right); for
    q-hierarchical queries every hop costs O(1).

    The query output is distributed over the views (factorized): it is
    enumerated with constant delay by descending from the roots when the
    free variables form a connex top fragment of the order. *)

module Rel = Ivm_data.Relation.Z
module Schema = Ivm_data.Schema
module Tuple = Ivm_data.Tuple
module Value = Ivm_data.Value
module Cq = Ivm_query.Cq
module Vo = Ivm_query.Variable_order

type node = {
  id : int;
  var : string;
  free : bool;
  dep : Schema.t;
  full : Schema.t;
  view : View.t;
  agg : View.t;
  parent : int; (* -1 for roots *)
  mutable children : int list;
  local_atoms : string list;
}

type t = {
  query : Cq.t;
  forest : Vo.forest;
  nodes : node array;
  roots : int list;
  base : (string, View.t) Hashtbl.t;
  anchor_of : (string, int) Hashtbl.t;
  enumerable : bool;
  fast_path : (string, unit) Hashtbl.t;
      (* relations whose single-tuple updates propagate by pure lookups:
         at every node on the leaf-to-root path all sibling views and
         atoms are keyed within the fixed variables — the O(1) update
         property of q-hierarchical queries, detected statically. *)
}

let base_view t rel =
  match Hashtbl.find_opt t.base rel with
  | Some v -> v
  | None -> invalid_arg ("View_tree.base_view: unknown relation " ^ rel)

let node_count t = Array.length t.nodes

(* Total size of all materialized views (excluding base relations). *)
let views_size t =
  Array.fold_left (fun acc n -> acc + View.size n.view + View.size n.agg) 0 t.nodes

(* Join the driver delta with a list of parts and reshape to [full]. *)
let join_parts (driver : Rel.t) (parts : View.t list) (full : Schema.t) : Rel.t =
  (* Prefer parts that are fully bound by the driver (pure lookups). *)
  let rec order bound acc = function
    | [] -> List.rev acc
    | parts ->
        let fully_bound p = Schema.subset (View.schema p) bound in
        let next =
          match List.find_opt fully_bound parts with
          | Some p -> p
          | None ->
              (* Pick the part overlapping the most. *)
              let score p =
                Schema.arity (Schema.inter (View.schema p) bound)
              in
              List.fold_left (fun b p -> if score p > score b then p else b) (List.hd parts)
                parts
        in
        order (Schema.union bound (View.schema next)) (next :: acc)
          (List.filter (fun p -> p != next) parts)
  in
  let parts = order (Rel.schema driver) [] parts in
  let joined = List.fold_left Eval.extend driver parts in
  Rel.project_onto joined full

let build (query : Cq.t) (forest : Vo.forest) (db : Ivm_data.Database.Z.t) : t =
  (match Vo.validate query forest with
  | Ok () -> ()
  | Error e -> invalid_arg ("View_tree.build: " ^ e));
  let anchors =
    match Vo.anchor query forest with Ok a -> a | Error e -> invalid_arg e
  in
  let deps = Vo.keys query forest in
  (* Base views, one per atom, with the atom's variables as schema. *)
  let base = Hashtbl.create 8 in
  List.iter
    (fun (a : Cq.atom) ->
      let schema = Schema.of_list a.Cq.vars in
      let stored = Ivm_data.Database.Z.find db a.Cq.rel in
      let rel =
        if Schema.to_list (Rel.schema stored) = a.Cq.vars then Rel.copy stored
        else Rel.project_onto stored schema
      in
      Hashtbl.replace base a.Cq.rel (View.of_relation rel))
    query.Cq.atoms;
  (* Flatten the forest into nodes, children before parents unresolved;
     assign ids in DFS preorder. *)
  let nodes = ref [] in
  let counter = ref 0 in
  let rec flatten parent (tr : Vo.t) =
    let id = !counter in
    incr counter;
    let dep = Schema.of_list (List.assoc tr.Vo.var deps) in
    let full = Schema.union dep (Schema.of_list [ tr.Vo.var ]) in
    let local_atoms =
      List.filteri (fun i _ -> String.equal anchors.(i) tr.Vo.var) query.Cq.atoms
      |> List.map (fun (a : Cq.atom) -> a.Cq.rel)
    in
    let node =
      {
        id;
        var = tr.Vo.var;
        free = Cq.is_free query tr.Vo.var;
        dep;
        full;
        view = View.create full;
        agg = View.create dep;
        parent;
        children = [];
        local_atoms;
      }
    in
    nodes := node :: !nodes;
    let kids = List.map (flatten id) tr.Vo.children in
    node.children <- kids;
    id
  in
  let roots = List.map (flatten (-1)) forest in
  let nodes =
    let arr = Array.make !counter (List.hd !nodes) in
    List.iter (fun n -> arr.(n.id) <- n) !nodes;
    arr
  in
  let anchor_of = Hashtbl.create 8 in
  List.iteri
    (fun i (a : Cq.atom) ->
      let var = anchors.(i) in
      let nid = (Array.to_list nodes |> List.find (fun n -> String.equal n.var var)).id in
      Hashtbl.replace anchor_of a.Cq.rel nid)
    query.Cq.atoms;
  (* Static fast-path analysis: the propagation path of [rel] is pure
     lookups iff at every node the sibling aggregates and local atoms
     are keyed within the variables fixed by the delta. This is the
     [constant_path] condition of the static/dynamic checker with every
     relation dynamic. *)
  let fast_path = Hashtbl.create 8 in
  let deps_list = deps in
  List.iteri
    (fun i (a : Cq.atom) ->
      let ok =
        Ivm_query.Static_dynamic.constant_path ~q:query ~anchors ~deps:deps_list ~forest
          ~atom_idx:i
      in
      if ok then Hashtbl.replace fast_path a.Cq.rel ())
    query.Cq.atoms;
  let t =
    {
      query;
      forest;
      nodes;
      roots;
      base;
      anchor_of;
      enumerable = Vo.free_top query forest;
      fast_path;
    }
  in
  (* Populate views bottom-up (preprocessing, O(N) for q-hierarchical).
     The group index used by enumeration is created here so that its
     construction is part of preprocessing and its maintenance part of
     every update. *)
  let rec populate id =
    let n = nodes.(id) in
    List.iter populate n.children;
    let parts =
      List.map (fun r -> Hashtbl.find base r) n.local_atoms
      @ List.map (fun c -> nodes.(c).agg) n.children
    in
    let v =
      match parts with
      | [] -> invalid_arg "View_tree.build: node with no parts"
      | first :: rest -> join_parts (Rel.copy (View.relation first)) rest n.full
    in
    View.apply_delta n.view v;
    View.apply_delta n.agg (Rel.project_onto v n.dep);
    if t.enumerable then ignore (View.index_on n.view n.dep)
  in
  List.iter populate roots;
  t

(** [apply_delta t rel d] propagates the delta relation [d] (keyed by the
    atom schema of [rel]) along the leaf-to-root path: the delta view
    tree of Fig. 3. The base relation is updated as well. *)
let apply_delta (t : t) (rel : string) (d : Rel.t) : unit =
  let bview = base_view t rel in
  View.apply_delta bview (Rel.project_onto d (View.schema bview));
  let rec up id came_from (d : Rel.t) =
    if id >= 0 then begin
      let n = t.nodes.(id) in
      let local =
        (* At the anchor node the updated relation itself is excluded:
           δ(R · rest) = δR · rest for a single changed atom. *)
        List.filter (fun r -> not (came_from = -1 && String.equal r rel)) n.local_atoms
      in
      let parts =
        List.map (fun r -> Hashtbl.find t.base r) local
        @ List.filter_map
            (fun c -> if c = came_from then None else Some t.nodes.(c).agg)
            n.children
      in
      let d_full = join_parts d parts n.full in
      View.apply_delta n.view d_full;
      let d_agg = Rel.project_onto d_full n.dep in
      View.apply_delta n.agg d_agg;
      up n.parent id d_agg
    end
  in
  let anchor = Hashtbl.find t.anchor_of rel in
  up anchor (-1) (Rel.project_onto d (Schema.of_list (Cq.find_atom t.query rel).Cq.vars))

(* Fast path for single-tuple updates on relations whose propagation is
   pure lookups: no intermediate relations are allocated; each hop is a
   handful of hash operations. This is the constant the paper's
   "constant update time" refers to. *)
let apply_single_fast (t : t) rel (tuple : Tuple.t) (payload : int) : unit =
  let atom = Cq.find_atom t.query rel in
  let env = Hashtbl.create 8 in
  List.iteri (fun i v -> Hashtbl.replace env v (Tuple.get tuple i)) atom.Cq.vars;
  let proj schema = Tuple.of_list (List.map (Hashtbl.find env) (Schema.to_list schema)) in
  let bview = base_view t rel in
  View.update bview (proj (View.schema bview)) payload;
  let rec up id came_from p =
    if id >= 0 && p <> 0 then begin
      let n = t.nodes.(id) in
      let p =
        List.fold_left
          (fun acc r ->
            if came_from = -1 && String.equal r rel then acc
            else
              let bv = Hashtbl.find t.base r in
              acc * View.get bv (proj (View.schema bv)))
          p n.local_atoms
      in
      let p =
        List.fold_left
          (fun acc c ->
            if c = came_from then acc else acc * View.get t.nodes.(c).agg (proj t.nodes.(c).dep))
          p n.children
      in
      if p <> 0 then begin
        View.update n.view (proj n.full) p;
        View.update n.agg (proj n.dep) p;
        up n.parent id p
      end
    end
  in
  up (Hashtbl.find t.anchor_of rel) (-1) payload

(** Single-tuple update (insert for positive payload, delete for
    negative). Uses the lookup-only fast path when the static analysis
    allows it, the generic delta propagation otherwise. *)
let apply_update (t : t) (u : int Ivm_data.Update.t) : unit =
  let rel = u.Ivm_data.Update.rel in
  if Hashtbl.mem t.fast_path rel then
    apply_single_fast t rel u.Ivm_data.Update.tuple u.Ivm_data.Update.payload
  else begin
    let schema = Schema.of_list (Cq.find_atom t.query rel).Cq.vars in
    let d = Rel.create ~size:1 schema in
    Rel.add_entry d u.Ivm_data.Update.tuple u.Ivm_data.Update.payload;
    apply_delta t rel d
  end

(** Full aggregate of a query with no free variables (e.g. the triangle
    count): the product of the root aggregates. *)
let total_aggregate (t : t) : int =
  List.fold_left (fun acc r -> acc * View.scalar t.nodes.(r).agg) 1 t.roots

(** Constant-delay enumeration of the output, as (tuple over free
    variables, aggregate payload) pairs. Requires the free variables to
    form a connex top fragment (guaranteed for q-hierarchical queries
    with the canonical order).

    As in the paper (Sec. 2), the database must be *valid*: all base
    multiplicities non-negative. Negative multiplicities can cancel a
    marginal aggregate to zero while the underlying tuples remain, which
    breaks the top-down calibration the enumeration relies on. *)
let enumerate (t : t) : (Tuple.t * int) Seq.t =
  if not t.enumerable then
    invalid_arg "View_tree.enumerate: free variables are not a connex top fragment";
  let free_roots, bound_roots = List.partition (fun r -> t.nodes.(r).free) t.roots in
  let scalar_factor =
    List.fold_left (fun acc r -> acc * View.scalar t.nodes.(r).agg) 1 bound_roots
  in
  if scalar_factor = 0 then Seq.empty
  else begin
    let lookup env v = List.assoc v env in
    let key_of env schema = Tuple.of_list (List.map (lookup env) (Schema.to_list schema)) in
    let rec enum_nodes ids env acc () =
      match ids with
      | [] -> Seq.Cons ((env, acc), Seq.empty)
      | id :: rest ->
          let n = t.nodes.(id) in
          let ix = View.index_on n.view n.dep in
          let xpos = Schema.position n.full n.var in
          let group = Rel.Index.seq_group ix (key_of env n.dep) in
          Seq.flat_map
            (fun (full_t, _) ->
              let env' = (n.var, Tuple.get full_t xpos) :: env in
              let local =
                List.fold_left
                  (fun acc r ->
                    let bv = Hashtbl.find t.base r in
                    acc * View.get bv (key_of env' (View.schema bv)))
                  1 n.local_atoms
              in
              let free_kids, bound_kids =
                List.partition (fun c -> t.nodes.(c).free) n.children
              in
              let bfactor =
                List.fold_left
                  (fun acc c ->
                    let cn = t.nodes.(c) in
                    acc * View.get cn.agg (key_of env' cn.dep))
                  1 bound_kids
              in
              let factor = local * bfactor in
              if factor = 0 then Seq.empty
              else enum_nodes (free_kids @ rest) env' (acc * factor))
            group
            ()
    in
    let out_vars = t.query.Cq.free in
    Seq.map
      (fun (env, p) ->
        (Tuple.of_list (List.map (lookup env) out_vars), p * scalar_factor))
      (enum_nodes free_roots [] 1)
  end

(** Callback-based output enumeration: same traversal as {!enumerate}
    but with a slot-array environment and reusable key buffers, so the
    per-tuple constant is a handful of hash lookups. Only the emitted
    output tuples are freshly allocated. This is what the throughput
    benchmarks drive; {!enumerate} remains the lazy constant-delay
    iterator. *)
let iter_output (t : t) (f : Tuple.t -> int -> unit) : unit =
  if not t.enumerable then
    invalid_arg "View_tree.iter_output: free variables are not a connex top fragment";
  let free_roots, bound_roots = List.partition (fun r -> t.nodes.(r).free) t.roots in
  let scalar_factor =
    List.fold_left (fun acc r -> acc * View.scalar t.nodes.(r).agg) 1 bound_roots
  in
  if scalar_factor <> 0 then begin
    let all_vars = Cq.vars t.query in
    let slot_tbl = Hashtbl.create 16 in
    List.iteri (fun i v -> Hashtbl.add slot_tbl v i) all_vars;
    let env = Array.make (max 1 (List.length all_vars)) (Value.Int 0) in
    let slots schema =
      Array.of_list (List.map (Hashtbl.find slot_tbl) (Schema.to_list schema))
    in
    (* A lookup site: a view, the slots of its key schema, and a scratch
       buffer reused across lookups. *)
    let site view schema =
      let sl = slots schema in
      (view, sl, Tuple.scratch (Array.length sl))
    in
    let fill (buf : Tuple.t) (sl : int array) =
      Array.iteri (fun i s -> Tuple.set buf i env.(s)) sl
    in
    let lookup (view, sl, buf) =
      fill buf sl;
      View.get view buf
    in
    (* Per-free-node enumeration state: all lookup sites as arrays so
       the per-tuple loop allocates nothing but the emitted tuple. *)
    let enodes =
      Array.map
        (fun n ->
          let ix = View.index_on n.view n.dep in
          let dep_sl = slots n.dep in
          let sites =
            Array.of_list
              (List.map
                 (fun r ->
                   let bv = Hashtbl.find t.base r in
                   site bv (View.schema bv))
                 n.local_atoms
              @ List.filter_map
                  (fun c ->
                    let cn = t.nodes.(c) in
                    if cn.free then None else Some (site cn.agg cn.dep))
                  n.children)
          in
          ( ix,
            dep_sl,
            Tuple.scratch (Array.length dep_sl),
            Hashtbl.find slot_tbl n.var,
            Schema.position n.full n.var,
            sites,
            List.filter (fun c -> t.nodes.(c).free) n.children ))
        t.nodes
    in
    let out_slots = slots (Schema.of_list t.query.Cq.free) in
    let rec visit ids acc =
      match ids with
      | [] ->
          f (Tuple.init (Array.length out_slots) (fun i -> env.(out_slots.(i)))) (acc * scalar_factor)
      | id :: rest ->
          let ix, dep_sl, dep_buf, xslot, xpos, sites, free_kids = enodes.(id) in
          fill dep_buf dep_sl;
          Rel.Index.iter_group ix dep_buf (fun full_t _ ->
              env.(xslot) <- Tuple.get full_t xpos;
              let factor = ref 1 in
              let k = ref 0 in
              let nsites = Array.length sites in
              while !factor <> 0 && !k < nsites do
                factor := !factor * lookup sites.(!k);
                incr k
              done;
              if !factor <> 0 then visit (free_kids @ rest) (acc * !factor))
      (* NB: iter_group iterates a hash bucket; [visit] must not mutate
         the views, which holds since enumeration is read-only. *)
    in
    visit free_roots 1
  end

(** Materialize the enumeration into a relation keyed by the free
    variables — used in tests and by lazy strategies. *)
let output_relation (t : t) : Rel.t =
  let out = Rel.create (Schema.of_list t.query.Cq.free) in
  iter_output t (fun tp p -> Rel.add_entry out tp p);
  out

(** The number of output tuples. *)
let output_count (t : t) : int =
  let n = ref 0 in
  iter_output t (fun _ _ -> incr n);
  !n

(** Delta enumeration (the paper's footnote 2): apply a single-tuple
    update and enumerate only the change to the query output, as
    (tuple over the free variables, payload delta) pairs.

    Implemented generically: the first-order output delta
    δQ = δR ⋈ (other atoms) is evaluated against the pre-update state
    (Sec. 3.1, Eq. 2 with one changed atom), then the update is applied.
    For q-hierarchical queries the cost is proportional to the number of
    changed output tuples. *)
let apply_update_enumerating (t : t) (u : int Ivm_data.Update.t) : (Tuple.t * int) list =
  let rel = u.Ivm_data.Update.rel in
  let schema = Schema.of_list (Cq.find_atom t.query rel).Cq.vars in
  let d = Rel.create ~size:1 schema in
  Rel.add_entry d u.Ivm_data.Update.tuple u.Ivm_data.Update.payload;
  let d_out = Eval.delta t.query ~lookup:(fun r -> base_view t r) ~changed:rel ~delta:d in
  apply_update t u;
  Rel.fold (fun tp p acc -> (tp, p) :: acc) d_out []
