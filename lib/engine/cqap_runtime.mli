(** Runtimes for the paper's three CQAP examples (Ex. 4.6): given a
    tuple over the input variables, enumerate the matching tuples over
    the output variables, under O(1) single-edge maintenance.

    All three keep their edge multiplicities zero-elided: an update that
    drives a multiplicity to 0 removes the entry, so [Edges.get = 0]
    means absent and answers never report zero-payload matches. *)

(** Triangle detection with all-input access pattern
    Q(·|A,B,C) = E(A,B)·E(B,C)·E(C,A): O(1) updates, O(1) answers. One
    stored copy of E serves all three atoms of the self-join. *)
module Triangle_detect : sig
  type t

  val create : unit -> t
  val update : t -> x:int -> y:int -> int -> unit

  val answer : t -> a:int -> b:int -> c:int -> bool
  (** Do the three given nodes form a triangle? Three hash lookups. *)
end

(** Edge triangle listing Q(C|A,B) = E(A,B)·E(B,C)·E(C,A) — still
    maintained optimally, but the answer intersects two adjacency lists
    (Thm. 4.8's dichotomy: update time and delay cannot both be
    O(N^{1/2-γ})). *)
module Edge_triangles : sig
  type t

  val create : unit -> t
  val update : t -> x:int -> y:int -> int -> unit

  val answer : t -> a:int -> b:int -> (int * int) list
  (** All C such that (a,b,C) is a triangle, with multiplicities;
      iterates the smaller of E(b,·) and E(·,a). *)
end

(** Lookup join Q(A|B) = S(A,B)·T(B): given b, the A-values stream with
    constant delay from S's index on B, guarded by one T lookup. *)
module Lookup_join : sig
  type t

  val create : unit -> t
  val update_s : t -> a:int -> b:int -> int -> unit
  val update_t : t -> b:int -> int -> unit

  val answer : t -> b:int -> (int * int) Seq.t
  (** The (A, payload) answers for input [b]. *)
end
