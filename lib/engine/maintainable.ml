(** A uniform handle over every maintenance engine in this library, so
    the multi-view server of [lib/stream] can keep N heterogeneous views
    (factorized view trees, Fig. 4 strategies, triangle batch kernels)
    current off one shared update stream.

    A maintainable is a record of closures rather than a first-class
    module: the registry only ever needs "apply this batch", "how big is
    your output" and "a fingerprint of your state", and closures let one
    constructor per engine family capture whatever private state the
    engine keeps. [relations] names the base relations the view consumes
    — the registry routes each view only the updates it understands. *)

module Rel = Ivm_data.Relation.Z
module Tuple = Ivm_data.Tuple
module Update = Ivm_data.Update
module Cq = Ivm_query.Cq

type t = {
  name : string;
  relations : string list;  (** base relations this view consumes *)
  apply_batch : int Update.t list -> unit;
      (** Apply a batch of single-tuple updates, all on [relations]. *)
  output_count : unit -> int;  (** current output size (tuples or count) *)
  fingerprint : unit -> int;
      (** Order-independent digest of the current output state, for
          crash-recovery equality checks: two engines over the same
          query agree iff their outputs are extensionally equal. *)
  enumerate : unit -> (Tuple.t * int) list;
      (** Materialize the current output — what the network layer
          serves for snapshots and CQAP lookups. A scalar view (e.g. a
          count) reports itself as the single entry [(Tuple.unit, v)].
          Safe to call from concurrent reader domains: constructors
          whose enumeration mutates engine state (lazy strategies
          refreshing pending deltas) serialize internally. *)
}

(* Order-independent digest of a relation: summing per-entry digests
   makes the fold order (hash-table iteration) irrelevant. *)
let relation_fingerprint (r : Rel.t) : int =
  Rel.fold
    (fun tp p acc -> acc + (Tuple.hash tp lxor (p * 0x9E3779B9)) land max_int)
    r 0
  land max_int

let entries_fingerprint (entries : (Tuple.t * int) list) : int =
  List.fold_left
    (fun acc (tp, p) -> acc + (Tuple.hash tp lxor (p * 0x9E3779B9)) land max_int)
    0 entries
  land max_int

let relation_entries (r : Rel.t) = Rel.fold (fun tp p acc -> (tp, p) :: acc) r []

let of_view_tree ~name (q : Cq.t) (tree : View_tree.t) : t =
  {
    name;
    relations = Cq.relation_names q;
    apply_batch = (fun batch -> List.iter (View_tree.apply_update tree) batch);
    output_count = (fun () -> View_tree.output_count tree);
    fingerprint = (fun () -> relation_fingerprint (View_tree.output_relation tree));
    enumerate = (fun () -> relation_entries (View_tree.output_relation tree));
  }

let of_strategy ~name (s : Strategy.t) : t =
  (* Lazy strategies refresh pending deltas when their output is read,
     so every read-side closure mutates engine state. Under the
     registry's shared read lock two handler domains may read one view
     concurrently — the per-view mutex serializes them (writers are
     already excluded by the registry's exclusive lock). *)
  let m = Mutex.create () in
  let locked f = Mutex.protect m f in
  {
    name;
    relations = Cq.relation_names (Strategy.query s);
    apply_batch = (fun batch -> Strategy.apply_batch s batch);
    output_count = (fun () -> locked (fun () -> Strategy.count_output s));
    fingerprint = (fun () -> locked (fun () -> relation_fingerprint (Strategy.output s)));
    enumerate = (fun () -> locked (fun () -> relation_entries (Strategy.output s)));
  }

(* A dataflow graph already speaks batch updates and materialized
   Z-set outputs, so the wrapper is direct. The fingerprint is the
   entries-based digest — the convention every other engine shares, so
   a served dataflow view compares fingerprint-equal against a
   from-scratch recompute by a different engine. The graph's deeper
   [state_fingerprint] (operator-internal state) is exposed separately
   for checkpoint/restore equivalence checks. *)
let of_dataflow ~name (g : Ivm_dataflow.Graph.t) : t =
  let module G = Ivm_dataflow.Graph in
  {
    name;
    relations = G.relations g;
    apply_batch = (fun batch -> G.apply g batch);
    output_count = (fun () -> G.output_count g name);
    fingerprint = (fun () -> entries_fingerprint (G.entries g name));
    enumerate = (fun () -> G.entries g name);
  }

(* Triangle kernels speak (relation, a, b, multiplicity) edges over the
   fixed schema R(A,B), S(B,C), T(C,A); updates are translated on the
   way in. The count is the whole output, so it is also the digest. *)
let of_triangle_batch (type e) ~name
    (module B : Triangle_batch.BATCH_ENGINE with type t = e) (eng : e) : t =
  let edge_of (u : int Update.t) : Triangle_batch.edge =
    let rel =
      match u.Update.rel with
      | "R" -> Triangle.R
      | "S" -> Triangle.S
      | "T" -> Triangle.T
      | r -> invalid_arg ("Maintainable.of_triangle_batch: unknown relation " ^ r)
    in
    let a = Ivm_data.Value.to_int (Tuple.get u.Update.tuple 0) in
    let b = Ivm_data.Value.to_int (Tuple.get u.Update.tuple 1) in
    (rel, a, b, u.Update.payload)
  in
  {
    name;
    relations = [ "R"; "S"; "T" ];
    apply_batch = (fun batch -> B.apply_batch eng (List.map edge_of batch));
    output_count = (fun () -> B.count eng);
    fingerprint = (fun () -> B.count eng land max_int);
    enumerate = (fun () -> [ (Tuple.unit, B.count eng) ]);
  }
