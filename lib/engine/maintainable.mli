(** A uniform handle over every maintenance engine in this library, so
    the multi-view server of [lib/stream] can keep N heterogeneous views
    (view trees, Fig. 4 strategies, triangle batch kernels) current off
    one shared update stream. *)

module Rel = Ivm_data.Relation.Z
module Cq = Ivm_query.Cq

type t = {
  name : string;
  relations : string list;  (** base relations this view consumes *)
  apply_batch : int Ivm_data.Update.t list -> unit;
      (** Apply a batch of single-tuple updates, all on [relations]. *)
  output_count : unit -> int;  (** current output size (tuples or count) *)
  fingerprint : unit -> int;
      (** Order-independent digest of the current output state, for
          crash-recovery equality checks: two engines over the same
          query agree iff their outputs are extensionally equal. *)
  enumerate : unit -> (Ivm_data.Tuple.t * int) list;
      (** Materialize the current output — what the network layer
          serves for snapshots and CQAP lookups. A scalar view (e.g. a
          count) reports itself as the single entry [(Tuple.unit, v)].
          Constructors whose enumeration mutates engine state (lazy
          strategies) serialize internally, so concurrent readers are
          safe; readers must still exclude writers externally. *)
}

val relation_fingerprint : Rel.t -> int
(** Order-independent digest of a relation's entries. *)

val entries_fingerprint : (Ivm_data.Tuple.t * int) list -> int
(** The same digest over an explicit entry list — what the cluster
    router computes over a cross-shard merge so it can compare against
    a single node's {!relation_fingerprint}-based view digest. *)

val of_view_tree : name:string -> Cq.t -> View_tree.t -> t
(** Wrap a factorized view tree; the query supplies the consumed
    relation names. *)

val of_strategy : name:string -> Strategy.t -> t
(** Wrap one of the four Fig. 4 maintenance strategies. *)

val of_dataflow : name:string -> Ivm_dataflow.Graph.t -> t
(** Wrap a compiled operator graph, reading the view registered on it
    under the same [name]. The fingerprint is {!entries_fingerprint} of
    the view's output — the cross-engine convention — not the graph's
    operator-state digest. *)

val of_triangle_batch :
  name:string -> (module Triangle_batch.BATCH_ENGINE with type t = 'e) -> 'e -> t
(** Wrap a triangle batch kernel. Updates must be on relations "R", "S",
    "T" with binary integer tuples; the count is the output. *)
