(** Binary relations over integer keys with group indexes on both
    columns — the storage shared by all triangle engines (Sec. 3) and by
    the heavy/light partitions of IVM^ε (Sec. 3.3).

    Probes ([get], degrees, adjacency iteration, [intersect]) go through
    domain-local scratch tuples: the triangle delta loops issue one
    probe per neighbour, and a reused buffer keeps them allocation-free
    apart from the two boxed field values. Domain-local (rather than
    per-[t]) buffers make the read-only probes safe under the
    chunk-parallel batch fronts, which probe one shared [Edges] from
    many domains at once. Updates still allocate a fresh immutable
    tuple — stored keys must never be scratch buffers. *)

module Rel = Ivm_data.Relation.Z
module Schema = Ivm_data.Schema
module Tuple = Ivm_data.Tuple
module Value = Ivm_data.Value

type t = { view : View.t; by_fst : Rel.Index.t; by_snd : Rel.Index.t }

let create name_fst name_snd =
  let view = View.create (Schema.of_list [ name_fst; name_snd ]) in
  let by_fst = View.index_on view (Schema.of_list [ name_fst ]) in
  let by_snd = View.index_on view (Schema.of_list [ name_snd ]) in
  { view; by_fst; by_snd }

let tup2 a b = Tuple.of_list [ Value.of_int a; Value.of_int b ]
let key1 a = Tuple.of_list [ Value.of_int a ]

(* Domain-local probe buffers, one per arity. A probe fills the buffer,
   looks up, and never retains it past the call. *)
let probe2_key = Domain.DLS.new_key (fun () -> Tuple.scratch 2)
let probe1_key = Domain.DLS.new_key (fun () -> Tuple.scratch 1)

let probe2 a b =
  let t = Domain.DLS.get probe2_key in
  Tuple.set t 0 (Value.of_int a);
  Tuple.set t 1 (Value.of_int b);
  t

let probe1 a =
  let t = Domain.DLS.get probe1_key in
  Tuple.set t 0 (Value.of_int a);
  t

let update e a b m = View.update e.view (tup2 a b) m
let get e a b = View.get e.view (probe2 a b)
let size e = View.size e.view
let deg_fst e a = Rel.Index.group_size e.by_fst (probe1 a)
let deg_snd e b = Rel.Index.group_size e.by_snd (probe1 b)

(* Iterate the tuples with first column = a, as (a, b, payload). The
   probe buffer is released before the callbacks run (the group lookup
   happens first), so callbacks may themselves probe. *)
let iter_fst e a f =
  Rel.Index.iter_group e.by_fst (probe1 a) (fun t p ->
      f (Value.to_int (Tuple.get t 1)) p)

(* Iterate the tuples with second column = b, as their first column. *)
let iter_snd e b f =
  Rel.Index.iter_group e.by_snd (probe1 b) (fun t p ->
      f (Value.to_int (Tuple.get t 0)) p)

let iter e f =
  View.iter
    (fun t p -> f (Value.to_int (Tuple.get t 0)) (Value.to_int (Tuple.get t 1)) p)
    e.view

let fst_keys e f = Rel.Index.iter_keys e.by_fst (fun k -> f (Value.to_int (Tuple.get k 0)))

(* Σ_x e1(k1, x) * e2(x, k2): intersect the adjacency list of k1 in e1
   (by first column) with that of k2 in e2 (by second column), iterating
   the smaller list — the cost model of Sec. 3.1 and 3.3. *)
let intersect (e1 : t) (k1 : int) (e2 : t) (k2 : int) =
  let acc = ref 0 in
  if deg_fst e1 k1 <= deg_snd e2 k2 then
    iter_fst e1 k1 (fun x p -> acc := !acc + (p * get e2 x k2))
  else iter_snd e2 k2 (fun x p -> acc := !acc + (p * get e1 k1 x));
  !acc
