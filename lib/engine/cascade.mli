(** Cascading q-hierarchical queries (Sec. 4.2, Ex. 4.5, Fig. 5).

    Q2(A,B,C) = R(A,B)·S(B,C) is q-hierarchical;
    Q1(A,B,C,D) = R(A,B)·S(B,C)·T(C,D) is not, but its rewriting
    Q1' = Q2(A,B,C)·T(C,D) over Q2's materialized output is. Updates to
    R and S hit Q2's view tree in O(1); the propagation of Q2's output
    into the intermediate view V_Q2 is piggybacked on enumerating Q2, so
    Q1 may only be enumerated after Q2 has been (condition (ii) of
    Sec. 4.2).

    Zero-elision invariant: V_Q2 and every view-tree node store no
    zero-payload entries — an insert/delete pair cancels out of the
    materialized state entirely, so absence and payload 0 coincide. *)

module Tuple = Ivm_data.Tuple
module Cq = Ivm_query.Cq

val q2 : Cq.t
val q1 : Cq.t

type t

val create : Ivm_data.Database.Z.t -> t
(** Build Q2's view tree (order B(A,C)) and an empty T index over [db];
    V_Q2 starts stale. *)

val apply_update : t -> int Ivm_data.Update.t -> unit
(** O(1) for R and S (Q2's tree absorbs them and V_Q2 goes stale), O(1)
    for T (index update). Raises [Invalid_argument] on any other
    relation. *)

val enumerate_q2 : t -> (Tuple.t * int) Seq.t
(** Enumerate Q2's output; while stale, refreshing V_Q2 piggybacks on
    the enumeration (Fig. 5) — the sequence must then be drained
    completely, or V_Q2 is left partially refreshed. *)

val enumerate_q1 : t -> (Tuple.t * int) Seq.t
(** Enumerate Q1 = Q2 ⋈ T with constant delay off V_Q2's C-index.
    Raises [Invalid_argument] if Q2 has not been (re-)enumerated since
    the last update to R or S. *)

(** The comparison baseline: Q1 maintained standalone with eager
    first-order delta queries over the base relations. *)
module Standalone : sig
  type t

  val create : unit -> t

  val apply_update : t -> int Ivm_data.Update.t -> unit
  (** Materializes the single-tuple update's output delta immediately
      (two nested index scans); raises [Invalid_argument] on a relation
      other than R, S, T. *)

  val enumerate : t -> (Tuple.t * int) Seq.t
end
