(** The four IVM strategies compared in Fig. 4, all sharing one view
    tree and differing on two axes:

    - eager vs lazy: propagate updates through the view tree immediately,
      or only touch the base relations and refresh on enumeration;
    - fact vs list: keep the output factorized over the views, or
      materialize it as a flat list of tuples.

    eager-list is DBToaster-style higher-order maintenance of the listed
    output; eager-fact is F-IVM; lazy-list is classical delta queries
    with recomputation on request; lazy-fact is the hybrid. *)

module Rel = Ivm_data.Relation.Z
module Schema = Ivm_data.Schema
module Tuple = Ivm_data.Tuple
module Update = Ivm_data.Update
module Cq = Ivm_query.Cq
module Vo = Ivm_query.Variable_order

type kind = Eager_fact | Eager_list | Lazy_fact | Lazy_list

let kind_name = function
  | Eager_fact -> "eager-fact"
  | Eager_list -> "eager-list"
  | Lazy_fact -> "lazy-fact"
  | Lazy_list -> "lazy-list"

type t = {
  kind : kind;
  query : Cq.t;
  tree : View_tree.t;
  out : Rel.t; (* flat output, list strategies only *)
  mutable pending : (string * Rel.t) list; (* per-relation queued deltas, lazy-fact *)
}

let create kind query forest db =
  let tree = View_tree.build query forest db in
  let out =
    match kind with
    | Eager_list -> View_tree.output_relation tree
    | Eager_fact | Lazy_fact | Lazy_list -> Rel.create (Schema.of_list query.Cq.free)
  in
  { kind; query; tree; out; pending = [] }

let kind t = t.kind
let query t = t.query

(** The shared view tree (its leaves are the maintained base relations,
    whatever the strategy). *)
let tree t = t.tree

(* The per-relation pending delta of lazy-fact, created on first use. *)
let pending_for t rel =
  match List.assoc_opt rel t.pending with
  | Some d -> d
  | None ->
      let schema = Schema.of_list (Cq.find_atom t.query rel).Cq.vars in
      let d = Rel.create schema in
      t.pending <- (rel, d) :: t.pending;
      d

(* Queue a delta for lazy-fact: merge into the per-relation pending
   relation, so a later refresh propagates one batch per relation. *)
let queue t rel tuple payload = Rel.add_entry (pending_for t rel) tuple payload

let apply (t : t) (u : int Update.t) : unit =
  match t.kind with
  | Eager_fact -> View_tree.apply_update t.tree u
  | Eager_list ->
      (* First-order delta of the flat output (Sec. 3.1), computed with
         index lookups against the current base relations, then applied
         to both the stored output and the tree leaves. *)
      let schema = Schema.of_list (Cq.find_atom t.query u.Update.rel).Cq.vars in
      let d = Rel.create ~size:1 schema in
      Rel.add_entry d u.Update.tuple u.Update.payload;
      let d_out =
        Eval.delta t.query
          ~lookup:(fun rel -> View_tree.base_view t.tree rel)
          ~changed:u.Update.rel ~delta:d
      in
      Rel.iter (fun tp p -> Rel.add_entry t.out tp p) d_out;
      View.apply_delta (View_tree.base_view t.tree u.Update.rel) d
  | Lazy_list ->
      let bv = View_tree.base_view t.tree u.Update.rel in
      View.update bv u.Update.tuple u.Update.payload
  | Lazy_fact ->
      let bv = View_tree.base_view t.tree u.Update.rel in
      View.update bv u.Update.tuple u.Update.payload;
      queue t u.Update.rel u.Update.tuple u.Update.payload

(** [apply_batch ?pool t batch] applies a Fig. 4 batch of single-tuple
    updates. The lazy strategies only touch per-relation state (the base
    view, and for lazy-fact its pending delta), so the batch is
    partitioned by relation and the partitions run concurrently on the
    pool — sound because ring payloads make batches commute (Sec. 2) and
    each relation's structures have a single writer. The eager
    strategies thread every update through the shared view tree and stay
    sequential. *)
let apply_batch ?pool (t : t) (batch : int Update.t list) : unit =
  match (pool, t.kind) with
  | None, _ | _, (Eager_fact | Eager_list) -> List.iter (apply t) batch
  | Some pool, (Lazy_list | Lazy_fact) ->
      let groups : (string, int Update.t list ref) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (u : int Update.t) ->
          match Hashtbl.find_opt groups u.Update.rel with
          | Some l -> l := u :: !l
          | None -> Hashtbl.add groups u.Update.rel (ref [ u ]))
        batch;
      (* Pending deltas are created here, sequentially, so the parallel
         tasks never mutate the shared pending list. *)
      if t.kind = Lazy_fact then
        Hashtbl.iter (fun rel _ -> ignore (pending_for t rel)) groups;
      let tasks =
        Hashtbl.fold
          (fun _ updates acc ->
            (fun () -> List.iter (apply t) (List.rev !updates)) :: acc)
          groups []
      in
      Ivm_par.Domain_pool.run pool tasks

(* Lazy-fact refresh: propagate the queued per-relation deltas through
   the tree. The base relations already include the pending updates, so
   the propagation joins deltas against up-to-date relations; this
   over-counts cross-delta combinations unless deltas are propagated one
   relation at a time against a state where *its own* delta is excluded.
   We therefore subtract each delta from its base relation, propagate,
   which re-adds it (View_tree.apply_delta updates the base too). *)
let refresh_lazy_fact t =
  let pending = t.pending in
  t.pending <- [];
  List.iter
    (fun (rel, d) ->
      let bv = View_tree.base_view t.tree rel in
      Rel.iter (fun tp p -> View.update bv tp (-p)) d)
    pending;
  List.iter (fun (rel, d) -> View_tree.apply_delta t.tree rel d) pending

let enumerate (t : t) : (Tuple.t * int) Seq.t =
  match t.kind with
  | Eager_fact -> View_tree.enumerate t.tree
  | Eager_list -> Rel.to_seq t.out
  | Lazy_fact ->
      refresh_lazy_fact t;
      View_tree.enumerate t.tree
  | Lazy_list ->
      let out =
        Eval.aggregate t.query ~lookup:(fun rel -> View_tree.base_view t.tree rel)
      in
      Rel.to_seq out

(** Drain the enumeration, returning the number of output tuples — the
    access pattern of the Fig. 4 experiment. Factorized strategies use
    the fast callback enumerator. *)
let count_output (t : t) : int =
  match t.kind with
  | Eager_fact -> View_tree.output_count t.tree
  | Lazy_fact ->
      refresh_lazy_fact t;
      View_tree.output_count t.tree
  | Eager_list ->
      (* The stored flat output is scanned: enumeration delivers every
         tuple, it does not just report a size. *)
      Rel.fold (fun _ _ n -> n + 1) t.out 0
  | Lazy_list -> Seq.fold_left (fun n _ -> n + 1) 0 (enumerate t)

(** The output as a relation, for cross-checking strategies in tests. *)
let output (t : t) : Rel.t =
  match t.kind with
  | Eager_fact -> View_tree.output_relation t.tree
  | Lazy_fact ->
      refresh_lazy_fact t;
      View_tree.output_relation t.tree
  | Eager_list | Lazy_list ->
      let out = Rel.create (Schema.of_list t.query.Cq.free) in
      Seq.iter (fun (tp, p) -> Rel.add_entry out tp p) (enumerate t);
      out
