(** Maintenance under functional dependencies (Sec. 4.4, Ex. 4.12,
    Fig. 6): when the Σ-reduct of a query is q-hierarchical, the
    original query is maintained with O(1) single-tuple updates and O(1)
    enumeration delay over any FD-satisfying database (Thm. 4.11). The
    engine is the generic {!View_tree} built over the original
    relations but shaped by the reduct's canonical variable order; the
    constant bound is a property of the data, which the benchmarks
    measure. The underlying tree keeps the library-wide zero-elision
    invariant: no materialized view node stores a zero payload. *)

module Cq = Ivm_query.Cq
module Fd = Ivm_query.Fd

type t

val build : Fd.t list -> Cq.t -> Ivm_data.Database.Z.t -> (t, string) result
(** [build fds q db] constructs the engine, or [Error] if the Σ-reduct
    is not q-hierarchical or its canonical order does not validate for
    [q]. *)

val apply_update : t -> int Ivm_data.Update.t -> unit
val enumerate : t -> (Ivm_data.Tuple.t * int) Seq.t
val output : t -> Ivm_data.Relation.Z.t

val tree : t -> View_tree.t
(** The underlying view tree (inspection and benchmarks). *)
