(** Parallel batch maintenance for the triangle count (Sec. 3).

    Because payloads live in a ring, update batches commute (Sec. 2),
    and Q = Σ R(A,B)·S(B,C)·T(C,A) is multilinear in (R,S,T): the count
    change of a whole batch polarizes into seven terms — the three
    first-order deltas plus the cross terms of two and three delta
    relations — all evaluated against the pre-batch state with read-only
    probes. The batch fronts chunk those sums across an
    {!Ivm_par.Domain_pool}, merge partials with the ring add, and then
    apply base (and view) deltas with one writer per structure. *)

type edge = Triangle.relation * int * int * int
(** One edge update [(rel, a, b, m)] in the relation's own schema order:
    (A,B) for R, (B,C) for S, (C,A) for T; merges multiplicity [m]. *)

module type BATCH_ENGINE = sig
  type t

  val name : string

  val create : ?pool:Ivm_par.Domain_pool.t -> unit -> t
  (** An engine over the empty database. Without [pool] the engine runs
      sequentially; a given pool is borrowed, never destroyed here. *)

  val update : t -> Triangle.relation -> a:int -> b:int -> int -> unit
  (** Single-tuple update — the sequential path of {!Triangle}. *)

  val apply_batch : t -> edge list -> unit
  (** Apply a whole batch; equivalent to [update] per edge in order,
      for any pool width. *)

  val count : t -> int
  (** The current triangle count (constant-time read). *)
end

module Delta : BATCH_ENGINE
(** Batch front of {!Triangle.Delta}: first-order deltas per update,
    polarized batch application. *)

module One_view : BATCH_ENGINE
(** Batch front of {!Triangle.One_view}: additionally maintains
    V_ST(B,A) = Σ_C S(B,C)·T(C,A) through batch deltas
    δV = δS·T + S·δT + δS·δT. *)
