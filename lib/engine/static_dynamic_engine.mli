(** Maintenance over mixed static/dynamic relations (Sec. 4.5,
    Ex. 4.14): the non-q-hierarchical Q(A,B,C) = Σ_D R(A,D)·S(A,B)·T(B,C)
    maintained with O(1) updates to the dynamic R and S and O(1)
    enumeration delay via the view tree over A(D, B(C)). Updates to the
    static T are rejected — one could take linear time, which is the
    paper's point. View-tree state is zero-elided: cancelled payloads
    leave the materialized nodes entirely. *)

module Cq = Ivm_query.Cq
module Vo = Ivm_query.Variable_order
module Sd = Ivm_query.Static_dynamic

val query : Cq.t
val order : Vo.forest
val adornment : Sd.adornment

type t

val create : Ivm_data.Database.Z.t -> t

val apply_update : t -> int Ivm_data.Update.t -> unit
(** Raises [Invalid_argument] on an update to the static relation T. *)

val enumerate : t -> (Ivm_data.Tuple.t * int) Seq.t
val output : t -> Ivm_data.Relation.Z.t

(** The all-dynamic comparison engine: same query and order, but T may
    change — a single T update can touch linearly many A-values. *)
module All_dynamic : sig
  type t

  val create : Ivm_data.Database.Z.t -> t
  val apply_update : t -> int Ivm_data.Update.t -> unit
  val output : t -> Ivm_data.Relation.Z.t
end
