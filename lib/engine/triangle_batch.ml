(** Parallel batch maintenance for the triangle count engines of Sec. 3.

    A batch of edge updates commutes (ring payloads, Sec. 2), and the
    count Q = Σ R(A,B)·S(B,C)·T(C,A) is multilinear in (R, S, T), so the
    cumulative count change of a batch polarizes exactly into seven
    terms, every one evaluated against the *pre-batch* state:

      δQ = δR·S·T + R·δS·T + R·S·δT            (first order)
         + δR·δS·T + R·δS·δT + δR·S·δT         (second order)
         + δR·δS·δT                            (third order)

    Each term is a sum over delta edges of read-only probes into the
    old state and the (frozen) delta indexes — embarrassingly parallel:
    the delta arrays are chunked across the {!Ivm_par.Domain_pool} and
    the partial sums merged with [+], the ℤ-ring add. Base updates are
    then applied with one task per relation (R, S, T own disjoint
    storage), and for {!One_view} the view delta δV_ST is likewise
    built from read-only probes and merged afterwards.

    This is the batch-parallel regime of the Dhulipala et al. line the
    paper cites for triangle maintenance: out-of-order and parallel
    execution licensed by commutativity. Single-tuple [update] stays
    the sequential path of {!Triangle}. *)

module Tri = Triangle
module Pool = Ivm_par.Domain_pool

type edge = Tri.relation * int * int * int
(** One edge update [(rel, a, b, m)] in the relation's own schema
    order — (A,B) for R, (B,C) for S, (C,A) for T — merging
    multiplicity [m]. *)

(** The interface of the batch fronts: {!Triangle.ENGINE}'s single-tuple
    contract plus whole-batch application. *)
module type BATCH_ENGINE = sig
  type t

  val name : string

  val create : ?pool:Pool.t -> unit -> t
  (** An engine over the empty database. Without [pool] the engine runs
      sequentially; the pool, when given, is borrowed (the caller
      destroys it). *)

  val update : t -> Tri.relation -> a:int -> b:int -> int -> unit
  (** Single-tuple update, identical to the sequential engines. *)

  val apply_batch : t -> edge list -> unit
  (** Apply a whole update batch; equivalent to [update] applied to
      each edge in order, for any pool width. *)

  val count : t -> int
  (** The current triangle count (constant-time read). *)
end

(* ------------------------------------------------------------------ *)
(* Shared batch machinery.                                            *)
(* ------------------------------------------------------------------ *)

(* Net per-edge deltas of a batch, split by relation: updates to the
   same edge merge (Q is linear in each relation), zero nets drop. *)
let split_batch (batch : edge list) =
  let mk () : (int * int, int ref) Hashtbl.t = Hashtbl.create 64 in
  let hr = mk () and hs = mk () and ht = mk () in
  List.iter
    (fun (rel, a, b, m) ->
      let h = match rel with Tri.R -> hr | Tri.S -> hs | Tri.T -> ht in
      match Hashtbl.find_opt h (a, b) with
      | Some cell -> cell := !cell + m
      | None -> Hashtbl.add h (a, b) (ref m))
    batch;
  let to_array h =
    let out = ref [] and n = ref 0 in
    Hashtbl.iter
      (fun (a, b) cell ->
        if !cell <> 0 then begin
          out := (a, b, !cell) :: !out;
          incr n
        end)
      h;
    Array.of_list !out
  in
  (to_array hr, to_array hs, to_array ht)

(* Group a delta array by its first column, for the second/third-order
   joins. Read-only once built. *)
let index_by_fst (d : (int * int * int) array) =
  let h : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create (Array.length d) in
  Array.iter
    (fun (a, b, m) ->
      match Hashtbl.find_opt h a with
      | Some l -> l := (b, m) :: !l
      | None -> Hashtbl.add h a (ref [ (b, m) ]))
    d;
  h

let find_fst h a = match Hashtbl.find_opt h a with Some l -> !l | None -> []

(* Chunked parallel sum of [f edge] over a delta array: one task per
   pool slot, partials merged with the ring add. [f] must only read. *)
let psum pool (d : (int * int * int) array) f =
  Pool.fold pool ~add:( + ) ~zero:0
    (List.map
       (fun (lo, len) ->
         fun () ->
          let acc = ref 0 in
          for i = lo to lo + len - 1 do
            acc := !acc + f d.(i)
          done;
          !acc)
       (Pool.chunk_bounds pool (Array.length d)))

(* Apply the net deltas to the base, one task per relation: R, S and T
   own disjoint storage, so the three tasks never contend. *)
let apply_to_base pool (base : Tri.base) dr ds dt =
  let task rel d () = Array.iter (fun (a, b, m) -> Edges.update (Tri.edges_of base rel) a b m) d in
  Pool.run pool [ task Tri.R dr; task Tri.S ds; task Tri.T dt ]

let seq_pool = lazy (Pool.create ~domains:1)
let pool_of = function Some p -> p | None -> Lazy.force seq_pool

(* ------------------------------------------------------------------ *)
(* Delta: first-order engine with polarized batch application.        *)
(* ------------------------------------------------------------------ *)

module Delta : BATCH_ENGINE = struct
  type t = { base : Tri.base; pool : Pool.t; mutable cnt : int }

  let name = "delta-batch"
  let create ?pool () = { base = Tri.make_base (); pool = pool_of pool; cnt = 0 }

  let update t rel ~a ~b m =
    t.cnt <- t.cnt + Tri.delta_count t.base rel a b m;
    Edges.update (Tri.edges_of t.base rel) a b m

  let apply_batch t (batch : edge list) =
    let dr, ds, dt = split_batch batch in
    let ds_by_b = index_by_fst ds and dt_by_c = index_by_fst dt in
    let dr_by_a = index_by_fst dr in
    let dt_map : (int * int, int) Hashtbl.t = Hashtbl.create (Array.length dt) in
    Array.iter (fun (c, a, m) -> Hashtbl.replace dt_map (c, a) m) dt;
    (* First order: the Sec. 3.1 delta queries against the old state. *)
    let d1 rel d = psum t.pool d (fun (a, b, m) -> Tri.delta_count t.base rel a b m) in
    let t_r = d1 Tri.R dr and t_s = d1 Tri.S ds and t_t = d1 Tri.T dt in
    (* Second order: two delta relations joined, the third probed old. *)
    let t_rs =
      psum t.pool dr (fun (a, b, mr) ->
          List.fold_left
            (fun acc (c, ms) -> acc + (mr * ms * Edges.get t.base.Tri.t c a))
            0 (find_fst ds_by_b b))
    in
    let t_st =
      psum t.pool ds (fun (b, c, ms) ->
          List.fold_left
            (fun acc (a, mt) -> acc + (ms * mt * Edges.get t.base.Tri.r a b))
            0 (find_fst dt_by_c c))
    in
    let t_tr =
      psum t.pool dt (fun (c, a, mt) ->
          List.fold_left
            (fun acc (b, mr) -> acc + (mt * mr * Edges.get t.base.Tri.s b c))
            0 (find_fst dr_by_a a))
    in
    (* Third order: all three deltas. *)
    let t_rst =
      psum t.pool dr (fun (a, b, mr) ->
          List.fold_left
            (fun acc (c, ms) ->
              match Hashtbl.find_opt dt_map (c, a) with
              | Some mt -> acc + (mr * ms * mt)
              | None -> acc)
            0 (find_fst ds_by_b b))
    in
    apply_to_base t.pool t.base dr ds dt;
    t.cnt <- t.cnt + t_r + t_s + t_t + t_rs + t_st + t_tr + t_rst

  let count t = t.cnt
end

(* ------------------------------------------------------------------ *)
(* One_view: maintains V_ST(B,A) = Σ_C S(B,C)·T(C,A) (Sec. 3.2).      *)
(* ------------------------------------------------------------------ *)

module One_view : BATCH_ENGINE = struct
  type t = { base : Tri.base; vst : View.t; pool : Pool.t; mutable cnt : int }

  let name = "one-view-batch"

  let create ?pool () =
    {
      base = Tri.make_base ();
      vst = View.create (Ivm_data.Schema.of_list [ "B"; "A" ]);
      pool = pool_of pool;
      cnt = 0;
    }

  (* Single-tuple path: Triangle.One_view's update, verbatim. *)
  let update t rel ~a ~b m =
    (match rel with
    | Tri.R -> t.cnt <- t.cnt + (m * View.get t.vst (Edges.tup2 b a))
    | Tri.S ->
        let beta = a and gamma = b in
        Edges.iter_fst t.base.Tri.t gamma (fun av p ->
            let dv = m * p in
            View.update t.vst (Edges.tup2 beta av) dv;
            t.cnt <- t.cnt + (dv * Edges.get t.base.Tri.r av beta))
    | Tri.T ->
        let gamma = a and alpha = b in
        Edges.iter_snd t.base.Tri.s gamma (fun bv p ->
            let dv = m * p in
            View.update t.vst (Edges.tup2 bv alpha) dv;
            t.cnt <- t.cnt + (dv * Edges.get t.base.Tri.r alpha bv)));
    Edges.update (Tri.edges_of t.base rel) a b m

  (* With Q = R · V and V = S · T, the batch delta splits as
       δQ = δR·V_old + R_new·δV,
       δV = δS·T_old + S_old·δT + δS·δT,
     every summand over old state or frozen deltas. *)
  let apply_batch t (batch : edge list) =
    let dr, ds, dt = split_batch batch in
    let dt_by_c = index_by_fst dt in
    (* δR · V_old. *)
    let t_r = psum t.pool dr (fun (a, b, m) -> m * View.get t.vst (Edges.tup2 b a)) in
    (* δV, built as per-chunk local maps merged after the barrier. *)
    let local_dv body =
      fun () ->
       let h : (int * int, int ref) Hashtbl.t = Hashtbl.create 256 in
       let add key m =
         match Hashtbl.find_opt h key with
         | Some cell -> cell := !cell + m
         | None -> Hashtbl.add h key (ref m)
       in
       body add;
       [ h ]
    in
    let chunk_tasks d body =
      List.map
        (fun (lo, len) ->
          local_dv (fun add ->
              for i = lo to lo + len - 1 do
                body add d.(i)
              done))
        (Pool.chunk_bounds t.pool (Array.length d))
    in
    let dv_parts =
      Pool.fold t.pool ~add:( @ ) ~zero:[]
        (chunk_tasks ds (fun add (b, c, ms) ->
             (* δS(b,c) · T_old(c,A) *)
             Edges.iter_fst t.base.Tri.t c (fun a p -> add (b, a) (ms * p));
             (* δS(b,c) · δT(c,A) *)
             List.iter (fun (a, mt) -> add (b, a) (ms * mt)) (find_fst dt_by_c c))
        @ chunk_tasks dt (fun add (c, a, mt) ->
              (* S_old(B,c) · δT(c,a) *)
              Edges.iter_snd t.base.Tri.s c (fun b p -> add (b, a) (p * mt))))
    in
    let dv : (int * int * int) array =
      let merged : (int * int, int ref) Hashtbl.t = Hashtbl.create 256 in
      List.iter
        (fun part ->
          Hashtbl.iter
            (fun key cell ->
              match Hashtbl.find_opt merged key with
              | Some acc -> acc := !acc + !cell
              | None -> Hashtbl.add merged key (ref !cell))
            part)
        dv_parts;
      let out = ref [] in
      Hashtbl.iter (fun (b, a) cell -> if !cell <> 0 then out := (b, a, !cell) :: !out) merged;
      Array.of_list !out
    in
    apply_to_base t.pool t.base dr ds dt;
    (* R_new · δV (the base now holds R_new; reads only). *)
    let t_v = psum t.pool dv (fun (b, a, m) -> m * Edges.get t.base.Tri.r a b) in
    Array.iter (fun (b, a, m) -> View.update t.vst (Edges.tup2 b a) m) dv;
    t.cnt <- t.cnt + t_r + t_v

  let count t = t.cnt
end
