(** A small concrete syntax for queries and FDs, used by the CLI and
    handy in tests:

    query:  [Q(A, B | C) = R(A, B), S(B, C), T(C)]
            — head variables before [|] are output, after it input;
            a head of [()] or empty is a Boolean query. The [|] part is
            optional (then all head variables are plain free variables).
    fds:    [A -> B; C, D -> E]
    adornment: [R: dynamic; S: static]

    Every error message carries the character offset (and line/column)
    of the offending fragment in the input string, mirroring the SQL
    front end's positioned errors. *)

let trim = String.trim

(* "offset 12 (line 1, column 13)" for [off] within [text] — the same
   rendering the SQL lexer uses, so CLI users see one error shape. *)
let where text off =
  let off = min off (String.length text) in
  let line = ref 1 and bol = ref 0 in
  String.iteri
    (fun i c ->
      if i < off && c = '\n' then begin
        incr line;
        bol := i + 1
      end)
    text;
  Printf.sprintf "offset %d (line %d, column %d)" off !line (off - !bol + 1)

let fail text off fmt =
  Printf.ksprintf (fun s -> Error (Printf.sprintf "%s at %s" s (where text off))) fmt

(* Split on [sep] at parenthesis depth 0, keeping each trimmed part's
   start offset relative to [base] (the offset of [s] in the full
   input) so errors can point into the original string. *)
let split_top ?(base = 0) (sep : char) (s : string) : (int * string) list =
  let parts = ref [] and start = ref 0 and depth = ref 0 in
  String.iteri
    (fun i c ->
      if c = '(' then incr depth;
      if c = ')' then decr depth;
      if c = sep && !depth = 0 then begin
        parts := (!start, String.sub s !start (i - !start)) :: !parts;
        start := i + 1
      end)
    s;
  parts := (!start, String.sub s !start (String.length s - !start)) :: !parts;
  List.rev_map
    (fun (off, part) ->
      let lead = ref 0 in
      let n = String.length part in
      while
        !lead < n
        && (let c = part.[!lead] in
            c = ' ' || c = '\t' || c = '\n' || c = '\r')
      do
        incr lead
      done;
      (base + off + !lead, trim part))
    !parts

let ident_ok s =
  String.length s > 0
  && String.for_all (fun c -> c = '_' || c = '\'' || (c >= '0' && c <= '9')
                              || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) s

let leading_blanks s =
  let n = String.length s in
  let i = ref 0 in
  while
    !i < n
    && (let c = s.[!i] in
        c = ' ' || c = '\t' || c = '\n' || c = '\r')
  do
    incr i
  done;
  !i

let parse_var_list ~text ~at s =
  let at = at + leading_blanks s in
  let s = trim s in
  if s = "" || s = "." then Ok []
  else
    let vars = split_top ~base:at ',' s in
    match List.find_opt (fun (_, v) -> not (ident_ok v)) vars with
    | None -> Ok (List.map snd vars)
    | Some (off, v) -> fail text off "bad variable name '%s'" v

(* "R(A, B)" -> atom; [at] is the offset of [s] in [text]. *)
let parse_atom ~text ~at (s : string) : (Cq.atom, string) result =
  match String.index_opt s '(' with
  | None -> fail text at "expected atom Rel(vars), got '%s'" s
  | Some i ->
      let rel = trim (String.sub s 0 i) in
      if not (ident_ok rel) then fail text at "bad relation name '%s'" rel
      else if String.length s = 0 || s.[String.length s - 1] <> ')' then
        fail text at "missing ')' in atom '%s'" s
      else
        let inner = String.sub s (i + 1) (String.length s - i - 2) in
        Result.bind (parse_var_list ~text ~at:(at + i + 1) inner) (fun vars ->
            try Ok (Cq.atom rel vars)
            with Invalid_argument m -> fail text at "%s" m)

type parsed = { cq : Cq.t; input : string list }

(** Parse a query; returns the CQ and the input variables (empty when no
    access pattern was given). *)
let query (s : string) : (parsed, string) result =
  match split_top '=' s with
  | [ (head_at, head); (body_at, body) ] -> (
      let atoms_r =
        List.fold_right
          (fun (at, a) acc ->
            Result.bind acc (fun atoms ->
                Result.map (fun x -> x :: atoms) (parse_atom ~text:s ~at a)))
          (split_top ~base:body_at ',' body)
          (Ok [])
      in
      match atoms_r with
      | Error e -> Error e
      | Ok atoms -> (
          match String.index_opt head '(' with
          | None -> fail s head_at "expected head Q(vars), got '%s'" head
          | Some i ->
              let name = trim (String.sub head 0 i) in
              if String.length head = 0 || head.[String.length head - 1] <> ')' then
                fail s head_at "missing ')' in head '%s'" head
              else
                let inner = String.sub head (i + 1) (String.length head - i - 2) in
                let inner_at = head_at + i + 1 in
                let out_part, in_part =
                  match String.index_opt inner '|' with
                  | None -> ((inner_at, inner), (inner_at + String.length inner, ""))
                  | Some j ->
                      ( (inner_at, String.sub inner 0 j),
                        ( inner_at + j + 1,
                          String.sub inner (j + 1) (String.length inner - j - 1) ) )
                in
                let at_out, out_s = out_part and at_in, in_s = in_part in
                Result.bind (parse_var_list ~text:s ~at:at_out out_s) (fun out ->
                    Result.bind (parse_var_list ~text:s ~at:at_in in_s) (fun input ->
                        try Ok { cq = Cq.make ~name ~free:(out @ input) atoms; input }
                        with Invalid_argument m -> fail s head_at "%s" m))))
  | _ -> Error "expected: Head(vars) = Atom(vars), ..."

(** Parse a semicolon-separated FD list: "A -> B; C, D -> E". *)
let fds (s : string) : (Fd.t list, string) result =
  let t = trim s in
  if t = "" then Ok []
  else
    List.fold_right
      (fun (at, part) acc ->
        Result.bind acc (fun fds ->
            match Str_split.arrow part with
            | Some _ ->
                (* '-' cannot occur in an identifier, so the first one
                   starts the arrow; rhs begins right after it. *)
                let i = Option.get (String.index_opt part '-') in
                let lhs = String.sub part 0 i in
                let rhs = String.sub part (i + 2) (String.length part - i - 2) in
                Result.bind (parse_var_list ~text:s ~at lhs) (fun l ->
                    Result.bind (parse_var_list ~text:s ~at:(at + i + 2) rhs)
                      (fun r -> Ok (Fd.make l r :: fds)))
            | None -> fail s at "expected lhs -> rhs, got '%s'" part))
      (split_top ';' s) (Ok [])

(** Parse an adornment list: "R: static; S: dynamic". *)
let adornment (s : string) : (Static_dynamic.adornment, string) result =
  let t = trim s in
  if t = "" then Ok []
  else
    List.fold_right
      (fun (at, part) acc ->
        Result.bind acc (fun ad ->
            match split_top ~base:at ':' part with
            | [ (_, rel); (kind_at, kind) ] -> (
                match String.lowercase_ascii kind with
                | "static" | "s" -> Ok ((rel, Static_dynamic.Static) :: ad)
                | "dynamic" | "d" -> Ok ((rel, Static_dynamic.Dynamic) :: ad)
                | k -> fail s kind_at "unknown kind '%s' (want static|dynamic)" k)
            | _ -> fail s at "expected Rel: static|dynamic, got '%s'" part))
      (split_top ';' s) (Ok [])
