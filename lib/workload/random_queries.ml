(** A random CQ workload generator with key-style FDs, used to reproduce
    the Sec. 4.4 observation that functional dependencies turn a large
    fraction of a real query workload q-hierarchical (76% of ≈6000
    queries in a RelationalAI project). The proprietary corpus is not
    available, so we generate snowflake-shaped join queries over schemas
    with key/foreign-key edges — the shape of that workload — and
    measure the same fraction on them. *)

module Cq = Ivm_query.Cq
module Fd = Ivm_query.Fd

type generated = { query : Cq.t; fds : Fd.t list }

(* A random snowflake: a central fact relation with [dims] dimension
   relations hanging off foreign keys, each dimension possibly having a
   further sub-dimension (chains of length 2) — the pattern that is
   non-hierarchical as written (chains!) but hierarchical under the key
   FDs. With probability [cyclic_p] an extra edge shares a dimension
   between two branches, which usually stays intractable. *)
let generate ~rng ~id : generated =
  (* 70% single-branch (chain) queries, 30% multi-branch stars. Chains
     become q-hierarchical under the key FDs; stars do not (two branches
     properly overlap on the fact atom — see Ex. 4.13 for why only
     amortized maintenance is possible for them). The measured fraction
     therefore tracks the chain share of the corpus; the paper's 76% is
     a property of the RelationalAI corpus, ours of this mix. *)
  let dims = if Random.State.int rng 10 < 7 then 1 else 2 + Random.State.int rng 2 in
  let fact_keys = List.init dims (fun i -> Printf.sprintf "k%d" i) in
  let fact = Cq.atom "Fact" ("fid" :: fact_keys) in
  let atoms = ref [ fact ] in
  (* The fact table's primary key determines its foreign keys. *)
  let fds = ref [ Fd.make [ "fid" ] fact_keys ] in
  let free = ref [] in
  List.iteri
    (fun i k ->
      let dname = Printf.sprintf "Dim%d" i in
      let attr = Printf.sprintf "a%d" i in
      let deep = Random.State.bool rng in
      if deep then begin
        (* Dim(k, sub); Sub(sub, attr): a chain of length 2. *)
        let sub = Printf.sprintf "s%d" i in
        atoms := Cq.atom dname [ k; sub ] :: Cq.atom (dname ^ "s") [ sub; attr ] :: !atoms;
        fds := Fd.make [ k ] [ sub ] :: Fd.make [ sub ] [ attr ] :: !fds
      end
      else begin
        atoms := Cq.atom dname [ k; attr ] :: !atoms;
        fds := Fd.make [ k ] [ attr ] :: !fds
      end;
      if Random.State.bool rng then free := attr :: !free)
    fact_keys;
  (* Group by the fact id with probability 3/4: real workloads of this
     shape are dominated by per-fact (key-in-head) queries. *)
  if Random.State.int rng 4 < 3 then free := "fid" :: !free;
  let free = if !free = [] then [ "fid" ] else !free in
  { query = Cq.make ~name:(Printf.sprintf "W%d" id) ~free !atoms; fds = !fds }

type fraction = { total : int; q_hier : int; q_hier_fd : int }

(** Generate [n] queries and report how many are q-hierarchical as
    written and under their FDs. *)
let measure ~rng ~n () : fraction =
  let qs = List.init n (fun id -> generate ~rng ~id) in
  let module H = Ivm_query.Hierarchical in
  {
    total = n;
    q_hier = List.length (List.filter (fun g -> H.is_q_hierarchical g.query) qs);
    q_hier_fd =
      List.length
        (List.filter (fun g -> H.is_q_hierarchical (Fd.sigma_reduct g.fds g.query)) qs);
  }

module Vo = Ivm_query.Variable_order

type exec = { query : Cq.t; order : Vo.forest }

(* Random q-hierarchical-by-construction queries: grow a random variable
   forest, then place every atom on a root-to-node path (the validity
   condition of a variable order) and pick the free variables as an
   upward-closed set (a connex top fragment, so enumeration is
   constant-delay). Unlike {!generate}, whose snowflakes need FD
   rewriting before they are maintainable, these run as written on every
   engine — the executable workloads of the differential fuzzer. *)
let executable ~rng ~id : exec =
  let module R = Random.State in
  let attempt () =
    let k = 2 + R.int rng 5 in
    let parent =
      Array.init k (fun i ->
          if i = 0 then -1 else if R.int rng 4 = 0 then -1 else R.int rng i)
    in
    let children = Array.make k [] in
    for i = k - 1 downto 1 do
      if parent.(i) >= 0 then children.(parent.(i)) <- i :: children.(parent.(i))
    done;
    let nodes = List.init k Fun.id in
    let roots = List.filter (fun i -> parent.(i) < 0) nodes in
    let var i = Printf.sprintf "v%d" i in
    let rec path i = if i < 0 then [] else path parent.(i) @ [ i ] in
    let leaves = List.filter (fun i -> children.(i) = []) nodes in
    (* One atom per leaf over its full root path covers every variable;
       extra atoms over random sub-paths add sharing and self-join-free
       overlap. *)
    let atoms =
      ref
        (List.mapi
           (fun j l -> Cq.atom (Printf.sprintf "R%d" j) (List.map var (path l)))
           leaves)
    in
    for e = 0 to R.int rng 3 - 1 do
      let n = R.int rng k in
      let sub = List.filter (fun i -> i = n || R.bool rng) (path n) in
      atoms := Cq.atom (Printf.sprintf "E%d" e) (List.map var sub) :: !atoms
    done;
    let free = Array.make k false in
    let rec mark p i =
      if R.float rng 1.0 < p then begin
        free.(i) <- true;
        List.iter (mark (p *. 0.7)) children.(i)
      end
    in
    List.iter (mark 0.9) roots;
    if not (Array.exists Fun.id free) then free.(List.hd roots) <- true;
    let rec tree_of i = { Vo.var = var i; children = List.map tree_of (List.rev children.(i)) } in
    let order = List.map tree_of roots in
    let q =
      Cq.make
        ~name:(Printf.sprintf "X%d" id)
        ~free:(List.filter (fun i -> free.(i)) nodes |> List.map var)
        !atoms
    in
    match Vo.validate q order with
    | Ok () when Vo.free_top q order -> Some { query = q; order }
    | Ok () | Error _ -> None
  in
  let rec retry n = match attempt () with
    | Some w -> w
    | None when n > 0 -> retry (n - 1)
    | None ->
        (* Statically valid fallback; not expected to be reached. *)
        let q =
          Cq.make ~name:(Printf.sprintf "X%d" id) ~free:[ "a" ]
            [ Cq.atom "R0" [ "a"; "b" ]; Cq.atom "E0" [ "a" ] ]
        in
        { query = q;
          order = [ { Vo.var = "a"; children = [ { Vo.var = "b"; children = [] } ] } ] }
  in
  retry 20
