(** Multi-tenant mixed workloads for the YCSB-style macro-benchmark.

    A {e tenant} is one materialized view plus the private, namespaced
    base tables that feed it, so tens-to-hundreds of heterogeneous
    views — q-hierarchical joins, triangle kernels, cascade joins,
    dataflow MIN/MAX and window views, and a closed-economy ring-sum
    view — coexist in one registry over one update stream. Generators
    draw keys from a Zipf whose hot set drifts on a seeded schedule,
    and the economy tenant emits debit/credit pairs that sum to zero by
    construction so the view total is a standing conservation
    invariant. *)

type kind = Join | Triangle | Cascade | Minmax | Window | Economy

val kind_name : kind -> string
val kind_char : kind -> char
val kind_of_char : char -> kind option

type tenant = {
  name : string;  (** view name, e.g. ["t3e"] *)
  kind : kind;
  index : int;
  tables : (string * string list) list;  (** namespaced table -> columns *)
  keys : int;  (** key-domain size the generators draw from *)
}

val tenant : index:int -> kind -> keys:int -> tenant

val tenants : views:int -> keys:int -> tenant list
(** [views] tenants cycling through all kinds, economy second so even a
    two-view mix carries the conservation invariant. *)

val of_tables : (string * string list) list -> tenant list
(** Reconstruct tenants from namespaced table schemas ([t<i><k>_<T>]);
    unparseable names are ignored and [keys] comes back [0] (factories
    do not need it). *)

val table : tenant -> string -> string
(** [table t "R"] is the namespaced table name; raises
    [Invalid_argument] if the tenant has no such table. *)

val factory : tenant -> Ivm_data.Database.Z.t -> Ivm_engine.Maintainable.t
(** Build the tenant's maintenance engine seeded from [db]'s current
    contents of its tables. *)

val initial_balance : int

val init_updates : tenant -> accounts:int -> int Ivm_data.Update.t list
(** Opening state: [accounts] economy accounts of {!initial_balance}
    each; empty for every other kind. *)

val expected_total : accounts:int -> int
val conservation_total : (Ivm_data.Tuple.t * int) list -> int

val check_conservation :
  tenant -> accounts:int -> (Ivm_data.Tuple.t * int) list -> (unit, string) result
(** [Ok ()] for non-economy tenants; for the economy, asserts the
    enumerated view total equals {!expected_total}. *)

val window_size : int
val window_lateness : int

(** Seeded hot-set drift: a pure function of [(seed, op / period)], so
    two generators with the same seed drift in lockstep and any run
    replays exactly. *)
module Drift : sig
  type t

  val create : seed:int -> keys:int -> period:int -> t
  (** [period <= 0] disables drift (phase is always 0). *)

  val phase : t -> op:int -> int
  val offset : t -> op:int -> int

  val key : t -> zipf:Zipf.t -> Random.State.t -> op:int -> int
  (** A Zipf draw rotated by the current phase's offset, in [1, keys]. *)
end

(** Stateful per-tenant update generator: one workload step per {!next}
    call. Deterministic given [(tenant, drift, seed, worker)]. *)
module Tgen : sig
  type t

  val create :
    ?worker:int ->
    ?workers:int ->
    ?zipf_s:float ->
    ?accounts:int ->
    tenant ->
    drift:Drift.t ->
    seed:int ->
    unit ->
    t
  (** Each worker owns a disjoint slice of the economy's accounts, so
      local balance tracking is globally exact and debits never
      overdraw. *)

  val next : t -> op:int -> int Ivm_data.Update.t list
  (** The updates for workload step [op]: a single insert/delete for
      most kinds, a zero-sum debit/credit pair for the economy (or []
      when the worker's slice has under two accounts). *)
end
