(** Multi-tenant mixed workloads: the YCSB-style macro-benchmark mix.

    A {e tenant} is one materialized view plus the private base tables
    feeding it, namespaced so tens-to-hundreds of heterogeneous views
    (q-hierarchical joins, triangle kernels, cascade joins, dataflow
    MIN/MAX and window views, and a closed-economy ring-sum view) share
    one registry and one update stream. The update generators draw keys
    from a Zipf whose hot set {e drifts} on a seeded schedule — the
    churn that forces IVMε-style heavy/light rebalancing — and the
    economy tenant emits debit/credit {e pairs} that sum to zero by
    construction, so its view total is a conservation invariant any
    sampled epoch can assert. *)

module Value = Ivm_data.Value
module Tuple = Ivm_data.Tuple
module Update = Ivm_data.Update
module Schema = Ivm_data.Schema
module Db = Ivm_data.Database.Z
module Rel = Ivm_data.Relation.Z
module Cq = Ivm_query.Cq
module Vo = Ivm_query.Variable_order
module M = Ivm_engine.Maintainable
module View_tree = Ivm_engine.View_tree
module Tri = Ivm_engine.Triangle
module Tb = Ivm_engine.Triangle_batch
module Df = Ivm_dataflow.Graph
module R = Random.State

(* --- tenant kinds ----------------------------------------------------- *)

type kind = Join | Triangle | Cascade | Minmax | Window | Economy

let kind_name = function
  | Join -> "join"
  | Triangle -> "triangle"
  | Cascade -> "cascade"
  | Minmax -> "minmax"
  | Window -> "window"
  | Economy -> "economy"

(* The kind letter is baked into every tenant and table name, so a
   tenant list is reconstructible from the table schemas alone
   ({!of_tables}) — what lets a fuzz case serialize only its schemas. *)
let kind_char = function
  | Join -> 'j'
  | Triangle -> 't'
  | Cascade -> 'c'
  | Minmax -> 'm'
  | Window -> 'w'
  | Economy -> 'e'

let kind_of_char = function
  | 'j' -> Some Join
  | 't' -> Some Triangle
  | 'c' -> Some Cascade
  | 'm' -> Some Minmax
  | 'w' -> Some Window
  | 'e' -> Some Economy
  | _ -> None

type tenant = {
  name : string;  (** view name, e.g. ["t3e"] *)
  kind : kind;
  index : int;
  tables : (string * string list) list;  (** namespaced table -> columns *)
  keys : int;  (** key-domain size the generators draw from *)
}

let initial_balance = 1_000

let table_shapes = function
  | Join -> [ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]) ]
  | Triangle -> [ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]); ("T", [ "C"; "A" ]) ]
  | Cascade -> [ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]); ("T", [ "C"; "D" ]) ]
  | Minmax -> [ ("R", [ "G"; "V" ]) ]
  | Window -> [ ("R", [ "TS"; "K" ]) ]
  | Economy -> [ ("A", [ "ID" ]) ]

let tenant ~index kind ~keys =
  let name = Printf.sprintf "t%d%c" index (kind_char kind) in
  let tables =
    List.map (fun (t, cols) -> (name ^ "_" ^ t, cols)) (table_shapes kind)
  in
  { name; kind; index; tables; keys }

(* The round-robin mix: economy second so even a two-view run carries
   the conservation invariant. *)
let kind_cycle = [| Join; Economy; Triangle; Minmax; Cascade; Window |]

let tenants ~views ~keys =
  List.init views (fun i ->
      tenant ~index:i kind_cycle.(i mod Array.length kind_cycle) ~keys)

(* Reconstruct the tenant list from namespaced table schemas: names are
   [t<i><kind>_<table>]. Tables that do not parse are ignored. *)
let of_tables tables =
  let by_tenant = Hashtbl.create 16 in
  List.iter
    (fun (tbl, cols) ->
      match String.index_opt tbl '_' with
      | None -> ()
      | Some cut -> (
          let tname = String.sub tbl 0 cut in
          let n = String.length tname in
          if n >= 3 && tname.[0] = 't' then
            match
              ( int_of_string_opt (String.sub tname 1 (n - 2)),
                kind_of_char tname.[n - 1] )
            with
            | Some index, Some kind ->
                let prev =
                  Option.value (Hashtbl.find_opt by_tenant tname) ~default:[]
                in
                Hashtbl.replace by_tenant tname
                  ((index, kind, (tbl, cols)) :: prev)
            | _ -> ()))
    tables;
  Hashtbl.fold
    (fun name groups acc ->
      match groups with
      | [] -> acc
      | (index, kind, _) :: _ ->
          { name; kind; index; tables = List.rev_map (fun (_, _, t) -> t) groups;
            keys = 0 }
          :: acc)
    by_tenant []
  |> List.sort (fun a b -> compare a.index b.index)

let table tenant suffix =
  let full = tenant.name ^ "_" ^ suffix in
  if List.mem_assoc full tenant.tables then full
  else invalid_arg ("Mixed.table: " ^ full)

(* --- maintainable factories ------------------------------------------- *)

let ints vs = Tuple.of_ints vs

(* Route a maintainable registered on canonical relation names through
   the tenant's namespaced ones. *)
let renamed ~relations ~canonical (m : M.t) =
  {
    m with
    M.relations;
    apply_batch =
      (fun batch ->
        m.M.apply_batch
          (List.map
             (fun (u : int Update.t) ->
               Update.make ~rel:(canonical u.Update.rel) ~tuple:u.Update.tuple
                 ~payload:u.Update.payload)
             batch));
  }

(* Q(B) :- R(A,B), S(B,C): the textbook q-hierarchical join (free join
   variable at the root, bound children), maintained as a view tree. *)
let join_factory t : Db.t -> M.t =
  let r = table t "R" and s = table t "S" in
  let q = Cq.make ~name:t.name ~free:[ "B" ] [ Cq.atom r [ "A"; "B" ]; Cq.atom s [ "B"; "C" ] ] in
  let order =
    [ { Vo.var = "B";
        children = [ { Vo.var = "A"; children = [] }; { Vo.var = "C"; children = [] } ] } ]
  in
  fun db -> M.of_view_tree ~name:t.name q (View_tree.build q order db)

let tri_side = function "R" -> Tri.R | "S" -> Tri.S | _ -> Tri.T

let triangle_factory t : Db.t -> M.t =
  let pairs = List.map (fun c -> (table t c, c)) [ "R"; "S"; "T" ] in
  fun db ->
    let eng = Tb.Delta.create () in
    List.iter
      (fun (full, canon) ->
        Rel.iter
          (fun tp p ->
            Tb.Delta.update eng (tri_side canon)
              ~a:(Value.to_int (Tuple.get tp 0))
              ~b:(Value.to_int (Tuple.get tp 1))
              p)
          (Db.find db full))
      pairs;
    let canonical rel = List.assoc rel pairs in
    renamed ~relations:(List.map fst pairs) ~canonical
      (M.of_triangle_batch ~name:t.name (module Tb.Delta) eng)

let seed_graph g db tables =
  Df.apply g
    (List.concat_map
       (fun (rel, _) ->
         Rel.fold
           (fun tp p acc -> Update.make ~rel ~tuple:tp ~payload:p :: acc)
           (Db.find db rel) [])
       tables)

(* R ⋈ S ⋈ T projected onto the ends — the retailer-style cascade of
   joins, maintained as a delta-propagating operator DAG. *)
let cascade_factory t : Db.t -> M.t =
  let r = table t "R" and s = table t "S" and tt = table t "T" in
  fun db ->
    let g = Df.create () in
    let src rel schema = Df.source g ~rel ~schema in
    let joined = Df.join g (Df.join g (src r [ "A"; "B" ]) (src s [ "B"; "C" ])) (src tt [ "C"; "D" ]) in
    Df.output g ~name:t.name (Df.project g ~cols:[ "A"; "D" ] joined);
    seed_graph g db t.tables;
    M.of_dataflow ~name:t.name g

(* (G, MIN(V), MAX(V)) via one shared source feeding both extrema, each
   renamed so the join keys on the group alone. *)
let minmax_factory t : Db.t -> M.t =
  let r = table t "R" in
  fun db ->
    let g = Df.create () in
    let src = Df.source g ~rel:r ~schema:[ "G"; "V" ] in
    let rename agg node =
      Df.map g ~label:("as " ^ agg) ~schema:[ "G"; agg ^ "(V)" ] Fun.id node
    in
    let mn = rename "MIN" (Df.minimum g ~col:"V" ~group:[ "G" ] src)
    and mx = rename "MAX" (Df.maximum g ~col:"V" ~group:[ "G" ] src) in
    Df.output g ~name:t.name (Df.join g mn mx);
    seed_graph g db t.tables;
    M.of_dataflow ~name:t.name g

let window_size = 16
let window_lateness = 8

let window_factory t : Db.t -> M.t =
  let r = table t "R" in
  fun db ->
    let g = Df.create () in
    let src = Df.source g ~rel:r ~schema:[ "TS"; "K" ] in
    Df.output g ~name:t.name
      (Df.window g ~lateness:window_lateness ~time:"TS" ~size:window_size
         ~group:[ "K" ] src);
    seed_graph g db t.tables;
    M.of_dataflow ~name:t.name g

(* The closed-economy ring-sum view: account balances are multiplicities
   of A(id), and the group-by-nothing ring aggregate is the total — one
   scalar row whose payload must never move under transfer pairs. *)
let economy_factory t : Db.t -> M.t =
  let a = table t "A" in
  fun db ->
    let g = Df.create () in
    Df.output g ~name:t.name
      (Df.aggregate g ~label:"SUM(balance)" ~group:[]
         (Df.source g ~rel:a ~schema:[ "ID" ]));
    seed_graph g db t.tables;
    M.of_dataflow ~name:t.name g

let factory t =
  match t.kind with
  | Join -> join_factory t
  | Triangle -> triangle_factory t
  | Cascade -> cascade_factory t
  | Minmax -> minmax_factory t
  | Window -> window_factory t
  | Economy -> economy_factory t

(* Initial rows: only the economy opens with state — [accounts] accounts
   of [initial_balance] each, so the conserved total is never zero. *)
let init_updates t ~accounts =
  match t.kind with
  | Economy ->
      List.init accounts (fun i ->
          Update.make ~rel:(table t "A") ~tuple:(ints [ i + 1 ])
            ~payload:initial_balance)
  | _ -> []

let expected_total ~accounts = accounts * initial_balance

let conservation_total entries = List.fold_left (fun acc (_, p) -> acc + p) 0 entries

let check_conservation t ~accounts entries =
  if t.kind <> Economy then Ok ()
  else
    let total = conservation_total entries in
    let expect = expected_total ~accounts in
    if total = expect then Ok ()
    else
      Error
        (Printf.sprintf "%s: conservation violated: total %d, expected %d" t.name
           total expect)

(* --- drift schedule --------------------------------------------------- *)

(* splitmix64-style finalizer: the schedule is a pure function of
   (seed, phase), so two generators with the same seed drift in
   lockstep and a run replays exactly. *)
let mix (x : int) : int =
  let x = x lxor (x lsr 30) in
  let x = x * 0x2545f4914f6cdd1d in
  let x = x lxor (x lsr 27) in
  let x = x * 0x14d049bb133111eb in
  x lxor (x lsr 31)

module Drift = struct
  type t = { seed : int; keys : int; period : int }

  let create ~seed ~keys ~period =
    if keys < 1 then invalid_arg "Drift.create: keys < 1";
    { seed; keys; period }

  let phase t ~op = if t.period <= 0 then 0 else op / t.period

  (* Where the hot set sits during [op]'s phase: a seeded rotation of
     the key space. Adjacent phases land on decorrelated offsets. *)
  let offset t ~op =
    if t.keys <= 1 then 0
    else mix ((t.seed * 0x9e3779b9) + phase t ~op) land max_int mod t.keys

  let key t ~zipf rng ~op =
    let r = Zipf.sample zipf rng in
    1 + ((r - 1 + offset t ~op) mod t.keys)
end

(* --- per-tenant update generators ------------------------------------- *)

module Tgen = struct
  type t = {
    tenant : tenant;
    drift : Drift.t;
    zipf : Zipf.t;
    rng : Random.State.t;
    (* live rows inserted so far, so deletes hit existing tuples *)
    mutable live : (string * Tuple.t) list;
    mutable live_n : int;
    mutable clock : int; (* window event time, monotone per generator *)
    balances : int array; (* economy: the worker's account slice *)
    account_lo : int; (* first account id of the slice (1-based) *)
  }

  (* Each worker owns a disjoint slice of the economy's accounts, so its
     local balance tracking is globally exact and no debit can overdraw
     an account another worker also debits. *)
  let create ?(worker = 0) ?(workers = 1) ?(zipf_s = 1.1) ?(accounts = 64) tenant
      ~drift ~seed () =
    if worker < 0 || workers < 1 || worker >= workers then
      invalid_arg "Tgen.create: bad worker/workers";
    let per = max 1 (accounts / workers) in
    let lo = 1 + (worker * per) in
    let hi = if worker = workers - 1 then accounts else min accounts (lo + per - 1) in
    let slice = max 1 (hi - lo + 1) in
    {
      tenant;
      drift;
      zipf = Zipf.create ~n:(max 1 tenant.keys) ~s:zipf_s;
      rng = Random.State.make [| mix seed; mix (tenant.index + 1); mix (worker + 1) |];
      live = [];
      live_n = 0;
      clock = 0;
      balances = Array.make slice initial_balance;
      account_lo = lo;
    }

  let remember g rel tuple =
    (* Bounded memory: forget the oldest half once past 4096 rows. *)
    if g.live_n > 4096 then begin
      g.live <- List.filteri (fun i _ -> i < 2048) g.live;
      g.live_n <- 2048
    end;
    g.live <- (rel, tuple) :: g.live;
    g.live_n <- g.live_n + 1

  let take_live g =
    match g.live with
    | [] -> None
    | (rel, tuple) :: rest ->
        g.live <- rest;
        g.live_n <- g.live_n - 1;
        Some (rel, tuple)

  let key g ~op = Drift.key g.drift ~zipf:g.zipf g.rng ~op

  let insert_or_delete g make =
    if g.live_n > 0 && R.float g.rng 1.0 < 0.3 then
      match take_live g with
      | Some (rel, tuple) -> [ Update.make ~rel ~tuple ~payload:(-1) ]
      | None -> assert false
    else
      let rel, tuple = make () in
      remember g rel tuple;
      [ Update.make ~rel ~tuple ~payload:1 ]

  (* One workload step for this tenant: a single row for most kinds, a
     zero-sum debit/credit pair for the economy. *)
  let next g ~op =
    let t = g.tenant in
    match t.kind with
    | Join ->
        insert_or_delete g (fun () ->
            let b = key g ~op in
            if R.bool g.rng then (table t "R", ints [ 1 + R.int g.rng 16; b ])
            else (table t "S", ints [ b; 1 + R.int g.rng 16 ]))
    | Triangle ->
        insert_or_delete g (fun () ->
            let n = max 2 (min t.keys 32) in
            let rel = [| table t "R"; table t "S"; table t "T" |].(R.int g.rng 3) in
            (rel, ints [ 1 + (key g ~op mod n); 1 + R.int g.rng n ]))
    | Cascade ->
        insert_or_delete g (fun () ->
            let k = key g ~op in
            match R.int g.rng 3 with
            | 0 -> (table t "R", ints [ 1 + R.int g.rng 16; k ])
            | 1 -> (table t "S", ints [ k; 1 + R.int g.rng 16 ])
            | _ -> (table t "T", ints [ k; 1 + R.int g.rng 16 ]))
    | Minmax ->
        insert_or_delete g (fun () ->
            let groups = max 1 (min t.keys 16) in
            (table t "R", ints [ 1 + (key g ~op mod groups); R.int g.rng 1000 ]))
    | Window ->
        (* Event time advances with the op counter; occasional bounded
           lateness exercises pane accounting without guaranteed drops. *)
        g.clock <- max g.clock (op / 2);
        let late = if R.int g.rng 10 = 0 then R.int g.rng window_lateness else 0 in
        let ts = max 0 (g.clock - late) in
        [ Update.make ~rel:(table t "R") ~tuple:(ints [ ts; key g ~op ]) ~payload:1 ]
    | Economy ->
        let n = Array.length g.balances in
        if n < 2 then []
        else
          let amt = 1 + R.int g.rng 3 in
          (* Debit an account that can afford it (fall back to the
             richest), credit a drift-hot one: the pair sums to zero by
             construction and no balance ever goes negative. *)
          let src =
            let cand = R.int g.rng n in
            if g.balances.(cand) >= amt then cand
            else
              let best = ref 0 in
              Array.iteri (fun i b -> if b > g.balances.(!best) then best := i) g.balances;
              ignore cand;
              !best
          in
          if g.balances.(src) < amt then []
          else
            let dst =
              let d = (key g ~op - 1) mod n in
              if d = src then (d + 1) mod n else d
            in
            g.balances.(src) <- g.balances.(src) - amt;
            g.balances.(dst) <- g.balances.(dst) + amt;
            let acct i = ints [ g.account_lo + i ] in
            [
              Update.make ~rel:(table t "A") ~tuple:(acct src) ~payload:(-amt);
              Update.make ~rel:(table t "A") ~tuple:(acct dst) ~payload:amt;
            ]
end
