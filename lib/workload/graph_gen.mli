(** Random-graph update streams for the triangle workloads (Sec. 3):
    edges over the three binary relations R(A,B), S(B,C), T(C,A). *)

type edge = { rel : int;  (** 0 = R, 1 = S, 2 = T *) src : int; dst : int; mult : int }

type spec = {
  nodes : int;  (** endpoints are drawn from [1, nodes] *)
  skew : float;  (** Zipf exponent over the node ids; [0.] = uniform *)
  delete_ratio : float;  (** probability an update deletes a live edge *)
}

val default : spec
(** 1000 uniform nodes, insert-only. *)

type t

val create : ?seed:int -> ?rng:Random.State.t -> spec -> t
(** Seeding contract: with [~rng] (derive it with [Ivm_check.Seed]) the
    stream is a pure function of that generator and draws from it
    sequentially; otherwise a private state is built from [seed]
    (default 7). The relation, both endpoints and the insert/delete
    decision of every update come from this one stream. *)

val next : t -> edge
(** The next update: an insert of a random edge (endpoints i.i.d.
    uniform or Zipf-[skew]), or with probability [delete_ratio] a delete
    of a currently live edge (rejection-sampled from the live set, so
    multiplicities never go negative — a valid stream in the Sec. 2
    sense). When no live edge can be found, an insert is produced
    instead. *)

val prefill : t -> int -> (edge -> unit) -> unit
(** [prefill t k f] feeds [k] stream updates to [f] — used to build an
    initial database of a target size before measuring. *)
