(** The JOB/IMDB-style PK–FK workload of Ex. 4.13.

    Relations: Title(movie_id), Movie_Companies(movie_id, company_id),
    Company_Name(company_id). movie_id and company_id are primary keys of
    Title and Company_Name and foreign keys in Movie_Companies.

    The generator produces *valid* batches: each batch inserts (or
    deletes) a consistent group — a company, the movies it participates
    in, and the Movie_Companies rows wiring them — and then shuffles the
    batch, so the engine sees out-of-order updates that pass through
    inconsistent intermediate states, exactly the regime in which the
    amortized-constant argument of Ex. 4.13 applies. *)

type op = T_title of int * int | T_companies of int * int * int | T_names of int * int
(* payload last; positive insert, negative delete *)

type t = {
  rng : Random.State.t;
  mutable next_movie : int;
  mutable next_company : int;
  mutable groups : (int * int list) list; (* live (company, movies) groups *)
}

let create ?(seed = 23) () = { rng = Random.State.make [| seed |]; next_movie = 1; next_company = 1; groups = [] }

(* The batch for one (company, movies) group with payload [d]: built
   directly as an array and shuffled in place, so large-fanout batches
   never round-trip through lists. *)
let group_ops rng c movies d : op array =
  let fanout = List.length movies in
  let ops = Array.make ((2 * fanout) + 1) (T_names (c, d)) in
  List.iteri
    (fun i m ->
      ops.((2 * i) + 1) <- T_title (m, d);
      ops.((2 * i) + 2) <- T_companies (m, c, d))
    movies;
  Ivm_data.Update.shuffle_array ~rng ops;
  ops

(** A valid insert batch: a fresh company with [fanout] fresh movies.
    The shuffled order routinely inserts Movie_Companies rows before the
    Title and Company_Name rows they reference. *)
let insert_batch (t : t) ~fanout : op array =
  let c = t.next_company in
  t.next_company <- c + 1;
  let movies = List.init fanout (fun i -> t.next_movie + i) in
  t.next_movie <- t.next_movie + fanout;
  t.groups <- (c, movies) :: t.groups;
  group_ops t.rng c movies 1

(** A valid delete batch: remove a previously inserted group wholesale,
    again in shuffled order (deleting the company key before the rows
    referencing it passes through inconsistent states). *)
let delete_batch (t : t) : op array option =
  match t.groups with
  | [] -> None
  | (c, movies) :: rest ->
      t.groups <- rest;
      Some (group_ops t.rng c movies (-1))
