(** Random CQ workload generators.

    Two distributions share this module:

    - {!generate}/{!measure}: snowflake-shaped join queries with
      key-style FDs, reproducing the Sec. 4.4 observation that FDs turn
      a large fraction of a real workload q-hierarchical. These are
      classification workloads — non-hierarchical as written.
    - {!executable}: q-hierarchical-by-construction queries paired with
      a valid free-top variable order, runnable as written on every
      maintenance engine — the workloads the differential fuzzer
      ([lib/check]) drives through the whole engine matrix.

    Seeding contract: every function takes an explicit [~rng] (derive it
    with [Ivm_check.Seed]); this module never constructs generator state
    itself, so a workload is reproducible from the one integer a fuzz
    failure prints. Draws consume [rng] sequentially — two calls with
    the same state yield different (but deterministic) workloads. *)

module Cq = Ivm_query.Cq
module Fd = Ivm_query.Fd
module Vo = Ivm_query.Variable_order

type generated = { query : Cq.t; fds : Fd.t list }

val generate : rng:Random.State.t -> id:int -> generated
(** One random snowflake: a fact relation with 1–3 dimension branches
    (70% single-branch chains), each branch deepened to length 2 with
    probability 1/2, plus the key FDs of that shape. Chains become
    q-hierarchical under their FDs; multi-branch stars stay amortized
    (Ex. 4.13). *)

type fraction = { total : int; q_hier : int; q_hier_fd : int }

val measure : rng:Random.State.t -> n:int -> unit -> fraction
(** Generate [n] snowflakes and count how many are q-hierarchical as
    written and under their FDs. *)

type exec = { query : Cq.t; order : Vo.forest }

val executable : rng:Random.State.t -> id:int -> exec
(** One random executable workload: 2–6 variables grown into a random
    forest (new roots with probability 1/4), one atom per leaf covering
    its full root path, up to two extra atoms on random sub-paths, and
    an upward-closed free set (each root free with probability 0.9,
    decaying by 0.7 per level, never empty). The returned order is
    always valid for the query and free-top, so [View_tree.build],
    every [Strategy] kind and constant-delay enumeration accept it. *)
