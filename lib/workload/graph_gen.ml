(** Random-graph update streams for the triangle workloads (Sec. 3).

    The three binary relations R(A,B), S(B,C), T(C,A) are populated with
    edges whose endpoints are drawn either uniformly or Zipf-skewed; the
    skewed variant produces the heavy keys that separate the classical
    engines (O(N) updates) from IVM^ε (O(√N)). *)

type edge = { rel : int; (* 0 = R, 1 = S, 2 = T *) src : int; dst : int; mult : int }

type spec = {
  nodes : int;
  skew : float; (* Zipf exponent; 0. = uniform *)
  delete_ratio : float; (* probability an update deletes a live edge *)
}

let default = { nodes = 1000; skew = 0.; delete_ratio = 0. }

type t = {
  spec : spec;
  rng : Random.State.t;
  zipf : Zipf.t option;
  live : ((int * int * int), int) Hashtbl.t; (* (rel,src,dst) -> multiplicity *)
  live_list : (int * int * int) Vec.t option; (* absent: no deletes *)
}

let create ?(seed = 7) ?rng (spec : spec) =
  {
    spec;
    rng = (match rng with Some r -> r | None -> Random.State.make [| seed |]);
    zipf = (if spec.skew > 0. then Some (Zipf.create ~n:spec.nodes ~s:spec.skew) else None);
    live = Hashtbl.create 1024;
    live_list = (if spec.delete_ratio > 0. then Some (Vec.create ()) else None);
  }

let node t =
  match t.zipf with
  | Some z -> Zipf.sample z t.rng
  | None -> 1 + Random.State.int t.rng t.spec.nodes

let insert_random (t : t) : edge =
  let rel = Random.State.int t.rng 3 and src = node t and dst = node t in
  let key = (rel, src, dst) in
  Hashtbl.replace t.live key (1 + Option.value (Hashtbl.find_opt t.live key) ~default:0);
  Option.iter (fun l -> Vec.add l key) t.live_list;
  { rel; src; dst; mult = 1 }

(** Next update in the stream: an insert of a random edge, or (with
    probability [delete_ratio]) a delete of a currently live edge. *)
let next (t : t) : edge =
  let try_delete =
    t.spec.delete_ratio > 0.
    && Random.State.float t.rng 1.0 < t.spec.delete_ratio
    && Hashtbl.length t.live > 0
  in
  if try_delete then begin
    let list = Option.get t.live_list in
    (* Rejection-sample a live edge from the append-only list. *)
    let rec pick tries =
      if tries = 0 || Vec.length list = 0 then None
      else
        let i = Random.State.int t.rng (Vec.length list) in
        let key = Vec.get list i in
        match Hashtbl.find_opt t.live key with
        | Some m when m > 0 -> Some key
        | Some _ | None -> pick (tries - 1)
    in
    match pick 16 with
    | Some ((rel, src, dst) as key) ->
        let m = Hashtbl.find t.live key in
        if m = 1 then Hashtbl.remove t.live key else Hashtbl.replace t.live key (m - 1);
        { rel; src; dst; mult = -1 }
    | None -> insert_random t
  end
  else insert_random t

(** [prefill t k f] feeds [k] stream updates to [f] — used to build an
    initial database of a target size before measuring. *)
let prefill t k f =
  for _ = 1 to k do
    f (next t)
  done
