(** Single-tuple updates and update batches (Sec. 2): an update carries
    a ring payload — positive for inserts, negative for deletes — so
    batches commute and out-of-order execution is safe. *)

type 'p t = { rel : string; tuple : Tuple.t; payload : 'p }

val make : rel:string -> tuple:Tuple.t -> payload:'p -> 'p t

val insert : one:'p -> rel:string -> Tuple.t -> 'p t
(** An insert with payload [one] (the ring's multiplicative unit). *)

type 'p batch = 'p t list

val shuffle : rng:Random.State.t -> 'p batch -> 'p batch
(** Deterministic permutation; used to exercise out-of-order
    execution. *)

val shuffle_array : rng:Random.State.t -> 'a array -> unit
(** In-place Fisher–Yates; what generators that hold their batch as an
    array use to avoid the list→array→list round-trip of {!shuffle}. *)

val pp : (Format.formatter -> 'p -> unit) -> Format.formatter -> 'p t -> unit
