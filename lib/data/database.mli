(** A database: a named collection of relations over the same ring
    (Sec. 2). The zero-elision invariant of {!Relation} is global here
    — {!S.apply} merges through [Relation.add_entry], so replaying a
    stream of updates whose payloads cancel leaves the database
    extensionally {e and} representationally where it started, which
    is what makes checkpoint-equality checks and crash-recovery
    fingerprint comparisons meaningful. *)

module type S = Database_intf.S

module Make (R : Ivm_ring.Sigs.SEMIRING) : sig
  (** The relation instance this database holds — the {e same}
      applicative instance as [Relation.Make(R)], so relations move
      freely between the two modules. *)
  module Rel : Relation.S with type payload = R.t and type t = Relation.Make(R).t

  include S with type payload = R.t and type rel = Rel.t
end

(** The default instance over integer multiplicities, with type
    equations to [Make(Ivm_ring.Int_ring)] so [Database.Z.t] is
    interchangeable with the checkpoint codec's and the registry's
    view of the same application. *)
module Z : sig
  module Rel :
    Relation.S with type payload = int and type t = Relation.Make(Ivm_ring.Int_ring).t

  include
    S
      with type payload = int
       and type rel = Rel.t
       and type t = Make(Ivm_ring.Int_ring).t
end
