(** The signature of {!Relation.Make}'s result, shared between the
    implementation and the interface of {!Relation}. See that module
    for the zero-elision invariant the operations maintain. *)

module type S = sig
  type payload
  (** One ring element; never zero once stored. *)

  type t

  val create : ?size:int -> Schema.t -> t
  val schema : t -> Schema.t

  val size : t -> int
  (** The number of entries — by zero elision, exactly the tuples with
      non-zero payload. *)

  val get : t -> Tuple.t -> payload
  (** Total: absent tuples read as the ring zero. *)

  val mem : t -> Tuple.t -> bool

  val add_entry : t -> Tuple.t -> payload -> unit
  (** Merge a payload delta into a tuple's entry with the ring add —
      the single-tuple update of the paper (insert for positive,
      delete for negated payloads). A zero delta is a no-op; an entry
      whose merged payload becomes zero is removed. *)

  val set_entry : t -> Tuple.t -> payload -> unit
  (** Overwrite (not merge); setting zero removes the entry. *)

  val clear : t -> unit
  val iter : (Tuple.t -> payload -> unit) -> t -> unit
  val fold : (Tuple.t -> payload -> 'a -> 'a) -> t -> 'a -> 'a
  val to_seq : t -> (Tuple.t * payload) Seq.t

  val of_list : Schema.t -> (Tuple.t * payload) list -> t
  (** Entries are merged with {!add_entry}, so duplicates sum and zero
      sums vanish. *)

  val of_tuples : Schema.t -> Tuple.t list -> t
  (** Each tuple with multiplicity one. *)

  val copy : t -> t

  val equal : t -> t -> bool
  (** Extensional equality over the same (ordered) schema — sound as
      an entry-wise comparison only because neither side stores
      zeros. *)

  val union : t -> t -> t
  (** The paper's [⊎]: payload-wise addition. *)

  val join : t -> t -> t
  (** The paper's [·] over the union schema: output payloads are
      products of the matching input payloads. *)

  val aggregate : ?lift:(Value.t -> payload) -> t -> Schema.var -> t
  (** The paper's [Σ_X]: marginalize one variable, scaling each payload
      by the lifting of the marginalized value (default: counting). *)

  val project_onto : t -> Schema.t -> t
  (** Marginalize everything outside the target schema and reorder to
      it. *)

  val map_payloads : (payload -> payload) -> t -> t
  (** Zero results are dropped, preserving the invariant. *)

  val scalar : t -> payload
  (** The payload at the empty tuple — how scalar aggregates (e.g. the
      triangle count) are read off a relation over the empty schema. *)

  val sum_payloads : t -> payload
  val pp : Format.formatter -> t -> unit

  (** Secondary group index (Sec. 2): for a sub-schema [key] of the
      relation schema, constant-delay enumeration of the tuples
      agreeing on a key projection, maintained incrementally. The
      zero-elision invariant extends to groups: an empty group is
      removed, so [group_count]/[iter_keys] enumerate only keys with
      live tuples. *)
  module Index : sig
    type rel_t := t
    type t

    val create : rel_schema:Schema.t -> key:Schema.t -> t
    (** @raise Invalid_argument when [key] is not a sub-schema. *)

    val key_schema : t -> Schema.t

    val update : t -> Tuple.t -> payload -> unit
    (** Merge a payload delta for one tuple, as {!add_entry}. *)

    val of_relation : key:Schema.t -> rel_t -> t
    val clear : t -> unit
    val group_count : t -> int
    val group_size : t -> Tuple.t -> int
    val iter_group : t -> Tuple.t -> (Tuple.t -> payload -> unit) -> unit
    val seq_group : t -> Tuple.t -> (Tuple.t * payload) Seq.t
    val fold_group : t -> Tuple.t -> (Tuple.t -> payload -> 'a -> 'a) -> 'a -> 'a
    val iter_keys : t -> (Tuple.t -> unit) -> unit
    val seq_keys : t -> Tuple.t Seq.t
    val mem_key : t -> Tuple.t -> bool
  end
end
