(** A database is a named collection of relations over the same ring
    (Sec. 2). Its size is the sum of the sizes of its relations. *)

module type S = Database_intf.S

module Make (R : Ivm_ring.Sigs.SEMIRING) = struct
  module Rel = Relation.Make (R)

  type payload = R.t
  type rel = Rel.t
  type t = (string, Rel.t) Hashtbl.t

  let create () : t = Hashtbl.create 8

  let add_relation (db : t) name rel =
    if Hashtbl.mem db name then invalid_arg ("Database.add_relation: duplicate " ^ name);
    Hashtbl.replace db name rel

  let declare (db : t) name schema =
    let rel = Rel.create schema in
    add_relation db name rel;
    rel

  let find (db : t) name =
    match Hashtbl.find_opt db name with
    | Some rel -> rel
    | None -> invalid_arg ("Database.find: no relation " ^ name)

  let mem (db : t) name = Hashtbl.mem db name
  let relations (db : t) = Hashtbl.fold (fun name rel acc -> (name, rel) :: acc) db []
  let size (db : t) = Hashtbl.fold (fun _ rel acc -> acc + Rel.size rel) db 0

  let apply (db : t) (u : R.t Update.t) = Rel.add_entry (find db u.rel) u.tuple u.payload
  let apply_batch (db : t) batch = List.iter (apply db) batch

  let copy (db : t) : t =
    let db' = create () in
    Hashtbl.iter (fun name rel -> Hashtbl.replace db' name (Rel.copy rel)) db;
    db'
end

module Z = Make (Ivm_ring.Int_ring)
