(** Flat open-addressing hash tables keyed by {!Tuple.t}, the storage
    layer under {!Relation}.

    Layout: three parallel arrays — inline hashes, keys, values — with
    power-of-two capacity and linear probing. A slot's inline hash is
    the tuple's memoized structural hash ([>= 0]); [-1] marks an empty
    slot, so a probe is an int-array scan that only touches the key
    array on an exact hash match. Compared to the chained stdlib
    [Hashtbl] this removes one pointer chase and one allocation (the
    bucket cons) per entry, and a miss usually terminates without ever
    dereferencing a key.

    Collision policy is robin hood: an insert displaces a resident
    whose probe distance is shorter than its own, which bounds the
    variance of probe lengths and keeps lookups fast at high load
    (resize at 7/8). Deletion is tombstone-free backward-shift: the
    probe chain after the vacated slot is compacted one step left until
    a hole or a home-positioned entry, so tables that churn (the
    deletion-heavy epochs of IVM) never degrade into tombstone scans
    and the robin-hood invariant is restored exactly.

    Not thread-safe for concurrent mutation; concurrent read-only
    probes are fine (the single-writer-per-shard discipline of
    [lib/par] and the read-lock sections of the registry). *)

type 'a t = {
  mutable hashes : int array; (* inline memoized hash; -1 = empty slot *)
  mutable keys : Tuple.t array; (* Tuple.unit in empty slots *)
  mutable vals : 'a array; (* [dummy] in empty slots *)
  mutable size : int;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  dummy : 'a; (* fills vacated value slots so no stale pointer survives *)
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 8

let create ?(size = 16) dummy =
  let cap = next_pow2 (max 8 size) in
  {
    hashes = Array.make cap (-1);
    keys = Array.make cap Tuple.unit;
    vals = Array.make cap dummy;
    size = 0;
    mask = cap - 1;
    dummy;
  }

let length t = t.size
let capacity t = t.mask + 1

(* Probe distance of the resident of slot [i]: how far it sits from its
   home slot, in probe order. The robin-hood invariant is that along a
   probe chain these distances never decrease by more than the step. *)
let[@inline] resident_distance t i = (i - t.hashes.(i)) land t.mask

(* Core probe: the slot holding [k], or -1. Misses terminate as soon as
   the chain reaches an empty slot or a resident closer to home than
   the probe is long — the robin-hood early exit. A top-level worker
   (not an inner [let rec]) so the non-flambda compiler emits a plain
   loop instead of allocating a closure per probe. *)
let rec find_slot_loop hashes keys mask k h i d =
  let hi = Array.unsafe_get hashes i in
  if hi < 0 then -1
  else if hi = h && Tuple.equal (Array.unsafe_get keys i) k then i
  else if (i - hi) land mask < d then -1
  else find_slot_loop hashes keys mask k h ((i + 1) land mask) (d + 1)

let find_slot t k h = find_slot_loop t.hashes t.keys t.mask k h (h land t.mask) 0

let mem t k = find_slot t k (Tuple.hash k) >= 0

let find_opt t k =
  match find_slot t k (Tuple.hash k) with -1 -> None | i -> Some t.vals.(i)

(** [find_default t k d] is the stored value or [d] — the allocation-free
    probe ([find_opt] boxes its [Some]). With [d] = the ring zero and
    the zero-elision invariant, the default unambiguously means
    "absent". *)
let find_default t k d =
  match find_slot t k (Tuple.hash k) with -1 -> d | i -> t.vals.(i)

(* Insert [h,k,v] starting the probe at [i] with distance [d], robin
   hood displacement on the way: a resident closer to home than the
   carried entry swaps out and the insert continues with the evicted
   one. Replaces on key equality (only possible for the originally
   carried key — evicted residents are distinct from every stored key). *)
let rec insert_from t i d h k v =
  let hi = t.hashes.(i) in
  if hi < 0 then begin
    t.hashes.(i) <- h;
    t.keys.(i) <- k;
    t.vals.(i) <- v;
    t.size <- t.size + 1
  end
  else if hi = h && Tuple.equal t.keys.(i) k then t.vals.(i) <- v
  else
    let di = resident_distance t i in
    if di < d then begin
      let h' = hi and k' = t.keys.(i) and v' = t.vals.(i) in
      t.hashes.(i) <- h;
      t.keys.(i) <- k;
      t.vals.(i) <- v;
      insert_from t ((i + 1) land t.mask) (di + 1) h' k' v'
    end
    else insert_from t ((i + 1) land t.mask) (d + 1) h k v

let grow t =
  let old_hashes = t.hashes and old_keys = t.keys and old_vals = t.vals in
  let cap = 2 * (t.mask + 1) in
  t.hashes <- Array.make cap (-1);
  t.keys <- Array.make cap Tuple.unit;
  t.vals <- Array.make cap t.dummy;
  t.mask <- cap - 1;
  t.size <- 0;
  Array.iteri
    (fun i h ->
      if h >= 0 then insert_from t (h land t.mask) 0 h old_keys.(i) old_vals.(i))
    old_hashes

let set t k v =
  if Tuple.is_scratch k then
    invalid_arg "Flat_tbl.set: scratch tuples must not be stored as table keys";
  (* Resize at 7/8 load: robin hood keeps probe chains short well past
     the 1/2 the chained table would want, halving resident memory. *)
  if 8 * (t.size + 1) > 7 * (t.mask + 1) then grow t;
  let h = Tuple.hash k in
  insert_from t (h land t.mask) 0 h k v

(* Backward shift: pull every displaced successor one slot left until
   the chain ends at a hole or an at-home resident. Top-level for the
   same no-closure reason as [find_slot_loop]. *)
let rec shift_back t i =
  let j = (i + 1) land t.mask in
  let hj = t.hashes.(j) in
  if hj < 0 || (j - hj) land t.mask = 0 then begin
    t.hashes.(i) <- -1;
    t.keys.(i) <- Tuple.unit;
    t.vals.(i) <- t.dummy
  end
  else begin
    t.hashes.(i) <- hj;
    t.keys.(i) <- t.keys.(j);
    t.vals.(i) <- t.vals.(j);
    shift_back t j
  end

let remove t k =
  match find_slot t k (Tuple.hash k) with
  | -1 -> ()
  | i ->
      t.size <- t.size - 1;
      shift_back t i

(** Drop every entry but keep the arrays: the capacity-preserving reset
    that lets per-epoch accumulators reuse their buffers. *)
let clear t =
  Array.fill t.hashes 0 (t.mask + 1) (-1);
  Array.fill t.keys 0 (t.mask + 1) Tuple.unit;
  Array.fill t.vals 0 (t.mask + 1) t.dummy;
  t.size <- 0

let iter f t =
  let hashes = t.hashes and keys = t.keys and vals = t.vals in
  for i = 0 to Array.length hashes - 1 do
    if Array.unsafe_get hashes i >= 0 then
      f (Array.unsafe_get keys i) (Array.unsafe_get vals i)
  done

let fold f t acc =
  let hashes = t.hashes and keys = t.keys and vals = t.vals in
  let acc = ref acc in
  for i = 0 to Array.length hashes - 1 do
    if Array.unsafe_get hashes i >= 0 then
      acc := f (Array.unsafe_get keys i) (Array.unsafe_get vals i) !acc
  done;
  !acc

(* The seq walks the arrays captured at creation time: mutation during
   enumeration is unspecified (as for stdlib [Hashtbl]) but can never
   read out of bounds — a resize swaps in fresh arrays, it does not
   shrink the captured ones. *)
let to_seq t =
  let hashes = t.hashes and keys = t.keys and vals = t.vals in
  let n = Array.length hashes in
  let rec go i () =
    if i >= n then Seq.Nil
    else if hashes.(i) >= 0 then Seq.Cons ((keys.(i), vals.(i)), go (i + 1))
    else go (i + 1) ()
  in
  go 0

let copy t =
  {
    hashes = Array.copy t.hashes;
    keys = Array.copy t.keys;
    vals = Array.copy t.vals;
    size = t.size;
    mask = t.mask;
    dummy = t.dummy;
  }

(* Mean probe distance over residents — the robin-hood health metric
   surfaced by the storage microbench. *)
let mean_probe_distance t =
  if t.size = 0 then 0.
  else
    let sum = ref 0 in
    for i = 0 to t.mask do
      if t.hashes.(i) >= 0 then sum := !sum + resident_distance t i
    done;
    float_of_int !sum /. float_of_int t.size
