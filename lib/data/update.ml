(** Single-tuple updates and update batches (Sec. 2).

    An update is a tuple together with a ring payload: positive payloads
    are inserts, negative payloads deletes. Because payloads live in a
    ring, a batch of updates can be executed in any order with the same
    cumulative effect — the commutativity the paper highlights for
    asynchronous and out-of-order execution. *)

type 'p t = { rel : string; tuple : Tuple.t; payload : 'p }

let make ~rel ~tuple ~payload = { rel; tuple; payload }
let insert ~one ~rel tuple = { rel; tuple; payload = one }

type 'p batch = 'p t list

(* In-place Fisher–Yates; the workload generators shuffle batches they
   already hold as arrays, without a list round-trip. *)
let shuffle_array ~rng (a : 'a array) : unit =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* Deterministic shuffle, used to exercise out-of-order execution. *)
let shuffle ~rng (batch : 'p batch) : 'p batch =
  let a = Array.of_list batch in
  shuffle_array ~rng a;
  Array.to_list a

let pp pp_payload ppf u =
  Format.fprintf ppf "%s%a -> %a" u.rel Tuple.pp u.tuple pp_payload u.payload
