(** Binary encoding of values, tuples and updates, for the durable
    update log and checkpoints of [lib/stream].

    The encoding is little-endian and self-delimiting: every reader
    consumes exactly what the matching writer produced, so records can
    be concatenated. Integrity is the caller's concern — the framing
    layers (WAL records, checkpoint files) wrap encoded bodies in a
    length + CRC-32 envelope and call {!Corrupt}-raising readers only on
    bodies whose checksum already passed. *)

exception Corrupt of string
(** Raised by readers on a short or malformed buffer. The streaming
    layers translate this into "stop at the torn tail" (WAL replay) or a
    hard failure (checkpoint load). *)

let corrupt what = raise (Corrupt what)

(* --- CRC-32 (IEEE 802.3, the zlib polynomial) ----------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

(** [crc32 s ~pos ~len] is the CRC-32 of the given substring, as a
    non-negative int (32 bits). *)
let crc32 (s : string) ~pos ~len : int =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl) in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.to_int (Int32.logxor !c 0xFFFFFFFFl) land 0xFFFFFFFF

(* --- primitive writers ---------------------------------------------- *)

let add_u8 b i = Buffer.add_char b (Char.chr (i land 0xFF))

let add_u16 b i =
  add_u8 b i;
  add_u8 b (i lsr 8)

let add_u32 b i =
  add_u16 b i;
  add_u16 b (i lsr 16)

let add_i64 b i = Buffer.add_int64_le b (Int64.of_int i)
let add_f64 b f = Buffer.add_int64_le b (Int64.bits_of_float f)

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

(* --- primitive readers ----------------------------------------------- *)

let need s pos n = if !pos + n > String.length s then corrupt "short read"

let u8 s pos =
  need s pos 1;
  let v = Char.code s.[!pos] in
  incr pos;
  v

let u16 s pos =
  let lo = u8 s pos in
  lo lor (u8 s pos lsl 8)

let u32 s pos =
  let lo = u16 s pos in
  lo lor (u16 s pos lsl 16)

let i64 s pos =
  need s pos 8;
  let v = Int64.to_int (String.get_int64_le s !pos) in
  pos := !pos + 8;
  v

let f64 s pos =
  need s pos 8;
  let v = Int64.float_of_bits (String.get_int64_le s !pos) in
  pos := !pos + 8;
  v

let str s pos =
  let n = u32 s pos in
  need s pos n;
  let v = String.sub s !pos n in
  pos := !pos + n;
  v

(* --- values, tuples, updates ----------------------------------------- *)

let add_value b = function
  | Value.Int i ->
      add_u8 b 0;
      add_i64 b i
  | Value.Str s ->
      add_u8 b 1;
      add_str b s
  | Value.Real f ->
      add_u8 b 2;
      add_f64 b f

let value s pos =
  match u8 s pos with
  | 0 -> Value.Int (i64 s pos)
  | 1 -> Value.Str (str s pos)
  | 2 -> Value.Real (f64 s pos)
  | t -> corrupt (Printf.sprintf "unknown value tag %d" t)

let add_tuple b t =
  add_u16 b (Tuple.arity t);
  List.iter (add_value b) (Tuple.to_list t)

let tuple s pos =
  let n = u16 s pos in
  Tuple.of_list (List.init n (fun _ -> value s pos))

(** A payload codec: how to write and read one ring element. The
    streaming layers are functorized over this, so any ring with a
    binary form (Z, floats, products of those, ...) gets a durable log
    and checkpoints for free. *)
module type PAYLOAD = sig
  type t

  val write : Buffer.t -> t -> unit
  val read : string -> int ref -> t
end

module Int_payload = struct
  type t = int

  let write = add_i64
  let read = i64
end

module Float_payload = struct
  type t = float

  let write = add_f64
  let read = f64
end

let add_update (type p) (module P : PAYLOAD with type t = p) b (u : p Update.t) =
  add_str b u.Update.rel;
  add_tuple b u.Update.tuple;
  P.write b u.Update.payload

let update (type p) (module P : PAYLOAD with type t = p) s pos : p Update.t =
  (* The decode failpoint: lets a chaos harness poison the decode path
     itself (a record whose bytes pass the CRC but fail to parse), which
     the framing layers must translate into a clean Corrupt error. One
     bool read when fault injection is disabled. *)
  (match Ivm_fault.Failpoint.hit "codec.decode" with
  | Some _ -> corrupt "injected decode fault"
  | None -> ());
  let rel = str s pos in
  let t = tuple s pos in
  let payload = P.read s pos in
  Update.make ~rel ~tuple:t ~payload
