(** The signature of {!Database.Make}'s result (minus the [Rel]
    submodule), shared between the implementation and the interface of
    {!Database}. *)

module type S = sig
  type payload
  type rel
  type t

  val create : unit -> t

  val add_relation : t -> string -> rel -> unit
  (** @raise Invalid_argument on a duplicate name. *)

  val declare : t -> string -> Schema.t -> rel
  (** Create an empty relation, register it, return it.
      @raise Invalid_argument on a duplicate name. *)

  val find : t -> string -> rel
  (** @raise Invalid_argument when absent. *)

  val mem : t -> string -> bool
  val relations : t -> (string * rel) list

  val size : t -> int
  (** Sum of the relation sizes — by zero elision, the number of live
      entries across the database. *)

  val apply : t -> payload Update.t -> unit
  (** One single-tuple update, routed to its relation; a zero payload
      or a cancelling merge leaves no trace. *)

  val apply_batch : t -> payload Update.t list -> unit

  val copy : t -> t
  (** Deep copy: relations are copied, not shared. *)
end
