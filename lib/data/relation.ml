(** Relations over a ring (Sec. 2): finite maps from tuples over a
    schema to non-zero ring payloads, implemented on {!Flat_tbl} — flat
    open-addressing robin-hood tables with the tuples' memoized hashes
    stored inline — with amortized constant-time lookup, insert and
    delete, and constant-delay enumeration of entries.

    The functor is over {!Ivm_ring.Sigs.SEMIRING}: the relation structure
    itself never needs additive inverses — a delete is an update whose
    payload the caller has already negated (possible whenever the payload
    domain is a ring). The ring zero doubles as the table's empty-slot
    dummy: by zero elision a stored payload is never zero, so the
    allocation-free {!Flat_tbl.find_default} with default zero reads
    "absent" without boxing an option. *)

module type S = Relation_intf.S

module Make (R : Ivm_ring.Sigs.SEMIRING) = struct
  type payload = R.t
  type t = { schema : Schema.t; data : payload Flat_tbl.t }

  let create ?(size = 16) schema = { schema; data = Flat_tbl.create ~size R.zero }
  let schema r = r.schema
  let size r = Flat_tbl.length r.data
  let get r t = Flat_tbl.find_default r.data t R.zero
  let mem r t = Flat_tbl.mem r.data t

  (* [add_entry r t p] merges payload [p] into the entry for [t],
     evicting the entry if the merged payload is zero. This is the
     single-tuple update of the paper: insert for positive [p], delete
     for negative [p]. The probe reads through [find_default]: zero
     elision makes a zero read mean "absent", so the hot path allocates
     nothing. *)
  let add_entry r t p =
    if not (R.is_zero p) then begin
      let q = Flat_tbl.find_default r.data t R.zero in
      if R.is_zero q then Flat_tbl.set r.data t p
      else
        let s = R.add q p in
        if R.is_zero s then Flat_tbl.remove r.data t else Flat_tbl.set r.data t s
    end

  let set_entry r t p =
    if R.is_zero p then Flat_tbl.remove r.data t else Flat_tbl.set r.data t p

  let clear r = Flat_tbl.clear r.data
  let iter f r = Flat_tbl.iter f r.data
  let fold f r acc = Flat_tbl.fold f r.data acc
  let to_seq r = Flat_tbl.to_seq r.data

  let of_list schema entries =
    let r = create ~size:(2 * List.length entries + 1) schema in
    List.iter (fun (t, p) -> add_entry r t p) entries;
    r

  let of_tuples schema tuples = of_list schema (List.map (fun t -> (t, R.one)) tuples)
  let copy r = { schema = r.schema; data = Flat_tbl.copy r.data }

  (* Extensional equality: same schema as sets is not required, only same
     variable order, since tuples are positional. The size guard is the
     cheap short-circuit (it also makes the one-sided scan sound: equal
     supports + equal payloads on [a]'s support = equal maps); the
     traversal stops at the first mismatch (exception-based: the table
     has no short-circuiting fold). *)
  let equal a b =
    a.schema = b.schema && size a = size b
    &&
    match
      Flat_tbl.iter (fun t p -> if not (R.equal (get b t) p) then raise_notrace Exit) a.data
    with
    | () -> true
    | exception Exit -> false

  (** [union a b] is the paper's [⊎]: payload-wise addition. *)
  let union a b =
    let r = copy a in
    iter (fun t p -> add_entry r t p) b;
    r

  (** [join a b] is the paper's [·] over the union schema: the payload of
      an output tuple is the product of the payloads of its projections.
      Implemented by hashing [b] on the shared variables into an
      arena-chained index: entries live in three parallel growable
      arrays and groups are singly linked through an [next] int array,
      so building the index allocates no per-entry chain cells and
      probing a group is an int-indexed walk. *)
  let join a b =
    let shared = Schema.inter a.schema b.schema in
    let out_schema = Schema.union a.schema b.schema in
    let a_shared = Schema.projection a.schema shared in
    let b_shared = Schema.projection b.schema shared in
    let b_rest_schema = Schema.diff b.schema a.schema in
    let b_rest = Schema.projection b.schema b_rest_schema in
    (* Arena: entry [e] is (rest tuple, payload, index of next entry in
       its group, or -1). [heads] maps a shared-key projection to its
       group's first entry. Pre-sized to [b] so the build never grows. *)
    let n = max 16 (size b) in
    let ent_rest = ref (Array.make n Tuple.unit) in
    let ent_pay = ref (Array.make n R.zero) in
    let ent_next = ref (Array.make n (-1)) in
    let count = ref 0 in
    let heads : int Flat_tbl.t = Flat_tbl.create ~size:n (-1) in
    iter
      (fun t p ->
        let e = !count in
        if e = Array.length !ent_rest then begin
          let grow ar fill =
            let ar' = Array.make (2 * e) fill in
            Array.blit !ar 0 ar' 0 e;
            ar := ar'
          in
          grow ent_rest Tuple.unit;
          grow ent_pay R.zero;
          grow ent_next (-1)
        end;
        let k = Tuple.project t b_shared in
        !ent_rest.(e) <- Tuple.project t b_rest;
        !ent_pay.(e) <- p;
        !ent_next.(e) <- Flat_tbl.find_default heads k (-1);
        Flat_tbl.set heads k e;
        incr count)
      b;
    let ent_rest = !ent_rest and ent_pay = !ent_pay and ent_next = !ent_next in
    let out = create ~size:(size a) out_schema in
    iter
      (fun t p ->
        let k = Tuple.project t a_shared in
        let e = ref (Flat_tbl.find_default heads k (-1)) in
        while !e >= 0 do
          add_entry out (Tuple.append t ent_rest.(!e)) (R.mul p ent_pay.(!e));
          e := ent_next.(!e)
        done)
      a;
    out

  (** [aggregate ?lift r x] is the paper's [Σ_X]: marginalizes variable
      [x], multiplying each payload by the lifting [g_X] of the
      marginalized value (default: the constant [one], i.e. counting). *)
  let aggregate ?(lift = fun (_ : Value.t) -> R.one) r x =
    let out_schema = Schema.diff r.schema (Schema.of_list [ x ]) in
    let keep = Schema.projection r.schema out_schema in
    let xpos = Schema.position r.schema x in
    let out = create ~size:(size r) out_schema in
    iter (fun t p -> add_entry out (Tuple.project t keep) (R.mul p (lift (Tuple.get t xpos)))) r;
    out

  (** [project_onto r s] marginalizes all variables of [r] not in [s]
      (with trivial lifting), reordering the result to schema [s]. *)
  let project_onto r s =
    let keep = Schema.projection r.schema s in
    let out = create ~size:(size r) s in
    iter (fun t p -> add_entry out (Tuple.project t keep) p) r;
    out

  (** [map_payloads f r] applies [f] to every payload (zero results are
      dropped). *)
  let map_payloads f r =
    let out = create ~size:(size r) r.schema in
    iter (fun t p -> add_entry out t (f p)) r;
    out

  (* The total payload of a relation over the empty schema; used to read
     off scalar aggregates such as the triangle count. *)
  let scalar r = get r Tuple.unit

  let sum_payloads r = fold (fun _ p acc -> R.add acc p) r R.zero

  let pp ppf r =
    let entries = fold (fun t p acc -> (t, p) :: acc) r [] in
    let entries = List.sort (fun (a, _) (b, _) -> Tuple.compare a b) entries in
    Format.fprintf ppf "@[<v>%a %d entries@,%a@]" Schema.pp r.schema (size r)
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (t, p) ->
           Format.fprintf ppf "%a -> %a" Tuple.pp t R.pp p))
      entries

  (** Secondary group index (Sec. 2): for a sub-schema [key] of the
      relation schema, enumerate with constant delay all tuples that
      agree on a given key projection, with amortized constant-time
      entry insertion and deletion. Both levels are flat tables: the
      outer maps key projections to per-group tables, the inner holds
      the group's full tuples with their payloads. *)
  module Index = struct
    type nonrec t = {
      rel_schema : Schema.t;
      key : Schema.t;
      proj : int array;
      groups : payload Flat_tbl.t Flat_tbl.t;
      empty : payload Flat_tbl.t;
          (* shared read-only dummy for vacated outer slots *)
      probe : Tuple.t;
          (* owned scratch key for [update]'s group lookup: mutation is
             single-writer by the table's contract, so one buffer per
             index suffices and the hot existing-group path allocates
             no projection *)
    }

    let create ~rel_schema ~key =
      if not (Schema.subset key rel_schema) then invalid_arg "Index.create: key not in schema";
      let empty = Flat_tbl.create ~size:0 R.zero in
      let proj = Schema.projection rel_schema key in
      {
        rel_schema;
        key;
        proj;
        groups = Flat_tbl.create ~size:64 empty;
        empty;
        probe = Tuple.scratch (Array.length proj);
      }

    let key_schema ix = ix.key

    (* [update ix t p] merges delta payload [p] for tuple [t]. The
       outer probe fills the owned scratch key and reads through the
       shared [empty] dummy: since a stored group is never empty (it is
       removed with its last entry), physical equality with [empty]
       means "no group yet" — only that cold path pays a real
       projection, because the scratch buffer must never be stored. *)
    let update ix t p =
      if not (R.is_zero p) then begin
        let k = ix.probe in
        Array.iteri (fun i s -> Tuple.set k i (Tuple.get t s)) ix.proj;
        let group =
          let g = Flat_tbl.find_default ix.groups k ix.empty in
          if g != ix.empty then g
          else begin
            let g = Flat_tbl.create ~size:8 R.zero in
            Flat_tbl.set ix.groups (Tuple.project t ix.proj) g;
            g
          end
        in
        let q = Flat_tbl.find_default group t R.zero in
        if R.is_zero q then Flat_tbl.set group t p
        else begin
          let s = R.add q p in
          if R.is_zero s then begin
            Flat_tbl.remove group t;
            if Flat_tbl.length group = 0 then Flat_tbl.remove ix.groups k
          end
          else Flat_tbl.set group t s
        end
      end

    let of_relation ~key r =
      let ix = create ~rel_schema:r.schema ~key in
      iter (fun t p -> update ix t p) r;
      ix

    let clear ix = Flat_tbl.clear ix.groups
    let group_count ix = Flat_tbl.length ix.groups

    let group_size ix k =
      match Flat_tbl.find_opt ix.groups k with None -> 0 | Some g -> Flat_tbl.length g

    let iter_group ix k f =
      match Flat_tbl.find_opt ix.groups k with
      | None -> ()
      | Some g -> Flat_tbl.iter f g

    let seq_group ix k =
      match Flat_tbl.find_opt ix.groups k with
      | None -> Seq.empty
      | Some g -> Flat_tbl.to_seq g

    let fold_group ix k f acc =
      match Flat_tbl.find_opt ix.groups k with
      | None -> acc
      | Some g -> Flat_tbl.fold f g acc

    let iter_keys ix f = Flat_tbl.iter (fun k _ -> f k) ix.groups
    let seq_keys ix = Seq.map fst (Flat_tbl.to_seq ix.groups)
    let mem_key ix k = Flat_tbl.mem ix.groups k
  end
end

(** Relations over the default ring of integer multiplicities. *)
module Z = Make (Ivm_ring.Int_ring)
