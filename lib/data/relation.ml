(** Relations over a ring (Sec. 2): finite maps from tuples over a schema
    to non-zero ring payloads, implemented as hash maps with amortized
    constant-time lookup, insert and delete, and constant-delay
    enumeration of entries.

    The functor is over {!Ivm_ring.Sigs.SEMIRING}: the relation structure
    itself never needs additive inverses — a delete is an update whose
    payload the caller has already negated (possible whenever the payload
    domain is a ring). *)

module type S = Relation_intf.S

module Make (R : Ivm_ring.Sigs.SEMIRING) = struct
  type payload = R.t
  type t = { schema : Schema.t; data : payload Tuple.Tbl.t }

  let create ?(size = 16) schema = { schema; data = Tuple.Tbl.create size }
  let schema r = r.schema
  let size r = Tuple.Tbl.length r.data

  let get r t = match Tuple.Tbl.find_opt r.data t with Some p -> p | None -> R.zero
  let mem r t = Tuple.Tbl.mem r.data t

  (* [add_entry r t p] merges payload [p] into the entry for [t],
     evicting the entry if the merged payload is zero. This is the
     single-tuple update of the paper: insert for positive [p], delete
     for negative [p]. *)
  let add_entry r t p =
    if not (R.is_zero p) then
      match Tuple.Tbl.find_opt r.data t with
      | None -> Tuple.Tbl.replace r.data t p
      | Some q ->
          let s = R.add q p in
          if R.is_zero s then Tuple.Tbl.remove r.data t else Tuple.Tbl.replace r.data t s

  let set_entry r t p =
    if R.is_zero p then Tuple.Tbl.remove r.data t else Tuple.Tbl.replace r.data t p

  let clear r = Tuple.Tbl.reset r.data
  let iter f r = Tuple.Tbl.iter f r.data
  let fold f r acc = Tuple.Tbl.fold f r.data acc
  let to_seq r = Tuple.Tbl.to_seq r.data

  let of_list schema entries =
    let r = create ~size:(2 * List.length entries + 1) schema in
    List.iter (fun (t, p) -> add_entry r t p) entries;
    r

  let of_tuples schema tuples = of_list schema (List.map (fun t -> (t, R.one)) tuples)
  let copy r = { schema = r.schema; data = Tuple.Tbl.copy r.data }

  (* Extensional equality: same schema as sets is not required, only same
     variable order, since tuples are positional. The traversal stops at
     the first mismatch (exception-based: [Tuple.Tbl] has no
     short-circuiting fold). *)
  let equal a b =
    a.schema = b.schema && size a = size b
    &&
    match Tuple.Tbl.iter (fun t p -> if not (R.equal (get b t) p) then raise_notrace Exit) a.data with
    | () -> true
    | exception Exit -> false

  (** [union a b] is the paper's [⊎]: payload-wise addition. *)
  let union a b =
    let r = copy a in
    iter (fun t p -> add_entry r t p) b;
    r

  (** [join a b] is the paper's [·] over the union schema: the payload of
      an output tuple is the product of the payloads of its projections.
      Implemented by hashing [b] on the shared variables. *)
  let join a b =
    let shared = Schema.inter a.schema b.schema in
    let out_schema = Schema.union a.schema b.schema in
    let a_shared = Schema.projection a.schema shared in
    let b_shared = Schema.projection b.schema shared in
    let b_rest_schema = Schema.diff b.schema a.schema in
    let b_rest = Schema.projection b.schema b_rest_schema in
    (* The index is pre-sized to [b] (no rehash growth while building)
       and buckets are mutable cells, so extending a group costs one
       probe instead of a find-then-replace pair. *)
    let index : (Tuple.t * payload) list ref Tuple.Tbl.t =
      Tuple.Tbl.create (max 16 (size b))
    in
    iter
      (fun t p ->
        let k = Tuple.project t b_shared in
        let entry = (Tuple.project t b_rest, p) in
        match Tuple.Tbl.find_opt index k with
        | Some bucket -> bucket := entry :: !bucket
        | None -> Tuple.Tbl.add index k (ref [ entry ]))
      b;
    let out = create ~size:(size a) out_schema in
    iter
      (fun t p ->
        let k = Tuple.project t a_shared in
        match Tuple.Tbl.find_opt index k with
        | None -> ()
        | Some matches ->
            List.iter
              (fun (rest, q) -> add_entry out (Tuple.append t rest) (R.mul p q))
              !matches)
      a;
    out

  (** [aggregate ?lift r x] is the paper's [Σ_X]: marginalizes variable
      [x], multiplying each payload by the lifting [g_X] of the
      marginalized value (default: the constant [one], i.e. counting). *)
  let aggregate ?(lift = fun (_ : Value.t) -> R.one) r x =
    let out_schema = Schema.diff r.schema (Schema.of_list [ x ]) in
    let keep = Schema.projection r.schema out_schema in
    let xpos = Schema.position r.schema x in
    let out = create ~size:(size r) out_schema in
    iter (fun t p -> add_entry out (Tuple.project t keep) (R.mul p (lift (Tuple.get t xpos)))) r;
    out

  (** [project_onto r s] marginalizes all variables of [r] not in [s]
      (with trivial lifting), reordering the result to schema [s]. *)
  let project_onto r s =
    let keep = Schema.projection r.schema s in
    let out = create ~size:(size r) s in
    iter (fun t p -> add_entry out (Tuple.project t keep) p) r;
    out

  (** [map_payloads f r] applies [f] to every payload (zero results are
      dropped). *)
  let map_payloads f r =
    let out = create ~size:(size r) r.schema in
    iter (fun t p -> add_entry out t (f p)) r;
    out

  (* The total payload of a relation over the empty schema; used to read
     off scalar aggregates such as the triangle count. *)
  let scalar r = get r Tuple.unit

  let sum_payloads r = fold (fun _ p acc -> R.add acc p) r R.zero

  let pp ppf r =
    let entries = fold (fun t p acc -> (t, p) :: acc) r [] in
    let entries = List.sort (fun (a, _) (b, _) -> Tuple.compare a b) entries in
    Format.fprintf ppf "@[<v>%a %d entries@,%a@]" Schema.pp r.schema (size r)
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (t, p) ->
           Format.fprintf ppf "%a -> %a" Tuple.pp t R.pp p))
      entries

  (** Secondary group index (Sec. 2): for a sub-schema [key] of the
      relation schema, enumerate with constant delay all tuples that
      agree on a given key projection, with amortized constant-time
      entry insertion and deletion. *)
  module Index = struct
    type nonrec t = {
      rel_schema : Schema.t;
      key : Schema.t;
      proj : int array;
      groups : payload Tuple.Tbl.t Tuple.Tbl.t;
    }

    let create ~rel_schema ~key =
      if not (Schema.subset key rel_schema) then invalid_arg "Index.create: key not in schema";
      { rel_schema; key; proj = Schema.projection rel_schema key; groups = Tuple.Tbl.create 64 }

    let key_schema ix = ix.key

    (* [update ix t p] merges delta payload [p] for tuple [t]. *)
    let update ix t p =
      if not (R.is_zero p) then begin
        let k = Tuple.project t ix.proj in
        let group =
          match Tuple.Tbl.find_opt ix.groups k with
          | Some g -> g
          | None ->
              let g = Tuple.Tbl.create 4 in
              Tuple.Tbl.replace ix.groups k g;
              g
        in
        (match Tuple.Tbl.find_opt group t with
        | None -> Tuple.Tbl.replace group t p
        | Some q ->
            let s = R.add q p in
            if R.is_zero s then Tuple.Tbl.remove group t else Tuple.Tbl.replace group t s);
        if Tuple.Tbl.length group = 0 then Tuple.Tbl.remove ix.groups k
      end

    let of_relation ~key r =
      let ix = create ~rel_schema:r.schema ~key in
      iter (fun t p -> update ix t p) r;
      ix

    let clear ix = Tuple.Tbl.reset ix.groups
    let group_count ix = Tuple.Tbl.length ix.groups

    let group_size ix k =
      match Tuple.Tbl.find_opt ix.groups k with None -> 0 | Some g -> Tuple.Tbl.length g

    let iter_group ix k f =
      match Tuple.Tbl.find_opt ix.groups k with
      | None -> ()
      | Some g -> Tuple.Tbl.iter f g

    let seq_group ix k =
      match Tuple.Tbl.find_opt ix.groups k with
      | None -> Seq.empty
      | Some g -> Tuple.Tbl.to_seq g

    let fold_group ix k f acc =
      match Tuple.Tbl.find_opt ix.groups k with
      | None -> acc
      | Some g -> Tuple.Tbl.fold f g acc

    let iter_keys ix f = Tuple.Tbl.iter (fun k _ -> f k) ix.groups
    let seq_keys ix = Seq.map fst (Tuple.Tbl.to_seq ix.groups)
    let mem_key ix k = Tuple.Tbl.mem ix.groups k
  end
end

(** Relations over the default ring of integer multiplicities. *)
module Z = Make (Ivm_ring.Int_ring)
