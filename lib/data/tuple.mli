(** Tuples: immutable arrays of values, positionally aligned with a
    {!Schema}, carrying a memoized structural hash so hash-table probes
    and resizes do not re-traverse the value array. The empty tuple is
    the tuple over the empty schema — the key of fully aggregated
    (scalar) views. *)

type t

val unit : t
(** The empty tuple [()]. *)

val of_list : Value.t list -> t
val to_list : t -> Value.t list

val of_ints : int list -> t
(** Convenience: a tuple of integer values. *)

val init : int -> (int -> Value.t) -> t
(** [init n f] is the tuple [(f 0, ..., f (n-1))]. *)

val arity : t -> int
val get : t -> int -> Value.t
val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Structural hash, computed on first use and cached. Safe to read
    from several domains: racing computations store the same value. *)

val project : t -> int array -> t
(** [project t idxs] picks the fields of [t] at positions [idxs]; used
    with {!Schema.projection}. *)

val append : t -> t -> t

val scratch : int -> t
(** A mutable probe buffer of arity [n] (fields initialised to [Int 0]).
    Fill it with {!set} and use it as a lookup key; reusing one buffer
    across probes keeps hot enumeration loops allocation-free. A scratch
    tuple must not be stored as a hash-table key while it may still be
    mutated. *)

val set : t -> int -> Value.t -> unit
(** [set t i v] overwrites field [i] (invalidating the cached hash).
    Only meaningful on {!scratch} buffers. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Hash tables keyed by tuples. *)
module Tbl : Hashtbl.S with type key = t
