(** Tuples: immutable arrays of values, positionally aligned with a
    {!Schema}, carrying a memoized structural hash so hash-table probes
    and resizes do not re-traverse the value array. The empty tuple is
    the tuple over the empty schema — the key of fully aggregated
    (scalar) views. *)

type t

val unit : t
(** The empty tuple [()]. *)

val of_list : Value.t list -> t
val to_list : t -> Value.t list

val of_ints : int list -> t
(** Convenience: a tuple of integer values. *)

val init : int -> (int -> Value.t) -> t
(** [init n f] is the tuple [(f 0, ..., f (n-1))]. *)

val arity : t -> int
val get : t -> int -> Value.t
val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Structural hash, computed on first use and cached. Safe to read
    from several domains: racing computations store the same value. *)

val project : t -> int array -> t
(** [project t idxs] picks the fields of [t] at positions [idxs]; used
    with {!Schema.projection}. *)

val append : t -> t -> t

val scratch : int -> t
(** A mutable probe buffer of arity [n] (fields initialised to [Int 0]).
    Fill it with {!set} and use it as a lookup key; reusing one buffer
    across probes keeps hot enumeration loops allocation-free.

    {b Invariant}: a scratch tuple must {e never} be stored as a
    hash-table key — it keeps mutating after the store, which would
    leave the entry unreachable under its stale inline hash and corrupt
    the table. The storage layer enforces this: {!Flat_tbl.set} (and so
    {!Relation.S.add_entry}/{!Relation.S.set_entry} and the group
    indexes) raises [Invalid_argument] on a key for which {!is_scratch}
    is true. Probing ([get]/[mem]/index lookups) is always fine, and
    {!project}/{!append} return fresh immutable tuples that are safe to
    store. *)

val is_scratch : t -> bool
(** Whether this tuple is a mutable {!scratch} buffer. One field read;
    checked by {!Flat_tbl} on every store. *)

val set : t -> int -> Value.t -> unit
(** [set t i v] overwrites field [i] (invalidating the cached hash).
    Only meaningful on {!scratch} buffers. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Hash tables keyed by tuples. *)
module Tbl : Hashtbl.S with type key = t
