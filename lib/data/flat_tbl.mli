(** Flat open-addressing hash tables keyed by {!Tuple.t} — the storage
    layer under {!Relation} and the scheduler's coalescing buffers.

    Three parallel arrays (inline memoized hashes, keys, values) with
    power-of-two capacity, robin-hood linear probing, and tombstone-free
    backward-shift deletion. Probes scan the int hash array and touch a
    key only on an exact hash match; inserts allocate nothing beyond
    the amortized array doubling. See [flat_tbl.ml] for the invariants.

    Not thread-safe for concurrent mutation; concurrent read-only
    probes of a quiescent table are safe. *)

type 'a t

val create : ?size:int -> 'a -> 'a t
(** [create ?size dummy] is an empty table with capacity for at least
    [size] entries. [dummy] fills empty value slots (typically the ring
    zero) so vacated entries keep no value alive; it is also what
    {!find_default} callers conventionally pass for "absent". *)

val length : 'a t -> int
val capacity : 'a t -> int

val mem : 'a t -> Tuple.t -> bool
val find_opt : 'a t -> Tuple.t -> 'a option

val find_default : 'a t -> Tuple.t -> 'a -> 'a
(** The stored value, or the default when absent — the allocation-free
    probe. Under zero elision, passing the ring zero makes the default
    unambiguous. *)

val set : 'a t -> Tuple.t -> 'a -> unit
(** Insert or overwrite.
    @raise Invalid_argument when the key {!Tuple.is_scratch} — a
    mutable probe buffer must never become a stored key. *)

val remove : 'a t -> Tuple.t -> unit
(** Backward-shift deletion: no tombstones, the probe chain is
    compacted in place. Absent keys are a no-op. *)

val clear : 'a t -> unit
(** Drop all entries but keep the arrays — the capacity-preserving
    reset that lets epoch-scoped accumulators reuse their buffers. *)

val iter : (Tuple.t -> 'a -> unit) -> 'a t -> unit
val fold : (Tuple.t -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

val to_seq : 'a t -> (Tuple.t * 'a) Seq.t
(** Lazy enumeration of the contents at call time; unspecified (but
    memory-safe) under concurrent mutation, like stdlib [Hashtbl]. *)

val copy : 'a t -> 'a t

val mean_probe_distance : 'a t -> float
(** Mean displacement of residents from their home slot — the
    robin-hood health metric reported by the storage microbench. *)
