(** Binary encoding of values, tuples and updates, for the durable
    update log and checkpoints of [lib/stream]. Little-endian,
    self-delimiting; integrity (length + CRC-32 framing) is layered on
    top by the callers. *)

exception Corrupt of string
(** Raised by every reader on a short or malformed buffer. *)

val crc32 : string -> pos:int -> len:int -> int
(** CRC-32 (IEEE) of a substring, as a non-negative 32-bit int. *)

(** {1 Primitives} — writers append to a [Buffer.t]; readers consume
    from a string at a position cursor, raising {!Corrupt} on underrun. *)

val add_u8 : Buffer.t -> int -> unit
val add_u16 : Buffer.t -> int -> unit
val add_u32 : Buffer.t -> int -> unit
val add_i64 : Buffer.t -> int -> unit
val add_f64 : Buffer.t -> float -> unit
val add_str : Buffer.t -> string -> unit
val u8 : string -> int ref -> int
val u16 : string -> int ref -> int
val u32 : string -> int ref -> int
val i64 : string -> int ref -> int
val f64 : string -> int ref -> float
val str : string -> int ref -> string

(** {1 Data-model codecs} *)

val add_value : Buffer.t -> Value.t -> unit
val value : string -> int ref -> Value.t
val add_tuple : Buffer.t -> Tuple.t -> unit
val tuple : string -> int ref -> Tuple.t

(** A payload codec: how to write and read one ring element. The
    streaming layers are functorized over this, so any ring with a
    binary form gets a durable log and checkpoints for free. *)
module type PAYLOAD = sig
  type t

  val write : Buffer.t -> t -> unit
  val read : string -> int ref -> t
end

module Int_payload : PAYLOAD with type t = int
module Float_payload : PAYLOAD with type t = float

val add_update : (module PAYLOAD with type t = 'p) -> Buffer.t -> 'p Update.t -> unit
val update : (module PAYLOAD with type t = 'p) -> string -> int ref -> 'p Update.t
