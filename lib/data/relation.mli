(** Relations over a ring (Sec. 2): finite maps from tuples over a
    schema to ring payloads, with amortized constant-time lookup,
    insert and delete, and constant-delay enumeration.

    {b The zero-elision invariant}: a relation {e never} stores a
    zero payload. Every mutation ({!S.add_entry}, {!S.set_entry},
    {!S.Index.update}) evicts an entry whose merged payload becomes
    zero, so [size] counts exactly the tuples with non-zero
    multiplicity, [mem]/[get] never see ghosts of cancelled updates,
    extensional {!S.equal} is a plain entry-wise comparison, and the
    order-independent fingerprints of [lib/engine] digest only live
    entries. Everything downstream — coalescing in the scheduler,
    checkpoint round-trips, the network snapshot protocol — leans on
    this: an insert/delete pair is {e extensionally} a no-op, and must
    also be {e representationally} one. *)

module type S = Relation_intf.S

module Make (R : Ivm_ring.Sigs.SEMIRING) : S with type payload = R.t
(** The functor is over {!Ivm_ring.Sigs.SEMIRING}: the structure never
    needs additive inverses — a delete is an update whose payload the
    caller already negated (possible whenever payloads form a ring). *)

(** Relations over the default ring of integer multiplicities. The
    type equations to [Make(Ivm_ring.Int_ring)] (applicative functor
    paths) keep [Z.t] interchangeable with every other instantiation
    of the same application — [Database.Z], the checkpoint codecs and
    the engines all agree on one concrete type. *)
module Z :
  S
    with type payload = int
     and type t = Make(Ivm_ring.Int_ring).t
     and type Index.t = Make(Ivm_ring.Int_ring).Index.t
