(** Tuples are immutable arrays of values, positionally aligned with a
    {!Schema}, carrying a memoized structural hash. The empty tuple
    [unit] is the tuple over the empty schema, the key of scalar (fully
    aggregated) views.

    The hash cache is what makes hash-table-heavy maintenance cheap: a
    tuple is typically probed several times (relation + group indexes,
    find then replace) and rehashed wholesale on every table resize;
    with the cache each of those costs one int read instead of a
    traversal of the value array. The cache is filled lazily on first
    {!hash} so tuples that are only ever enumerated never pay for it.

    {!scratch} buffers are the one mutable exception: probe keys filled
    in place between lookups. The [is_scratch] flag marks them so the
    storage layer ({!Flat_tbl}, and through it {!Relation}) can refuse
    to store one as a table key — a stored scratch tuple would keep
    mutating under the table's feet and silently corrupt it. *)

type t = {
  vals : Value.t array;
  mutable h : int; (* memoized hash; negative = not yet computed *)
  is_scratch : bool; (* mutable probe buffer: must never be stored *)
}

let wrap vals = { vals; h = -1; is_scratch = false }
let unit : t = wrap [||]
let of_list vs = wrap (Array.of_list vs)
let to_list t = Array.to_list t.vals
let of_ints is = wrap (Array.of_list (List.map Value.of_int is))
let init n f = wrap (Array.init n f)
let arity t = Array.length t.vals
let get t i = t.vals.(i)
let is_scratch t = t.is_scratch

let hash t =
  if t.h >= 0 then t.h
  else begin
    let h = Hashtbl.hash t.vals land max_int in
    t.h <- h;
    h
  end

let equal a b =
  a == b
  || (Array.length a.vals = Array.length b.vals
     && (a.h < 0 || b.h < 0 || Int.equal a.h b.h)
     &&
     let va = a.vals and vb = b.vals in
     let rec go i = i < 0 || (Value.equal va.(i) vb.(i) && go (i - 1)) in
     go (Array.length va - 1))

let compare a b =
  let va = a.vals and vb = b.vals in
  let c = Int.compare (Array.length va) (Array.length vb) in
  if c <> 0 then c
  else
    let rec go i =
      if i >= Array.length va then 0
      else
        let c = Value.compare va.(i) vb.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

(* [project t idxs] picks the fields of [t] at positions [idxs]. Always
   a fresh immutable tuple, even when [t] is a scratch buffer — so
   projections of probe keys are safe to store. *)
let project t (idxs : int array) : t =
  wrap (Array.map (fun i -> t.vals.(i)) idxs)

let append a b : t = wrap (Array.append a.vals b.vals)

(* Reusable probe buffers: a scratch tuple is mutated in place between
   lookups, so the hot enumeration loops allocate nothing per probe.
   [set] invalidates the memoized hash; the [is_scratch] flag lets the
   storage layer reject any attempt to *store* one as a table key. *)
let scratch n : t = { vals = Array.make n (Value.Int 0); h = -1; is_scratch = true }

let set t i v =
  t.vals.(i) <- v;
  t.h <- -1

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Value.pp)
    (to_list t)

let to_string t = Format.asprintf "%a" pp t

(** Hashtables keyed by tuples. *)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
