(** A reusable fixed-size pool of OCaml 5 domains.

    [create ~domains:n] gives a pool of parallelism width [n]: [n - 1]
    worker domains plus the submitting domain, which executes tasks
    itself while it waits — so [~domains:1] is a plain sequential loop
    with no spawning, locking or signalling at all. Domains are spawned
    once and reused across batches, amortizing the (milliseconds-scale)
    spawn cost over the lifetime of an engine.

    The pool runs *tasks*, not shards: callers partition their work into
    independent closures (one per shard, chunk, or relation) and the
    pool drains them. Nothing here knows about relations or rings — the
    soundness argument for running maintenance tasks concurrently (ring
    commutativity, disjoint shard ownership) lives with the callers in
    {!Sharded_relation}, {!Par_batch} and the engine batch fronts. *)

type t = {
  width : int;
  mutex : Mutex.t;
  has_work : Condition.t;
  all_done : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable running : int; (* tasks popped but not yet finished *)
  mutable stop : bool;
  mutable first_error : exn option;
  mutable workers : unit Domain.t array;
}

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.stop do
    Condition.wait pool.has_work pool.mutex
  done;
  if pool.stop && Queue.is_empty pool.queue then Mutex.unlock pool.mutex
  else begin
    let task = Queue.pop pool.queue in
    pool.running <- pool.running + 1;
    Mutex.unlock pool.mutex;
    let err = match task () with () -> None | exception e -> Some e in
    Mutex.lock pool.mutex;
    pool.running <- pool.running - 1;
    (match err with
    | Some e when pool.first_error = None -> pool.first_error <- Some e
    | Some _ | None -> ());
    if pool.running = 0 && Queue.is_empty pool.queue then
      Condition.broadcast pool.all_done;
    Mutex.unlock pool.mutex;
    worker_loop pool
  end

let create ~domains =
  if domains < 1 then invalid_arg "Domain_pool.create: domains < 1";
  let pool =
    {
      width = domains;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      all_done = Condition.create ();
      queue = Queue.create ();
      running = 0;
      stop = false;
      first_error = None;
      workers = [||];
    }
  in
  pool.workers <-
    Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let width pool = pool.width

(* Sequential fallback used by width-1 pools and empty task lists. *)
let run_seq tasks = List.iter (fun task -> task ()) tasks

(** [run pool tasks] executes every task and returns when all have
    finished; the caller's domain participates. Tasks must be
    independent — the pool gives no ordering guarantee. The first
    exception raised by any task is re-raised after the barrier. *)
let run pool tasks =
  match tasks with
  | [] -> ()
  | [ task ] -> task ()
  | tasks when pool.width = 1 -> run_seq tasks
  | tasks ->
      Mutex.lock pool.mutex;
      List.iter (fun task -> Queue.push task pool.queue) tasks;
      Condition.broadcast pool.has_work;
      (* Help drain the queue, then wait for stragglers. *)
      let rec help () =
        if not (Queue.is_empty pool.queue) then begin
          let task = Queue.pop pool.queue in
          pool.running <- pool.running + 1;
          Mutex.unlock pool.mutex;
          let err = match task () with () -> None | exception e -> Some e in
          Mutex.lock pool.mutex;
          pool.running <- pool.running - 1;
          (match err with
          | Some e when pool.first_error = None -> pool.first_error <- Some e
          | Some _ | None -> ());
          help ()
        end
      in
      help ();
      while pool.running > 0 do
        Condition.wait pool.all_done pool.mutex
      done;
      let err = pool.first_error in
      pool.first_error <- None;
      Mutex.unlock pool.mutex;
      (match err with Some e -> raise e | None -> ())

(** [submit pool task] hands [task] to a worker domain and returns
    immediately — no barrier, no result. This is what long-lived tasks
    (network connection handlers) use: they must never ride a {!run}
    barrier, or the barrier would wait for the connection to close.
    Exceptions escaping a submitted task are swallowed (there is no
    joiner to re-raise into); the task owns its error handling. A
    width-1 pool has no workers, so the task runs inline on the
    submitting domain. *)
let submit pool task =
  let task () = try task () with _ -> () in
  if pool.width = 1 then task ()
  else begin
    Mutex.lock pool.mutex;
    Queue.push task pool.queue;
    Condition.signal pool.has_work;
    Mutex.unlock pool.mutex
  end

(** [fold pool ~add ~zero tasks] runs the tasks on the pool and combines
    their results with [add] in an unspecified order — sound when [add]
    is commutative and associative, which is exactly what the ring
    structure of payloads guarantees (Sec. 2). *)
let fold pool ~add ~zero tasks =
  match tasks with
  | [] -> zero
  | [ task ] -> add zero (task ())
  | tasks ->
      let cells = List.map (fun task -> (ref zero, task)) tasks in
      run pool (List.map (fun (cell, task) -> fun () -> cell := task ()) cells);
      List.fold_left (fun acc (cell, _) -> add acc !cell) zero cells

(** Split [arr] into at most [width pool] contiguous chunks, one task
    per chunk. [chunks pool arr f] returns the per-chunk results of
    [f first_index length]. *)
let chunk_bounds pool n =
  let k = min pool.width (max 1 n) in
  let base = n / k and extra = n mod k in
  List.init k (fun i ->
      let lo = (i * base) + min i extra in
      let len = base + if i < extra then 1 else 0 in
      (lo, len))

let destroy pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.has_work;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join pool.workers

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> destroy pool) (fun () -> f pool)
