(** Hash-sharded relations: the same finite map from tuples to non-zero
    ring payloads as {!Ivm_data.Relation}, split into [2^k] independent
    hash tables by tuple-key hash. Within a shard there is no locking at
    all — parallel batch application partitions updates by shard and
    hands each shard's sub-batch to exactly one task, so every table has
    a single writer (the "each domain owns its shards" discipline).

    Correctness of out-of-order, cross-shard application is the paper's
    Sec. 2 observation: payloads live in a ring, so a batch of updates
    commutes — the final map is the same whatever interleaving the pool
    happens to run. *)

module Tuple = Ivm_data.Tuple
module Schema = Ivm_data.Schema
module Flat_tbl = Ivm_data.Flat_tbl

(* The one shard function of the whole system: in-process sharded
   tables and the cluster router must agree on it, or a tuple's owner
   node and its owner table disagree. Upper hash bits, because the
   tables (and Flat_tbl buckets) consume the lower ones. *)
let shard_index ~mask tuple = (Tuple.hash tuple lsr 16) land mask

module Make (R : Ivm_ring.Sigs.SEMIRING) = struct
  module Rel = Ivm_data.Relation.Make (R)

  type payload = R.t

  type t = {
    schema : Schema.t;
    mask : int; (* shard count - 1; shard count is a power of two *)
    shards : payload Flat_tbl.t array;
  }

  let next_pow2 n =
    let rec go p = if p >= n then p else go (p * 2) in
    go 1

  let create ?(shards = 64) ?(size = 16) schema =
    let count = next_pow2 (max 1 shards) in
    {
      schema;
      mask = count - 1;
      shards = Array.init count (fun _ -> Flat_tbl.create ~size:(max 1 (size / count)) R.zero);
    }

  let schema t = t.schema
  let shard_count t = t.mask + 1

  (* The table hashes a key by [Tuple.hash] too, so shard selection uses
     the *upper* bits: taking the same low bits twice would leave every
     shard's table clustered in a fraction of its buckets. *)
  let shard_of t tuple = shard_index ~mask:t.mask tuple
  let shard t i = t.shards.(i)

  let size t = Array.fold_left (fun acc s -> acc + Flat_tbl.length s) 0 t.shards
  let get t tuple = Flat_tbl.find_default t.shards.(shard_of t tuple) tuple R.zero
  let mem t tuple = Flat_tbl.mem t.shards.(shard_of t tuple) tuple

  (* Identical merge-and-elide semantics to [Relation.add_entry]; the
     probe reads through zero elision, so the hot path allocates
     nothing. *)
  let add_to_table table tuple p =
    if not (R.is_zero p) then begin
      let q = Flat_tbl.find_default table tuple R.zero in
      if R.is_zero q then Flat_tbl.set table tuple p
      else
        let s = R.add q p in
        if R.is_zero s then Flat_tbl.remove table tuple
        else Flat_tbl.set table tuple s
    end

  let add_entry t tuple p = add_to_table t.shards.(shard_of t tuple) tuple p
  let iter f t = Array.iter (Flat_tbl.iter f) t.shards

  let fold f t acc =
    Array.fold_left (fun acc s -> Flat_tbl.fold f s acc) acc t.shards

  let clear t = Array.iter Flat_tbl.clear t.shards

  let of_relation ?shards r =
    let t = create ?shards ~size:(Rel.size r) (Rel.schema r) in
    Rel.iter (fun tuple p -> add_entry t tuple p) r;
    t

  let to_relation t =
    let r = Rel.create ~size:(size t) t.schema in
    iter (fun tuple p -> Rel.set_entry r tuple p) t;
    r

  let equal_relation t r =
    size t = Rel.size r
    &&
    match iter (fun tuple p -> if not (R.equal (Rel.get r tuple) p) then raise_notrace Exit) t with
    | () -> true
    | exception Exit -> false

  (** [apply_batch pool t batch] applies a batch of (tuple, payload)
      updates: the batch is partitioned by target shard sequentially
      (computing each tuple's memoized hash once), then the per-shard
      sub-batches run concurrently on the pool — one task per non-empty
      shard, each writing only its own table. *)
  let apply_batch pool t (batch : (Tuple.t * payload) list) =
    match batch with
    | [] -> ()
    | batch when Domain_pool.width pool = 1 ->
        List.iter (fun (tuple, p) -> add_entry t tuple p) batch
    | batch ->
        let buckets : (Tuple.t * payload) list array =
          Array.make (t.mask + 1) []
        in
        List.iter
          (fun ((tuple, _) as entry) ->
            let i = shard_of t tuple in
            buckets.(i) <- entry :: buckets.(i))
          batch;
        let tasks = ref [] in
        Array.iteri
          (fun i bucket ->
            match bucket with
            | [] -> ()
            | bucket ->
                let table = t.shards.(i) in
                tasks :=
                  (fun () ->
                    List.iter (fun (tuple, p) -> add_to_table table tuple p) bucket)
                  :: !tasks)
          buckets;
        Domain_pool.run pool !tasks
end
