(** Parallel application of named update batches (the paper's Sec. 2
    batches) over hash-sharded relations. A batch is partitioned by
    (relation, shard); each bucket is applied in batch order by a single
    task, so every shard table has one writer, and buckets interleave
    arbitrarily — sound because ring payloads make batches commute. *)

module Update = Ivm_data.Update

module Make (R : Ivm_ring.Sigs.SEMIRING) : sig
  module Srel : module type of Sharded_relation.Make (R)

  val apply : Domain_pool.t -> find:(string -> Srel.t) -> R.t Update.batch -> unit
  (** [apply pool ~find batch] routes every update of [batch] to
      [find u.rel] and applies all (relation, shard) sub-batches on the
      pool; width-1 pools apply inline, in order.
      @raise Invalid_argument (from [find]) on unknown relation names —
      resolution happens during sequential partitioning, before any
      parallel work starts. *)

  val sum : Domain_pool.t -> (unit -> R.t) list -> R.t
  (** Evaluate independent ring-valued tasks on the pool and merge the
      results with [R.add]. *)
end
