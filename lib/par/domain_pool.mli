(** A reusable fixed-size pool of OCaml 5 domains.

    [create ~domains:n] gives a pool of parallelism width [n]: [n - 1]
    worker domains plus the submitting domain, which helps execute tasks
    while waiting — [~domains:1] degenerates to a plain sequential loop
    with no spawning or locking. Workers are spawned once and reused
    across batches.

    The pool schedules independent closures; the soundness argument for
    running maintenance work concurrently (ring commutativity, disjoint
    shard ownership) lives with the callers. *)

type t

val create : domains:int -> t
(** @raise Invalid_argument when [domains < 1]. *)

val width : t -> int
(** The parallelism width [n] passed to {!create}. *)

val run : t -> (unit -> unit) list -> unit
(** Execute every task, returning when all have finished (a barrier).
    Tasks run in an unspecified order, possibly concurrently; they must
    not contend on shared mutable state. The first exception raised by
    any task is re-raised after the barrier. *)

val submit : t -> (unit -> unit) -> unit
(** Fire-and-forget: hand one task to a worker domain and return
    immediately. For long-lived tasks (connection handlers) that must
    not ride a {!run} barrier. Only the [width - 1] worker domains
    execute submitted tasks, so at most that many run concurrently; a
    width-1 pool runs the task inline on the submitting domain.
    Escaping exceptions are swallowed — the task owns its error
    handling. {!destroy} drains already-submitted tasks before
    returning. *)

val fold : t -> add:('a -> 'a -> 'a) -> zero:'a -> (unit -> 'a) list -> 'a
(** Run the tasks and combine their results with [add] in an unspecified
    order — sound when [add] is commutative and associative, which is
    what the ring structure of payloads guarantees (Sec. 2). *)

val chunk_bounds : t -> int -> (int * int) list
(** [chunk_bounds pool n] splits [0..n-1] into at most [width pool]
    contiguous [(offset, length)] chunks, for chunk-per-task fan-out
    over arrays. *)

val destroy : t -> unit
(** Stop and join the worker domains. The pool must not be used after. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool, destroying it on
    exit (also on exceptions). *)
