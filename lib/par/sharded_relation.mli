(** Hash-sharded relations: the same finite map from tuples to non-zero
    ring payloads as {!Ivm_data.Relation}, split into [2^k] independent
    hash tables by tuple-key hash. Within a shard there is no locking at
    all — parallel batch application partitions updates by shard and
    hands each shard's sub-batch to exactly one task, so every table has
    a single writer. Out-of-order, cross-shard application is sound
    because ring payloads make update batches commute (Sec. 2). *)

module Tuple = Ivm_data.Tuple
module Schema = Ivm_data.Schema
module Flat_tbl = Ivm_data.Flat_tbl

val shard_index : mask:int -> Tuple.t -> int
(** The system-wide shard function: upper bits of {!Tuple.hash} masked
    to [mask] ([shard count - 1], a power of two minus one). Both the
    in-process sharded tables below and the cluster router partition
    with exactly this, so ownership agrees across layers. Computing it
    memoizes the tuple's hash. *)

module Make (R : Ivm_ring.Sigs.SEMIRING) : sig
  module Rel : module type of Ivm_data.Relation.Make (R)

  type payload = R.t
  type t

  val create : ?shards:int -> ?size:int -> Schema.t -> t
  (** [shards] (default 64) is rounded up to a power of two; [size] is
      the expected total entry count, split across the shard tables. *)

  val schema : t -> Schema.t
  val shard_count : t -> int

  val shard_of : t -> Tuple.t -> int
  (** The shard index of a tuple — upper hash bits, so the tables (which
      consume the lower bits) stay uniformly filled. Computing it also
      memoizes the tuple's hash for the parallel probe phase. *)

  val shard : t -> int -> payload Flat_tbl.t
  (** The [i]th shard table. Callers mutating it directly (as
      {!Par_batch} does) must ensure a single writer per shard. *)

  val size : t -> int
  (** Stored entries across all shards — tuples with non-zero payload. *)

  val get : t -> Tuple.t -> payload
  (** The payload of a tuple, [R.zero] when absent (zero elision). *)

  val mem : t -> Tuple.t -> bool

  val add_to_table : payload Flat_tbl.t -> Tuple.t -> payload -> unit
  (** Merge-and-elide into one shard table: identical semantics to
      [Relation.add_entry] — add with [R.add], drop entries that reach
      [R.zero]. *)

  val add_entry : t -> Tuple.t -> payload -> unit
  val iter : (Tuple.t -> payload -> unit) -> t -> unit
  val fold : (Tuple.t -> payload -> 'a -> 'a) -> t -> 'a -> 'a
  val clear : t -> unit

  val of_relation : ?shards:int -> Rel.t -> t
  val to_relation : t -> Rel.t

  val equal_relation : t -> Rel.t -> bool
  (** Same tuple→payload map, shard layout aside. *)

  val apply_batch : Domain_pool.t -> t -> (Tuple.t * payload) list -> unit
  (** Partition a batch by target shard sequentially (computing each
      tuple's memoized hash once), then apply the per-shard sub-batches
      concurrently — one task per non-empty shard, each writing only its
      own table. Width-1 pools apply inline. *)
end
