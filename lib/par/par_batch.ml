(** Parallel application of named update batches (the paper's Sec. 2
    batches) over hash-sharded relations.

    [apply] partitions a batch by (relation, shard) — one bucket per
    shard of each touched relation — and runs the buckets concurrently
    on a {!Domain_pool}. Each bucket is applied *in batch order* by a
    single task, so every shard table has one writer; buckets of
    different shards interleave arbitrarily, which is sound because ring
    payloads make update batches commute (Sec. 2): the final relation
    contents are order-independent.

    Scalar results that engines derive per-update (counts, ring
    aggregates) are merged with [R.add] via {!Domain_pool.fold} — the
    same commutativity argument. *)

module Update = Ivm_data.Update

module Make (R : Ivm_ring.Sigs.SEMIRING) = struct
  module Srel = Sharded_relation.Make (R)

  (** [apply pool ~find batch] routes every update of [batch] to
      [find u.rel] and applies all shard sub-batches on the pool.
      @raise Invalid_argument (from [find]) on unknown relation names —
      resolution happens during sequential partitioning, before any
      parallel work starts. *)
  let apply pool ~(find : string -> Srel.t) (batch : R.t Update.batch) : unit =
    match batch with
    | [] -> ()
    | batch when Domain_pool.width pool = 1 ->
        List.iter
          (fun (u : R.t Update.t) -> Srel.add_entry (find u.rel) u.tuple u.payload)
          batch
    | batch ->
        (* Partition sequentially: bucket key = (relation, shard). The
           shard index memoizes each tuple's hash, so the parallel phase
           probes with cached hashes. *)
        let buckets : (string * int, (Srel.t * (Ivm_data.Tuple.t * R.t) list ref)) Hashtbl.t =
          Hashtbl.create 64
        in
        List.iter
          (fun (u : R.t Update.t) ->
            let srel = find u.rel in
            let key = (u.rel, Srel.shard_of srel u.tuple) in
            match Hashtbl.find_opt buckets key with
            | Some (_, entries) -> entries := (u.tuple, u.payload) :: !entries
            | None -> Hashtbl.add buckets key (srel, ref [ (u.tuple, u.payload) ]))
          batch;
        let tasks =
          Hashtbl.fold
            (fun (_, shard_idx) (srel, entries) acc ->
              let table = Srel.shard srel shard_idx in
              (fun () ->
                (* [entries] was built by prepending: re-reverse so the
                   shard sees batch order (order is irrelevant for the
                   final state, but determinism helps debugging). *)
                List.iter
                  (fun (tuple, p) -> Srel.add_to_table table tuple p)
                  (List.rev !entries))
              :: acc)
            buckets []
        in
        Domain_pool.run pool tasks

  (** [sum pool tasks] evaluates independent ring-valued tasks on the
      pool and merges the results with [R.add]. *)
  let sum pool tasks = Domain_pool.fold pool ~add:R.add ~zero:R.zero tasks
end
