(** Delta-debugging minimization of diverging cases. Soundness rests on
    {!Case.sanitize} being stable under subset removal: dropping any
    updates from a valid case and re-sanitizing yields another valid
    case, so the shrinker may delete freely and let the harness judge.

    The loop: ddmin over the flattened stream (epoch structure is
    rebuilt, empty epochs dropped), then ddmin over the init rows, then
    single-update polish — iterated to a fixpoint under a predicate-call
    budget. *)

val ddmin : failing:('a list -> bool) -> 'a list -> 'a list
(** Zeller–Hildebrandt ddmin: a 1-minimal sublist still satisfying
    [failing]. [failing] must hold on the input list. *)

val minimize : ?budget:int -> failing:(Case.t -> bool) -> Case.t -> Case.t
(** The smallest case found within [budget] (default 600) predicate
    calls. The result always satisfies [failing]; if the input does not,
    it is returned unchanged. *)
