type failure = {
  case_seed : Seed.t;
  family : string;
  divergences : Harness.divergence list;
  minimized : Case.t;
  updates : int;
  corpus_file : string option;
}

type summary = { seed : Seed.t; runs : int; failures : failure list }

let run ?(runs = 100) ?minutes ?(select = []) ?corpus_dir ?(log = ignore) ~seed () =
  let started = Unix.gettimeofday () in
  let out_of_time () =
    match minutes with
    | None -> false
    | Some m -> Unix.gettimeofday () -. started >= m *. 60.
  in
  let failures = ref [] in
  let executed = ref 0 in
  let i = ref 0 in
  while !i < runs && ((not (out_of_time ())) || !executed = 0) do
    (* runs = 1 replays the master seed itself — the reproduce contract. *)
    let case_seed = if runs = 1 then seed else Seed.case seed !i in
    let rng = Seed.rng case_seed in
    let case = Gen.case ~rng ~seed:case_seed in
    incr executed;
    (match Harness.run ~select case with
    | Harness.Agree -> ()
    | Harness.Diverged ds ->
        log
          (Format.asprintf "seed %a (%s): %d divergence(s); first: %a" Seed.pp case_seed
             (Case.family_name case.Case.family)
             (List.length ds) Harness.pp_divergence (List.hd ds));
        log
          (Format.asprintf "  reproduce with: ivm_cli fuzz --seed %a --runs 1" Seed.pp
             case_seed);
        let minimized =
          Shrink.minimize ~failing:(fun c -> Harness.diverges ~select c) case
        in
        let updates = Case.stream_length minimized in
        log
          (Format.asprintf "  shrunk to %d update(s) over %d init row(s)" updates
             (List.length minimized.Case.init));
        let corpus_file =
          match corpus_dir with
          | None -> None
          | Some dir ->
              if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
              let file =
                Filename.concat dir
                  (Printf.sprintf "%s-%d.repro"
                     (Case.family_name minimized.Case.family)
                     case_seed)
              in
              Corpus.save file minimized;
              log ("  reproducer written to " ^ file);
              Some file
        in
        failures :=
          {
            case_seed;
            family = Case.family_name case.Case.family;
            divergences = ds;
            minimized;
            updates;
            corpus_file;
          }
          :: !failures);
    if !executed mod 20 = 0 && !executed < runs then
      log (Printf.sprintf "... %d/%d cases, %d failure(s)" !executed runs
             (List.length !failures));
    incr i
  done;
  { seed; runs = !executed; failures = List.rev !failures }
