module Cq = Ivm_query.Cq
module Value = Ivm_data.Value
module Tuple = Ivm_data.Tuple
module Update = Ivm_data.Update
module Db = Ivm_data.Database.Z
module Rel = Ivm_data.Relation.Z
module Eval = Ivm_engine.Eval
module View = Ivm_engine.View

type t = { case : Case.t; db : Db.t }

let create (case : Case.t) = { case; db = Case.db_of case }
let apply t batch = Db.apply_batch t.db batch

let normalize entries =
  List.filter (fun (_, p) -> p <> 0) entries
  |> List.sort (fun (a, pa) (b, pb) ->
         match Tuple.compare a b with 0 -> compare pa pb | c -> c)

let equal_entries a b =
  List.equal (fun (ta, pa) (tb, pb) -> pa = pb && Tuple.equal ta tb) a b

let entries_of rel = Rel.fold (fun tp p acc -> (tp, p) :: acc) rel []

(* Fresh per-recompute views: indexes are rebuilt each epoch, so the
   oracle never maintains anything incrementally. *)
let recompute_query t q =
  let out = Eval.aggregate q ~lookup:(fun name -> View.of_relation (Db.find t.db name)) in
  entries_of out

let scalar v = if v = 0 then [] else [ (Tuple.unit, v) ]

(* Triangle count by explicit join over the (possibly namespaced) base
   relations R(A,B), S(B,C), T(C,A). *)
let triangle_count_in t ~r ~s ~tt =
  let r = Db.find t.db r and s = Db.find t.db s and tt = Db.find t.db tt in
  Rel.fold
    (fun rt rm acc ->
      let a = Tuple.get rt 0 and b = Tuple.get rt 1 in
      Rel.fold
        (fun st sm acc ->
          if Value.equal (Tuple.get st 0) b then
            let c = Tuple.get st 1 in
            acc + (rm * sm * Rel.get tt (Tuple.of_list [ c; a ]))
          else acc)
        s acc)
    r 0

let triangle_count t = triangle_count_in t ~r:"R" ~s:"S" ~tt:"T"

(* k-clique count by exhaustive subset enumeration — fine for the tiny
   graphs the generator produces. *)
let kclique_count t k =
  let e = Db.find t.db "E" in
  let nodes = Hashtbl.create 16 in
  Rel.iter
    (fun tp _ ->
      Hashtbl.replace nodes (Value.to_int (Tuple.get tp 0)) ();
      Hashtbl.replace nodes (Value.to_int (Tuple.get tp 1)) ())
    e;
  let vs = Hashtbl.fold (fun v () acc -> v :: acc) nodes [] |> List.sort compare in
  let adjacent u v =
    let a, b = if u < v then (u, v) else (v, u) in
    Rel.mem e (Tuple.of_ints [ a; b ])
  in
  let rec choose acc rest count =
    match rest with
    | _ when List.length acc = k -> count + 1
    | [] -> count
    | v :: tl ->
        let count =
          if List.for_all (adjacent v) acc then choose (v :: acc) tl count else count
        in
        choose acc tl count
  in
  choose [] vs 0

(* Per-group (g, min v, max v) rows, payload 1, straight off the
   integral of the single base relation — the shape the dataflow
   extremum join emits. *)
let minmax_rows_in t rel_name =
  let rel = Db.find t.db rel_name in
  let tbl = Hashtbl.create 16 in
  Rel.iter
    (fun tp _ ->
      let g = Tuple.get tp 0 and v = Tuple.get tp 1 in
      let mn, mx =
        match Hashtbl.find_opt tbl g with
        | None -> (v, v)
        | Some (mn, mx) ->
            ( (if Value.compare v mn < 0 then v else mn),
              if Value.compare v mx > 0 then v else mx )
      in
      Hashtbl.replace tbl g (mn, mx))
    rel;
  Hashtbl.fold (fun g (mn, mx) acc -> (Tuple.of_list [ g; mn; mx ], 1) :: acc) tbl []

let minmax_rows t =
  minmax_rows_in t (match t.case.Case.schemas with (r, _) :: _ -> r | [] -> "R")

(* The mixed multi-tenant family: each tenant's view recomputed over its
   namespaced tables, every entry tagged with a leading view-name column
   — the same union shape the multi-view drivers enumerate. *)
let mixed_rows t =
  let module Mx = Ivm_workload.Mixed in
  let tag name entries =
    List.map (fun (tp, p) -> (Tuple.of_list (Value.Str name :: Tuple.to_list tp), p)) entries
  in
  List.concat_map
    (fun (tn : Mx.tenant) ->
      let tbl suffix = Mx.table tn suffix in
      let entries =
        match tn.Mx.kind with
        | Mx.Join ->
            recompute_query t
              (Cq.make ~name:tn.Mx.name ~free:[ "B" ]
                 [ Cq.atom (tbl "R") [ "A"; "B" ]; Cq.atom (tbl "S") [ "B"; "C" ] ])
        | Mx.Triangle -> scalar (triangle_count_in t ~r:(tbl "R") ~s:(tbl "S") ~tt:(tbl "T"))
        | Mx.Minmax -> minmax_rows_in t (tbl "R")
        | Mx.Economy ->
            (* Account balances are multiplicities of A(id); the view is
               the group-by-nothing ring sum — the conserved total. *)
            scalar (Rel.fold (fun _ p acc -> acc + p) (Db.find t.db (tbl "A")) 0)
        | Mx.Cascade | Mx.Window ->
            failwith ("mixed oracle: unsupported tenant kind " ^ Mx.kind_name tn.Mx.kind)
      in
      tag tn.Mx.name entries)
    (Mx.of_tables t.case.Case.schemas)

let enumerate t =
  normalize
    (match t.case.Case.family with
    | Case.Join | Case.Static_dynamic -> recompute_query t (Option.get t.case.Case.query)
    | Case.Triangle -> scalar (triangle_count t)
    | Case.Kclique -> scalar (kclique_count t t.case.Case.k)
    | Case.Minmax -> minmax_rows t
    | Case.Mixed -> mixed_rows t)
