module Tuple = Ivm_data.Tuple

type divergence = { engine : string; epoch : int; detail : string }
type outcome = Agree | Diverged of divergence list

let pp_divergence fmt d =
  Format.fprintf fmt "[%s] epoch %d: %s" d.engine d.epoch d.detail

let pp_entries fmt entries =
  let n = List.length entries in
  let shown = List.filteri (fun i _ -> i < 6) entries in
  Format.fprintf fmt "{";
  List.iteri
    (fun i (t, p) ->
      Format.fprintf fmt "%s%a->%d" (if i = 0 then "" else ", ") Tuple.pp t p)
    shown;
  if n > 6 then Format.fprintf fmt ", ... %d more" (n - 6);
  Format.fprintf fmt "}"

let mismatch expected got =
  Format.asprintf "output %a, oracle expects %a" pp_entries got pp_entries expected

let fresh_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec pick n =
    let d = Filename.concat base (Printf.sprintf "ivm-check-%d-%d" (Unix.getpid ()) n) in
    if Sys.file_exists d then pick (n + 1) else d
  in
  let d = pick 0 in
  Unix.mkdir d 0o700;
  d

let remove_dir d =
  if Sys.file_exists d then begin
    Array.iter (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ()) (Sys.readdir d);
    try Unix.rmdir d with Unix.Unix_error _ -> ()
  end

let run ?dir ?(select = []) (case : Case.t) =
  let case = Case.sanitize case in
  let dir, owns_dir = match dir with Some d -> (d, false) | None -> (fresh_dir (), true) in
  let divergences = ref [] in
  let report engine epoch detail = divergences := { engine; epoch; detail } :: !divergences in
  Fun.protect
    ~finally:(fun () -> if owns_dir then remove_dir dir)
    (fun () ->
      let oracle = Oracle.create case in
      (* A driver whose build raises is itself a divergence (the oracle
         accepted the same case), not a harness crash. *)
      let drivers =
        Engines.build ~dir ~select case
        |> List.filter_map (fun (name, build) ->
               match build () with
               | d -> Some d
               | exception e ->
                   report name 0 ("build raised: " ^ Printexc.to_string e);
                   None)
      in
      Fun.protect
        ~finally:(fun () ->
          List.iter (fun (d : Engines.driver) -> try d.Engines.finish () with _ -> ()) drivers)
        (fun () ->
          (* A driver that raised is dead: it stops absorbing epochs so
             one exception yields one divergence, not one per epoch. *)
          let dead = Hashtbl.create 8 in
          let compare_all epoch =
            let expected = Oracle.enumerate oracle in
            List.iter
              (fun (d : Engines.driver) ->
                if not (Hashtbl.mem dead d.Engines.name) then
                  match d.Engines.enumerate () with
                  | got ->
                      if not (Oracle.equal_entries got expected) then
                        report d.Engines.name epoch (mismatch expected got)
                  | exception e ->
                      Hashtbl.replace dead d.Engines.name ();
                      report d.Engines.name epoch ("enumerate raised: " ^ Printexc.to_string e))
              drivers
          in
          compare_all 0;
          List.iteri
            (fun i rows ->
              let epoch = i + 1 in
              let batch = List.map Case.update_of_row rows in
              Oracle.apply oracle batch;
              List.iter
                (fun (d : Engines.driver) ->
                  if not (Hashtbl.mem dead d.Engines.name) then
                    try d.Engines.apply batch
                    with e ->
                      Hashtbl.replace dead d.Engines.name ();
                      report d.Engines.name epoch ("apply raised: " ^ Printexc.to_string e))
                drivers;
              compare_all epoch)
            case.Case.stream;
          let final = List.length case.Case.stream in
          List.iter
            (fun (d : Engines.driver) ->
              if not (Hashtbl.mem dead d.Engines.name) then
                match d.Engines.self_check () with
                | None -> ()
                | Some msg -> report d.Engines.name final ("self-check: " ^ msg)
                | exception e ->
                    report d.Engines.name final ("self-check raised: " ^ Printexc.to_string e))
            drivers));
  match List.rev !divergences with [] -> Agree | ds -> Diverged ds

let diverges ?dir ?select case =
  match run ?dir ?select case with Agree -> false | Diverged _ -> true
