(** The differential engine matrix: every maintenance implementation in
    the library wrapped as a uniform driver the harness can feed one
    epoch at a time and enumerate in canonical form. Per family:

    - [Join]: the factorized view tree; the four Fig. 4 strategies
      (sequential) and the two lazy kinds again over a domain pool; the
      [Scheduler]+[Registry] streaming path (WAL + mid-stream checkpoint,
      with a kill-and-replay {!driver.self_check}); a loopback
      [Net.Client] against a real TCP server.
    - [Triangle]: first-order delta and single-view kernels, IVM^ε, the
      polarized batch fronts (sequential and pooled), streaming and net.
    - [Kclique]: the maintained count and its from-scratch recompute.
    - [Static_dynamic]: the Sec. 4.5 engine, its all-dynamic twin, a
      plain view tree over the same order, and the dataflow operator
      graph over the fixed (connected) query.
    - [Minmax]: the dataflow operator graph (shared source feeding MIN
      and MAX extremum nodes, renamed and natural-joined on the group —
      with a from-scratch state-fingerprint rebuild as its
      {!driver.self_check}), the same graph behind the streaming,
      net and cluster paths (group-hash partitioned, scattered reads),
      and the SQL front end lowering [SELECT g, MIN(v), MAX(v)].
    - [Mixed]: several {!Ivm_workload.Mixed} tenants at once — the
      [mixed] direct driver (one supervised registry holding every
      tenant view) plus the streaming, net and cluster paths with one
      registered view per tenant. Enumerations are the union of
      per-view entries, each tagged with a leading view-name column;
      the cluster path hash-partitions each tenant's pivot table and
      ring-sums the scattered per-view partials.

    The [Join] matrix also gains the [dataflow] driver whenever the
    generated query is connected with distinct per-atom columns — the
    shapes the operator graph's natural join can express.

    The deliberately injectable bug: while the {!bug_failpoint} is armed
    (via [Ivm_fault.Failpoint]), the [view-tree], [tri-delta] and
    [mixed] drivers silently drop delete-polarity updates — the
    regression the fuzz smoke proves it can catch and shrink. *)

type driver = {
  name : string;
  apply : int Ivm_data.Update.t list -> unit;  (** absorb one epoch *)
  enumerate : unit -> (Ivm_data.Tuple.t * int) list;
      (** current output, already {!Oracle.normalize}d *)
  self_check : unit -> string option;
      (** end-of-stream internal cross-checks (durability paths);
          [Some msg] is reported as a divergence of this engine *)
  finish : unit -> unit;  (** release pools, sockets, domains, files *)
}

val bug_failpoint : string
(** ["check.drop_delete"] — arm it with [times:max_int] to make the
    susceptible drivers lose deletes. *)

val names : Case.t -> string list
(** The engines applicable to a case's family, in build order. *)

val all_names : string list

val build :
  dir:string -> ?select:string list -> Case.t -> (string * (unit -> driver)) list
(** The matrix over the case's initial database, as named constructors —
    deferred so a crashing build is a recordable divergence of that one
    engine, not a harness failure. [dir] is a scratch directory for
    WAL/checkpoint files (the caller owns its lifecycle). [select] keeps
    only the named engines (unknown names are ignored; an empty
    selection builds everything). *)
