(** The single seeding authority of the fuzzing harness. Every random
    decision anywhere in a fuzz run — query shapes, database contents,
    update polarity, epoch boundaries, fault schedules — descends from
    one integer through this module, so a failure is reproduced by
    re-running with the seed printed in the failure report and nothing
    else. Components never call [Random.State.make] themselves; they
    take a [~rng] derived here. *)

type t = int
(** A master seed. *)

val rng : t -> Random.State.t
(** The root generator of a run. *)

val derive : t -> string -> Random.State.t
(** An independent substream for a named component ("query", "stream",
    ...). Streams for different labels are decorrelated even for
    adjacent seeds, so adding a consumer never perturbs the draws an
    existing one sees. *)

val case : t -> int -> t
(** [case seed i] is the seed of the [i]-th case of a run — what the
    failure report prints, and what reproduces that case alone. *)

val split : Random.State.t -> t
(** Draw a fresh seed from a generator, for handing a sub-component its
    own independent stream. *)

val pp : Format.formatter -> t -> unit
