module D = Ivm_data
module U = D.Update
module Db = D.Database.Z
module Rel = D.Relation.Z
module Cq = Ivm_query.Cq
module M = Ivm_engine.Maintainable
module View_tree = Ivm_engine.View_tree
module Strategy = Ivm_engine.Strategy
module Tri = Ivm_engine.Triangle
module Tb = Ivm_engine.Triangle_batch
module Kc = Ivm_engine.Kclique
module Sd = Ivm_engine.Static_dynamic_engine
module St = Ivm_stream
module N = Ivm_net
module Fp = Ivm_fault.Failpoint

type driver = {
  name : string;
  apply : int U.t list -> unit;
  enumerate : unit -> (D.Tuple.t * int) list;
  self_check : unit -> string option;
  finish : unit -> unit;
}

let bug_failpoint = "check.drop_delete"

(* The injectable engine bug: when the failpoint is armed, the wrapped
   driver silently ignores deletes — the canonical polarity regression
   the harness must catch, shrink and file. *)
let maybe_drop_deletes batch =
  match Fp.hit bug_failpoint with
  | Some _ -> List.filter (fun (u : int U.t) -> u.U.payload >= 0) batch
  | None -> batch

let entries rel = Rel.fold (fun tp p acc -> (tp, p) :: acc) rel []
let norm = Oracle.normalize

let ok what = function
  | Ok v -> v
  | Error e -> failwith (what ^ ": " ^ St.Errors.to_string e)

let ok_wire what = function
  | Ok v -> v
  | Error e -> failwith (what ^ ": " ^ N.Wire.error_to_string e)

let no_check () = None

let plain name apply enumerate =
  { name; apply; enumerate; self_check = no_check; finish = ignore }

(* --- join family ----------------------------------------------------- *)

let view_tree_driver (case : Case.t) =
  let q = Option.get case.Case.query and order = Option.get case.Case.order in
  let vt = View_tree.build q order (Case.db_of case) in
  plain "view-tree"
    (fun batch -> List.iter (View_tree.apply_update vt) (maybe_drop_deletes batch))
    (fun () -> norm (entries (View_tree.output_relation vt)))

let strategy_driver (case : Case.t) kind =
  let q = Option.get case.Case.query and order = Option.get case.Case.order in
  let s = Strategy.create kind q order (Case.db_of case) in
  plain (Strategy.kind_name kind)
    (fun batch -> Strategy.apply_batch s batch)
    (fun () -> norm (entries (Strategy.output s)))

let strategy_pool_driver (case : Case.t) kind =
  let q = Option.get case.Case.query and order = Option.get case.Case.order in
  let pool = Ivm_par.Domain_pool.create ~domains:3 in
  let s = Strategy.create kind q order (Case.db_of case) in
  {
    name = Strategy.kind_name kind ^ "-pool";
    apply = (fun batch -> Strategy.apply_batch ~pool s batch);
    enumerate = (fun () -> norm (entries (Strategy.output s)));
    self_check = no_check;
    finish = (fun () -> Ivm_par.Domain_pool.destroy pool);
  }

(* --- graph engines --------------------------------------------------- *)

let tri_rel (u : int U.t) =
  match u.U.rel with
  | "R" -> Tri.R
  | "S" -> Tri.S
  | "T" -> Tri.T
  | r -> failwith ("triangle driver: unknown relation " ^ r)

let edge_ints (u : int U.t) =
  (D.Value.to_int (D.Tuple.get u.U.tuple 0), D.Value.to_int (D.Tuple.get u.U.tuple 1))

let scalar_enum count () = norm [ (D.Tuple.unit, count ()) ]

let tri_engine_driver (type e) name ~bug (module E : Tri.ENGINE with type t = e) =
  let eng = E.create () in
  plain name
    (fun batch ->
      let batch = if bug then maybe_drop_deletes batch else batch in
      List.iter
        (fun u ->
          let a, b = edge_ints u in
          E.update eng (tri_rel u) ~a ~b u.U.payload)
        batch)
    (scalar_enum (fun () -> E.count eng))

let tri_batch_driver (type e) name ?pool (module B : Tb.BATCH_ENGINE with type t = e)
    ~finish () =
  let eng = B.create ?pool () in
  let edge_of u =
    let a, b = edge_ints u in
    (tri_rel u, a, b, u.U.payload)
  in
  {
    name;
    apply = (fun batch -> B.apply_batch eng (List.map edge_of batch));
    enumerate = scalar_enum (fun () -> B.count eng);
    self_check = no_check;
    finish;
  }

let kclique_driver (case : Case.t) ~recompute =
  let g = Kc.create ~k:case.Case.k in
  plain (if recompute then "kclique-recompute" else "kclique")
    (fun batch ->
      List.iter
        (fun u ->
          let a, b = edge_ints u in
          if u.U.payload > 0 then ignore (Kc.insert g a b) else ignore (Kc.delete g a b))
        batch)
    (scalar_enum (fun () -> if recompute then Kc.recompute g else Kc.count g))

(* --- static/dynamic -------------------------------------------------- *)

let sd_driver (case : Case.t) =
  let e = Sd.create (Case.db_of case) in
  plain "static-dynamic"
    (fun batch -> List.iter (Sd.apply_update e) batch)
    (fun () -> norm (entries (Sd.output e)))

let all_dynamic_driver (case : Case.t) =
  let e = Sd.All_dynamic.create (Case.db_of case) in
  plain "all-dynamic"
    (fun batch -> List.iter (Sd.All_dynamic.apply_update e) batch)
    (fun () -> norm (entries (Sd.All_dynamic.output e)))

let sd_view_tree_driver (case : Case.t) =
  let vt = View_tree.build Sd.query Sd.order (Case.db_of case) in
  plain "sd-view-tree"
    (fun batch -> List.iter (View_tree.apply_update vt) batch)
    (fun () -> norm (entries (View_tree.output_relation vt)))

(* --- dataflow operator graphs ---------------------------------------- *)

module Df = Ivm_dataflow.Graph

(* Mirror of the left-deep greedy graph build: every atom binds distinct
   columns and the join graph is connected — the only query shapes
   [Df.join] accepts (no cartesian products). *)
let connectable (q : Cq.t) =
  let distinct_vars (a : Cq.atom) =
    List.length (List.sort_uniq compare a.Cq.vars) = List.length a.Cq.vars
  in
  List.for_all distinct_vars q.Cq.atoms
  &&
  match q.Cq.atoms with
  | [] -> false
  | a :: rest ->
      let rec grow cols pending =
        pending = []
        ||
        let touches (a : Cq.atom) = List.exists (fun v -> List.mem v cols) a.Cq.vars in
        match List.partition touches pending with
        | [], _ -> false
        | next, rest ->
            grow
              (List.sort_uniq compare
                 (cols @ List.concat_map (fun (a : Cq.atom) -> a.Cq.vars) next))
              rest
      in
      grow a.Cq.vars rest

let seed_graph g db schemas =
  let updates =
    List.concat_map
      (fun (rel, _) ->
        Rel.fold (fun tp p acc -> U.make ~rel ~tuple:tp ~payload:p :: acc) (Db.find db rel) [])
      schemas
  in
  Df.apply g updates

(* The conjunctive query as an operator DAG: one source per atom,
   left-deep connected natural joins, then the multiplicity-summing
   projection onto the free variables — Eval.aggregate's ring
   semantics. *)
let query_graph (q : Cq.t) db schemas =
  let g = Df.create () in
  let joined =
    match List.map (fun (a : Cq.atom) -> Df.source g ~rel:a.Cq.rel ~schema:a.Cq.vars) q.Cq.atoms with
    | [] -> failwith "dataflow driver: no atoms"
    | n :: rest ->
        let rec grow acc pending =
          if pending = [] then acc
          else
            let cols = Df.node_schema acc in
            let touches n = List.exists (fun c -> List.mem c cols) (Df.node_schema n) in
            match List.partition touches pending with
            | [], _ -> failwith "dataflow driver: disconnected join graph"
            | next :: more, rest -> grow (Df.join g acc next) (more @ rest)
        in
        grow n rest
  in
  Df.output g ~name:"v" (Df.project g ~cols:q.Cq.free joined);
  seed_graph g db schemas;
  g

let dataflow_query_driver (case : Case.t) =
  let q = Option.get case.Case.query in
  let g = query_graph q (Case.db_of case) case.Case.schemas in
  plain "dataflow"
    (fun batch -> Df.apply g batch)
    (fun () -> norm (Df.entries g "v"))

(* The minmax view, shaped exactly like the SQL compiler's lowering of
   SELECT g, MIN(v), MAX(v) ... GROUP BY g: one shared source feeding a
   minimum and a maximum node, each renamed to its output column so the
   natural join keys on the group alone. *)
let minmax_graph (case : Case.t) db =
  let rel, cols = List.hd case.Case.schemas in
  let gcol, vcol =
    match cols with [ a; b ] -> (a, b) | _ -> failwith "minmax driver: schema is not (G, V)"
  in
  let g = Df.create () in
  let src = Df.source g ~rel ~schema:cols in
  let rename agg node =
    let col = agg ^ "(" ^ vcol ^ ")" in
    Df.map g ~label:("as " ^ col) ~schema:[ gcol; col ] Fun.id node
  in
  let mn = rename "MIN" (Df.minimum g ~col:vcol ~group:[ gcol ] src) in
  let mx = rename "MAX" (Df.maximum g ~col:vcol ~group:[ gcol ] src) in
  Df.output g ~name:"v" (Df.join g mn mx);
  seed_graph g db case.Case.schemas;
  g

(* The direct graph driver also mirrors the stream into a plain database
   so its self_check can rebuild the whole graph from scratch and demand
   operator-state fingerprint equality — deleting a served extremum must
   leave the live indexes exactly where a cold build lands. *)
let dataflow_minmax_driver (case : Case.t) =
  let db = Case.db_of case in
  let g = minmax_graph case db in
  {
    name = "dataflow";
    apply =
      (fun batch ->
        Df.apply g batch;
        Db.apply_batch db batch);
    enumerate = (fun () -> norm (Df.entries g "v"));
    self_check =
      (fun () ->
        let fresh = minmax_graph case db in
        if Df.state_fingerprint fresh <> Df.state_fingerprint g then
          Some "state fingerprint diverges from a from-scratch rebuild"
        else None);
    finish = ignore;
  }

let minmax_factory (case : Case.t) : Db.t -> M.t =
 fun db -> M.of_dataflow ~name:"v" (minmax_graph case db)

(* --- maintainable factories for the streaming and net paths ---------- *)

let join_factory (case : Case.t) : Db.t -> M.t =
  let q = Option.get case.Case.query and order = Option.get case.Case.order in
  fun db -> M.of_view_tree ~name:"v" q (View_tree.build q order db)

let tri_factory (_ : Case.t) : Db.t -> M.t =
 fun db ->
  let eng = Tb.Delta.create () in
  List.iter
    (fun name ->
      let rel = match name with "R" -> Tri.R | "S" -> Tri.S | _ -> Tri.T in
      Rel.iter
        (fun t p ->
          Tb.Delta.update eng rel ~a:(D.Value.to_int (D.Tuple.get t 0))
            ~b:(D.Value.to_int (D.Tuple.get t 1))
            p)
        (Db.find db name))
    [ "R"; "S"; "T" ];
  M.of_triangle_batch ~name:"v" (module Tb.Delta) eng

(* --- multi-view plumbing --------------------------------------------- *)

(* The streaming/net/cluster drivers are parameterized over a list of
   registered views. Historical families register exactly one view "v"
   and enumerate it raw; the [Mixed] family registers one view per
   tenant and enumerates the union with a leading view-name column on
   every entry — the same shape the mixed oracle recomputes. Tagging
   keys off the family (not the list length) so a case shrunk down to
   one live tenant still compares in tagged form. *)
let tag_view name entries =
  List.map
    (fun (tp, p) -> (D.Tuple.of_list (D.Value.Str name :: D.Tuple.to_list tp), p))
    entries

let multi_enum (case : Case.t) views find =
  match case.Case.family with
  | Case.Mixed ->
      norm (List.concat_map (fun (name, _) -> tag_view name (find name)) views)
  | _ -> norm (find (fst (List.hd views)))

let mixed_views (case : Case.t) =
  List.map
    (fun tn -> (tn.Ivm_workload.Mixed.name, Ivm_workload.Mixed.factory tn))
    (Ivm_workload.Mixed.of_tables case.Case.schemas)

(* The direct mixed driver: the same supervised registry the streaming
   path uses, minus WAL and scheduler — every tenant view maintained in
   process. This is the bug-susceptible driver of the family. *)
let mixed_direct_driver (case : Case.t) =
  let views = mixed_views case in
  let reg = St.Registry.create (Case.db_of case) in
  List.iter (fun (name, f) -> St.Registry.register reg ~name f) views;
  plain "mixed"
    (fun batch -> St.Registry.apply_batch reg (maybe_drop_deletes batch))
    (fun () ->
      multi_enum case views (fun name -> (St.Registry.find reg name).M.enumerate ()))

(* --- the streaming path: WAL + epoch scheduler + supervised registry,
   driven synchronously one epoch at a time. self_check replays the
   durable state two ways — full WAL from the initial database, and
   checkpoint + WAL suffix — and demands both equal the live run. ------ *)

let stream_driver ~dir ~views (case : Case.t) =
  let wal_path = Filename.concat dir "stream.wal" in
  let ckpt_path = Filename.concat dir "stream.ckpt" in
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ wal_path; ckpt_path ];
  let metrics = St.Metrics.create () in
  let reg = St.Registry.create ~metrics (Case.db_of case) in
  List.iter (fun (name, f) -> St.Registry.register reg ~name f) views;
  let wal = ok "wal open" (St.Wal.Z.open_log wal_path) in
  let queue = St.Queue.create ~capacity:8192 St.Queue.Block in
  let sched = St.Scheduler.create ~wal ~queue ~registry:reg ~metrics () in
  let save_ckpt () =
    ok "checkpoint save"
      (St.Checkpoint.Z.save ckpt_path ~db:(St.Registry.db reg)
         ~wal_offset:(St.Wal.Z.offset wal))
  in
  (* An initial checkpoint, so a stream short enough to never reach the
     mid-stream save still exercises restore-from-preprocessing. *)
  save_ckpt ();
  let mid = max 1 (List.length case.Case.stream / 2) in
  let epoch = ref 0 in
  let target = ref 0 in
  let enum_of r = multi_enum case views (fun name -> (St.Registry.find r name).M.enumerate ()) in
  let apply batch =
    incr epoch;
    if batch <> [] then begin
      List.iter (fun u -> ignore (St.Queue.push queue (St.Scheduler.item u))) batch;
      target := !target + List.length batch;
      while St.Scheduler.applied sched < !target do
        match St.Scheduler.step sched with
        | Ok true -> ()
        | Ok false -> failwith "stream driver: queue ended early"
        | Error e -> failwith ("stream driver epoch: " ^ St.Errors.to_string e)
      done
    end;
    if !epoch = mid then save_ckpt ()
  in
  let self_check () =
    match St.Wal.Z.sync wal with
    | Error e -> Some ("wal sync: " ^ St.Errors.to_string e)
    | Ok () -> (
        let live = enum_of reg in
        (* Kill-and-replay 1: the whole WAL over the initial database. *)
        let scratch = St.Registry.create (Case.db_of case) in
        List.iter (fun (name, f) -> St.Registry.register scratch ~name f) views;
        let pending = ref [] in
        match
          St.Wal.Z.replay wal_path ~from:St.Wal.header_len (fun u ->
              pending := u :: !pending)
        with
        | Error e -> Some ("wal replay: " ^ St.Errors.to_string e)
        | Ok _ -> (
            St.Registry.apply_batch scratch (List.rev !pending);
            if not (Oracle.equal_entries (enum_of scratch) live) then
              Some "full WAL replay diverges from the live run"
            else
              (* Kill-and-replay 2: checkpoint + WAL suffix. *)
              match St.Checkpoint.Z.load ckpt_path with
              | Error e -> Some ("checkpoint load: " ^ St.Errors.to_string e)
              | Ok (db, offset) -> (
                  let restored = St.Registry.restore reg db in
                  let suffix = ref [] in
                  match
                    St.Wal.Z.replay wal_path ~from:offset (fun u -> suffix := u :: !suffix)
                  with
                  | Error e -> Some ("wal suffix replay: " ^ St.Errors.to_string e)
                  | Ok _ ->
                      St.Registry.apply_batch restored (List.rev !suffix);
                      if not (Oracle.equal_entries (enum_of restored) live) then
                        Some "checkpoint + WAL suffix replay diverges from the live run"
                      else None)))
  in
  {
    name = "stream";
    apply;
    enumerate = (fun () -> enum_of reg);
    self_check;
    finish = (fun () -> St.Wal.Z.close wal);
  }

(* --- the net loopback path: a real TCP server over a live scheduler,
   epochs ingested and outputs snapshotted through a Net.Client. ------- *)

let net_driver ~views (case : Case.t) =
  let metrics = St.Metrics.create () in
  let reg = St.Registry.create ~metrics (Case.db_of case) in
  List.iter (fun (name, f) -> St.Registry.register reg ~name f) views;
  let queue = St.Queue.create ~capacity:8192 St.Queue.Block in
  let sched = St.Scheduler.create ~initial_batch:64 ~queue ~registry:reg ~metrics () in
  let runner = Domain.spawn (fun () -> St.Scheduler.run sched) in
  let ingest updates =
    List.fold_left
      (fun (a, d) u ->
        if St.Queue.push queue (St.Scheduler.item u) then (a + 1, d) else (a, d + 1))
      (0, 0) updates
  in
  let stop_runner () =
    St.Queue.close queue;
    ignore (Domain.join runner)
  in
  let srv =
    try
      ok_wire "server start"
        (N.Server.start ~port:0 ~handlers:2 ~chunk_size:64 ~ingest
           ~on_shutdown:(fun () -> St.Queue.close queue)
           ~registry:reg ~metrics ())
    with e ->
      stop_runner ();
      raise e
  in
  let client =
    try ok_wire "client connect" (N.Client.connect ~port:(N.Server.port srv) ())
    with e ->
      stop_runner ();
      N.Server.stop srv;
      raise e
  in
  let target = ref 0 in
  let apply batch =
    if batch <> [] then begin
      let admitted, dropped = ok_wire "ingest" (N.Client.ingest client batch) in
      if dropped > 0 then failwith "net driver: server dropped updates";
      target := !target + admitted;
      let deadline = Unix.gettimeofday () +. 30. in
      while St.Scheduler.applied sched < !target && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.0005
      done;
      if St.Scheduler.applied sched < !target then failwith "net driver: apply timed out"
    end
  in
  {
    name = "net";
    apply;
    enumerate =
      (fun () ->
        multi_enum case views (fun name ->
            ok_wire "snapshot" (N.Client.snapshot client ~view:name)));
    self_check = no_check;
    finish =
      (fun () ->
        N.Client.close client;
        stop_runner ();
        N.Server.stop srv);
  }

(* --- the cluster path: a 2-shard router over real loopback nodes,
   with a barrier-quiesced kill and promotion halfway through the
   stream, so every case exercises failover recovery. Partition
   soundness: views are multilinear in their atoms, so exactly one
   relation that occurs in exactly one atom may be split by tuple hash
   (the rest broadcast) and the per-node partial views ring-sum to the
   global answer; with no such relation everything is broadcast and
   the view is read from a single replica. ---------------------------- *)

module Cl = Ivm_cluster

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let cluster_policies (case : Case.t) =
  let rels = List.map fst case.Case.schemas in
  match case.Case.family with
  | Case.Mixed ->
      (* Per-tenant partition soundness: every tenant's view is linear
         in exactly one of its private tables — hash-partition that one
         (by the group column for minmax, so a group's whole multiset
         stays on one shard; by tuple for the economy's account ids and
         the joins' pivot), broadcast the rest, and ring-sum the
         scattered per-shard partials per view. *)
      let module Mx = Ivm_workload.Mixed in
      let tenants = Mx.of_tables case.Case.schemas in
      let policies =
        List.concat_map
          (fun (tn : Mx.tenant) ->
            List.map
              (fun (tbl, _) ->
                let policy =
                  match tn.Mx.kind with
                  | Mx.Minmax -> Cl.Topology.Hash_col 0
                  | Mx.Economy -> Cl.Topology.Hash_tuple
                  | Mx.Join | Mx.Triangle | Mx.Cascade ->
                      if String.equal tbl (Mx.table tn "R") then Cl.Topology.Hash_tuple
                      else Cl.Topology.Broadcast
                  | Mx.Window -> Cl.Topology.Broadcast
                in
                (tbl, policy))
              tn.Mx.tables)
          tenants
      in
      let routes =
        List.map
          (fun (tn : Mx.tenant) ->
            ( tn.Mx.name,
              (* Per-shard window watermarks retract panes at different
                 times, so window views replicate instead of scatter. *)
              match tn.Mx.kind with
              | Mx.Window -> Cl.Topology.Replicated
              | _ -> Cl.Topology.Scattered ))
          tenants
      in
      (policies, routes)
  | Case.Minmax ->
      (* Partition by the group column: a group's whole value multiset
         lives on one shard, so per-shard (g, min, max) rows are disjoint
         and ring-sum to the global answer. *)
      ( List.map (fun r -> (r, Cl.Topology.Hash_col 0)) rels,
        [ ("v", Cl.Topology.Scattered) ] )
  | _ -> (
      let atom_rels =
        match (case.Case.family, case.Case.query) with
        | Case.Triangle, _ -> [ "R"; "S"; "T" ]
        | _, Some q -> List.map (fun (a : Cq.atom) -> a.Cq.rel) q.Cq.atoms
        | _, None -> []
      in
      let occurrences r = List.length (List.filter (String.equal r) atom_rels) in
      match List.find_opt (fun r -> occurrences r = 1) rels with
      | Some pivot ->
          ( List.map
              (fun r ->
                ( r,
                  if String.equal r pivot then Cl.Topology.Hash_tuple
                  else Cl.Topology.Broadcast ))
              rels,
            [ ("v", Cl.Topology.Scattered) ] )
      | None ->
          ( List.map (fun r -> (r, Cl.Topology.Broadcast)) rels,
            [ ("v", Cl.Topology.Replicated) ] ))

let cluster_driver ~dir ~views (case : Case.t) =
  let base_dir = Filename.concat dir "cluster" in
  rm_rf base_dir;
  let policies, routes = cluster_policies case in
  let topology = Cl.Topology.create ~shards:2 ~policies ~routes in
  let declare reg =
    List.iter
      (fun (name, cols) ->
        ignore (St.Registry.declare_table reg name (D.Schema.of_list cols)))
      case.Case.schemas;
    List.iter (fun (name, f) -> St.Registry.register reg ~name f) views
  in
  let router =
    match
      Cl.Router.start ~handlers:1 ~standby:false ~probe_interval:0. ~base_dir ~topology
        ~declare ()
    with
    | Ok r -> r
    | Error m -> failwith ("cluster driver start: " ^ m)
  in
  let send what batch =
    match Cl.Router.ingest router batch with
    | Ok (_, 0) -> ()
    | Ok (_, d) -> failwith (Printf.sprintf "cluster driver %s: %d dead-lettered" what d)
    | Error m -> failwith ("cluster driver " ^ what ^ ": " ^ m)
  in
  send "init" (List.map Case.update_of_row case.Case.init);
  let mid = max 1 (List.length case.Case.stream / 2) in
  let epoch = ref 0 in
  let apply batch =
    incr epoch;
    send "ingest" batch;
    if !epoch = mid then begin
      (match Cl.Router.barrier router with
      | Ok _ -> ()
      | Error m -> failwith ("cluster driver barrier: " ^ m));
      Cl.Router.kill_primary router ~shard:0;
      match Cl.Router.fail_over router ~shard:0 with
      | Error m -> failwith ("cluster driver failover: " ^ m)
      | Ok _ ->
          if Cl.Router.take_lost router ~shard:0 <> [] then
            failwith "cluster driver: quiesced kill lost acked records"
    end
  in
  {
    name = "cluster";
    apply;
    enumerate =
      (fun () ->
        multi_enum case views (fun name ->
            match Cl.Router.snapshot router ~view:name with
            | Ok entries -> entries
            | Error m -> failwith ("cluster driver snapshot: " ^ m)));
    self_check = no_check;
    finish = (fun () -> Cl.Router.stop router);
  }

(* --- the SQL front end path: the case rendered as SQL text and pushed
   through lib/sql end to end — lexer, parser, lowering, cost-based
   planner and engine compilation all sit inside the checked loop, and
   the planner is free to pick any engine it likes; the oracle then
   holds it to the same answer as every hand-built driver. Data flows
   through printed INSERT/DELETE statements, so DML parsing and the
   executor's mutation path are fuzzed too. -------------------------- *)

let sql_value_literal = function
  | D.Value.Int i -> string_of_int i
  | D.Value.Real r -> Printf.sprintf "%.12g" r
  | D.Value.Str s -> "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"

let sql_of_update (u : int U.t) =
  let row =
    "(" ^ String.concat ", " (List.map sql_value_literal (D.Tuple.to_list u.U.tuple)) ^ ")"
  in
  let rows = String.concat ", " (List.init (abs u.U.payload) (fun _ -> row)) in
  if u.U.payload > 0 then Printf.sprintf "INSERT INTO %s VALUES %s;" u.U.rel rows
  else Printf.sprintf "DELETE FROM %s VALUES %s;" u.U.rel rows

let sql_view_text (case : Case.t) =
  match case.Case.family with
  | Case.Triangle -> "CREATE MATERIALIZED VIEW v AS SELECT COUNT(*) FROM R, S, T;"
  | Case.Minmax ->
      let rel, cols = List.hd case.Case.schemas in
      let g = List.nth cols 0 and v = List.nth cols 1 in
      Printf.sprintf
        "CREATE MATERIALIZED VIEW v AS SELECT %s, MIN(%s), MAX(%s) FROM %s GROUP BY %s;" g v
        v rel g
  | _ ->
      let q = Option.get case.Case.query in
      let items =
        match q.Ivm_query.Cq.free with
        | [] -> "COUNT(*)"
        | fs -> String.concat ", " fs
      in
      Printf.sprintf "CREATE MATERIALIZED VIEW v AS SELECT %s FROM %s;" items
        (String.concat ", "
           (List.map (fun (a : Cq.atom) -> a.Cq.rel) q.Ivm_query.Cq.atoms))

let sql_driver (case : Case.t) =
  let sess = Ivm_sql.Exec.create () in
  let run what text =
    match Ivm_sql.Exec.exec_text sess text with
    | Ok _ -> ()
    | Error e -> failwith ("sql driver " ^ what ^ ": " ^ e)
  in
  List.iter
    (fun (rel, cols) ->
      run "create table"
        (Printf.sprintf "CREATE TABLE %s (%s);" rel (String.concat ", " cols)))
    case.Case.schemas;
  (* Initial rows land before the view exists, exercising the initial
     load of whatever engine the planner compiles the view onto. *)
  List.iter (fun r -> run "init" (sql_of_update (Case.update_of_row r))) case.Case.init;
  run "create view" (sql_view_text case);
  plain "sql"
    (fun batch ->
      List.iter (fun u -> if u.U.payload <> 0 then run "dml" (sql_of_update u)) batch)
    (fun () ->
      match Ivm_sql.Exec.view_entries sess "v" with
      | Ok es -> norm es
      | Error e -> failwith ("sql driver enumerate: " ^ e))

(* --- the matrix ------------------------------------------------------ *)

let join_builders : (string * (dir:string -> Case.t -> driver)) list =
  [
    ("view-tree", fun ~dir:_ c -> view_tree_driver c);
    ("eager-fact", fun ~dir:_ c -> strategy_driver c Strategy.Eager_fact);
    ("eager-list", fun ~dir:_ c -> strategy_driver c Strategy.Eager_list);
    ("lazy-fact", fun ~dir:_ c -> strategy_driver c Strategy.Lazy_fact);
    ("lazy-list", fun ~dir:_ c -> strategy_driver c Strategy.Lazy_list);
    ("lazy-fact-pool", fun ~dir:_ c -> strategy_pool_driver c Strategy.Lazy_fact);
    ("lazy-list-pool", fun ~dir:_ c -> strategy_pool_driver c Strategy.Lazy_list);
    ("stream", fun ~dir c -> stream_driver ~dir ~views:[ ("v", join_factory c) ] c);
    ("net", fun ~dir:_ c -> net_driver ~views:[ ("v", join_factory c) ] c);
    ("cluster", fun ~dir c -> cluster_driver ~dir ~views:[ ("v", join_factory c) ] c);
    ("sql", fun ~dir:_ c -> sql_driver c);
  ]

let triangle_builders : (string * (dir:string -> Case.t -> driver)) list =
  [
    ("tri-delta", fun ~dir:_ _ -> tri_engine_driver "tri-delta" ~bug:true (module Tri.Delta));
    ( "tri-one-view",
      fun ~dir:_ _ -> tri_engine_driver "tri-one-view" ~bug:false (module Tri.One_view) );
    ( "tri-eps",
      fun ~dir:_ _ ->
        tri_engine_driver "tri-eps" ~bug:false (module Ivm_eps.Triangle_count.Half) );
    ( "tri-batch-delta",
      fun ~dir:_ _ -> tri_batch_driver "tri-batch-delta" (module Tb.Delta) ~finish:ignore () );
    ( "tri-batch-one-view",
      fun ~dir:_ _ ->
        tri_batch_driver "tri-batch-one-view" (module Tb.One_view) ~finish:ignore () );
    ( "tri-batch-pool",
      fun ~dir:_ _ ->
        let pool = Ivm_par.Domain_pool.create ~domains:3 in
        tri_batch_driver "tri-batch-pool" ~pool
          (module Tb.Delta)
          ~finish:(fun () -> Ivm_par.Domain_pool.destroy pool)
          () );
    ("stream", fun ~dir c -> stream_driver ~dir ~views:[ ("v", tri_factory c) ] c);
    ("net", fun ~dir:_ c -> net_driver ~views:[ ("v", tri_factory c) ] c);
    ("cluster", fun ~dir c -> cluster_driver ~dir ~views:[ ("v", tri_factory c) ] c);
    ("sql", fun ~dir:_ c -> sql_driver c);
  ]

let kclique_builders : (string * (dir:string -> Case.t -> driver)) list =
  [
    ("kclique", fun ~dir:_ c -> kclique_driver c ~recompute:false);
    ("kclique-recompute", fun ~dir:_ c -> kclique_driver c ~recompute:true);
  ]

let sd_builders : (string * (dir:string -> Case.t -> driver)) list =
  [
    ("static-dynamic", fun ~dir:_ c -> sd_driver c);
    ("all-dynamic", fun ~dir:_ c -> all_dynamic_driver c);
    ("sd-view-tree", fun ~dir:_ c -> sd_view_tree_driver c);
  ]

let minmax_builders : (string * (dir:string -> Case.t -> driver)) list =
  [
    ("dataflow", fun ~dir:_ c -> dataflow_minmax_driver c);
    ("stream", fun ~dir c -> stream_driver ~dir ~views:[ ("v", minmax_factory c) ] c);
    ("net", fun ~dir:_ c -> net_driver ~views:[ ("v", minmax_factory c) ] c);
    ("cluster", fun ~dir c -> cluster_driver ~dir ~views:[ ("v", minmax_factory c) ] c);
    ("sql", fun ~dir:_ c -> sql_driver c);
  ]

let mixed_builders : (string * (dir:string -> Case.t -> driver)) list =
  [
    ("mixed", fun ~dir:_ c -> mixed_direct_driver c);
    ("stream", fun ~dir c -> stream_driver ~dir ~views:(mixed_views c) c);
    ("net", fun ~dir:_ c -> net_driver ~views:(mixed_views c) c);
    ("cluster", fun ~dir c -> cluster_driver ~dir ~views:(mixed_views c) c);
  ]

let dataflow_entry : string * (dir:string -> Case.t -> driver) =
  ("dataflow", fun ~dir:_ c -> dataflow_query_driver c)

let builders (case : Case.t) =
  match case.Case.family with
  | Case.Join ->
      (* The operator graph cannot express cartesian products or atoms
         with repeated variables; it joins the matrix only on queries it
         can run, so a build failure stays a real divergence. *)
      join_builders
      @ (match case.Case.query with
        | Some q when connectable q -> [ dataflow_entry ]
        | _ -> [])
  | Case.Triangle -> triangle_builders
  | Case.Kclique -> kclique_builders
  | Case.Static_dynamic -> sd_builders @ [ dataflow_entry ]
  | Case.Minmax -> minmax_builders
  | Case.Mixed -> mixed_builders

let names case = List.map fst (builders case)

let all_names =
  List.sort_uniq compare
    (List.concat_map (List.map fst)
       [
         join_builders @ [ dataflow_entry ];
         triangle_builders;
         kclique_builders;
         sd_builders;
         minmax_builders;
         mixed_builders;
       ])

let build ~dir ?(select = []) (case : Case.t) =
  builders case
  |> List.filter (fun (n, _) -> select = [] || List.mem n select)
  |> List.map (fun (n, f) -> (n, fun () -> f ~dir case))
