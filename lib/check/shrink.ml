(* Classic ddmin (Zeller & Hildebrandt 2002): partition into n chunks,
   try each chunk and each complement, refine granularity on failure to
   reduce. *)
let ddmin ~failing items =
  let split_into n l =
    let len = List.length l in
    let base = len / n and extra = len mod n in
    let rec take k l acc = if k = 0 then (List.rev acc, l)
      else match l with [] -> (List.rev acc, []) | x :: tl -> take (k - 1) tl (x :: acc)
    in
    let rec go i l =
      if l = [] then []
      else
        let k = base + if i < extra then 1 else 0 in
        let chunk, rest = take k l [] in
        chunk :: go (i + 1) rest
    in
    go 0 l
  in
  let rec loop items n =
    if List.length items <= 1 then items
    else
      let chunks = split_into n items in
      let rec subsets = function
        | [] -> None
        | c :: rest -> if failing c then Some c else subsets rest
      in
      match subsets chunks with
      | Some c -> loop c 2
      | None ->
          let rec complements i =
            if i >= List.length chunks then None
            else
              let comp = List.concat (List.filteri (fun j _ -> j <> i) chunks) in
              if failing comp then Some comp else complements (i + 1)
          in
          (match complements 0 with
          | Some comp -> loop comp (max (n - 1) 2)
          | None ->
              if n < List.length items then loop items (min (List.length items) (2 * n))
              else items)
  in
  if items = [] then [] else loop items 2

(* The stream is shrunk as a flat (epoch index, row) list; rebuilding
   keeps surviving rows in their original epochs so batch-boundary
   bugs stay reproduced, and drops epochs that became empty. *)
let flatten_stream stream =
  List.concat (List.mapi (fun i rows -> List.map (fun r -> (i, r)) rows) stream)

let rebuild_stream n_epochs flat =
  let buckets = Array.make (max n_epochs 1) [] in
  List.iter (fun (i, r) -> buckets.(i) <- r :: buckets.(i)) flat;
  Array.to_list buckets |> List.filter_map (function [] -> None | l -> Some (List.rev l))

let minimize ?(budget = 600) ~failing (case : Case.t) =
  let calls = ref 0 in
  let check c =
    if !calls >= budget then false
    else begin
      incr calls;
      failing c
    end
  in
  if not (failing case) then case
  else begin
    let current = ref case in
    let progress = ref true in
    while !progress && !calls < budget do
      progress := false;
      let c = !current in
      (* 1. stream rows *)
      let n = List.length c.Case.stream in
      let flat = flatten_stream c.Case.stream in
      let kept =
        ddmin ~failing:(fun f -> check { c with Case.stream = rebuild_stream n f }) flat
      in
      let c =
        if List.length kept < List.length flat then begin
          progress := true;
          { c with Case.stream = rebuild_stream n kept }
        end
        else c
      in
      (* 2. init rows *)
      let kept = ddmin ~failing:(fun init -> check { c with Case.init }) c.Case.init in
      let c =
        if List.length kept < List.length c.Case.init then begin
          progress := true;
          { c with Case.init = kept }
        end
        else c
      in
      (* 3. polish: drop single remaining rows ddmin's granularity
         schedule may have pinned. *)
      let drop_one_stream c =
        let n = List.length c.Case.stream in
        let flat = flatten_stream c.Case.stream in
        let rec try_at i =
          if i >= List.length flat then None
          else
            let f = List.filteri (fun j _ -> j <> i) flat in
            let cand = { c with Case.stream = rebuild_stream n f } in
            if check cand then Some cand else try_at (i + 1)
        in
        try_at 0
      in
      let rec polish c =
        match drop_one_stream c with
        | Some c' ->
            progress := true;
            polish c'
        | None -> c
      in
      current := polish c
    done;
    Case.sanitize !current
  end
