(** The reference model of the differential harness: a plain database
    plus from-scratch recomputation after every epoch ({!Ivm_engine.Eval}
    for join queries, brute-force counting for the graph families).
    O(N) per epoch and trivially correct — every maintenance engine must
    match it exactly. *)

type t

val create : Case.t -> t
(** The oracle over the case's initial database. *)

val apply : t -> int Ivm_data.Update.t list -> unit
(** Absorb one epoch (base updates only — nothing incremental here). *)

val enumerate : t -> (Ivm_data.Tuple.t * int) list
(** The recomputed view output in canonical form (see {!normalize}).
    Scalar outputs (counts) appear as [(Tuple.unit, v)] with the [v = 0]
    entry elided, matching zero elision on relations. *)

val normalize : (Ivm_data.Tuple.t * int) list -> (Ivm_data.Tuple.t * int) list
(** The fingerprint-comparison form used across the harness: drop
    zero-payload entries (zero elision), then sort by tuple. Two engines
    agree iff their normalized enumerations are {!equal_entries} — an
    order-independent, extensional comparison. *)

val equal_entries :
  (Ivm_data.Tuple.t * int) list -> (Ivm_data.Tuple.t * int) list -> bool
(** Entry-wise equality on normalized enumerations, via {!Tuple.equal} —
    never structural [=], which would compare the tuples' memoized hash
    caches (unfilled on wire-decoded tuples). *)
