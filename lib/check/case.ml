module Cq = Ivm_query.Cq
module Vo = Ivm_query.Variable_order
module Value = Ivm_data.Value
module Tuple = Ivm_data.Tuple
module Update = Ivm_data.Update
module Db = Ivm_data.Database.Z
module Schema = Ivm_data.Schema

type family = Join | Triangle | Kclique | Static_dynamic | Minmax | Mixed

let family_name = function
  | Join -> "join"
  | Triangle -> "triangle"
  | Kclique -> "kclique"
  | Static_dynamic -> "static-dynamic"
  | Minmax -> "minmax"
  | Mixed -> "mixed"

let family_of_name = function
  | "join" -> Some Join
  | "triangle" -> Some Triangle
  | "kclique" -> Some Kclique
  | "static-dynamic" -> Some Static_dynamic
  | "minmax" -> Some Minmax
  | "mixed" -> Some Mixed
  | _ -> None

type row = { rel : string; values : Value.t list; payload : int }

type t = {
  family : family;
  seed : Seed.t;
  query : Cq.t option;
  order : Vo.forest option;
  k : int;
  schemas : (string * string list) list;
  init : row list;
  stream : row list list;
}

let update_of_row (r : row) : int Update.t =
  Update.make ~rel:r.rel ~tuple:(Tuple.of_list r.values) ~payload:r.payload

let row_of_update (u : int Update.t) : row =
  { rel = u.Update.rel; values = Tuple.to_list u.Update.tuple; payload = u.Update.payload }

let stream_length t = List.fold_left (fun acc e -> acc + List.length e) 0 t.stream

let db_of t =
  let db = Db.create () in
  List.iter (fun (n, vars) -> ignore (Db.declare db n (Schema.of_list vars))) t.schemas;
  List.iter (fun r -> Db.apply db (update_of_row r)) t.init;
  db

(* Validity is checked against a live multiset threaded through init and
   the stream in order, so dropping any subset of updates upstream still
   leaves a valid case — the property the shrinker relies on. *)
let sanitize t =
  let live : (string * Value.t list, int) Hashtbl.t = Hashtbl.create 64 in
  let get k = Option.value (Hashtbl.find_opt live k) ~default:0 in
  let merge k p =
    let m = get k + p in
    if m = 0 then Hashtbl.remove live k else Hashtbl.replace live k m
  in
  let keep (r : row) =
    match t.family with
    | Kclique ->
        (* Simple undirected graph: edges normalized to (min, max), no
           loops, inserts only of absent edges, deletes only of present
           ones. *)
        (match r.values with
        | [ Value.Int u; Value.Int v ] when u <> v ->
            let u, v = if u < v then (u, v) else (v, u) in
            let values = [ Value.Int u; Value.Int v ] in
            let k = (r.rel, values) in
            if r.payload = 1 && get k = 0 then (merge k 1; Some { r with values })
            else if r.payload = -1 && get k = 1 then (merge k (-1); Some { r with values })
            else None
        | _ -> None)
    | Join | Triangle | Static_dynamic | Minmax | Mixed ->
        let static = t.family = Static_dynamic && r.rel = "T" in
        let k = (r.rel, r.values) in
        if r.payload = 0 || static then None
        else if r.payload < 0 && get k < -r.payload then None
        else (merge k r.payload; Some r)
  in
  (* Init rows are unconditional inserts (positive multiplicities). *)
  let init = List.filter (fun r -> r.payload > 0) t.init in
  List.iter (fun (r : row) -> merge (r.rel, r.values) r.payload) init;
  (* Static relations never change, but their *initial* contents are
     legitimate — only stream updates are filtered above. *)
  let stream = List.map (List.filter_map keep) t.stream in
  { t with init; stream }

let row_equal (a : row) (b : row) =
  a.rel = b.rel && a.payload = b.payload && List.equal Value.equal a.values b.values

let equal a b =
  a.family = b.family && a.seed = b.seed && a.k = b.k
  && Option.equal (fun (p : Cq.t) (q : Cq.t) -> p = q) a.query b.query
  && Option.equal (fun (p : Vo.forest) (q : Vo.forest) -> p = q) a.order b.order
  && a.schemas = b.schemas
  && List.equal row_equal a.init b.init
  && List.equal (List.equal row_equal) a.stream b.stream

let pp fmt t =
  Format.fprintf fmt "%s case (seed %a): %d relations, %d init rows, %d updates in %d epochs"
    (family_name t.family) Seed.pp t.seed (List.length t.schemas) (List.length t.init)
    (stream_length t) (List.length t.stream)
