(** The differential executor: one case, the oracle, and every
    applicable engine, stepped epoch by epoch in lockstep. After the
    build (epoch 0) and after every absorbed epoch the normalized
    enumerations are compared; at end of stream each engine's
    {!Engines.driver.self_check} runs (durability replay paths). Any
    mismatch, self-check failure or raised exception is a divergence. *)

type divergence = {
  engine : string;
  epoch : int;  (** 0 = right after build, i = after epoch i *)
  detail : string;
}

type outcome = Agree | Diverged of divergence list

val pp_divergence : Format.formatter -> divergence -> unit

val run : ?dir:string -> ?select:string list -> Case.t -> outcome
(** Sanitizes the case, builds oracle and drivers, drives the stream.
    [dir] is the scratch directory for WAL/checkpoint files (a fresh
    temp directory is created and removed when omitted); [select]
    restricts the engine matrix as in {!Engines.build}. Driver [finish]
    hooks always run, even on exceptions. *)

val diverges : ?dir:string -> ?select:string list -> Case.t -> bool
(** [run] collapsed to a predicate — the shrinker's test function. *)
