(** The fuzz loop: generate a case per seed, run the differential
    harness, and on divergence shrink to a 1-minimal reproducer and file
    it in the corpus directory. Everything is reproducible from the
    master seed alone: case [i] of run [--seed S] uses [Seed.case S i],
    and a single-case run ([--runs 1]) uses [S] directly — so the
    "reproduce with" line a failure prints replays exactly. *)

type failure = {
  case_seed : Seed.t;
  family : string;
  divergences : Harness.divergence list;  (** of the un-shrunk case *)
  minimized : Case.t;
  updates : int;  (** stream length of the minimized case *)
  corpus_file : string option;  (** where the reproducer was written *)
}

type summary = {
  seed : Seed.t;
  runs : int;  (** cases executed (may stop early on time budget) *)
  failures : failure list;
}

val run :
  ?runs:int ->
  ?minutes:float ->
  ?select:string list ->
  ?corpus_dir:string ->
  ?log:(string -> unit) ->
  seed:Seed.t ->
  unit ->
  summary
(** Defaults: 100 runs, no time budget, full engine matrix, no corpus
    writes, silent. With [minutes] the loop also stops once the wall
    clock budget is spent (at least one case always runs). [log]
    receives one line per failure and a progress line every 20 cases. *)
