(** Seeded generators for fuzz cases: schemas, ring-valued databases and
    polarized update streams, plus the adversarial value/tuple/update
    distributions the codec round-trip properties reuse. All draws come
    from the caller's [~rng] (see {!Seed}); the same (seed, index) pair
    regenerates the identical case. *)

val join : rng:Random.State.t -> seed:Seed.t -> Case.t
(** A random executable q-hierarchical workload
    ({!Ivm_workload.Random_queries.executable}) with: per-variable value
    domains of 1–4 points (15% string-typed, the rest ints, so joins
    collide often), an initial database of up to 7 rows per relation
    with multiplicities 1–3, and an update stream of up to 40 updates
    whose delete share is drawn from \{0, 0.3, 0.6\} (insert-only /
    mixed / delete-heavy), split into epochs of 1–6 updates. Deletes
    target live tuples, so streams are valid after {!Case.sanitize}. *)

val triangle : rng:Random.State.t -> seed:Seed.t -> Case.t
(** An edge stream over the fixed R(A,B), S(B,C), T(C,A) schema: 2–7
    nodes (small, to force heavy keys), up to 80 ±1-multiplicity
    updates, the same polarity mix as {!join}, epochs of 1–8. *)

val kclique : rng:Random.State.t -> seed:Seed.t -> Case.t
(** A simple-graph edge stream (k ∈ \{3, 4\}, 3–7 nodes, up to 60
    inserts/deletes maintaining the no-loop/no-duplicate invariant). *)

val static_dynamic : rng:Random.State.t -> seed:Seed.t -> Case.t
(** The Sec. 4.5 mixed workload: random initial contents for R, S and
    the static T, then a stream touching only the dynamic R and S. *)

val minmax : rng:Random.State.t -> seed:Seed.t -> Case.t
(** Grouped MIN/MAX over a single R(G, V): 1–3 groups, 2–6 distinct
    values (occasionally string-typed), up to 50 ±1 updates. 60% of
    deletes aim at the currently served extremum of a random group, so
    delete-heavy streams keep forcing the dataflow engine's re-scan
    fallback rather than the cheap not-the-extremum path. *)

val mixed : rng:Random.State.t -> seed:Seed.t -> Case.t
(** The multi-tenant mix: 2–4 namespaced {!Ivm_workload.Mixed} tenants
    of the oracle-backed kinds (join / triangle / minmax / economy,
    with one economy tenant always present), driven by the seeded
    drifting-Zipf generators of [lib/workload] for up to 40 workload
    steps. Economy steps emit debit/credit pairs that sum to zero by
    construction, so the final ring-sum view total is conserved. *)

val case : rng:Random.State.t -> seed:Seed.t -> Case.t
(** Draw a family (join 35%, triangle 18%, kclique 11%, minmax 12%,
    static-dynamic 12%, mixed 12%) and generate a case of it. *)

(** {1 Adversarial primitive distributions}

    These deliberately cover the codec's edge cases: empty tuples and
    strings, [min_int]/[max_int] payloads, long high-byte strings,
    negative and huge floats. They are plain [Random.State.t -> 'a]
    functions, which is exactly QCheck's generator type — the round-trip
    properties in [test/test_check.ml] consume them directly. *)

val value : Random.State.t -> Ivm_data.Value.t
val tuple : Random.State.t -> Ivm_data.Tuple.t
val update : Random.State.t -> int Ivm_data.Update.t
