module R = Random.State
module Cq = Ivm_query.Cq
module Value = Ivm_data.Value
module Tuple = Ivm_data.Tuple
module Update = Ivm_data.Update
module Rq = Ivm_workload.Random_queries

(* --- shared small pieces -------------------------------------------- *)

(* The three polarity modes of the stream generators. *)
let delete_share rng = match R.int rng 3 with 0 -> 0.0 | 1 -> 0.3 | _ -> 0.6

(* Split [rows] into epochs of random sizes in [1, width]. *)
let epochs rng ~width rows =
  let rec go acc rows =
    match rows with
    | [] -> List.rev acc
    | _ ->
        let k = 1 + R.int rng width in
        let rec take k = function
          | x :: tl when k > 0 ->
              let xs, rest = take (k - 1) tl in
              (x :: xs, rest)
          | rest -> ([], rest)
        in
        let chunk, rest = take k rows in
        go (chunk :: acc) rest
  in
  go [] rows

(* A mutable live multiset so deletes target existing tuples; the
   sanitizer still guards, this just keeps delete-heavy streams dense. *)
module Live = struct
  type t = {
    tbl : (string * Value.t list, int) Hashtbl.t;
    mutable keys : (string * Value.t list) array;
    mutable n : int;
  }

  let create () = { tbl = Hashtbl.create 64; keys = Array.make 16 ("", []); n = 0 }

  let add t key p =
    let m = Option.value (Hashtbl.find_opt t.tbl key) ~default:0 in
    if m + p <= 0 then Hashtbl.remove t.tbl key else Hashtbl.replace t.tbl key (m + p);
    if m = 0 && p > 0 then begin
      if t.n = Array.length t.keys then begin
        let keys = Array.make (2 * t.n) ("", []) in
        Array.blit t.keys 0 keys 0 t.n;
        t.keys <- keys
      end;
      t.keys.(t.n) <- key;
      t.n <- t.n + 1
    end

  (* Rejection-sample a currently live key from the append-only list. *)
  let pick t rng =
    let rec go tries =
      if tries = 0 || t.n = 0 then None
      else
        let key = t.keys.(R.int rng t.n) in
        if Hashtbl.mem t.tbl key then Some key else go (tries - 1)
    in
    go 8
end

(* --- join ------------------------------------------------------------ *)

type domain = Ints of int | Strs of int

let sample_domain rng = function
  | Ints d -> Value.Int (R.int rng d)
  | Strs d -> Value.Str ("s" ^ string_of_int (R.int rng d))

let join ~rng ~seed : Case.t =
  let w = Rq.executable ~rng ~id:(seed land 0xffff) in
  let q = w.Rq.query in
  let dom =
    List.map
      (fun v ->
        let d = 1 + R.int rng 4 in
        (v, if R.int rng 100 < 15 then Strs d else Ints d))
      (Cq.vars q)
  in
  let schemas = List.map (fun (a : Cq.atom) -> (a.Cq.rel, a.Cq.vars)) q.Cq.atoms in
  let row_of rel vars payload =
    { Case.rel; values = List.map (fun v -> sample_domain rng (List.assoc v dom)) vars; payload }
  in
  let init =
    List.concat_map
      (fun (rel, vars) ->
        List.init (R.int rng 7) (fun _ -> row_of rel vars (1 + R.int rng 3)))
      schemas
  in
  let live = Live.create () in
  List.iter (fun (r : Case.row) -> Live.add live (r.Case.rel, r.Case.values) r.Case.payload) init;
  let dp = delete_share rng in
  let n = R.int rng 41 in
  let stream =
    List.init n (fun _ ->
        let delete = R.float rng 1.0 < dp in
        let row =
          match (if delete then Live.pick live rng else None) with
          | Some (rel, values) -> { Case.rel; values; payload = -1 }
          | None ->
              let rel, vars = List.nth schemas (R.int rng (List.length schemas)) in
              row_of rel vars (1 + R.int rng 2)
        in
        Live.add live (row.Case.rel, row.Case.values) row.Case.payload;
        row)
  in
  Case.sanitize
    {
      family = Case.Join;
      seed;
      query = Some q;
      order = Some w.Rq.order;
      k = 0;
      schemas;
      init;
      stream = epochs rng ~width:6 stream;
    }

(* --- triangle -------------------------------------------------------- *)

let triangle_schemas = [ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]); ("T", [ "C"; "A" ]) ]

let triangle ~rng ~seed : Case.t =
  let nodes = 2 + R.int rng 6 in
  let dp = delete_share rng in
  let live = Live.create () in
  let n = R.int rng 81 in
  let stream =
    List.init n (fun _ ->
        let delete = R.float rng 1.0 < dp in
        let row =
          match (if delete then Live.pick live rng else None) with
          | Some (rel, values) -> { Case.rel; values; payload = -1 }
          | None ->
              let rel = [| "R"; "S"; "T" |].(R.int rng 3) in
              { Case.rel;
                values = [ Value.Int (1 + R.int rng nodes); Value.Int (1 + R.int rng nodes) ];
                payload = 1 }
        in
        Live.add live (row.Case.rel, row.Case.values) row.Case.payload;
        row)
  in
  Case.sanitize
    {
      family = Case.Triangle;
      seed;
      query = None;
      order = None;
      k = 0;
      schemas = triangle_schemas;
      init = [];
      stream = epochs rng ~width:8 stream;
    }

(* --- kclique --------------------------------------------------------- *)

let kclique ~rng ~seed : Case.t =
  let k = 3 + R.int rng 2 in
  let nodes = 3 + R.int rng 5 in
  let dp = delete_share rng in
  let present = Hashtbl.create 32 in
  let n = R.int rng 61 in
  let stream =
    List.filter_map
      (fun _ ->
        let delete = Hashtbl.length present > 0 && R.float rng 1.0 < dp in
        if delete then begin
          let es = Hashtbl.fold (fun e () acc -> e :: acc) present [] in
          let u, v = List.nth es (R.int rng (List.length es)) in
          Hashtbl.remove present (u, v);
          Some { Case.rel = "E"; values = [ Value.Int u; Value.Int v ]; payload = -1 }
        end
        else
          let u = 1 + R.int rng nodes and v = 1 + R.int rng nodes in
          let u, v = if u <= v then (u, v) else (v, u) in
          if u = v || Hashtbl.mem present (u, v) then None
          else begin
            Hashtbl.replace present (u, v) ();
            Some { Case.rel = "E"; values = [ Value.Int u; Value.Int v ]; payload = 1 }
          end)
      (List.init n Fun.id)
  in
  Case.sanitize
    {
      family = Case.Kclique;
      seed;
      query = None;
      order = None;
      k;
      schemas = [ ("E", [ "U"; "V" ]) ];
      init = [];
      stream = epochs rng ~width:5 stream;
    }

(* --- static/dynamic -------------------------------------------------- *)

let static_dynamic ~rng ~seed : Case.t =
  let module Sd = Ivm_engine.Static_dynamic_engine in
  let q = Sd.query in
  let schemas = List.map (fun (a : Cq.atom) -> (a.Cq.rel, a.Cq.vars)) q.Cq.atoms in
  let dom = 1 + R.int rng 4 in
  let row_of rel arity payload =
    { Case.rel; values = List.init arity (fun _ -> Value.Int (R.int rng dom)); payload }
  in
  let init =
    List.concat_map
      (fun (rel, vars) ->
        List.init (R.int rng 8) (fun _ -> row_of rel (List.length vars) (1 + R.int rng 2)))
      schemas
  in
  let live = Live.create () in
  List.iter (fun (r : Case.row) -> Live.add live (r.Case.rel, r.Case.values) r.Case.payload) init;
  let dp = delete_share rng in
  let n = R.int rng 41 in
  let dynamic = [ "R"; "S" ] in
  let stream =
    List.init n (fun _ ->
        let delete = R.float rng 1.0 < dp in
        let pick_live () =
          match Live.pick live rng with
          | Some ((rel, _) as key) when List.mem rel dynamic -> Some key
          | Some _ | None -> None
        in
        let row =
          match (if delete then pick_live () else None) with
          | Some (rel, values) -> { Case.rel; values; payload = -1 }
          | None ->
              let rel = List.nth dynamic (R.int rng 2) in
              row_of rel 2 (1 + R.int rng 2)
        in
        Live.add live (row.Case.rel, row.Case.values) row.Case.payload;
        row)
  in
  Case.sanitize
    {
      family = Case.Static_dynamic;
      seed;
      query = Some q;
      order = Some Sd.order;
      k = 0;
      schemas;
      init;
      stream = epochs rng ~width:6 stream;
    }

(* --- minmax ----------------------------------------------------------- *)

(* Grouped MIN/MAX over a single R(G, V). Tight domains so groups hold
   few distinct values with repeats, and a biased delete mix that aims
   at the currently served extremum — the dataflow engine's re-scan
   fallback is the point of the family. *)
let minmax ~rng ~seed : Case.t =
  let groups = 1 + R.int rng 3 in
  let vdom = if R.int rng 100 < 20 then Strs (2 + R.int rng 4) else Ints (2 + R.int rng 5) in
  let fresh_row payload =
    { Case.rel = "R";
      values = [ Value.Int (1 + R.int rng groups); sample_domain rng vdom ];
      payload }
  in
  let init = List.init (R.int rng 6) (fun _ -> fresh_row (1 + R.int rng 2)) in
  let live = Live.create () in
  List.iter (fun (r : Case.row) -> Live.add live (r.Case.rel, r.Case.values) r.Case.payload) init;
  (* The live extremum of a random group, by the same [Value.compare]
     order the engines use. *)
  let pick_extremum maximize =
    let pairs =
      Hashtbl.fold
        (fun (_, values) _ acc ->
          match values with [ g; v ] -> (g, v) :: acc | _ -> acc)
        live.Live.tbl []
    in
    match pairs with
    | [] -> None
    | (g0, _) :: _ ->
        let gs = List.sort_uniq Value.compare (List.map fst pairs) in
        let g = try List.nth gs (R.int rng (List.length gs)) with _ -> g0 in
        List.filter (fun (g', _) -> Value.compare g g' = 0) pairs
        |> List.map snd
        |> List.fold_left
             (fun acc v ->
               match acc with
               | None -> Some v
               | Some best ->
                   let c = Value.compare v best in
                   if (maximize && c > 0) || ((not maximize) && c < 0) then Some v
                   else acc)
             None
        |> Option.map (fun v -> ("R", [ g; v ]))
  in
  let dp = delete_share rng in
  let n = R.int rng 51 in
  let stream =
    List.init n (fun _ ->
        let delete = R.float rng 1.0 < dp in
        let target =
          if not delete then None
          else if R.int rng 100 < 60 then pick_extremum (R.bool rng)
          else Live.pick live rng
        in
        let row =
          match target with
          | Some (rel, values) -> { Case.rel; values; payload = -1 }
          | None -> fresh_row 1
        in
        Live.add live (row.Case.rel, row.Case.values) row.Case.payload;
        row)
  in
  Case.sanitize
    {
      family = Case.Minmax;
      seed;
      query = None;
      order = None;
      k = 0;
      schemas = [ ("R", [ "G"; "V" ]) ];
      init;
      stream = epochs rng ~width:6 stream;
    }

(* --- mixed multi-tenant ----------------------------------------------- *)

module Mx = Ivm_workload.Mixed

(* The fuzz-scale slice of the bench-mixed macro-benchmark: 2–4
   namespaced tenants drawn from the oracle-backed kinds (join,
   triangle, minmax, economy — one economy tenant always present, so
   every case carries paired conservation updates), driven by the
   seeded Zipf generators of [lib/workload] whose hot set drifts every
   few ops. Epoch splitting may cut a debit/credit pair in half; both
   the drivers and the per-epoch oracle see the same prefix, so
   agreement is unaffected — only the final total is conserved. *)
let mixed ~rng ~seed : Case.t =
  let kinds = [| Mx.Join; Mx.Economy; Mx.Triangle; Mx.Minmax |] in
  let views = 2 + R.int rng 3 in
  let keys = 2 + R.int rng 5 in
  let tenants =
    List.init views (fun i ->
        let kind = if i = 1 then Mx.Economy else kinds.(R.int rng (Array.length kinds)) in
        Mx.tenant ~index:i kind ~keys)
  in
  let accounts = 3 + R.int rng 4 in
  let wseed = R.bits rng in
  let drift = Mx.Drift.create ~seed:wseed ~keys ~period:(2 + R.int rng 6) in
  let gens =
    Array.of_list (List.map (fun tn -> Mx.Tgen.create ~accounts tn ~drift ~seed:wseed ()) tenants)
  in
  let n = R.int rng 41 in
  let rows =
    List.concat
      (List.init n (fun op ->
           let g = gens.(R.int rng (Array.length gens)) in
           List.map Case.row_of_update (Mx.Tgen.next g ~op)))
  in
  let init =
    List.concat_map
      (fun tn -> List.map Case.row_of_update (Mx.init_updates tn ~accounts))
      tenants
  in
  Case.sanitize
    {
      family = Case.Mixed;
      seed;
      query = None;
      order = None;
      k = 0;
      schemas = List.concat_map (fun tn -> tn.Mx.tables) tenants;
      init;
      stream = epochs rng ~width:6 rows;
    }

let case ~rng ~seed : Case.t =
  match R.int rng 100 with
  | x when x < 35 -> join ~rng ~seed
  | x when x < 53 -> triangle ~rng ~seed
  | x when x < 64 -> kclique ~rng ~seed
  | x when x < 76 -> minmax ~rng ~seed
  | x when x < 88 -> static_dynamic ~rng ~seed
  | _ -> mixed ~rng ~seed

(* --- adversarial primitives for the codec properties ----------------- *)

let value rng : Value.t =
  match R.int rng 10 with
  | 0 -> Value.Int 0
  | 1 -> Value.Int min_int
  | 2 -> Value.Int max_int
  | 3 -> Value.Int (R.int rng 2_000 - 1_000)
  | 4 -> Value.Str ""
  | 5 -> Value.Str (String.init (R.int rng 300) (fun _ -> Char.chr (R.int rng 256)))
  | 6 -> Value.Str (String.make (1 + R.int rng 5) '\xff')
  | 7 ->
      Value.Real
        (match R.int rng 4 with
        | 0 -> 0.
        | 1 -> Float.neg_infinity
        | 2 -> 1e308
        | _ -> float_of_int (R.int rng 1_000 - 500) /. 7.)
  | _ -> Value.Int (R.bits rng - (1 lsl 29))

let tuple rng : Tuple.t = Tuple.init (R.int rng 6) (fun _ -> value rng)

let update rng : int Update.t =
  let rel = String.init (R.int rng 12) (fun _ -> Char.chr (32 + R.int rng 95)) in
  let payload =
    match R.int rng 5 with
    | 0 -> min_int
    | 1 -> max_int
    | 2 -> 0
    | 3 -> -1
    | _ -> R.bits rng - (1 lsl 29)
  in
  Update.make ~rel ~tuple:(tuple rng) ~payload
