module Cq = Ivm_query.Cq
module Vo = Ivm_query.Variable_order
module Value = Ivm_data.Value

let magic = "ivm-repro v1"

(* --- value tokens ----------------------------------------------------
   i<int>, f<%h float> (hex float roundtrips exactly), s<pct-encoded>.
   Percent-encoding keeps every token free of spaces and newlines, so a
   line splits on blanks unambiguously. *)

let enc_string s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> Buffer.add_char b c
      | c -> Buffer.add_string b (Printf.sprintf "%%%02x" (Char.code c)))
    s;
  Buffer.contents b

let dec_string s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        Buffer.add_char b (Char.chr (int_of_string ("0x" ^ String.sub s (i + 1) 2)));
        go (i + 3)
      end
      else begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents b

let enc_value = function
  | Value.Int i -> "i" ^ string_of_int i
  | Value.Str s -> "s" ^ enc_string s
  | Value.Real f -> Printf.sprintf "f%h" f

let dec_value tok =
  if tok = "" then Error "empty value token"
  else
    let body = String.sub tok 1 (String.length tok - 1) in
    match tok.[0] with
    | 'i' -> (try Ok (Value.Int (int_of_string body)) with _ -> Error ("bad int: " ^ tok))
    | 's' -> (try Ok (Value.Str (dec_string body)) with _ -> Error ("bad str: " ^ tok))
    | 'f' -> (try Ok (Value.Real (float_of_string body)) with _ -> Error ("bad float: " ^ tok))
    | _ -> Error ("unknown value token: " ^ tok)

(* --- forest as v0(v1 v2(v3)) ----------------------------------------- *)

let rec enc_tree (t : Vo.t) =
  match t.Vo.children with
  | [] -> t.Vo.var
  | cs -> t.Vo.var ^ "(" ^ String.concat " " (List.map enc_tree cs) ^ ")"

let enc_forest f = String.concat " " (List.map enc_tree f)

exception Parse of string

let dec_forest s : Vo.forest =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () = while !pos < n && s.[!pos] = ' ' do incr pos done in
  let ident () =
    let start = !pos in
    while
      !pos < n && (match s.[!pos] with ' ' | '(' | ')' -> false | _ -> true)
    do
      incr pos
    done;
    if !pos = start then raise (Parse ("expected variable at " ^ string_of_int start));
    String.sub s start (!pos - start)
  in
  let rec tree () =
    let var = ident () in
    skip_ws ();
    match peek () with
    | Some '(' ->
        incr pos;
        let children = trees () in
        skip_ws ();
        (match peek () with
        | Some ')' ->
            incr pos;
            { Vo.var; children }
        | _ -> raise (Parse "expected )"))
    | _ -> { Vo.var; children = [] }
  and trees () =
    skip_ws ();
    match peek () with
    | None | Some ')' -> []
    | Some _ ->
        let t = tree () in
        t :: trees ()
  in
  let f = trees () in
  skip_ws ();
  if !pos <> n then raise (Parse "trailing input in order");
  f

(* --- writing ---------------------------------------------------------- *)

let to_string (case : Case.t) =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "%s" magic;
  line "seed %d" case.Case.seed;
  line "family %s" (Case.family_name case.Case.family);
  if case.Case.k > 0 then line "k %d" case.Case.k;
  (match case.Case.query with
  | None -> ()
  | Some q ->
      line "name %s" (enc_string q.Cq.name);
      line "free %s" (String.concat " " q.Cq.free);
      List.iter
        (fun (a : Cq.atom) -> line "atom %s %s" a.Cq.rel (String.concat " " a.Cq.vars))
        q.Cq.atoms);
  (match case.Case.order with None -> () | Some f -> line "order %s" (enc_forest f));
  List.iter
    (fun (rel, vars) -> line "schema %s %s" rel (String.concat " " vars))
    case.Case.schemas;
  let row kw (r : Case.row) =
    line "%s %s %d %s" kw r.Case.rel r.Case.payload
      (String.concat " " (List.map enc_value r.Case.values))
  in
  List.iter (row "init") case.Case.init;
  List.iter
    (fun rows ->
      line "epoch";
      List.iter (row "up") rows)
    case.Case.stream;
  line "end";
  Buffer.contents b

(* --- reading ---------------------------------------------------------- *)

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

let of_string text =
  try
    let lines =
      String.split_on_char '\n' text
      |> List.map String.trim
      |> List.filter (fun l -> l <> "" && l.[0] <> '#')
    in
    (match lines with
    | m :: _ when m = magic -> ()
    | _ -> raise (Parse ("missing magic line \"" ^ magic ^ "\"")));
    let seed = ref 0 and family = ref None and k = ref 0 in
    let name = ref "Q" and free = ref [] and atoms = ref [] and order = ref None in
    let schemas = ref [] and init = ref [] in
    let stream = ref [] and cur_epoch = ref None and finished = ref false in
    let value_row rest =
      match rest with
      | rel :: payload :: toks ->
          let payload =
            try int_of_string payload with _ -> raise (Parse ("bad payload: " ^ payload))
          in
          let values =
            List.map (fun t -> match dec_value t with Ok v -> v | Error e -> raise (Parse e)) toks
          in
          { Case.rel; values; payload }
      | _ -> raise (Parse "row needs: <rel> <payload> <values...>")
    in
    List.iteri
      (fun i line ->
        if i = 0 || !finished then ()
        else
          let payload_of kw = String.sub line (String.length kw + 1) (String.length line - String.length kw - 1) in
          match split_ws line with
          | "seed" :: v :: _ -> seed := int_of_string v
          | "family" :: v :: _ -> (
              match Case.family_of_name v with
              | Some f -> family := Some f
              | None -> raise (Parse ("unknown family: " ^ v)))
          | "k" :: v :: _ -> k := int_of_string v
          | "name" :: v :: _ -> name := dec_string v
          | "free" :: vs -> free := vs
          | "atom" :: rel :: vars -> atoms := Cq.atom rel vars :: !atoms
          | "order" :: _ -> order := Some (dec_forest (payload_of "order"))
          | "schema" :: rel :: vars -> schemas := (rel, vars) :: !schemas
          | "init" :: rest -> init := value_row rest :: !init
          | "epoch" :: _ ->
              (match !cur_epoch with
              | Some rows -> stream := List.rev rows :: !stream
              | None -> ());
              cur_epoch := Some []
          | "up" :: rest -> (
              match !cur_epoch with
              | Some rows -> cur_epoch := Some (value_row rest :: rows)
              | None -> raise (Parse "up line outside an epoch"))
          | "end" :: _ -> finished := true
          | tok :: _ -> raise (Parse ("unknown directive: " ^ tok))
          | [] -> ())
      lines;
    if not !finished then raise (Parse "missing end line");
    (match !cur_epoch with Some rows -> stream := List.rev rows :: !stream | None -> ());
    let family =
      match !family with Some f -> f | None -> raise (Parse "missing family line")
    in
    let query =
      match (family, List.rev !atoms) with
      | (Case.Join | Case.Static_dynamic), [] -> raise (Parse "query family without atoms")
      | (Case.Join | Case.Static_dynamic), atoms ->
          Some (Cq.make ~name:!name ~free:!free atoms)
      | _ -> None
    in
    Ok
      {
        Case.family;
        seed = !seed;
        query;
        order = !order;
        k = !k;
        schemas = List.rev !schemas;
        init = List.rev !init;
        stream = List.rev !stream;
      }
  with
  | Parse msg -> Error msg
  | Invalid_argument msg -> Error msg
  | Failure msg -> Error msg

let save path case =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (to_string case);
  close_out oc;
  Sys.rename tmp path

let load path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      of_string text

let files dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort compare
    |> List.map (Filename.concat dir)
  else []
