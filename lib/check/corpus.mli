(** Replayable reproducer files ([*.repro]): a line-based, diff-friendly
    serialization of {!Case.t}, checked into [test/corpus/] whenever the
    fuzzer shrinks a divergence. [test/test_corpus.ml] replays every
    file there against the full engine matrix on each [dune runtest].

    Format ("ivm-repro v1"): one directive per line —
    [seed]/[family]/[k], then for query families [name]/[free]/[atom]
    and [order] (forest as [v0(v1 v2(v3))]), then [schema] lines, [init]
    rows, and [epoch]/[up] lines for the stream. Values are tokens:
    [i<int>], [f<hex float>], [s<pct-encoded string>]. *)

val magic : string
(** First line of every reproducer file. *)

val to_string : Case.t -> string
val of_string : string -> (Case.t, string) result

val save : string -> Case.t -> unit
(** Write atomically (temp + rename). *)

val load : string -> (Case.t, string) result

val files : string -> string list
(** The [*.repro] files directly under a directory, sorted; [] when the
    directory does not exist. *)
