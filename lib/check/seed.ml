type t = int

(* splitmix64-style finalizer: adjacent seeds and similar labels must
   yield decorrelated states, or every case of a run would explore
   near-identical shapes. *)
let mix (x : int) : int =
  let x = x lxor (x lsr 30) in
  let x = x * 0x2545f4914f6cdd1d in
  let x = x lxor (x lsr 27) in
  let x = x * 0x14d049bb133111eb in
  x lxor (x lsr 31)

let rng (s : t) = Random.State.make [| mix s; mix (s + 0x9e3779b9) |]
let derive (s : t) label = Random.State.make [| mix s; mix (Hashtbl.hash label) |]
let case (s : t) i = mix ((s * 1_000_003) + i) land max_int
let split rng = Random.State.bits rng land max_int
let pp fmt (s : t) = Format.fprintf fmt "%d" s
