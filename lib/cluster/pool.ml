(** Per-node connection pooling with deadlines and bounded
    jittered-backoff retry.

    An {!endpoint} is a mutable address slot: the router points one at
    each shard's current primary and {!redirect}s it on failover, which
    bumps a generation counter so connections dialed against the dead
    primary are discarded instead of being returned to the pool.
    Checked-out connections are per-caller (a {!Ivm_net.Client.t} is
    not domain-safe), so concurrent domains each get their own.

    {!run} retries only failures {!Ivm_net.Client.retryable} classifies
    as transport-level ([Timeout]/[Closed]/[Eof]/[Io]): the request may
    never have reached the server, so re-sending an idempotent op is
    safe. A [Remote] answer is the server speaking — retrying would
    only repeat it — and is returned as-is. Backoff between attempts is
    exponential with seeded jitter, so a thundering herd of retriers
    decorrelates deterministically under test seeds.

    The [cluster.conn] failpoint fires on checkout — the seam the
    kill-schedule property tests use to inject connection failures on
    the router path without touching a socket. *)

module Client = Ivm_net.Client
module Wire = Ivm_net.Wire
module Fp = Ivm_fault.Failpoint

type endpoint = {
  host : string;
  mutable port : int;
  mutable idle : Client.t list;
  mutable generation : int;
  ep_mutex : Mutex.t;
}

type t = {
  timeout : float;
  attempts : int;
  backoff : float;
  max_backoff : float;
  max_idle : int;
  rng : Random.State.t;
  rng_mutex : Mutex.t;
}

let create ?(timeout = 2.0) ?(attempts = 3) ?(backoff = 0.01) ?(max_backoff = 0.25)
    ?(max_idle = 8) ?(seed = 0) () =
  if attempts < 1 then invalid_arg "Pool.create: attempts < 1";
  {
    timeout;
    attempts;
    backoff;
    max_backoff;
    max_idle;
    rng = Random.State.make [| seed; 0x9E3779B9 |];
    rng_mutex = Mutex.create ();
  }

let timeout t = t.timeout

let endpoint ?(host = "127.0.0.1") ~port () =
  { host; port; idle = []; generation = 0; ep_mutex = Mutex.create () }

let port ep = Mutex.protect ep.ep_mutex (fun () -> ep.port)

let drain ep =
  let idle = Mutex.protect ep.ep_mutex (fun () ->
      let idle = ep.idle in
      ep.idle <- [];
      idle)
  in
  List.iter Client.close idle

let redirect ep ~port =
  Mutex.protect ep.ep_mutex (fun () ->
      ep.port <- port;
      ep.generation <- ep.generation + 1);
  drain ep

(* Checkout: reuse an idle connection or dial a fresh one against the
   endpoint's current address, tagged with the generation it was dialed
   at so a later checkin can tell whether a failover superseded it. *)
let checkout t ep =
  match Fp.hit "cluster.conn" with
  | Some Fp.Fail -> Error (Wire.Io "injected connection failure")
  | other -> (
      (match other with Some (Fp.Delay d) -> Unix.sleepf d | _ -> ());
      let cached, port, gen =
        Mutex.protect ep.ep_mutex (fun () ->
            match ep.idle with
            | c :: rest ->
                ep.idle <- rest;
                (Some c, ep.port, ep.generation)
            | [] -> (None, ep.port, ep.generation))
      in
      match cached with
      | Some c -> Ok (c, gen)
      | None ->
          Result.map
            (fun c -> (c, gen))
            (Client.connect ~host:ep.host ~timeout:t.timeout ~port ()))

let checkin t ep conn gen =
  let keep =
    Mutex.protect ep.ep_mutex (fun () ->
        if gen = ep.generation && List.length ep.idle < t.max_idle then begin
          ep.idle <- conn :: ep.idle;
          true
        end
        else false)
  in
  if not keep then Client.close conn

let jittered_sleep t k =
  let r = Mutex.protect t.rng_mutex (fun () -> Random.State.float t.rng 1.0) in
  let d = t.backoff *. (2. ** float_of_int k) *. (0.5 +. r) in
  Unix.sleepf (Float.min d t.max_backoff)

let run ?attempts t ep f =
  let attempts = Option.value attempts ~default:t.attempts in
  let rec go k last =
    if k >= attempts then Error last
    else begin
      if k > 0 then jittered_sleep t (k - 1);
      match checkout t ep with
      | Error e when Client.retryable e -> go (k + 1) e
      | Error e -> Error e
      | Ok (conn, gen) -> (
          match f conn with
          | Ok v ->
              checkin t ep conn gen;
              Ok v
          | Error e when Client.retryable e ->
              (* The connection is suspect (dead peer, torn stream):
                 never pool it again. *)
              Client.close conn;
              go (k + 1) e
          | Error e ->
              (* A remote/decode answer arrived over a healthy stream —
                 the connection is fine, the answer is final. *)
              checkin t ep conn gen;
              Error e)
    end
  in
  go 0 Wire.Closed

let run_once t ep f = run ~attempts:1 t ep f
