(** One cluster node: WAL + periodic checkpoints + supervised registry
    + epoch scheduler + TCP server, bundled behind start/kill/stop.
    In-process (domains + loopback TCP), but the only way in is the
    wire protocol — the router never touches a node's state directly.

    Durability uses record-index semantics: the checkpoint records how
    many stream records it covers, recovery replays the log past that
    index, and {!recovered} reports the durable record count — the
    resume point a router needs to re-send the lost tail of its send
    log after promoting this node. *)

module St = Ivm_stream

type spec = {
  name : string;
  dir : string;  (** holds [node.wal] and [node.ckpt]; created if absent *)
  port : int;  (** 0 picks an ephemeral port *)
  handlers : int;
  queue_capacity : int;
  checkpoint_every : int;  (** durable records between auto-checkpoints; 0 = never *)
  declare : St.Registry.t -> unit;
      (** declare tables + register views; runs against both fresh and
          checkpoint-restored databases, so ignore duplicate-table
          results *)
  seed_from : string option;
      (** warm-start from this directory's checkpoint + WAL (read-only)
          instead of [dir]'s own; the node's own log starts fresh and
          {!recovered} reports 0 — the standby bootstrap *)
}

val spec :
  ?port:int ->
  ?handlers:int ->
  ?queue_capacity:int ->
  ?checkpoint_every:int ->
  ?seed_from:string ->
  name:string ->
  dir:string ->
  (St.Registry.t -> unit) ->
  spec
(** Defaults: ephemeral port, 2 handlers, queue capacity 8192 (Block
    policy — admission is lossless), no auto-checkpoints. *)

type health = Running | Stopped | Failed of string

val health_name : health -> string

type t

val start : spec -> (t, string) result
(** Recover from [dir] (or [seed_from]): load the checkpoint if one
    exists, replay the WAL past it, then serve. Starting over a fresh
    directory is a cold start; over a killed node's directory it is the
    promotion path. *)

val port : t -> int
val name : t -> string
val dir : t -> string
val applied : t -> int
val recovered : t -> int
(** Durable records replayed at start — where re-sends resume. *)

val registry : t -> St.Registry.t
val metrics : t -> St.Metrics.t
val health : t -> health

val ingest : t -> int Ivm_data.Update.t list -> int * int
(** Push straight into the node's queue, bypassing the wire —
    [(admitted, dropped)]. The standby feeder's path. *)

val kill : t -> unit
(** Crash simulation: drop buffered WAL bytes, close the queue, stop
    the server with zero grace. Idempotent. What a power cut leaves
    behind; {!start} over the same directory recovers it. *)

val stop : t -> unit
(** Graceful: close the queue, drain the scheduler, stop the server,
    close the WAL. Idempotent. *)
