(** The fault-tolerant cluster router: partitions ingest across N
    {!Node}s by {!Topology} policy, merges partial ring payloads on
    reads, and survives node death.

    Robustness machinery, in the order a failure meets it:

    - every wire call rides {!Pool} — per-op deadlines, bounded
      jittered-backoff retry for idempotent ops;
    - a prober domain health-checks each shard's primary over the
      [Health] wire op; [probe_failures] consecutive failures declare
      it dead;
    - a dead primary is failed over: the old node is fenced
      ({!Node.kill} — trivially sound fencing for in-process nodes),
      the standby is retired, and a replacement is started from the
      primary's durable checkpoint + WAL replay on a fresh port; the
      shard's endpoint is redirected so in-flight requests re-route;
    - updates whose relation has no placement policy (no owner) go to
      an in-memory dead-letter buffer instead of vanishing.

    Consistent reads are a two-phase epoch barrier: phase 1 takes the
    write side of the router's ingest lock (pausing all routed ingest),
    phase 2 fences every node with the [Barrier] op — each node answers
    only once everything it admitted is applied and durable. Only then
    are the per-shard snapshots taken and merged, so a merged read
    never mixes one node's epoch [e] with another's [e-1].

    Exactly-once across failover: node acks mean {e queue-admitted},
    not durable, so an abrupt kill can lose an acked tail. The router
    tracks per-shard admitted counts ([sent]); promotion learns the
    durable count ([recovered]) from WAL replay, and the gap
    [(recovered, sent)] is published via {!take_lost} so a driver
    holding its send log can re-send exactly the lost records (to that
    one shard — {!ingest_shard}). Re-sending is sound only because the
    dead node is fenced first (it can never later apply the ambiguous
    tail) and because ring batches commute (re-sent updates may arrive
    out of order with fresh ones). Quiescing ({!barrier}) before a
    planned kill makes the gap empty. *)

module D = Ivm_data
module U = D.Update
module Tuple = D.Tuple
module St = Ivm_stream
module M = Ivm_engine.Maintainable
module Client = Ivm_net.Client
module Wire = Ivm_net.Wire

let ( let* ) = Result.bind

type slot = {
  index : int;
  mutable primary : Node.t;
  mutable standby : Node.t option;
  mutable feeder : unit Domain.t option;
  mutable feeder_conn : Client.t option;
  endpoint : Pool.endpoint;
  mutable alive : bool;
  mutable failed_probes : int;
  mutable sent : int;  (* records acked into this shard, in send order *)
  mutable failovers : int;
  mutable lost : (int * int) list;  (* acked-but-lost index ranges, newest first *)
  sm : Mutex.t;
}

type t = {
  topo : Topology.t;
  pool : Pool.t;
  slots : slot array;
  base_dir : string;
  handlers : int;
  queue_capacity : int;
  checkpoint_every : int;
  standby : bool;
  probe_failures : int;
  auto_failover : bool;
  declare : St.Registry.t -> unit;
  ingest_lock : St.Rwlock.t;
  dead_mutex : Mutex.t;
  mutable dead : int U.t list;  (* newest first *)
  stop_flag : bool Atomic.t;
  mutable prober : unit Domain.t option;
}

let err_str e = Wire.error_to_string e

let trace_on = lazy (Sys.getenv_opt "IVM_CLUSTER_TRACE" <> None)

let trace msg =
  if Lazy.force trace_on then
    Printf.eprintf "[%.4f router] %s\n%!" (Unix.gettimeofday ()) (msg ())

(* --- standby ----------------------------------------------------------- *)

let stop_feeder slot =
  (match slot.feeder_conn with Some c -> Client.close c | None -> ());
  slot.feeder_conn <- None;
  (match slot.feeder with Some d -> Domain.join d | None -> ());
  slot.feeder <- None

(* The standby is advisory: a warm replica fed one delta per applied
   primary epoch over the subscription op, good for stale reads and a
   lag signal. Promotion never trusts it — the durable files are the
   authority — so failing to arm one degrades nothing but warmth. *)
let arm_standby t slot =
  let dir =
    Filename.concat t.base_dir
      (Printf.sprintf "shard%d/standby%d" slot.index slot.failovers)
  in
  let sspec =
    Node.spec
      ~name:(Printf.sprintf "shard%d-standby" slot.index)
      ~dir ~handlers:1 ~queue_capacity:t.queue_capacity
      ~seed_from:(Node.dir slot.primary) t.declare
  in
  match Node.start sspec with
  | Error _ -> ()
  | Ok sb -> (
      match Client.connect ~port:(Node.port slot.primary) () with
      | Error _ ->
          slot.standby <- Some sb (* warm state, no live feed *)
      | Ok conn -> (
          match Client.subscribe conn with
          | Error _ ->
              Client.close conn;
              slot.standby <- Some sb
          | Ok () ->
              slot.standby <- Some sb;
              slot.feeder_conn <- Some conn;
              slot.feeder <-
                Some
                  (Domain.spawn (fun () ->
                       let rec pump () =
                         match Client.next_delta conn with
                         | Ok (_epoch, updates) ->
                             ignore (Node.ingest sb updates);
                             pump ()
                         | Error _ -> () (* primary died or we were closed *)
                       in
                       pump ()))))

(* --- failover ---------------------------------------------------------- *)

let confirmed_dead slot =
  Mutex.protect slot.sm (fun () -> not slot.alive)
  ||
  match Node.health slot.primary with Node.Failed _ -> true | _ -> false

(* Promote: fence the old primary, retire the standby, start the
   replacement from the primary's durable directory on a fresh port,
   redirect the endpoint, publish the acked-but-lost range, re-arm a
   standby. Serialized per slot; a concurrent caller that lost the race
   sees a healthy promoted primary and returns without work. *)
let fail_over_slot t slot : (float * int, string) result =
  Mutex.protect slot.sm (fun () ->
      if slot.alive && Node.health slot.primary = Node.Running then Ok (0., slot.sent)
      else begin
        let t0 = Unix.gettimeofday () in
        Node.kill slot.primary;
        stop_feeder slot;
        (match slot.standby with Some sb -> Node.kill sb | None -> ());
        slot.standby <- None;
        let pspec =
          Node.spec
            ~name:(Printf.sprintf "shard%d" slot.index)
            ~dir:(Node.dir slot.primary) ~handlers:t.handlers
            ~queue_capacity:t.queue_capacity ~checkpoint_every:t.checkpoint_every
            t.declare
        in
        match Node.start pspec with
        | Error m -> Error (Printf.sprintf "shard %d promotion failed: %s" slot.index m)
        | Ok node ->
            let recovered = Node.recovered node in
            trace (fun () ->
                Printf.sprintf "shard %d promoted: recovered=%d sent=%d lost=%s"
                  slot.index recovered slot.sent
                  (if recovered < slot.sent then
                     Printf.sprintf "(%d,%d)" recovered slot.sent
                   else "none"));
            if recovered < slot.sent then slot.lost <- (recovered, slot.sent) :: slot.lost;
            slot.sent <- recovered;
            slot.primary <- node;
            slot.alive <- true;
            slot.failed_probes <- 0;
            slot.failovers <- slot.failovers + 1;
            Pool.redirect slot.endpoint ~port:(Node.port node);
            if t.standby then arm_standby t slot;
            Ok (Unix.gettimeofday () -. t0, recovered)
      end)

let fail_over t ~shard =
  if shard < 0 || shard >= Array.length t.slots then Error "no such shard"
  else fail_over_slot t t.slots.(shard)

let kill_primary t ~shard =
  let slot = t.slots.(shard) in
  Node.kill slot.primary;
  Mutex.protect slot.sm (fun () -> slot.alive <- false)

(* --- ingest ------------------------------------------------------------ *)

let dead_letter t us =
  if us <> [] then
    Mutex.protect t.dead_mutex (fun () -> t.dead <- List.rev_append us t.dead)

let dead_letters t = Mutex.protect t.dead_mutex (fun () -> List.rev t.dead)
let dead_letter_count t = Mutex.protect t.dead_mutex (fun () -> List.length t.dead)

let rec drop k = function xs when k <= 0 -> xs | [] -> [] | _ :: rest -> drop (k - 1) rest

(* Send one batch to one shard. No transport retry — ingest is not
   idempotent and an ack lost in flight is ambiguous. The one re-route:
   if the primary is confirmed dead, fail over (fencing resolves the
   ambiguity — the durable count says exactly which prefix of the batch
   survived) and send the unsurvived suffix to the promoted node.

   The slot mutex is held across the RPC itself, not just the counter
   bump: a promotion that slipped between a dying primary's ack and our
   [sent] update would compute its lost range against a count missing
   that ack, and the acked records would silently fall outside every
   published range. Serializing sends with promotions closes the window
   (a send in flight delays a prober promotion by at most the op
   deadline). *)
let rec send_to_slot t slot batch ~rerouted : (int, string) result =
  match
    Mutex.protect slot.sm (fun () ->
        match Pool.run_once t.pool slot.endpoint (fun c -> Client.ingest c batch) with
        | Ok (admitted, dropped) ->
            slot.sent <- slot.sent + admitted;
            if dropped > 0 || admitted < List.length batch then
              trace (fun () ->
                  Printf.sprintf "shard %d ingest short: batch=%d admitted=%d sent=%d"
                    slot.index (List.length batch) admitted slot.sent);
            Ok admitted
        | Error e ->
            trace (fun () ->
                Printf.sprintf "shard %d ingest error: batch=%d sent=%d err=%s"
                  slot.index (List.length batch) slot.sent (err_str e));
            Error e)
  with
  | Ok admitted -> Ok admitted
  | Error e when (not rerouted) && Client.retryable e && confirmed_dead slot
                 && t.auto_failover -> (
      let sent_before = Mutex.protect slot.sm (fun () -> slot.sent) in
      match fail_over_slot t slot with
      | Error m -> Error m
      | Ok (_dt, recovered) ->
          (* [recovered - sent_before] leading records of this batch
             reached the dead primary's durable log and were replayed
             into the promotion — only the suffix may be re-sent, but
             both count as admitted from the caller's point of view. *)
          let skip = max 0 (recovered - sent_before) in
          let batch = drop skip batch in
          if batch = [] then Ok skip
          else Result.map (fun n -> skip + n) (send_to_slot t slot batch ~rerouted:true))
  | Error e -> Error (Printf.sprintf "shard %d ingest: %s" slot.index (err_str e))

let route_buckets t updates =
  let buckets = Array.make (Array.length t.slots) [] in
  let unowned = ref [] in
  List.iter
    (fun u ->
      match Topology.owners t.topo ~rel:u.U.rel u.U.tuple with
      | None -> unowned := u :: !unowned
      | Some owners ->
          List.iter (fun i -> buckets.(i) <- u :: buckets.(i)) owners)
    updates;
  (Array.map List.rev buckets, List.rev !unowned)

let ingest t updates : (int * int, string) result =
  St.Rwlock.read t.ingest_lock (fun () ->
      let buckets, unowned = route_buckets t updates in
      dead_letter t unowned;
      let result = ref (Ok 0) in
      Array.iteri
        (fun i batch ->
          match !result with
          | Error _ -> ()
          | Ok acc ->
              if batch <> [] then
                result :=
                  Result.map
                    (fun n -> acc + n)
                    (send_to_slot t t.slots.(i) batch ~rerouted:false))
        buckets;
      Result.map (fun admitted -> (admitted, List.length unowned)) !result)

let ingest_shard t ~shard updates : (int, string) result =
  if shard < 0 || shard >= Array.length t.slots then Error "no such shard"
  else
    St.Rwlock.read t.ingest_lock (fun () ->
        send_to_slot t t.slots.(shard) updates ~rerouted:false)

let take_lost t ~shard =
  let slot = t.slots.(shard) in
  Mutex.protect slot.sm (fun () ->
      let l = List.rev slot.lost in
      slot.lost <- [];
      l)

let has_lost t ~shard =
  let slot = t.slots.(shard) in
  Mutex.protect slot.sm (fun () -> slot.lost <> [])

(* Resolve an ambiguous ingest: a transport error may hide an
   admission (the node admitted the batch, then the connection died
   before the ack crossed), leaving [sent] lower than the node's truth
   and a later blind retry would duplicate records. Fence the shard
   (promoting it first if it is confirmed dead) and read the absorbed
   count straight off the node: after a fence, recovered + applied is
   exactly the number of records ever admitted from us. [sent] is
   trued up to it, and the caller compares it against its own send log
   to learn how much of the failed batch actually landed. *)
let rec reconcile_sent t ~shard : (int, string) result =
  if shard < 0 || shard >= Array.length t.slots then Error "no such shard"
  else begin
    let slot = t.slots.(shard) in
    if confirmed_dead slot then
      if t.auto_failover then
        match fail_over_slot t slot with
        | Error m -> Error m
        | Ok _ -> reconcile_sent t ~shard
      else Error (Printf.sprintf "shard %d primary is dead" shard)
    else
      Mutex.protect slot.sm (fun () ->
          match
            Pool.run t.pool slot.endpoint (fun c ->
                Client.set_timeout c (Some (20. *. Pool.timeout t.pool));
                let r = Client.barrier c in
                Client.set_timeout c (Some (Pool.timeout t.pool));
                r)
          with
          | Error e -> Error (Printf.sprintf "shard %d fence: %s" shard (err_str e))
          | Ok (_ : int) ->
              let absorbed = Node.recovered slot.primary + Node.applied slot.primary in
              trace (fun () ->
                  Printf.sprintf "shard %d reconcile_sent: absorbed=%d sent_was=%d"
                    shard absorbed slot.sent);
              slot.sent <- absorbed;
              Ok absorbed)
  end

(* --- reads ------------------------------------------------------------- *)

(* Idempotent read against one shard: pool-level retry first; if the
   primary is confirmed dead, fail over and re-run against the
   promoted node — this is the in-flight re-route. *)
let read_slot t slot f =
  match Pool.run t.pool slot.endpoint f with
  | Ok v -> Ok v
  | Error e when Client.retryable e && t.auto_failover && confirmed_dead slot -> (
      match fail_over_slot t slot with
      | Error m -> Error (Wire.Remote m)
      | Ok _ -> Pool.run t.pool slot.endpoint f)
  | Error e -> Error e

(* Ring-sum merge of per-shard partial enumerations: associativity and
   commutativity of the payload ring make the fold order irrelevant,
   zero sums are elided, and the result is sorted into the canonical
   entry order. *)
let merge_entries (lists : (Tuple.t * int) list list) =
  let tbl = Tuple.Tbl.create 256 in
  List.iter
    (List.iter (fun (tp, p) ->
         let s = (match Tuple.Tbl.find_opt tbl tp with Some q -> q | None -> 0) + p in
         if s = 0 then Tuple.Tbl.remove tbl tp else Tuple.Tbl.replace tbl tp s))
    lists;
  Tuple.Tbl.fold (fun tp p acc -> (tp, p) :: acc) tbl []
  |> List.sort (fun (t1, p1) (t2, p2) ->
         match Tuple.compare t1 t2 with 0 -> compare p1 p2 | c -> c)

(* Extremum/top-k merge — NOT a ring sum. Each shard reports its local
   first-k slots per group as [(group..., value)] rows whose payload is
   the number of slots the value holds locally. Summing those reports
   per (group, value) and recomputing the first k slots of the merged
   value multiset is exact: a shard under-reports a value only when
   better local values fill its k slots, and those values also precede
   it globally, so Σ_s min(m_s, k − better_s) ≥ min(Σ_s m_s,
   k − better_global) — every globally winning slot is covered, and the
   recompute caps the (possibly over-reported) rest. *)
module Vmap = Map.Make (D.Value)

let merge_extremal ~desc ~k (lists : (Tuple.t * int) list list) =
  let groups = Tuple.Tbl.create 64 in
  List.iter
    (List.iter (fun (tp, p) ->
         if p > 0 && Tuple.arity tp >= 1 then begin
           let a = Tuple.arity tp in
           let g = Tuple.project tp (Array.init (a - 1) Fun.id) in
           let v = Tuple.get tp (a - 1) in
           let vm = Option.value (Tuple.Tbl.find_opt groups g) ~default:Vmap.empty in
           let cur = Option.value (Vmap.find_opt v vm) ~default:0 in
           Tuple.Tbl.replace groups g (Vmap.add v (cur + p) vm)
         end))
    lists;
  Tuple.Tbl.fold
    (fun g vm acc ->
      let seq = if desc then Vmap.to_rev_seq vm else Vmap.to_seq vm in
      let rec take left acc seq =
        if left <= 0 then acc
        else
          match Seq.uncons seq with
          | None -> acc
          | Some ((v, m), rest) ->
              let slots = min m left in
              let row = Tuple.of_list (Tuple.to_list g @ [ v ]) in
              take (left - slots) ((row, slots) :: acc) rest
      in
      take k acc seq)
    groups []
  |> List.sort (fun (t1, p1) (t2, p2) ->
         match Tuple.compare t1 t2 with 0 -> compare p1 p2 | c -> c)

let read_all t f =
  Array.fold_left
    (fun acc slot ->
      let* lists = acc in
      let* entries = Result.map_error err_str (read_slot t slot f) in
      Ok (entries :: lists))
    (Ok []) t.slots

let read_any t f =
  let rec go i last =
    if i >= Array.length t.slots then Error last
    else
      match read_slot t t.slots.(i) f with
      | Ok v -> Ok v
      | Error e -> go (i + 1) (err_str e)
  in
  go 0 "no shards"

(* Single-node reads are filtered to the same canonical form the merge
   produces: no zero-payload entries (some engines enumerate an
   explicit 0-count row, which a ring sum cancels away). *)
let drop_zeros entries = List.filter (fun (_, p) -> p <> 0) entries

let read_view t ~view ~prefix =
  match Topology.route t.topo view with
  | Topology.Keyed when Tuple.arity prefix >= 1 ->
      (* The first output column is the partition key: one owner. *)
      let slot = t.slots.(Topology.key_owner t.topo (Tuple.get prefix 0)) in
      Result.fold
        ~ok:(fun e -> Ok (drop_zeros e))
        ~error:(fun e -> Error (err_str e))
        (read_slot t slot (fun c -> Client.lookup c ~view ~prefix))
  | Topology.Replicated ->
      Result.map drop_zeros (read_any t (fun c -> Client.lookup c ~view ~prefix))
  | Topology.Extremal { desc; k } ->
      Result.map (merge_extremal ~desc ~k)
        (read_all t (fun c -> Client.lookup c ~view ~prefix))
  | Topology.Keyed | Topology.Scattered ->
      Result.map merge_entries (read_all t (fun c -> Client.lookup c ~view ~prefix))

let lookup t ~view ~prefix = St.Rwlock.read t.ingest_lock (fun () -> read_view t ~view ~prefix)

(* --- the two-phase epoch barrier --------------------------------------- *)

(* Fence one node. The fence may legitimately take longer than a
   point op (it waits for the node's queue to drain), so the per-op
   deadline is stretched for the barrier call and restored before the
   connection returns to the pool. *)
let fence_slot t slot =
  read_slot t slot (fun c ->
      Client.set_timeout c (Some (20. *. Pool.timeout t.pool));
      let r = Client.barrier c in
      Client.set_timeout c (Some (Pool.timeout t.pool));
      r)

let fence_all t =
  Array.fold_left
    (fun acc slot ->
      let* epochs = acc in
      let* e = Result.map_error err_str (fence_slot t slot) in
      Ok (e :: epochs))
    (Ok []) t.slots
  |> Result.map (fun es -> Array.of_list (List.rev es))

let barrier t =
  St.Rwlock.write t.ingest_lock (fun () -> fence_all t)

let quiesced t f =
  (* Run [f] while the cluster is fenced and routed ingest is paused —
     the planned-kill hook: nothing acked is undurable at the moment
     [f] runs, so a kill inside [f] cannot lose acked records. *)
  St.Rwlock.write t.ingest_lock (fun () ->
      let* (_ : int array) = fence_all t in
      Ok (f ()))

let snapshot t ~view =
  (* Phase 1: the write side of the ingest lock — no routed update can
     be admitted anywhere while held. Phase 2: fence every node, so
     everything admitted before the pause is applied everywhere. Only
     then read: the merge cannot mix epochs across nodes. *)
  St.Rwlock.write t.ingest_lock (fun () ->
      let* (_ : int array) = fence_all t in
      read_view t ~view ~prefix:(Tuple.of_list []))

let fingerprint t ~view = Result.map M.entries_fingerprint (snapshot t ~view)

(* --- status / prober --------------------------------------------------- *)

type shard_status = {
  shard : int;
  port : int;
  alive : bool;
  node_health : string;
  failovers : int;
  sent : int;
  applied : int;
  has_standby : bool;
  standby_lag : int option;
  lost_ranges : (int * int) list;
}

let status t =
  Array.to_list
    (Array.map
       (fun slot ->
         Mutex.protect slot.sm (fun () ->
             {
               shard = slot.index;
               port = Pool.port slot.endpoint;
               alive = slot.alive;
               node_health = Node.health_name (Node.health slot.primary);
               failovers = slot.failovers;
               sent = slot.sent;
               applied = Node.applied slot.primary;
               has_standby = slot.standby <> None;
               standby_lag =
                 Option.map
                   (fun sb -> max 0 (Node.applied slot.primary - Node.applied sb))
                   slot.standby;
               lost_ranges = List.rev slot.lost;
             }))
       t.slots)

let probe_once t slot =
  if Mutex.protect slot.sm (fun () -> slot.alive) then
    match Pool.run ~attempts:1 t.pool slot.endpoint Client.health with
    | Ok _ -> slot.failed_probes <- 0
    | Error _ ->
        slot.failed_probes <- slot.failed_probes + 1;
        if slot.failed_probes >= t.probe_failures then begin
          Mutex.protect slot.sm (fun () -> slot.alive <- false);
          if t.auto_failover then ignore (fail_over_slot t slot)
        end

let prober_loop t ~interval =
  while not (Atomic.get t.stop_flag) do
    Unix.sleepf interval;
    if not (Atomic.get t.stop_flag) then Array.iter (probe_once t) t.slots
  done

(* --- lifecycle --------------------------------------------------------- *)

let start ?(handlers = 2) ?(queue_capacity = 8192) ?(checkpoint_every = 2048)
    ?(standby = true) ?(probe_interval = 0.05) ?(probe_failures = 3)
    ?(auto_failover = true) ?(timeout = 2.0) ?(attempts = 3) ?(backoff = 0.01)
    ?(seed = 0) ~base_dir ~topology ~declare () : (t, string) result =
  let pool = Pool.create ~timeout ~attempts ~backoff ~seed () in
  let n = Topology.shard_count topology in
  let slots = ref [] in
  let rec boot i =
    if i >= n then Ok ()
    else
      let dir = Filename.concat base_dir (Printf.sprintf "shard%d/primary" i) in
      let pspec =
        Node.spec
          ~name:(Printf.sprintf "shard%d" i)
          ~dir ~handlers ~queue_capacity ~checkpoint_every declare
      in
      match Node.start pspec with
      | Error m -> Error (Printf.sprintf "shard %d: %s" i m)
      | Ok node ->
          let slot =
            {
              index = i;
              primary = node;
              standby = None;
              feeder = None;
              feeder_conn = None;
              endpoint = Pool.endpoint ~port:(Node.port node) ();
              alive = true;
              failed_probes = 0;
              sent = Node.recovered node;
              failovers = 0;
              lost = [];
              sm = Mutex.create ();
            }
          in
          slots := slot :: !slots;
          boot (i + 1)
  in
  match boot 0 with
  | Error m ->
      List.iter (fun s -> Node.stop s.primary) !slots;
      Error m
  | Ok () ->
      let t =
        {
          topo = topology;
          pool;
          slots = Array.of_list (List.rev !slots);
          base_dir;
          handlers;
          queue_capacity;
          checkpoint_every;
          standby;
          probe_failures;
          auto_failover;
          declare;
          ingest_lock = St.Rwlock.create ();
          dead_mutex = Mutex.create ();
          dead = [];
          stop_flag = Atomic.make false;
          prober = None;
        }
      in
      if standby then Array.iter (fun slot -> arm_standby t slot) t.slots;
      if probe_interval > 0. then
        t.prober <- Some (Domain.spawn (fun () -> prober_loop t ~interval:probe_interval));
      Ok t

let shard_count t = Array.length t.slots
let topology t = t.topo
let shard_port t ~shard = Pool.port t.slots.(shard).endpoint
let primary t ~shard = Mutex.protect t.slots.(shard).sm (fun () -> t.slots.(shard).primary)
let shard_sent t ~shard = Mutex.protect t.slots.(shard).sm (fun () -> t.slots.(shard).sent)

let stop t =
  Atomic.set t.stop_flag true;
  (match t.prober with Some d -> Domain.join d | None -> ());
  t.prober <- None;
  Array.iter
    (fun slot ->
      stop_feeder slot;
      (match slot.standby with Some sb -> Node.stop sb | None -> ());
      slot.standby <- None;
      Node.stop slot.primary;
      Pool.drain slot.endpoint)
    t.slots
