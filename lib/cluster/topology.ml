(** Where data lives in the cluster: per-relation placement policies
    and per-view read routes over [2^k] shards.

    The shard function is {!Ivm_par.Sharded_relation.shard_index} — the
    same upper-hash-bits split the in-process sharded tables use, so a
    tuple's owner node and owner table always agree.

    Soundness is the paper's algebra, with one distributed caveat.
    Per-relation, every query is {e linear}: Q(..., R + ΔR, ...) =
    Q(..., R, ...) + Q(..., ΔR, ...). So splitting {e one} relation
    across shards and broadcasting the rest makes the true answer the
    ring sum of the per-shard answers ({!Scattered}). Joins are {e
    multilinear}, not jointly linear, so splitting {e two} relations is
    only sound when they are co-partitioned on a shared join variable
    ({!Hash_col} on both sides of the equality) — then every join match
    is local to one shard and the cross terms that naive tuple-hash
    splitting would lose cannot exist. A view over relations that are
    all {!Broadcast} is fully replicated: summing shard answers would
    multiply it by the shard count, so it must read {!Replicated} (any
    one healthy node). *)

module Tuple = Ivm_data.Tuple
module Value = Ivm_data.Value

type policy =
  | Hash_col of int  (** partition by one column — co-partitionable *)
  | Hash_tuple  (** partition by whole-tuple hash — at most one such
                    relation per view, or co-partition instead *)
  | Broadcast  (** replicate to every shard *)

type route =
  | Keyed
      (** outputs are partitioned by the view's first output column
          (the partitioned relations' shared join key): a bound-prefix
          lookup goes to exactly one owner shard *)
  | Scattered  (** outputs are disjoint across shards: read all, ring-sum *)
  | Replicated  (** every shard holds the full answer: read one healthy node *)
  | Extremal of { desc : bool; k : int }
      (** extremum/top-k view: per-shard rows are [(group..., value)]
          with payload = slots occupied among the shard's local first
          [k]; reads merge by {e recomputing} the first [k] slots of
          the per-group value multiset union — an extremum is not a
          ring sum *)

let policy_name = function
  | Hash_col i -> Printf.sprintf "hash_col(%d)" i
  | Hash_tuple -> "hash_tuple"
  | Broadcast -> "broadcast"

let route_name = function
  | Keyed -> "keyed"
  | Scattered -> "scattered"
  | Replicated -> "replicated"
  | Extremal { desc; k } ->
      Printf.sprintf "extremal(%s, k=%d)" (if desc then "max" else "min") k

type t = {
  shards : int;
  mask : int;
  policies : (string, policy) Hashtbl.t;
  routes : (string, route) Hashtbl.t;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ~shards ~policies ~routes =
  let shards = next_pow2 (max 1 shards) in
  let pt = Hashtbl.create 8 and rt = Hashtbl.create 8 in
  List.iter (fun (rel, p) -> Hashtbl.replace pt rel p) policies;
  List.iter (fun (view, r) -> Hashtbl.replace rt view r) routes;
  { shards; mask = shards - 1; policies = pt; routes = rt }

let shard_count t = t.shards
let all_shards t = List.init t.shards Fun.id
let policy t rel = Hashtbl.find_opt t.policies rel
let route t view = Option.value (Hashtbl.find_opt t.routes view) ~default:Scattered
let relations t = Hashtbl.fold (fun rel p acc -> (rel, p) :: acc) t.policies []

(* A column key is hashed as the 1-tuple holding it, so the lookup side
   ([key_owner] on a bound prefix value) and the ingest side
   ([owners] on a full tuple's column) agree by construction. *)
let key_owner t v = Ivm_par.Sharded_relation.shard_index ~mask:t.mask (Tuple.of_list [ v ])

let owners t ~rel tuple =
  match policy t rel with
  | None -> None (* unknown relation: the router dead-letters it *)
  | Some Broadcast -> Some (all_shards t)
  | Some Hash_tuple -> Some [ Ivm_par.Sharded_relation.shard_index ~mask:t.mask tuple ]
  | Some (Hash_col i) ->
      if i < 0 || i >= Tuple.arity tuple then None
      else Some [ key_owner t (Tuple.get tuple i) ]
