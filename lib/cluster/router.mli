(** Fault-tolerant cluster router: shard-hash partitioned ingest over N
    {!Node}s, ring-sum merged reads, two-phase epoch-barrier consistent
    snapshots, health probing, and replica failover with exactly-once
    re-send accounting. See the implementation header for the failure
    model and the re-send soundness argument. *)

module D = Ivm_data
module Wire = Ivm_net.Wire

type t

val start :
  ?handlers:int ->
  ?queue_capacity:int ->
  ?checkpoint_every:int ->
  ?standby:bool ->
  ?probe_interval:float ->
  ?probe_failures:int ->
  ?auto_failover:bool ->
  ?timeout:float ->
  ?attempts:int ->
  ?backoff:float ->
  ?seed:int ->
  base_dir:string ->
  topology:Topology.t ->
  declare:(Ivm_stream.Registry.t -> unit) ->
  unit ->
  (t, string) result
(** Boot one node per shard under [base_dir]/shardN/primary (recovering
    any durable state already there), arm a warm standby per shard when
    [standby] (default true), and start the health prober when
    [probe_interval] > 0 (default 50 ms; [probe_failures] consecutive
    failed probes declare a primary dead and, when [auto_failover],
    promote). [timeout]/[attempts]/[backoff] parameterize the
    connection pool. *)

val stop : t -> unit
val shard_count : t -> int
val topology : t -> Topology.t
val shard_port : t -> shard:int -> int
val shard_sent : t -> shard:int -> int

(** {1 Ingest} *)

val ingest : t -> int D.Update.t list -> (int * int, string) result
(** Route a batch to owner shards and send; [(admitted,
    dead_lettered)]. Not idempotent: a transport failure against a
    live-but-slow shard is returned as an error without blind retry. A
    confirmed-dead shard is failed over in place and only the
    not-yet-durable suffix of the in-flight batch is re-sent. *)

val ingest_shard : t -> shard:int -> int D.Update.t list -> (int, string) result
(** Send a batch to one explicit shard, bypassing routing — for
    re-sending a lost range from a driver's send log (broadcast updates
    must not be re-routed to healthy shards). *)

val dead_letters : t -> int D.Update.t list
(** Updates that had no owner (unknown relation, or hash column out of
    range), oldest first. *)

val dead_letter_count : t -> int

val take_lost : t -> shard:int -> (int * int) list
(** Drain the shard's acked-but-lost ranges: each [(from, upto)] means
    send-log records with indices [from <= i < upto] (0-based, in send
    order) were acked by a primary that died before making them
    durable. The caller re-sends them via {!ingest_shard}. Empty when
    every kill was preceded by {!barrier}. *)

val has_lost : t -> shard:int -> bool
(** Whether the shard has published lost ranges not yet drained — a
    non-draining peek. Never use {!take_lost} to test for emptiness:
    it drains, and discarding the result silently abandons the
    records. *)

val reconcile_sent : t -> shard:int -> (int, string) result
(** Resolve an ambiguous ingest after a transport error that may have
    hidden an admission (the node admitted the batch, then the
    connection died before the ack crossed). Promotes the shard first
    if its primary is confirmed dead, fences it, and returns the
    node's absorbed record count — the authoritative number of records
    ever admitted from this router. The router's internal send counter
    is trued up to it; a driver compares the count against its own
    send log to learn how much of the failed batch actually landed,
    instead of blindly re-sending (which would duplicate records). *)

(** {1 Reads} *)

val lookup :
  t -> view:string -> prefix:D.Tuple.t -> ((D.Tuple.t * int) list, string) result
(** Route by the view's {!Topology.route}: [Keyed] with a non-empty
    prefix goes to the key's owner; [Replicated] reads any one healthy
    node; otherwise fan out and ring-sum merge. Best-effort with
    respect to in-flight ingest (no barrier). *)

val snapshot : t -> view:string -> ((D.Tuple.t * int) list, string) result
(** Cluster-consistent enumeration: pause routed ingest (phase 1),
    fence every node with the barrier op (phase 2), then read and
    merge — the result never mixes epochs across nodes. *)

val fingerprint : t -> view:string -> (int, string) result
(** Order-insensitive digest of {!snapshot} — comparable against a
    single-node reference's view fingerprint. *)

val barrier : t -> (int array, string) result
(** The two-phase fence alone: every update admitted before the call
    is applied and durable everywhere when it returns (per-node epoch
    numbers, in shard order). Run before a planned kill to guarantee
    {!take_lost} stays empty. *)

val quiesced : t -> (unit -> 'a) -> ('a, string) result
(** Fence the cluster and run [f] while routed ingest is still paused —
    a kill inside [f] cannot lose acked records, and benches can
    measure promotion with nothing in flight. *)

val primary : t -> shard:int -> Node.t
(** The shard's current primary — an in-process escape hatch for
    harnesses inspecting registries/metrics directly. The handle goes
    stale across a failover. *)

(** {1 Failure handling} *)

val kill_primary : t -> shard:int -> unit
(** Crash the shard's primary ({!Node.kill}) and mark it dead — the
    test/bench hook. The prober or the next routed request triggers
    (or, with [auto_failover:false], surfaces) the failure. *)

val fail_over : t -> shard:int -> (float * int, string) result
(** Promote the shard now: fence the dead primary, retire the standby,
    restart from the durable directory on a fresh port, redirect the
    endpoint, re-arm a standby. Returns [(seconds, recovered)]. No-op
    [(0., sent)] if the primary is healthy. *)

(** {1 Status} *)

type shard_status = {
  shard : int;
  port : int;
  alive : bool;
  node_health : string;
  failovers : int;
  sent : int;
  applied : int;
  has_standby : bool;
  standby_lag : int option;  (** primary applied - standby applied *)
  lost_ranges : (int * int) list;
}

val status : t -> shard_status list
