(** Per-node connection pooling with deadlines and bounded
    jittered-backoff retry — the router's transport layer.

    Every dialed connection carries the pool's per-op deadline
    ({!Ivm_net.Client.connect}'s [timeout]), so a dead peer costs a
    bounded [Timeout], never a hang. {!run} retries only transport
    failures ({!Ivm_net.Client.retryable}) with exponential backoff and
    seeded jitter; server answers ([Remote]) are final. Endpoints are
    mutable address slots: {!redirect} repoints one at a promoted
    replica and generation-tags the pool so stale connections are
    discarded, which is how in-flight requests re-route across a
    failover. The [cluster.conn] failpoint fires on checkout, for
    seeded fault-schedule tests. *)

module Client = Ivm_net.Client
module Wire = Ivm_net.Wire

type t
type endpoint

val create :
  ?timeout:float ->
  ?attempts:int ->
  ?backoff:float ->
  ?max_backoff:float ->
  ?max_idle:int ->
  ?seed:int ->
  unit ->
  t
(** Defaults: 2 s per-op deadline, 3 attempts, 10 ms base backoff
    doubling per attempt with jitter in [0.5, 1.5), capped at 250 ms,
    at most 8 pooled idle connections per endpoint. *)

val timeout : t -> float

val endpoint : ?host:string -> port:int -> unit -> endpoint
val port : endpoint -> int

val redirect : endpoint -> port:int -> unit
(** Point the endpoint at a new address (failover). Bumps the
    generation: pooled and in-flight connections dialed before the
    redirect are closed instead of reused. *)

val drain : endpoint -> unit
(** Close every pooled idle connection. *)

val run :
  ?attempts:int ->
  t ->
  endpoint ->
  (Client.t -> ('a, Wire.error) result) ->
  ('a, Wire.error) result
(** Check out a connection (pooled or fresh), run [f], return the
    connection to the pool on success. Transport failures retry up to
    [attempts] times (default: the pool's) on fresh connections with
    jittered backoff; only use this for idempotent ops. *)

val run_once :
  t -> endpoint -> (Client.t -> ('a, Wire.error) result) -> ('a, Wire.error) result
(** One attempt, no retry — for non-idempotent ops (ingest), where the
    caller must decide re-send safety (e.g. only after the peer is
    confirmed dead). *)
