(** Cluster data placement: per-relation partitioning policies and
    per-view read routes over a power-of-two shard count, all driven by
    the one shard function the in-process sharded tables already use
    ({!Ivm_par.Sharded_relation.shard_index}).

    Soundness: queries are linear per relation but only multilinear
    jointly, so a view may split at most one relation by arbitrary
    tuple hash ({!Hash_tuple}) with the rest {!Broadcast}, or
    co-partition several relations on a shared join column
    ({!Hash_col}); either way the true answer is the ring sum of
    per-shard answers ({!Scattered}) or lives wholly on an owner shard
    ({!Keyed}). Views whose relations are all {!Broadcast} are fully
    replicated on every shard and must read {!Replicated} — one
    healthy node, never a sum. *)

module Tuple = Ivm_data.Tuple
module Value = Ivm_data.Value

type policy =
  | Hash_col of int
      (** partition by the value in this column: relations sharing a
          join variable can co-partition on it, making every join
          match shard-local *)
  | Hash_tuple
      (** partition by whole-tuple hash; sound for at most one
          relation of any given view *)
  | Broadcast  (** replicate every update to all shards *)

type route =
  | Keyed
      (** outputs partitioned by first output column: a bound prefix
          routes to its one owner shard *)
  | Scattered  (** per-shard partial answers; reads ring-sum them *)
  | Replicated  (** full copy everywhere; reads pick one healthy node *)
  | Extremal of { desc : bool; k : int }
      (** extremum/top-k view over a partitioned input: per-shard rows
          are [(group..., value)] with payload = slots held among the
          shard's local first [k] ([desc] false = MIN/smallest-k, true
          = MAX/largest-k); reads recompute the first [k] slots of the
          merged per-group value multiset instead of ring-summing.
          Sound because a shard only under-reports a value when better
          local values fill its [k] slots — values that also precede it
          globally — so summed reports cover every globally winning
          slot. *)

val policy_name : policy -> string
val route_name : route -> string

type t

val create :
  shards:int -> policies:(string * policy) list -> routes:(string * route) list -> t
(** [shards] is rounded up to a power of two. Unlisted views default to
    {!Scattered}; updates on unlisted relations find no owner (the
    router dead-letters them). *)

val shard_count : t -> int
val all_shards : t -> int list
val policy : t -> string -> policy option
val route : t -> string -> route
val relations : t -> (string * policy) list

val key_owner : t -> Value.t -> int
(** The owner shard of a partition-key value — where a {!Keyed} lookup
    with this bound first column goes. Agrees with {!owners} on any
    tuple carrying the value in its hash column. *)

val owners : t -> rel:string -> Tuple.t -> int list option
(** The shards an update on [rel] must reach: one for hash policies,
    all for {!Broadcast}. [None] when the relation is unknown or the
    hash column is out of range — no owner exists. *)
