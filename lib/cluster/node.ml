(** One cluster node: the full durable serve pipeline — WAL, periodic
    checkpoints, supervised registry, epoch scheduler, TCP server —
    bundled behind start/kill/stop, in-process (each node still runs
    its scheduler and connection handlers on its own domains and is
    reached only over loopback TCP).

    Durability follows the chaos harness's record-index convention: the
    checkpoint's [wal_offset] field stores how many stream records it
    covers, and recovery replays the whole log once, skipping records
    up to that index. Recovery is therefore [load checkpoint; replay
    suffix], and {!recovered} reports the durable record count — what a
    router uses after promoting this node to know which suffix of its
    per-shard send log to re-send.

    {!kill} is the crash simulation: buffered WAL bytes are dropped
    ({!Ivm_stream.Wal.Z.crash}), the queue closes, and the server stops
    with zero grace — exactly what a power cut leaves behind. A
    subsequent {!start} over the same directory is the recovery path
    the promotion logic rides. *)

module D = Ivm_data
module Db = D.Database.Z
module U = D.Update
module St = Ivm_stream
module Server = Ivm_net.Server

type spec = {
  name : string;
  dir : string;  (** holds [node.wal] and [node.ckpt] *)
  port : int;  (** 0 picks an ephemeral port *)
  handlers : int;
  queue_capacity : int;
  checkpoint_every : int;  (** durable records between auto-checkpoints; 0 = never *)
  declare : St.Registry.t -> unit;
      (** declare tables and register views; runs against fresh {e and}
          restored databases, so it must tolerate already-declared
          tables (ignore the [declare_table] result) *)
  seed_from : string option;
      (** load the initial state from this directory's checkpoint + WAL
          (read-only) instead of [dir]'s own — how a standby warms up
          from its primary's durable state; the node's own log still
          lives in [dir] and starts fresh *)
}

let spec ?(port = 0) ?(handlers = 2) ?(queue_capacity = 8192) ?(checkpoint_every = 0)
    ?seed_from ~name ~dir declare =
  { name; dir; port; handlers; queue_capacity; checkpoint_every; declare; seed_from }

type health = Running | Stopped | Failed of string

let health_name = function
  | Running -> "running"
  | Stopped -> "stopped"
  | Failed msg -> "failed: " ^ msg

type t = {
  spec : spec;
  metrics : St.Metrics.t;
  registry : St.Registry.t;
  wal : St.Wal.Z.t;
  queue : St.Scheduler.item St.Queue.t;
  sched : St.Scheduler.t;
  server : Server.t;
  recovered : int;  (** durable records replayed at start *)
  mutable runner : unit Domain.t option;
  mutable health : health;
  mutable torn_down : bool;  (* kill or stop already ran *)
  mutex : Mutex.t;
}

let wal_file dir = Filename.concat dir "node.wal"
let ckpt_file dir = Filename.concat dir "node.ckpt"

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let ( let* ) = Result.bind

(* Rebuild a database + registry from [state_dir]'s durable files:
   checkpoint (if any) plus a full-log replay that skips the records
   the checkpoint already covers. Returns the registry and the durable
   record count. *)
let recover ~metrics ~declare state_dir =
  let db, ckpt_index =
    if Sys.file_exists (ckpt_file state_dir) then
      match St.Checkpoint.Z.load (ckpt_file state_dir) with
      | Ok (db, idx) -> (db, idx)
      | Error _ -> (Db.create (), 0) (* corrupt checkpoint: from the log alone *)
    else (Db.create (), 0)
  in
  let reg = St.Registry.create ~metrics db in
  declare reg;
  let replayed = ref 0 in
  let pending = ref [] in
  let flush () =
    if !pending <> [] then St.Registry.apply_batch reg (List.rev !pending);
    pending := []
  in
  let* () =
    if Sys.file_exists (wal_file state_dir) then
      let* (_ : int) =
        St.Wal.Z.replay (wal_file state_dir) ~from:St.Wal.header_len (fun u ->
            incr replayed;
            if !replayed > ckpt_index then begin
              pending := u :: !pending;
              if List.length !pending >= 256 then flush ()
            end)
      in
      Ok ()
    else Ok ()
  in
  flush ();
  Ok (reg, max !replayed ckpt_index)

let start (spec : spec) : (t, string) result =
  mkdir_p spec.dir;
  let metrics = St.Metrics.create () in
  let state_dir = Option.value spec.seed_from ~default:spec.dir in
  let to_msg r = Result.map_error St.Errors.to_string r in
  let* reg, recovered = to_msg (recover ~metrics ~declare:spec.declare state_dir) in
  (* A seeded node inherits the state but not the log: its own WAL
     starts fresh, so its durable record counter restarts at zero. *)
  let recovered = if spec.seed_from = None then recovered else 0 in
  (match spec.seed_from with
  | Some _ when Sys.file_exists (wal_file spec.dir) -> Sys.remove (wal_file spec.dir)
  | _ -> ());
  let* wal = to_msg (St.Wal.Z.open_log (wal_file spec.dir)) in
  let queue = St.Queue.create ~capacity:spec.queue_capacity St.Queue.Block in
  let server_ref = ref None in
  (* The scheduler hands the per-relation delta front; the server
     flattens it into the wire frame. This is the path the router's
     barrier fences: once [Scheduler.barrier] returns, every front up
     to the fence has been published. *)
  let on_apply ~epoch front =
    match !server_ref with
    | Some srv -> Server.publish_delta srv ~epoch front
    | None -> ()
  in
  let sched =
    St.Scheduler.create ~wal ~queue ~registry:reg ~metrics ~initial_batch:64 ~on_apply ()
  in
  let ingest ups =
    List.fold_left
      (fun (a, d) u ->
        if St.Queue.push queue (St.Scheduler.item u) then (a + 1, d) else (a, d + 1))
      (0, 0) ups
  in
  (* Epoch-token sessions: the token is the queue watermark right after
     the batch's pushes (a concurrent producer can only inflate it —
     waiting on a higher token is conservative, never stale). *)
  let ingest_rw ups =
    let admitted, dropped = ingest ups in
    (admitted, dropped, St.Queue.pushed queue)
  in
  match
    Server.start ~port:spec.port ~handlers:spec.handlers ~ingest ~ingest_rw
      ~served:(fun () -> St.Scheduler.applied sched)
      ~barrier:(fun () -> St.Scheduler.barrier sched)
      ~on_shutdown:(fun () -> St.Queue.close queue)
      ~registry:reg ~metrics ()
  with
  | Error e -> Error (Ivm_net.Wire.error_to_string e)
  | Ok server ->
      server_ref := Some server;
      let t =
        {
          spec;
          metrics;
          registry = reg;
          wal;
          queue;
          sched;
          server;
          recovered;
          runner = None;
          health = Running;
          torn_down = false;
          mutex = Mutex.create ();
        }
      in
      (* A scheduler failure must be externally visible — a node whose
         server kept answering while nothing applied would look alive
         to the router forever. So the runner's failure path crashes
         the whole node: abort the scheduler (waking barrier waiters
         into a clean error), drop buffered WAL bytes, close the queue,
         slam the server. Runs on the runner domain itself, so it never
         joins the runner — kill/stop do that. *)
      let fail msg =
        let first =
          Mutex.protect t.mutex (fun () ->
              let first = not t.torn_down in
              t.torn_down <- true;
              if t.health = Running then t.health <- Failed msg;
              first)
        in
        if first then begin
          St.Scheduler.abort sched;
          St.Wal.Z.crash wal;
          St.Queue.close queue;
          Server.stop ~grace:0. server
        end
      in
      (* Periodic checkpoints ride the epoch hook; a checkpoint that
         cannot be made durable crashes the node (raise → the runner's
         failure path), which is what the chaos scenarios inject. *)
      let next_ckpt = ref ((recovered / max 1 spec.checkpoint_every) + 1) in
      let on_epoch s =
        if spec.checkpoint_every > 0 then begin
          let durable = recovered + St.Scheduler.applied s in
          if durable >= !next_ckpt * spec.checkpoint_every then begin
            incr next_ckpt;
            match
              St.Checkpoint.Z.save (ckpt_file spec.dir) ~db:(St.Registry.db reg)
                ~wal_offset:durable
            with
            | Ok () -> ()
            | Error e -> failwith (St.Errors.to_string e)
          end
        end
      in
      t.runner <-
        Some
          (Domain.spawn (fun () ->
               match St.Scheduler.run ~on_epoch sched with
               | Ok () ->
                   Mutex.protect t.mutex (fun () ->
                       if t.health = Running then t.health <- Stopped)
               | Error e -> fail (St.Errors.to_string e)
               | exception e -> fail (Printexc.to_string e)));
      Ok t

let port t = Server.port t.server
let applied t = St.Scheduler.applied t.sched
let recovered t = t.recovered
let registry t = t.registry
let metrics t = t.metrics
let name t = t.spec.name
let dir t = t.spec.dir
let health t = Mutex.protect t.mutex (fun () -> t.health)

let ingest t ups =
  List.fold_left
    (fun (a, d) u ->
      if St.Queue.push t.queue (St.Scheduler.item u) then (a + 1, d) else (a, d + 1))
    (0, 0) ups

let join_runner t =
  match Mutex.protect t.mutex (fun () ->
      let r = t.runner in
      t.runner <- None;
      r)
  with
  | Some d -> Domain.join d
  | None -> ()

let kill t =
  let first =
    Mutex.protect t.mutex (fun () ->
        let first = not t.torn_down in
        t.torn_down <- true;
        if first then t.health <- Failed "killed";
        first)
  in
  if first then begin
    (* Crash order matters: drop the WAL's buffered bytes first, so
       nothing acked-but-unsynced survives; then close the queue so the
       scheduler stops (its next WAL append fails on the dead log);
       then slam the server with zero grace. *)
    St.Wal.Z.crash t.wal;
    St.Queue.close t.queue;
    Server.stop ~grace:0. t.server
  end;
  (* Even when the runner already tore itself down, reap its domain. *)
  join_runner t

let stop t =
  let first =
    Mutex.protect t.mutex (fun () ->
        let first = not t.torn_down in
        t.torn_down <- true;
        first)
  in
  if first then begin
    St.Queue.close t.queue;
    join_runner t;
    Server.stop t.server;
    St.Wal.Z.close t.wal;
    Mutex.protect t.mutex (fun () ->
        match t.health with Failed _ -> () | _ -> t.health <- Stopped)
  end
  else join_runner t
