(** A durable append-only update log with explicit byte offsets,
    CRC-checked records and replay. Pair {!Make.append}'s returned
    offset with a {!Checkpoint} snapshot and [restore + replay] is
    equivalent to having applied the log directly. A torn tail (record
    cut short by a crash, or failing its checksum) ends replay at the
    last complete record and is truncated on re-open.

    All load-and-append paths are result-typed over {!Errors.t}; file
    I/O is routed through {!Ivm_fault.Io} under the ["wal"] tag, so a
    fault harness can inject short writes, failed fsyncs and bit flips
    at the exact syscall boundaries. *)

module Codec = Ivm_data.Codec

val header_len : int
(** Bytes of file magic; the offset of the first record. *)

module Make (P : Codec.PAYLOAD) : sig
  type t

  val open_log : string -> (t, Errors.t) result
  (** Open for appending, creating the file if needed. An existing log
      is scanned and any torn tail truncated, so appends always extend
      a valid prefix. *)

  val offset : t -> int
  (** The current end offset: the replay cursor for state that includes
      everything appended so far. *)

  val path : t -> string

  val append : t -> P.t Ivm_data.Update.t -> (int, Errors.t) result
  (** Append one record, returning the offset after it. Buffered; call
      {!sync} to make it durable (the scheduler syncs once per epoch). *)

  val append_batch : t -> P.t Ivm_data.Update.t list -> (int, Errors.t) result

  val sync : t -> (unit, Errors.t) result
  (** Flush and [fsync]: on [Ok ()] every appended record survives a
      crash. *)

  val close : t -> unit

  val crash : t -> unit
  (** Simulate a crash: drop buffered (never-synced) bytes and close the
      descriptor, leaving on disk exactly the durable prefix. *)

  val replay : string -> from:int -> (P.t Ivm_data.Update.t -> unit) -> (int, Errors.t) result
  (** [replay path ~from f] feeds every complete record at offset
      [>= from] to [f], returning the offset after the last one. A torn
      or corrupt tail silently ends the replay; a missing or foreign
      file is an [Error] — replaying it would silently lose the log. *)

  val record_count : string -> (int, Errors.t) result
  (** Number of complete records in the log — what a crash harness uses
      as "how many updates are durable". *)
end

(** The default instance: integer-multiplicity updates (the Z ring). *)
module Z : sig
  type t

  val open_log : string -> (t, Errors.t) result
  val offset : t -> int
  val path : t -> string
  val append : t -> int Ivm_data.Update.t -> (int, Errors.t) result
  val append_batch : t -> int Ivm_data.Update.t list -> (int, Errors.t) result
  val sync : t -> (unit, Errors.t) result
  val close : t -> unit
  val crash : t -> unit
  val replay : string -> from:int -> (int Ivm_data.Update.t -> unit) -> (int, Errors.t) result
  val record_count : string -> (int, Errors.t) result
end
