(** A durable append-only update log with explicit byte offsets,
    CRC-checked records and replay. Pair {!Make.append}'s returned
    offset with a {!Checkpoint} snapshot and [restore + replay] is
    equivalent to having applied the log directly. A torn tail (record
    cut short by a crash, or failing its checksum) ends replay at the
    last complete record and is truncated on re-open. *)

module Codec = Ivm_data.Codec

val header_len : int
(** Bytes of file magic; the offset of the first record. *)

module Make (P : Codec.PAYLOAD) : sig
  type t

  val open_log : string -> t
  (** Open for appending, creating the file if needed. An existing log
      is scanned and any torn tail truncated, so appends always extend
      a valid prefix. *)

  val offset : t -> int
  (** The current end offset: the replay cursor for state that includes
      everything appended so far. *)

  val path : t -> string

  val append : t -> P.t Ivm_data.Update.t -> int
  (** Append one record, returning the offset after it. Buffered; call
      {!sync} to flush (the scheduler syncs once per epoch). *)

  val append_batch : t -> P.t Ivm_data.Update.t list -> int
  val sync : t -> unit
  val close : t -> unit

  val replay : string -> from:int -> (P.t Ivm_data.Update.t -> unit) -> int
  (** [replay path ~from f] feeds every complete record at offset
      [>= from] to [f], returning the offset after the last one. A torn
      or corrupt tail silently ends the replay.
      @raise Invalid_argument when the file is not a WAL. *)
end

(** The default instance: integer-multiplicity updates (the Z ring). *)
module Z : sig
  type t

  val open_log : string -> t
  val offset : t -> int
  val path : t -> string
  val append : t -> int Ivm_data.Update.t -> int
  val append_batch : t -> int Ivm_data.Update.t list -> int
  val sync : t -> unit
  val close : t -> unit
  val replay : string -> from:int -> (int Ivm_data.Update.t -> unit) -> int
end
