(** The structured error type of the durability layer. Everything that
    can go wrong loading or appending durable state — an I/O failure
    (real or injected), a file that is not ours, a checksum or decode
    failure — comes back as one of these instead of an exception, so
    the runtime and the CLI handle faults as values: retry, fall back
    to an older checkpoint, or print one clean line instead of a
    backtrace. *)

type t =
  | Io of Ivm_fault.Io.error
      (** the OS (or an injected fault) refused an operation *)
  | Bad_magic of { path : string; expected : string }
      (** the file exists but is not a WAL/checkpoint of this format *)
  | Corrupt of { path : string; detail : string }
      (** framing or checksum failure on a body that should be intact *)

let io e = Error (Io e)

let pp ppf = function
  | Io e -> Ivm_fault.Io.pp_error ppf e
  | Bad_magic { path; expected } ->
      Format.fprintf ppf "%s: not a %s file (bad magic)" path expected
  | Corrupt { path; detail } -> Format.fprintf ppf "%s: corrupt (%s)" path detail

let to_string e = Format.asprintf "%a" pp e

let get_ok = function
  | Ok v -> v
  | Error e -> failwith (to_string e)

let injected = function
  | Io { Ivm_fault.Io.injected = i; _ } -> i
  | Bad_magic _ | Corrupt _ -> false
