(** The epoch micro-batcher: the maintenance loop between the ingestion
    queue and the registered views.

    Each epoch (i) pops up to [batch_limit] queued updates, (ii) makes
    them durable — WAL append + flush — *before* any view sees them,
    (iii) coalesces per (relation, tuple) with the ring add, sound
    because ring payloads make batches commute (Sec. 2) and often a
    large win under skew (an insert/delete pair cancels to nothing),
    and (iv) hands the coalesced batch to {!Registry.apply_batch}.

    The batch limit adapts to observed apply latency toward a target:
    halved when an epoch overshoots 1.5x the target (bounding staleness
    and enqueue→applied latency), doubled when a *full* epoch finishes
    under half the target (amortizing per-epoch overhead when the
    stream is heavy). This is the classic micro-batching control loop
    of DBSP-style streaming systems, sized here by measurement rather
    than configuration. *)

module Update = Ivm_data.Update
module Tuple = Ivm_data.Tuple
module Flat_tbl = Ivm_data.Flat_tbl

let ( let* ) = Result.bind

type item = { update : int Update.t; enqueued_at : float }

let item u = { update = u; enqueued_at = Unix.gettimeofday () }

type t = {
  queue : item Queue.t;
  registry : Registry.t;
  wal : Wal.Z.t option;
  metrics : Metrics.t;
  target : float; (* target epoch apply latency, seconds *)
  min_batch : int;
  max_batch : int;
  sync_retries : int; (* extra fsync attempts before giving up an epoch *)
  self_check_every : int option; (* epochs between fingerprint self-checks *)
  on_apply : (epoch:int -> (string * int Update.t list) list -> unit) option;
      (* delta-subscription fan-out: the coalesced front just applied *)
  coalescer : (string, int Flat_tbl.t) Hashtbl.t;
      (* per-relation coalescing accumulators, reused across epochs: a
         capacity-preserving [Flat_tbl.clear] after each emit keeps the
         tables' arrays alive, so steady-state epochs allocate no fresh
         buffers for coalescing *)
  mutable limit : int; (* the adaptive batch cap *)
  mutable applied : int; (* updates applied so far (pre-coalescing) *)
  mutable front : (string * int Update.t list) list;
      (* the per-relation coalesced delta front of the most recently
         applied epoch — what {!delta_front} serves *)
  barrier_mutex : Mutex.t;
  barrier_cond : Condition.t;
      (* broadcast after every epoch: the rendezvous {!barrier} waits on *)
  mutable finished : bool; (* the loop exited (drained or durability error) *)
}

let create ?wal ?(target_latency = 0.002) ?(min_batch = 16) ?(max_batch = 65_536)
    ?initial_batch ?(sync_retries = 3) ?self_check_every ?on_apply ~queue ~registry ~metrics () =
  if min_batch < 1 || max_batch < min_batch then
    invalid_arg "Scheduler.create: need 1 <= min_batch <= max_batch";
  let limit =
    match initial_batch with
    | Some b -> max min_batch (min max_batch b)
    | None -> max min_batch (min max_batch 1024)
  in
  {
    queue;
    registry;
    wal;
    metrics;
    target = target_latency;
    min_batch;
    max_batch;
    sync_retries;
    self_check_every;
    on_apply;
    coalescer = Hashtbl.create 4;
    limit;
    applied = 0;
    front = [];
    barrier_mutex = Mutex.create ();
    barrier_cond = Condition.create ();
    finished = false;
  }

let batch_limit t = t.limit
let applied t = t.applied
let metrics t = t.metrics
let registry t = t.registry
let delta_front t = t.front

(* Coalesce an epoch per (relation, tuple): nested tables because the
   outer generic Hashtbl must never key on Tuple.t directly (its
   memoized-hash field breaks structural hashing). Zero sums are elided
   incrementally — an insert/delete pair inside one epoch vanishes
   entirely, and because stored sums are never zero the default-0 probe
   is unambiguous. The accumulators live in [t] and are cleared
   (capacity preserved) after the emit, so an epoch at steady state
   reuses last epoch's buffers instead of reallocating them. *)
let coalesce_front t (items : item list) : (string * int Update.t list) list =
  let per_rel = t.coalescer in
  List.iter
    (fun { update = u; _ } ->
      let table =
        match Hashtbl.find_opt per_rel u.Update.rel with
        | Some tbl -> tbl
        | None ->
            let tbl = Flat_tbl.create ~size:64 0 in
            Hashtbl.add per_rel u.Update.rel tbl;
            tbl
      in
      let tuple = u.Update.tuple in
      let s = Flat_tbl.find_default table tuple 0 + u.Update.payload in
      if s = 0 then Flat_tbl.remove table tuple else Flat_tbl.set table tuple s)
    items;
  Hashtbl.fold
    (fun rel table acc ->
      let ups =
        Flat_tbl.fold
          (fun tuple p acc -> Update.make ~rel ~tuple ~payload:p :: acc)
          table []
      in
      Flat_tbl.clear table;
      if ups = [] then acc else (rel, ups) :: acc)
    per_rel []

let coalesce t items = List.concat_map snd (coalesce_front t items)

(* A failed fsync does not mean lost data — the bytes are still in the
   log — so a transient failure (injected or a blip) is worth retrying
   before declaring the epoch undurable. *)
let rec sync_retrying w retries =
  match Wal.Z.sync w with
  | Ok () -> Ok ()
  | Error e -> if retries <= 0 then Error e else sync_retrying w (retries - 1)

(* Epoch rendezvous plumbing: [signal_epoch] wakes barrier waiters
   after every applied epoch; [signal_finished] wakes them for good when
   the loop exits (drained or durability error), so no fence ever hangs
   on a scheduler that will not run again. *)
let signal_epoch t =
  Mutex.protect t.barrier_mutex (fun () -> Condition.broadcast t.barrier_cond)

let signal_finished t =
  Mutex.protect t.barrier_mutex (fun () ->
      t.finished <- true;
      Condition.broadcast t.barrier_cond)

(** Run one epoch. [Ok false] means the stream ended: the queue is
    closed and fully drained. [Error _] is a durability failure — the
    popped updates were {e not} applied (crash-and-recover semantics:
    they are replayed from the last durable state). View failures never
    surface here; they are handled by the registry's supervision. *)
let step_inner t : (bool, Errors.t) result =
  match Queue.pop_batch t.queue ~max:t.limit with
  | [] -> Ok false
  | items ->
      let n = List.length items in
      (* Durability first: every popped update reaches the log before
         any view sees it, so a crash mid-epoch replays the whole
         epoch from the previous checkpoint state. *)
      let* () =
        match t.wal with
        | Some w ->
            let* _offset =
              Wal.Z.append_batch w (List.map (fun { update; _ } -> update) items)
            in
            sync_retrying w t.sync_retries
        | None -> Ok ()
      in
      let front = coalesce_front t items in
      t.front <- front;
      let coalesced = List.fold_left (fun n (_, ups) -> n + List.length ups) 0 front in
      let t0 = Unix.gettimeofday () in
      Registry.apply_front t.registry front;
      let applied_at = Unix.gettimeofday () in
      let dt = applied_at -. t0 in
      List.iter
        (fun { enqueued_at; _ } ->
          Metrics.Hist.add t.metrics.Metrics.latency (applied_at -. enqueued_at))
        items;
      t.metrics.Metrics.epochs <- t.metrics.Metrics.epochs + 1;
      t.metrics.Metrics.ingested <- t.metrics.Metrics.ingested + n;
      t.metrics.Metrics.coalesced <- t.metrics.Metrics.coalesced + coalesced;
      t.applied <- t.applied + n;
      (* Fan the applied epoch's front out to delta subscribers after
         the views have absorbed it, so a subscriber that re-reads the
         server never observes a delta before the state reflecting it. *)
      (match t.on_apply with
      | Some f when front <> [] -> f ~epoch:t.metrics.Metrics.epochs front
      | Some _ | None -> ());
      if dt > 1.5 *. t.target then t.limit <- max t.min_batch (t.limit / 2)
      else if dt < 0.5 *. t.target && n >= t.limit then
        t.limit <- min t.max_batch (t.limit * 2);
      (match t.self_check_every with
      | Some k when k > 0 && t.metrics.Metrics.epochs mod k = 0 ->
          ignore (Registry.self_check t.registry)
      | _ -> ());
      Ok true

let step t : (bool, Errors.t) result =
  match step_inner t with
  | Ok true as r ->
      signal_epoch t;
      r
  | (Ok false | Error _) as r ->
      signal_finished t;
      r

(* The two-phase cluster fence, phase 2: admit nothing new (the caller
   — the router — pauses ingest first), then wait until everything the
   queue has ever admitted is applied. The target is read before the
   wait, so the fence covers exactly the updates admitted before the
   call; with ingest paused, that is all of them. Waiters ride the
   per-epoch broadcast; a scheduler that exits before reaching the
   target fails the fence instead of hanging it. *)
let barrier t : (int, string) result =
  let target = Queue.pushed t.queue in
  Mutex.protect t.barrier_mutex (fun () ->
      let rec wait () =
        if t.applied >= target then Ok t.metrics.Metrics.epochs
        else if t.finished then Error "scheduler stopped before the fence"
        else begin
          Condition.wait t.barrier_cond t.barrier_mutex;
          wait ()
        end
      in
      wait ())

(* An exception escaping the driving loop (an [on_epoch] hook, say)
   bypasses [step]'s finished signal; whoever catches it aborts the
   scheduler so barrier waiters fail instead of hanging. *)
let abort t = signal_finished t

(** Drain the stream to its end, calling [on_epoch] after every epoch
    (live stats, periodic checkpoints). Stops at the first durability
    error. *)
let run ?(on_epoch = fun (_ : t) -> ()) t =
  let rec loop () =
    match step t with
    | Ok true ->
        on_epoch t;
        loop ()
    | Ok false -> Ok ()
    | Error _ as e -> e
  in
  loop ()
