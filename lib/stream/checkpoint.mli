(** Checkpoints: a CRC-framed snapshot of the base database paired with
    the WAL offset it is current through. The recovery contract —
    asserted in [test/test_stream.ml] — is
    [load + Registry.restore + Wal.replay ≡ direct apply].

    Installation is atomic and durable: write temp file, fsync it,
    rename into place, fsync the directory. A crash at any point leaves
    either the previous checkpoint or the new one. All I/O goes through
    {!Ivm_fault.Io} under the ["ckpt"] tag, and every failure is a
    result over {!Errors.t}, not an exception. *)

module Codec = Ivm_data.Codec

module Make (R : Ivm_ring.Sigs.SEMIRING) (P : Codec.PAYLOAD with type t = R.t) : sig
  module Db : module type of Ivm_data.Database.Make (R)

  val save : string -> db:Db.t -> wal_offset:int -> (unit, Errors.t) result

  val load : string -> (Db.t * int, Errors.t) result
  (** [Error (Bad_magic _)] when the file is not a checkpoint,
      [Error (Corrupt _)] on a checksum or parse failure, [Error (Io _)]
      when the file cannot be read. *)
end

(** The default instance: the Z ring of tuple multiplicities. *)
module Z : sig
  val save : string -> db:Ivm_data.Database.Z.t -> wal_offset:int -> (unit, Errors.t) result
  val load : string -> (Ivm_data.Database.Z.t * int, Errors.t) result
end
