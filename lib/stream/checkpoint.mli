(** Checkpoints: a CRC-framed snapshot of the base database paired with
    the WAL offset it is current through. The recovery contract —
    asserted in [test/test_stream.ml] — is
    [load + Registry.restore + Wal.replay ≡ direct apply]. Writes are
    atomic (temp file + rename), so a crash mid-checkpoint leaves the
    previous checkpoint intact. *)

module Codec = Ivm_data.Codec

module Make (R : Ivm_ring.Sigs.SEMIRING) (P : Codec.PAYLOAD with type t = R.t) : sig
  module Db : module type of Ivm_data.Database.Make (R)

  val save : string -> db:Db.t -> wal_offset:int -> unit

  val load : string -> Db.t * int
  (** @raise Failure on a missing magic or checksum mismatch. *)
end

(** The default instance: the Z ring of tuple multiplicities. *)
module Z : sig
  val save : string -> db:Ivm_data.Database.Z.t -> wal_offset:int -> unit
  val load : string -> Ivm_data.Database.Z.t * int
end
