(** The multi-view server: N registered views maintained off one shared
    update stream.

    The registry owns the authoritative base database — the durable
    truth that checkpoints snapshot — and a list of registered views,
    each built by a *factory* from a database. Keeping the factory
    around is what makes crash recovery uniform: restore re-runs every
    factory against the restored base state, so any engine that can
    preprocess a database (view trees, strategies, kernels fed tuple by
    tuple) becomes recoverable without engine-specific serialization.

    [apply_batch] routes each view the sub-batch on its relations and
    fans the independent views across an {!Ivm_par.Domain_pool}: views
    share nothing (each preprocessed its own copies at build time), so
    view-level parallelism needs no commutativity argument at all — it
    is plain task parallelism over disjoint state. The base database is
    one more task on the same barrier. *)

module Db = Ivm_data.Database.Z
module Update = Ivm_data.Update
module M = Ivm_engine.Maintainable

type entry = { view : M.t; build : Db.t -> M.t }

type t = {
  db : Db.t;
  pool : Ivm_par.Domain_pool.t option;
  metrics : Metrics.t option;
  mutable entries : (string * entry) list; (* registration order, reversed *)
}

let create ?pool ?metrics db = { db; pool; metrics; entries = [] }
let db t = t.db

let register t ~name build =
  if List.mem_assoc name t.entries then
    invalid_arg ("Registry.register: duplicate view " ^ name);
  t.entries <- (name, { view = build t.db; build }) :: t.entries

let views t = List.rev_map (fun (name, e) -> (name, e.view)) t.entries
let view_count t = List.length t.entries

let find t name =
  match List.assoc_opt name t.entries with
  | Some e -> e.view
  | None -> invalid_arg ("Registry.find: no view " ^ name)

let counts t = List.map (fun (name, m) -> (name, m.M.output_count ())) (views t)
let fingerprints t = List.map (fun (name, m) -> (name, m.M.fingerprint ())) (views t)

(* Route a batch: per view, the sub-batch on its consumed relations (in
   batch order). Views over the same relations share the input list
   physically where possible. *)
let sub_batch (m : M.t) batch =
  match m.M.relations with
  | [] -> []
  | rels -> List.filter (fun (u : int Update.t) -> List.mem u.Update.rel rels) batch

let now () = Unix.gettimeofday ()

let apply_batch t (batch : int Update.t list) =
  match batch with
  | [] -> ()
  | batch ->
      let views = views t in
      (* Per-task elapsed times land in preallocated slots; the metrics
         tables are only touched after the barrier, on this domain. *)
      let timings = Array.make (List.length views) 0. in
      let sized =
        List.mapi
          (fun i (name, m) ->
            let sub = sub_batch m batch in
            (i, name, m, sub, List.length sub))
          views
      in
      let tasks =
        (fun () -> Db.apply_batch t.db batch)
        :: List.filter_map
             (fun (i, _, m, sub, n) ->
               if n = 0 then None
               else
                 Some
                   (fun () ->
                     let t0 = now () in
                     m.M.apply_batch sub;
                     timings.(i) <- now () -. t0))
             sized
      in
      (match t.pool with
      | Some pool -> Ivm_par.Domain_pool.run pool tasks
      | None -> List.iter (fun task -> task ()) tasks);
      Option.iter
        (fun metrics ->
          List.iter
            (fun (i, name, _, _, n) ->
              if n > 0 then begin
                let v = Metrics.view metrics name in
                v.Metrics.updates <- v.Metrics.updates + n;
                v.Metrics.batches <- v.Metrics.batches + 1;
                Metrics.Hist.add v.Metrics.apply timings.(i)
              end)
            sized)
        t.metrics

(** [restore t db] is a fresh registry over [db] with every view rebuilt
    by its registration factory — the recovery path: pair it with a WAL
    replay from the checkpoint's offset. The restored registry runs
    sequentially unless given its own pool/metrics. *)
let restore ?pool ?metrics t db =
  let fresh = create ?pool ?metrics db in
  List.iter (fun (name, e) -> register fresh ~name e.build) (List.rev t.entries);
  fresh
